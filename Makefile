GO ?= go

.PHONY: build test race vet bench-short bench-json benchsmoke explain ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector run: the engine's concurrent read path and the parallel
# detector are only correct if this stays clean.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Quick perf signal: the two acceptance benchmarks plus the planner
# ablation, a few iterations each.
bench-short:
	$(GO) test -run XXX -bench 'BenchmarkBatchDetect10k|BenchmarkFig5a|BenchmarkPlanner' -benchtime 3x .

# Machine-readable figure series for BENCH_*.json trajectory files.
bench-json:
	$(GO) run ./cmd/ecfdbench -scale 0.1 -json

# Bench smoke: run every benchmark exactly once (no measurement) so
# bench-only code paths cannot silently rot; CI runs this too.
benchsmoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Query plans of the detector's fixed statement set.
explain:
	$(GO) run ./cmd/ecfdbench -explain

ci: vet build test race
