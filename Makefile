GO ?= go

# Pipelines (benchmeasure's `go test | tee`) must fail when the test
# binary fails, not report tee's exit status.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: build test race vet faultmatrix mvccstress bench-short bench-json benchmeasure benchsmoke benchbaseline serversmoke explain ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector run: the engine's concurrent read path and the parallel
# detector are only correct if this stays clean.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The crash-recovery matrix: every WAL/snapshot/recovery unit test,
# the crash-at-every-I/O-point and error-kind fault matrices, and the
# detect-level crash+resume differential. -count=1 forces the faults
# to actually fire (no cached results).
faultmatrix:
	$(GO) test -count=1 -run 'TestWAL|TestFaultMatrix|TestResume|TestDetectThreeWayDifferential|TestDurableDSN|TestDSNOption' ./internal/sqldb/ ./internal/detect/ ./internal/sqldriver/

# MVCC stress: snapshot stability under racing DML/DDL, epoch GC
# accounting, and the concurrency suite — all under the race detector,
# -count=1 so the interleavings actually rerun.
mvccstress:
	$(GO) test -race -count=1 -run 'TestSnapshotStability|TestSnapshotStable|TestEpochGC|TestConcurrent' ./internal/sqldb/

# Quick perf signal: the two acceptance benchmarks plus the planner
# ablation, a few iterations each.
bench-short:
	$(GO) test -run XXX -bench 'BenchmarkBatchDetect10k|BenchmarkFig5a|BenchmarkPlanner' -benchtime 3x .

# Machine-readable figure series for BENCH_*.json trajectory files.
bench-json:
	$(GO) run ./cmd/ecfdbench -scale 0.1 -json

# The benchtime the baseline guard uses. Each tracked benchmark runs in
# its own `go test` process: sharing a binary lets one benchmark's heap
# inflate the next one's GC pacing by ~20%, which would poison the
# committed numbers.
BENCH_TIME = 15x

# benchmeasure appends standalone runs of the tracked acceptance
# benchmarks to bench_current.txt.
benchmeasure:
	$(GO) test -run '^$$' -bench 'BenchmarkBatchDetect10k$$' -benchtime $(BENCH_TIME) . | tee bench_current.txt
	$(GO) test -run '^$$' -bench 'BenchmarkFig5a$$' -benchtime $(BENCH_TIME) . | tee -a bench_current.txt
	$(GO) test -run '^$$' -bench 'BenchmarkConcurrentDetect$$' -benchtime $(BENCH_TIME) . | tee -a bench_current.txt
	$(GO) test -run '^$$' -bench 'BenchmarkMixedRead$$' -benchtime $(BENCH_TIME) . | tee -a bench_current.txt
	$(GO) test -run '^$$' -bench 'BenchmarkShardedDetect10k$$' -benchtime $(BENCH_TIME) . | tee -a bench_current.txt
	$(GO) test -run '^$$' -bench 'BenchmarkServerCheck$$' -benchtime $(BENCH_TIME) . | tee -a bench_current.txt

# Bench smoke: run every benchmark exactly once (no measurement) so
# bench-only code paths cannot silently rot, then measure the tracked
# acceptance benchmarks, record them to bench_current.json, and fail on
# a >25% regression against the committed BENCH_pr10.json. CI runs this.
benchsmoke: benchmeasure
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
	$(GO) run ./cmd/benchguard -write bench_current.json < bench_current.txt
	$(GO) run ./cmd/benchguard -check BENCH_pr10.json < bench_current.txt

# Refresh the committed perf baseline after an intentional change.
benchbaseline: benchmeasure
	$(GO) run ./cmd/benchguard -write BENCH_pr10.json < bench_current.txt

# Server smoke: boot ecfdserver, drive a short closed-loop check load
# at 8 clients against a 10k-row session, and fail unless it sustains
# the ROADMAP's >=500 QPS floor. CI uploads the latency JSON.
serversmoke: build
	./scripts/serversmoke.sh

# Query plans of the detector's fixed statement set.
explain:
	$(GO) run ./cmd/ecfdbench -explain

ci: vet build test race
