package ecfd

// One testing.B benchmark per figure of the paper's evaluation (§VI),
// at a reduced scale so `go test -bench=.` completes in minutes; run
// cmd/ecfdbench for configurable-scale sweeps and EXPERIMENTS.md for
// recorded paper-vs-measured series. Two ablation benchmarks quantify
// the engine design choices called out in DESIGN.md §5.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"ecfd/internal/bench"
	"ecfd/internal/detect"
	"ecfd/internal/gen"
	"ecfd/internal/relation"
	"ecfd/internal/server"
	"ecfd/internal/sqldb"
)

// benchScale keeps each figure sweep tractable under testing.B.
const benchScale = 0.02

func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f, err := bench.Run(id, bench.Options{Scale: benchScale, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Points) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig5a — BATCHDETECT scalability in |D| (Fig. 5(a)).
func BenchmarkFig5a(b *testing.B) { benchFigure(b, "5a") }

// BenchmarkFig5b — BATCHDETECT scalability in noise% (Fig. 5(b)).
func BenchmarkFig5b(b *testing.B) { benchFigure(b, "5b") }

// BenchmarkFig5c — BATCHDETECT scalability in |Tp| (Fig. 5(c)).
func BenchmarkFig5c(b *testing.B) { benchFigure(b, "5c") }

// BenchmarkFig6a — INCDETECT vs BATCHDETECT across |D| (Fig. 6(a)).
func BenchmarkFig6a(b *testing.B) { benchFigure(b, "6a") }

// BenchmarkFig6b — INCDETECT vs BATCHDETECT across noise% (Fig. 6(b)).
func BenchmarkFig6b(b *testing.B) { benchFigure(b, "6b") }

// BenchmarkFig6c — INCDETECT vs BATCHDETECT across |Tp| (Fig. 6(c)).
func BenchmarkFig6c(b *testing.B) { benchFigure(b, "6c") }

// BenchmarkFig7a — effect of the update size on both detectors (Fig. 7(a)).
func BenchmarkFig7a(b *testing.B) { benchFigure(b, "7a") }

// BenchmarkFig7b — violation changes vs update size (Fig. 7(b)).
func BenchmarkFig7b(b *testing.B) { benchFigure(b, "7b") }

// batchDetectOnce measures a single BatchDetect over a fresh dataset —
// the unit underlying every Fig. 5 point.
func batchDetectOnce(b *testing.B, rows int) {
	b.Helper()
	batchDetectSigma(b, rows, gen.Constraints())
}

func batchDetectSigma(b *testing.B, rows int, sigma []*ECFD) {
	b.Helper()
	name := fmt.Sprintf("bench_unit_%d_%d", rows, rand.Int63())
	db, err := OpenMemory(name)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	defer CloseMemory(name)
	d, err := detect.New(db, gen.Schema(), sigma)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Install(); err != nil {
		b.Fatal(err)
	}
	if _, err := d.LoadData(gen.Dataset(gen.Config{Rows: rows, Noise: 5, Seed: 1})); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.BatchDetect(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchDetect2k/10k give per-run costs at two dataset sizes.
func BenchmarkBatchDetect2k(b *testing.B)  { batchDetectOnce(b, 2_000) }
func BenchmarkBatchDetect10k(b *testing.B) { batchDetectOnce(b, 10_000) }

// BenchmarkConcurrentDetect measures ParallelDetect on the Fig. 5(a)
// workload (10k rows, 5 % noise, base Σ) across worker counts. The
// worker pool fans the read-only violation queries over the engine's
// shared read lock; scaling beyond one worker requires actual cores
// (GOMAXPROCS), so read the series together with the recorded host
// core count.
func BenchmarkConcurrentDetect(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			name := fmt.Sprintf("bench_conc_%d_%d", workers, rand.Int63())
			db, err := OpenMemory(name)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			defer CloseMemory(name)
			d, err := detect.New(db, gen.Schema(), gen.Constraints())
			if err != nil {
				b.Fatal(err)
			}
			if err := d.Install(); err != nil {
				b.Fatal(err)
			}
			if _, err := d.LoadData(gen.Dataset(gen.Config{Rows: 10_000, Noise: 5, Seed: 1})); err != nil {
				b.Fatal(err)
			}
			d.BindEngine(Engine(name))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.ParallelDetect(workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedDetect10k measures the sharded scatter-gather
// BatchDetect on the Fig. 5(a) workload (10k rows, 5 % noise, base Σ)
// at 4 shards — the benchguard-tracked sharded unit, directly
// comparable to BenchmarkBatchDetect10k. Deterministic: fixed seed,
// fixed shard and worker counts.
func BenchmarkShardedDetect10k(b *testing.B) {
	name := fmt.Sprintf("bench_shard10k_%d", rand.Int63())
	db, err := OpenMemory(name)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	defer CloseMemory(name)
	s, err := NewShardedDetector(db, gen.Schema(), gen.Constraints(), ShardOptions{Shards: 4, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.Install(); err != nil {
		b.Fatal(err)
	}
	if _, err := s.LoadData(gen.Dataset(gen.Config{Rows: 10_000, Noise: 5, Seed: 1})); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.BatchDetect(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLargeScaleDetect is the ≥1M-row single-store vs sharded
// comparison — the first step toward the ROADMAP's 10M-row target.
// Generating and double-loading a million rows takes minutes of setup,
// so it only runs when ECFD_SLOWBENCH is set:
//
//	ECFD_SLOWBENCH=1 go test -bench LargeScaleDetect -benchtime 1x .
func BenchmarkLargeScaleDetect(b *testing.B) {
	if os.Getenv("ECFD_SLOWBENCH") == "" {
		b.Skip("set ECFD_SLOWBENCH=1 to run the 1M-row benchmark")
	}
	const rows = 1_000_000
	data := gen.Dataset(gen.Config{Rows: rows, Noise: 5, Seed: 1})
	b.Run("single", func(b *testing.B) {
		name := fmt.Sprintf("bench_large_%d", rand.Int63())
		db, err := OpenMemory(name)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		defer CloseMemory(name)
		d, err := detect.New(db, gen.Schema(), gen.Constraints())
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Install(); err != nil {
			b.Fatal(err)
		}
		if _, err := d.LoadData(data); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.BatchDetect(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		name := fmt.Sprintf("bench_large_sh_%d", rand.Int63())
		db, err := OpenMemory(name)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		defer CloseMemory(name)
		s, err := NewShardedDetector(db, gen.Schema(), gen.Constraints(), ShardOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		if err := s.Install(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.LoadData(data); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.BatchDetect(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigMixed — reader p50/p99 with and without a streaming
// writer (figure "mixed"), the MVCC snapshot-isolation workload.
func BenchmarkFigMixed(b *testing.B) { benchFigure(b, "mixed") }

// BenchmarkMixedRead measures the MVCC read path under write churn:
// each op commits one bulk UPDATE (forking a fresh epoch and its
// copy-on-write structures) and then runs 1000 point SELECTs against
// the new epoch. The interleave is deterministic — no racing
// goroutines — so the number is stable enough for the benchguard
// baseline on a single-core host; the scheduler-dependent concurrent
// version lives in `ecfdbench -fig mixed`.
func BenchmarkMixedRead(b *testing.B) {
	const rows = 20_000
	db := sqldb.NewDB()
	mustExec := func(q string) {
		b.Helper()
		if _, err := db.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
	mustExec("CREATE TABLE d (id INTEGER, grp INTEGER, val TEXT)")
	mustExec("CREATE INDEX idx_d_id ON d (id)")
	for i := 0; i < rows; i += 500 {
		q := "INSERT INTO d VALUES "
		for j := i; j < i+500; j++ {
			if j > i {
				q += ", "
			}
			q += fmt.Sprintf("(%d, %d, 'v%d')", j, j%10, j%7)
		}
		mustExec(q)
	}
	point, err := db.Prepare("SELECT val FROM d WHERE id = ?")
	if err != nil {
		b.Fatal(err)
	}
	upd, err := db.Prepare("UPDATE d SET val = 'w' WHERE id >= ? AND id < ?")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cycle := func(i int) {
		lo := (i * 1_000) % rows
		if _, err := upd.Exec(relation.Int(int64(lo)), relation.Int(int64(lo+1_000))); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 1_000; j++ {
			if _, err := point.Query(relation.Int(int64(rng.Intn(rows)))); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Untimed warmup settles the lazily built epoch structures and the
	// GC pacing before measurement.
	for i := 0; i < 5; i++ {
		cycle(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle(i + 5)
	}
}

// BenchmarkDecorrelation quantifies the correlated-EXISTS hash-probe
// optimization (DESIGN.md §5). With a |Tp| = 200 tableau the pattern-
// set tables hold hundreds of rows per attribute; disabling the
// decorrelation makes every (tuple, pattern) pair rescan them instead
// of probing a hash built once per statement.
func BenchmarkDecorrelation(b *testing.B) {
	sigma := gen.ConstraintsScaled(200, 1)
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"on", false},
		{"off", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sqldb.DisableDecorrelation = mode.disable
			defer func() { sqldb.DisableDecorrelation = false }()
			batchDetectSigma(b, 1_000, sigma)
		})
	}
}

// BenchmarkPlanner quantifies the query planner (hash/indexed joins,
// predicate pushdown, OR-alternative hoisting, semi-join updates):
// "off" forces every statement through the legacy all-pairs nested
// loop with a monolithic WHERE closure.
func BenchmarkPlanner(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"on", false},
		{"off", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sqldb.DisablePlanner = mode.disable
			defer func() { sqldb.DisablePlanner = false }()
			batchDetectOnce(b, 1_000)
		})
	}
}

// BenchmarkNaiveDetect is the in-memory oracle on the same workload —
// the lower bound no SQL engine can beat, for context.
func BenchmarkNaiveDetect(b *testing.B) {
	inst := gen.Dataset(gen.Config{Rows: 10_000, Noise: 5, Seed: 1})
	sigma := gen.Constraints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(inst, sigma); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSatisfiable measures the exact satisfiability check on the
// experiment Σ (10 eCFDs, 9 attributes).
func BenchmarkSatisfiable(b *testing.B) {
	schema := gen.Schema()
	sigma := gen.Constraints()
	for i := 0; i < b.N; i++ {
		ok, _, err := Satisfiable(schema, sigma)
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

// BenchmarkMaxSS measures the §IV reduction + solve on the experiment Σ.
func BenchmarkMaxSS(b *testing.B) {
	schema := gen.Schema()
	sigma := gen.Constraints()
	for i := 0; i < b.N; i++ {
		if _, err := MaxSS(schema, sigma, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerCheck measures the service's advisory hot path end to
// end: one HTTP round trip carrying an 8-tuple check batch against a
// 10k-row session — admission gate, JSON decode, the two fixed check
// probes, JSON encode. The benchguard-tracked server unit.
func BenchmarkServerCheck(b *testing.B) {
	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(path string, in, out any) {
		b.Helper()
		var body *bytes.Reader
		if in != nil {
			raw, err := json.Marshal(in)
			if err != nil {
				b.Fatal(err)
			}
			body = bytes.NewReader(raw)
		} else {
			body = bytes.NewReader(nil)
		}
		resp, err := http.Post(ts.URL+path, "application/json", body)
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			b.Fatalf("%s: HTTP %d", path, resp.StatusCode)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				b.Fatal(err)
			}
		}
	}

	var sess server.SessionInfo
	post("/v1/sessions", server.CreateSessionRequest{
		Gen: &server.GenSpec{Rows: 10_000, Noise: 5, Seed: 1},
	}, &sess)
	post("/v1/sessions/"+sess.ID+"/detect", nil, nil)

	batch := gen.Dataset(gen.Config{Rows: 8, Noise: 5, Seed: 99})
	rows := make([][]any, batch.Len())
	for i, t := range batch.Rows {
		row := make([]any, len(t))
		for j, v := range t {
			switch v.K {
			case relation.KindNull:
				row[j] = nil
			case relation.KindInt:
				row[j] = v.I
			case relation.KindBool:
				row[j] = v.I != 0
			case relation.KindFloat:
				row[j] = v.F
			default:
				row[j] = v.S
			}
		}
		rows[i] = row
	}
	body, err := json.Marshal(server.RowsPayload{Rows: rows})
	if err != nil {
		b.Fatal(err)
	}
	url := ts.URL + "/v1/sessions/" + sess.ID + "/check"

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out server.CheckResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(out.Results) != len(rows) {
			b.Fatalf("HTTP %d, %d results", resp.StatusCode, len(out.Results))
		}
	}
}

// BenchmarkIncrementalInsert measures one 5%-sized incremental batch
// against a 10k base — the Fig. 6 unit.
func BenchmarkIncrementalInsert(b *testing.B) {
	cfg := gen.Config{Rows: 10_000, Noise: 5, Seed: 1}
	name := fmt.Sprintf("bench_inc_%d", rand.Int63())
	db, err := OpenMemory(name)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	defer CloseMemory(name)
	d, err := detect.New(db, gen.Schema(), gen.Constraints())
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Install(); err != nil {
		b.Fatal(err)
	}
	if _, err := d.LoadData(gen.Dataset(cfg)); err != nil {
		b.Fatal(err)
	}
	if _, err := d.BatchDetect(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := gen.Updates(cfg, 500, int64(i))
		if _, _, err := d.InsertTuples(batch); err != nil {
			b.Fatal(err)
		}
	}
}
