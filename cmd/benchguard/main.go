// Command benchguard turns `go test -bench` output into a committed
// perf baseline and gates regressions against it. It reads standard
// benchmark output on stdin, extracts the tracked detection benchmarks
// (ms/op), and either writes a JSON baseline (-write) or compares the
// measured numbers against a committed baseline (-check), failing when
// any tracked benchmark regresses beyond the tolerance. CI runs the
// check in the bench-smoke step; `make benchbaseline` refreshes the
// committed file after intentional perf changes.
//
// Only regressions fail the check: faster-than-baseline runs pass (and
// print a hint to refresh the baseline), so a fast CI host never blocks
// on a baseline measured on slower hardware.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// tracked are the benchmarks the baseline records — the acceptance
// benchmarks of the detection pipeline plus the worker-scaling series.
var tracked = []string{
	"BenchmarkBatchDetect10k",
	"BenchmarkFig5a",
	"BenchmarkConcurrentDetect/workers=1",
	"BenchmarkConcurrentDetect/workers=2",
	"BenchmarkConcurrentDetect/workers=4",
	"BenchmarkConcurrentDetect/workers=8",
	"BenchmarkShardedDetect10k",
	"BenchmarkMixedRead",
	"BenchmarkServerCheck",
}

// Baseline is the committed JSON shape.
type Baseline struct {
	// Host is the benchmark host's CPU line, informational only — the
	// tolerance, not the host, decides pass/fail.
	Host    string             `json:"host"`
	MsPerOp map[string]float64 `json:"ms_per_op"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func parse(r *bufio.Scanner) (*Baseline, error) {
	b := &Baseline{MsPerOp: map[string]float64{}}
	for r.Scan() {
		line := r.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			b.Host = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchguard: bad ns/op in %q: %w", line, err)
		}
		b.MsPerOp[m[1]] = ns / 1e6
	}
	return b, r.Err()
}

func main() {
	write := flag.String("write", "", "write the parsed numbers as a baseline JSON file")
	check := flag.String("check", "", "compare the parsed numbers against a baseline JSON file")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression before -check fails")
	flag.Parse()
	if (*write == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchguard: exactly one of -write or -check is required")
		os.Exit(2)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	got, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	missing := false
	for _, name := range tracked {
		if _, ok := got.MsPerOp[name]; !ok {
			fmt.Fprintf(os.Stderr, "benchguard: tracked benchmark %s missing from input\n", name)
			missing = true
		}
	}
	if missing {
		os.Exit(1)
	}

	if *write != "" {
		keep := &Baseline{Host: got.Host, MsPerOp: map[string]float64{}}
		for _, name := range tracked {
			keep.MsPerOp[name] = got.MsPerOp[name]
		}
		out, err := json.MarshalIndent(keep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*write, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("benchguard: wrote %s (%d benchmarks, host %q)\n", *write, len(keep.MsPerOp), keep.Host)
		return
	}

	raw, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *check, err)
		os.Exit(1)
	}
	names := make([]string, 0, len(base.MsPerOp))
	for name := range base.MsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		want := base.MsPerOp[name]
		have, ok := got.MsPerOp[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s in baseline but not measured\n", name)
			failed = true
			continue
		}
		delta := (have - want) / want
		status := "ok"
		if delta > *tolerance {
			status = "REGRESSION"
			failed = true
		} else if delta < -*tolerance {
			status = "improved (consider make benchbaseline)"
		}
		fmt.Printf("benchguard: %-44s %8.1f ms/op vs baseline %8.1f ms/op (%+.0f%%) %s\n",
			name, have, want, delta*100, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: regression beyond %.0f%% vs %s (baseline host %q)\n",
			*tolerance*100, *check, base.Host)
		os.Exit(1)
	}
}
