// Command ecfdbench regenerates the paper's experimental figures
// (§VI, Figs. 5–7). Each figure prints as an aligned table of the same
// series the paper plots.
//
// Usage:
//
//	ecfdbench [-fig 5a|5b|5c|6a|6b|6c|7a|7b|all] [-scale 0.1] [-seed 42]
//
// Scale 1.0 is paper scale (|D| up to 100k tuples); the default 0.1
// completes the full suite in minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ecfd/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure id (5a 5b 5c 6a 6b 6c 7a 7b) or 'all'")
	scale := flag.Float64("scale", 0.1, "dataset scale relative to the paper (1.0 = |D| up to 100k)")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	opt := bench.Options{Scale: *scale, Seed: *seed}
	ids := []string{*fig}
	if *fig == "all" {
		ids = bench.FigureIDs()
	}
	fmt.Printf("eCFD experiment suite — scale %.3g, seed %d\n\n", *scale, *seed)
	for _, id := range ids {
		start := time.Now()
		f, err := bench.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecfdbench: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		f.Print(os.Stdout)
		fmt.Printf("[figure %s regenerated in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
