// Command ecfdbench regenerates the paper's experimental figures
// (§VI, Figs. 5–7). Each figure prints as an aligned table of the same
// series the paper plots, or — with -json — as one machine-readable
// JSON report suitable for BENCH_*.json trajectory files compared
// across PRs.
//
// Usage:
//
//	ecfdbench [-fig 5a|5b|5c|6a|6b|6c|7a|7b|par|shard|wal|mixed|all] [-scale 0.1]
//	          [-seed 42] [-parallel N] [-json] [-explain]
//
// Scale 1.0 is paper scale (|D| up to 100k tuples); the default 0.1
// completes the full suite in minutes. -parallel N runs every measured
// batch detection through the concurrent detector with N workers
// (-1 = GOMAXPROCS); figure "par" sweeps the worker count on the
// Fig. 5(a) workload; "shard" sweeps the shard count K of the
// partitioned scatter-gather detector on the same workload against a
// single-store BatchDetect baseline; "wal" measures durable ingest under each fsync
// policy plus concurrent-writer group commit; "mixed" measures reader
// point-query latency (p50/p99) with and without a streaming writer,
// exercising the MVCC epoch snapshots. -explain skips the sweeps and
// prints the engine's query plans for the detector's fixed statement
// set (join order, hash/index access paths, semi-join updates).
package main

import (
	"database/sql"
	"flag"
	"fmt"
	"os"
	"time"

	"ecfd/internal/bench"
	"ecfd/internal/detect"
	"ecfd/internal/gen"
	"ecfd/internal/sqldriver"
)

func main() {
	fig := flag.String("fig", "all", "figure id (5a 5b 5c 6a 6b 6c 7a 7b par shard wal mixed server) or 'all'")
	scale := flag.Float64("scale", 0.1, "dataset scale relative to the paper (1.0 = |D| up to 100k)")
	seed := flag.Int64("seed", 42, "generator seed")
	parallel := flag.Int("parallel", 0, "batch-detection workers (0 = serial, -1 = GOMAXPROCS)")
	asJSON := flag.Bool("json", false, "emit figure series as machine-readable JSON")
	explain := flag.Bool("explain", false, "print the query plans of the detector's fixed statements and exit")
	flag.Parse()

	if *explain {
		if err := explainPlans(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "ecfdbench: explain: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opt := bench.Options{Scale: *scale, Seed: *seed, Workers: *parallel}
	ids := []string{*fig}
	if *fig == "all" {
		ids = bench.FigureIDs()
	}
	if !*asJSON {
		fmt.Printf("eCFD experiment suite — scale %.3g, seed %d\n\n", *scale, *seed)
	}
	report := &bench.Report{Scale: *scale, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		f, err := bench.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecfdbench: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		if *asJSON {
			report.Figures = append(report.Figures, f)
			continue
		}
		f.Print(os.Stdout)
		fmt.Printf("[figure %s regenerated in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *asJSON {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ecfdbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// explainPlans builds a small detector instance and prints the plans
// the engine chooses for its fixed statement set — the EXPLAIN-style
// probe used to sanity-check that the Fig. 4 queries run as planned
// joins (pattern side driving, probes index-backed) rather than
// all-pairs nested loops.
func explainPlans(seed int64) error {
	const dsn = "bench_explain"
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		return err
	}
	defer db.Close()
	defer sqldriver.Unregister(dsn)

	d, err := detect.New(db, gen.Schema(), gen.Constraints())
	if err != nil {
		return err
	}
	if err := d.Install(); err != nil {
		return err
	}
	if _, err := d.LoadData(gen.Dataset(gen.Config{Rows: 1000, Noise: 5, Seed: seed})); err != nil {
		return err
	}
	if _, err := d.BatchDetect(); err != nil {
		return err
	}

	eng := sqldriver.Engine(dsn)
	qsvSelect, qsvUpdate, qmvInsert, mvUpdate := d.SQL()
	qsvSlice, qmvRange, mvSlice := d.ParallelSQL()
	for _, s := range []struct{ name, q string }{
		{"Qsv (select form)", qsvSelect},
		{"Qsv (SV update)", qsvUpdate},
		{"Qmv (Aux insert)", qmvInsert},
		{"MV update", mvUpdate},
		{"Qsv RID slice (parallel)", qsvSlice},
		{"Qmv CID range (parallel)", qmvRange},
		{"MV RID slice (parallel)", mvSlice},
		{"Violations (ORDER BY RID)", fmt.Sprintf(
			"SELECT RID FROM %s WHERE SV = 1 OR MV = 1 ORDER BY RID", d.DataTable())},
	} {
		plan, err := eng.Explain(s.q)
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Printf("-- %s --\n%s\n", s.name, plan)
	}
	return nil
}
