// Command ecfdcheck runs the paper's static analyses (§III–IV) over a
// constraint file in the textual eCFD language (with table
// declarations; see internal/core.Spec for the grammar):
//
//	ecfdcheck -spec sigma.ecfd                 # satisfiability + MaxSS
//	ecfdcheck -spec sigma.ecfd -implies q.ecfd # does Σ imply each constraint in q?
//
// Exit status: 0 when Σ is satisfiable (and, with -implies, every
// query constraint is implied), 1 otherwise, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"ecfd"
)

func main() {
	specPath := flag.String("spec", "", "constraint file (tables + eCFDs)")
	impliesPath := flag.String("implies", "", "constraint file with candidate implied eCFDs")
	seed := flag.Int64("seed", 1, "seed for the MaxSS heuristic")
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "ecfdcheck: -spec is required")
		os.Exit(2)
	}

	spec := loadSpec(*specPath, nil)
	bySchema := groupBySchema(spec.Constraints)
	ok := true

	for name, sigma := range bySchema {
		schema := spec.Schemas[name]
		sat, witness, err := ecfd.Satisfiable(schema, sigma)
		if err != nil {
			fail(err)
		}
		split := len(ecfd.SplitConstraints(sigma))
		if sat {
			fmt.Printf("%s: SATISFIABLE (%d eCFDs, %d pattern constraints)\n", name, len(sigma), split)
			fmt.Printf("  witness: %v\n", witness)
			continue
		}
		ok = false
		fmt.Printf("%s: UNSATISFIABLE (%d eCFDs, %d pattern constraints)\n", name, len(sigma), split)
		res, err := ecfd.MaxSS(schema, sigma, *seed)
		if err != nil {
			fail(err)
		}
		kind := "approximately"
		if res.Exact {
			kind = "exactly"
		}
		fmt.Printf("  max satisfiable subset (%s): %d of %d pattern constraints\n",
			kind, len(res.Subset), res.Total)
		splitAll := ecfd.SplitConstraints(sigma)
		in := make(map[int]bool, len(res.Subset))
		for _, i := range res.Subset {
			in[i] = true
		}
		for i, e := range splitAll {
			if !in[i] {
				fmt.Printf("  outside the subset: %s\n", e.Name)
			}
		}
	}

	if *impliesPath != "" {
		qs := loadSpec(*impliesPath, spec.Schemas)
		for _, phi := range qs.Constraints {
			sigma := bySchema[phi.Schema.Name]
			implied, cx, err := ecfd.Implies(phi.Schema, sigma, phi)
			if err != nil {
				fail(err)
			}
			if implied {
				fmt.Printf("implied:     %s (redundant given Σ)\n", phi.Name)
				continue
			}
			ok = false
			fmt.Printf("not implied: %s\n", phi.Name)
			for _, t := range cx {
				fmt.Printf("  counterexample tuple: %v\n", t)
			}
		}
	}

	if !ok {
		os.Exit(1)
	}
}

func loadSpec(path string, pre map[string]*ecfd.Schema) *ecfd.Spec {
	src, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	spec, err := ecfd.ParseSpec(string(src), pre)
	if err != nil {
		fail(err)
	}
	return spec
}

func groupBySchema(constraints []*ecfd.ECFD) map[string][]*ecfd.ECFD {
	out := make(map[string][]*ecfd.ECFD)
	for _, e := range constraints {
		out[e.Schema.Name] = append(out[e.Schema.Name], e)
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ecfdcheck:", err)
	os.Exit(2)
}
