// Command ecfddetect finds eCFD violations in CSV data with the
// SQL-based detectors of §V, running on the embedded in-memory engine
// through database/sql.
//
//	ecfddetect -spec sigma.ecfd -data data.csv                # batch
//	ecfddetect -spec sigma.ecfd -data data.csv -parallel 8    # fan out
//	ecfddetect -spec sigma.ecfd -data data.csv -shards 4      # shard-per-core
//	ecfddetect -spec sigma.ecfd -data data.csv -insert dplus.csv
//	ecfddetect -spec sigma.ecfd -data data.csv -delete 5,9,23
//
// With -insert/-delete, the tool first runs BatchDetect on the base
// data, then applies the updates with the incremental algorithm and
// reports both the incremental time and the final violation counts.
// Violating tuples go to -o (default stdout) as CSV with RID, SV, MV.
package main

import (
	"database/sql"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ecfd"
)

func main() {
	specPath := flag.String("spec", "", "constraint file (tables + eCFDs)")
	dataPath := flag.String("data", "", "CSV instance of the constrained table")
	insertPath := flag.String("insert", "", "CSV batch to insert incrementally")
	deleteList := flag.String("delete", "", "comma-separated RIDs to delete incrementally")
	out := flag.String("o", "-", "violation output CSV ('-' = stdout)")
	quiet := flag.Bool("quiet", false, "suppress the violation listing, print summary only")
	parallel := flag.Int("parallel", 0, "batch detection workers (0 = serial, -1 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "partition data across N shard stores (volatile only; excludes -parallel/-wal/-resume)")
	walDir := flag.String("wal", "", "write-ahead-log directory: persist the session and recover it on restart")
	fsync := flag.String("fsync", "", "WAL fsync policy: always (default), batched, off")
	checkpoint := flag.Int64("checkpoint", 4<<20, "WAL bytes between checkpoint snapshots (0 = never; needs -wal)")
	resume := flag.Bool("resume", false, "resume a persisted session from -wal instead of installing and loading -data")
	flag.Parse()
	if *specPath == "" || (*dataPath == "" && !*resume) {
		fmt.Fprintln(os.Stderr, "ecfddetect: -spec and -data are required (-data optional with -resume)")
		os.Exit(2)
	}
	if *resume && *walDir == "" {
		fmt.Fprintln(os.Stderr, "ecfddetect: -resume needs -wal")
		os.Exit(2)
	}
	if *shards > 0 && (*parallel != 0 || *walDir != "" || *resume) {
		fmt.Fprintln(os.Stderr, "ecfddetect: -shards runs volatile scatter-gather and excludes -parallel, -wal and -resume")
		os.Exit(2)
	}

	src, err := os.ReadFile(*specPath)
	if err != nil {
		fail(err)
	}
	spec, err := ecfd.ParseSpec(string(src), nil)
	if err != nil {
		fail(err)
	}
	if len(spec.Constraints) == 0 {
		fail(fmt.Errorf("no constraints in %s", *specPath))
	}
	schema := spec.Constraints[0].Schema
	for _, e := range spec.Constraints {
		if e.Schema.Name != schema.Name {
			fail(fmt.Errorf("all constraints must target one table; got %s and %s", schema.Name, e.Schema.Name))
		}
	}

	var inst *ecfd.Relation
	if *dataPath != "" {
		f, err := os.Open(*dataPath)
		if err != nil {
			fail(err)
		}
		inst, err = readCSV(f, schema)
		f.Close()
		if err != nil {
			fail(err)
		}
	}

	var db *sql.DB
	dsn := "ecfddetect"
	if *walDir != "" {
		db, dsn, err = ecfd.OpenDurable("ecfddetect", *walDir, *fsync, *checkpoint)
		if err != nil {
			fail(err)
		}
		defer ecfd.CloseMemory(dsn)
	} else {
		db, err = ecfd.OpenMemory(dsn)
		if err != nil {
			fail(err)
		}
		defer ecfd.CloseMemory(dsn)
	}
	defer db.Close()

	// run abstracts over the single-store and sharded detectors; the
	// flows below only need the shared detection/maintenance surface.
	var run runner
	if *shards > 0 {
		s, err := ecfd.NewShardedDetector(db, schema, spec.Constraints, ecfd.ShardOptions{Shards: *shards})
		if err != nil {
			fail(err)
		}
		defer s.Close()
		if err := s.Install(); err != nil {
			fail(err)
		}
		if _, err := s.LoadData(inst); err != nil {
			fail(err)
		}
		run = s
	} else {
		d, err := ecfd.NewDetector(db, schema, spec.Constraints)
		if err != nil {
			fail(err)
		}
		if *walDir != "" {
			// Each update batch becomes one WAL commit unit: a crash
			// recovers to a batch boundary, never a half-applied update.
			d.SetAtomicUpdates(true)
		}
		if *resume {
			if err := d.Resume(); err != nil {
				fail(err)
			}
			st := ecfd.StatsOf(dsn)
			r := st.Recovery
			fmt.Fprintf(os.Stderr,
				"resume: wal gen %d (snapshot gen %d, units replayed %d, torn tail %v, fell back %v); epoch %d, %d live / %d retired epochs, %d retired bytes\n",
				r.Gen, r.SnapshotGen, r.UnitsReplayed, r.TornTail, r.FellBack,
				st.EpochSeq, st.LiveEpochs, st.RetiredEpochs, st.RetiredBytes)
			if inst != nil {
				if _, err := d.LoadData(inst); err != nil {
					fail(err)
				}
			}
		} else {
			if err := d.Install(); err != nil {
				fail(err)
			}
			if _, err := d.LoadData(inst); err != nil {
				fail(err)
			}
		}
		if *parallel != 0 {
			run = parallelRunner{d, *parallel}
		} else {
			run = d
		}
	}

	nRows := 0
	if inst != nil {
		nRows = inst.Len()
	}
	mode := "batch"
	switch {
	case *parallel != 0:
		mode = "parallel batch"
	case *shards > 0:
		mode = fmt.Sprintf("sharded batch (%d shards)", *shards)
	}
	st, err := run.BatchDetect()
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d rows, %d violations (SV %d, MV %d) in %v\n",
		mode, nRows, st.Total, st.SV, st.MV, st.Elapsed.Round(1e6))

	if *insertPath != "" {
		f, err := os.Open(*insertPath)
		if err != nil {
			fail(err)
		}
		batch, err := readCSV(f, schema)
		f.Close()
		if err != nil {
			fail(err)
		}
		_, ist, err := run.InsertTuples(batch)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "incremental insert: %d tuples in %v\n", ist.Applied, ist.Elapsed.Round(1e6))
	}
	if *deleteList != "" {
		var rids []int64
		for _, s := range strings.Split(*deleteList, ",") {
			rid, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fail(fmt.Errorf("bad RID %q: %w", s, err))
			}
			rids = append(rids, rid)
		}
		ist, err := run.DeleteTuples(rids)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "incremental delete: %d tuples in %v\n", ist.Applied, ist.Elapsed.Round(1e6))
	}

	if *insertPath != "" || *deleteList != "" {
		sv, mv, total, err := run.Counts()
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "after updates: %d violations (SV %d, MV %d)\n", total, sv, mv)
	}

	if *quiet {
		return
	}
	vio, err := run.Violations()
	if err != nil {
		fail(err)
	}
	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := vio.WriteCSV(w); err != nil {
		fail(err)
	}
}

// runner is the detection/maintenance surface shared by *ecfd.Detector
// and *ecfd.ShardedDetector.
type runner interface {
	BatchDetect() (ecfd.BatchStats, error)
	InsertTuples(batch *ecfd.Relation) ([]int64, ecfd.IncStats, error)
	DeleteTuples(rids []int64) (ecfd.IncStats, error)
	Counts() (sv, mv, total int64, err error)
	Violations() (*ecfd.Relation, error)
}

// parallelRunner routes BatchDetect through ParallelDetect with a
// fixed worker count, leaving the rest of the surface untouched.
type parallelRunner struct {
	*ecfd.Detector
	workers int
}

func (p parallelRunner) BatchDetect() (ecfd.BatchStats, error) {
	return p.ParallelDetect(p.workers)
}

func readCSV(r io.Reader, schema *ecfd.Schema) (*ecfd.Relation, error) {
	return ecfd.ReadCSV(r, schema)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ecfddetect:", err)
	os.Exit(1)
}
