// Command ecfddiscover mines candidate eCFDs from CSV data — the
// future-work direction of the paper's §VIII. Columns are profiled
// pairwise for conditional FDs with exception sets (the φ1 shape) and
// value bindings with disjunctions (the φ2 shape); the output is a
// constraint file in the textual eCFD language, ready for ecfdcheck /
// ecfddetect.
//
//	ecfddiscover -data data.csv -table cust [-minsupport 25] [-o found.ecfd]
//
// All columns are treated as TEXT.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ecfd"
)

func main() {
	dataPath := flag.String("data", "", "CSV input with a header row")
	table := flag.String("table", "data", "relation name for the emitted constraints")
	minSupport := flag.Int("minsupport", 25, "minimum tuples per reported pattern row")
	maxSet := flag.Int("maxset", 8, "maximum disjunction size")
	maxExc := flag.Int("maxexceptions", 5, "maximum exception-set size")
	out := flag.String("o", "-", "output constraint file ('-' = stdout)")
	flag.Parse()
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "ecfddiscover: -data is required")
		os.Exit(2)
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	header, err := csv.NewReader(f).Read()
	if err != nil {
		fail(fmt.Errorf("read header: %w", err))
	}
	attrs := make([]ecfd.Attribute, len(header))
	for i, h := range header {
		attrs[i] = ecfd.Attribute{Name: h, Kind: ecfd.KindText}
	}
	schema, err := ecfd.NewSchema(*table, attrs...)
	if err != nil {
		fail(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		fail(err)
	}
	inst, err := ecfd.ReadCSV(f, schema)
	if err != nil {
		fail(err)
	}

	found, err := ecfd.Discover(inst, ecfd.DiscoverOptions{
		MinSupport:    *minSupport,
		MaxRHSSet:     *maxSet,
		MaxExceptions: *maxExc,
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "ecfddiscover: %d rows → %d candidate constraints\n", inst.Len(), len(found))

	w := io.Writer(os.Stdout)
	if *out != "-" {
		of, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer of.Close()
		w = of
	}
	var b strings.Builder
	b.WriteString("table " + *table + " (")
	for i, a := range schema.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name + " text")
	}
	b.WriteString(")\n\n")
	for _, e := range found {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ecfddiscover:", err)
	os.Exit(1)
}
