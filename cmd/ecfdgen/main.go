// Command ecfdgen generates the synthetic cust datasets of the paper's
// experimental study (§VI) as CSV, and can emit the matching constraint
// file in the textual eCFD language.
//
// Usage:
//
//	ecfdgen -rows 10000 -noise 5 -seed 42 -o data.csv
//	ecfdgen -constraints -o sigma.ecfd
//	ecfdgen -constraints -tableau 200 -o sigma200.ecfd
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ecfd/internal/gen"
)

func main() {
	rows := flag.Int("rows", 10_000, "number of tuples")
	noise := flag.Float64("noise", 5, "percentage of corrupted tuples (0-100)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "-", "output file ('-' = stdout)")
	constraints := flag.Bool("constraints", false, "emit the Σ of 10 eCFDs instead of data")
	tableau := flag.Int("tableau", 0, "grow φ1's pattern tableau to this many rows (with -constraints)")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}

	if *constraints {
		sigma := gen.Constraints()
		if *tableau > 0 {
			sigma = gen.ConstraintsScaled(*tableau, *seed)
		}
		var b strings.Builder
		s := gen.Schema()
		b.WriteString("table " + s.Name + " (")
		for i, a := range s.Attrs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.Name + " text")
		}
		b.WriteString(")\n\n")
		for _, e := range sigma {
			b.WriteString(e.String())
			b.WriteString("\n")
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			fail(err)
		}
		return
	}

	data := gen.Dataset(gen.Config{Rows: *rows, Noise: *noise, Seed: *seed})
	if err := data.WriteCSV(w); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ecfdgen:", err)
	os.Exit(1)
}
