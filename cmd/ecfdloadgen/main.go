// Command ecfdloadgen drives closed-loop load against a running
// ecfdserver and reports throughput and latency percentiles. It creates
// its own gen-backed session (the paper's schema and Σ, Rows tuples
// loaded server-side), runs one batch detect to establish flags and
// Aux, then fires back-to-back requests from N concurrent clients.
//
// Usage:
//
//	ecfdloadgen [-addr http://127.0.0.1:8080] [-clients 8] [-duration 10s]
//	            [-rows 10000] [-batch 8] [-mode check] [-json out.json]
//
// -json writes the result in the bench.Report figure format so the
// benchguard trajectory tooling can ingest server latency alongside the
// paper figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ecfd/internal/bench"
	"ecfd/internal/server"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "server base URL")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	duration := flag.Duration("duration", 10*time.Second, "measurement window")
	rows := flag.Int("rows", 10000, "dataset size for the run's session")
	noise := flag.Float64("noise", 5, "dataset corruption rate (percent)")
	batch := flag.Int("batch", 8, "tuples per check/updates request")
	mode := flag.String("mode", "check", "request mix: check | detect | updates | violations")
	seed := flag.Int64("seed", 1, "dataset seed")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	keep := flag.Bool("keep", false, "leave the session alive after the run")
	jsonPath := flag.String("json", "", "also write bench.Report JSON to this path")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: ecfdloadgen [-addr URL] [-clients N] [-duration 10s] [-mode check]")
		os.Exit(2)
	}

	res, err := server.RunLoad(server.LoadOptions{
		BaseURL:  *addr,
		Clients:  *clients,
		Duration: *duration,
		Mode:     *mode,
		Batch:    *batch,
		Rows:     *rows,
		Noise:    *noise,
		Seed:     *seed,
		Timeout:  *timeout,
		Keep:     *keep,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecfdloadgen: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("mode=%s clients=%d rows=%d batch=%d duration=%.1fs\n",
		res.Mode, res.Clients, res.Rows, res.Batch, res.Seconds)
	fmt.Printf("requests=%d rejected=%d errors=%d\n", res.Requests, res.Rejected, res.Errors)
	fmt.Printf("qps=%.1f p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms\n",
		res.QPS, res.P50Ms, res.P95Ms, res.P99Ms, res.MaxMs)
	if res.SessionID != "" {
		fmt.Printf("session=%s (kept)\n", res.SessionID)
	}

	if *jsonPath != "" {
		fig := &bench.Figure{
			ID:     "server",
			Title:  fmt.Sprintf("ecfdserver %s load (%d clients, %d rows)", res.Mode, res.Clients, res.Rows),
			XLabel: "mode",
			YLabel: "qps / latency ms",
			Names:  []string{"qps", "p50_ms", "p95_ms", "p99_ms", "rejected", "errors"},
			Points: []bench.Point{{
				X: res.Mode,
				Series: map[string]float64{
					"qps":      res.QPS,
					"p50_ms":   res.P50Ms,
					"p95_ms":   res.P95Ms,
					"p99_ms":   res.P99Ms,
					"rejected": float64(res.Rejected),
					"errors":   float64(res.Errors),
				},
			}},
		}
		rep := &bench.Report{Scale: 1, Seed: *seed, Figures: []*bench.Figure{fig}}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecfdloadgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "ecfdloadgen: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if res.Requests == 0 {
		fmt.Fprintln(os.Stderr, "ecfdloadgen: no successful requests")
		os.Exit(1)
	}
}
