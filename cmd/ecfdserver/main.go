// Command ecfdserver runs eCFD violation detection as a long-running
// HTTP/JSON service: register a schema and constraint set once per
// session, then load data, detect, apply incremental updates, probe
// candidate tuples and stream violations over the wire. See
// internal/server for the protocol.
//
// Usage:
//
//	ecfdserver [-addr :8080] [-workers N] [-queue N] [-timeout 30s]
//
// The process exits cleanly on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests drain (bounded), sessions close and
// their engines release.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ecfd/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent data-path requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on the ?timeout= override")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: ecfdserver [-addr :8080] [-workers N] [-queue N] [-timeout 30s]")
		os.Exit(2)
	}

	srv := server.New(server.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("ecfdserver listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Printf("shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			srv.Close()
			log.Fatalf("serve: %v", err)
		}
	}
	srv.Close()
}
