// Command ecfdsql is a small interactive shell for the embedded
// in-memory SQL engine — useful for poking at detector tables and for
// demos. It reads one statement per line (ending in ';' optional) and
// supports two meta-commands:
//
//	\tables              list tables
//	\load <table> <csv>  bulk-load a CSV file into a new table (TEXT columns)
//	\quit                exit
//
// A statement prefixed with EXPLAIN prints the engine's query plan
// (join order, hash/index access paths, semi-join updates) instead of
// running it.
package main

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"os"
	"strings"

	"ecfd/internal/relation"
	"ecfd/internal/sqldb"
)

func main() {
	db := sqldb.NewDB()
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("ecfdsql — embedded SQL engine shell (\\quit to exit)")
	for {
		fmt.Print("sql> ")
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\quit`, line == `\q`:
			return
		case line == `\tables`:
			for _, name := range db.TableNames() {
				n, _ := db.TableLen(name)
				fmt.Printf("  %s (%d rows)\n", name, n)
			}
			continue
		case strings.HasPrefix(line, `\load `):
			if err := load(db, line); err != nil {
				fmt.Println("error:", err)
			}
			continue
		}
		run(db, line)
	}
	if err := in.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "ecfdsql:", err)
		os.Exit(1)
	}
}

func run(db *sqldb.DB, stmt string) {
	if rest, ok := stripExplain(stmt); ok {
		plan, err := db.Explain(rest)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Print(plan)
		return
	}
	if isQuery(stmt) {
		res, err := db.Query(stmt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(strings.Join(res.Cols, " | "))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Println(strings.Join(cells, " | "))
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
		return
	}
	n, err := db.Exec(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ok (%d rows affected)\n", n)
}

func isQuery(stmt string) bool {
	return strings.HasPrefix(strings.ToUpper(strings.TrimSpace(stmt)), "SELECT")
}

// stripExplain reports whether the statement carries an EXPLAIN prefix
// and returns the statement proper.
func stripExplain(stmt string) (string, bool) {
	trimmed := strings.TrimSpace(stmt)
	if len(trimmed) >= 8 && strings.EqualFold(trimmed[:8], "EXPLAIN ") {
		return strings.TrimSpace(trimmed[8:]), true
	}
	return stmt, false
}

// load implements \load table file.csv: every column becomes TEXT.
func load(db *sqldb.DB, line string) error {
	parts := strings.Fields(line)
	if len(parts) != 3 {
		return fmt.Errorf(`usage: \load <table> <file.csv>`)
	}
	table, path := parts[1], parts[2]
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	header, err := csv.NewReader(f).Read()
	if err != nil {
		return fmt.Errorf("read header: %w", err)
	}
	attrs := make([]relation.Attribute, len(header))
	for i, h := range header {
		attrs[i] = relation.Attribute{Name: h, Kind: relation.KindText}
	}
	schema, err := relation.NewSchema(table, attrs...)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	rel, err := relation.ReadCSV(f, schema)
	if err != nil {
		return err
	}
	if err := db.LoadRelation(rel); err != nil {
		return err
	}
	fmt.Printf("loaded %d rows into %s\n", rel.Len(), table)
	return nil
}
