// Package ecfd is a complete implementation of extended Conditional
// Functional Dependencies as introduced by Bravo, Fan, Geerts and Ma,
// "Increasing the Expressivity of Conditional Functional Dependencies
// without Extra Complexity" (ICDE 2008).
//
// eCFDs extend conditional functional dependencies with disjunction
// (set patterns, t[A] ∈ S), inequality (complement patterns,
// t[A] ∉ S̄) and additionally constrained RHS attributes Yp, while
// keeping satisfiability NP-complete and implication coNP-complete.
//
// The package offers four layers:
//
//   - Constraints: ECFD / CFD / FD values, a textual constraint
//     language (ParseSpec), and direct in-memory checking (Detect,
//     Satisfies).
//   - Static analysis: Satisfiable, Implies and the approximate
//     maximum-satisfiable-subset MaxSS via the paper's reduction to
//     MAXGSAT.
//   - SQL-based detection: NewDetector compiles a set of eCFDs into the
//     paper's tableau-as-data encoding and detects violations through
//     database/sql with a fixed pair of queries (BatchDetect), plus
//     incremental maintenance under updates (InsertTuples /
//     DeleteTuples).
//   - An embedded SQL engine: OpenMemory returns a database/sql handle
//     backed by the in-memory engine (driver "ecfdmem") so everything
//     runs self-contained; any other database/sql driver with the
//     needed SQL subset works too.
//   - Detection as a service: NewServer exposes sessions, detection,
//     incremental updates, advisory checks and streamed violations
//     over HTTP/JSON with admission control (cmd/ecfdserver is the
//     standalone binary, cmd/ecfdloadgen the load driver).
//
// See the examples/ directory for runnable walkthroughs and DESIGN.md
// for the paper-to-code map.
package ecfd

import (
	"database/sql"
	"fmt"
	"io"

	"ecfd/internal/core"
	"ecfd/internal/detect"
	"ecfd/internal/discover"
	"ecfd/internal/relation"
	"ecfd/internal/repair"
	"ecfd/internal/sat"
	"ecfd/internal/server"
	"ecfd/internal/sqldb"
	"ecfd/internal/sqldriver"
)

// Re-exported relational substrate types.
type (
	// Schema describes a relation: its name and attributes.
	Schema = relation.Schema
	// Attribute is one column, optionally with a finite domain.
	Attribute = relation.Attribute
	// Kind enumerates value types (TEXT, INTEGER, REAL, BOOLEAN).
	Kind = relation.Kind
	// Value is one typed field value.
	Value = relation.Value
	// Tuple is one row.
	Tuple = relation.Tuple
	// Relation is an in-memory instance: a schema plus rows.
	Relation = relation.Relation
)

// Value kind constants.
const (
	KindNull  = relation.KindNull
	KindBool  = relation.KindBool
	KindInt   = relation.KindInt
	KindFloat = relation.KindFloat
	KindText  = relation.KindText
)

// Re-exported constraint types (§II of the paper).
type (
	// ECFD is an extended conditional functional dependency
	// (R: X → Y, Yp, Tp).
	ECFD = core.ECFD
	// Pattern is one tableau cell: wildcard, ∈ S, or ∉ S.
	Pattern = core.Pattern
	// PatternTuple is one row of a pattern tableau.
	PatternTuple = core.PatternTuple
	// CFD is a classic conditional functional dependency (the special
	// case with singleton constants only).
	CFD = core.CFD
	// FD is a plain functional dependency.
	FD = core.FD
	// Violations reports which rows of an instance violate Σ.
	Violations = core.Violations
	// Spec is a parsed constraint file (table declarations + eCFDs).
	Spec = core.Spec
)

// Pattern constructors.
var (
	// Any returns the wildcard pattern '_'.
	Any = core.Any
	// In returns the disjunction pattern t[A] ∈ {vs...}.
	In = core.InSet
	// NotIn returns the inequality pattern t[A] ∉ {vs...}.
	NotIn = core.NotInSet
	// InStrings and NotInStrings are text-set conveniences.
	InStrings = core.InStrings
	// NotInStrings returns t[A] ∉ {ss...} over text values.
	NotInStrings = core.NotInStrings
	// ConstPattern returns the singleton pattern {v}.
	ConstPattern = core.Const
)

// Value constructors.
var (
	// Text returns a TEXT value.
	Text = relation.Text
	// Int returns an INTEGER value.
	Int = relation.Int
	// Float returns a REAL value.
	Float = relation.Float
	// Bool returns a BOOLEAN value.
	Bool = relation.Bool
	// Null returns the NULL value.
	Null = relation.Null
)

// NewSchema builds a schema from attributes.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	return relation.NewSchema(name, attrs...)
}

// MustSchema is NewSchema panicking on error, for static schemas.
func MustSchema(name string, attrs ...Attribute) *Schema {
	return relation.MustSchema(name, attrs...)
}

// NewRelation returns an empty instance over a schema.
func NewRelation(s *Schema) *Relation { return relation.New(s) }

// ReadCSV reads a headered CSV stream into an instance of the schema;
// columns may appear in any order and extra columns are ignored.
func ReadCSV(r io.Reader, s *Schema) (*Relation, error) {
	return relation.ReadCSV(r, s)
}

// ParseSpec parses the textual constraint language: optional table
// declarations followed by eCFDs. See core.Spec for the grammar.
func ParseSpec(src string, predeclared map[string]*Schema) (*Spec, error) {
	return core.ParseSpec(src, predeclared)
}

// ParseConstraints parses eCFDs over already-known schemas.
func ParseConstraints(src string, schemas map[string]*Schema) ([]*ECFD, error) {
	return core.ParseConstraints(src, schemas)
}

// Detect evaluates Σ directly over an in-memory instance (the naive,
// non-SQL semantics of §II) and reports per-row SV/MV flags.
func Detect(inst *Relation, sigma []*ECFD) (*Violations, error) {
	return core.NaiveDetect(inst, sigma)
}

// Satisfies reports I ⊨ Σ.
func Satisfies(inst *Relation, sigma []*ECFD) (bool, error) {
	return core.Satisfies(inst, sigma)
}

// Satisfiable decides whether a non-empty instance satisfying Σ exists
// (§III, NP-complete; exact via the single-tuple small model). The
// witness tuple is returned when satisfiable.
func Satisfiable(schema *Schema, sigma []*ECFD) (bool, Tuple, error) {
	return sat.Satisfiable(schema, sigma)
}

// Implies decides Σ ⊨ φ (§III, coNP-complete; exact via the two-tuple
// small model). When not implied, a counterexample instance of at most
// two tuples is returned.
func Implies(schema *Schema, sigma []*ECFD, phi *ECFD) (bool, []Tuple, error) {
	ok, cx, err := sat.Implies(schema, sigma, phi)
	if err != nil || ok {
		return ok, nil, err
	}
	return false, cx.Tuples, nil
}

// MaxSSResult is the outcome of the approximate maximum satisfiable
// subset computation.
type MaxSSResult = sat.MaxSSResult

// MaxSS approximates the maximum satisfiable subset of Σ through the
// paper's approximation-factor-preserving reduction to MAXGSAT (§IV).
// Σ is split into single-pattern constraints first; Subset indexes into
// SplitConstraints(sigma).
func MaxSS(schema *Schema, sigma []*ECFD, seed int64) (MaxSSResult, error) {
	return sat.MaxSS(schema, sigma, seed)
}

// SplitConstraints splits every eCFD into single-pattern-tuple
// constraints (each pattern tuple is itself a constraint, §II).
func SplitConstraints(sigma []*ECFD) []*ECFD { return core.Split(sigma) }

// Detector runs SQL-based violation detection (§V) over a database/sql
// handle.
type Detector = detect.Detector

// BatchStats and IncStats report detection runs.
type (
	// BatchStats is the outcome of one BatchDetect run.
	BatchStats = detect.BatchStats
	// IncStats is the outcome of one incremental maintenance step.
	IncStats = detect.IncStats
)

// NewDetector validates Σ and prepares the fixed SQL statement set for
// its schema. Call Install to create the tables and load the encoding,
// LoadData to install the instance, then BatchDetect / InsertTuples /
// DeleteTuples.
func NewDetector(db *sql.DB, schema *Schema, sigma []*ECFD) (*Detector, error) {
	return detect.New(db, schema, sigma)
}

// ShardedDetector partitions the data across K private in-memory
// stores and runs detection shard-parallel with deterministic
// scatter-gather — results are byte-identical to a Detector over one
// store. The handle passed to NewShardedDetector is the coordinator
// store (Σ, authoritative Aux, durability, RID allocation).
type ShardedDetector = detect.ShardedDetector

// ShardOptions configures NewShardedDetector (partition count and
// scatter worker pool; zero values select GOMAXPROCS-based defaults).
type ShardOptions = detect.ShardOptions

// NewShardedDetector is NewDetector's sharded form: db becomes the
// coordinator store and opts.Shards private shard stores are created
// around it. Use Install / LoadData / BatchDetect / InsertTuples /
// DeleteTuples / Violations as with a Detector, and Close to release
// the shard stores.
func NewShardedDetector(db *sql.DB, schema *Schema, sigma []*ECFD, opts ShardOptions) (*ShardedDetector, error) {
	return detect.NewSharded(db, schema, sigma, opts)
}

// MemoryDriverName is the database/sql driver name of the embedded
// in-memory SQL engine.
const MemoryDriverName = sqldriver.DriverName

// OpenMemory opens a database/sql handle onto a named embedded
// in-memory database. The same name returns the same database;
// CloseMemory releases it.
func OpenMemory(name string) (*sql.DB, error) {
	db, err := sql.Open(sqldriver.DriverName, name)
	if err != nil {
		return nil, fmt.Errorf("ecfd: open memory db: %w", err)
	}
	return db, nil
}

// CloseMemory drops the named embedded database and frees its memory.
// A durable database (OpenDurable) is closed first, syncing any
// batched WAL tail.
func CloseMemory(name string) { sqldriver.Unregister(name) }

// OpenDurable opens a named embedded database backed by a write-ahead
// log in walDir, recovering any state a previous process persisted
// there. fsync is "always" (default), "batched" or "off";
// checkpointBytes > 0 snapshots and rotates the WAL when it exceeds
// that size. The returned DSN names the engine for CloseMemory and for
// reopening the same instance. See internal/sqldb's durability
// documentation for the recovery guarantees each policy buys.
func OpenDurable(name, walDir, fsync string, checkpointBytes int64) (*sql.DB, string, error) {
	dsn := name + "?wal=" + walDir
	if fsync != "" {
		dsn += "&fsync=" + fsync
	}
	if checkpointBytes > 0 {
		dsn += fmt.Sprintf("&checkpoint=%d", checkpointBytes)
	}
	// Open eagerly: recovery errors (corrupt WAL, bad options) surface
	// here rather than on the first query.
	if _, err := sqldriver.OpenEngine(dsn); err != nil {
		return nil, "", err
	}
	db, err := OpenMemory(dsn)
	if err != nil {
		return nil, "", err
	}
	return db, dsn, nil
}

// Engine returns the raw embedded engine behind a named memory
// database — useful for bulk-loading relations without SQL round trips.
func Engine(name string) *sqldb.DB { return sqldriver.Engine(name) }

// EngineStats is the embedded engine's operational counter surface
// (sqldb.DB.Stats): the MVCC epoch sequence, how many epochs are live,
// how much superseded state pinned readers are holding, and what WAL
// recovery did when the engine opened.
type EngineStats = sqldb.Stats

// EngineRecoveryStats describes what WAL recovery did at open time
// (generation used, snapshot fallback, units replayed, torn tail).
type EngineRecoveryStats = sqldb.RecoveryStats

// StatsOf returns the named engine's current operational stats.
func StatsOf(name string) EngineStats { return sqldriver.Engine(name).Stats() }

// Server is the detection-as-a-service HTTP handler: sessions register
// a schema and Σ once, then load data, detect, apply incremental
// updates, probe candidate tuples (check) and stream violations over
// JSON, all gated by a bounded worker pool with typed queue_full
// rejection. It implements http.Handler; the caller owns the listener.
// cmd/ecfdserver wraps it as a standalone binary and cmd/ecfdloadgen
// drives it; see internal/server for the wire protocol.
type Server = server.Server

// ServerOptions configures NewServer (worker pool size, admission
// queue depth, request deadlines, body cap); zero values select
// sensible defaults.
type ServerOptions = server.Options

// NewServer builds a detection service handler. Close it to tear down
// every session and release the engines.
func NewServer(opts ServerOptions) *Server { return server.New(opts) }

// ServerLoadOptions and ServerLoadResult configure and report a
// closed-loop load run against a live detection service (RunServerLoad
// is what cmd/ecfdloadgen and the "server" benchmark figure run).
type (
	ServerLoadOptions = server.LoadOptions
	ServerLoadResult  = server.LoadResult
)

// RunServerLoad drives a closed-loop load against the server at
// opts.BaseURL and reports QPS and latency percentiles.
func RunServerLoad(opts ServerLoadOptions) (*ServerLoadResult, error) {
	return server.RunLoad(opts)
}

// DiscoverOptions tunes constraint discovery; zero values select
// sensible defaults.
type DiscoverOptions = discover.Options

// Discover mines candidate single-attribute eCFDs from a data sample —
// conditional FDs with exception sets (the φ1 shape) and value bindings
// with disjunctions (the φ2 shape). This implements the future-work
// direction of the paper's §VIII; see internal/discover for the scope.
// Every returned constraint is satisfied by the sample.
func Discover(inst *Relation, opts DiscoverOptions) ([]*ECFD, error) {
	return discover.Discover(inst, opts)
}

// Repair types (future work of §VIII, heuristic value-modification
// repair; see internal/repair for the algorithm and its limits).
type (
	// RepairOptions bounds the repair loop.
	RepairOptions = repair.Options
	// RepairResult reports the repaired instance, the cell changes and
	// any violations remaining.
	RepairResult = repair.Result
	// RepairChange is one repaired cell.
	RepairChange = repair.Change
)

// Repair returns a repaired copy of the instance in which eCFD
// violations have been eliminated by greedy value modification
// (pattern violations to the cheapest admissible value, embedded-FD
// groups by majority). Result.Remaining is non-zero when Σ cannot be
// fully repaired within the round budget (for example, when Σ itself
// is unsatisfiable — check Satisfiable first).
func Repair(inst *Relation, sigma []*ECFD, opts RepairOptions) (*RepairResult, error) {
	return repair.Repair(inst, sigma, opts)
}

// Paper fixtures (Fig. 1 and Fig. 2), exported for the examples and
// for experimentation.
var (
	// CustSchema is the running-example schema cust(AC, PN, NM, STR, CT, ZIP).
	CustSchema = core.CustSchema
	// Fig1Instance is the instance D0 of Fig. 1.
	Fig1Instance = core.Fig1Instance
	// Fig2Constraints are φ1 and φ2 of Fig. 2.
	Fig2Constraints = core.Fig2Constraints
)
