package ecfd

import (
	"fmt"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd drives the whole stack through the public
// surface only: parse constraints, naive-check the Fig. 1 instance,
// run SQL detection, then the static analyses.
func TestPublicAPIEndToEnd(t *testing.T) {
	schema := CustSchema()
	sigma := Fig2Constraints()
	inst := Fig1Instance()

	// Naive detection (Example 2.2).
	v, err := Detect(inst, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != 2 {
		t.Fatalf("naive: %d violations, want 2", v.Count())
	}

	// SQL detection through database/sql.
	db, err := OpenMemory("public_api_test")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defer CloseMemory("public_api_test")

	d, err := NewDetector(db, schema, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Install(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadData(inst); err != nil {
		t.Fatal(err)
	}
	st, err := d.BatchDetect()
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 2 || st.SV != 2 {
		t.Fatalf("SQL: %+v, want 2 single-tuple violations", st)
	}

	// Static analyses.
	ok, witness, err := Satisfiable(schema, sigma)
	if err != nil || !ok {
		t.Fatalf("Σ must be satisfiable: %v", err)
	}
	if len(witness) != schema.Width() {
		t.Fatal("witness width")
	}
	implied, _, err := Implies(schema, sigma, sigma[0])
	if err != nil || !implied {
		t.Fatalf("Σ ⊨ φ1 must hold: %v", err)
	}
	res, err := MaxSS(schema, sigma, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subset) != res.Total {
		t.Errorf("MaxSS on satisfiable Σ: %d of %d", len(res.Subset), res.Total)
	}
}

func TestPublicParseSpec(t *testing.T) {
	spec, err := ParseSpec(`
table t (A text, B text)
ecfd e on t: [A] -> [B] { ({x} || {y}) }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Constraints) != 1 {
		t.Fatal("constraint count")
	}
	inst := NewRelation(spec.Schemas["t"])
	inst.MustInsert(Tuple{Text("x"), Text("z")})
	v, err := Detect(inst, spec.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SV[0] {
		t.Error("x/z must violate e")
	}
}

func TestPublicPatternHelpers(t *testing.T) {
	p := In(Int(1), Int(2))
	if !p.Matches(Int(2)) || p.Matches(Int(3)) {
		t.Error("In pattern broken")
	}
	if !Any().Matches(Null()) {
		t.Error("Any must match NULL")
	}
	q := NotInStrings("a")
	if q.Matches(Text("a")) || !q.Matches(Text("b")) {
		t.Error("NotIn pattern broken")
	}
	if c, ok := ConstPattern(Text("v")).IsConst(); !ok || c.S != "v" {
		t.Error("ConstPattern broken")
	}
}

func TestSplitConstraints(t *testing.T) {
	if got := len(SplitConstraints(Fig2Constraints())); got != 3 {
		t.Errorf("split = %d, want 3", got)
	}
}

func TestImpliesCounterexampleSurface(t *testing.T) {
	schema := CustSchema()
	sigma := Fig2Constraints()
	phi := &ECFD{
		Name: "not-implied", Schema: schema, X: []string{"CT"}, YP: []string{"AC"},
		Tableau: []PatternTuple{{
			LHS: []Pattern{InStrings("Utica")},
			RHS: []Pattern{InStrings("315")},
		}},
	}
	ok, cx, err := Implies(schema, sigma, phi)
	if err != nil {
		t.Fatal(err)
	}
	if ok || len(cx) == 0 {
		t.Fatalf("expected a counterexample, got ok=%v cx=%v", ok, cx)
	}
	inst := NewRelation(schema)
	for _, tup := range cx {
		inst.Rows = append(inst.Rows, tup)
	}
	if sat, _ := Satisfies(inst, sigma); !sat {
		t.Error("counterexample must satisfy Σ")
	}
	if sat, _ := Satisfies(inst, []*ECFD{phi}); sat {
		t.Error("counterexample must violate φ")
	}
}

func TestReadCSVPublic(t *testing.T) {
	s := MustSchema("t",
		Attribute{Name: "A", Kind: KindText},
		Attribute{Name: "N", Kind: KindInt})
	rel, err := ReadCSV(strings.NewReader("A,N\nx,3\ny,4\n"), s)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || rel.Rows[1][1].I != 4 {
		t.Errorf("rows: %v", rel.Rows)
	}
	if _, err := NewSchema(""); err == nil {
		t.Error("NewSchema must validate")
	}
}

func TestParseConstraintsPublic(t *testing.T) {
	es, err := ParseConstraints(`ecfd e on cust: [CT] -> [AC] { (_ || _) }`,
		map[string]*Schema{"cust": CustSchema()})
	if err != nil || len(es) != 1 {
		t.Fatalf("%v %v", es, err)
	}
}

func TestValueConstructorsPublic(t *testing.T) {
	if Int(3).I != 3 || Float(2.5).F != 2.5 || !Bool(true).Truth() ||
		Text("x").S != "x" || !Null().IsNull() {
		t.Error("value constructors broken")
	}
}

// TestDiscoverRepairRoundTrip closes the full data-quality loop through
// the public API: corrupt data → discover constraints on a clean
// sample → detect violations in the dirty data → repair → re-detect.
func TestDiscoverRepairRoundTrip(t *testing.T) {
	schema := CustSchema()
	sigma := Fig2Constraints()
	dirty := Fig1Instance()

	res, err := Repair(dirty, sigma, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining != 0 {
		t.Fatalf("repair left %d violations", res.Remaining)
	}
	if ok, _ := Satisfies(res.Repaired, sigma); !ok {
		t.Fatal("repaired instance must satisfy Σ")
	}

	// Discovery over the repaired data yields constraints the repaired
	// data satisfies.
	found, err := Discover(res.Repaired, DiscoverOptions{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) == 0 {
		t.Fatal("expected discovered constraints")
	}
	v, err := Detect(res.Repaired, found)
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != 0 {
		t.Errorf("discovered constraints must hold on their sample: %d violations", v.Count())
	}
	_ = schema
}

func TestEngineBulkLoad(t *testing.T) {
	name := fmt.Sprintf("bulk_%d", 1)
	defer CloseMemory(name)
	eng := Engine(name)
	inst := Fig1Instance()
	if err := eng.LoadRelation(inst); err != nil {
		t.Fatal(err)
	}
	db, err := OpenMemory(name)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var n int64
	if err := db.QueryRow(`SELECT COUNT(*) FROM cust`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("bulk load: %d rows", n)
	}
}
