// Clean loop: the full data-quality cycle the paper's conclusions
// sketch — discover constraints from data, detect violations, repair,
// verify.
//
// We generate a dirty 10k-row cust dataset, mine candidate eCFDs from
// it (noise-tolerant thresholds), detect the violations those
// constraints flag, repair them by value modification, and confirm the
// repaired database is consistent.
//
// Run with: go run ./examples/cleanloop
package main

import (
	"fmt"
	"log"

	"ecfd"
	"ecfd/internal/gen"
)

func main() {
	const rows = 10_000
	dirty := gen.Dataset(gen.Config{Rows: rows, Noise: 4, Seed: 31})

	// 1. Discover candidate constraints from the dirty data itself. The
	// support thresholds make mining robust to the 4% noise: corrupted
	// combinations are too rare to form patterns, and FD exception sets
	// absorb... nothing here — corrupted groups simply keep candidate
	// FDs from being reported unless the damage is localized.
	found, err := ecfd.Discover(dirty, ecfd.DiscoverOptions{
		MinSupport:    40,
		MaxExceptions: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d candidate constraints from %d dirty rows\n", len(found), rows)

	// 2. Sanity-check the candidates before cleaning with them (§III).
	ok, _, err := ecfd.Satisfiable(dirty.Schema, found)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidate Σ satisfiable: %v\n", ok)

	// 3. Detect violations of the curated paper constraints (the
	// authoritative Σ) on the dirty data.
	sigma := gen.Constraints()
	v, err := ecfd.Detect(dirty, sigma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("violations against the curated Σ: %d (SV %d, MV %d)\n",
		v.Count(), v.CountSV(), v.CountMV())

	// 4. Repair.
	res, err := ecfd.Repair(dirty, sigma, ecfd.RepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair: %d cell changes in %d round(s), %d violations remaining\n",
		len(res.Changes), res.Rounds, res.Remaining)
	for i, ch := range res.Changes {
		if i == 5 {
			fmt.Printf("  … and %d more\n", len(res.Changes)-5)
			break
		}
		fmt.Printf("  row %d: %s %v → %v (%s)\n", ch.Row, ch.Attribute, ch.Old, ch.New, ch.Constraint)
	}

	// 5. Verify.
	clean, err := ecfd.Satisfies(res.Repaired, sigma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired database satisfies Σ: %v\n", clean)
}
