// Data cleaning: detect inconsistencies in a realistic dirty dataset.
//
// This is the workload of the paper's §VI: a cust relation extended
// with purchased items, 10 eCFDs expressing the data's real-life
// semantics (city ↔ area code, ZIP → city, item → type, type → price
// band, ...), and 5% of the tuples corrupted. We run the SQL-based
// BatchDetect, break the violations down per constraint with the
// in-memory oracle, and print a few offending tuples with the reason.
//
// Run with: go run ./examples/datacleaning
package main

import (
	"fmt"
	"log"
	"sort"

	"ecfd"
	"ecfd/internal/gen"
)

func main() {
	const rows = 20_000
	sigma := gen.Constraints()
	schema := gen.Schema()
	data := gen.Dataset(gen.Config{Rows: rows, Noise: 5, Seed: 2026})

	db, err := ecfd.OpenMemory("datacleaning")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	defer ecfd.CloseMemory("datacleaning")

	d, err := ecfd.NewDetector(db, schema, sigma)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Install(); err != nil {
		log.Fatal(err)
	}
	if _, err := d.LoadData(data); err != nil {
		log.Fatal(err)
	}

	st, err := d.BatchDetect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Scanned %d tuples against %d eCFDs (%d pattern constraints)\n",
		rows, len(sigma), len(ecfd.SplitConstraints(sigma)))
	fmt.Printf("vio(D): %d tuples — %d single-tuple (SV), %d embedded-FD (MV) — in %v\n\n",
		st.Total, st.SV, st.MV, st.Elapsed.Round(1e6))

	// Per-constraint breakdown via the in-memory oracle.
	v, err := ecfd.Detect(data, sigma)
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		name string
		n    int
	}
	var breakdown []row
	for name, n := range v.PerConstraint {
		breakdown = append(breakdown, row{name, n})
	}
	sort.Slice(breakdown, func(i, j int) bool { return breakdown[i].n > breakdown[j].n })
	fmt.Println("Violations per pattern constraint:")
	for _, b := range breakdown {
		fmt.Printf("  %-10s %6d\n", b.name, b.n)
	}

	// Show a handful of dirty tuples.
	fmt.Println("\nSample violating tuples:")
	shown := 0
	for _, i := range v.Violating() {
		kind := "FD conflict"
		if v.SV[i] {
			kind = "pattern violation"
		}
		fmt.Printf("  [%s] AC=%s CT=%s ZIP=%s TYPE=%s PRICE=%s\n", kind,
			data.Rows[i][0], data.Rows[i][4], data.Rows[i][5], data.Rows[i][7], data.Rows[i][8])
		if shown++; shown == 8 {
			break
		}
	}
}
