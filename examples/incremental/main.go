// Incremental monitoring: keep the violation set current while the
// database changes, without rescanning everything.
//
// The scenario of the paper's §V-B / Experiment 2: a 20k-row cust
// database under a stream of update batches (inserts of fresh — partly
// dirty — tuples, deletions of random rows). After every batch we
// maintain the flags with IncDetect and compare its cost against
// recomputing from scratch with BatchDetect, asserting both agree on
// the violation counts.
//
// Run with: go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ecfd"
	"ecfd/internal/gen"
)

func main() {
	cfg := gen.Config{Rows: 20_000, Noise: 5, Seed: 7}
	sigma := gen.Constraints()

	db, err := ecfd.OpenMemory("incremental")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	defer ecfd.CloseMemory("incremental")

	d, err := ecfd.NewDetector(db, gen.Schema(), sigma)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Install(); err != nil {
		log.Fatal(err)
	}
	if _, err := d.LoadData(gen.Dataset(cfg)); err != nil {
		log.Fatal(err)
	}

	st, err := d.BatchDetect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base: %d rows, %d violations, batch pass took %v\n",
		cfg.Rows, st.Total, st.Elapsed.Round(1e6))

	rng := rand.New(rand.NewSource(99))
	for step := 1; step <= 4; step++ {
		// Insert a 2.5% batch...
		batch := gen.Updates(cfg, 500, int64(step))
		_, ins, err := d.InsertTuples(batch)
		if err != nil {
			log.Fatal(err)
		}
		// ...and delete as many random rows.
		rids, err := d.RIDs()
		if err != nil {
			log.Fatal(err)
		}
		doomed := gen.DeleteSample(rng, rids, 500)
		del, err := d.DeleteTuples(doomed)
		if err != nil {
			log.Fatal(err)
		}

		sv, mv, total, err := d.Counts()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("step %d: +500/-500 tuples — inc maintenance %v (ins) + %v (del); vio(D): %d (SV %d, MV %d)\n",
			step, ins.Elapsed.Round(1e6), del.Elapsed.Round(1e6), total, sv, mv)

		// Cross-check against a full recomputation.
		bst, err := d.BatchDetect()
		if err != nil {
			log.Fatal(err)
		}
		if bst.Total != total || bst.SV != sv || bst.MV != mv {
			log.Fatalf("incremental flags diverged: batch says %+v", bst)
		}
		fmt.Printf("         full BatchDetect recomputation: %v (agrees)\n", bst.Elapsed.Round(1e6))
	}
	fmt.Println("\nincremental maintenance kept the flags exact after every batch")
}
