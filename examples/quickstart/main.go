// Quickstart: the paper's running example end to end.
//
// We define φ1 and φ2 of Fig. 2 over the cust schema, check the Fig. 1
// instance D0 in memory, then run the same detection through SQL
// (BatchDetect) and show that both find exactly the violations of
// Example 2.2: t1 (Albany with area code 718) and t4 (NYC with area
// code 100).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ecfd"
)

func main() {
	schema := ecfd.CustSchema()
	sigma := ecfd.Fig2Constraints()
	inst := ecfd.Fig1Instance()

	fmt.Println("Constraints (Fig. 2):")
	for _, e := range sigma {
		fmt.Print(e)
	}

	// 1. Direct, in-memory semantics (§II).
	v, err := ecfd.Detect(inst, sigma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNaive detection: %d violations (SV %d, MV %d)\n",
		v.Count(), v.CountSV(), v.CountMV())
	for _, i := range v.Violating() {
		fmt.Printf("  t%d: %v\n", i+1, inst.Rows[i])
	}

	// 2. The same through SQL (§V): encode Σ as data tables, run the
	// fixed Qsv/Qmv query pair via database/sql on the embedded engine.
	db, err := ecfd.OpenMemory("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	defer ecfd.CloseMemory("quickstart")

	d, err := ecfd.NewDetector(db, schema, sigma)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Install(); err != nil {
		log.Fatal(err)
	}
	if _, err := d.LoadData(inst); err != nil {
		log.Fatal(err)
	}
	st, err := d.BatchDetect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSQL BatchDetect: %d violations (SV %d, MV %d) in %v\n",
		st.Total, st.SV, st.MV, st.Elapsed.Round(1e6))

	vio, err := d.Violations()
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range vio.Rows {
		fmt.Printf("  RID %v: %v\n", row[0], row[1:])
	}

	// 3. A peek at the generated SQL (Fig. 4).
	qsv, _, qmv, _ := d.SQL()
	fmt.Printf("\nGenerated Qsv (Fig. 4 top):\n%s\n", qsv)
	fmt.Printf("\nGenerated Qmv (Fig. 4 bottom, materialized into Aux):\n%s\n", qmv)
}
