// Static analysis: validate a constraint set before using it.
//
// The paper's §III–IV: eCFDs can be "dirty" themselves. We build the
// unsatisfiable interaction of Example 3.1, watch Satisfiable reject
// it, extract an approximately-maximum satisfiable subset via the
// MAXGSAT reduction (§IV), and use Implies to find redundant
// constraints that an optimizer could drop.
//
// Run with: go run ./examples/satisfiability
package main

import (
	"fmt"
	"log"

	"ecfd"
)

func main() {
	schema := ecfd.CustSchema()

	// ψ3 of Example 3.1: if CT is NYC it must be both NYC and LI.
	psi3 := &ecfd.ECFD{
		Name: "psi3", Schema: schema, X: []string{"CT"}, Y: []string{"CT"},
		Tableau: []ecfd.PatternTuple{
			{LHS: []ecfd.Pattern{ecfd.InStrings("NYC")}, RHS: []ecfd.Pattern{ecfd.InStrings("NYC")}},
			{LHS: []ecfd.Pattern{ecfd.InStrings("NYC")}, RHS: []ecfd.Pattern{ecfd.InStrings("LI")}},
		},
	}
	// A constraint forcing the NYC case to actually occur.
	force := &ecfd.ECFD{
		Name: "forceNYC", Schema: schema, X: []string{"CT"}, YP: []string{"CT"},
		Tableau: []ecfd.PatternTuple{
			{LHS: []ecfd.Pattern{ecfd.Any()}, RHS: []ecfd.Pattern{ecfd.InStrings("NYC")}},
		},
	}
	sigma := append(ecfd.Fig2Constraints(), psi3, force)

	ok, _, err := ecfd.Satisfiable(schema, sigma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Σ (Fig. 2 + ψ3 + forceNYC) satisfiable? %v\n", ok)

	// Approximate the maximum satisfiable subset (§IV).
	res, err := ecfd.MaxSS(schema, sigma, 1)
	if err != nil {
		log.Fatal(err)
	}
	kind := "approximate"
	if res.Exact {
		kind = "exact"
	}
	fmt.Printf("MaxSS (%s): %d of %d pattern constraints satisfiable together\n",
		kind, len(res.Subset), res.Total)
	fmt.Printf("witness tuple: %v\n", res.Witness)
	split := ecfd.SplitConstraints(sigma)
	in := map[int]bool{}
	for _, i := range res.Subset {
		in[i] = true
	}
	for i, e := range split {
		if !in[i] {
			fmt.Printf("  excluded: %s\n", e.Name)
		}
	}

	// Implication: a narrower constraint is redundant given Fig. 2's Σ.
	weaker := &ecfd.ECFD{
		Name: "albany518", Schema: schema, X: []string{"CT"}, YP: []string{"AC"},
		Tableau: []ecfd.PatternTuple{
			{LHS: []ecfd.Pattern{ecfd.InStrings("Albany")}, RHS: []ecfd.Pattern{ecfd.InStrings("518")}},
		},
	}
	implied, _, err := ecfd.Implies(schema, ecfd.Fig2Constraints(), weaker)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFig. 2 Σ ⊨ %s? %v — a cleaning pipeline can drop it\n", weaker.Name, implied)

	stronger := &ecfd.ECFD{
		Name: "utica315", Schema: schema, X: []string{"CT"}, YP: []string{"AC"},
		Tableau: []ecfd.PatternTuple{
			{LHS: []ecfd.Pattern{ecfd.InStrings("Utica")}, RHS: []ecfd.Pattern{ecfd.InStrings("315")}},
		},
	}
	implied, cx, err := ecfd.Implies(schema, ecfd.Fig2Constraints(), stronger)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 2 Σ ⊨ %s? %v\n", stronger.Name, implied)
	for _, t := range cx {
		fmt.Printf("  counterexample: %v\n", t)
	}
}
