module ecfd

go 1.24
