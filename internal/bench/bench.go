// Package bench regenerates the paper's experimental study (§VI): one
// runner per figure, each producing the same series the paper plots.
// Absolute times differ from the 2008 Apple Xserve + commercial DBMS
// testbed; the shapes — linear scaling in |D| and |Tp|, incremental
// beating batch for reasonably-sized updates, the crossover near 50 %
// updates — are what EXPERIMENTS.md tracks.
package bench

import (
	"database/sql"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ecfd/internal/core"
	"ecfd/internal/detect"
	"ecfd/internal/gen"
	"ecfd/internal/relation"
	"ecfd/internal/sqldb"
	"ecfd/internal/sqldriver"
)

// Options scales and seeds an experiment run. Scale 1.0 is paper scale
// (|D| up to 100k); the CLI defaults lower so a full suite finishes in
// minutes on a laptop. Workers != 0 replaces every measured batch
// detection with ParallelDetect(Workers) (-1 = GOMAXPROCS).
type Options struct {
	Scale   float64
	Seed    int64
	Workers int
}

// detect runs the configured batch detection: serial BatchDetect by
// default, the fanned-out ParallelDetect when Workers is set.
func (o Options) detect(d *detect.Detector) (detect.BatchStats, error) {
	if o.Workers != 0 {
		return d.ParallelDetect(o.Workers)
	}
	return d.BatchDetect()
}

func (o Options) scale(n int) int {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	v := int(float64(n) * o.Scale)
	if v < 10 {
		v = 10
	}
	return v
}

// Point is one x position of a figure with one y value per series.
type Point struct {
	X      string             `json:"x"`
	Series map[string]float64 `json:"series"`
}

// Figure is a regenerated table/graph.
type Figure struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	XLabel string   `json:"xlabel"`
	YLabel string   `json:"ylabel"`
	Names  []string `json:"names"` // series order
	Points []Point  `json:"points"`
}

// Report is the machine-readable form of a benchmark run, consumed by
// the BENCH_*.json trajectory files compared across PRs.
type Report struct {
	Scale   float64   `json:"scale"`
	Seed    int64     `json:"seed"`
	Figures []*Figure `json:"figures"`
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Print renders the figure as an aligned table.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "%-14s", f.XLabel)
	for _, n := range f.Names {
		fmt.Fprintf(w, "  %14s", n)
	}
	fmt.Fprintln(w)
	for _, p := range f.Points {
		fmt.Fprintf(w, "%-14s", p.X)
		for _, n := range f.Names {
			fmt.Fprintf(w, "  %14.3f", p.Series[n])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(%s)\n\n", f.YLabel)
}

// Runners maps figure ids to their runners.
var Runners = map[string]func(Options) (*Figure, error){
	"5a": Fig5a, "5b": Fig5b, "5c": Fig5c,
	"6a": Fig6a, "6b": Fig6b, "6c": Fig6c,
	"7a": Fig7a, "7b": Fig7b,
	"par": FigPar, "shard": FigShard, "wal": FigWAL, "mixed": FigMixed,
	"server": FigServer,
}

// FigureIDs lists the runnable figures in paper order.
func FigureIDs() []string {
	ids := make([]string, 0, len(Runners))
	for id := range Runners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run regenerates one figure by id.
func Run(id string, opt Options) (*Figure, error) {
	r, ok := Runners[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown figure %q (have %v)", id, FigureIDs())
	}
	return r(opt)
}

var dsnSeq atomic.Int64

// setup builds a detector over a fresh in-memory database loaded with
// a generated dataset, and returns it with the assigned RIDs.
func setup(sigma []*core.ECFD, cfg gen.Config) (*detect.Detector, []int64, func(), error) {
	return setupWith(sigma, gen.Dataset(cfg))
}

// setupWith is setup over a pre-generated dataset — figures that build
// several stores from the same data (FigPar, FigShard) generate once
// and share, so the measured loop is detection, not the generator.
func setupWith(sigma []*core.ECFD, data *relation.Relation) (*detect.Detector, []int64, func(), error) {
	dsn := fmt.Sprintf("bench_%d", dsnSeq.Add(1))
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		return nil, nil, nil, err
	}
	cleanup := func() {
		db.Close()
		sqldriver.Unregister(dsn)
	}
	d, err := detect.New(db, gen.Schema(), sigma)
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	if err := d.Install(); err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	rids, err := d.LoadData(data)
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	// Engine binding lets ParallelDetect share one snapshot pin per read
	// phase across its workers.
	d.BindEngine(sqldriver.Engine(dsn))
	return d, rids, cleanup, nil
}

// setupSharded builds a sharded detector over a fresh coordinator
// database with the generated dataset scattered across k shards.
func setupSharded(sigma []*core.ECFD, cfg gen.Config, opts detect.ShardOptions) (*detect.ShardedDetector, func(), error) {
	return setupShardedWith(sigma, gen.Dataset(cfg), opts)
}

// setupShardedWith is setupSharded over a pre-generated dataset.
func setupShardedWith(sigma []*core.ECFD, data *relation.Relation, opts detect.ShardOptions) (*detect.ShardedDetector, func(), error) {
	dsn := fmt.Sprintf("bench_shard_%d", dsnSeq.Add(1))
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		return nil, nil, err
	}
	s, err := detect.NewSharded(db, gen.Schema(), sigma, opts)
	if err != nil {
		db.Close()
		sqldriver.Unregister(dsn)
		return nil, nil, err
	}
	cleanup := func() {
		s.Close()
		db.Close()
		sqldriver.Unregister(dsn)
	}
	if err := s.Install(); err != nil {
		cleanup()
		return nil, nil, err
	}
	if _, err := s.LoadData(data); err != nil {
		cleanup()
		return nil, nil, err
	}
	return s, cleanup, nil
}

// Fig5a — BatchDetect scalability in |D| (10k–100k, noise 5 %, base Σ).
func Fig5a(opt Options) (*Figure, error) {
	f := &Figure{ID: "5a", Title: "BATCHDETECT scalability in |D|",
		XLabel: "|D|", YLabel: "seconds", Names: []string{"batch"}}
	for _, rows := range sweep(opt, 10_000, 100_000, 10_000) {
		d, _, cleanup, err := setup(gen.Constraints(), gen.Config{Rows: rows, Noise: 5, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		st, err := opt.detect(d)
		cleanup()
		if err != nil {
			return nil, err
		}
		f.Points = append(f.Points, Point{X: fmt.Sprint(rows),
			Series: map[string]float64{"batch": st.Elapsed.Seconds()}})
	}
	return f, nil
}

// Fig5b — BatchDetect scalability in noise% (|D| 100k).
func Fig5b(opt Options) (*Figure, error) {
	f := &Figure{ID: "5b", Title: "BATCHDETECT scalability in noise",
		XLabel: "noise%", YLabel: "seconds", Names: []string{"batch"}}
	rows := opt.scale(100_000)
	for noise := 0; noise <= 9; noise++ {
		d, _, cleanup, err := setup(gen.Constraints(), gen.Config{Rows: rows, Noise: float64(noise), Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		st, err := opt.detect(d)
		cleanup()
		if err != nil {
			return nil, err
		}
		f.Points = append(f.Points, Point{X: fmt.Sprint(noise),
			Series: map[string]float64{"batch": st.Elapsed.Seconds()}})
	}
	return f, nil
}

// Fig5c — BatchDetect scalability in |Tp| (50–500, |D| 100k, noise 5 %).
func Fig5c(opt Options) (*Figure, error) {
	f := &Figure{ID: "5c", Title: "BATCHDETECT scalability in |Tp|",
		XLabel: "|Tp|", YLabel: "seconds", Names: []string{"batch"}}
	rows := opt.scale(100_000)
	for tp := 50; tp <= 500; tp += 50 {
		d, _, cleanup, err := setup(gen.ConstraintsScaled(tp, opt.Seed),
			gen.Config{Rows: rows, Noise: 5, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		st, err := opt.detect(d)
		cleanup()
		if err != nil {
			return nil, err
		}
		f.Points = append(f.Points, Point{X: fmt.Sprint(tp),
			Series: map[string]float64{"batch": st.Elapsed.Seconds()}})
	}
	return f, nil
}

// incVsBatch measures, for one configuration, the four §VI Experiment-2
// series: incremental and batch response to an insertion batch and to a
// deletion batch (ΔD⁺ and ΔD⁻ of equal size).
func incVsBatch(sigma []*core.ECFD, cfg gen.Config, delta int, opt Options) (map[string]float64, error) {
	out := make(map[string]float64)

	// Insertions, incremental.
	d, _, cleanup, err := setup(sigma, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := d.BatchDetect(); err != nil {
		cleanup()
		return nil, err
	}
	batch := gen.Updates(cfg, delta, 0)
	_, st, err := d.InsertTuples(batch)
	cleanup()
	if err != nil {
		return nil, err
	}
	out["inc-ins"] = st.Elapsed.Seconds()

	// Insertions, batch recomputation.
	d, _, cleanup, err = setup(sigma, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := d.InsertRaw(batch); err != nil {
		cleanup()
		return nil, err
	}
	bst, err := opt.detect(d)
	cleanup()
	if err != nil {
		return nil, err
	}
	out["batch-ins"] = bst.Elapsed.Seconds()

	// Deletions, incremental.
	d, rids, cleanup, err := setup(sigma, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := d.BatchDetect(); err != nil {
		cleanup()
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	doomed := gen.DeleteSample(rng, rids, delta)
	ist, err := d.DeleteTuples(doomed)
	cleanup()
	if err != nil {
		return nil, err
	}
	out["inc-del"] = ist.Elapsed.Seconds()

	// Deletions, batch recomputation.
	d, _, cleanup, err = setup(sigma, cfg)
	if err != nil {
		return nil, err
	}
	if err := d.DeleteRaw(doomed); err != nil {
		cleanup()
		return nil, err
	}
	bst, err = opt.detect(d)
	cleanup()
	if err != nil {
		return nil, err
	}
	out["batch-del"] = bst.Elapsed.Seconds()
	return out, nil
}

var incSeries = []string{"inc-ins", "batch-ins", "inc-del", "batch-del"}

// Fig6a — incremental vs batch across |D|, ΔD⁺ = ΔD⁻ = 10k.
func Fig6a(opt Options) (*Figure, error) {
	f := &Figure{ID: "6a", Title: "INCDETECT vs BATCHDETECT in |D| (ΔD = 10k)",
		XLabel: "|D|", YLabel: "seconds", Names: incSeries}
	delta := opt.scale(10_000)
	for _, rows := range sweep(opt, 10_000, 100_000, 10_000) {
		series, err := incVsBatch(gen.Constraints(),
			gen.Config{Rows: rows, Noise: 5, Seed: opt.Seed}, min(delta, rows), opt)
		if err != nil {
			return nil, err
		}
		f.Points = append(f.Points, Point{X: fmt.Sprint(rows), Series: series})
	}
	return f, nil
}

// Fig6b — incremental vs batch across noise%, |D| = 100k.
func Fig6b(opt Options) (*Figure, error) {
	f := &Figure{ID: "6b", Title: "INCDETECT vs BATCHDETECT in noise (ΔD = 10k)",
		XLabel: "noise%", YLabel: "seconds", Names: incSeries}
	rows := opt.scale(100_000)
	delta := opt.scale(10_000)
	for noise := 0; noise <= 9; noise++ {
		series, err := incVsBatch(gen.Constraints(),
			gen.Config{Rows: rows, Noise: float64(noise), Seed: opt.Seed}, delta, opt)
		if err != nil {
			return nil, err
		}
		f.Points = append(f.Points, Point{X: fmt.Sprint(noise), Series: series})
	}
	return f, nil
}

// Fig6c — incremental vs batch across |Tp|, |D| = 100k.
func Fig6c(opt Options) (*Figure, error) {
	f := &Figure{ID: "6c", Title: "INCDETECT vs BATCHDETECT in |Tp| (ΔD = 10k)",
		XLabel: "|Tp|", YLabel: "seconds", Names: incSeries}
	rows := opt.scale(100_000)
	delta := opt.scale(10_000)
	for tp := 50; tp <= 500; tp += 50 {
		series, err := incVsBatch(gen.ConstraintsScaled(tp, opt.Seed),
			gen.Config{Rows: rows, Noise: 5, Seed: opt.Seed}, delta, opt)
		if err != nil {
			return nil, err
		}
		f.Points = append(f.Points, Point{X: fmt.Sprint(tp), Series: series})
	}
	return f, nil
}

// deltaSweep lists the paper's Fig. 7 |ΔD| values: 2k–12k step 2k, then
// 20k–60k step 20k.
func deltaSweep(opt Options) []int {
	var out []int
	for d := 2_000; d <= 12_000; d += 2_000 {
		out = append(out, opt.scale(d))
	}
	for d := 20_000; d <= 60_000; d += 20_000 {
		out = append(out, opt.scale(d))
	}
	return out
}

// Fig7a — incremental vs batch across |ΔD| with |D| = 100k held fixed
// (equal numbers of deletions and insertions). The paper's observation:
// IncDetect wins until roughly half the data is updated.
func Fig7a(opt Options) (*Figure, error) {
	f := &Figure{ID: "7a", Title: "Effect of update size (|D| = 100k fixed)",
		XLabel: "|ΔD|", YLabel: "seconds", Names: []string{"inc", "batch"}}
	rows := opt.scale(100_000)
	cfg := gen.Config{Rows: rows, Noise: 5, Seed: opt.Seed}
	for _, delta := range deltaSweep(opt) {
		if delta > rows {
			delta = rows
		}
		// Incremental: delete then insert the same number of tuples.
		d, rids, cleanup, err := setup(gen.Constraints(), cfg)
		if err != nil {
			return nil, err
		}
		if _, err := d.BatchDetect(); err != nil {
			cleanup()
			return nil, err
		}
		rng := rand.New(rand.NewSource(opt.Seed))
		doomed := gen.DeleteSample(rng, rids, delta)
		batch := gen.Updates(cfg, delta, 1)
		_, ust, err := d.ApplyUpdates(batch, doomed)
		cleanup()
		if err != nil {
			return nil, err
		}
		incSecs := ust.Elapsed.Seconds()

		// Batch: apply the same updates raw, then recompute.
		d, _, cleanup, err = setup(gen.Constraints(), cfg)
		if err != nil {
			return nil, err
		}
		if err := d.DeleteRaw(doomed); err != nil {
			cleanup()
			return nil, err
		}
		if _, err := d.InsertRaw(batch); err != nil {
			cleanup()
			return nil, err
		}
		bst, err := opt.detect(d)
		cleanup()
		if err != nil {
			return nil, err
		}
		f.Points = append(f.Points, Point{X: fmt.Sprint(delta), Series: map[string]float64{
			"inc": incSecs, "batch": bst.Elapsed.Seconds()}})
	}
	return f, nil
}

// Fig7b — the number of violation *changes* across |ΔD| (the paper's
// caption: "Effect on number of violation changes"): DSV counts rows
// whose SV flag flipped (including flagged rows that were deleted and
// flagged rows that arrived), DMV likewise for MV. DSV grows linearly
// with the update size; DMV grows much faster for large updates as
// whole embedded-FD groups flip — which is exactly why BATCHDETECT
// overtakes INCDETECT there.
func Fig7b(opt Options) (*Figure, error) {
	f := &Figure{ID: "7b", Title: "Violation changes with update size",
		XLabel: "|ΔD|", YLabel: "changed tuples", Names: []string{"DSV", "DMV"}}
	rows := opt.scale(100_000)
	cfg := gen.Config{Rows: rows, Noise: 5, Seed: opt.Seed}
	for _, delta := range deltaSweep(opt) {
		if delta > rows {
			delta = rows
		}
		d, rids, cleanup, err := setup(gen.Constraints(), cfg)
		if err != nil {
			return nil, err
		}
		if _, err := d.BatchDetect(); err != nil {
			cleanup()
			return nil, err
		}
		before, err := d.FlagsByRID()
		if err != nil {
			cleanup()
			return nil, err
		}
		rng := rand.New(rand.NewSource(opt.Seed))
		doomed := gen.DeleteSample(rng, rids, delta)
		if _, err := d.DeleteTuples(doomed); err != nil {
			cleanup()
			return nil, err
		}
		if _, _, err := d.InsertTuples(gen.Updates(cfg, delta, 1)); err != nil {
			cleanup()
			return nil, err
		}
		after, err := d.FlagsByRID()
		cleanup()
		if err != nil {
			return nil, err
		}
		var dsv, dmv float64
		for rid, b := range before {
			a := after[rid] // zero value for deleted rows
			if a[0] != b[0] {
				dsv++
			}
			if a[1] != b[1] {
				dmv++
			}
		}
		for rid, a := range after {
			if _, existed := before[rid]; existed {
				continue
			}
			if a[0] {
				dsv++
			}
			if a[1] {
				dmv++
			}
		}
		f.Points = append(f.Points, Point{X: fmt.Sprint(delta), Series: map[string]float64{
			"DSV": dsv, "DMV": dmv}})
	}
	return f, nil
}

// FigPar — concurrent detection scaling on the Fig. 5(a) workload:
// ParallelDetect at 1/2/4/8 workers against the serial BatchDetect
// baseline. "speedup" is throughput relative to one parallel worker;
// on a single-core host it stays flat at ~1.0 — the worker pool only
// helps when the scheduler has cores to spread the read locks over.
func FigPar(opt Options) (*Figure, error) {
	f := &Figure{ID: "par", Title: "Parallel detection scaling (Fig. 5(a) workload)",
		XLabel: "workers", YLabel: "seconds", Names: []string{"parallel", "batch", "speedup"}}
	rows := opt.scale(100_000)
	data := gen.Dataset(gen.Config{Rows: rows, Noise: 5, Seed: opt.Seed})

	d, _, cleanup, err := setupWith(gen.Constraints(), data)
	if err != nil {
		return nil, err
	}
	bst, err := d.BatchDetect()
	cleanup()
	if err != nil {
		return nil, err
	}

	var oneWorker float64
	for _, w := range []int{1, 2, 4, 8} {
		d, _, cleanup, err := setupWith(gen.Constraints(), data)
		if err != nil {
			return nil, err
		}
		st, err := d.ParallelDetect(w)
		cleanup()
		if err != nil {
			return nil, err
		}
		secs := st.Elapsed.Seconds()
		if w == 1 {
			oneWorker = secs
		}
		f.Points = append(f.Points, Point{X: fmt.Sprint(w), Series: map[string]float64{
			"parallel": secs, "batch": bst.Elapsed.Seconds(), "speedup": oneWorker / secs}})
	}
	return f, nil
}

// FigShard — shard-per-core detection scaling on the Fig. 5(a)
// workload: the sharded scatter-gather BatchDetect at K ∈ {1, 2, 4, 8}
// partitions against the single-store serial BatchDetect baseline.
// "speedup" is throughput relative to that serial baseline — unlike
// FigPar's workers, each shard is a fully private store (own epochs,
// indexes, column caches), so this is the figure that shows whether
// horizontal partitioning beats in-store read concurrency. On a
// single-core host it stays near 1.0 (flat-or-better); the multi-core
// CI job tracks the ≥1.7× acceptance at K=4.
func FigShard(opt Options) (*Figure, error) {
	f := &Figure{ID: "shard", Title: "Sharded detection scaling (Fig. 5(a) workload)",
		XLabel: "shards", YLabel: "seconds", Names: []string{"sharded", "batch", "speedup"}}
	rows := opt.scale(100_000)
	// One dataset for the serial baseline and every K — regenerating per
	// point both wasted the bulk of the figure's wall clock and let the
	// generator drift into the measurement.
	data := gen.Dataset(gen.Config{Rows: rows, Noise: 5, Seed: opt.Seed})

	d, _, cleanup, err := setupWith(gen.Constraints(), data)
	if err != nil {
		return nil, err
	}
	bst, err := d.BatchDetect()
	cleanup()
	if err != nil {
		return nil, err
	}
	batchSecs := bst.Elapsed.Seconds()

	for _, k := range []int{1, 2, 4, 8} {
		s, cleanup, err := setupShardedWith(gen.Constraints(), data, detect.ShardOptions{Shards: k})
		if err != nil {
			return nil, err
		}
		st, err := s.BatchDetect()
		cleanup()
		if err != nil {
			return nil, err
		}
		secs := st.Elapsed.Seconds()
		f.Points = append(f.Points, Point{X: fmt.Sprint(k), Series: map[string]float64{
			"sharded": secs, "batch": batchSecs, "speedup": batchSecs / secs}})
	}
	return f, nil
}

// FigWAL — the ingest cost of durability: LoadData + BatchDetect on
// the Fig. 5(a) workload with the engine volatile ("off") and durable
// under each WAL fsync policy. "load" is dominated by per-batch commit
// units (fsync=always pays one fsync per 500-row insert); "batch" runs
// the Fig. 4 queries, whose SV/MV updates also log, so detection under
// a WAL measures the DML logging overhead on real work.
func FigWAL(opt Options) (*Figure, error) {
	f := &Figure{ID: "wal", Title: "Durable ingest: WAL fsync policies (Fig. 5(a) workload)",
		XLabel: "config", YLabel: "seconds", Names: []string{"load", "batch"}}
	rows := opt.scale(20_000)
	cfg := gen.Config{Rows: rows, Noise: 5, Seed: opt.Seed}
	data := gen.Dataset(cfg)

	configs := []struct{ name, dsnOpts string }{
		{"volatile", ""},
		{"fsync=off", "?wal=%s&fsync=off"},
		{"fsync=batched", "?wal=%s&fsync=batched&fsync_every=64"},
		{"fsync=always", "?wal=%s&fsync=always"},
	}
	for _, c := range configs {
		point, err := func() (Point, error) {
			dsn := fmt.Sprintf("bench_wal_%d", dsnSeq.Add(1))
			if c.dsnOpts != "" {
				dir, err := os.MkdirTemp("", "ecfdwal")
				if err != nil {
					return Point{}, err
				}
				defer os.RemoveAll(dir)
				dsn += fmt.Sprintf(c.dsnOpts, dir)
			}
			db, err := sql.Open(sqldriver.DriverName, dsn)
			if err != nil {
				return Point{}, err
			}
			defer sqldriver.Unregister(dsn)
			defer db.Close()
			d, err := detect.New(db, gen.Schema(), gen.Constraints())
			if err != nil {
				return Point{}, err
			}
			if err := d.Install(); err != nil {
				return Point{}, err
			}
			loadStart := time.Now()
			if _, err := d.LoadData(data); err != nil {
				return Point{}, err
			}
			loadSecs := time.Since(loadStart).Seconds()
			st, err := opt.detect(d)
			if err != nil {
				return Point{}, err
			}
			return Point{X: c.name, Series: map[string]float64{
				"load": loadSecs, "batch": st.Elapsed.Seconds()}}, nil
		}()
		if err != nil {
			return nil, fmt.Errorf("wal config %s: %w", c.name, err)
		}
		f.Points = append(f.Points, point)
	}

	// Concurrent ingest under fsync=always: every single-row autocommit
	// INSERT is one WAL commit unit that must be durable before it
	// acknowledges, but concurrent writers join a group commit — the
	// leader's one fsync covers every unit appended while it slept, so
	// the same total row count lands faster as writers are added.
	total := opt.scale(1_500)
	for _, w := range []int{1, 2, 4} {
		secs, err := concurrentIngest(total, w)
		if err != nil {
			return nil, fmt.Errorf("wal ingest w=%d: %w", w, err)
		}
		f.Points = append(f.Points, Point{X: fmt.Sprintf("always w=%d", w),
			Series: map[string]float64{"ingest": secs}})
	}
	f.Names = append(f.Names, "ingest")
	return f, nil
}

// concurrentIngest inserts `total` rows through `writers` concurrent
// single-row autocommit statements into a fsync=always database and
// reports the wall-clock seconds. The detector's RID allocator is
// serial, so this drives the engine directly.
func concurrentIngest(total, writers int) (float64, error) {
	dir, err := os.MkdirTemp("", "ecfdingest")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	db, err := sqldb.Open(sqldb.WALOptions{Dir: dir, Fsync: sqldb.FsyncAlways})
	if err != nil {
		return 0, err
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE ing (id INTEGER, val TEXT)"); err != nil {
		return 0, err
	}
	ins, err := db.Prepare("INSERT INTO ing VALUES (?, 'x')")
	if err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	start := time.Now()
	for wi := 0; wi < writers; wi++ {
		lo := wi * total / writers
		hi := (wi + 1) * total / writers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for id := lo; id < hi; id++ {
				if _, err := ins.Exec(relation.Int(int64(id))); err != nil {
					errs <- err
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	close(errs)
	for err := range errs {
		return 0, err
	}
	return secs, nil
}

// FigMixed — reader latency under a streaming writer. A fixed pool of
// point-query readers runs twice over the same indexed table: first
// against a quiescent database (the read-only baseline), then with one
// writer streaming bulk UPDATEs. Readers pin epochs with an atomic
// load and hold no lock, so the p99 under writes should stay within
// small factors of the baseline (the acceptance bound is 2×); the
// writer's throughput is reported alongside. All latencies are
// milliseconds, throughput is rows/second.
func FigMixed(opt Options) (*Figure, error) {
	const (
		readers   = 4
		window    = 300 * time.Millisecond
		writeSpan = 1_000 // rows per streaming UPDATE statement
	)
	f := &Figure{ID: "mixed", Title: "Reader latency under a streaming writer (MVCC epochs)",
		XLabel: "workload", YLabel: "read latency ms / writer rows/s",
		Names: []string{"p50", "p99", "writer_rows_s"}}
	rows := opt.scale(50_000)

	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE d (id INTEGER, grp INTEGER, val TEXT)"); err != nil {
		return nil, err
	}
	if _, err := db.Exec("CREATE INDEX idx_d_id ON d (id)"); err != nil {
		return nil, err
	}
	for i := 0; i < rows; i += 500 {
		q := "INSERT INTO d VALUES "
		for j := i; j < i+500 && j < rows; j++ {
			if j > i {
				q += ", "
			}
			q += fmt.Sprintf("(%d, %d, 'v%d')", j, j%10, j%7)
		}
		if _, err := db.Exec(q); err != nil {
			return nil, err
		}
	}
	point, err := db.Prepare("SELECT val FROM d WHERE id = ?")
	if err != nil {
		return nil, err
	}
	upd, err := db.Prepare("UPDATE d SET val = 'w' WHERE id >= ? AND id < ?")
	if err != nil {
		return nil, err
	}

	run := func(withWriter bool, x string) (Point, error) {
		stop := make(chan struct{})
		var wrote atomic.Int64
		var wwg sync.WaitGroup
		if withWriter {
			wwg.Add(1)
			go func() {
				defer wwg.Done()
				for lo := 0; ; lo = (lo + writeSpan) % rows {
					select {
					case <-stop:
						return
					default:
					}
					n, err := upd.Exec(relation.Int(int64(lo)), relation.Int(int64(lo+writeSpan)))
					if err != nil {
						return
					}
					wrote.Add(n)
				}
			}()
		}
		lats := make([][]time.Duration, readers)
		errs := make(chan error, readers)
		var rwg sync.WaitGroup
		start := time.Now()
		for g := 0; g < readers; g++ {
			rwg.Add(1)
			go func(g int) {
				defer rwg.Done()
				rng := rand.New(rand.NewSource(opt.Seed + int64(g)))
				for time.Since(start) < window {
					id := relation.Int(int64(rng.Intn(rows)))
					t0 := time.Now()
					if _, err := point.Query(id); err != nil {
						errs <- err
						return
					}
					lats[g] = append(lats[g], time.Since(t0))
				}
			}(g)
		}
		rwg.Wait()
		elapsed := time.Since(start)
		close(stop)
		wwg.Wait()
		close(errs)
		for err := range errs {
			return Point{}, err
		}
		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		pct := func(p float64) float64 {
			if len(all) == 0 {
				return 0
			}
			i := int(p * float64(len(all)-1))
			return float64(all[i]) / float64(time.Millisecond)
		}
		series := map[string]float64{"p50": pct(0.50), "p99": pct(0.99)}
		if withWriter {
			series["writer_rows_s"] = float64(wrote.Load()) / elapsed.Seconds()
		}
		return Point{X: x, Series: series}, nil
	}

	ro, err := run(false, "read-only")
	if err != nil {
		return nil, err
	}
	mixed, err := run(true, "mixed")
	if err != nil {
		return nil, err
	}
	f.Points = append(f.Points, ro, mixed)
	return f, nil
}

func sweep(opt Options, from, to, step int) []int {
	var out []int
	for v := from; v <= to; v += step {
		out = append(out, opt.scale(v))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
