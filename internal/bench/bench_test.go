package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOpts keeps unit-test runs fast: ~1% of paper scale.
var tinyOpts = Options{Scale: 0.01, Seed: 1}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("9z", tinyOpts); err == nil {
		t.Error("unknown figure must error")
	}
}

func TestFigureIDs(t *testing.T) {
	ids := FigureIDs()
	want := []string{"5a", "5b", "5c", "6a", "6b", "6c", "7a", "7b", "mixed", "par", "server", "shard", "wal"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Errorf("FigureIDs = %v", ids)
	}
}

// TestFigParShape checks the parallel-scaling figure: four worker
// counts, positive times, speedup anchored at 1.0 for one worker.
func TestFigParShape(t *testing.T) {
	f, err := Run("par", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 4 {
		t.Fatalf("Fig par has %d points, want 4", len(f.Points))
	}
	for _, p := range f.Points {
		if p.Series["parallel"] <= 0 || p.Series["batch"] <= 0 {
			t.Errorf("point %s: non-positive time", p.X)
		}
	}
	if s := f.Points[0].Series["speedup"]; s != 1.0 {
		t.Errorf("one-worker speedup = %v, want 1.0", s)
	}
}

// TestFigShardShape checks the shard-scaling figure: four shard
// counts, positive times, speedups relative to one serial baseline.
func TestFigShardShape(t *testing.T) {
	f, err := Run("shard", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 4 {
		t.Fatalf("Fig shard has %d points, want 4", len(f.Points))
	}
	for _, p := range f.Points {
		if p.Series["sharded"] <= 0 || p.Series["batch"] <= 0 || p.Series["speedup"] <= 0 {
			t.Errorf("point %s: non-positive series", p.X)
		}
	}
}

// TestFigWithWorkers runs a batch figure through the parallel
// detector to cover the Options.Workers plumbing.
func TestFigWithWorkers(t *testing.T) {
	opt := tinyOpts
	opt.Workers = 2
	f, err := Run("5a", opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f.Points {
		if p.Series["batch"] <= 0 {
			t.Errorf("point %s: non-positive time", p.X)
		}
	}
}

func TestFig5aShape(t *testing.T) {
	f, err := Run("5a", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 10 {
		t.Fatalf("Fig 5a has %d points, want 10", len(f.Points))
	}
	for _, p := range f.Points {
		if p.Series["batch"] <= 0 {
			t.Errorf("point %s: non-positive time", p.X)
		}
	}
	// Monotone-ish: the largest |D| should cost more than the smallest.
	if f.Points[9].Series["batch"] <= f.Points[0].Series["batch"]*0.8 {
		t.Errorf("batch time should grow with |D|: %v vs %v",
			f.Points[0].Series["batch"], f.Points[9].Series["batch"])
	}
}

func TestFig7bCounts(t *testing.T) {
	f, err := Run("7b", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 9 {
		t.Fatalf("Fig 7b has %d points, want 9 (2k–12k + 20k–60k)", len(f.Points))
	}
	last := f.Points[len(f.Points)-1]
	first := f.Points[0]
	if last.Series["DSV"] < first.Series["DSV"] {
		t.Errorf("DSV should grow with |ΔD|: %v → %v", first.Series, last.Series)
	}
}

func TestIncVsBatchProducesAllSeries(t *testing.T) {
	f, err := Run("6a", Options{Scale: 0.005, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f.Points {
		for _, name := range incSeries {
			if _, ok := p.Series[name]; !ok {
				t.Fatalf("point %s missing series %s", p.X, name)
			}
		}
	}
}

func TestPrint(t *testing.T) {
	f := &Figure{ID: "x", Title: "t", XLabel: "X", YLabel: "s",
		Names:  []string{"a"},
		Points: []Point{{X: "1", Series: map[string]float64{"a": 0.5}}}}
	var buf bytes.Buffer
	f.Print(&buf)
	out := buf.String()
	for _, frag := range []string{"Fig. x", "X", "a", "0.500"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Print output missing %q:\n%s", frag, out)
		}
	}
}

// TestFigWALShape checks the durable-ingest figure: one point per
// durability configuration (positive load and detect times), then one
// concurrent-ingest point per writer count (positive wall time) under
// fsync=always group commit.
func TestFigWALShape(t *testing.T) {
	f, err := Run("wal", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 7 {
		t.Fatalf("Fig wal has %d points, want 4 configs + 3 ingest", len(f.Points))
	}
	for _, p := range f.Points[:4] {
		if p.Series["load"] <= 0 || p.Series["batch"] <= 0 {
			t.Errorf("point %s: non-positive time", p.X)
		}
	}
	for _, p := range f.Points[4:] {
		if p.Series["ingest"] <= 0 {
			t.Errorf("point %s: non-positive ingest time", p.X)
		}
	}
}

// TestFigMixedShape checks the reader-latency figure: a read-only
// baseline point and a mixed point, positive latencies, and a writer
// that actually wrote.
func TestFigMixedShape(t *testing.T) {
	f, err := Run("mixed", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 2 {
		t.Fatalf("Fig mixed has %d points, want 2", len(f.Points))
	}
	ro, mixed := f.Points[0], f.Points[1]
	if ro.X != "read-only" || mixed.X != "mixed" {
		t.Fatalf("unexpected point order: %s, %s", ro.X, mixed.X)
	}
	for _, p := range f.Points {
		if p.Series["p50"] <= 0 || p.Series["p99"] < p.Series["p50"] {
			t.Errorf("point %s: implausible latencies %+v", p.X, p.Series)
		}
	}
	if mixed.Series["writer_rows_s"] <= 0 {
		t.Error("mixed point: writer made no progress")
	}
}
