package bench

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"ecfd/internal/server"
)

// FigServer — detection-as-a-service throughput: an in-process
// ecfdserver on a loopback listener, driven closed-loop by the load
// generator at 8 clients on the scaled Fig. 5(a) dataset. One point per
// request mode; qps plus the latency percentiles the ROADMAP tracks.
// check is the advisory hot path (two fixed indexed probes per
// request); violations streams the full violation set per request, so
// its qps is bounded by result size, not admission.
func FigServer(opt Options) (*Figure, error) {
	f := &Figure{ID: "server", Title: "Detection service throughput (8 clients, loopback)",
		XLabel: "mode", YLabel: "qps / ms",
		Names: []string{"qps", "p50_ms", "p99_ms", "rejected", "errors"}}
	rows := opt.scale(10_000)

	srv := server.New(server.Options{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	for _, mode := range []string{"check", "violations"} {
		res, err := server.RunLoad(server.LoadOptions{
			BaseURL:  base,
			Clients:  8,
			Duration: 3 * time.Second,
			Mode:     mode,
			Rows:     rows,
			Noise:    5,
			Seed:     opt.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", mode, err)
		}
		f.Points = append(f.Points, Point{X: mode, Series: map[string]float64{
			"qps": res.QPS, "p50_ms": res.P50Ms, "p99_ms": res.P99Ms,
			"rejected": float64(res.Rejected), "errors": float64(res.Errors)}})
	}
	return f, nil
}
