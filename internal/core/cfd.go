package core

import (
	"fmt"

	"ecfd/internal/relation"
)

// CFDCell is one cell of a classic CFD pattern tuple: either the
// unnamed variable '_' or a single constant (paper [1], and Remark (2)
// of §II here).
type CFDCell struct {
	Wildcard bool
	Value    relation.Value
}

// CFDAny returns the '_' cell.
func CFDAny() CFDCell { return CFDCell{Wildcard: true} }

// CFDConst returns a constant cell.
func CFDConst(v relation.Value) CFDCell { return CFDCell{Value: v} }

// CFDPatternTuple pairs LHS cells (over X) with RHS cells (over Y).
type CFDPatternTuple struct {
	LHS []CFDCell
	RHS []CFDCell
}

// CFD is a classic conditional functional dependency
// (R: X → Y, Tp): the special case of an eCFD with Yp = ∅ and only
// wildcard or singleton-constant cells.
type CFD struct {
	Name    string
	Schema  *relation.Schema
	X, Y    []string
	Tableau []CFDPatternTuple
}

// AsECFD embeds the CFD into the eCFD language by replacing every
// constant a with the singleton set {a} — the construction of §II
// Remark (2). The embedding preserves satisfaction: I ⊨ cfd iff
// I ⊨ cfd.AsECFD().
func (c *CFD) AsECFD() *ECFD {
	e := &ECFD{Name: c.Name, Schema: c.Schema}
	e.X = append([]string(nil), c.X...)
	e.Y = append([]string(nil), c.Y...)
	e.Tableau = make([]PatternTuple, len(c.Tableau))
	for i, tp := range c.Tableau {
		pt := PatternTuple{LHS: make([]Pattern, len(tp.LHS)), RHS: make([]Pattern, len(tp.RHS))}
		for j, cell := range tp.LHS {
			pt.LHS[j] = cellToPattern(cell)
		}
		for j, cell := range tp.RHS {
			pt.RHS[j] = cellToPattern(cell)
		}
		e.Tableau[i] = pt
	}
	return e
}

func cellToPattern(c CFDCell) Pattern {
	if c.Wildcard {
		return Any()
	}
	return Const(c.Value)
}

// FromECFD attempts the inverse embedding: it returns the classic CFD
// corresponding to e when e.IsCFD(), and an error otherwise.
func FromECFD(e *ECFD) (*CFD, error) {
	if !e.IsCFD() {
		return nil, fmt.Errorf("core: eCFD %s uses disjunction, inequality or Yp and has no CFD form", e.label())
	}
	c := &CFD{Name: e.Name, Schema: e.Schema}
	c.X = append([]string(nil), e.X...)
	c.Y = append([]string(nil), e.Y...)
	c.Tableau = make([]CFDPatternTuple, len(e.Tableau))
	for i, tp := range e.Tableau {
		ct := CFDPatternTuple{LHS: make([]CFDCell, len(tp.LHS)), RHS: make([]CFDCell, len(tp.RHS))}
		for j, p := range tp.LHS {
			ct.LHS[j] = patternToCell(p)
		}
		for j, p := range tp.RHS {
			ct.RHS[j] = patternToCell(p)
		}
		c.Tableau[i] = ct
	}
	return c, nil
}

func patternToCell(p Pattern) CFDCell {
	if p.Op == Wildcard {
		return CFDAny()
	}
	return CFDConst(p.Set[0])
}

// FD is a plain functional dependency X → Y over a schema: the special
// case of a CFD whose tableau is a single all-wildcard row.
type FD struct {
	Schema *relation.Schema
	X, Y   []string
}

// AsECFD embeds the FD as an eCFD with one all-wildcard pattern tuple.
func (f *FD) AsECFD() *ECFD {
	e := &ECFD{Schema: f.Schema}
	e.X = append([]string(nil), f.X...)
	e.Y = append([]string(nil), f.Y...)
	tp := PatternTuple{LHS: make([]Pattern, len(f.X)), RHS: make([]Pattern, len(f.Y))}
	for i := range tp.LHS {
		tp.LHS[i] = Any()
	}
	for i := range tp.RHS {
		tp.RHS[i] = Any()
	}
	e.Tableau = []PatternTuple{tp}
	return e
}
