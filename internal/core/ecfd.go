package core

import (
	"fmt"
	"strings"

	"ecfd/internal/relation"
)

// PatternTuple is one row tp of a pattern tableau: cells for the LHS
// attributes X (in ECFD.X order) and for the RHS attributes Y ∪ Yp (in
// ECFD.Y then ECFD.YP order). Each row is itself a constraint — the
// paper calls it a pattern constraint.
type PatternTuple struct {
	LHS []Pattern // one per X attribute
	RHS []Pattern // one per Y attribute, then one per Yp attribute
}

// Clone deep-copies the pattern tuple.
func (tp PatternTuple) Clone() PatternTuple {
	out := PatternTuple{LHS: make([]Pattern, len(tp.LHS)), RHS: make([]Pattern, len(tp.RHS))}
	copy(out.LHS, tp.LHS)
	copy(out.RHS, tp.RHS)
	return out
}

// ECFD is an extended conditional functional dependency
// φ = (R: X → Y, Yp, Tp) — paper §II. X is LHS(φ); Y ∪ Yp is RHS(φ);
// the embedded FD X → Y is enforced on the tuples matching tp[X], and
// every matching tuple must additionally match tp[Y, Yp].
type ECFD struct {
	// Name optionally labels the constraint (φ1, φ2, ... in the paper).
	Name string
	// Schema is the relation schema R the dependency is defined on.
	Schema *relation.Schema
	// X, Y, YP are attribute names; X∩(Y∪YP) may overlap between X and
	// Y (the paper allows A in both sides, addressed as A_L and A_R)
	// but Y and YP must be disjoint.
	X, Y, YP []string
	// Tableau is the pattern tableau Tp.
	Tableau []PatternTuple
}

// RHS returns Y ∪ Yp in tableau column order.
func (e *ECFD) RHS() []string {
	out := make([]string, 0, len(e.Y)+len(e.YP))
	out = append(out, e.Y...)
	out = append(out, e.YP...)
	return out
}

// Validate checks the syntactic side conditions of §II.
func (e *ECFD) Validate() error {
	if e.Schema == nil {
		return fmt.Errorf("core: eCFD %s has no schema", e.label())
	}
	seen := map[string]bool{}
	for _, a := range e.X {
		if !e.Schema.Has(a) {
			return fmt.Errorf("core: eCFD %s: LHS attribute %q not in %s", e.label(), a, e.Schema.Name)
		}
		if seen[a] {
			return fmt.Errorf("core: eCFD %s: duplicate LHS attribute %q", e.label(), a)
		}
		seen[a] = true
	}
	seenR := map[string]bool{}
	for _, a := range e.RHS() {
		if !e.Schema.Has(a) {
			return fmt.Errorf("core: eCFD %s: RHS attribute %q not in %s", e.label(), a, e.Schema.Name)
		}
		if seenR[a] {
			// Covers both duplicates within Y/YP and the Y ∩ Yp = ∅ rule.
			return fmt.Errorf("core: eCFD %s: attribute %q appears twice on the RHS", e.label(), a)
		}
		seenR[a] = true
	}
	if len(e.Tableau) == 0 {
		return fmt.Errorf("core: eCFD %s: empty pattern tableau", e.label())
	}
	for i, tp := range e.Tableau {
		if len(tp.LHS) != len(e.X) {
			return fmt.Errorf("core: eCFD %s: pattern tuple %d has %d LHS cells, want %d", e.label(), i, len(tp.LHS), len(e.X))
		}
		if len(tp.RHS) != len(e.Y)+len(e.YP) {
			return fmt.Errorf("core: eCFD %s: pattern tuple %d has %d RHS cells, want %d", e.label(), i, len(tp.RHS), len(e.Y)+len(e.YP))
		}
		for j, p := range tp.LHS {
			attr, _ := e.Schema.Attr(e.X[j])
			if err := p.Validate(attr); err != nil {
				return fmt.Errorf("core: eCFD %s pattern tuple %d: %w", e.label(), i, err)
			}
		}
		for j, p := range tp.RHS {
			attr, _ := e.Schema.Attr(e.RHS()[j])
			if err := p.Validate(attr); err != nil {
				return fmt.Errorf("core: eCFD %s pattern tuple %d: %w", e.label(), i, err)
			}
		}
	}
	return nil
}

func (e *ECFD) label() string {
	if e.Name != "" {
		return e.Name
	}
	return "(unnamed)"
}

// Clone deep-copies the eCFD.
func (e *ECFD) Clone() *ECFD {
	out := &ECFD{Name: e.Name, Schema: e.Schema}
	out.X = append([]string(nil), e.X...)
	out.Y = append([]string(nil), e.Y...)
	out.YP = append([]string(nil), e.YP...)
	out.Tableau = make([]PatternTuple, len(e.Tableau))
	for i, tp := range e.Tableau {
		out.Tableau[i] = tp.Clone()
	}
	return out
}

// Split returns one single-pattern-tuple eCFD per tableau row, as §V
// assumes ("we can always split an eCFD with multiple patterns into a
// set of eCFDs with only a single pattern tuple"). Names get a #i
// suffix when splitting actually happens.
func (e *ECFD) Split() []*ECFD {
	if len(e.Tableau) == 1 {
		return []*ECFD{e.Clone()}
	}
	out := make([]*ECFD, len(e.Tableau))
	for i, tp := range e.Tableau {
		c := e.Clone()
		c.Tableau = []PatternTuple{tp.Clone()}
		if c.Name != "" {
			c.Name = fmt.Sprintf("%s#%d", c.Name, i+1)
		}
		out[i] = c
	}
	return out
}

// Split splits every eCFD in the list into single-pattern constraints.
func Split(es []*ECFD) []*ECFD {
	var out []*ECFD
	for _, e := range es {
		out = append(out, e.Split()...)
	}
	return out
}

// MatchesLHS reports t[X] ≍ tp[X] for tableau row i: whether the
// constraint applies to data tuple t.
func (e *ECFD) MatchesLHS(t relation.Tuple, i int) bool {
	tp := e.Tableau[i]
	for j, a := range e.X {
		if !tp.LHS[j].Matches(t[e.Schema.Index(a)]) {
			return false
		}
	}
	return true
}

// MatchesRHS reports t[Y, Yp] ≍ tp[Y, Yp] for tableau row i.
func (e *ECFD) MatchesRHS(t relation.Tuple, i int) bool {
	tp := e.Tableau[i]
	rhs := e.RHS()
	for j, a := range rhs {
		if !tp.RHS[j].Matches(t[e.Schema.Index(a)]) {
			return false
		}
	}
	return true
}

// String renders the eCFD in the constraint language understood by
// Parse; ParseConstraints(e.String()) round-trips.
func (e *ECFD) String() string {
	var b strings.Builder
	b.WriteString("ecfd")
	if e.Name != "" {
		b.WriteByte(' ')
		b.WriteString(e.Name)
	}
	b.WriteString(" on ")
	b.WriteString(e.Schema.Name)
	b.WriteString(": [")
	b.WriteString(strings.Join(e.X, ", "))
	b.WriteString("] -> [")
	b.WriteString(strings.Join(e.Y, ", "))
	b.WriteString("]")
	if len(e.YP) > 0 {
		b.WriteString(" ; [")
		b.WriteString(strings.Join(e.YP, ", "))
		b.WriteString("]")
	}
	b.WriteString(" {\n")
	for _, tp := range e.Tableau {
		b.WriteString("  (")
		for j, p := range tp.LHS {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
		b.WriteString(" || ")
		for j, p := range tp.RHS {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
		b.WriteString(")\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// IsCFD reports whether the eCFD is expressible as a classic CFD:
// Yp = ∅ and every non-wildcard cell is a singleton set (Remark (2)).
func (e *ECFD) IsCFD() bool {
	if len(e.YP) != 0 {
		return false
	}
	for _, tp := range e.Tableau {
		for _, p := range append(append([]Pattern{}, tp.LHS...), tp.RHS...) {
			if p.Op == NotIn {
				return false
			}
			if p.Op == In && len(p.Set) != 1 {
				return false
			}
		}
	}
	return true
}
