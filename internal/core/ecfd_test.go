package core

import (
	"strings"
	"testing"

	"ecfd/internal/relation"
)

func TestFig2ConstraintsValidate(t *testing.T) {
	for _, e := range Fig2Constraints() {
		if err := e.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	s := CustSchema()
	base := func() *ECFD {
		return &ECFD{Name: "x", Schema: s, X: []string{"CT"}, Y: []string{"AC"},
			Tableau: []PatternTuple{{LHS: []Pattern{Any()}, RHS: []Pattern{Any()}}}}
	}

	e := base()
	e.Schema = nil
	if err := e.Validate(); err == nil {
		t.Error("nil schema must fail")
	}

	e = base()
	e.X = []string{"NOPE"}
	if err := e.Validate(); err == nil {
		t.Error("unknown LHS attribute must fail")
	}

	e = base()
	e.X = []string{"CT", "CT"}
	e.Tableau[0].LHS = []Pattern{Any(), Any()}
	if err := e.Validate(); err == nil {
		t.Error("duplicate LHS attribute must fail")
	}

	e = base()
	e.YP = []string{"AC"} // AC already in Y ⇒ Y ∩ Yp ≠ ∅
	e.Tableau[0].RHS = []Pattern{Any(), Any()}
	if err := e.Validate(); err == nil {
		t.Error("Y ∩ Yp ≠ ∅ must fail")
	}

	e = base()
	e.Tableau = nil
	if err := e.Validate(); err == nil {
		t.Error("empty tableau must fail")
	}

	e = base()
	e.Tableau[0].LHS = []Pattern{}
	if err := e.Validate(); err == nil {
		t.Error("LHS arity mismatch must fail")
	}

	e = base()
	e.Tableau[0].RHS = []Pattern{Any(), Any()}
	if err := e.Validate(); err == nil {
		t.Error("RHS arity mismatch must fail")
	}

	e = base()
	e.Tableau[0].LHS = []Pattern{{Op: In}}
	if err := e.Validate(); err == nil {
		t.Error("invalid pattern must fail")
	}
}

func TestECFDAllowsAttributeInBothSides(t *testing.T) {
	// Example 3.1 uses CT → CT; the paper addresses the two sides as
	// CT_L and CT_R.
	e := Example31Unsatisfiable()
	if err := e.Validate(); err != nil {
		t.Fatalf("CT → CT must validate: %v", err)
	}
}

func TestSplit(t *testing.T) {
	phi1 := Fig2Constraints()[0]
	parts := phi1.Split()
	if len(parts) != 2 {
		t.Fatalf("Split: %d parts", len(parts))
	}
	if parts[0].Name != "phi1#1" || parts[1].Name != "phi1#2" {
		t.Errorf("names: %s, %s", parts[0].Name, parts[1].Name)
	}
	for _, p := range parts {
		if len(p.Tableau) != 1 {
			t.Error("each part must have one pattern tuple")
		}
		if err := p.Validate(); err != nil {
			t.Error(err)
		}
	}
	// Splitting a single-pattern eCFD returns a clone with the same name.
	phi2 := Fig2Constraints()[1]
	ps := phi2.Split()
	if len(ps) != 1 || ps[0].Name != "phi2" {
		t.Errorf("single split: %v", ps[0].Name)
	}
	// Mutating the clone must not touch the original.
	ps[0].Tableau[0].LHS[0] = Any()
	if phi2.Tableau[0].LHS[0].Op == Wildcard {
		t.Error("Split must deep-copy")
	}

	all := Split(Fig2Constraints())
	if len(all) != 3 {
		t.Errorf("Split(Σ) = %d constraints, want 3", len(all))
	}
}

func TestMatchSemantics(t *testing.T) {
	// The worked example under "Semantics" in §II: t1 matches the first
	// pattern tuple of φ1 on [CT, AC]; t4 does not.
	inst := Fig1Instance()
	phi1 := Fig2Constraints()[0]
	t1, t4 := inst.Rows[0], inst.Rows[3]
	if !phi1.MatchesLHS(t1, 0) {
		t.Error("t1[CT] must match !{NYC, LI}")
	}
	if !phi1.MatchesRHS(t1, 0) {
		t.Error("t1[AC] must match '_'")
	}
	if phi1.MatchesLHS(t4, 0) {
		t.Error("t4[CT]=NYC must not match !{NYC, LI}")
	}
}

func TestIsCFDAndRoundTrip(t *testing.T) {
	s := CustSchema()
	cfd := &CFD{
		Name:   "c1",
		Schema: s,
		X:      []string{"CT"},
		Y:      []string{"AC"},
		Tableau: []CFDPatternTuple{
			{LHS: []CFDCell{CFDConst(relation.Text("Albany"))}, RHS: []CFDCell{CFDConst(relation.Text("518"))}},
			{LHS: []CFDCell{CFDAny()}, RHS: []CFDCell{CFDAny()}},
		},
	}
	e := cfd.AsECFD()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if !e.IsCFD() {
		t.Error("embedded CFD must report IsCFD")
	}
	back, err := FromECFD(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tableau) != 2 || back.Tableau[0].LHS[0].Value.S != "Albany" || !back.Tableau[1].LHS[0].Wildcard {
		t.Errorf("round trip: %+v", back.Tableau)
	}

	for _, phi := range Fig2Constraints() {
		if phi.IsCFD() {
			t.Errorf("%s uses eCFD-only features but reports IsCFD", phi.Name)
		}
		if _, err := FromECFD(phi); err == nil {
			t.Errorf("FromECFD(%s) must fail", phi.Name)
		}
	}
}

func TestFDAsECFD(t *testing.T) {
	fd := &FD{Schema: CustSchema(), X: []string{"ZIP"}, Y: []string{"CT", "STR"}}
	e := fd.AsECFD()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if !e.IsCFD() {
		t.Error("plain FD must be a CFD")
	}
	for _, p := range append(e.Tableau[0].LHS, e.Tableau[0].RHS...) {
		if p.Op != Wildcard {
			t.Error("FD tableau must be all wildcards")
		}
	}
}

func TestStringRendering(t *testing.T) {
	phi2 := Fig2Constraints()[1]
	s := phi2.String()
	for _, want := range []string{"ecfd phi2 on cust", "[CT] -> []", "; [AC]", "{NYC}", "212"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
