package core

import "ecfd/internal/relation"

// CustSchema returns the paper's running-example schema
// cust(AC, PN, NM, STR, CT, ZIP) — Example 1.1.
func CustSchema() *relation.Schema {
	return relation.MustSchema("cust",
		relation.Attribute{Name: "AC", Kind: relation.KindText},
		relation.Attribute{Name: "PN", Kind: relation.KindText},
		relation.Attribute{Name: "NM", Kind: relation.KindText},
		relation.Attribute{Name: "STR", Kind: relation.KindText},
		relation.Attribute{Name: "CT", Kind: relation.KindText},
		relation.Attribute{Name: "ZIP", Kind: relation.KindText},
	)
}

// Fig1Instance returns the instance D0 of Fig. 1 (tuples t1..t6).
func Fig1Instance() *relation.Relation {
	s := CustSchema()
	r := relation.New(s)
	rows := [][]string{
		{"718", "1111111", "Mike", "Tree Ave.", "Albany", "12238"},
		{"518", "2222222", "Joe", "Elm Str.", "Colonie", "12205"},
		{"518", "2222222", "Jim", "Oak Ave.", "Troy", "12181"},
		{"100", "1111111", "Rick", "8th Ave.", "NYC", "10001"},
		{"212", "3333333", "Ben", "5th Ave.", "NYC", "10016"},
		{"646", "4444444", "Ian", "High St.", "NYC", "10011"},
	}
	for _, row := range rows {
		t := make(relation.Tuple, len(row))
		for i, v := range row {
			t[i] = relation.Text(v)
		}
		r.MustInsert(t)
	}
	return r
}

// Fig2Constraints returns φ1 and φ2 of Fig. 2:
//
//	φ1 = (cust: [CT] → [AC], ∅, T1)   T1 = { (!{NYC,LI} ‖ _),
//	                                        ({Albany,Troy,Colonie} ‖ {518}) }
//	φ2 = (cust: [CT] → ∅, {AC}, T2)  T2 = { ({NYC} ‖ {212,718,646,347,917}) }
//
// φ1 expresses constraints ψ1 and ψ2 of Example 1.1; φ2 expresses ψ3.
func Fig2Constraints() []*ECFD {
	s := CustSchema()
	phi1 := &ECFD{
		Name:   "phi1",
		Schema: s,
		X:      []string{"CT"},
		Y:      []string{"AC"},
		Tableau: []PatternTuple{
			{LHS: []Pattern{NotInStrings("NYC", "LI")}, RHS: []Pattern{Any()}},
			{LHS: []Pattern{InStrings("Albany", "Troy", "Colonie")}, RHS: []Pattern{InStrings("518")}},
		},
	}
	phi2 := &ECFD{
		Name:   "phi2",
		Schema: s,
		X:      []string{"CT"},
		YP:     []string{"AC"},
		Tableau: []PatternTuple{
			{LHS: []Pattern{InStrings("NYC")}, RHS: []Pattern{InStrings("212", "718", "646", "347", "917")}},
		},
	}
	return []*ECFD{phi1, phi2}
}

// Example31Unsatisfiable returns the unsatisfiable eCFD ψ3 of
// Example 3.1: (cust: [CT] → [CT], ∅, {({NYC} ‖ {NYC}), ({NYC} ‖ {LI})}).
// Any tuple with CT = NYC must have CT = NYC and CT = LI at once.
func Example31Unsatisfiable() *ECFD {
	s := CustSchema()
	return &ECFD{
		Name:   "psi3",
		Schema: s,
		X:      []string{"CT"},
		Y:      []string{"CT"},
		Tableau: []PatternTuple{
			{LHS: []Pattern{InStrings("NYC")}, RHS: []Pattern{InStrings("NYC")}},
			{LHS: []Pattern{InStrings("NYC")}, RHS: []Pattern{InStrings("LI")}},
		},
	}
}
