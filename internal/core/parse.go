package core

import (
	"fmt"
	"strings"
	"unicode"

	"ecfd/internal/relation"
)

// ParseConstraints reads eCFDs in the textual constraint language:
//
//	# comments run to end of line
//	ecfd phi1 on cust: [CT] -> [AC] {
//	  (!{NYC, LI} || _)
//	  ({Albany, Troy, Colonie} || {518})
//	}
//	ecfd phi2 on cust: [CT] -> [] ; [AC] {
//	  ({NYC} || {212, 718, 646, 347, 917})
//	}
//
// The optional "; [ ... ]" block after the Y attribute list declares
// the Yp attributes. A bare constant cell c is sugar for {c}; '!' in
// front of a set complements it; '_' is the wildcard. Constants are
// typed by the attribute they constrain, so schemas for every table
// mentioned must be supplied.
func ParseConstraints(src string, schemas map[string]*relation.Schema) ([]*ECFD, error) {
	p := &cparser{lex: newCLexer(src), schemas: schemas}
	var out []*ECFD
	for {
		tok := p.peek()
		if tok.kind == ctEOF {
			break
		}
		e, err := p.constraint()
		if err != nil {
			return nil, err
		}
		if err := e.Validate(); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	if p.err != nil {
		return nil, p.err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no constraints found")
	}
	return out, nil
}

// --- lexer ---

type ctKind uint8

const (
	ctEOF ctKind = iota
	ctWord
	ctString
	ctPunct
)

type ctoken struct {
	kind ctKind
	text string
	line int
}

type clexer struct {
	src  string
	pos  int
	line int
}

func newCLexer(src string) *clexer { return &clexer{src: src, line: 1} }

func isWordRune(r rune) bool {
	return r == '_' || r == '.' || r == '-' || r == '#' || r == '@' || r == '+' ||
		unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *clexer) next() (ctoken, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return ctoken{kind: ctEOF, line: l.line}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\\' && l.pos+1 < len(l.src) {
				b.WriteByte(l.src[l.pos+1])
				l.pos += 2
				continue
			}
			if ch == '\'' {
				l.pos++
				return ctoken{kind: ctString, text: b.String(), line: l.line}, nil
			}
			if ch == '\n' {
				l.line++
			}
			b.WriteByte(ch)
			l.pos++
		}
		return ctoken{}, fmt.Errorf("core: line %d: unterminated string", l.line)
	case strings.HasPrefix(l.src[l.pos:], "->"):
		l.pos += 2
		return ctoken{kind: ctPunct, text: "->", line: l.line}, nil
	case strings.HasPrefix(l.src[l.pos:], "||"):
		l.pos += 2
		return ctoken{kind: ctPunct, text: "||", line: l.line}, nil
	case strings.ContainsRune("[](){},:;!", rune(c)):
		l.pos++
		return ctoken{kind: ctPunct, text: string(c), line: l.line}, nil
	default:
		for l.pos < len(l.src) {
			r := rune(l.src[l.pos])
			if !isWordRune(r) {
				break
			}
			l.pos++
		}
		if l.pos == start {
			return ctoken{}, fmt.Errorf("core: line %d: unexpected character %q", l.line, c)
		}
		return ctoken{kind: ctWord, text: l.src[start:l.pos], line: l.line}, nil
	}
}

// --- parser ---

type cparser struct {
	lex     *clexer
	schemas map[string]*relation.Schema
	peeked  *ctoken
	err     error
}

func (p *cparser) peek() ctoken {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			p.err = err
			t = ctoken{kind: ctEOF}
		}
		p.peeked = &t
	}
	return *p.peeked
}

func (p *cparser) advance() ctoken {
	t := p.peek()
	p.peeked = nil
	return t
}

func (p *cparser) expectPunct(text string) (ctoken, error) {
	t := p.advance()
	if p.err != nil {
		return t, p.err
	}
	if t.kind != ctPunct || t.text != text {
		return t, fmt.Errorf("core: line %d: expected %q, got %q", t.line, text, t.text)
	}
	return t, nil
}

func (p *cparser) expectWord() (ctoken, error) {
	t := p.advance()
	if p.err != nil {
		return t, p.err
	}
	if t.kind != ctWord {
		return t, fmt.Errorf("core: line %d: expected identifier, got %q", t.line, t.text)
	}
	return t, nil
}

func (p *cparser) constraint() (*ECFD, error) {
	kw, err := p.expectWord()
	if err != nil {
		return nil, err
	}
	if kw.text != "ecfd" && kw.text != "cfd" {
		return nil, fmt.Errorf("core: line %d: expected 'ecfd' or 'cfd', got %q", kw.line, kw.text)
	}
	asCFD := kw.text == "cfd"

	e := &ECFD{}
	if t := p.peek(); t.kind == ctWord && t.text != "on" {
		e.Name = p.advance().text
	}
	on, err := p.expectWord()
	if err != nil {
		return nil, err
	}
	if on.text != "on" {
		return nil, fmt.Errorf("core: line %d: expected 'on', got %q", on.line, on.text)
	}
	tbl, err := p.expectWord()
	if err != nil {
		return nil, err
	}
	schema, ok := p.schemas[tbl.text]
	if !ok {
		return nil, fmt.Errorf("core: line %d: unknown table %q", tbl.line, tbl.text)
	}
	e.Schema = schema
	if _, err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	if e.X, err = p.attrList(); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("->"); err != nil {
		return nil, err
	}
	if e.Y, err = p.attrList(); err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == ctPunct && t.text == ";" {
		p.advance()
		if e.YP, err = p.attrList(); err != nil {
			return nil, err
		}
		if asCFD {
			return nil, fmt.Errorf("core: line %d: classic CFDs do not allow Yp attributes", t.line)
		}
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	rhs := e.RHS()
	for {
		t := p.peek()
		if t.kind == ctPunct && t.text == "}" {
			p.advance()
			break
		}
		if t.kind == ctPunct && t.text == "," {
			p.advance()
			continue
		}
		tp, err := p.patternTuple(e.Schema, e.X, rhs, asCFD)
		if err != nil {
			return nil, err
		}
		e.Tableau = append(e.Tableau, tp)
	}
	return e, nil
}

func (p *cparser) attrList() ([]string, error) {
	if _, err := p.expectPunct("["); err != nil {
		return nil, err
	}
	var out []string
	for {
		t := p.peek()
		if t.kind == ctPunct && t.text == "]" {
			p.advance()
			return out, nil
		}
		if t.kind == ctPunct && t.text == "," {
			p.advance()
			continue
		}
		w, err := p.expectWord()
		if err != nil {
			return nil, err
		}
		out = append(out, w.text)
	}
}

func (p *cparser) patternTuple(s *relation.Schema, x, rhs []string, asCFD bool) (PatternTuple, error) {
	var tp PatternTuple
	if _, err := p.expectPunct("("); err != nil {
		return tp, err
	}
	lhs, err := p.cells(s, x, "||", asCFD)
	if err != nil {
		return tp, err
	}
	if _, err := p.expectPunct("||"); err != nil {
		return tp, err
	}
	r, err := p.cells(s, rhs, ")", asCFD)
	if err != nil {
		return tp, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return tp, err
	}
	tp.LHS, tp.RHS = lhs, r
	return tp, nil
}

// cells parses exactly len(attrs) comma-separated pattern cells, typing
// each constant by the corresponding attribute.
func (p *cparser) cells(s *relation.Schema, attrs []string, stop string, asCFD bool) ([]Pattern, error) {
	out := make([]Pattern, 0, len(attrs))
	for i := range attrs {
		if i > 0 {
			if _, err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		attr, ok := s.Attr(attrs[i])
		if !ok {
			return nil, fmt.Errorf("core: unknown attribute %q in %s", attrs[i], s.Name)
		}
		c, err := p.cell(attr, asCFD)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if t := p.peek(); !(t.kind == ctPunct && t.text == stop) {
		return nil, fmt.Errorf("core: line %d: expected %q after %d pattern cells, got %q", t.line, stop, len(attrs), t.text)
	}
	return out, nil
}

func (p *cparser) cell(attr relation.Attribute, asCFD bool) (Pattern, error) {
	t := p.peek()
	switch {
	case t.kind == ctWord && t.text == "_":
		p.advance()
		return Any(), nil
	case t.kind == ctPunct && t.text == "!":
		p.advance()
		if asCFD {
			return Pattern{}, fmt.Errorf("core: line %d: classic CFDs do not allow '!' (inequality)", t.line)
		}
		set, err := p.set(attr)
		if err != nil {
			return Pattern{}, err
		}
		return NotInSet(set...), nil
	case t.kind == ctPunct && t.text == "{":
		set, err := p.set(attr)
		if err != nil {
			return Pattern{}, err
		}
		if asCFD && len(set) != 1 {
			return Pattern{}, fmt.Errorf("core: line %d: classic CFDs allow only singleton sets", t.line)
		}
		return InSet(set...), nil
	case t.kind == ctWord || t.kind == ctString:
		v, err := p.constant(attr)
		if err != nil {
			return Pattern{}, err
		}
		return Const(v), nil
	default:
		return Pattern{}, fmt.Errorf("core: line %d: expected pattern cell, got %q", t.line, t.text)
	}
}

func (p *cparser) set(attr relation.Attribute) ([]relation.Value, error) {
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []relation.Value
	for {
		t := p.peek()
		if t.kind == ctPunct && t.text == "}" {
			p.advance()
			return out, nil
		}
		if t.kind == ctPunct && t.text == "," {
			p.advance()
			continue
		}
		v, err := p.constant(attr)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
}

func (p *cparser) constant(attr relation.Attribute) (relation.Value, error) {
	t := p.advance()
	if p.err != nil {
		return relation.Null(), p.err
	}
	switch t.kind {
	case ctString:
		if attr.Kind != relation.KindText {
			return relation.ParseLiteral(t.text, attr.Kind)
		}
		return relation.Text(t.text), nil
	case ctWord:
		v, err := relation.ParseLiteral(t.text, attr.Kind)
		if err != nil {
			return relation.Null(), fmt.Errorf("core: line %d: %w", t.line, err)
		}
		return v, nil
	default:
		return relation.Null(), fmt.Errorf("core: line %d: expected constant, got %q", t.line, t.text)
	}
}
