package core

import (
	"strings"
	"testing"

	"ecfd/internal/relation"
)

func custSchemas() map[string]*relation.Schema {
	return map[string]*relation.Schema{"cust": CustSchema()}
}

const fig2Source = `
# φ1 and φ2 of Fig. 2
ecfd phi1 on cust: [CT] -> [AC] {
  (!{NYC, LI} || _)
  ({Albany, Troy, Colonie} || {'518'})
}
ecfd phi2 on cust: [CT] -> [] ; [AC] {
  ({NYC} || {'212', '718', '646', '347', '917'})
}
`

func TestParseFig2(t *testing.T) {
	got, err := ParseConstraints(fig2Source, custSchemas())
	if err != nil {
		t.Fatal(err)
	}
	want := Fig2Constraints()
	if len(got) != len(want) {
		t.Fatalf("parsed %d constraints, want %d", len(got), len(want))
	}
	for i := range got {
		assertECFDEqual(t, got[i], want[i])
	}
}

func assertECFDEqual(t *testing.T, got, want *ECFD) {
	t.Helper()
	if got.Name != want.Name || got.Schema.Name != want.Schema.Name {
		t.Errorf("name/schema: %s/%s vs %s/%s", got.Name, got.Schema.Name, want.Name, want.Schema.Name)
	}
	if strings.Join(got.X, ",") != strings.Join(want.X, ",") ||
		strings.Join(got.Y, ",") != strings.Join(want.Y, ",") ||
		strings.Join(got.YP, ",") != strings.Join(want.YP, ",") {
		t.Errorf("attribute lists differ: %v→%v;%v vs %v→%v;%v", got.X, got.Y, got.YP, want.X, want.Y, want.YP)
	}
	if len(got.Tableau) != len(want.Tableau) {
		t.Fatalf("tableau sizes: %d vs %d", len(got.Tableau), len(want.Tableau))
	}
	for i := range got.Tableau {
		for j := range got.Tableau[i].LHS {
			if !got.Tableau[i].LHS[j].Equal(want.Tableau[i].LHS[j]) {
				t.Errorf("tableau[%d].LHS[%d]: %v vs %v", i, j, got.Tableau[i].LHS[j], want.Tableau[i].LHS[j])
			}
		}
		for j := range got.Tableau[i].RHS {
			if !got.Tableau[i].RHS[j].Equal(want.Tableau[i].RHS[j]) {
				t.Errorf("tableau[%d].RHS[%d]: %v vs %v", i, j, got.Tableau[i].RHS[j], want.Tableau[i].RHS[j])
			}
		}
	}
}

// TestStringRoundTrip: ParseConstraints(e.String()) reproduces e.
func TestStringRoundTrip(t *testing.T) {
	for _, e := range append(Fig2Constraints(), Example31Unsatisfiable()) {
		src := e.String()
		back, err := ParseConstraints(src, custSchemas())
		if err != nil {
			t.Fatalf("%s: re-parse: %v\n%s", e.Name, err, src)
		}
		if len(back) != 1 {
			t.Fatalf("%s: re-parse yielded %d constraints", e.Name, len(back))
		}
		assertECFDEqual(t, back[0], e)
	}
}

func TestParseSugarAndTypes(t *testing.T) {
	schemas := map[string]*relation.Schema{
		"m": relation.MustSchema("m",
			relation.Attribute{Name: "K", Kind: relation.KindText},
			relation.Attribute{Name: "N", Kind: relation.KindInt},
			relation.Attribute{Name: "F", Kind: relation.KindFloat},
		),
	}
	src := `
ecfd e1 on m: [K] -> [N, F] {
  (abc || {1, 2, 3}, _)
  ('with space' || !{7}, 2.5)
}
`
	es, err := ParseConstraints(src, schemas)
	if err != nil {
		t.Fatal(err)
	}
	e := es[0]
	// Bare constant sugar: "abc" ⇒ {abc}.
	if v, ok := e.Tableau[0].LHS[0].IsConst(); !ok || v.S != "abc" {
		t.Errorf("bare constant cell: %v", e.Tableau[0].LHS[0])
	}
	// Integer typing.
	if e.Tableau[0].RHS[0].Set[0].K != relation.KindInt {
		t.Errorf("int set got kind %v", e.Tableau[0].RHS[0].Set[0].K)
	}
	// Quoted string with space.
	if v, ok := e.Tableau[1].LHS[0].IsConst(); !ok || v.S != "with space" {
		t.Errorf("quoted cell: %v", e.Tableau[1].LHS[0])
	}
	// NotIn over ints; float constant.
	if e.Tableau[1].RHS[0].Op != NotIn || e.Tableau[1].RHS[1].Set[0].F != 2.5 {
		t.Errorf("tableau row 2: %v", e.Tableau[1])
	}
}

func TestParseCFDKeyword(t *testing.T) {
	src := `cfd c1 on cust: [CT] -> [AC] { (Albany || '518') (_ || _) }`
	es, err := ParseConstraints(src, custSchemas())
	if err != nil {
		t.Fatal(err)
	}
	if !es[0].IsCFD() {
		t.Error("cfd keyword must produce a classic CFD")
	}

	bad := []string{
		`cfd c on cust: [CT] -> [AC] { (!{NYC} || _) }`,         // inequality
		`cfd c on cust: [CT] -> [AC] { ({a, b} || _) }`,         // disjunction
		`cfd c on cust: [CT] -> [] ; [AC] { ({NYC} || {212}) }`, // Yp
	}
	for _, src := range bad {
		if _, err := ParseConstraints(src, custSchemas()); err == nil {
			t.Errorf("must reject: %s", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"empty":             ``,
		"garbage":           `hello world`,
		"unknown table":     `ecfd on nosuch: [A] -> [B] { (_ || _) }`,
		"unknown attribute": `ecfd on cust: [WHAT] -> [AC] { (_ || _) }`,
		"missing arrow":     `ecfd on cust: [CT] [AC] { (_ || _) }`,
		"missing tableau":   `ecfd on cust: [CT] -> [AC]`,
		"arity mismatch":    `ecfd on cust: [CT] -> [AC] { (_, _ || _) }`,
		"unterminated str":  `ecfd on cust: [CT] -> [AC] { ('abc || _) }`,
		"empty tableau":     `ecfd on cust: [CT] -> [AC] { }`,
		"bad cell":          `ecfd on cust: [CT] -> [AC] { (-> || _) }`,
		"stray char":        `ecfd on cust: [CT] -> [AC] { (_ || _) } %`,
		"empty in set":      `ecfd on cust: [CT] -> [AC] { ({} || _) }`,
	}
	for name, src := range bad {
		if _, err := ParseConstraints(src, custSchemas()); err == nil {
			t.Errorf("%s: expected parse error for %q", name, src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := "# leading comment\necfd on cust: [CT] -> [AC] { # inline\n (_ || _) # trailing\n}\n# done"
	es, err := ParseConstraints(src, custSchemas())
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 {
		t.Fatalf("got %d constraints", len(es))
	}
}
