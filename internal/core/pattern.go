// Package core implements the paper's §II: the syntax and semantics of
// extended conditional functional dependencies (eCFDs), the classic CFD
// special case, a textual constraint language, and a naive in-memory
// violation oracle used to cross-check the SQL-based detectors.
package core

import (
	"fmt"
	"sort"
	"strings"

	"ecfd/internal/relation"
)

// PatternOp distinguishes the three forms a pattern cell can take:
// the unnamed variable '_', a finite set S (t[A] ∈ S, "disjunction"),
// or a complement set S̄ (t[A] ∉ S, "inequality").
type PatternOp uint8

const (
	// Wildcard matches any domain value ('_' in the paper).
	Wildcard PatternOp = iota
	// In matches values inside the finite set S.
	In
	// NotIn matches values outside the finite set S.
	NotIn
)

func (op PatternOp) String() string {
	switch op {
	case Wildcard:
		return "_"
	case In:
		return "in"
	case NotIn:
		return "not-in"
	default:
		return fmt.Sprintf("PatternOp(%d)", uint8(op))
	}
}

// Pattern is one cell tp[A] of a pattern tuple: an operator plus, for
// In/NotIn, a finite non-empty set of constants.
type Pattern struct {
	Op  PatternOp
	Set []relation.Value // sorted, deduplicated; nil for Wildcard
}

// Any returns the wildcard pattern '_'.
func Any() Pattern { return Pattern{Op: Wildcard} }

// InSet returns the pattern t[A] ∈ {vs...}.
func InSet(vs ...relation.Value) Pattern { return Pattern{Op: In, Set: normalizeSet(vs)} }

// NotInSet returns the pattern t[A] ∉ {vs...}.
func NotInSet(vs ...relation.Value) Pattern { return Pattern{Op: NotIn, Set: normalizeSet(vs)} }

// Const returns the singleton pattern t[A] ∈ {v} — the only non-wildcard
// form a classic CFD allows (paper Remark (2)).
func Const(v relation.Value) Pattern { return InSet(v) }

// InStrings and NotInStrings are text-set conveniences.
func InStrings(ss ...string) Pattern { return InSet(texts(ss)...) }

// NotInStrings returns t[A] ∉ {ss...} over text values.
func NotInStrings(ss ...string) Pattern { return NotInSet(texts(ss)...) }

func texts(ss []string) []relation.Value {
	vs := make([]relation.Value, len(ss))
	for i, s := range ss {
		vs[i] = relation.Text(s)
	}
	return vs
}

func normalizeSet(vs []relation.Value) []relation.Value {
	out := make([]relation.Value, 0, len(vs))
	out = append(out, vs...)
	sort.Slice(out, func(i, j int) bool { return relation.Compare(out[i], out[j]) < 0 })
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || relation.Compare(out[i-1], v) != 0 {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// Matches reports whether value v matches this pattern cell: the ≍
// relation of the paper restricted to one attribute. NULL matches only
// the wildcard (a missing value cannot be asserted in or out of a set).
func (p Pattern) Matches(v relation.Value) bool {
	switch p.Op {
	case Wildcard:
		return true
	case In:
		if v.IsNull() {
			return false
		}
		return p.contains(v)
	case NotIn:
		if v.IsNull() {
			return false
		}
		return !p.contains(v)
	default:
		return false
	}
}

func (p Pattern) contains(v relation.Value) bool {
	// Set is sorted by relation.Compare; binary search.
	lo, hi := 0, len(p.Set)
	for lo < hi {
		mid := (lo + hi) / 2
		switch relation.Compare(p.Set[mid], v) {
		case -1:
			lo = mid + 1
		case 1:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// Validate checks the well-formedness rules of §II: In/NotIn sets must
// be finite, non-empty sets of non-NULL constants; when the attribute
// has a finite domain the set must be a subset of it.
func (p Pattern) Validate(attr relation.Attribute) error {
	switch p.Op {
	case Wildcard:
		if p.Set != nil {
			return fmt.Errorf("core: wildcard pattern for %s must not carry a set", attr.Name)
		}
		return nil
	case In, NotIn:
		if len(p.Set) == 0 {
			return fmt.Errorf("core: %s pattern for %s needs a non-empty set", p.Op, attr.Name)
		}
		for _, v := range p.Set {
			if v.IsNull() {
				return fmt.Errorf("core: %s pattern for %s contains NULL", p.Op, attr.Name)
			}
			if attr.Finite() && !containsValue(attr.Domain, v) {
				return fmt.Errorf("core: %s pattern for %s: %s outside finite domain", p.Op, attr.Name, v)
			}
		}
		return nil
	default:
		return fmt.Errorf("core: unknown pattern op %d", uint8(p.Op))
	}
}

func containsValue(dom []relation.Value, v relation.Value) bool {
	for _, d := range dom {
		if relation.Equal(d, v) {
			return true
		}
	}
	return false
}

// Equal reports structural equality of two patterns.
func (p Pattern) Equal(q Pattern) bool {
	if p.Op != q.Op || len(p.Set) != len(q.Set) {
		return false
	}
	for i := range p.Set {
		if relation.Compare(p.Set[i], q.Set[i]) != 0 {
			return false
		}
	}
	return true
}

// IsConst reports whether p is a singleton In set, returning the value.
func (p Pattern) IsConst() (relation.Value, bool) {
	if p.Op == In && len(p.Set) == 1 {
		return p.Set[0], true
	}
	return relation.Null(), false
}

// String renders the cell in the constraint-language syntax:
// '_', '{a, b}' or '!{a, b}'.
func (p Pattern) String() string {
	switch p.Op {
	case Wildcard:
		return "_"
	case In:
		return setString(p.Set)
	case NotIn:
		return "!" + setString(p.Set)
	default:
		return "?"
	}
}

func setString(vs []relation.Value) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range vs {
		if i > 0 {
			b.WriteString(", ")
		}
		if v.K == relation.KindText {
			b.WriteString(quoteIfNeeded(v.S))
		} else {
			b.WriteString(v.String())
		}
	}
	b.WriteByte('}')
	return b.String()
}

// quoteIfNeeded wraps a text constant in single quotes when it contains
// characters that would confuse the constraint-language lexer.
func quoteIfNeeded(s string) string {
	if s == "" {
		return "''"
	}
	plain := true
	for _, r := range s {
		if !(r == '.' || r == '-' || r == '@' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')) {
			plain = false
			break
		}
	}
	if plain && s != "_" {
		// A bare numeric token would re-parse as a number, not text.
		if _, err := relation.ParseLiteral(s, relation.KindFloat); err != nil || s == "" {
			return s
		}
	}
	return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
}
