package core

import (
	"testing"
	"testing/quick"

	"ecfd/internal/relation"
)

func TestPatternMatches(t *testing.T) {
	in := InStrings("a", "b", "c")
	notIn := NotInStrings("a", "b")
	cases := []struct {
		p    Pattern
		v    relation.Value
		want bool
	}{
		{Any(), relation.Text("anything"), true},
		{Any(), relation.Null(), true},
		{in, relation.Text("a"), true},
		{in, relation.Text("c"), true},
		{in, relation.Text("z"), false},
		{in, relation.Null(), false},
		{notIn, relation.Text("a"), false},
		{notIn, relation.Text("z"), true},
		{notIn, relation.Null(), false},
	}
	for _, c := range cases {
		if got := c.p.Matches(c.v); got != c.want {
			t.Errorf("%v.Matches(%v) = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

func TestPatternComplementProperty(t *testing.T) {
	// For non-NULL v: NotInSet(S) matches v iff InSet(S) does not.
	f := func(set []int64, probe int64) bool {
		if len(set) == 0 {
			return true
		}
		vs := make([]relation.Value, len(set))
		for i, x := range set {
			vs[i] = relation.Int(x)
		}
		v := relation.Int(probe)
		return InSet(vs...).Matches(v) != NotInSet(vs...).Matches(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternSetNormalization(t *testing.T) {
	p := InStrings("b", "a", "b", "a")
	if len(p.Set) != 2 {
		t.Fatalf("set must deduplicate: %v", p.Set)
	}
	if p.Set[0].S != "a" || p.Set[1].S != "b" {
		t.Errorf("set must sort: %v", p.Set)
	}
	q := InStrings("a", "b")
	if !p.Equal(q) {
		t.Error("normalized sets must be Equal")
	}
	if p.Equal(InStrings("a")) || p.Equal(NotInStrings("a", "b")) || p.Equal(Any()) {
		t.Error("Equal must distinguish op and set")
	}
}

func TestPatternBinarySearchLargeSet(t *testing.T) {
	vs := make([]relation.Value, 1000)
	for i := range vs {
		vs[i] = relation.Int(int64(i * 2))
	}
	p := InSet(vs...)
	for i := 0; i < 2000; i++ {
		want := i%2 == 0
		if got := p.Matches(relation.Int(int64(i))); got != want {
			t.Fatalf("Matches(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestPatternValidate(t *testing.T) {
	inf := relation.Attribute{Name: "A", Kind: relation.KindText}
	fin := relation.Attribute{Name: "B", Kind: relation.KindText,
		Domain: []relation.Value{relation.Text("x"), relation.Text("y")}}

	if err := Any().Validate(inf); err != nil {
		t.Errorf("wildcard: %v", err)
	}
	if err := (Pattern{Op: Wildcard, Set: []relation.Value{relation.Text("x")}}).Validate(inf); err == nil {
		t.Error("wildcard with set must fail")
	}
	if err := (Pattern{Op: In}).Validate(inf); err == nil {
		t.Error("empty In set must fail")
	}
	if err := InSet(relation.Null()).Validate(inf); err == nil {
		t.Error("NULL in set must fail")
	}
	if err := InStrings("x").Validate(fin); err != nil {
		t.Errorf("in-domain set: %v", err)
	}
	if err := InStrings("z").Validate(fin); err == nil {
		t.Error("out-of-domain constant must fail for finite domains")
	}
	if err := (Pattern{Op: PatternOp(99)}).Validate(inf); err == nil {
		t.Error("unknown op must fail")
	}
}

func TestPatternIsConst(t *testing.T) {
	if v, ok := Const(relation.Text("x")).IsConst(); !ok || v.S != "x" {
		t.Error("Const must be IsConst")
	}
	if _, ok := InStrings("x", "y").IsConst(); ok {
		t.Error("two-element set is not const")
	}
	if _, ok := Any().IsConst(); ok {
		t.Error("wildcard is not const")
	}
}

func TestPatternString(t *testing.T) {
	cases := []struct {
		p    Pattern
		want string
	}{
		{Any(), "_"},
		{InStrings("NYC", "LI"), "{LI, NYC}"},
		{NotInStrings("NYC"), "!{NYC}"},
		{InSet(relation.Int(518)), "{518}"},
		{InStrings("5th Ave."), "{'5th Ave.'}"},
		{InStrings("123"), "{'123'}"}, // numeric-looking text must quote
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.p.Op, got, c.want)
		}
	}
}
