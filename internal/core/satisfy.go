package core

import (
	"fmt"

	"ecfd/internal/relation"
)

// Violations is the outcome of checking an instance against a set of
// eCFDs: per-row single-tuple (SV) and multiple-tuple (MV) flags, as in
// the paper's extended schema (§V), plus per-constraint counts.
type Violations struct {
	SV []bool // SV[i]: row i violates some pattern constraint by itself
	MV []bool // MV[i]: row i is involved in an embedded-FD violation
	// PerConstraint counts, keyed by "<name>#<patternIndex>" (or
	// "#<patternIndex>" when unnamed), of rows flagged by each pattern
	// tuple; a row may be counted by several constraints.
	PerConstraint map[string]int
}

// Count returns the number of rows in the violation set vio(D):
// rows with SV or MV set.
func (v *Violations) Count() int {
	n := 0
	for i := range v.SV {
		if v.SV[i] || v.MV[i] {
			n++
		}
	}
	return n
}

// CountSV returns the number of rows with the SV flag set.
func (v *Violations) CountSV() int { return countTrue(v.SV) }

// CountMV returns the number of rows with the MV flag set.
func (v *Violations) CountMV() int { return countTrue(v.MV) }

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// Violating returns the sorted row indices of vio(D).
func (v *Violations) Violating() []int {
	var out []int
	for i := range v.SV {
		if v.SV[i] || v.MV[i] {
			out = append(out, i)
		}
	}
	return out
}

// NaiveDetect evaluates Σ over the instance directly from the §II
// semantics, without SQL. It is the reference oracle the SQL-based
// detectors are validated against, and is also the fastest path for
// purely in-memory use.
//
// A row t gets SV when for some φ ∈ Σ and pattern tuple tp,
// t[X] ≍ tp[X] but t[Y,Yp] !≍ tp[Y,Yp]; it gets MV when two rows of
// I(tp) agree on X but differ on Y (SQL grouping equality: NULLs
// compare equal for both X and Y here, matching GROUP BY).
func NaiveDetect(inst *relation.Relation, sigma []*ECFD) (*Violations, error) {
	out := &Violations{
		SV:            make([]bool, inst.Len()),
		MV:            make([]bool, inst.Len()),
		PerConstraint: make(map[string]int),
	}
	for _, e := range sigma {
		if e.Schema.Name != inst.Schema.Name {
			return nil, fmt.Errorf("core: eCFD %s is over %s, instance is %s", e.label(), e.Schema.Name, inst.Schema.Name)
		}
		if err := e.Validate(); err != nil {
			return nil, err
		}
		xIdx := attrIndexes(inst.Schema, e.X)
		yIdx := attrIndexes(inst.Schema, e.Y)
		for pi := range e.Tableau {
			key := fmt.Sprintf("%s#%d", e.Name, pi+1)
			flagged := 0

			// Group the matching tuples by t[X]; within a group, more
			// than one distinct t[Y] means every member violates the
			// embedded FD.
			type group struct {
				rows     []int
				firstY   string
				multiple bool
			}
			groups := make(map[string]*group)
			for ri, t := range inst.Rows {
				if !e.MatchesLHS(t, pi) {
					continue
				}
				// Single-tuple check (2): t[Y,Yp] must match tp[Y,Yp].
				if !e.MatchesRHS(t, pi) {
					if !out.SV[ri] {
						out.SV[ri] = true
					}
					flagged++
				}
				if len(e.Y) == 0 {
					continue // no embedded FD to violate
				}
				gk := keyAt(t, xIdx)
				yk := keyAt(t, yIdx)
				g := groups[gk]
				if g == nil {
					groups[gk] = &group{rows: []int{ri}, firstY: yk}
					continue
				}
				g.rows = append(g.rows, ri)
				if yk != g.firstY {
					g.multiple = true
				}
			}
			for _, g := range groups {
				if !g.multiple {
					continue
				}
				for _, ri := range g.rows {
					if !out.MV[ri] {
						out.MV[ri] = true
					}
					flagged++
				}
			}
			if flagged > 0 {
				out.PerConstraint[key] = flagged
			}
		}
	}
	return out, nil
}

// Satisfies reports I ⊨ Σ: no row violates any pattern constraint and
// no embedded FD is violated.
func Satisfies(inst *relation.Relation, sigma []*ECFD) (bool, error) {
	v, err := NaiveDetect(inst, sigma)
	if err != nil {
		return false, err
	}
	return v.Count() == 0, nil
}

// SatisfiesTuple reports {t} ⊨ Σ for the single-tuple instance — the
// check at the heart of the satisfiability small-model property
// (Proposition 3.1): a single tuple can only trip pattern constraints,
// never the embedded FD.
func SatisfiesTuple(schema *relation.Schema, t relation.Tuple, sigma []*ECFD) bool {
	for _, e := range sigma {
		for pi := range e.Tableau {
			if e.MatchesLHS(t, pi) && !e.MatchesRHS(t, pi) {
				return false
			}
		}
	}
	return true
}

func attrIndexes(s *relation.Schema, attrs []string) []int {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		out[i] = s.Index(a)
	}
	return out
}

func keyAt(t relation.Tuple, idx []int) string {
	vs := make([]relation.Value, len(idx))
	for i, j := range idx {
		vs[i] = t[j]
	}
	return relation.KeyOf(vs)
}
