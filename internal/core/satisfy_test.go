package core

import (
	"testing"

	"ecfd/internal/relation"
)

// TestExample22 reproduces Example 2.2: D0 satisfies neither φ1 nor φ2;
// t1 violates φ1 (single-tuple) and t4 violates φ2 (single-tuple).
func TestExample22(t *testing.T) {
	inst := Fig1Instance()
	sigma := Fig2Constraints()

	v, err := NaiveDetect(inst, sigma)
	if err != nil {
		t.Fatal(err)
	}
	// Row indices: t1 = 0, t4 = 3.
	if !v.SV[0] {
		t.Error("t1 must be a single-tuple violation of φ1 (Albany with AC 718)")
	}
	if !v.SV[3] {
		t.Error("t4 must be a single-tuple violation of φ2 (NYC with AC 100)")
	}
	for _, i := range []int{1, 2, 4, 5} {
		if v.SV[i] || v.MV[i] {
			t.Errorf("t%d must be clean", i+1)
		}
	}
	if v.CountMV() != 0 {
		t.Errorf("no embedded-FD violations in D0: MV count = %d", v.CountMV())
	}
	if got := v.Count(); got != 2 {
		t.Errorf("vio(D0) size = %d, want 2", got)
	}
	if ok, _ := Satisfies(inst, sigma); ok {
		t.Error("D0 must not satisfy Σ")
	}

	got := v.Violating()
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("Violating = %v, want [0 3]", got)
	}
}

// TestMultiTupleViolation checks the embedded-FD (MV) side: two Albany
// tuples with different area codes violate φ1's FD CT → AC even when
// both RHS patterns individually pass.
func TestMultiTupleViolation(t *testing.T) {
	s := CustSchema()
	inst := relation.New(s)
	mk := func(ac, ct string) relation.Tuple {
		return relation.Tuple{relation.Text(ac), relation.Text("1"), relation.Text("n"),
			relation.Text("st"), relation.Text(ct), relation.Text("z")}
	}
	// Both pass the !{NYC,LI} → _ row's RHS, but they disagree on AC.
	inst.MustInsert(mk("111", "Ithaca"))
	inst.MustInsert(mk("222", "Ithaca"))
	inst.MustInsert(mk("333", "Buffalo"))

	phi1 := Fig2Constraints()[0]
	v, err := NaiveDetect(inst, []*ECFD{phi1})
	if err != nil {
		t.Fatal(err)
	}
	if !v.MV[0] || !v.MV[1] {
		t.Error("both Ithaca tuples must be MV")
	}
	if v.MV[2] {
		t.Error("Buffalo tuple must be clean")
	}
	if v.CountSV() != 0 {
		t.Error("no SV expected")
	}
}

// TestYpNoFD: an eCFD with Y = ∅ enforces only pattern constraints —
// two NYC tuples with different (valid) area codes are fine under φ2.
func TestYpNoFD(t *testing.T) {
	s := CustSchema()
	inst := relation.New(s)
	mk := func(ac string) relation.Tuple {
		return relation.Tuple{relation.Text(ac), relation.Text("1"), relation.Text("n"),
			relation.Text("st"), relation.Text("NYC"), relation.Text("z")}
	}
	inst.MustInsert(mk("212"))
	inst.MustInsert(mk("718"))
	phi2 := Fig2Constraints()[1]
	v, err := NaiveDetect(inst, []*ECFD{phi2})
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != 0 {
		t.Errorf("distinct valid NYC area codes must not violate φ2: %d violations", v.Count())
	}
}

func TestNaiveDetectSchemaMismatch(t *testing.T) {
	other := relation.MustSchema("orders", relation.Attribute{Name: "ID", Kind: relation.KindInt})
	inst := relation.New(other)
	if _, err := NaiveDetect(inst, Fig2Constraints()); err == nil {
		t.Error("schema mismatch must fail")
	}
}

func TestNaiveDetectInvalidConstraint(t *testing.T) {
	inst := Fig1Instance()
	bad := &ECFD{Name: "bad", Schema: CustSchema(), X: []string{"CT"}, Y: []string{"AC"}}
	if _, err := NaiveDetect(inst, []*ECFD{bad}); err == nil {
		t.Error("invalid constraint must fail")
	}
}

func TestSatisfiesTuple(t *testing.T) {
	sigma := Fig2Constraints()
	s := CustSchema()
	good := relation.Tuple{relation.Text("518"), relation.Text("1"), relation.Text("n"),
		relation.Text("st"), relation.Text("Albany"), relation.Text("z")}
	bad := relation.Tuple{relation.Text("999"), relation.Text("1"), relation.Text("n"),
		relation.Text("st"), relation.Text("Albany"), relation.Text("z")}
	if !SatisfiesTuple(s, good, sigma) {
		t.Error("Albany/518 tuple must satisfy Σ")
	}
	if SatisfiesTuple(s, bad, sigma) {
		t.Error("Albany/999 tuple must violate φ1")
	}
}

// TestSingleTupleCanViolate reproduces the paper's observation that "a
// single tuple may violate an eCFD while it takes two tuples to violate
// a standard FD".
func TestSingleTupleCanViolate(t *testing.T) {
	s := CustSchema()
	inst := relation.New(s)
	inst.MustInsert(relation.Tuple{relation.Text("100"), relation.Text("1"), relation.Text("n"),
		relation.Text("st"), relation.Text("NYC"), relation.Text("z")})
	v, err := NaiveDetect(inst, Fig2Constraints())
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != 1 || !v.SV[0] {
		t.Error("one tuple alone must violate φ2")
	}
}

func TestPerConstraintCounts(t *testing.T) {
	inst := Fig1Instance()
	v, err := NaiveDetect(inst, Fig2Constraints())
	if err != nil {
		t.Fatal(err)
	}
	// t1 trips φ1's second pattern row; t4 trips φ2's only row.
	if v.PerConstraint["phi1#2"] != 1 {
		t.Errorf("phi1#2 count = %d, want 1", v.PerConstraint["phi1#2"])
	}
	if v.PerConstraint["phi2#1"] != 1 {
		t.Errorf("phi2#1 count = %d, want 1", v.PerConstraint["phi2#1"])
	}
}

func TestNullsGroupTogetherInFD(t *testing.T) {
	// GROUP BY semantics: two rows with NULL X group together; differing
	// Y then violates the FD. The naive oracle must match SQL here.
	s := relation.MustSchema("t",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText},
	)
	inst := relation.New(s)
	inst.MustInsert(relation.Tuple{relation.Null(), relation.Text("x")})
	inst.MustInsert(relation.Tuple{relation.Null(), relation.Text("y")})
	fd := &FD{Schema: s, X: []string{"A"}, Y: []string{"B"}}
	v, err := NaiveDetect(inst, []*ECFD{fd.AsECFD()})
	if err != nil {
		t.Fatal(err)
	}
	if !v.MV[0] || !v.MV[1] {
		t.Error("NULL-keyed group with two B values must violate the FD")
	}
}
