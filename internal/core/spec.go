package core

import (
	"fmt"
	"strings"

	"ecfd/internal/relation"
)

// Spec is a parsed constraint file: table declarations plus the eCFDs
// over them. It is the self-contained input format of the CLI tools:
//
//	table cust (AC text, PN text, NM text, STR text, CT text, ZIP text)
//	table rate (GRADE int in {1, 2, 3}, FEE real)
//
//	ecfd phi1 on cust: [CT] -> [AC] {
//	  (!{NYC, LI} || _)
//	  ({Albany, Troy, Colonie} || {'518'})
//	}
//
// An `in { ... }` clause declares a finite attribute domain (§III's
// finite-domain attributes).
type Spec struct {
	Schemas     map[string]*relation.Schema
	Constraints []*ECFD
}

// ParseSpec parses table declarations and constraints from one source.
// Extra pre-declared schemas may be supplied (nil is fine); tables in
// the source shadow them.
func ParseSpec(src string, predeclared map[string]*relation.Schema) (*Spec, error) {
	schemas := make(map[string]*relation.Schema)
	for k, v := range predeclared {
		schemas[k] = v
	}
	p := &cparser{lex: newCLexer(src), schemas: schemas}
	spec := &Spec{Schemas: schemas}
	for {
		tok := p.peek()
		if p.err != nil {
			return nil, p.err
		}
		if tok.kind == ctEOF {
			break
		}
		if tok.kind == ctWord && tok.text == "table" {
			if err := p.tableDecl(); err != nil {
				return nil, err
			}
			continue
		}
		e, err := p.constraint()
		if err != nil {
			return nil, err
		}
		if err := e.Validate(); err != nil {
			return nil, err
		}
		spec.Constraints = append(spec.Constraints, e)
	}
	if p.err != nil {
		return nil, p.err
	}
	if len(spec.Constraints) == 0 {
		return nil, fmt.Errorf("core: no constraints found")
	}
	return spec, nil
}

// tableDecl parses: table name (attr kind [in {v, v, ...}], ...).
func (p *cparser) tableDecl() error {
	p.advance() // "table"
	name, err := p.expectWord()
	if err != nil {
		return err
	}
	if _, err := p.expectPunct("("); err != nil {
		return err
	}
	var attrs []relation.Attribute
	for {
		t := p.peek()
		if t.kind == ctPunct && t.text == ")" {
			p.advance()
			break
		}
		if t.kind == ctPunct && t.text == "," {
			p.advance()
			continue
		}
		attrName, err := p.expectWord()
		if err != nil {
			return err
		}
		kindTok, err := p.expectWord()
		if err != nil {
			return err
		}
		kind, err := kindOf(kindTok.text)
		if err != nil {
			return fmt.Errorf("core: line %d: %w", kindTok.line, err)
		}
		attr := relation.Attribute{Name: attrName.text, Kind: kind}
		if nt := p.peek(); nt.kind == ctWord && nt.text == "in" {
			p.advance()
			dom, err := p.set(attr)
			if err != nil {
				return err
			}
			attr.Domain = dom
		}
		attrs = append(attrs, attr)
	}
	schema, err := relation.NewSchema(name.text, attrs...)
	if err != nil {
		return err
	}
	p.schemas[name.text] = schema
	return nil
}

func kindOf(word string) (relation.Kind, error) {
	switch strings.ToLower(word) {
	case "text", "string", "varchar":
		return relation.KindText, nil
	case "int", "integer":
		return relation.KindInt, nil
	case "real", "float", "double":
		return relation.KindFloat, nil
	case "bool", "boolean":
		return relation.KindBool, nil
	default:
		return 0, fmt.Errorf("unknown attribute type %q (want text/int/real/bool)", word)
	}
}
