package core

import (
	"testing"

	"ecfd/internal/relation"
)

const specSrc = `
# schema + constraints in one file
table cust (AC text, PN text, NM text, STR text, CT text, ZIP text)
table rate (GRADE int in {1, 2, 3}, FEE real)

ecfd phi1 on cust: [CT] -> [AC] {
  (!{NYC, LI} || _)
}
ecfd r1 on rate: [GRADE] -> [] ; [FEE] {
  ({1} || {10.0, 20.0})
}
`

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec(specSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Schemas) != 2 || len(spec.Constraints) != 2 {
		t.Fatalf("schemas=%d constraints=%d", len(spec.Schemas), len(spec.Constraints))
	}
	rate := spec.Schemas["rate"]
	grade, ok := rate.Attr("GRADE")
	if !ok || grade.Kind != relation.KindInt {
		t.Fatalf("GRADE attr: %+v", grade)
	}
	if !grade.Finite() || len(grade.Domain) != 3 || grade.Domain[0].I != 1 {
		t.Errorf("GRADE domain: %v", grade.Domain)
	}
	fee, _ := rate.Attr("FEE")
	if fee.Kind != relation.KindFloat || fee.Finite() {
		t.Errorf("FEE attr: %+v", fee)
	}
	if spec.Constraints[1].Tableau[0].RHS[0].Set[1].F != 20.0 {
		t.Errorf("typed float set: %v", spec.Constraints[1].Tableau[0].RHS[0].Set)
	}
}

func TestParseSpecPredeclared(t *testing.T) {
	pre := map[string]*relation.Schema{"cust": CustSchema()}
	spec, err := ParseSpec(`ecfd e on cust: [CT] -> [AC] { (_ || _) }`, pre)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Constraints[0].Schema.Name != "cust" {
		t.Error("predeclared schema not used")
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := map[string]string{
		"no constraints": `table t (A text)`,
		"bad kind":       `table t (A blob) ecfd e on t: [A] -> [] ; [A] { (_ || _) }`,
		"dup attr":       `table t (A text, A text) ecfd e on t: [A] -> [] { (_ || ) }`,
		"tiny domain":    `table t (A int in {1}, B text) ecfd e on t: [A] -> [B] { (_ || _) }`,
		"unknown table":  `ecfd e on nosuch: [A] -> [B] { (_ || _) }`,
		"missing paren":  `table t (A text ecfd e on t: [A] -> [] { (_ || ) }`,
		"garbage":        `%%%`,
	}
	for name, src := range bad {
		if _, err := ParseSpec(src, nil); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}
