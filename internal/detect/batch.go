package detect

import (
	"fmt"
	"time"
)

// BatchStats reports one BatchDetect run.
type BatchStats struct {
	SV, MV, Total int64
	Elapsed       time.Duration
}

// BatchDetect runs the paper's static detection (§V-A): reset the
// flags, flag single-tuple violations with the Qsv update, materialize
// the embedded-FD violation patterns into Aux(D) with Qmv, and flag the
// matching tuples. The statement count is fixed — two passes over D —
// regardless of |Σ|, pattern-tuple counts or set sizes. The whole
// sequence is submitted as one pipelined script (a single prepared
// driver round trip); the engine executes the statements in order.
func (d *Detector) BatchDetect() (BatchStats, error) {
	start := time.Now()
	if _, err := d.db.Exec(d.stmts.batchScript); err != nil {
		return BatchStats{}, fmt.Errorf("detect: batch: %w", err)
	}
	sv, mv, total, err := d.Counts()
	if err != nil {
		return BatchStats{}, err
	}
	return BatchStats{SV: sv, MV: mv, Total: total, Elapsed: time.Since(start)}, nil
}
