package detect

import (
	"fmt"

	"ecfd/internal/relation"
)

// CheckResult reports the advisory verdict for one tuple of a Check
// batch.
type CheckResult struct {
	SV bool // the tuple violates some pattern constraint by itself (exact)
	MV bool // the tuple falls into a currently-violating group (Aux member)
}

// Check answers "would these tuples violate Σ?" without admitting them:
// the batch is staged into the _ins table and the two fixed detection
// queries run over the staging table against the current flags and
// Aux(D). Nothing is merged — the data table, the violation flags and
// Aux are untouched — so Check costs two indexed read-only queries and
// can run at request rate between updates (the server's hot path).
//
// The verdict's contract:
//
//   - SV is exact: single-tuple violation is a per-tuple property
//     (Fig. 4, top), so staging answers it as well as merging would.
//   - MV reports membership in a group that is *currently* violating —
//     the Aux(D) probe the incremental step runs on merged rows. A
//     tuple that would newly tip a clean group into violation (it
//     agrees with exactly one existing tuple on an embedded FD's LHS
//     but differs on the RHS) is not reported; observing that
//     transition requires the Aux recompute in ApplyUpdates.
//
// Check requires the flags and Aux to be current (run BatchDetect once
// after loading). It shares the _ins staging table with ApplyUpdates,
// so callers serialize Check against mutating calls on the same
// Detector; the server holds its per-session lock across both.
func (d *Detector) Check(batch *relation.Relation) ([]CheckResult, error) {
	if batch.Schema.Name != d.schema.Name || batch.Schema.Width() != d.schema.Width() {
		return nil, fmt.Errorf("detect: batch schema %s does not match %s", batch.Schema, d.schema)
	}
	out := make([]CheckResult, batch.Len())
	if batch.Len() == 0 {
		return out, nil
	}
	if _, err := d.db.Exec("TRUNCATE TABLE " + d.insTable); err != nil {
		return nil, fmt.Errorf("detect: check: %w", err)
	}
	// Stage with the 1-based batch position as the RID: the check
	// statements never join the staging table to the data by RID, so
	// colliding with real RIDs is harmless, and a fixed RID sequence
	// keeps the insert text constant per batch size (plan-cache hit).
	width := d.schema.Width() + 3 // RID + R + SV + MV
	for start := 0; start < batch.Len(); start += insertBatch {
		end := start + insertBatch
		if end > batch.Len() {
			end = batch.Len()
		}
		chunk := batch.Rows[start:end]
		args := make([]any, 0, len(chunk)*width)
		for i, row := range chunk {
			args = append(args, int64(start+i+1))
			for _, v := range row {
				args = append(args, valueArg(v))
			}
			args = append(args, 0, 0)
		}
		q := fmt.Sprintf("INSERT INTO %s VALUES %s", d.insTable, placeholderRows(len(chunk), width))
		if _, err := d.db.Exec(q, args...); err != nil {
			return nil, fmt.Errorf("detect: check: stage batch: %w", err)
		}
	}
	mark := func(q string, set func(r *CheckResult)) error {
		rows, err := d.db.Query(q)
		if err != nil {
			return err
		}
		defer rows.Close()
		for rows.Next() {
			var rid int64
			if err := rows.Scan(&rid); err != nil {
				return err
			}
			if rid >= 1 && rid <= int64(len(out)) {
				set(&out[rid-1])
			}
		}
		return rows.Err()
	}
	if err := mark(d.stmts.checkSVRIDs, func(r *CheckResult) { r.SV = true }); err != nil {
		return nil, fmt.Errorf("detect: check: %w", err)
	}
	if err := mark(d.stmts.checkMVRIDs, func(r *CheckResult) { r.MV = true }); err != nil {
		return nil, fmt.Errorf("detect: check: %w", err)
	}
	return out, nil
}
