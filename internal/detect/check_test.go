package detect

import (
	"bytes"
	"fmt"
	"testing"

	"ecfd/internal/gen"
	"ecfd/internal/relation"
)

// TestCheckAgainstAppliedOracle pins the advisory Check verdict to the
// ground truth of actually applying each candidate:
//
//   - SV must match the applied insert's SV flag exactly (SV is a
//     per-tuple property, so the staged form answers it losslessly);
//   - MV=true must imply the applied insert gets MV=true (soundness —
//     Check never cries wolf);
//   - a resubmitted copy of a currently MV-flagged row must come back
//     MV=true (completeness against the current Aux);
//   - Check must not disturb the detector state at all.
func TestCheckAgainstAppliedOracle(t *testing.T) {
	const rows = 2_000
	d, cleanup := newBenchDetector(t, rows, 11)
	defer cleanup()
	if _, err := d.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	before, err := d.FlagsByRID()
	if err != nil {
		t.Fatal(err)
	}
	beforeCSV := violationCSV(t, d)

	// Candidates: fresh generated updates (mix of clean and violating
	// tuples) plus copies of existing rows, indexed by their source RID
	// so flagged copies anchor the completeness assertion.
	cand := gen.Updates(gen.Config{Rows: rows, Noise: 5, Seed: 11}, 24, 1_000_000)
	copySrc := make(map[int]int64) // candidate index -> source RID
	data, err := d.ViolationsVia(d.db)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) < 4 {
		t.Fatal("workload has too few violations; test is vacuous")
	}
	for _, vrow := range data.Rows[:4] {
		rid := vrow[0].I
		copySrc[cand.Len()] = rid
		cand.Rows = append(cand.Rows, vrow[1:1+d.schema.Width()])
	}

	got, err := d.Check(cand)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != cand.Len() {
		t.Fatalf("Check returned %d results for %d tuples", len(got), cand.Len())
	}

	// Check is advisory: flags, Aux and the violation set are untouched.
	after, err := d.FlagsByRID()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("Check changed the row count: %d -> %d", len(before), len(after))
	}
	for rid, w := range before {
		if after[rid] != w {
			t.Fatalf("Check changed flags of RID %d: %v -> %v", rid, w, after[rid])
		}
	}
	if !bytes.Equal(beforeCSV, violationCSV(t, d)) {
		t.Fatal("Check changed the violation set")
	}

	// Completeness against Aux: copies of MV-flagged rows must be MV.
	for i, rid := range copySrc {
		if before[rid][1] && !got[i].MV {
			t.Errorf("candidate %d copies MV-flagged RID %d but Check.MV = false", i, rid)
		}
	}

	// Ground truth per candidate: apply it, read its flags, revert.
	one := relation.New(cand.Schema)
	one.Rows = []relation.Tuple{nil}
	for i, row := range cand.Rows {
		one.Rows[0] = row
		rids, _, err := d.ApplyUpdates(one, nil)
		if err != nil {
			t.Fatal(err)
		}
		flags, err := d.FlagsByRID()
		if err != nil {
			t.Fatal(err)
		}
		applied := flags[rids[0]]
		if got[i].SV != applied[0] {
			t.Errorf("candidate %d: Check.SV = %v, applied SV = %v (row %v)",
				i, got[i].SV, applied[0], row)
		}
		if got[i].MV && !applied[1] {
			t.Errorf("candidate %d: Check.MV = true but applied MV = false (row %v)", i, row)
		}
		if _, err := d.DeleteTuples(rids); err != nil {
			t.Fatal(err)
		}
	}

	// The apply/revert cycles must have restored the original state, or
	// the oracle itself proved nothing.
	if !bytes.Equal(beforeCSV, violationCSV(t, d)) {
		t.Fatal("apply/revert oracle did not restore the violation set")
	}
}

// TestCheckEmptyAndMismatch covers the trivial shapes.
func TestCheckEmptyAndMismatch(t *testing.T) {
	d, cleanup := newBenchDetector(t, 100, 1)
	defer cleanup()
	if _, err := d.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	empty := relation.New(gen.Schema())
	res, err := d.Check(empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
	wrong := relation.New(relation.MustSchema("other",
		relation.Attribute{Name: "A", Kind: relation.KindText}))
	wrong.Rows = append(wrong.Rows, relation.Tuple{relation.Text("x")})
	if _, err := d.Check(wrong); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}

// TestCheckStatementsFixed: the check statements obey the same
// fixedness contract as the rest of the set — their texts depend on the
// schema only, never on |Σ|.
func TestCheckStatementsFixed(t *testing.T) {
	d, cleanup := newBenchDetector(t, 10, 1)
	defer cleanup()
	for _, q := range []string{d.stmts.checkSVRIDs, d.stmts.checkMVRIDs} {
		if q == "" {
			t.Fatal("check statement is empty")
		}
		if want := fmt.Sprintf("FROM %s t", d.insTable); !bytes.Contains([]byte(q), []byte(want)) {
			t.Errorf("check statement does not read the staging table: %s", q)
		}
	}
}
