package detect

import (
	"database/sql"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"ecfd/internal/core"
	"ecfd/internal/relation"
	_ "ecfd/internal/sqldriver"
)

var dsnSeq atomic.Int64

func openDB(t *testing.T) *sql.DB {
	t.Helper()
	db, err := sql.Open("ecfdmem", fmt.Sprintf("detect_test_%d", dsnSeq.Add(1)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func newDetector(t *testing.T, sigma []*core.ECFD, inst *relation.Relation) *Detector {
	t.Helper()
	db := openDB(t)
	d, err := New(db, inst.Schema, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Install(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadData(inst); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestEncodingFig3 is the golden test for Fig. 3: φ1 and φ2 encode into
// enc rows (CID, CT_L, AC_R) = (1, 2, 3), (2, 1, 1), (3, 1, −1) — per
// the §V-A text: 1 ⇔ S, 2 ⇔ S̄, 3 ⇔ '_', negated for Yp — and set
// tables T_CT_L = {(1,NYC),(1,LI),(2,Albany),(2,Troy),(2,Colonie)},
// T_AC_R = {(2,518),(3,212),(3,718),(3,646),(3,347),(3,917)}.
func TestEncodingFig3(t *testing.T) {
	sigma := core.Split(core.Fig2Constraints())
	if len(sigma) != 3 {
		t.Fatalf("Σ splits into %d constraints, want 3", len(sigma))
	}
	schema := core.CustSchema()

	wantL := []int{CodeNotIn, CodeIn, CodeIn}
	wantR := []int{CodeWildcard, CodeIn, -CodeIn}
	wantSetL := [][]string{{"LI", "NYC"}, {"Albany", "Colonie", "Troy"}, {"NYC"}}
	wantSetR := [][]string{nil, {"518"}, {"212", "347", "646", "718", "917"}}

	for i, e := range sigma {
		enc := EncodeConstraint(e, schema)
		if enc.L["CT"] != wantL[i] {
			t.Errorf("CID %d: CT_L = %d, want %d", i+1, enc.L["CT"], wantL[i])
		}
		if enc.R["AC"] != wantR[i] {
			t.Errorf("CID %d: AC_R = %d, want %d", i+1, enc.R["AC"], wantR[i])
		}
		// All other attributes absent on both sides.
		for _, a := range schema.Attrs {
			if a.Name == "CT" || a.Name == "AC" {
				continue
			}
			if enc.L[a.Name] != CodeAbsent || enc.R[a.Name] != CodeAbsent {
				t.Errorf("CID %d: attribute %s should be absent", i+1, a.Name)
			}
		}
		var gotL []string
		for _, v := range enc.SetsL["CT"] {
			gotL = append(gotL, v.S)
		}
		if strings.Join(gotL, ",") != strings.Join(wantSetL[i], ",") {
			t.Errorf("CID %d: T_CT_L = %v, want %v", i+1, gotL, wantSetL[i])
		}
		var gotR []string
		for _, v := range enc.SetsR["AC"] {
			gotR = append(gotR, v.S)
		}
		if strings.Join(gotR, ",") != strings.Join(wantSetR[i], ",") {
			t.Errorf("CID %d: T_AC_R = %v, want %v", i+1, gotR, wantSetR[i])
		}
	}
}

// TestEncTableContents verifies the loaded enc relation row count and a
// spot value through SQL, mirroring Fig. 3 (top).
func TestEncTableContents(t *testing.T) {
	d := newDetector(t, core.Fig2Constraints(), core.Fig1Instance())
	var n int64
	if err := d.db.QueryRow("SELECT COUNT(*) FROM cust_enc").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("enc rows = %d, want 3 (one per pattern tuple)", n)
	}
	var ctl, acr int64
	if err := d.db.QueryRow("SELECT CT_L, AC_R FROM cust_enc WHERE CID = 1").Scan(&ctl, &acr); err != nil {
		t.Fatal(err)
	}
	if ctl != 2 || acr != 3 {
		t.Errorf("CID 1: (CT_L, AC_R) = (%d, %d), want (2, 3)", ctl, acr)
	}
	if err := d.db.QueryRow("SELECT COUNT(*) FROM cust_t_CT_l").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 6 { // {NYC, LI} + {Albany, Troy, Colonie} + {NYC}
		t.Errorf("T_CT_L rows = %d, want 6", n)
	}
	if err := d.db.QueryRow("SELECT COUNT(*) FROM cust_t_AC_r").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 6 { // {518} + {212, 718, 646, 347, 917}
		t.Errorf("T_AC_R rows = %d, want 6", n)
	}
}

// TestSQLGenFig4Shape checks the generated queries have the Fig. 4
// structure and that their size depends only on the schema, not on Σ.
func TestSQLGenFig4Shape(t *testing.T) {
	d := newDetector(t, core.Fig2Constraints(), core.Fig1Instance())
	qsvSel, qsvUpd, qmvIns, mvUpd := d.SQL()

	for _, frag := range []string{"EXISTS", "NOT EXISTS", "ABS(", "cust_enc"} {
		if !strings.Contains(qsvSel, frag) {
			t.Errorf("Qsv missing %q:\n%s", frag, qsvSel)
		}
	}
	for _, frag := range []string{"GROUP BY", "HAVING COUNT(*) > 1", "CASE WHEN", "'@'", "DISTINCT"} {
		if !strings.Contains(qmvIns, frag) {
			t.Errorf("Qmv missing %q:\n%s", frag, qmvIns)
		}
	}
	if !strings.Contains(qsvUpd, "SET SV = 1") || !strings.Contains(mvUpd, "SET MV = 1") {
		t.Error("update statements must set the SV/MV flags")
	}

	// Query text is a function of the schema only: a Σ with 10× the
	// pattern tuples yields byte-identical SQL.
	big := core.Fig2Constraints()
	for i := 0; i < 10; i++ {
		big = append(big, core.Fig2Constraints()...)
	}
	db2 := openDB(t)
	d2, err := New(db2, core.CustSchema(), big)
	if err != nil {
		t.Fatal(err)
	}
	s1, u1, m1, v1 := d2.SQL()
	if s1 != qsvSel || u1 != qsvUpd || m1 != qmvIns || v1 != mvUpd {
		t.Error("generated SQL must not depend on |Σ|")
	}
}

// TestBatchDetectExample22 reproduces Example 2.2 through the SQL
// pipeline: t1 and t4 are single-tuple violations; nothing else.
func TestBatchDetectExample22(t *testing.T) {
	d := newDetector(t, core.Fig2Constraints(), core.Fig1Instance())
	stats, err := d.BatchDetect()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SV != 2 || stats.MV != 0 || stats.Total != 2 {
		t.Errorf("stats = %+v, want SV=2 MV=0 Total=2", stats)
	}
	vio, err := d.Violations()
	if err != nil {
		t.Fatal(err)
	}
	if vio.Len() != 2 {
		t.Fatalf("violations = %d rows", vio.Len())
	}
	// RIDs 1..6 were assigned in Fig. 1 order: t1 → RID 1, t4 → RID 4.
	if vio.Rows[0][0].I != 1 || vio.Rows[1][0].I != 4 {
		t.Errorf("violating RIDs = %v, %v; want 1 and 4", vio.Rows[0][0], vio.Rows[1][0])
	}
}

// TestBatchMatchesNaive is the central equivalence property: on random
// data and random eCFDs, the SQL BatchDetect flags exactly the rows the
// §II semantics (naive oracle) flags.
func TestBatchMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		inst, sigma := randomInstanceAndSigma(rng, 60)
		naive, err := core.NaiveDetect(inst, sigma)
		if err != nil {
			t.Fatal(err)
		}
		d := newDetector(t, sigma, inst)
		if _, err := d.BatchDetect(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		flags, err := d.FlagsByRID()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < inst.Len(); i++ {
			got := flags[int64(i+1)]
			if got[0] != naive.SV[i] || got[1] != naive.MV[i] {
				t.Fatalf("trial %d row %d: SQL (SV=%v MV=%v) vs naive (SV=%v MV=%v)\nrow: %v\nsigma: %s",
					trial, i, got[0], got[1], naive.SV[i], naive.MV[i], inst.Rows[i], sigmaString(sigma))
			}
		}
	}
}

// TestIncrementalMatchesBatch: after random insert/delete batches,
// IncDetect's flags equal a from-scratch BatchDetect on the same data.
func TestIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		inst, sigma := randomInstanceAndSigma(rng, 50)
		d := newDetector(t, sigma, inst)
		if _, err := d.BatchDetect(); err != nil {
			t.Fatal(err)
		}

		for step := 0; step < 3; step++ {
			switch rng.Intn(3) {
			case 0:
				batch := randomRows(rng, inst.Schema, 1+rng.Intn(15))
				if _, _, err := d.InsertTuples(batch); err != nil {
					t.Fatalf("trial %d step %d insert: %v", trial, step, err)
				}
			case 1:
				rids, err := d.RIDs()
				if err != nil {
					t.Fatal(err)
				}
				if len(rids) == 0 {
					continue
				}
				k := 1 + rng.Intn(len(rids)/2+1)
				var doomed []int64
				for _, i := range rng.Perm(len(rids))[:k] {
					doomed = append(doomed, rids[i])
				}
				if _, err := d.DeleteTuples(doomed); err != nil {
					t.Fatalf("trial %d step %d delete: %v", trial, step, err)
				}
			default:
				// Combined update: delete and insert in one maintenance
				// step (the Fig. 7 workload).
				rids, err := d.RIDs()
				if err != nil {
					t.Fatal(err)
				}
				var doomed []int64
				if len(rids) > 0 {
					k := 1 + rng.Intn(len(rids)/2+1)
					for _, i := range rng.Perm(len(rids))[:k] {
						doomed = append(doomed, rids[i])
					}
				}
				batch := randomRows(rng, inst.Schema, 1+rng.Intn(15))
				if _, _, err := d.ApplyUpdates(batch, doomed); err != nil {
					t.Fatalf("trial %d step %d combined: %v", trial, step, err)
				}
			}

			incFlags, err := d.FlagsByRID()
			if err != nil {
				t.Fatal(err)
			}
			// Recompute from scratch on a second detector holding the
			// same rows.
			snap, err := d.currentData()
			if err != nil {
				t.Fatal(err)
			}
			d2 := newDetector(t, sigma, snap)
			if _, err := d2.BatchDetect(); err != nil {
				t.Fatal(err)
			}
			batchFlags, err := d2.FlagsByRID()
			if err != nil {
				t.Fatal(err)
			}
			if len(incFlags) != len(batchFlags) {
				t.Fatalf("trial %d step %d: row counts differ: %d vs %d", trial, step, len(incFlags), len(batchFlags))
			}
			// Match by position: both detectors enumerate rows in RID
			// order but with different RID values, so compare multisets
			// keyed by row order.
			incRids, _ := d.RIDs()
			batchRids, _ := d2.RIDs()
			for i := range incRids {
				if incFlags[incRids[i]] != batchFlags[batchRids[i]] {
					t.Fatalf("trial %d step %d row %d: inc %v vs batch %v", trial, step, i,
						incFlags[incRids[i]], batchFlags[batchRids[i]])
				}
			}
		}
	}
}

// currentData snapshots the data table back into a relation over the
// base schema, in RID order.
func (d *Detector) currentData() (*relation.Relation, error) {
	cols := make([]string, 0, d.schema.Width())
	for _, a := range d.schema.Attrs {
		cols = append(cols, a.Name)
	}
	q := fmt.Sprintf("SELECT %s FROM %s ORDER BY %s", strings.Join(cols, ", "), d.dataTable, ColRID)
	rows, err := d.db.Query(q)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	out := relation.New(d.schema)
	for rows.Next() {
		cells := make([]sql.NullString, d.schema.Width())
		ptrs := make([]any, len(cells))
		for i := range cells {
			ptrs[i] = &cells[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			return nil, err
		}
		tup := make(relation.Tuple, len(cells))
		for i, c := range cells {
			if !c.Valid {
				tup[i] = relation.Null()
				continue
			}
			v, err := relation.ParseLiteral(c.String, d.schema.Attrs[i].Kind)
			if err != nil {
				return nil, err
			}
			tup[i] = v
		}
		out.Rows = append(out.Rows, tup)
	}
	return out, rows.Err()
}

// --- random workload for the equivalence properties ---

// randomInstanceAndSigma builds a small random instance over a 4-column
// text schema plus 2–4 random eCFDs exercising every pattern form.
func randomInstanceAndSigma(rng *rand.Rand, rows int) (*relation.Relation, []*core.ECFD) {
	schema := relation.MustSchema("rnd",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText},
		relation.Attribute{Name: "C", Kind: relation.KindText},
		relation.Attribute{Name: "D", Kind: relation.KindText},
	)
	inst := randomRows(rng, schema, rows)

	attrs := []string{"A", "B", "C", "D"}
	var sigma []*core.ECFD
	n := 2 + rng.Intn(3)
	for i := 0; i < n; i++ {
		perm := rng.Perm(len(attrs))
		x := []string{attrs[perm[0]]}
		y := []string{attrs[perm[1]]}
		var yp []string
		if rng.Intn(2) == 0 {
			yp = []string{attrs[perm[2]]}
		}
		e := &core.ECFD{Name: fmt.Sprintf("r%d", i+1), Schema: schema, X: x, Y: y, YP: yp}
		tuples := 1 + rng.Intn(3)
		for j := 0; j < tuples; j++ {
			tp := core.PatternTuple{
				LHS: []core.Pattern{randomPattern(rng)},
				RHS: []core.Pattern{randomPattern(rng)},
			}
			if len(yp) > 0 {
				tp.RHS = append(tp.RHS, randomPattern(rng))
			}
			e.Tableau = append(e.Tableau, tp)
		}
		sigma = append(sigma, e)
	}
	return inst, sigma
}

// The value pool is tiny so FD groups and pattern hits are frequent.
var pool = []string{"u", "v", "w", "x", "y", "z"}

func randomRows(rng *rand.Rand, schema *relation.Schema, n int) *relation.Relation {
	out := relation.New(schema)
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, schema.Width())
		for j := range t {
			t[j] = relation.Text(pool[rng.Intn(len(pool))])
		}
		out.Rows = append(out.Rows, t)
	}
	return out
}

func randomPattern(rng *rand.Rand) core.Pattern {
	switch rng.Intn(3) {
	case 0:
		return core.Any()
	case 1:
		return core.InStrings(randomSubset(rng)...)
	default:
		return core.NotInStrings(randomSubset(rng)...)
	}
}

func randomSubset(rng *rand.Rand) []string {
	k := 1 + rng.Intn(3)
	out := make([]string, 0, k)
	for _, i := range rng.Perm(len(pool))[:k] {
		out = append(out, pool[i])
	}
	return out
}

func sigmaString(sigma []*core.ECFD) string {
	var b strings.Builder
	for _, e := range sigma {
		b.WriteString(e.String())
	}
	return b.String()
}

func TestNewValidation(t *testing.T) {
	db := openDB(t)
	schema := core.CustSchema()
	if _, err := New(db, schema, nil); err == nil {
		t.Error("empty Σ must fail")
	}
	other := relation.MustSchema("other", relation.Attribute{Name: "X", Kind: relation.KindText},
		relation.Attribute{Name: "Y", Kind: relation.KindText})
	mismatched := &core.ECFD{Name: "m", Schema: other, X: []string{"X"}, Y: []string{"Y"},
		Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()}, RHS: []core.Pattern{core.Any()}}}}
	if _, err := New(db, schema, []*core.ECFD{mismatched}); err == nil {
		t.Error("schema mismatch must fail")
	}
	reserved := relation.MustSchema("r", relation.Attribute{Name: "SV", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	e := &core.ECFD{Name: "x", Schema: reserved, X: []string{"SV"}, Y: []string{"B"},
		Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()}, RHS: []core.Pattern{core.Any()}}}}
	if _, err := New(db, reserved, []*core.ECFD{e}); err == nil {
		t.Error("reserved column collision must fail")
	}
}

func TestLoadDataMismatch(t *testing.T) {
	d := newDetector(t, core.Fig2Constraints(), core.Fig1Instance())
	wrong := relation.New(relation.MustSchema("cust", relation.Attribute{Name: "Z", Kind: relation.KindText}))
	if _, err := d.LoadData(wrong); err == nil {
		t.Error("width mismatch must fail")
	}
}

func TestDeleteNothing(t *testing.T) {
	d := newDetector(t, core.Fig2Constraints(), core.Fig1Instance())
	if _, err := d.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	st, err := d.DeleteTuples(nil)
	if err != nil || st.Applied != 0 {
		t.Errorf("empty delete: %+v, %v", st, err)
	}
}

// TestIncrementalRepairExample walks the paper's running example:
// start clean, insert the two dirty tuples, watch violations appear;
// delete them, watch violations disappear.
func TestIncrementalRepairExample(t *testing.T) {
	inst := core.Fig1Instance()
	clean := relation.New(inst.Schema)
	for i, row := range inst.Rows {
		if i == 0 || i == 3 { // t1 and t4 are dirty
			continue
		}
		clean.Rows = append(clean.Rows, row.Clone())
	}
	d := newDetector(t, core.Fig2Constraints(), clean)
	if st, err := d.BatchDetect(); err != nil || st.Total != 0 {
		t.Fatalf("clean base: %+v, %v", st, err)
	}

	dirty := relation.New(inst.Schema)
	dirty.Rows = append(dirty.Rows, inst.Rows[0].Clone(), inst.Rows[3].Clone())
	rids, _, err := d.InsertTuples(dirty)
	if err != nil {
		t.Fatal(err)
	}
	sv, mv, total, err := d.Counts()
	if err != nil {
		t.Fatal(err)
	}
	if sv != 2 || mv != 0 || total != 2 {
		t.Errorf("after insert: SV=%d MV=%d total=%d, want 2/0/2", sv, mv, total)
	}

	if _, err := d.DeleteTuples(rids); err != nil {
		t.Fatal(err)
	}
	if _, _, total, _ := d.Counts(); total != 0 {
		t.Errorf("after delete: %d violations, want 0", total)
	}
}

// TestFDViolationsThroughSQL exercises the MV path: two Ithaca tuples
// with different area codes violate φ1's embedded FD.
func TestFDViolationsThroughSQL(t *testing.T) {
	schema := core.CustSchema()
	inst := relation.New(schema)
	mk := func(ac, ct string) relation.Tuple {
		return relation.Tuple{relation.Text(ac), relation.Text("1"), relation.Text("n"),
			relation.Text("st"), relation.Text(ct), relation.Text("z")}
	}
	inst.MustInsert(mk("111", "Ithaca"))
	inst.MustInsert(mk("222", "Ithaca"))
	inst.MustInsert(mk("333", "Buffalo"))
	d := newDetector(t, core.Fig2Constraints(), inst)
	st, err := d.BatchDetect()
	if err != nil {
		t.Fatal(err)
	}
	if st.MV != 2 || st.SV != 0 {
		t.Errorf("stats %+v, want MV=2 SV=0", st)
	}
	// Aux(D) must hold exactly one pattern: (CID=1, CT=Ithaca).
	var n int64
	if err := d.db.QueryRow("SELECT COUNT(*) FROM cust_aux").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("Aux rows = %d, want 1", n)
	}
	var cid int64
	var ctp string
	if err := d.db.QueryRow("SELECT CID, CT_P FROM cust_aux").Scan(&cid, &ctp); err != nil {
		t.Fatal(err)
	}
	if cid != 1 || ctp != "Ithaca" {
		t.Errorf("Aux pattern = (%d, %s), want (1, Ithaca)", cid, ctp)
	}
}
