// Package detect implements the paper's §V: SQL-based detection of
// eCFD violations. The set Σ of constraints is encoded as *data* — a
// relation enc describing which attributes each pattern tuple
// constrains and how, plus per-attribute set tables T_AL / T_AR holding
// the pattern sets (Fig. 3) — so that a single, fixed pair of SQL
// queries (Qsv, Qmv — Fig. 4) detects all violations of arbitrarily
// many eCFDs in two passes over the data.
//
// BatchDetect is the static algorithm; IncDetect maintains the
// violation flags and the auxiliary relation Aux(D) under tuple
// insertions and deletions, touching only the affected part of D.
//
// Everything runs through database/sql, exactly as it would against a
// production RDBMS.
package detect

import (
	"database/sql"
	"fmt"
	"regexp"
	"strings"

	"ecfd/internal/core"
	"ecfd/internal/relation"
	"ecfd/internal/sqldb"
)

// Reserved columns the detector adds to the data table.
const (
	// ColRID identifies rows so that deletions can name their targets.
	ColRID = "RID"
	// ColSV is the single-tuple violation flag (paper §V).
	ColSV = "SV"
	// ColMV is the multiple-tuple violation flag (paper §V).
	ColMV = "MV"
)

// blankMark is the '@' of the paper: a constant assumed not to appear
// in the database, used to blank out attributes irrelevant to an
// embedded FD. nullMark plays the same role for NULLs so that SQL
// grouping (where NULLs group together) matches the naive semantics.
const (
	blankMark = "@"
	nullMark  = "@NULL@"
)

var identRE = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

// Detector binds a schema and a set of eCFDs to a database/sql handle
// and owns the tables it creates there.
type Detector struct {
	db     *sql.DB
	schema *relation.Schema
	sigma  []*core.ECFD // split: one pattern tuple per constraint, CID = index+1

	// table names (derived from the schema name)
	dataTable   string
	encTable    string
	auxTable    string
	auxOldTable string // affected Aux rows saved before a recompute
	auxNewTable string // groups that became violating in this step
	keysTable   string
	insTable    string
	delTable    string

	nextRID int64
	atomic  bool // wrap LoadData/ApplyUpdates in one transaction

	// eng, when bound, is the embedded engine behind db: ParallelDetect
	// then pins one MVCC snapshot per read phase and serves every worker
	// from it (see BindEngine), instead of a read-only transaction per
	// task.
	eng *sqldb.DB

	// pre-generated statements (fixed count, independent of |Σ|)
	stmts statements
}

type statements struct {
	qsvSelect    string // Fig. 4 (top): violating tuples
	qsvUpdate    string // SV := 1
	qmvInsert    string // Fig. 4 (bottom) → Aux
	mvUpdate     string // MV := 1 for tuples matching Aux
	resetFlags   string
	keysFromIns  string
	keysFromDel  string
	auxDeleteAff string
	auxSaveOld   string
	auxNewComp   string
	auxRecompute string
	mvSetNew     string // parameterized by the first RID of the batch
	mvSetOld     string // parameterized likewise
	mvClear      string
	svOnIns      string
	mergeIns     string
	deleteRows   string
	// parallel (read-only) forms, parameterized by RID slice / CID range
	qsvRIDsSlice    string
	qmvGroupsCIDRng string
	mvRIDsSlice     string
	// advisory-check forms (Check): Qsv and the Aux probe over the
	// staging table alone — read cost, no merge.
	checkSVRIDs string
	checkMVRIDs string
	// sharded scatter-gather forms (ShardedDetector): the shards export
	// DISTINCT macro rows and touched keys; the coordinator finishes the
	// grouping in Go and broadcasts the results back.
	qmvMacroCIDRng string // DISTINCT macro rows of a CID range (params: lo, hi)
	qmvMacroKeys   string // DISTINCT macro rows restricted to the touched keys
	keysSelect     string // read the collected touched group keys back out
	auxSelect      string // read Aux back out (the coordinator's copy is authoritative)
	shardBatchPre  string // per-shard batch phase: reset flags, Qsv, clear Aux
	shardIncPre    string // per-shard incremental phase 1: SV on ΔD⁺, touched keys
	shardIncMid    string // per-shard incremental phase 2: Aux trim, apply ΔD
	shardIncPost   string // per-shard incremental phase 3: MV maintenance (?1, ?2)
	// pipelined scripts: the fixed statement sequences of BatchDetect
	// and ApplyUpdates joined into one semicolon-separated text, so the
	// whole sequence goes through database/sql as a single prepared
	// round trip (one driver call, one plan-cache entry) instead of one
	// per statement. Parameter indexes run through the script in order.
	batchScript string
	incScript   string
}

// New validates Σ against the schema and prepares a detector. The
// constraints are split into single-pattern-tuple form (§V: "we can
// always split an eCFD with multiple patterns"), and each split
// constraint gets a CID equal to its 1-based position.
func New(db *sql.DB, schema *relation.Schema, sigma []*core.ECFD) (*Detector, error) {
	if len(sigma) == 0 {
		return nil, fmt.Errorf("detect: empty constraint set")
	}
	if !identRE.MatchString(schema.Name) {
		return nil, fmt.Errorf("detect: schema name %q is not a SQL identifier", schema.Name)
	}
	for _, a := range schema.Attrs {
		if !identRE.MatchString(a.Name) {
			return nil, fmt.Errorf("detect: attribute %q is not a SQL identifier", a.Name)
		}
		switch strings.ToUpper(a.Name) {
		case ColRID, ColSV, ColMV:
			return nil, fmt.Errorf("detect: attribute %q collides with a detector column", a.Name)
		}
	}
	for _, e := range sigma {
		if e.Schema.Name != schema.Name {
			return nil, fmt.Errorf("detect: constraint %s is over %s, want %s", e.Name, e.Schema.Name, schema.Name)
		}
		if err := e.Validate(); err != nil {
			return nil, err
		}
	}
	d := &Detector{
		db:          db,
		schema:      schema,
		sigma:       core.Split(sigma),
		dataTable:   schema.Name + "_data",
		encTable:    schema.Name + "_enc",
		auxTable:    schema.Name + "_aux",
		auxOldTable: schema.Name + "_aux_old",
		auxNewTable: schema.Name + "_aux_new",
		keysTable:   schema.Name + "_keys",
		insTable:    schema.Name + "_ins",
		delTable:    schema.Name + "_del",
	}
	d.generateSQL()
	return d, nil
}

// Sigma returns the split (single-pattern) constraints; the CID of
// Sigma()[i] is i+1.
func (d *Detector) Sigma() []*core.ECFD { return d.sigma }

// DataTable returns the name of the SV/MV-extended data table.
func (d *Detector) DataTable() string { return d.dataTable }

// BindEngine hands the detector the embedded sqldb engine behind its
// database/sql handle (sqldriver.Engine of the DSN the handle was
// opened with). With an engine bound, ParallelDetect pins one MVCC
// snapshot per read phase and runs every worker's statements directly
// against it (Prepared.QueryAt) — one pin per pass instead of one
// read-only transaction per slice task, which BENCH_pr8 showed costing
// ~20% at 8 workers on one CPU. Purely an optimization: results are
// identical with or without the binding.
func (d *Detector) BindEngine(eng *sqldb.DB) { d.eng = eng }

// talName / tarName name the per-attribute pattern-set tables.
func (d *Detector) talName(attr string) string { return fmt.Sprintf("%s_t_%s_l", d.schema.Name, attr) }
func (d *Detector) tarName(attr string) string { return fmt.Sprintf("%s_t_%s_r", d.schema.Name, attr) }

func sqlKind(k relation.Kind) string {
	switch k {
	case relation.KindInt:
		return "INTEGER"
	case relation.KindFloat:
		return "REAL"
	case relation.KindBool:
		return "BOOLEAN"
	default:
		return "TEXT"
	}
}

// Install creates every table the detector needs and loads the
// encoding of Σ. Existing detector tables are dropped first.
func (d *Detector) Install() error {
	var ddl []string
	drop := func(name string) { ddl = append(ddl, "DROP TABLE IF EXISTS "+name) }
	drop(d.dataTable)
	drop(d.encTable)
	drop(d.auxTable)
	drop(d.auxOldTable)
	drop(d.auxNewTable)
	drop(d.keysTable)
	drop(d.insTable)
	drop(d.delTable)
	for _, a := range d.schema.Attrs {
		drop(d.talName(a.Name))
		drop(d.tarName(a.Name))
	}

	// Data table: RID + R + SV + MV. The _ins staging table shares the
	// layout so inserted batches can be analysed before merging.
	var cols []string
	cols = append(cols, ColRID+" INTEGER")
	for _, a := range d.schema.Attrs {
		cols = append(cols, a.Name+" "+sqlKind(a.Kind))
	}
	cols = append(cols, ColSV+" INTEGER", ColMV+" INTEGER")
	ddl = append(ddl,
		fmt.Sprintf("CREATE TABLE %s (%s)", d.dataTable, strings.Join(cols, ", ")),
		fmt.Sprintf("CREATE TABLE %s (%s)", d.insTable, strings.Join(cols, ", ")),
		fmt.Sprintf("CREATE TABLE %s (%s INTEGER)", d.delTable, ColRID),
	)

	// enc: CID + A_L, A_R per attribute (Fig. 3 top).
	encCols := []string{"CID INTEGER"}
	for _, a := range d.schema.Attrs {
		encCols = append(encCols, a.Name+"_L INTEGER", a.Name+"_R INTEGER")
	}
	ddl = append(ddl, fmt.Sprintf("CREATE TABLE %s (%s)", d.encTable, strings.Join(encCols, ", ")))

	// T_AL / T_AR: (CID, value) pairs (Fig. 3 bottom).
	for _, a := range d.schema.Attrs {
		ddl = append(ddl,
			fmt.Sprintf("CREATE TABLE %s (CID INTEGER, VAL %s)", d.talName(a.Name), sqlKind(a.Kind)),
			fmt.Sprintf("CREATE TABLE %s (CID INTEGER, VAL %s)", d.tarName(a.Name), sqlKind(a.Kind)),
		)
	}

	// Aux(D) and the affected-keys scratch table: CID + one blanked
	// column per attribute.
	auxCols := []string{"CID INTEGER"}
	for _, a := range d.schema.Attrs {
		auxCols = append(auxCols, a.Name+"_P TEXT")
	}
	ddl = append(ddl,
		fmt.Sprintf("CREATE TABLE %s (%s)", d.auxTable, strings.Join(auxCols, ", ")),
		fmt.Sprintf("CREATE TABLE %s (%s)", d.auxOldTable, strings.Join(auxCols, ", ")),
		fmt.Sprintf("CREATE TABLE %s (%s)", d.auxNewTable, strings.Join(auxCols, ", ")),
		fmt.Sprintf("CREATE TABLE %s (%s)", d.keysTable, strings.Join(auxCols, ", ")),
	)

	// Secondary indexes on every probe target: the engine's
	// decorrelated EXISTS probes then hit persistent hash indexes that
	// survive across statements (pattern-set tables never change after
	// Install, so they are built exactly once).
	for _, a := range d.schema.Attrs {
		ddl = append(ddl,
			fmt.Sprintf("CREATE INDEX idx_%s ON %s (CID, VAL)", d.talName(a.Name), d.talName(a.Name)),
			fmt.Sprintf("CREATE INDEX idx_%s ON %s (CID, VAL)", d.tarName(a.Name), d.tarName(a.Name)),
		)
	}
	probeCols := []string{"CID"}
	for _, a := range d.schema.Attrs {
		probeCols = append(probeCols, a.Name+"_P")
	}
	for _, tbl := range []string{d.auxTable, d.auxOldTable, d.auxNewTable, d.keysTable} {
		ddl = append(ddl, fmt.Sprintf("CREATE INDEX idx_%s ON %s (%s)", tbl, tbl, strings.Join(probeCols, ", ")))
	}

	// Ordered RID index on the data table: the parallel detector's
	// RID-slice tasks and the incremental path's RID-range statements
	// (mvSetNew/mvSetOld) prune to their slice through it instead of
	// scanning the whole table, and ORDER BY RID reads (Violations,
	// RIDs) iterate it in order with no sort. The engine maintains it
	// incrementally: appends merge at the tail (RIDs are monotone) and
	// SV/MV flag updates never touch it since RID is not among the set
	// columns.
	ddl = append(ddl, fmt.Sprintf("CREATE INDEX idx_%s_rid ON %s (%s)", d.dataTable, d.dataTable, ColRID))

	for _, q := range ddl {
		if _, err := d.db.Exec(q); err != nil {
			return fmt.Errorf("detect: install: %w", err)
		}
	}
	return d.loadEncoding()
}

// loadEncoding writes the Fig. 3 tables for Σ.
func (d *Detector) loadEncoding() error {
	for i, e := range d.sigma {
		cid := int64(i + 1)
		enc := EncodeConstraint(e, d.schema)
		cols := []string{"CID"}
		vals := []string{fmt.Sprint(cid)}
		for _, a := range d.schema.Attrs {
			cols = append(cols, a.Name+"_L", a.Name+"_R")
			vals = append(vals, fmt.Sprint(enc.L[a.Name]), fmt.Sprint(enc.R[a.Name]))
		}
		q := fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)", d.encTable, strings.Join(cols, ", "), strings.Join(vals, ", "))
		if _, err := d.db.Exec(q); err != nil {
			return fmt.Errorf("detect: encode CID %d: %w", cid, err)
		}
		for attr, set := range enc.SetsL {
			if err := d.insertSet(d.talName(attr), cid, set); err != nil {
				return err
			}
		}
		for attr, set := range enc.SetsR {
			if err := d.insertSet(d.tarName(attr), cid, set); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *Detector) insertSet(table string, cid int64, set []relation.Value) error {
	// Batched and parameterized like bulkInsert: large pattern sets
	// neither build unbounded statement strings nor lex their values.
	for start := 0; start < len(set); start += insertBatch {
		end := start + insertBatch
		if end > len(set) {
			end = len(set)
		}
		chunk := set[start:end]
		args := make([]any, 0, 2*len(chunk))
		for _, v := range chunk {
			args = append(args, cid, valueArg(v))
		}
		q := fmt.Sprintf("INSERT INTO %s (CID, VAL) VALUES %s",
			table, placeholderRows(len(chunk), 2))
		if _, err := d.db.Exec(q, args...); err != nil {
			return fmt.Errorf("detect: load set table %s: %w", table, err)
		}
	}
	return nil
}

// placeholderRows renders "(?, ?), (?, ?), ..." for n rows of w
// placeholders each.
func placeholderRows(n, w int) string {
	row := "(" + strings.Repeat("?, ", w-1) + "?)"
	var b strings.Builder
	b.Grow(n * (len(row) + 2))
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(row)
	}
	return b.String()
}

// valueArg converts an engine value to a database/sql argument.
func valueArg(v relation.Value) any {
	switch v.K {
	case relation.KindNull:
		return nil
	case relation.KindInt:
		return v.I
	case relation.KindBool:
		return v.I != 0
	case relation.KindFloat:
		return v.F
	default:
		return v.S
	}
}

// LoadData inserts the instance into the data table in batches,
// assigning fresh RIDs and clear flags. It returns the assigned RIDs.
func (d *Detector) LoadData(inst *relation.Relation) ([]int64, error) {
	if inst.Schema.Name != d.schema.Name || inst.Schema.Width() != d.schema.Width() {
		return nil, fmt.Errorf("detect: instance schema %s does not match %s", inst.Schema, d.schema)
	}
	var rids []int64
	err := d.runAtomic(func(ex execer) error {
		var err error
		rids, err = d.bulkInsert(ex, d.dataTable, inst)
		return err
	})
	if err != nil {
		return nil, err
	}
	return rids, nil
}

const insertBatch = 500

func (d *Detector) bulkInsert(ex execer, table string, inst *relation.Relation) ([]int64, error) {
	// Parameterized prepared inserts: the full-batch statement text is
	// constant, so after the first batch the engine's plan cache serves
	// the compiled insert and no data value is ever lexed. One prepared
	// handle per LoadData covers every full batch; the tail row count
	// varies but its text is shared across calls too.
	width := d.schema.Width() + 3 // RID + R + SV + MV
	rids := make([]int64, 0, inst.Len())
	args := make([]any, 0, insertBatch*width)
	appendRow := func(row relation.Tuple) {
		d.nextRID++
		rids = append(rids, d.nextRID)
		args = append(args, d.nextRID)
		for _, v := range row {
			args = append(args, valueArg(v))
		}
		args = append(args, 0, 0)
	}

	rows := inst.Rows
	nFull := len(rows) / insertBatch
	if nFull > 0 {
		stmt, err := ex.Prepare(fmt.Sprintf("INSERT INTO %s VALUES %s",
			table, placeholderRows(insertBatch, width)))
		if err != nil {
			return nil, fmt.Errorf("detect: load data: %w", err)
		}
		for i := 0; i < nFull; i++ {
			args = args[:0]
			for _, row := range rows[i*insertBatch : (i+1)*insertBatch] {
				appendRow(row)
			}
			if _, err := stmt.Exec(args...); err != nil {
				stmt.Close()
				return nil, fmt.Errorf("detect: load data: %w", err)
			}
		}
		stmt.Close()
	}
	if tail := rows[nFull*insertBatch:]; len(tail) > 0 {
		args = args[:0]
		for _, row := range tail {
			appendRow(row)
		}
		q := fmt.Sprintf("INSERT INTO %s VALUES %s", table, placeholderRows(len(tail), width))
		if _, err := ex.Exec(q, args...); err != nil {
			return nil, fmt.Errorf("detect: load data: %w", err)
		}
	}
	return rids, nil
}

// Counts returns (DSV, DMV, |vio(D)|): tuples flagged SV, flagged MV,
// and flagged either way.
func (d *Detector) Counts() (sv, mv, total int64, err error) {
	q := fmt.Sprintf(`SELECT SUM(%[1]s), SUM(%[2]s), COUNT(*) FROM %[3]s WHERE %[1]s = 1 OR %[2]s = 1`,
		ColSV, ColMV, d.dataTable)
	var svN, mvN sql.NullInt64
	var tot int64
	if err := d.db.QueryRow(q).Scan(&svN, &mvN, &tot); err != nil {
		return 0, 0, 0, err
	}
	return svN.Int64, mvN.Int64, tot, nil
}

// Queryer is the minimal read surface the violation readers need;
// *sql.DB and *sql.Tx both satisfy it. Passing a read-only
// transaction (sql.TxOptions{ReadOnly: true}) pins one MVCC snapshot
// for the whole read, so the result is coherent even while
// LoadData/ApplyUpdates commit concurrently.
type Queryer interface {
	Query(query string, args ...any) (*sql.Rows, error)
}

// Violations returns the current violation set as (RID, SV, MV) plus
// the data columns, ordered by RID. It reads the published snapshot;
// use ViolationsVia with a read-only transaction to pin one snapshot
// across several reads.
func (d *Detector) Violations() (*relation.Relation, error) {
	return d.ViolationsVia(d.db)
}

// ViolationsVia is Violations reading through q.
func (d *Detector) ViolationsVia(q Queryer) (*relation.Relation, error) {
	return d.violationsVia(q, "", nil)
}

// violationsVia reads the violation set through q, optionally
// restricted by extraWhere (with its positional args) — the sharded
// detector's pruned range reads bind a RID range here.
func (d *Detector) violationsVia(q Queryer, extraWhere string, args []any) (*relation.Relation, error) {
	cols := []string{ColRID}
	attrs := []relation.Attribute{{Name: ColRID, Kind: relation.KindInt}}
	for _, a := range d.schema.Attrs {
		cols = append(cols, a.Name)
		attrs = append(attrs, a)
	}
	cols = append(cols, ColSV, ColMV)
	attrs = append(attrs,
		relation.Attribute{Name: ColSV, Kind: relation.KindInt},
		relation.Attribute{Name: ColMV, Kind: relation.KindInt})
	schema, err := relation.NewSchema(d.schema.Name+"_vio", attrs...)
	if err != nil {
		return nil, err
	}
	where := fmt.Sprintf("(%s = 1 OR %s = 1)", ColSV, ColMV)
	if extraWhere != "" {
		where += " AND " + extraWhere
	}
	query := fmt.Sprintf("SELECT %s FROM %s WHERE %s ORDER BY %s",
		strings.Join(cols, ", "), d.dataTable, where, ColRID)
	rows, err := q.Query(query, args...)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	out := relation.New(schema)
	for rows.Next() {
		ptrs := make([]any, len(attrs))
		cells := make([]sql.NullString, len(attrs))
		for i := range ptrs {
			ptrs[i] = &cells[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			return nil, err
		}
		t := make(relation.Tuple, len(attrs))
		for i, c := range cells {
			if !c.Valid {
				t[i] = relation.Null()
				continue
			}
			v, err := relation.ParseLiteral(c.String, attrs[i].Kind)
			if err != nil {
				return nil, err
			}
			t[i] = v
		}
		out.Rows = append(out.Rows, t)
	}
	return out, rows.Err()
}

// FlagsByRID returns the SV/MV flags of every row, keyed by RID. Tests
// use it to compare against the naive oracle.
func (d *Detector) FlagsByRID() (map[int64][2]bool, error) {
	q := fmt.Sprintf("SELECT %s, %s, %s FROM %s", ColRID, ColSV, ColMV, d.dataTable)
	rows, err := d.db.Query(q)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	out := make(map[int64][2]bool)
	for rows.Next() {
		var rid, sv, mv int64
		if err := rows.Scan(&rid, &sv, &mv); err != nil {
			return nil, err
		}
		out[rid] = [2]bool{sv == 1, mv == 1}
	}
	return out, rows.Err()
}
