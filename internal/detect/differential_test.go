package detect

import (
	"bytes"
	"context"
	"database/sql"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ecfd/internal/gen"
	"ecfd/internal/relation"
	"ecfd/internal/sqldb"
	"ecfd/internal/sqldriver"
)

// TestDetectThreeWayDifferential drives three detectors over identical
// random DML sequences and asserts byte-identical violation sets after
// every step:
//
//   - d_inc runs BatchDetect once, then maintains flags and Aux
//     incrementally (ApplyUpdates) — the §V-B path;
//   - d_batch applies the same changes raw (no maintenance) and
//     recomputes with BatchDetect after each step;
//   - d_par applies the same raw changes and recomputes with
//     ParallelDetect(8);
//   - d_dur runs the incremental path on a durable engine over a
//     fault-injected filesystem: every step arms a crash at a random
//     upcoming I/O point, and when it fires the "process" restarts —
//     reopen, Resume, redo the update if its commit unit did not make
//     it to the log — and must still land byte-identical;
//   - the sharded legs run the scatter-gather detector at K ∈
//     {1, 2, 4, 8} partitions, maintained through the sharded
//     ApplyUpdates — partition count and scatter scheduling must never
//     leak into the violation bytes.
//
// All legs assign identical RID sequences (same insert batches in the
// same order), so Violations() must render to the same bytes — not
// just the same multiset. The whole differential runs with batch
// kernels on and forced off, pinning every kernel path end to end.
func TestDetectThreeWayDifferential(t *testing.T) {
	recoveries := 0
	run := func(t *testing.T) {
		rng := rand.New(rand.NewSource(157))
		for trial := 0; trial < 6; trial++ {
			inst, sigma := randomInstanceAndSigma(rng, 45)
			dInc := newDetector(t, sigma, inst)
			dBatch := newDetector(t, sigma, inst)
			dPar := newDetector(t, sigma, inst)
			if _, err := dInc.BatchDetect(); err != nil {
				t.Fatal(err)
			}

			// The durable leg: atomic updates on a MemFS-backed WAL,
			// fsync'd every commit so an acknowledged update is never
			// lost, with a small checkpoint threshold so crashes also
			// land mid-rotation.
			fs := sqldb.NewMemFS(int64(9000 + trial))
			walOpts := sqldb.WALOptions{Dir: "/wal", FS: fs, Fsync: sqldb.FsyncAlways, CheckpointBytes: 8 << 10}
			dsn := fmt.Sprintf("detect_durable_%d", dsnSeq.Add(1))
			eng, err := sqldb.Open(walOpts)
			if err != nil {
				t.Fatal(err)
			}
			sqldriver.RegisterDB(dsn, eng)
			dbDur, err := sql.Open(sqldriver.DriverName, dsn)
			if err != nil {
				t.Fatal(err)
			}
			dDur, err := New(dbDur, inst.Schema, sigma)
			if err != nil {
				t.Fatal(err)
			}
			dDur.SetAtomicUpdates(true)
			if err := dDur.Install(); err != nil {
				t.Fatal(err)
			}
			if _, err := dDur.LoadData(inst); err != nil {
				t.Fatal(err)
			}
			if _, err := dDur.BatchDetect(); err != nil {
				t.Fatal(err)
			}

			// Sharded legs: one detector per partition count.
			shardKs := []int{1, 2, 4, 8}
			sharded := make([]*ShardedDetector, len(shardKs))
			for i, k := range shardKs {
				s, err := NewSharded(openDB(t), inst.Schema, sigma, ShardOptions{Shards: k, Workers: 4})
				if err != nil {
					t.Fatal(err)
				}
				sharded[i] = s
				if err := s.Install(); err != nil {
					t.Fatal(err)
				}
				if _, err := s.LoadData(inst); err != nil {
					t.Fatal(err)
				}
				if _, err := s.BatchDetect(); err != nil {
					t.Fatal(err)
				}
			}

			for step := 0; step < 4; step++ {
				// One combined update ΔD = (ΔD⁻, ΔD⁺): a random subset of
				// current RIDs leaves, a random batch arrives.
				rids, err := dInc.RIDs()
				if err != nil {
					t.Fatal(err)
				}
				var doomed []int64
				if len(rids) > 0 && rng.Intn(4) > 0 {
					k := 1 + rng.Intn(len(rids)/3+1)
					for _, i := range rng.Perm(len(rids))[:k] {
						doomed = append(doomed, rids[i])
					}
				}
				var batch *relation.Relation
				if rng.Intn(5) > 0 {
					batch = randomRows(rng, inst.Schema, 1+rng.Intn(12))
				}

				// Fifth leg — MVCC snapshot stability: a reader that pinned
				// its snapshot (read-only transaction) before the update
				// must render the pre-update violation set byte for byte,
				// however its reads interleave with the concurrent
				// ApplyUpdates running on another goroutine.
				preTx, err := dInc.db.BeginTx(context.Background(), &sql.TxOptions{ReadOnly: true})
				if err != nil {
					t.Fatal(err)
				}
				before := violationCSVVia(t, dInc, preTx)
				incDone := make(chan error, 1)
				go func() {
					_, _, err := dInc.ApplyUpdates(batch, doomed)
					incDone <- err
				}()
				for probe := 0; probe < 3; probe++ {
					if during := violationCSVVia(t, dInc, preTx); !bytes.Equal(before, during) {
						t.Fatalf("trial %d step %d probe %d: pinned snapshot drifted under concurrent ApplyUpdates\nbefore:\n%s\nduring:\n%s",
							trial, step, probe, before, during)
					}
				}
				if err := <-incDone; err != nil {
					t.Fatalf("trial %d step %d incremental: %v", trial, step, err)
				}
				// The pin outlives the commit; the frozen view must still
				// be intact after the writer won.
				if after := violationCSVVia(t, dInc, preTx); !bytes.Equal(before, after) {
					t.Fatalf("trial %d step %d: pinned snapshot drifted after ApplyUpdates committed\nbefore:\n%s\nafter:\n%s",
						trial, step, before, after)
				}
				preTx.Rollback()
				for _, d := range []*Detector{dBatch, dPar} {
					if err := d.DeleteRaw(doomed); err != nil {
						t.Fatal(err)
					}
					if batch != nil {
						if _, err := d.InsertRaw(batch); err != nil {
							t.Fatal(err)
						}
					}
				}
				if _, err := dBatch.BatchDetect(); err != nil {
					t.Fatalf("trial %d step %d batch: %v", trial, step, err)
				}
				if _, err := dPar.ParallelDetect(8); err != nil {
					t.Fatalf("trial %d step %d parallel: %v", trial, step, err)
				}
				for i, s := range sharded {
					if _, _, err := s.ApplyUpdates(batch, doomed); err != nil {
						t.Fatalf("trial %d step %d sharded K=%d: %v", trial, step, shardKs[i], err)
					}
				}

				// Durable leg: crash at a random point inside (or just
				// after) the update's I/O, then recover and reconcile.
				savedRID := dDur.nextRID
				fs.Arm(sqldb.FaultCrash, 1+rng.Intn(5))
				if _, _, err := dDur.ApplyUpdates(batch, doomed); err == nil {
					fs.Disarm()
				} else {
					recoveries++
					fs.Crash()
					dbDur.Close()
					if eng, err = sqldb.Open(walOpts); err != nil {
						t.Fatalf("trial %d step %d: recovery open: %v", trial, step, err)
					}
					sqldriver.RegisterDB(dsn, eng)
					if dbDur, err = sql.Open(sqldriver.DriverName, dsn); err != nil {
						t.Fatal(err)
					}
					if dDur, err = New(dbDur, inst.Schema, sigma); err != nil {
						t.Fatal(err)
					}
					dDur.SetAtomicUpdates(true)
					if err := dDur.Resume(); err != nil {
						t.Fatalf("trial %d step %d: resume: %v", trial, step, err)
					}
					// Resume restores the allocator from MAX(RID), which
					// under-counts when deletions removed the maximal
					// rows; pin it to the dead process's value — the
					// legs must assign identical RID sequences for the
					// byte-differential to be meaningful.
					dDur.nextRID = savedRID
					if durStepApplied(t, dbDur, dDur, batch, doomed, savedRID) {
						if batch != nil {
							dDur.nextRID = savedRID + int64(batch.Len())
						}
					} else if _, _, err := dDur.ApplyUpdates(batch, doomed); err != nil {
						t.Fatalf("trial %d step %d: redo after recovery: %v", trial, step, err)
					}
				}

				vInc := violationCSV(t, dInc)
				vBatch := violationCSV(t, dBatch)
				vPar := violationCSV(t, dPar)
				vDur := violationCSV(t, dDur)
				if !bytes.Equal(vInc, vBatch) {
					t.Fatalf("trial %d step %d: incremental vs batch violation sets differ\nsigma: %s\ninc:\n%s\nbatch:\n%s",
						trial, step, sigmaString(sigma), vInc, vBatch)
				}
				if !bytes.Equal(vBatch, vPar) {
					t.Fatalf("trial %d step %d: batch vs parallel(8) violation sets differ\nbatch:\n%s\npar:\n%s",
						trial, step, vBatch, vPar)
				}
				if !bytes.Equal(vInc, vDur) {
					t.Fatalf("trial %d step %d: incremental vs durable violation sets differ\nsigma: %s\ninc:\n%s\ndur:\n%s",
						trial, step, sigmaString(sigma), vInc, vDur)
				}
				for i, s := range sharded {
					if vSh := shardedViolationCSV(t, s); !bytes.Equal(vBatch, vSh) {
						t.Fatalf("trial %d step %d: batch vs sharded K=%d violation sets differ\nsigma: %s\nbatch:\n%s\nsharded:\n%s",
							trial, step, shardKs[i], sigmaString(sigma), vBatch, vSh)
					}
				}
			}
			for _, s := range sharded {
				s.Close()
			}
			dbDur.Close()
			sqldriver.Unregister(dsn)
		}
	}
	t.Run("kernels=on", run)
	t.Run("kernels=off", func(t *testing.T) {
		sqldb.DisableBatchKernels = true
		defer func() { sqldb.DisableBatchKernels = false }()
		run(t)
	})
	if recoveries == 0 {
		t.Error("no crash ever fired: the durable leg exercised no recovery")
	}
	t.Logf("durable leg: %d crash recoveries across both kernel modes", recoveries)
}

// durStepApplied reports whether the interrupted atomic update's
// commit unit reached the log before the crash. ApplyUpdates leaves
// this step's batch in the ins staging table until the next step
// truncates it, so a surviving batch (its RIDs continue savedRID) or
// a vanished doomed row means the unit committed; a step with neither
// inserts nor deletes is a semantic no-op either way.
func durStepApplied(t *testing.T, db *sql.DB, d *Detector, batch *relation.Relation, doomed []int64, savedRID int64) bool {
	t.Helper()
	switch {
	case batch != nil && batch.Len() > 0:
		var m sql.NullInt64
		if err := db.QueryRow("SELECT MAX(" + ColRID + ") FROM " + d.insTable).Scan(&m); err != nil {
			t.Fatal(err)
		}
		return m.Valid && m.Int64 == savedRID+int64(batch.Len())
	case len(doomed) > 0:
		var n int64
		q := fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s = %d", d.dataTable, ColRID, doomed[0])
		if err := db.QueryRow(q).Scan(&n); err != nil {
			t.Fatal(err)
		}
		return n == 0
	}
	return false
}

// TestBatchDetectStatementsFullyBatched is the EXPLAIN acceptance for
// the kernelized closure tail: none of the five BatchDetect statements
// may contain a `[row]` scan source — every scan level with predicate
// work runs kernels or OR groups, and pure join drivers carry no
// evaluation-mode marker at all.
func TestBatchDetectStatementsFullyBatched(t *testing.T) {
	dsn := fmt.Sprintf("detect_batched_%d", dsnSeq.Add(1))
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defer sqldriver.Unregister(dsn)
	d, err := New(db, gen.Schema(), gen.Constraints())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Install(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadData(gen.Dataset(gen.Config{Rows: 1000, Noise: 5, Seed: 23})); err != nil {
		t.Fatal(err)
	}
	if _, err := d.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	eng := sqldriver.Engine(dsn)
	stmts := map[string]string{
		"resetFlags": d.stmts.resetFlags,
		"qsvUpdate":  d.stmts.qsvUpdate,
		"qmvInsert":  d.stmts.qmvInsert,
		"mvUpdate":   d.stmts.mvUpdate,
		"truncAux":   "TRUNCATE TABLE " + d.auxTable,
		// The parallel statement set rides the same kernels: since
		// mvRIDsSlice was flattened from EXISTS-over-conjunction to a
		// semi-join, none of the three may fall back to a [row] scan.
		"qsvRIDsSlice":    d.stmts.qsvRIDsSlice,
		"qmvGroupsCIDRng": d.stmts.qmvGroupsCIDRng,
		"mvRIDsSlice":     d.stmts.mvRIDsSlice,
	}
	for name, q := range stmts {
		plan, err := eng.Explain(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if strings.Contains(plan, "[row]") {
			t.Fatalf("%s still has a [row] scan source:\n%s", name, plan)
		}
	}
	// And the pattern-predicate scans run OR-group kernels, not just
	// marker-free drivers.
	for _, name := range []string{"qsvUpdate", "qmvInsert", "mvUpdate"} {
		plan, _ := eng.Explain(stmts[name])
		if !strings.Contains(plan, "or-group(") {
			t.Fatalf("%s carries no OR-group kernels:\n%s", name, plan)
		}
	}
	// The Qmv groupings must share the macro's DISTINCT key spine: the
	// 10-column group key (CID + 9 blanked-LHS columns) is a prefix of
	// the 19-column dedup key, so it is never encoded twice.
	for _, name := range []string{"qmvInsert", "qmvGroupsCIDRng"} {
		plan, _ := eng.Explain(stmts[name])
		if !strings.Contains(plan, "[spine: 10-col keys shared with distinct source]") {
			t.Fatalf("%s grouping does not share the distinct key spine:\n%s", name, plan)
		}
	}
}
