package detect

import (
	"bytes"
	"database/sql"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ecfd/internal/gen"
	"ecfd/internal/relation"
	"ecfd/internal/sqldb"
	"ecfd/internal/sqldriver"
)

// TestDetectThreeWayDifferential drives three detectors over identical
// random DML sequences and asserts byte-identical violation sets after
// every step:
//
//   - d_inc runs BatchDetect once, then maintains flags and Aux
//     incrementally (ApplyUpdates) — the §V-B path;
//   - d_batch applies the same changes raw (no maintenance) and
//     recomputes with BatchDetect after each step;
//   - d_par applies the same raw changes and recomputes with
//     ParallelDetect(8).
//
// All three assign identical RID sequences (same insert batches in the
// same order), so Violations() must render to the same bytes — not
// just the same multiset. The whole differential runs with batch
// kernels on and forced off, pinning every kernel path end to end.
func TestDetectThreeWayDifferential(t *testing.T) {
	run := func(t *testing.T) {
		rng := rand.New(rand.NewSource(157))
		for trial := 0; trial < 6; trial++ {
			inst, sigma := randomInstanceAndSigma(rng, 45)
			dInc := newDetector(t, sigma, inst)
			dBatch := newDetector(t, sigma, inst)
			dPar := newDetector(t, sigma, inst)
			if _, err := dInc.BatchDetect(); err != nil {
				t.Fatal(err)
			}

			for step := 0; step < 4; step++ {
				// One combined update ΔD = (ΔD⁻, ΔD⁺): a random subset of
				// current RIDs leaves, a random batch arrives.
				rids, err := dInc.RIDs()
				if err != nil {
					t.Fatal(err)
				}
				var doomed []int64
				if len(rids) > 0 && rng.Intn(4) > 0 {
					k := 1 + rng.Intn(len(rids)/3+1)
					for _, i := range rng.Perm(len(rids))[:k] {
						doomed = append(doomed, rids[i])
					}
				}
				var batch *relation.Relation
				if rng.Intn(5) > 0 {
					batch = randomRows(rng, inst.Schema, 1+rng.Intn(12))
				}

				if _, _, err := dInc.ApplyUpdates(batch, doomed); err != nil {
					t.Fatalf("trial %d step %d incremental: %v", trial, step, err)
				}
				for _, d := range []*Detector{dBatch, dPar} {
					if err := d.DeleteRaw(doomed); err != nil {
						t.Fatal(err)
					}
					if batch != nil {
						if _, err := d.InsertRaw(batch); err != nil {
							t.Fatal(err)
						}
					}
				}
				if _, err := dBatch.BatchDetect(); err != nil {
					t.Fatalf("trial %d step %d batch: %v", trial, step, err)
				}
				if _, err := dPar.ParallelDetect(8); err != nil {
					t.Fatalf("trial %d step %d parallel: %v", trial, step, err)
				}

				vInc := violationCSV(t, dInc)
				vBatch := violationCSV(t, dBatch)
				vPar := violationCSV(t, dPar)
				if !bytes.Equal(vInc, vBatch) {
					t.Fatalf("trial %d step %d: incremental vs batch violation sets differ\nsigma: %s\ninc:\n%s\nbatch:\n%s",
						trial, step, sigmaString(sigma), vInc, vBatch)
				}
				if !bytes.Equal(vBatch, vPar) {
					t.Fatalf("trial %d step %d: batch vs parallel(8) violation sets differ\nbatch:\n%s\npar:\n%s",
						trial, step, vBatch, vPar)
				}
			}
		}
	}
	t.Run("kernels=on", run)
	t.Run("kernels=off", func(t *testing.T) {
		sqldb.DisableBatchKernels = true
		defer func() { sqldb.DisableBatchKernels = false }()
		run(t)
	})
}

// TestBatchDetectStatementsFullyBatched is the EXPLAIN acceptance for
// the kernelized closure tail: none of the five BatchDetect statements
// may contain a `[row]` scan source — every scan level with predicate
// work runs kernels or OR groups, and pure join drivers carry no
// evaluation-mode marker at all.
func TestBatchDetectStatementsFullyBatched(t *testing.T) {
	dsn := fmt.Sprintf("detect_batched_%d", dsnSeq.Add(1))
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defer sqldriver.Unregister(dsn)
	d, err := New(db, gen.Schema(), gen.Constraints())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Install(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadData(gen.Dataset(gen.Config{Rows: 1000, Noise: 5, Seed: 23})); err != nil {
		t.Fatal(err)
	}
	if _, err := d.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	eng := sqldriver.Engine(dsn)
	stmts := map[string]string{
		"resetFlags": d.stmts.resetFlags,
		"qsvUpdate":  d.stmts.qsvUpdate,
		"qmvInsert":  d.stmts.qmvInsert,
		"mvUpdate":   d.stmts.mvUpdate,
		"truncAux":   "TRUNCATE TABLE " + d.auxTable,
	}
	for name, q := range stmts {
		plan, err := eng.Explain(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if strings.Contains(plan, "[row]") {
			t.Fatalf("%s still has a [row] scan source:\n%s", name, plan)
		}
	}
	// And the pattern-predicate scans run OR-group kernels, not just
	// marker-free drivers.
	for _, name := range []string{"qsvUpdate", "qmvInsert", "mvUpdate"} {
		plan, _ := eng.Explain(stmts[name])
		if !strings.Contains(plan, "or-group(") {
			t.Fatalf("%s carries no OR-group kernels:\n%s", name, plan)
		}
	}
}
