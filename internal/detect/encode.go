package detect

import (
	"ecfd/internal/core"
	"ecfd/internal/relation"
)

// Pattern codes stored in the enc relation (paper §V-A). 0 marks an
// attribute the pattern tuple does not mention on that side; on the
// LHS (and for Y attributes on the RHS) 1 encodes a set pattern S,
// 2 a complement pattern S̄ and 3 the wildcard; Yp attributes use the
// negative mirror codes −1, −2, −3.
const (
	CodeAbsent   = 0
	CodeIn       = 1
	CodeNotIn    = 2
	CodeWildcard = 3
)

// Encoding is the enc-row plus set tables of one single-pattern eCFD.
type Encoding struct {
	// L and R map every attribute of R to its LHS/RHS code.
	L, R map[string]int
	// SetsL / SetsR hold the pattern sets feeding T_AL / T_AR.
	SetsL, SetsR map[string][]relation.Value
}

// EncodeConstraint computes the Fig. 3 encoding of a single-pattern
// eCFD over the given schema.
func EncodeConstraint(e *core.ECFD, schema *relation.Schema) Encoding {
	enc := Encoding{
		L:     make(map[string]int, schema.Width()),
		R:     make(map[string]int, schema.Width()),
		SetsL: make(map[string][]relation.Value),
		SetsR: make(map[string][]relation.Value),
	}
	for _, a := range schema.Attrs {
		enc.L[a.Name] = CodeAbsent
		enc.R[a.Name] = CodeAbsent
	}
	tp := e.Tableau[0]
	for j, attr := range e.X {
		code, set := patternCode(tp.LHS[j])
		enc.L[attr] = code
		if set != nil {
			enc.SetsL[attr] = set
		}
	}
	rhs := e.RHS()
	for j, attr := range rhs {
		code, set := patternCode(tp.RHS[j])
		if j >= len(e.Y) { // Yp attribute: negative mirror code
			code = -code
		}
		enc.R[attr] = code
		if set != nil {
			enc.SetsR[attr] = set
		}
	}
	return enc
}

func patternCode(p core.Pattern) (int, []relation.Value) {
	switch p.Op {
	case core.In:
		return CodeIn, p.Set
	case core.NotIn:
		return CodeNotIn, p.Set
	default:
		return CodeWildcard, nil
	}
}
