package detect

import (
	"testing"

	"ecfd/internal/core"
	"ecfd/internal/relation"
)

// TestEncodingSizeLinearInSigma is the paper's Remark (2) of §V-A:
// the encoding relations grow linearly with the size of Σ.
func TestEncodingSizeLinearInSigma(t *testing.T) {
	base := core.Fig2Constraints()
	var big []*core.ECFD
	for i := 0; i < 10; i++ {
		for _, e := range base {
			c := e.Clone()
			big = append(big, c)
		}
	}
	d := newDetector(t, big, core.Fig1Instance())
	var encRows, setRows int64
	if err := d.db.QueryRow("SELECT COUNT(*) FROM cust_enc").Scan(&encRows); err != nil {
		t.Fatal(err)
	}
	if err := d.db.QueryRow("SELECT COUNT(*) FROM cust_t_CT_l").Scan(&setRows); err != nil {
		t.Fatal(err)
	}
	if encRows != 30 { // 10 × 3 pattern tuples
		t.Errorf("enc rows = %d, want 30", encRows)
	}
	if setRows != 60 { // 10 × 6 CT constants
		t.Errorf("T_CT_L rows = %d, want 60", setRows)
	}
}

// TestIncrementalStatementSetFixed: the paper's §V-B remark — the
// incremental algorithm uses a fixed number of SQL statements no
// matter how many eCFDs or pattern tuples are in Σ. The statement
// *texts* depend only on the schema.
func TestIncrementalStatementSetFixed(t *testing.T) {
	small := newDetector(t, core.Fig2Constraints(), core.Fig1Instance())
	var big []*core.ECFD
	for i := 0; i < 7; i++ {
		big = append(big, core.Fig2Constraints()...)
	}
	large := newDetector(t, big, core.Fig1Instance())

	a, b := small.stmts, large.stmts
	pairs := [][2]string{
		{a.qsvSelect, b.qsvSelect}, {a.qsvUpdate, b.qsvUpdate},
		{a.qmvInsert, b.qmvInsert}, {a.mvUpdate, b.mvUpdate},
		{a.resetFlags, b.resetFlags}, {a.keysFromIns, b.keysFromIns},
		{a.keysFromDel, b.keysFromDel}, {a.auxDeleteAff, b.auxDeleteAff},
		{a.auxSaveOld, b.auxSaveOld}, {a.auxNewComp, b.auxNewComp},
		{a.auxRecompute, b.auxRecompute}, {a.mvSetNew, b.mvSetNew},
		{a.mvSetOld, b.mvSetOld}, {a.mvClear, b.mvClear},
		{a.svOnIns, b.svOnIns}, {a.mergeIns, b.mergeIns},
		{a.deleteRows, b.deleteRows},
		{a.checkSVRIDs, b.checkSVRIDs}, {a.checkMVRIDs, b.checkMVRIDs},
	}
	for i, p := range pairs {
		if p[0] != p[1] {
			t.Errorf("statement %d differs with |Σ|", i)
		}
		if p[0] == "" {
			t.Errorf("statement %d is empty", i)
		}
	}
}

// TestWiderSchemaWiderQueries sanity-checks the complement: the
// statement set *does* depend on the schema (one probe pair per
// attribute).
func TestWiderSchemaWiderQueries(t *testing.T) {
	narrow := relation.MustSchema("w",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	wide := relation.MustSchema("w",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText},
		relation.Attribute{Name: "C", Kind: relation.KindText})
	mk := func(s *relation.Schema) *Detector {
		e := &core.ECFD{Name: "e", Schema: s, X: []string{"A"}, Y: []string{"B"},
			Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()}, RHS: []core.Pattern{core.Any()}}}}
		d, err := New(openDB(t), s, []*core.ECFD{e})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if len(mk(narrow).stmts.qsvUpdate) >= len(mk(wide).stmts.qsvUpdate) {
		t.Error("wider schemas must yield wider (not equal) detection SQL")
	}
}
