package detect

import (
	"fmt"
	"strings"
	"time"

	"ecfd/internal/relation"
)

// IncStats reports one incremental maintenance step.
type IncStats struct {
	Applied int64 // tuples inserted or deleted
	Elapsed time.Duration
}

// InsertTuples applies ΔD⁺ and incrementally maintains the violation
// flags and Aux(D) (paper §V-B, steps (1) and (2.a)–(2.e)):
//
//  1. stage the batch and flag its single-tuple violations (Qsv on ΔD⁺
//     alone — SV is a per-tuple property);
//  2. collect the group keys the batch touches and snapshot the touched
//     Aux rows;
//  3. merge the batch into D;
//  4. drop and recompute exactly the touched Aux groups, and derive
//     aux_new — the groups that just *became* violating;
//  5. set MV on the merged rows matching any Aux pattern (RID-range
//     restricted) and on pre-existing clean rows of aux_new groups
//     (insertions never clear flags, so no clearing step).
//
// It requires the flags and Aux to be current (run BatchDetect once
// after Install/LoadData). Returns the RIDs assigned to the new rows.
func (d *Detector) InsertTuples(batch *relation.Relation) ([]int64, IncStats, error) {
	return d.ApplyUpdates(batch, nil)
}

// DeleteTuples applies ΔD⁻ by RID and incrementally maintains the
// flags and Aux(D) (paper §V-B, deletions): deletions cannot introduce
// violations, so the work is collecting the touched group keys from the
// doomed tuples, removing the rows, recomputing the touched Aux groups,
// and clearing MV on tuples of touched groups that no longer match any
// Aux pattern.
func (d *Detector) DeleteTuples(rids []int64) (IncStats, error) {
	if len(rids) == 0 {
		return IncStats{}, nil
	}
	_, st, err := d.ApplyUpdates(nil, rids)
	return st, err
}

// InsertRaw adds tuples without maintaining flags or Aux — the state
// BatchDetect expects when it is "applied to the data after database
// updates are executed" (§VI, Experiment 2). Returns the new RIDs.
func (d *Detector) InsertRaw(batch *relation.Relation) ([]int64, error) {
	if batch.Schema.Name != d.schema.Name || batch.Schema.Width() != d.schema.Width() {
		return nil, fmt.Errorf("detect: batch schema %s does not match %s", batch.Schema, d.schema)
	}
	return d.bulkInsert(d.db, d.dataTable, batch)
}

// DeleteRaw removes tuples by RID without maintaining flags or Aux.
func (d *Detector) DeleteRaw(rids []int64) error {
	if len(rids) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "DELETE FROM %s WHERE %s IN (", d.dataTable, ColRID)
	for i, rid := range rids {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", rid)
	}
	b.WriteString(")")
	_, err := d.db.Exec(b.String())
	return err
}

// ApplyUpdates applies a combined update ΔD = (ΔD⁻, ΔD⁺) — the shape
// of the paper's Experiment 2 / Fig. 7, where equal numbers of tuples
// are deleted and inserted — with a single touched-keys collection and
// a single Aux recompute shared by both halves. Either half may be
// empty. Returns the RIDs assigned to the inserted rows.
func (d *Detector) ApplyUpdates(insBatch *relation.Relation, delRids []int64) ([]int64, IncStats, error) {
	start := time.Now()
	applied := int64(len(delRids))
	var rids []int64
	err := d.runAtomic(func(ex execer) error {
		firstRID := d.nextRID + 1
		if _, err := ex.Exec("TRUNCATE TABLE " + d.insTable); err != nil {
			return err
		}
		if insBatch != nil && insBatch.Len() > 0 {
			if insBatch.Schema.Name != d.schema.Name || insBatch.Schema.Width() != d.schema.Width() {
				return fmt.Errorf("detect: batch schema %s does not match %s", insBatch.Schema, d.schema)
			}
			var err error
			if rids, err = d.bulkInsert(ex, d.insTable, insBatch); err != nil {
				return err
			}
			applied += int64(insBatch.Len())
		}
		if err := d.loadDelRids(ex, delRids); err != nil {
			return err
		}

		// The §V-B maintenance sequence runs as one pipelined script (see
		// statements.incScript): a single prepared round trip, with the two
		// RID-threshold parameters bound positionally (mvSetNew, mvSetOld).
		if _, err := ex.Exec(d.stmts.incScript, firstRID, firstRID); err != nil {
			return fmt.Errorf("detect: combined update: %w", err)
		}
		return nil
	})
	if err != nil {
		return nil, IncStats{}, err
	}
	return rids, IncStats{Applied: applied, Elapsed: time.Since(start)}, nil
}

// loadDelRids fills the ΔD⁻ staging table.
func (d *Detector) loadDelRids(ex execer, rids []int64) error {
	if _, err := ex.Exec("TRUNCATE TABLE " + d.delTable); err != nil {
		return err
	}
	var b strings.Builder
	n := 0
	flush := func() error {
		if n == 0 {
			return nil
		}
		if _, err := ex.Exec(b.String()); err != nil {
			return err
		}
		b.Reset()
		n = 0
		return nil
	}
	for _, rid := range rids {
		if n == 0 {
			fmt.Fprintf(&b, "INSERT INTO %s VALUES ", d.delTable)
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d)", rid)
		n++
		if n >= insertBatch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// RIDs returns every row id currently in the data table, ordered.
func (d *Detector) RIDs() ([]int64, error) {
	rows, err := d.db.Query(fmt.Sprintf("SELECT %s FROM %s ORDER BY %s", ColRID, d.dataTable, ColRID))
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []int64
	for rows.Next() {
		var rid int64
		if err := rows.Scan(&rid); err != nil {
			return nil, err
		}
		out = append(out, rid)
	}
	return out, rows.Err()
}
