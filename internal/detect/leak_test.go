package detect

import (
	"database/sql"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ecfd/internal/gen"
	"ecfd/internal/sqldb"
	"ecfd/internal/sqldriver"
)

// TestRunTasksSkipsAfterFailure: once a task fails, queued tasks are
// skipped — a failed phase returns promptly instead of burning the
// remaining slices (a task that has started still runs to completion).
func TestRunTasksSkipsAfterFailure(t *testing.T) {
	const total = 200
	const workers = 4
	var executed atomic.Int64
	boom := errors.New("boom")
	tasks := make([]func() error, total)
	tasks[0] = func() error { return boom }
	for i := 1; i < total; i++ {
		tasks[i] = func() error {
			executed.Add(1)
			time.Sleep(200 * time.Microsecond)
			return nil
		}
	}
	if err := runTasks(workers, tasks); !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	// Only tasks dequeued before the failure propagated may have run;
	// the old behavior executed all of them.
	if n := executed.Load(); n > total/4 {
		t.Fatalf("%d of %d queued tasks still executed after the failure", n, total-1)
	}
}

// TestRunTasksNoFailureRunsAll: the skip path must not fire without a
// failure.
func TestRunTasksNoFailureRunsAll(t *testing.T) {
	const total = 100
	var executed atomic.Int64
	tasks := make([]func() error, total)
	for i := range tasks {
		tasks[i] = func() error { executed.Add(1); return nil }
	}
	if err := runTasks(8, tasks); err != nil {
		t.Fatal(err)
	}
	if n := executed.Load(); n != total {
		t.Fatalf("executed %d of %d tasks", n, total)
	}
}

// turnEpoch forces the engine behind d to publish a fresh epoch, so
// that any pin leaked earlier holds a *retired* epoch and shows up in
// LiveEpochs. (A leaked pin on the still-current epoch is invisible to
// Stats until a write supersedes it.)
func turnEpoch(t *testing.T, d *Detector, eng *sqldb.DB) {
	t.Helper()
	before := eng.Stats().EpochSeq
	if _, err := d.db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (0)", d.delTable)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.db.Exec("TRUNCATE TABLE " + d.delTable); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().EpochSeq == before {
		t.Fatal("writes did not publish a new epoch; leak check is vacuous")
	}
}

// assertNoPins fails if the engine holds more than the one published
// epoch — every snapshot pinned during the failed run must have been
// released.
func assertNoPins(t *testing.T, label string, eng *sqldb.DB) {
	t.Helper()
	if st := eng.Stats(); st.LiveEpochs != 1 || st.RetiredEpochs != 0 {
		t.Fatalf("%s: LiveEpochs = %d, RetiredEpochs = %d after failed run; a snapshot pin leaked",
			label, st.LiveEpochs, st.RetiredEpochs)
	}
}

// TestParallelDetectSnapshotBalanceOnFailure forces a query failure in
// each of ParallelDetect's two concurrent read phases and asserts the
// engine's epoch accounting returns to exactly one live epoch — the
// phase snapshot pin is released on the error path. The detector must
// also stay usable after the failure.
func TestParallelDetectSnapshotBalanceOnFailure(t *testing.T) {
	d, cleanup := newBenchDetector(t, 3_000, 5)
	defer cleanup()
	if _, err := d.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	want, err := d.FlagsByRID()
	if err != nil {
		t.Fatal(err)
	}

	poison := func(name string, set func(*statements)) {
		t.Run(name, func(t *testing.T) {
			set(&d.stmts)
			_, err := d.ParallelDetect(4)
			d.generateSQL() // restore the statement set
			if err == nil {
				t.Fatal("poisoned phase did not fail")
			}
			turnEpoch(t, d, d.eng)
			assertNoPins(t, name, d.eng)

			// Still fully usable: a clean rerun recomputes the flags.
			if _, err := d.ParallelDetect(4); err != nil {
				t.Fatal(err)
			}
			got, err := d.FlagsByRID()
			if err != nil {
				t.Fatal(err)
			}
			for rid, w := range want {
				if got[rid] != w {
					t.Fatalf("RID %d: flags %v after recovery, want %v", rid, got[rid], w)
				}
			}
		})
	}
	poison("phase1-qsv", func(s *statements) {
		s.qsvRIDsSlice = "SELECT RID FROM no_such_table WHERE RID >= ? AND RID <= ?"
	})
	poison("phase1-qmv", func(s *statements) {
		s.qmvGroupsCIDRng = "SELECT CID FROM no_such_table WHERE CID >= ? AND CID <= ?"
	})
	poison("phase2-mv", func(s *statements) {
		s.mvRIDsSlice = "SELECT RID FROM no_such_table WHERE RID >= ? AND RID <= ?"
	})
}

// TestShardedDetectSnapshotBalanceOnFailure poisons one shard's
// scatter statement mid-BatchDetect and asserts every engine in the
// ensemble — the coordinator and all K shards — returns to one live
// epoch after the failure.
func TestShardedDetectSnapshotBalanceOnFailure(t *testing.T) {
	dsn := fmt.Sprintf("detect_leak_coord_%d", dsnSeq.Add(1))
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		db.Close()
		sqldriver.Unregister(dsn)
	}()
	s, err := NewSharded(db, gen.Schema(), gen.Constraints(), ShardOptions{Shards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Install(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadData(gen.Dataset(gen.Config{Rows: 3_000, Noise: 5, Seed: 5})); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BatchDetect(); err != nil {
		t.Fatal(err)
	}

	bad := s.shards[1].d
	bad.stmts.qmvMacroCIDRng = "SELECT CID FROM no_such_table WHERE CID >= ? AND CID <= ?"
	_, err = s.BatchDetect()
	bad.generateSQL()
	if err == nil {
		t.Fatal("poisoned shard did not fail the scatter")
	}

	coordEng := sqldriver.Engine(dsn)
	turnEpoch(t, s.coord, coordEng)
	assertNoPins(t, "coordinator", coordEng)
	for i, sh := range s.shards {
		eng := sqldriver.Engine(sh.dsn)
		turnEpoch(t, sh.d, eng)
		assertNoPins(t, fmt.Sprintf("shard %d", i), eng)
	}

	// The ensemble stays usable after the failed scatter.
	if _, err := s.BatchDetect(); err != nil {
		t.Fatal(err)
	}
}
