package detect

import (
	"context"
	"database/sql"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// ParallelDetect computes the same violation flags as BatchDetect, but
// fans the read-only violation queries across a worker pool so the
// engine's concurrent read path (shared read lock, see internal/sqldb)
// can use every core:
//
//   - the Qsv scan partitions the data into contiguous RID slices, one
//     task per slice;
//   - the Qmv grouping fans over contiguous CID ranges of Σ — the CID
//     is part of the group key, so groups never span constraints and
//     the per-range results union losslessly; one worker gets the
//     whole range and does exactly the serial amount of work;
//   - after the merged Aux patterns are installed, the MV flagging
//     partitions over RID slices again.
//
// Workers collect RID sets and group keys; the merge sorts them, so
// the resulting flags, Aux contents and Violations() output are
// byte-identical to a serial run regardless of scheduling (the
// determinism test pins this). Flag writes happen in a short serial
// phase at the end — reads scale, writes stay exclusive.
//
// workers <= 0 selects GOMAXPROCS.
func (d *Detector) ParallelDetect(workers int) (BatchStats, error) {
	start := time.Now()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fail := func(err error) (BatchStats, error) {
		return BatchStats{}, fmt.Errorf("detect: parallel: %w", err)
	}
	if _, err := d.db.Exec(d.stmts.resetFlags); err != nil {
		return fail(err)
	}
	if _, err := d.db.Exec("TRUNCATE TABLE " + d.auxTable); err != nil {
		return fail(err)
	}

	lo, hi, n, err := d.ridBounds()
	if err != nil {
		return fail(err)
	}
	if n == 0 {
		return BatchStats{Elapsed: time.Since(start)}, nil
	}
	slices := ridSlices(lo, hi, n, workers)

	// Phase 1 (concurrent reads): SV per RID slice, Qmv groups per CID
	// range.
	ranges := cidRanges(len(d.sigma), workers)
	svSets := make([][]int64, len(slices))
	groupSets := make([][][]any, len(ranges))
	var tasks []func() error
	for si, sl := range slices {
		si, sl := si, sl
		tasks = append(tasks, func() error {
			rids, err := d.queryRIDs(d.stmts.qsvRIDsSlice, sl[0], sl[1])
			svSets[si] = rids
			return err
		})
	}
	for ri, cr := range ranges {
		ri, cr := ri, cr
		tasks = append(tasks, func() error {
			rows, err := d.queryGroups(cr[0], cr[1])
			groupSets[ri] = rows
			return err
		})
	}
	if err := runTasks(workers, tasks); err != nil {
		return fail(err)
	}

	// Serial write phase: install the merged Aux patterns and SV flags.
	if err := d.insertAuxGroups(groupSets); err != nil {
		return fail(err)
	}
	if err := d.setFlag(ColSV, mergeRIDs(svSets)); err != nil {
		return fail(err)
	}

	// Phase 2 (concurrent reads): MV candidates per slice, then one
	// serial flag write.
	mvSets := make([][]int64, len(slices))
	tasks = tasks[:0]
	for si, sl := range slices {
		si, sl := si, sl
		tasks = append(tasks, func() error {
			rids, err := d.queryRIDs(d.stmts.mvRIDsSlice, sl[0], sl[1])
			mvSets[si] = rids
			return err
		})
	}
	if err := runTasks(workers, tasks); err != nil {
		return fail(err)
	}
	if err := d.setFlag(ColMV, mergeRIDs(mvSets)); err != nil {
		return fail(err)
	}

	sv, mv, total, err := d.Counts()
	if err != nil {
		return fail(err)
	}
	return BatchStats{SV: sv, MV: mv, Total: total, Elapsed: time.Since(start)}, nil
}

// runTasks drains tasks through a fixed pool of workers and returns
// the first error (the remaining tasks still run to completion, so
// result slots are never left half-written by a cancelled sibling).
func runTasks(workers int, tasks []func() error) error {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			if err := t(); err != nil {
				return err
			}
		}
		return nil
	}
	ch := make(chan func() error)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				if err := t(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// minSliceRows keeps partitioning worthwhile: below this many rows per
// prospective slice the whole relation goes to one task (each slice
// task scans the full table and filters to its RID range, so
// over-slicing small relations only multiplies scans).
const minSliceRows = 1024

// ridSlices cuts [lo, hi] into up to `workers` contiguous inclusive
// ranges covering every RID exactly once.
func ridSlices(lo, hi, n int64, workers int) [][2]int64 {
	slices := int64(workers)
	if max := n / minSliceRows; slices > max {
		slices = max
	}
	if slices <= 1 {
		return [][2]int64{{lo, hi}}
	}
	span := hi - lo + 1
	if slices > span {
		slices = span
	}
	per := (span + slices - 1) / slices
	var out [][2]int64
	for a := lo; a <= hi; a += per {
		b := a + per - 1
		if b > hi {
			b = hi
		}
		out = append(out, [2]int64{a, b})
	}
	return out
}

// ridBounds reports the data table's RID range and row count.
func (d *Detector) ridBounds() (lo, hi, n int64, err error) {
	q := fmt.Sprintf("SELECT MIN(%[1]s), MAX(%[1]s), COUNT(*) FROM %[2]s", ColRID, d.dataTable)
	var loN, hiN sql.NullInt64
	if err := d.db.QueryRow(q).Scan(&loN, &hiN, &n); err != nil {
		return 0, 0, 0, err
	}
	return loN.Int64, hiN.Int64, n, nil
}

// readTx opens a read-only transaction: the engine pins one MVCC
// epoch for it, so every query inside observes a single snapshot and
// holds no lock. Each parallel task runs in its own readTx — the task
// is internally consistent even if a writer commits mid-scan.
func (d *Detector) readTx() (*sql.Tx, error) {
	return d.db.BeginTx(context.Background(), &sql.TxOptions{ReadOnly: true})
}

// queryRIDs runs a two-parameter RID-slice query inside its own
// read-only snapshot and collects the ids.
func (d *Detector) queryRIDs(q string, lo, hi int64) ([]int64, error) {
	tx, err := d.readTx()
	if err != nil {
		return nil, err
	}
	defer tx.Rollback()
	rows, err := tx.Query(q, lo, hi)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []int64
	for rows.Next() {
		var rid int64
		if err := rows.Scan(&rid); err != nil {
			return nil, err
		}
		out = append(out, rid)
	}
	return out, rows.Err()
}

// cidRanges splits the CID space [1, n] into up to `workers`
// contiguous inclusive ranges.
func cidRanges(n, workers int) [][2]int64 {
	k := workers
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	per := (n + k - 1) / k
	var out [][2]int64
	for a := 1; a <= n; a += per {
		b := a + per - 1
		if b > n {
			b = n
		}
		out = append(out, [2]int64{int64(a), int64(b)})
	}
	return out
}

// queryGroups computes the violating Qmv group keys of a CID range
// inside its own read-only snapshot. Each returned row is
// insert-ready: the CID followed by the blanked pattern columns.
func (d *Detector) queryGroups(loCID, hiCID int64) ([][]any, error) {
	tx, err := d.readTx()
	if err != nil {
		return nil, err
	}
	defer tx.Rollback()
	rows, err := tx.Query(d.stmts.qmvGroupsCIDRng, loCID, hiCID)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	width := 1 + len(d.schema.Attrs)
	var cid int64
	cells := make([]string, width-1)
	ptrs := make([]any, width)
	ptrs[0] = &cid
	for i := range cells {
		ptrs[i+1] = &cells[i]
	}
	var out [][]any
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			return nil, err
		}
		row := make([]any, width)
		row[0] = cid
		for i, s := range cells {
			row[i+1] = s
		}
		out = append(out, row)
	}
	return out, rows.Err()
}

// insertAuxGroups installs the merged group keys into Aux. The sets
// cover disjoint ascending CID ranges; rows within a set sort by
// (CID, pattern columns) so the Aux contents are identical across
// runs whatever the task scheduling was.
func (d *Detector) insertAuxGroups(groupSets [][][]any) error {
	var all [][]any
	for _, rows := range groupSets {
		sort.Slice(rows, func(a, b int) bool {
			ca, cb := rows[a][0].(int64), rows[b][0].(int64)
			if ca != cb {
				return ca < cb
			}
			for i := 1; i < len(rows[a]); i++ {
				sa, sb := rows[a][i].(string), rows[b][i].(string)
				if sa != sb {
					return sa < sb
				}
			}
			return false
		})
		all = append(all, rows...)
	}
	if len(all) == 0 {
		return nil
	}
	width := 1 + len(d.schema.Attrs)
	for start := 0; start < len(all); start += insertBatch {
		end := start + insertBatch
		if end > len(all) {
			end = len(all)
		}
		chunk := all[start:end]
		args := make([]any, 0, len(chunk)*width)
		for _, row := range chunk {
			args = append(args, row...)
		}
		q := fmt.Sprintf("INSERT INTO %s VALUES %s", d.auxTable, placeholderRows(len(chunk), width))
		if _, err := d.db.Exec(q, args...); err != nil {
			return fmt.Errorf("install aux groups: %w", err)
		}
	}
	return nil
}

// mergeRIDs unions the per-task RID sets into one sorted,
// duplicate-free list (slices are disjoint, but DISTINCT within a
// slice does not hold across merges of future callers — dedupe anyway).
func mergeRIDs(sets [][]int64) []int64 {
	var out []int64
	for _, s := range sets {
		out = append(out, s...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	dedup := out[:0]
	var last int64
	for i, rid := range out {
		if i > 0 && rid == last {
			continue
		}
		dedup = append(dedup, rid)
		last = rid
	}
	return dedup
}

// setFlag sets a violation flag on the given RIDs with batched
// parameterized updates (at most two distinct statement texts, so the
// plan cache absorbs them).
func (d *Detector) setFlag(col string, rids []int64) error {
	for start := 0; start < len(rids); start += insertBatch {
		end := start + insertBatch
		if end > len(rids) {
			end = len(rids)
		}
		chunk := rids[start:end]
		args := make([]any, len(chunk))
		for i, rid := range chunk {
			args[i] = rid
		}
		q := fmt.Sprintf("UPDATE %s SET %s = 1 WHERE %s IN (%s)",
			d.dataTable, col, ColRID, placeholders(len(chunk)))
		if _, err := d.db.Exec(q, args...); err != nil {
			return fmt.Errorf("set %s flags: %w", col, err)
		}
	}
	return nil
}

// placeholders renders "?, ?, …, ?" (n of them).
func placeholders(n int) string {
	return strings.TrimSuffix(strings.Repeat("?, ", n), ", ")
}
