package detect

import (
	"database/sql"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ecfd/internal/relation"
	"ecfd/internal/sqldb"
)

// ParallelDetect computes the same violation flags as BatchDetect, but
// fans the read-only violation queries across a worker pool so the
// engine's concurrent read path (shared read lock, see internal/sqldb)
// can use every core:
//
//   - the Qsv scan partitions the data into contiguous RID slices, one
//     task per slice;
//   - the Qmv grouping fans over contiguous CID ranges of Σ — the CID
//     is part of the group key, so groups never span constraints and
//     the per-range results union losslessly; one worker gets the
//     whole range and does exactly the serial amount of work;
//   - after the merged Aux patterns are installed, the MV flagging
//     partitions over RID slices again.
//
// Workers collect RID sets and group keys; the merge sorts them, so
// the resulting flags, Aux contents and Violations() output are
// byte-identical to a serial run regardless of scheduling (the
// determinism test pins this). Flag writes happen in a short serial
// phase at the end — reads scale, writes stay exclusive.
//
// Each concurrent read phase runs against one pinned MVCC snapshot:
// with an engine bound (BindEngine) the phase takes a single epoch pin
// and every worker queries it directly; without one, each task is a
// single statement, which observes one snapshot by itself.
//
// workers <= 0 selects GOMAXPROCS.
func (d *Detector) ParallelDetect(workers int) (BatchStats, error) {
	start := time.Now()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fail := func(err error) (BatchStats, error) {
		return BatchStats{}, fmt.Errorf("detect: parallel: %w", err)
	}
	if _, err := d.db.Exec(d.stmts.resetFlags); err != nil {
		return fail(err)
	}
	if _, err := d.db.Exec("TRUNCATE TABLE " + d.auxTable); err != nil {
		return fail(err)
	}

	// One ordered pass over the RID index sizes the partitioning
	// exactly: slices cut at real RIDs, so sparse RID spaces (heavily
	// deleted relations) never yield empty slice tasks.
	rids, err := d.RIDs()
	if err != nil {
		return fail(err)
	}
	if len(rids) == 0 {
		return BatchStats{Elapsed: time.Since(start)}, nil
	}
	slices := ridSlices(rids, workers)

	// Phase 1 (concurrent reads): SV per RID slice, Qmv groups per CID
	// range — all against one pinned snapshot.
	ranges := cidRanges(len(d.sigma), workers)
	svSets := make([][]int64, len(slices))
	groupSets := make([][][]any, len(ranges))
	rd := d.phaseReader()
	var tasks []func() error
	for si, sl := range slices {
		si, sl := si, sl
		tasks = append(tasks, func() error {
			out, err := rd.queryRIDs(d.stmts.qsvRIDsSlice, sl[0], sl[1])
			svSets[si] = out
			return err
		})
	}
	for ri, cr := range ranges {
		ri, cr := ri, cr
		tasks = append(tasks, func() error {
			rows, err := rd.queryGroups(d.stmts.qmvGroupsCIDRng, cr[0], cr[1])
			groupSets[ri] = rows
			return err
		})
	}
	err = runTasks(workers, tasks)
	rd.close()
	if err != nil {
		return fail(err)
	}

	// Serial write phase: install the merged Aux patterns and SV flags.
	if err := d.insertAuxGroups(groupSets); err != nil {
		return fail(err)
	}
	if err := d.setFlag(ColSV, mergeRIDs(svSets)); err != nil {
		return fail(err)
	}

	// Phase 2 (concurrent reads): MV candidates per slice against a
	// fresh pin (it must see the Aux install above), then one serial
	// flag write.
	mvSets := make([][]int64, len(slices))
	rd = d.phaseReader()
	tasks = tasks[:0]
	for si, sl := range slices {
		si, sl := si, sl
		tasks = append(tasks, func() error {
			out, err := rd.queryRIDs(d.stmts.mvRIDsSlice, sl[0], sl[1])
			mvSets[si] = out
			return err
		})
	}
	err = runTasks(workers, tasks)
	rd.close()
	if err != nil {
		return fail(err)
	}
	if err := d.setFlag(ColMV, mergeRIDs(mvSets)); err != nil {
		return fail(err)
	}

	sv, mv, total, err := d.Counts()
	if err != nil {
		return fail(err)
	}
	return BatchStats{SV: sv, MV: mv, Total: total, Elapsed: time.Since(start)}, nil
}

// runTasks drains tasks through a fixed pool of workers and returns
// the first error. A task that has started runs to completion — its
// result slot is never left half-written — but once any task fails the
// pool stops picking up queued work and the feeder stops queuing, so a
// failed phase returns promptly instead of burning the remaining
// slices on work whose results will be discarded.
func runTasks(workers int, tasks []func() error) error {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			if err := t(); err != nil {
				return err
			}
		}
		return nil
	}
	ch := make(chan func() error)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var failed atomic.Bool
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				if failed.Load() {
					continue // drain-and-skip after a failure
				}
				if err := t(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	for _, t := range tasks {
		if failed.Load() {
			break
		}
		ch <- t
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// phaseReader is the read surface of one concurrent phase. With an
// engine bound it pins one MVCC epoch at construction and every task
// queries that snapshot through the engine's prepared-plan cache — the
// per-task read-only-transaction pin (and its connection churn) that
// BENCH_pr8 showed creeping to ~20% at 8 workers is gone. Without an
// engine it falls back to plain handle queries: each task is a single
// statement, which pins its own snapshot for exactly its duration.
type phaseReader struct {
	d    *Detector
	snap *sqldb.Snap // non-nil iff an engine is bound
}

func (d *Detector) phaseReader() *phaseReader {
	r := &phaseReader{d: d}
	if d.eng != nil {
		r.snap = d.eng.PinSnapshot()
	}
	return r
}

func (r *phaseReader) close() {
	if r.snap != nil {
		r.snap.Close()
		r.snap = nil
	}
}

// queryRIDs runs a two-parameter RID-collecting query and returns the
// ids.
func (r *phaseReader) queryRIDs(q string, lo, hi int64) ([]int64, error) {
	if r.snap != nil {
		p, err := r.d.eng.Prepare(q)
		if err != nil {
			return nil, err
		}
		res, err := p.QueryAt(r.snap, relation.Int(lo), relation.Int(hi))
		if err != nil {
			return nil, err
		}
		out := make([]int64, len(res.Rows))
		for i, row := range res.Rows {
			out[i] = row[0].I
		}
		return out, nil
	}
	rows, err := r.d.db.Query(q, lo, hi)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []int64
	for rows.Next() {
		var rid int64
		if err := rows.Scan(&rid); err != nil {
			return nil, err
		}
		out = append(out, rid)
	}
	return out, rows.Err()
}

// queryGroups computes the violating Qmv group keys of a CID range.
// Each returned row is insert-ready: the CID followed by the blanked
// pattern columns.
func (r *phaseReader) queryGroups(q string, loCID, hiCID int64) ([][]any, error) {
	width := 1 + len(r.d.schema.Attrs)
	if r.snap != nil {
		p, err := r.d.eng.Prepare(q)
		if err != nil {
			return nil, err
		}
		res, err := p.QueryAt(r.snap, relation.Int(loCID), relation.Int(hiCID))
		if err != nil {
			return nil, err
		}
		out := make([][]any, len(res.Rows))
		for i, t := range res.Rows {
			row := make([]any, width)
			row[0] = t[0].I
			for j := 1; j < width; j++ {
				row[j] = t[j].S // pattern columns are always TEXT
			}
			out[i] = row
		}
		return out, nil
	}
	rows, err := r.d.db.Query(q, loCID, hiCID)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var cid int64
	cells := make([]string, width-1)
	ptrs := make([]any, width)
	ptrs[0] = &cid
	for i := range cells {
		ptrs[i+1] = &cells[i]
	}
	var out [][]any
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			return nil, err
		}
		row := make([]any, width)
		row[0] = cid
		for i, s := range cells {
			row[i+1] = s
		}
		out = append(out, row)
	}
	return out, rows.Err()
}

// minSliceRows keeps partitioning worthwhile: below this many rows per
// prospective slice the whole relation goes to one task (each slice
// task scans the full table and filters to its RID range, so
// over-slicing small relations only multiplies scans).
const minSliceRows = 1024

// ridSlices cuts the ordered RID list into up to `workers` contiguous
// inclusive ranges. Slice bounds are actual RIDs cut at equal row
// counts, so no slice is ever empty — a sparse RID space (after heavy
// deletion) costs extra rows per slice, never extra tasks — and the
// slice count is capped at the number of non-empty partitions.
func ridSlices(rids []int64, workers int) [][2]int64 {
	n := len(rids)
	if n == 0 {
		return nil
	}
	k := workers
	if max := n / minSliceRows; k > max {
		k = max
	}
	if k <= 1 {
		return [][2]int64{{rids[0], rids[n-1]}}
	}
	out := make([][2]int64, 0, k)
	for i := 0; i < k; i++ {
		a, b := i*n/k, (i+1)*n/k // b > a because k <= n
		out = append(out, [2]int64{rids[a], rids[b-1]})
	}
	return out
}

// ridBounds reports the data table's RID range and row count.
func (d *Detector) ridBounds() (lo, hi, n int64, err error) {
	q := fmt.Sprintf("SELECT MIN(%[1]s), MAX(%[1]s), COUNT(*) FROM %[2]s", ColRID, d.dataTable)
	var loN, hiN sql.NullInt64
	if err := d.db.QueryRow(q).Scan(&loN, &hiN, &n); err != nil {
		return 0, 0, 0, err
	}
	return loN.Int64, hiN.Int64, n, nil
}

// cidRanges splits the CID space [1, n] into up to `workers`
// contiguous inclusive ranges.
func cidRanges(n, workers int) [][2]int64 {
	k := workers
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	per := (n + k - 1) / k
	var out [][2]int64
	for a := 1; a <= n; a += per {
		b := a + per - 1
		if b > n {
			b = n
		}
		out = append(out, [2]int64{int64(a), int64(b)})
	}
	return out
}

// insertAuxGroups installs the merged group keys into Aux. The sets
// cover disjoint ascending CID ranges; rows within a set sort by
// (CID, pattern columns) so the Aux contents are identical across
// runs whatever the task scheduling was.
func (d *Detector) insertAuxGroups(groupSets [][][]any) error {
	var all [][]any
	for _, rows := range groupSets {
		sort.Slice(rows, func(a, b int) bool {
			ca, cb := rows[a][0].(int64), rows[b][0].(int64)
			if ca != cb {
				return ca < cb
			}
			for i := 1; i < len(rows[a]); i++ {
				sa, sb := rows[a][i].(string), rows[b][i].(string)
				if sa != sb {
					return sa < sb
				}
			}
			return false
		})
		all = append(all, rows...)
	}
	if len(all) == 0 {
		return nil
	}
	width := 1 + len(d.schema.Attrs)
	for start := 0; start < len(all); start += insertBatch {
		end := start + insertBatch
		if end > len(all) {
			end = len(all)
		}
		chunk := all[start:end]
		args := make([]any, 0, len(chunk)*width)
		for _, row := range chunk {
			args = append(args, row...)
		}
		q := fmt.Sprintf("INSERT INTO %s VALUES %s", d.auxTable, placeholderRows(len(chunk), width))
		if _, err := d.db.Exec(q, args...); err != nil {
			return fmt.Errorf("install aux groups: %w", err)
		}
	}
	return nil
}

// mergeRIDs unions the per-task RID sets into one sorted,
// duplicate-free list (slices are disjoint, but DISTINCT within a
// slice does not hold across merges of future callers — dedupe anyway).
func mergeRIDs(sets [][]int64) []int64 {
	var out []int64
	for _, s := range sets {
		out = append(out, s...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	dedup := out[:0]
	var last int64
	for i, rid := range out {
		if i > 0 && rid == last {
			continue
		}
		dedup = append(dedup, rid)
		last = rid
	}
	return dedup
}

// setFlag sets a violation flag on the given RIDs with batched
// parameterized updates (at most two distinct statement texts, so the
// plan cache absorbs them).
func (d *Detector) setFlag(col string, rids []int64) error {
	for start := 0; start < len(rids); start += insertBatch {
		end := start + insertBatch
		if end > len(rids) {
			end = len(rids)
		}
		chunk := rids[start:end]
		args := make([]any, len(chunk))
		for i, rid := range chunk {
			args[i] = rid
		}
		q := fmt.Sprintf("UPDATE %s SET %s = 1 WHERE %s IN (%s)",
			d.dataTable, col, ColRID, placeholders(len(chunk)))
		if _, err := d.db.Exec(q, args...); err != nil {
			return fmt.Errorf("set %s flags: %w", col, err)
		}
	}
	return nil
}

// placeholders renders "?, ?, …, ?" (n of them).
func placeholders(n int) string {
	return strings.TrimSuffix(strings.Repeat("?, ", n), ", ")
}
