package detect

import (
	"bytes"
	"database/sql"
	"fmt"
	"strings"
	"testing"

	"ecfd/internal/gen"
	"ecfd/internal/sqldriver"
)

// newBenchDetector builds a detector over the generator's schema and
// constraint set with a loaded dataset — the Fig. 5 workload shape.
func newBenchDetector(t testing.TB, rows int, seed int64) (*Detector, func()) {
	t.Helper()
	dsn := fmt.Sprintf("detect_par_%d_%d_%d", rows, seed, dsnSeq.Add(1))
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		db.Close()
		sqldriver.Unregister(dsn)
	}
	d, err := New(db, gen.Schema(), gen.Constraints())
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	if err := d.Install(); err != nil {
		cleanup()
		t.Fatal(err)
	}
	if _, err := d.LoadData(gen.Dataset(gen.Config{Rows: rows, Noise: 5, Seed: seed})); err != nil {
		cleanup()
		t.Fatal(err)
	}
	d.BindEngine(sqldriver.Engine(dsn))
	return d, cleanup
}

// violationCSV renders the full violation set for byte-level
// comparison across runs.
func violationCSV(t *testing.T, d *Detector) []byte {
	t.Helper()
	return violationCSVVia(t, d, d.db)
}

// violationCSVVia renders the violation set as seen through q —
// typically a read-only transaction pinning one snapshot.
func violationCSVVia(t *testing.T, d *Detector, q Queryer) []byte {
	t.Helper()
	vio, err := d.ViolationsVia(q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := vio.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelDetectMatchesBatch checks that ParallelDetect computes
// exactly the flags of the serial BatchDetect, per RID, at several
// worker counts — including worker counts that exceed the task count.
func TestParallelDetectMatchesBatch(t *testing.T) {
	const rows = 3_000
	ds, cleanupS := newBenchDetector(t, rows, 7)
	defer cleanupS()
	bst, err := ds.BatchDetect()
	if err != nil {
		t.Fatal(err)
	}
	if bst.Total == 0 {
		t.Fatal("workload has no violations; test is vacuous")
	}
	want, err := ds.FlagsByRID()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 8, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dp, cleanupP := newBenchDetector(t, rows, 7)
			defer cleanupP()
			pst, err := dp.ParallelDetect(workers)
			if err != nil {
				t.Fatal(err)
			}
			if pst.SV != bst.SV || pst.MV != bst.MV || pst.Total != bst.Total {
				t.Fatalf("counts: parallel (SV %d, MV %d, total %d) != batch (SV %d, MV %d, total %d)",
					pst.SV, pst.MV, pst.Total, bst.SV, bst.MV, bst.Total)
			}
			got, err := dp.FlagsByRID()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("flag map size %d, want %d", len(got), len(want))
			}
			for rid, w := range want {
				if got[rid] != w {
					t.Fatalf("RID %d: flags %v, want %v", rid, got[rid], w)
				}
			}
		})
	}
}

// TestParallelDetectDeterministic requires byte-identical violation
// output across repeated parallel runs (scheduling must not leak into
// the result) and against the serial run.
func TestParallelDetectDeterministic(t *testing.T) {
	const rows = 2_000
	ds, cleanupS := newBenchDetector(t, rows, 3)
	defer cleanupS()
	if _, err := ds.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	serial := violationCSV(t, ds)

	var first []byte
	for run := 0; run < 3; run++ {
		dp, cleanupP := newBenchDetector(t, rows, 3)
		pst, err := dp.ParallelDetect(4)
		if err != nil {
			cleanupP()
			t.Fatal(err)
		}
		if pst.Total == 0 {
			cleanupP()
			t.Fatal("no violations; test is vacuous")
		}
		got := violationCSV(t, dp)
		cleanupP()
		if run == 0 {
			first = got
		} else if !bytes.Equal(got, first) {
			t.Fatalf("run %d produced different violation bytes", run)
		}
	}
	if !bytes.Equal(first, serial) {
		t.Fatal("parallel violation set differs from serial BatchDetect")
	}
}

// TestParallelDetectThenIncremental checks that incremental
// maintenance composes with a parallel base detection: ParallelDetect
// must leave Aux and the flags in exactly the state IncDetect expects.
func TestParallelDetectThenIncremental(t *testing.T) {
	const rows = 2_000
	mk := func(parallel bool) map[int64][2]bool {
		d, cleanup := newBenchDetector(t, rows, 11)
		defer cleanup()
		var err error
		if parallel {
			_, err = d.ParallelDetect(4)
		} else {
			_, err = d.BatchDetect()
		}
		if err != nil {
			t.Fatal(err)
		}
		batch := gen.Updates(gen.Config{Rows: rows, Noise: 5, Seed: 11}, 200, 5)
		if _, _, err := d.InsertTuples(batch); err != nil {
			t.Fatal(err)
		}
		flags, err := d.FlagsByRID()
		if err != nil {
			t.Fatal(err)
		}
		return flags
	}
	want := mk(false)
	got := mk(true)
	if len(got) != len(want) {
		t.Fatalf("flag map size %d, want %d", len(got), len(want))
	}
	for rid, w := range want {
		if got[rid] != w {
			t.Fatalf("RID %d: flags %v, want %v", rid, got[rid], w)
		}
	}
}

// TestParallelDetectEmpty covers the empty-relation edge: no rows, no
// violations, no partitioning arithmetic surprises.
func TestParallelDetectEmpty(t *testing.T) {
	dsn := fmt.Sprintf("detect_par_empty_%d", dsnSeq.Add(1))
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defer sqldriver.Unregister(dsn)
	d, err := New(db, gen.Schema(), gen.Constraints())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Install(); err != nil {
		t.Fatal(err)
	}
	st, err := d.ParallelDetect(4)
	if err != nil {
		t.Fatal(err)
	}
	if st.SV != 0 || st.MV != 0 || st.Total != 0 {
		t.Fatalf("empty relation produced violations: %+v", st)
	}
}

// TestRIDSlices pins the partitioning arithmetic: full disjoint
// coverage of the actual RIDs, no empty slices even over sparse or
// tiny RID spaces, a single slice for small relations, and balanced
// row counts (±1) across slices.
func TestRIDSlices(t *testing.T) {
	dense := func(lo, hi int64) []int64 {
		out := make([]int64, 0, hi-lo+1)
		for r := lo; r <= hi; r++ {
			out = append(out, r)
		}
		return out
	}
	sparse := func(n int64) []int64 { // every 1000th RID: a heavily deleted relation
		out := make([]int64, 0, n)
		for i := int64(0); i < n; i++ {
			out = append(out, 1+i*1000)
		}
		return out
	}
	cases := []struct {
		name    string
		rids    []int64
		workers int
	}{
		{"dense-8", dense(1, 100_000), 8},
		{"dense-3", dense(1, 100_000), 3},
		{"single", []int64{5}, 8},
		{"small", dense(1, 500), 4},     // below minSliceRows: one slice
		{"medium", dense(1, 10_000), 4}, // above: up to 4 slices
		{"sparse", sparse(10_000), 8},   // sparse RID space: still 8 non-empty slices
		{"empty", nil, 4},
	}
	for _, c := range cases {
		slices := ridSlices(c.rids, c.workers)
		if len(c.rids) == 0 {
			if slices != nil {
				t.Errorf("%s: empty RID list produced slices %v", c.name, slices)
			}
			continue
		}
		if len(slices) == 0 {
			t.Fatalf("%s: no slices", c.name)
		}
		if len(slices) > c.workers {
			t.Errorf("%s: %d slices exceed %d workers", c.name, len(slices), c.workers)
		}
		if len(c.rids) < minSliceRows*2 && len(slices) != 1 {
			t.Errorf("%s: small relation split into %d slices", c.name, len(slices))
		}
		// Walk the RID list against the slices: every RID falls in
		// exactly one slice, slices are adjacent and ascending, no slice
		// is empty, and the per-slice row counts balance to within one
		// n/k quantum.
		idx, minRows, maxRows := 0, len(c.rids), 0
		for si, s := range slices {
			if s[1] < s[0] {
				t.Fatalf("%s: inverted slice %v", c.name, s)
			}
			if si > 0 && s[0] <= slices[si-1][1] {
				t.Fatalf("%s: slice %v overlaps predecessor %v", c.name, s, slices[si-1])
			}
			n := 0
			for idx < len(c.rids) && c.rids[idx] <= s[1] {
				if c.rids[idx] < s[0] {
					t.Fatalf("%s: RID %d not covered by any slice", c.name, c.rids[idx])
				}
				idx++
				n++
			}
			if n == 0 {
				t.Fatalf("%s: empty slice %v", c.name, s)
			}
			if n < minRows {
				minRows = n
			}
			if n > maxRows {
				maxRows = n
			}
		}
		if idx != len(c.rids) {
			t.Fatalf("%s: %d RIDs uncovered after the last slice", c.name, len(c.rids)-idx)
		}
		if maxRows-minRows > 1 {
			t.Errorf("%s: unbalanced slices (min %d rows, max %d)", c.name, minRows, maxRows)
		}
	}
}

// TestParallelSliceQueriesRangePruned pins the access paths of the
// worker statements: the RID-slice scans must run as range-pruned
// scans over the data table's ordered RID index (not full scans), and
// the Violations read must serve its ORDER BY from the index with no
// sort. This is the plumbing that makes each worker's cost
// proportional to its slice instead of the whole relation.
func TestParallelSliceQueriesRangePruned(t *testing.T) {
	dsn := fmt.Sprintf("detect_explain_%d", dsnSeq.Add(1))
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defer sqldriver.Unregister(dsn)

	d, err := New(db, gen.Schema(), gen.Constraints())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Install(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadData(gen.Dataset(gen.Config{Rows: 2000, Noise: 5, Seed: 11})); err != nil {
		t.Fatal(err)
	}
	if _, err := d.BatchDetect(); err != nil {
		t.Fatal(err)
	}

	eng := sqldriver.Engine(dsn)
	qsvSlice, _, mvSlice := d.ParallelSQL()
	for name, q := range map[string]string{"qsvRIDsSlice": qsvSlice, "mvRIDsSlice": mvSlice} {
		plan, err := eng.Explain(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(plan, "range scan t via idx_"+d.dataTable+"_rid") {
			t.Fatalf("%s is not range-pruned over the RID index:\n%s", name, plan)
		}
		// The inclusive slice bounds are exactly implied by the range
		// prune, so their filters elide — no per-row RID re-checks at
		// all, vectorized or otherwise.
		if !strings.Contains(plan, "2 filter(s) elided: implied by range") {
			t.Fatalf("%s slice bounds are not elided into the range prune:\n%s", name, plan)
		}
	}
	// The Qsv slice scan additionally runs its OR-alternative pattern
	// predicates as OR-group kernels over the data's column vectors.
	if plan, err := eng.Explain(qsvSlice); err != nil || !strings.Contains(plan, "or-group(") {
		t.Fatalf("qsvRIDsSlice pattern predicates are not OR-group kernels (%v):\n%s", err, plan)
	}

	vioQ := fmt.Sprintf("SELECT %s FROM %s WHERE %s = 1 OR %s = 1 ORDER BY %s",
		ColRID, d.dataTable, ColSV, ColMV, ColRID)
	plan, err := eng.Explain(vioQ)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "ordered scan") || !strings.Contains(plan, "no sort") {
		t.Fatalf("Violations read does not use the ordered RID index:\n%s", plan)
	}
}
