package detect

import (
	"database/sql"
	"fmt"
)

// execer is the statement surface shared by *sql.DB and *sql.Tx, so
// the bulk-load and staging helpers can run either autocommit (every
// statement its own WAL commit unit) or inside one transaction (the
// whole update one unit — what crash recovery needs to see an
// ApplyUpdates as all-or-nothing).
type execer interface {
	Exec(query string, args ...any) (sql.Result, error)
	Prepare(query string) (*sql.Stmt, error)
}

// SetAtomicUpdates selects whether ApplyUpdates and LoadData wrap
// their statements in a single database transaction. Against a
// durable engine (sqldriver DSN with wal=) that makes each update one
// WAL commit unit: a crash mid-update recovers to either the state
// before the update or after it, never to a half-staged middle. The
// default is off, matching the paper's autocommit detection scripts.
func (d *Detector) SetAtomicUpdates(on bool) { d.atomic = on }

// Resume rebinds a detector to tables installed by a previous process
// — the restart path of a durable session: open the same DSN, rebuild
// the Detector with the same schema and Σ, and Resume instead of
// Install. It verifies the persisted encoding matches Σ and restores
// the RID allocator from the recovered data; flags, Aux and the RID
// index are already in the recovered tables, so detection continues
// where the crashed process left off.
func (d *Detector) Resume() error {
	var n int64
	if err := d.db.QueryRow("SELECT COUNT(*) FROM " + d.encTable).Scan(&n); err != nil {
		return fmt.Errorf("detect: resume: reading %s (was Install ever run on this database?): %w", d.encTable, err)
	}
	if n != int64(len(d.sigma)) {
		return fmt.Errorf("detect: resume: %s encodes %d constraints but Σ splits into %d — the persisted session was built from a different constraint set",
			d.encTable, n, len(d.sigma))
	}
	var maxRID int64
	for _, tbl := range []string{d.dataTable, d.insTable} {
		var m sql.NullInt64
		q := fmt.Sprintf("SELECT MAX(%s) FROM %s", ColRID, tbl)
		if err := d.db.QueryRow(q).Scan(&m); err != nil {
			return fmt.Errorf("detect: resume: %s: %w", q, err)
		}
		if m.Valid && m.Int64 > maxRID {
			maxRID = m.Int64
		}
	}
	d.nextRID = maxRID
	return nil
}

// runAtomic executes fn against a transaction when atomic updates are
// on, restoring the RID allocator if anything — including the commit
// itself — fails; otherwise fn runs directly against the handle.
func (d *Detector) runAtomic(fn func(ex execer) error) error {
	if !d.atomic {
		return fn(d.db)
	}
	savedRID := d.nextRID
	tx, err := d.db.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		d.nextRID = savedRID
		return err
	}
	if err := tx.Commit(); err != nil {
		d.nextRID = savedRID
		return err
	}
	return nil
}
