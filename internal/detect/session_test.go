package detect

import (
	"database/sql"
	"fmt"
	"testing"

	"ecfd/internal/gen"
	"ecfd/internal/sqldb"
	"ecfd/internal/sqldriver"
)

// openDurableDetector builds a detector over a MemFS-backed durable
// engine registered under a fresh DSN, returning everything a restart
// needs to reopen the same "disk".
func openDurableDetector(t *testing.T, fs *sqldb.MemFS) (*Detector, *sql.DB, string) {
	t.Helper()
	dsn := fmt.Sprintf("detect_session_%d", dsnSeq.Add(1))
	eng, err := sqldb.Open(sqldb.WALOptions{Dir: "/wal", FS: fs, Fsync: sqldb.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	sqldriver.RegisterDB(dsn, eng)
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(db, gen.Schema(), gen.Constraints())
	if err != nil {
		t.Fatal(err)
	}
	return d, db, dsn
}

// TestResumeContinuesSession pins the restart contract: a second
// process reopens the WAL, Resumes instead of Installing, continues
// the RID sequence where the first process stopped, and sees the same
// violation flags without any re-detection.
func TestResumeContinuesSession(t *testing.T) {
	fs := sqldb.NewMemFS(41)
	d1, db1, dsn1 := openDurableDetector(t, fs)
	if err := d1.Install(); err != nil {
		t.Fatal(err)
	}
	inst := gen.Dataset(gen.Config{Rows: 60, Noise: 10, Seed: 7})
	if _, err := d1.LoadData(inst); err != nil {
		t.Fatal(err)
	}
	if _, err := d1.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	wantVio := violationCSV(t, d1)
	wantRID := d1.nextRID
	db1.Close()
	sqldriver.Unregister(dsn1)

	// "Restart": same MemFS, fresh engine, Resume.
	d2, db2, dsn2 := openDurableDetector(t, fs)
	defer db2.Close()
	defer sqldriver.Unregister(dsn2)
	if err := d2.Resume(); err != nil {
		t.Fatal(err)
	}
	if d2.nextRID != wantRID {
		t.Fatalf("resumed RID allocator = %d, want %d", d2.nextRID, wantRID)
	}
	if got := violationCSV(t, d2); string(got) != string(wantVio) {
		t.Fatalf("resumed violations differ:\nwant:\n%s\ngot:\n%s", wantVio, got)
	}

	// The resumed session keeps detecting: an incremental update must
	// assign the next RIDs in sequence.
	batch := gen.Dataset(gen.Config{Rows: 3, Noise: 50, Seed: 8})
	rids, _, err := d2.InsertTuples(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 3 || rids[0] != wantRID+1 {
		t.Fatalf("resumed insert assigned RIDs %v, want to continue from %d", rids, wantRID+1)
	}
}

// TestResumeErrors pins the two refusal paths: resuming a database
// Install never ran on, and resuming with a different constraint set
// than the persisted encoding.
func TestResumeErrors(t *testing.T) {
	fs := sqldb.NewMemFS(42)
	d, db, dsn := openDurableDetector(t, fs)
	defer db.Close()
	defer sqldriver.Unregister(dsn)
	if err := d.Resume(); err == nil {
		t.Fatal("Resume on an empty database must fail")
	}
	if err := d.Install(); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(); err != nil {
		t.Fatalf("Resume after Install: %v", err)
	}

	// Same tables, smaller Σ: the enc row count cannot match.
	dOther, err := New(db, gen.Schema(), gen.Constraints()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if err := dOther.Resume(); err == nil {
		t.Fatal("Resume with a mismatched constraint set must fail")
	}
}
