package detect

import (
	"database/sql"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ecfd/internal/core"
	"ecfd/internal/relation"
	"ecfd/internal/sqldriver"
)

// ShardedDetector partitions the data table by RID hash-range across K
// independent in-memory stores and runs the fixed detection statement
// set on every shard in parallel — shard-per-core scaling where
// ParallelDetect's workers still contend on one store's epoch pointer,
// column caches and indexes.
//
// Layout:
//
//   - each shard is a full private sqldb engine (own epochs, indexes,
//     column caches, plan cache) holding only its RID partition of the
//     data, plus private replicas of the Σ encoding and of the small
//     derived tables (Aux, keys, staging) that the per-shard statements
//     probe;
//   - the coordinator store (the handle NewSharded was given) keeps the
//     authoritative copies of Σ, Aux and the full data table — it is the
//     write-through durability anchor, the RID allocator, and the
//     restart source (Resume);
//   - rows route by the order-preserving RID key of shardkey.go, so
//     RID-range reads (ViolationsInRange) prune to the shards owning the
//     intersected blocks.
//
// Execution is scatter-gather. Per-tuple work (Qsv, flag maintenance)
// runs entirely shard-local: a tuple violates by itself independently
// of where other tuples live. The Qmv grouping is the one operator
// whose groups span shards, and it distributes by partial aggregation:
// the macro of Fig. 4 is a DISTINCT projection, so each shard exports
// its DISTINCT macro rows, and after a global dedupe the surviving rows
// are exactly the global DISTINCT macro — the coordinator finishes the
// GROUP BY / HAVING COUNT(*) > 1 in Go and broadcasts the violating
// group keys back into every shard's Aux replica, where the MV flagging
// proceeds shard-local again.
//
// Every gather sorts its merged rows, so flags, Aux contents and
// Violations() are byte-identical to a serial BatchDetect regardless of
// shard count or scheduling (the differential test pins this for
// K ∈ {1, 2, 4, 8}).
type ShardedDetector struct {
	coord   *Detector
	shards  []*shardStore
	workers int
}

// shardStore is one partition: a private engine registered under a
// generated DSN, driven by a Detector compiled against it (same schema,
// same Σ, same statement texts — different store).
type shardStore struct {
	dsn string
	db  *sql.DB
	d   *Detector
}

// ShardOptions configures NewSharded.
type ShardOptions struct {
	// Shards is the partition count K. <= 0 selects GOMAXPROCS
	// (capped at 64).
	Shards int
	// Workers sizes the scatter pool. <= 0 selects
	// max(Shards, GOMAXPROCS).
	Workers int
}

var shardSeq atomic.Int64

// NewSharded prepares a sharded detector: a coordinator Detector over
// db plus opts.Shards private shard stores, each with the detection
// statements compiled against its own engine. Call Install, LoadData,
// then BatchDetect, as with a plain Detector.
func NewSharded(db *sql.DB, schema *relation.Schema, sigma []*core.ECFD, opts ShardOptions) (*ShardedDetector, error) {
	coord, err := New(db, schema, sigma)
	if err != nil {
		return nil, err
	}
	k := opts.Shards
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
		if k > 64 {
			k = 64
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers < k {
			workers = k
		}
	}
	s := &ShardedDetector{coord: coord, workers: workers}
	seq := shardSeq.Add(1)
	for i := 0; i < k; i++ {
		dsn := fmt.Sprintf("ecfd_shard_%d_%d", seq, i)
		sdb, err := sql.Open(sqldriver.DriverName, dsn)
		if err == nil {
			var sd *Detector
			if sd, err = New(sdb, schema, sigma); err == nil {
				sd.BindEngine(sqldriver.Engine(dsn))
				s.shards = append(s.shards, &shardStore{dsn: dsn, db: sdb, d: sd})
				continue
			}
			sdb.Close()
		}
		s.Close()
		return nil, fmt.Errorf("detect: shard %d: %w", i, err)
	}
	return s, nil
}

// Shards returns the partition count K.
func (s *ShardedDetector) Shards() int { return len(s.shards) }

// Coordinator exposes the coordinator-store detector (Σ encoding,
// authoritative Aux, full data copy).
func (s *ShardedDetector) Coordinator() *Detector { return s.coord }

// Close releases the shard engines. The coordinator handle stays open —
// it belongs to the caller.
func (s *ShardedDetector) Close() {
	for _, sh := range s.shards {
		sh.db.Close()
		sqldriver.Unregister(sh.dsn)
	}
	s.shards = nil
}

// eachShard runs fn on every shard through the worker pool.
func (s *ShardedDetector) eachShard(fn func(i int, sh *shardStore) error) error {
	tasks := make([]func() error, len(s.shards))
	for i, sh := range s.shards {
		i, sh := i, sh
		tasks[i] = func() error { return fn(i, sh) }
	}
	return runTasks(s.workers, tasks)
}

// Install creates the detector tables on the coordinator and every
// shard (shard DDL runs in parallel — each engine is private).
func (s *ShardedDetector) Install() error {
	if err := s.coord.Install(); err != nil {
		return err
	}
	return s.eachShard(func(_ int, sh *shardStore) error {
		return sh.d.Install()
	})
}

// LoadData write-throughs the instance into the coordinator store
// (which assigns the RIDs) and scatters the rows to their owning
// shards, fanning the batched inserts shard-parallel.
func (s *ShardedDetector) LoadData(inst *relation.Relation) ([]int64, error) {
	rids, err := s.coord.LoadData(inst)
	if err != nil {
		return nil, err
	}
	if err := s.scatterRows(s.coord.dataTable, inst.Rows, rids); err != nil {
		return nil, err
	}
	return rids, nil
}

// scatterRows routes (row, rid) pairs per shard and inserts each
// shard's slice in parallel. table names the destination by its
// coordinator-side name (shard tables share names — same schema).
func (s *ShardedDetector) scatterRows(table string, rows []relation.Tuple, rids []int64) error {
	k := len(s.shards)
	perRows := make([][]relation.Tuple, k)
	perRids := make([][]int64, k)
	for i, rid := range rids {
		sh := shardOf(rid, k)
		perRows[sh] = append(perRows[sh], rows[i])
		perRids[sh] = append(perRids[sh], rid)
	}
	return s.eachShard(func(i int, sh *shardStore) error {
		if len(perRids[i]) == 0 {
			return nil
		}
		return sh.d.insertAssigned(table, perRows[i], perRids[i])
	})
}

// insertAssigned bulk-inserts rows carrying caller-assigned RIDs (and
// clear flags) — the shard-side half of a routed insert, where the
// coordinator already allocated the ids.
func (d *Detector) insertAssigned(table string, rows []relation.Tuple, rids []int64) error {
	width := d.schema.Width() + 3 // RID + R + SV + MV
	for start := 0; start < len(rows); start += insertBatch {
		end := start + insertBatch
		if end > len(rows) {
			end = len(rows)
		}
		chunk := rows[start:end]
		args := make([]any, 0, len(chunk)*width)
		for j, row := range chunk {
			args = append(args, rids[start+j])
			for _, v := range row {
				args = append(args, valueArg(v))
			}
			args = append(args, 0, 0)
		}
		q := fmt.Sprintf("INSERT INTO %s VALUES %s", table, placeholderRows(len(chunk), width))
		if _, err := d.db.Exec(q, args...); err != nil {
			return fmt.Errorf("detect: shard insert: %w", err)
		}
	}
	return nil
}

// --- pattern-row gather/merge plumbing ---

// patRow is one gathered row of an Aux-shaped or macro-shaped result:
// the CID plus its text columns (W blanked pattern columns for keys and
// Aux rows, 2W pattern+RHS columns for macro rows).
type patRow struct {
	cid  int64
	cols []string
}

// key renders a collision-free identity for set membership
// (length-prefixed so no column values can alias across boundaries).
func (p patRow) key() string {
	var b strings.Builder
	b.WriteString(strconv.FormatInt(p.cid, 10))
	for _, c := range p.cols {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(c)))
		b.WriteByte(':')
		b.WriteString(c)
	}
	return b.String()
}

func patLess(a, b patRow) bool {
	if a.cid != b.cid {
		return a.cid < b.cid
	}
	for i := range a.cols {
		if a.cols[i] != b.cols[i] {
			return a.cols[i] < b.cols[i]
		}
	}
	return false
}

func patEq(a, b patRow) bool {
	if a.cid != b.cid {
		return false
	}
	for i := range a.cols {
		if a.cols[i] != b.cols[i] {
			return false
		}
	}
	return true
}

// mergePatRows unions per-shard row sets into one sorted,
// duplicate-free list — the gather side of every scatter phase, and
// what makes the merged result independent of shard count and task
// scheduling.
func mergePatRows(sets [][]patRow) []patRow {
	var all []patRow
	for _, s := range sets {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return patLess(all[i], all[j]) })
	out := all[:0]
	for i, r := range all {
		if i > 0 && patEq(r, all[i-1]) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// groupViolating finishes the Qmv aggregation over merged macro rows
// (already deduped: per-shard DISTINCT + global dedupe = global
// DISTINCT, since DISTINCT commutes with union). Rows group by
// (CID, first w columns); a group with more than one surviving row has
// more than one distinct blanked RHS combination — the HAVING
// COUNT(*) > 1 of Fig. 4 — and its key joins Aux.
func groupViolating(macro []patRow, w int) []patRow {
	var out []patRow
	for i := 0; i < len(macro); {
		j := i + 1
		for j < len(macro) && macro[j].cid == macro[i].cid &&
			eqPrefix(macro[j].cols, macro[i].cols, w) {
			j++
		}
		if j-i > 1 {
			out = append(out, patRow{cid: macro[i].cid, cols: macro[i].cols[:w]})
		}
		i = j
	}
	return out
}

func eqPrefix(a, b []string, w int) bool {
	for i := 0; i < w; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// queryPatRows reads rows of shape (CID, text...) — macro exports and
// pattern-table reads share it.
func (d *Detector) queryPatRows(q string, args ...any) ([]patRow, error) {
	rows, err := d.db.Query(q, args...)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	ctypes, err := rows.Columns()
	if err != nil {
		return nil, err
	}
	w := len(ctypes) - 1
	var out []patRow
	for rows.Next() {
		var cid int64
		cells := make([]string, w)
		ptrs := make([]any, w+1)
		ptrs[0] = &cid
		for i := range cells {
			ptrs[i+1] = &cells[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			return nil, err
		}
		out = append(out, patRow{cid: cid, cols: cells})
	}
	return out, rows.Err()
}

// insertPatRows installs pattern rows into an Aux-shaped table with
// batched parameterized inserts.
func (d *Detector) insertPatRows(table string, rows []patRow) error {
	if len(rows) == 0 {
		return nil
	}
	width := 1 + len(rows[0].cols)
	for start := 0; start < len(rows); start += insertBatch {
		end := start + insertBatch
		if end > len(rows) {
			end = len(rows)
		}
		chunk := rows[start:end]
		args := make([]any, 0, len(chunk)*width)
		for _, r := range chunk {
			args = append(args, r.cid)
			for _, c := range r.cols {
				args = append(args, c)
			}
		}
		q := fmt.Sprintf("INSERT INTO %s VALUES %s", table, placeholderRows(len(chunk), width))
		if _, err := d.db.Exec(q, args...); err != nil {
			return fmt.Errorf("detect: install pattern rows: %w", err)
		}
	}
	return nil
}

// --- detection ---

// BatchDetect runs the static detection scatter-gather:
//
//	A. every shard (parallel): reset flags, Qsv (shard-local — SV is a
//	   per-tuple property), clear the Aux replica;
//	B. scatter the macro export over non-empty shards × CID ranges,
//	   gather, dedupe, finish the Qmv grouping in Go;
//	C. broadcast the violating group keys into the coordinator Aux and
//	   every shard's replica, then flag MV shard-local.
//
// The result is byte-identical to Detector.BatchDetect.
func (s *ShardedDetector) BatchDetect() (BatchStats, error) {
	start := time.Now()
	fail := func(err error) (BatchStats, error) {
		return BatchStats{}, fmt.Errorf("detect: sharded: %w", err)
	}

	// Phase A: shard-local Qsv + reset; note row counts for pruning.
	counts := make([]int64, len(s.shards))
	err := s.eachShard(func(i int, sh *shardStore) error {
		if _, err := sh.d.db.Exec(sh.d.stmts.shardBatchPre); err != nil {
			return err
		}
		_, _, n, err := sh.d.ridBounds()
		counts[i] = n
		return err
	})
	if err != nil {
		return fail(err)
	}

	// Phase B: DISTINCT macro export from every non-empty shard, fanned
	// over CID ranges when workers outnumber shards.
	var nonEmpty []int
	for i, n := range counts {
		if n > 0 {
			nonEmpty = append(nonEmpty, i)
		}
	}
	var groups []patRow
	if len(nonEmpty) > 0 {
		per := s.workers / len(nonEmpty)
		if per < 1 {
			per = 1
		}
		ranges := cidRanges(len(s.coord.sigma), per)
		macroSets := make([][]patRow, len(nonEmpty)*len(ranges))
		var tasks []func() error
		for ti, si := range nonEmpty {
			for ri, cr := range ranges {
				slot := ti*len(ranges) + ri
				sh, cr := s.shards[si], cr
				tasks = append(tasks, func() error {
					rows, err := sh.d.queryPatRows(sh.d.stmts.qmvMacroCIDRng, cr[0], cr[1])
					macroSets[slot] = rows
					return err
				})
			}
		}
		if err := runTasks(s.workers, tasks); err != nil {
			return fail(err)
		}
		groups = groupViolating(mergePatRows(macroSets), len(s.coord.schema.Attrs))
	}

	// Phase C: broadcast Aux, flag MV shard-local.
	if _, err := s.coord.db.Exec("TRUNCATE TABLE " + s.coord.auxTable); err != nil {
		return fail(err)
	}
	if err := s.coord.insertPatRows(s.coord.auxTable, groups); err != nil {
		return fail(err)
	}
	err = s.eachShard(func(i int, sh *shardStore) error {
		// Every shard's replica gets the full Aux (an empty shard can
		// receive rows later); the MV scan is skipped where no rows exist.
		if err := sh.d.insertPatRows(sh.d.auxTable, groups); err != nil {
			return err
		}
		if counts[i] == 0 || len(groups) == 0 {
			return nil
		}
		_, err := sh.d.db.Exec(sh.d.stmts.mvUpdate)
		return err
	})
	if err != nil {
		return fail(err)
	}

	sv, mv, total, err := s.Counts()
	if err != nil {
		return fail(err)
	}
	return BatchStats{SV: sv, MV: mv, Total: total, Elapsed: time.Since(start)}, nil
}

// ApplyUpdates applies a combined update ΔD = (ΔD⁻, ΔD⁺) across the
// shards, incrementally maintaining flags and the Aux replicas — the
// sharded form of Detector.ApplyUpdates, with the same four-stage
// shape split around the gather/broadcast points:
//
//  1. write-through to the coordinator (RID allocation + durable
//     copy); route the batch; every shard stages its slice, flags SV
//     on it, and exports the group keys its ΔD touches;
//  2. broadcast the merged keys; every shard trims its touched Aux
//     rows and applies ΔD to its partition;
//  3. scatter the keys-restricted macro export, gather, regroup — the
//     recomputed state of every touched group;
//  4. broadcast the recomputed groups (and the newly-violating subset)
//     to the coordinator Aux and every replica; flag MV shard-local.
//
// Requires current flags/Aux (run BatchDetect once after LoadData).
func (s *ShardedDetector) ApplyUpdates(insBatch *relation.Relation, delRids []int64) ([]int64, IncStats, error) {
	start := time.Now()
	fail := func(err error) ([]int64, IncStats, error) {
		return nil, IncStats{}, fmt.Errorf("detect: sharded update: %w", err)
	}
	k := len(s.shards)
	w := len(s.coord.schema.Attrs)
	applied := int64(len(delRids))

	// Stage 1a: coordinator write-through. The coordinator allocates the
	// RIDs the routing needs.
	firstRID := s.coord.nextRID + 1
	var rids []int64
	var insRows []relation.Tuple
	if insBatch != nil && insBatch.Len() > 0 {
		var err error
		if rids, err = s.coord.InsertRaw(insBatch); err != nil {
			return fail(err)
		}
		insRows = insBatch.Rows
		applied += int64(insBatch.Len())
	}
	if err := s.coord.DeleteRaw(delRids); err != nil {
		return fail(err)
	}

	// Stage 1b: route, stage, flag SV, export touched keys. Every shard
	// participates — staging tables must be truncated everywhere, or a
	// shard that sat out this batch replays a stale one.
	insPerRows := make([][]relation.Tuple, k)
	insPerRids := make([][]int64, k)
	for i, rid := range rids {
		sh := shardOf(rid, k)
		insPerRows[sh] = append(insPerRows[sh], insRows[i])
		insPerRids[sh] = append(insPerRids[sh], rid)
	}
	delPer := make([][]int64, k)
	for _, rid := range delRids {
		sh := shardOf(rid, k)
		delPer[sh] = append(delPer[sh], rid)
	}
	keySets := make([][]patRow, k)
	err := s.eachShard(func(i int, sh *shardStore) error {
		if _, err := sh.d.db.Exec("TRUNCATE TABLE " + sh.d.insTable); err != nil {
			return err
		}
		if err := sh.d.insertAssigned(sh.d.insTable, insPerRows[i], insPerRids[i]); err != nil {
			return err
		}
		if err := sh.d.loadDelRids(sh.d.db, delPer[i]); err != nil {
			return err
		}
		if _, err := sh.d.db.Exec(sh.d.stmts.shardIncPre); err != nil {
			return err
		}
		rows, err := sh.d.queryPatRows(sh.d.stmts.keysSelect)
		keySets[i] = rows
		return err
	})
	if err != nil {
		return fail(err)
	}
	keys := mergePatRows(keySets)

	// The previously-violating touched groups, read from the
	// coordinator's authoritative Aux before anything is trimmed — the
	// auxSaveOld snapshot of the serial path.
	coordAux, err := s.coord.queryPatRows(s.coord.stmts.auxSelect)
	if err != nil {
		return fail(err)
	}
	keySet := make(map[string]bool, len(keys))
	for _, r := range keys {
		keySet[r.key()] = true
	}
	oldSet := make(map[string]bool)
	for _, r := range coordAux {
		if keySet[r.key()] {
			oldSet[r.key()] = true
		}
	}

	// Stage 2: broadcast the merged keys, trim touched Aux rows, apply
	// ΔD to every partition.
	err = s.eachShard(func(i int, sh *shardStore) error {
		if _, err := sh.d.db.Exec("TRUNCATE TABLE " + sh.d.keysTable); err != nil {
			return err
		}
		if err := sh.d.insertPatRows(sh.d.keysTable, keys); err != nil {
			return err
		}
		_, err := sh.d.db.Exec(sh.d.stmts.shardIncMid)
		return err
	})
	if err != nil {
		return fail(err)
	}

	// Stage 3: recompute the touched groups — keys-restricted macro
	// export from every shard, regrouped globally.
	macroSets := make([][]patRow, k)
	err = s.eachShard(func(i int, sh *shardStore) error {
		rows, err := sh.d.queryPatRows(sh.d.stmts.qmvMacroKeys)
		macroSets[i] = rows
		return err
	})
	if err != nil {
		return fail(err)
	}
	recomputed := groupViolating(mergePatRows(macroSets), w)
	var auxNew []patRow
	for _, r := range recomputed {
		if !oldSet[r.key()] {
			auxNew = append(auxNew, r)
		}
	}

	// Stage 4a: coordinator Aux maintenance (trim touched, add
	// recomputed) so the authoritative copy tracks the replicas exactly.
	if _, err := s.coord.db.Exec("TRUNCATE TABLE " + s.coord.keysTable); err != nil {
		return fail(err)
	}
	if err := s.coord.insertPatRows(s.coord.keysTable, keys); err != nil {
		return fail(err)
	}
	if _, err := s.coord.db.Exec(s.coord.stmts.auxDeleteAff); err != nil {
		return fail(err)
	}
	if err := s.coord.insertPatRows(s.coord.auxTable, recomputed); err != nil {
		return fail(err)
	}

	// Stage 4b: broadcast the recomputed groups and flag MV shard-local
	// (mvSetNew on the merged batch rows, mvSetOld on pre-existing rows
	// of newly-violating groups, mvClear on no-longer-matching rows of
	// touched groups).
	err = s.eachShard(func(i int, sh *shardStore) error {
		if err := sh.d.insertPatRows(sh.d.auxTable, recomputed); err != nil {
			return err
		}
		if _, err := sh.d.db.Exec("TRUNCATE TABLE " + sh.d.auxNewTable); err != nil {
			return err
		}
		if err := sh.d.insertPatRows(sh.d.auxNewTable, auxNew); err != nil {
			return err
		}
		_, err := sh.d.db.Exec(sh.d.stmts.shardIncPost, firstRID, firstRID)
		return err
	})
	if err != nil {
		return fail(err)
	}
	return rids, IncStats{Applied: applied, Elapsed: time.Since(start)}, nil
}

// InsertTuples applies ΔD⁺ across the shards (see ApplyUpdates).
func (s *ShardedDetector) InsertTuples(batch *relation.Relation) ([]int64, IncStats, error) {
	return s.ApplyUpdates(batch, nil)
}

// DeleteTuples applies ΔD⁻ by RID across the shards (see ApplyUpdates).
func (s *ShardedDetector) DeleteTuples(rids []int64) (IncStats, error) {
	if len(rids) == 0 {
		return IncStats{}, nil
	}
	_, st, err := s.ApplyUpdates(nil, rids)
	return st, err
}

// --- reads ---

// gatherViolations merges per-shard violation relations by RID. RIDs
// are globally unique, so the sort-merge is total and deterministic.
func gatherViolations(rels []*relation.Relation) *relation.Relation {
	var first *relation.Relation
	for _, r := range rels {
		if r != nil {
			first = r
			break
		}
	}
	if first == nil {
		return nil
	}
	out := relation.New(first.Schema)
	for _, r := range rels {
		if r != nil {
			out.Rows = append(out.Rows, r.Rows...)
		}
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i][0].I < out.Rows[j][0].I })
	return out
}

// Violations gathers the violation set of every shard, merged in RID
// order — byte-identical to Detector.Violations on an unsharded store.
func (s *ShardedDetector) Violations() (*relation.Relation, error) {
	rels := make([]*relation.Relation, len(s.shards))
	err := s.eachShard(func(i int, sh *shardStore) error {
		var err error
		rels[i], err = sh.d.Violations()
		return err
	})
	if err != nil {
		return nil, err
	}
	return gatherViolations(rels), nil
}

// ViolationsInRange returns the violations with lo <= RID <= hi. The
// order-preserving routing key prunes the scatter to the shards owning
// blocks the range intersects — a range within one routing block reads
// exactly one shard.
func (s *ShardedDetector) ViolationsInRange(lo, hi int64) (*relation.Relation, error) {
	prune := shardsForRIDRange(lo, hi, len(s.shards))
	rels := make([]*relation.Relation, len(prune))
	tasks := make([]func() error, len(prune))
	cond := fmt.Sprintf("%s >= ? AND %s <= ?", ColRID, ColRID)
	for ti, si := range prune {
		ti, sh := ti, s.shards[si]
		tasks[ti] = func() error {
			var err error
			rels[ti], err = sh.d.violationsVia(sh.d.db, cond, []any{lo, hi})
			return err
		}
	}
	if err := runTasks(s.workers, tasks); err != nil {
		return nil, err
	}
	out := gatherViolations(rels)
	if out == nil {
		// Empty prune set (k == 0 never happens, but hi < lo can): shape
		// the empty result like a normal read.
		return s.coord.violationsVia(s.coord.db, "1 = 0", nil)
	}
	return out, nil
}

// Counts sums the per-shard (DSV, DMV, |vio|) counters.
func (s *ShardedDetector) Counts() (sv, mv, total int64, err error) {
	svs := make([]int64, len(s.shards))
	mvs := make([]int64, len(s.shards))
	tots := make([]int64, len(s.shards))
	err = s.eachShard(func(i int, sh *shardStore) error {
		var err error
		svs[i], mvs[i], tots[i], err = sh.d.Counts()
		return err
	})
	if err != nil {
		return 0, 0, 0, err
	}
	for i := range svs {
		sv += svs[i]
		mv += mvs[i]
		total += tots[i]
	}
	return sv, mv, total, nil
}

// FlagsByRID merges the per-shard flag maps.
func (s *ShardedDetector) FlagsByRID() (map[int64][2]bool, error) {
	maps := make([]map[int64][2]bool, len(s.shards))
	err := s.eachShard(func(i int, sh *shardStore) error {
		var err error
		maps[i], err = sh.d.FlagsByRID()
		return err
	})
	if err != nil {
		return nil, err
	}
	out := make(map[int64][2]bool)
	for _, m := range maps {
		for rid, f := range m {
			out[rid] = f
		}
	}
	return out, nil
}

// RIDs returns every row id across the shards, ordered.
func (s *ShardedDetector) RIDs() ([]int64, error) {
	sets := make([][]int64, len(s.shards))
	err := s.eachShard(func(i int, sh *shardStore) error {
		var err error
		sets[i], err = sh.d.RIDs()
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeRIDs(sets), nil
}

// Resume rebinds to a coordinator store recovered by a previous
// process (durable DSN + Resume semantics of Detector.Resume) and
// rebuilds the volatile shards from the recovered data: fresh shard
// Install, then a routed re-scatter of the coordinator's data table.
// Flags and Aux replicas are rebuilt by the next BatchDetect — the
// recovered coordinator copy carries rows, not detection state.
func (s *ShardedDetector) Resume() error {
	if err := s.coord.Resume(); err != nil {
		return err
	}
	if err := s.eachShard(func(_ int, sh *shardStore) error {
		return sh.d.Install()
	}); err != nil {
		return err
	}
	// Stream the recovered rows in RID order and re-scatter them.
	cols := []string{ColRID}
	for _, a := range s.coord.schema.Attrs {
		cols = append(cols, a.Name)
	}
	q := fmt.Sprintf("SELECT %s FROM %s ORDER BY %s",
		strings.Join(cols, ", "), s.coord.dataTable, ColRID)
	rows, err := s.coord.db.Query(q)
	if err != nil {
		return err
	}
	defer rows.Close()
	var rids []int64
	var tuples []relation.Tuple
	attrs := s.coord.schema.Attrs
	for rows.Next() {
		var rid int64
		cells := make([]sql.NullString, len(attrs))
		ptrs := make([]any, len(attrs)+1)
		ptrs[0] = &rid
		for i := range cells {
			ptrs[i+1] = &cells[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			return err
		}
		t := make(relation.Tuple, len(attrs))
		for i, c := range cells {
			if !c.Valid {
				t[i] = relation.Null()
				continue
			}
			v, err := relation.ParseLiteral(c.String, attrs[i].Kind)
			if err != nil {
				return err
			}
			t[i] = v
		}
		rids = append(rids, rid)
		tuples = append(tuples, t)
	}
	if err := rows.Err(); err != nil {
		return err
	}
	return s.scatterRows(s.coord.dataTable, tuples, rids)
}
