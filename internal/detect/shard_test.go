package detect

import (
	"bytes"
	"database/sql"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ecfd/internal/gen"
	"ecfd/internal/sqldb"
	"ecfd/internal/sqldriver"
)

// shardedViolationCSV renders a sharded detector's gathered violation
// set for byte-level comparison against the serial legs.
func shardedViolationCSV(t testing.TB, s *ShardedDetector) []byte {
	t.Helper()
	vio, err := s.Violations()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := vio.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newShardedBench builds a sharded detector over the generator workload
// (the sharded sibling of newBenchDetector).
func newShardedBench(t testing.TB, rows int, seed int64, opts ShardOptions) (*ShardedDetector, func()) {
	t.Helper()
	dsn := fmt.Sprintf("detect_shard_%d_%d_%d", rows, seed, dsnSeq.Add(1))
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSharded(db, gen.Schema(), gen.Constraints(), opts)
	if err != nil {
		db.Close()
		sqldriver.Unregister(dsn)
		t.Fatal(err)
	}
	cleanup := func() {
		s.Close()
		db.Close()
		sqldriver.Unregister(dsn)
	}
	if err := s.Install(); err != nil {
		cleanup()
		t.Fatal(err)
	}
	if _, err := s.LoadData(gen.Dataset(gen.Config{Rows: rows, Noise: 5, Seed: seed})); err != nil {
		cleanup()
		t.Fatal(err)
	}
	return s, cleanup
}

// TestShardKeyOrderPreserving pins the routing key's core property:
// bytes.Compare on keys agrees with the numeric order of the RIDs, so
// RID ranges are contiguous in key space and range queries can prune
// by block.
func TestShardKeyOrderPreserving(t *testing.T) {
	rids := []int64{-1 << 62, -100_000, -257, -256, -255, -1, 0, 1, 255, 256, 257, 100_000, 1 << 62}
	for i := 1; i < len(rids); i++ {
		a, b := shardKey(rids[i-1]), shardKey(rids[i])
		if bytes.Compare(a[:], b[:]) >= 0 {
			t.Errorf("key(%d) >= key(%d): order not preserved", rids[i-1], rids[i])
		}
	}
}

// TestShardRouting is the routing property test: every RID routes to
// exactly one shard (total, deterministic, in range) for every K, and
// consecutive RIDs within one routing block agree.
func TestShardRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, k := range []int{1, 2, 3, 4, 8} {
		for trial := 0; trial < 2000; trial++ {
			rid := rng.Int63() - rng.Int63() // covers negatives
			s := shardOf(rid, k)
			if s < 0 || s >= k {
				t.Fatalf("shardOf(%d, %d) = %d out of range", rid, k, s)
			}
			if s2 := shardOf(rid, k); s2 != s {
				t.Fatalf("shardOf(%d, %d) not deterministic: %d then %d", rid, k, s, s2)
			}
		}
		// Same block → same shard; adjacent blocks → adjacent shards
		// (round-robin interleaving).
		base := int64(1 << 20)
		if shardOf(base, k) != shardOf(base+(1<<shardRouteBits)-1-base%(1<<shardRouteBits), k) {
			t.Errorf("k=%d: RIDs of one routing block split across shards", k)
		}
	}
	// Block interleaving balances a monotone load: over any contiguous
	// run of whole blocks, shard counts differ by at most one block.
	const blocks = 37
	counts := make(map[int]int)
	for b := 0; b < blocks; b++ {
		counts[shardOf(int64(b)<<shardRouteBits, 4)]++
	}
	lo, hi := blocks, 0
	for s := 0; s < 4; s++ {
		if counts[s] < lo {
			lo = counts[s]
		}
		if counts[s] > hi {
			hi = counts[s]
		}
	}
	if hi-lo > 1 {
		t.Errorf("monotone block load unbalanced across 4 shards: %v", counts)
	}
}

// TestShardsForRIDRange checks the prune set against brute force: the
// set contains exactly the owners of RIDs in the range (capped at K),
// and a range inside one routing block prunes to a single shard.
func TestShardsForRIDRange(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, k := range []int{1, 2, 4, 8} {
		for trial := 0; trial < 200; trial++ {
			lo := rng.Int63n(1<<20) - (1 << 19)
			hi := lo + rng.Int63n(4<<shardRouteBits)
			got := shardsForRIDRange(lo, hi, k)
			want := make(map[int]bool)
			for rid := lo; rid <= hi; rid++ {
				want[shardOf(rid, k)] = true
			}
			gotSet := make(map[int]bool, len(got))
			for _, s := range got {
				if gotSet[s] {
					t.Fatalf("k=%d [%d,%d]: duplicate shard %d in prune set", k, lo, hi, s)
				}
				gotSet[s] = true
			}
			for s := range want {
				if !gotSet[s] {
					t.Fatalf("k=%d [%d,%d]: owner shard %d missing from prune set %v", k, lo, hi, s, got)
				}
			}
			for s := range gotSet {
				if !want[s] {
					t.Fatalf("k=%d [%d,%d]: prune set %v includes non-owner %d", k, lo, hi, got, s)
				}
			}
		}
		// Within one block: exactly one shard.
		base := int64(7) << shardRouteBits
		if got := shardsForRIDRange(base+1, base+10, k); len(got) != 1 {
			t.Errorf("k=%d: intra-block range pruned to %v, want one shard", k, got)
		}
	}
	if got := shardsForRIDRange(10, 5, 4); got != nil {
		t.Errorf("inverted range produced prune set %v", got)
	}
}

// TestShardReRouteStable checks that routing is stable under DML:
// after ApplyUpdates, every surviving RID still lives on the shard the
// key function names — no row ever migrates.
func TestShardReRouteStable(t *testing.T) {
	s, cleanup := newShardedBench(t, 1_500, 19, ShardOptions{Shards: 4, Workers: 4})
	defer cleanup()
	if _, err := s.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		for i, sh := range s.shards {
			rids, err := sh.d.RIDs()
			if err != nil {
				t.Fatal(err)
			}
			for _, rid := range rids {
				if want := shardOf(rid, len(s.shards)); want != i {
					t.Fatalf("%s: RID %d on shard %d, routed to %d", stage, rid, i, want)
				}
			}
		}
	}
	check("after load")
	rng := rand.New(rand.NewSource(20))
	for step := 0; step < 3; step++ {
		rids, err := s.RIDs()
		if err != nil {
			t.Fatal(err)
		}
		var doomed []int64
		for _, i := range rng.Perm(len(rids))[:40] {
			doomed = append(doomed, rids[i])
		}
		batch := gen.Updates(gen.Config{Rows: 1_500, Noise: 5, Seed: 19}, 60, 5)
		if _, _, err := s.ApplyUpdates(batch, doomed); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("after step %d", step))
	}
}

// TestShardedViolationsInRange compares the pruned range read against
// filtering the full gathered violation set.
func TestShardedViolationsInRange(t *testing.T) {
	s, cleanup := newShardedBench(t, 2_000, 27, ShardOptions{Shards: 4, Workers: 4})
	defer cleanup()
	if _, err := s.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	all, err := s.Violations()
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Rows) == 0 {
		t.Fatal("no violations; test is vacuous")
	}
	for _, rg := range [][2]int64{{1, 100}, {500, 1500}, {1990, 2050}, {40, 40}, {3000, 4000}} {
		got, err := s.ViolationsInRange(rg[0], rg[1])
		if err != nil {
			t.Fatal(err)
		}
		var want []int
		for i, row := range all.Rows {
			if rid := row[0].I; rid >= rg[0] && rid <= rg[1] {
				want = append(want, i)
			}
		}
		if len(got.Rows) != len(want) {
			t.Fatalf("range %v: %d rows, want %d", rg, len(got.Rows), len(want))
		}
		for j, i := range want {
			if !all.Rows[i].Equal(got.Rows[j]) {
				t.Fatalf("range %v: row %d mismatch", rg, j)
			}
		}
	}
}

// TestShardedDetectEmpty covers the degenerate shapes: an empty
// relation, and more shards than rows (some shards permanently empty).
func TestShardedDetectEmpty(t *testing.T) {
	dsn := fmt.Sprintf("detect_shard_empty_%d", dsnSeq.Add(1))
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defer sqldriver.Unregister(dsn)
	s, err := NewSharded(db, gen.Schema(), gen.Constraints(), ShardOptions{Shards: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Install(); err != nil {
		t.Fatal(err)
	}
	st, err := s.BatchDetect()
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 0 {
		t.Fatalf("empty relation produced violations: %+v", st)
	}
	// A tiny load leaves most of the 8 shards empty (RIDs 1..3 share one
	// routing block); detection must still work end to end.
	if _, err := s.LoadData(gen.Dataset(gen.Config{Rows: 3, Noise: 5, Seed: 1})); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Violations(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedResume exercises the restart path: a sharded session over
// a durable coordinator store crashes (process exit), reopens, Resumes
// — shards rebuilt by re-scattering the recovered coordinator data —
// and the next BatchDetect lands byte-identical to the pre-crash one.
func TestShardedResume(t *testing.T) {
	fs := sqldb.NewMemFS(71)
	walOpts := sqldb.WALOptions{Dir: "/wal", FS: fs, Fsync: sqldb.FsyncAlways}
	dsn := fmt.Sprintf("detect_shard_resume_%d", dsnSeq.Add(1))
	eng, err := sqldb.Open(walOpts)
	if err != nil {
		t.Fatal(err)
	}
	sqldriver.RegisterDB(dsn, eng)
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	inst := gen.Dataset(gen.Config{Rows: 800, Noise: 5, Seed: 31})
	s, err := NewSharded(db, gen.Schema(), gen.Constraints(), ShardOptions{Shards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Install(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadData(inst); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	before := shardedViolationCSV(t, s)
	nextBefore := s.coord.nextRID
	s.Close()
	db.Close()

	// "Restart": reopen the durable store, rebuild the sharded session,
	// Resume instead of Install.
	if eng, err = sqldb.Open(walOpts); err != nil {
		t.Fatal(err)
	}
	sqldriver.RegisterDB(dsn, eng)
	if db, err = sql.Open(sqldriver.DriverName, dsn); err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defer sqldriver.Unregister(dsn)
	s2, err := NewSharded(db, gen.Schema(), gen.Constraints(), ShardOptions{Shards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Resume(); err != nil {
		t.Fatal(err)
	}
	if s2.coord.nextRID != nextBefore {
		t.Fatalf("RID allocator resumed at %d, want %d", s2.coord.nextRID, nextBefore)
	}
	if _, err := s2.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	if after := shardedViolationCSV(t, s2); !bytes.Equal(before, after) {
		t.Fatalf("violations differ across resume\nbefore:\n%s\nafter:\n%s", before, after)
	}
	// And the session keeps working: one more update round trip.
	if _, _, err := s2.ApplyUpdates(gen.Updates(gen.Config{Rows: 800, Noise: 5, Seed: 31}, 50, 5), nil); err != nil {
		t.Fatal(err)
	}
}

// TestShardedDetectStress drives sharded detection cycles while reader
// goroutines gather Violations and Counts concurrently — the race
// detector's view of the scatter pool, the per-shard engines, and the
// gather merges all running at once.
func TestShardedDetectStress(t *testing.T) {
	s, cleanup := newShardedBench(t, 2_000, 57, ShardOptions{Shards: 4, Workers: 8})
	defer cleanup()
	if _, err := s.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Violations(); err != nil {
					t.Error(err)
					return
				}
				if _, _, _, err := s.Counts(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(58))
	for step := 0; step < 5; step++ {
		rids, err := s.RIDs()
		if err != nil {
			t.Fatal(err)
		}
		var doomed []int64
		for _, i := range rng.Perm(len(rids))[:50] {
			doomed = append(doomed, rids[i])
		}
		batch := gen.Updates(gen.Config{Rows: 2_000, Noise: 5, Seed: 57}, 80, 5)
		if _, _, err := s.ApplyUpdates(batch, doomed); err != nil {
			t.Fatal(err)
		}
		if _, err := s.BatchDetect(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
