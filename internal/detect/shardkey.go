package detect

import "encoding/binary"

// RID → shard routing for the sharded detector (shard.go).
//
// A RID routes through its *order-preserving key*: the fdb-style tuple
// encoding of the signed integer — offset binary (sign bit flipped) in
// big-endian byte order — so that bytes.Compare on keys agrees exactly
// with the numeric order of the RIDs. The shard is then a function of
// the key's block prefix (all but the low shardRouteBits bits):
// consecutive RIDs share a block, blocks interleave round-robin across
// the K shards. Both properties matter:
//
//   - order preservation makes RID ranges contiguous in key space, so a
//     range query prunes to the shards owning the blocks it intersects
//     (shardsForRIDRange) — a range within one block touches one shard;
//   - block interleaving spreads a monotone bulk load evenly: after any
//     prefix of the RID sequence, shard row counts differ by at most
//     one block.

// shardRouteBits sizes the routing block at 2^shardRouteBits = 256
// consecutive RIDs. Small enough that realistic loads balance to within
// ~256 rows per shard; large enough that a short RID range (point
// lookups, small slices) lands on one or two shards.
const shardRouteBits = 8

// shardKey renders a RID as its 8-byte order-preserving routing key.
func shardKey(rid int64) [8]byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], uint64(rid)^(1<<63))
	return k
}

// shardBlock is the routing block of a RID: the key's high 56 bits.
// Derived from the key bytes, not the RID, so the key is the single
// source of routing truth.
func shardBlock(rid int64) uint64 {
	k := shardKey(rid)
	return binary.BigEndian.Uint64(k[:]) >> shardRouteBits
}

// shardOf maps a RID to its owning shard among k. Total and
// deterministic: every RID routes to exactly one shard, forever.
func shardOf(rid int64, k int) int {
	return int(shardBlock(rid) % uint64(k))
}

// shardsForRIDRange lists the shards owning any RID in [lo, hi], in
// block order — the prune set of a range query. A span of k or more
// blocks covers every shard; shorter spans return only the owners of
// the intersected blocks (a span inside one block returns one shard).
func shardsForRIDRange(lo, hi int64, k int) []int {
	if k <= 0 || hi < lo {
		return nil
	}
	loB, hiB := shardBlock(lo), shardBlock(hi)
	out := make([]int, 0, k)
	seen := make([]bool, k)
	for b := loB; ; b++ {
		if s := int(b % uint64(k)); !seen[s] {
			seen[s] = true
			out = append(out, s)
			if len(out) == k {
				break
			}
		}
		if b == hiB {
			break
		}
	}
	return out
}
