package detect

import (
	"fmt"
	"strings"
)

// generateSQL builds the fixed statement set. The statements depend
// only on the schema R — never on Σ, the number of pattern tuples or
// the set sizes, which all live in data tables (the paper's key idea:
// "treat pattern tableaux as data tables, rather than as meta-data").
func (d *Detector) generateSQL() {
	d.stmts = statements{
		qsvSelect:    d.genQsvSelect(),
		qsvUpdate:    d.genQsvUpdate(),
		qmvInsert:    d.genQmvInsert(),
		mvUpdate:     d.genMVUpdate(),
		resetFlags:   fmt.Sprintf("UPDATE %s SET %s = 0, %s = 0", d.dataTable, ColSV, ColMV),
		keysFromIns:  d.genKeys(d.insTable, ""),
		keysFromDel:  d.genKeys(d.dataTable, fmt.Sprintf("t.%s IN (SELECT %s FROM %s)", ColRID, ColRID, d.delTable)),
		auxDeleteAff: d.genAuxDeleteAffected(),
		auxSaveOld:   d.genAuxSaveOld(),
		auxNewComp:   d.genAuxNewCompute(),
		auxRecompute: d.genAuxRecompute(),
		mvSetNew:     d.genMVSetNewRows(),
		mvSetOld:     d.genMVSetOldRows(),
		mvClear:      d.genMVClear(),
		svOnIns:      d.genSVUpdate(d.insTable),
		mergeIns:     fmt.Sprintf("INSERT INTO %s SELECT * FROM %s", d.dataTable, d.insTable),
		deleteRows: fmt.Sprintf("DELETE FROM %s WHERE %s IN (SELECT %s FROM %s)",
			d.dataTable, ColRID, ColRID, d.delTable),
		qsvRIDsSlice:    d.genQsvRIDsSlice(),
		qmvGroupsCIDRng: d.genQmvGroupsCIDRange(),
		checkSVRIDs:     d.genCheckSVRIDs(),
		checkMVRIDs:     d.genCheckMVRIDs(),
		mvRIDsSlice:     d.genMVRIDsSlice(),
		qmvMacroCIDRng:  d.macro(d.dataTable, "c.CID >= ? AND c.CID <= ?"),
		qmvMacroKeys:    d.macro(d.dataTable, d.keysProbe()),
		keysSelect:      d.genPatternSelect(d.keysTable),
		auxSelect:       d.genPatternSelect(d.auxTable),
	}
	// The batch-detection pipeline: the five fixed statements of
	// BatchDetect as one script, submitted in a single driver round
	// trip. The statement set stays fixed and Σ-independent; only the
	// packaging changes.
	d.stmts.batchScript = strings.Join([]string{
		d.stmts.resetFlags,
		d.stmts.qsvUpdate,
		"TRUNCATE TABLE " + d.auxTable,
		d.stmts.qmvInsert,
		d.stmts.mvUpdate,
	}, ";\n")
	// The incremental-maintenance pipeline (§V-B steps): parameter
	// placeholders index through the script in order, so the two
	// RID-threshold parameters (mvSetNew, mvSetOld) bind as ?1 and ?2.
	d.stmts.incScript = strings.Join([]string{
		d.stmts.svOnIns,
		"TRUNCATE TABLE " + d.keysTable,
		d.stmts.keysFromDel, // before the doomed rows disappear
		d.stmts.keysFromIns,
		"TRUNCATE TABLE " + d.auxOldTable,
		d.stmts.auxSaveOld,
		d.stmts.auxDeleteAff,
		d.stmts.deleteRows,
		d.stmts.mergeIns,
		d.stmts.auxRecompute,
		"TRUNCATE TABLE " + d.auxNewTable,
		d.stmts.auxNewComp,
		d.stmts.mvSetNew,
		d.stmts.mvSetOld,
		d.stmts.mvClear,
	}, ";\n")
	// The sharded pipelines (ShardedDetector): each shard runs the same
	// fixed statements over its partition, split into per-phase scripts
	// around the coordinator's gather/merge/broadcast points. The Qmv
	// grouping cannot run per shard — a group's members span shards — so
	// the shards export DISTINCT macro rows (qmvMacroCIDRng /
	// qmvMacroKeys) and the coordinator finishes the aggregation.
	d.stmts.shardBatchPre = strings.Join([]string{
		d.stmts.resetFlags,
		d.stmts.qsvUpdate,
		"TRUNCATE TABLE " + d.auxTable,
	}, ";\n")
	d.stmts.shardIncPre = strings.Join([]string{
		d.stmts.svOnIns,
		"TRUNCATE TABLE " + d.keysTable,
		d.stmts.keysFromDel, // before the doomed rows disappear
		d.stmts.keysFromIns,
	}, ";\n")
	d.stmts.shardIncMid = strings.Join([]string{
		d.stmts.auxDeleteAff,
		d.stmts.deleteRows,
		d.stmts.mergeIns,
	}, ";\n")
	d.stmts.shardIncPost = strings.Join([]string{
		d.stmts.mvSetNew,
		d.stmts.mvSetOld,
		d.stmts.mvClear,
	}, ";\n")
}

// genPatternSelect reads an Aux-shaped table back out: the CID and the
// blanked LHS pattern columns. DISTINCT because the keys table is
// filled by two inserts (ΔD⁻ and ΔD⁺ sources) that can repeat a key.
func (d *Detector) genPatternSelect(table string) string {
	cols := []string{"CID"}
	for _, a := range d.schema.Attrs {
		cols = append(cols, a.Name+"_P")
	}
	return fmt.Sprintf("SELECT DISTINCT %s FROM %s", strings.Join(cols, ", "), table)
}

// SQL returns the generated batch-detection queries (Qsv select form,
// SV update, Qmv insert, MV update) for inspection and testing.
func (d *Detector) SQL() (qsvSelect, qsvUpdate, qmvInsert, mvUpdate string) {
	return d.stmts.qsvSelect, d.stmts.qsvUpdate, d.stmts.qmvInsert, d.stmts.mvUpdate
}

// ParallelSQL returns the read-only statements the parallel detector
// fans across workers (RID-slice Qsv, CID-range Qmv grouping,
// RID-slice MV matching) for inspection and testing — in particular
// the EXPLAIN tests asserting that the RID-slice scans are range-
// pruned through the data table's ordered RID index.
func (d *Detector) ParallelSQL() (qsvRIDsSlice, qmvGroupsCIDRange, mvRIDsSlice string) {
	return d.stmts.qsvRIDsSlice, d.stmts.qmvGroupsCIDRng, d.stmts.mvRIDsSlice
}

// setProbe renders EXISTS (or NOT EXISTS) over a pattern-set table:
// "does t's A-value belong to the CID's set?" — the QA subqueries of
// Fig. 4, applied to the encoding tables only, never to the data.
func (d *Detector) setProbe(not bool, table, attr string) string {
	op := "EXISTS"
	if not {
		op = "NOT EXISTS"
	}
	return fmt.Sprintf("%s (SELECT 1 FROM %s s WHERE s.CID = c.CID AND s.VAL = t.%s)", op, table, attr)
}

// lhsMatch renders the conjunction "t[X] ≍ tp[X]" for the pattern
// tuple bound by enc row c. Codes: 1 ⇒ value must be in the set,
// 2 ⇒ value must be non-NULL and outside the set, 0/3 ⇒ no constraint.
func (d *Detector) lhsMatch() string {
	var conj []string
	for _, a := range d.schema.Attrs {
		tal := d.talName(a.Name)
		conj = append(conj,
			fmt.Sprintf("(c.%s_L <> %d OR %s)", a.Name, CodeIn, d.setProbe(false, tal, a.Name)),
			fmt.Sprintf("(c.%s_L <> %d OR (t.%s IS NOT NULL AND %s))",
				a.Name, CodeNotIn, a.Name, d.setProbe(true, tal, a.Name)),
		)
	}
	return strings.Join(conj, "\n    AND ")
}

// rhsViolate renders the disjunction "t[Y,Yp] does not match tp[Y,Yp]":
// some RHS attribute with an In pattern whose value is missing from the
// set, or with a NotIn pattern whose value is NULL or in the set.
// ABS() folds the Yp mirror codes onto the Y codes, as in Fig. 4.
func (d *Detector) rhsViolate() string {
	var disj []string
	for _, a := range d.schema.Attrs {
		tar := d.tarName(a.Name)
		disj = append(disj,
			fmt.Sprintf("(ABS(c.%s_R) = %d AND %s)", a.Name, CodeIn, d.setProbe(true, tar, a.Name)),
			fmt.Sprintf("(ABS(c.%s_R) = %d AND (t.%s IS NULL OR %s))",
				a.Name, CodeNotIn, a.Name, d.setProbe(false, tar, a.Name)),
		)
	}
	return strings.Join(disj, "\n    OR ")
}

// genQsvSelect is Fig. 4 (top): the tuples violating some pattern
// constraint all by themselves.
func (d *Detector) genQsvSelect() string {
	cols := []string{"t." + ColRID}
	for _, a := range d.schema.Attrs {
		cols = append(cols, "t."+a.Name)
	}
	return fmt.Sprintf("SELECT DISTINCT %s FROM %s t, %s c\nWHERE %s\n  AND (%s)",
		strings.Join(cols, ", "), d.dataTable, d.encTable, d.lhsMatch(), d.rhsViolate())
}

// genQsvUpdate flags the Qsv result in place: SV := 1.
func (d *Detector) genQsvUpdate() string { return d.genSVUpdate(d.dataTable) }

func (d *Detector) genSVUpdate(table string) string {
	return fmt.Sprintf("UPDATE %s t SET %s = 1 WHERE EXISTS (SELECT 1 FROM %s c\n  WHERE %s\n  AND (%s))",
		table, ColSV, d.encTable, d.lhsMatch(), d.rhsViolate())
}

// caseProj renders the '@'-blanking projection of Fig. 4's macro for
// one attribute: the attribute value (as text) when the enc code says
// the attribute participates in the embedded FD on the given side, '@'
// otherwise. NULL values map to a distinct mark so SQL grouping agrees
// with the FD semantics (NULLs group together).
func (d *Detector) caseProj(side, attr string) string {
	return fmt.Sprintf("CASE WHEN c.%s_%s > 0 THEN COALESCE(TOTEXT(t.%s), '%s') ELSE '%s' END",
		attr, side, attr, nullMark, blankMark)
}

// macro renders the derived table of Fig. 4 (bottom): one row per
// (pattern tuple, matching data tuple), with attributes irrelevant to
// the embedded FD blanked out. extraWhere, when non-empty, is placed
// first so cheap restrictions short-circuit the pattern matching.
func (d *Detector) macro(dataTable, extraWhere string) string {
	cols := []string{"c.CID AS CID"}
	for _, a := range d.schema.Attrs {
		cols = append(cols, fmt.Sprintf("%s AS %s_P", d.caseProj("L", a.Name), a.Name))
	}
	for _, a := range d.schema.Attrs {
		cols = append(cols, fmt.Sprintf("%s AS %s_RV", d.caseProj("R", a.Name), a.Name))
	}
	where := d.lhsMatch()
	if extraWhere != "" {
		where = extraWhere + "\n    AND " + where
	}
	return fmt.Sprintf("SELECT DISTINCT %s\n  FROM %s t, %s c\n  WHERE %s",
		strings.Join(cols, ",\n    "), dataTable, d.encTable, where)
}

// groupCols lists the Aux grouping key: CID plus every blanked LHS
// column.
func (d *Detector) groupCols() []string {
	cols := []string{"m.CID"}
	for _, a := range d.schema.Attrs {
		cols = append(cols, "m."+a.Name+"_P")
	}
	return cols
}

// genQmvInsert is Fig. 4 (bottom) materialized into Aux(D): the
// (cid, p) patterns of groups violating an embedded FD — groups that
// agree on the (blanked) LHS but contain more than one distinct
// (blanked) RHS combination.
func (d *Detector) genQmvInsert() string {
	return d.genQmvInsertRestricted("")
}

func (d *Detector) genQmvInsertRestricted(extraWhere string) string {
	return fmt.Sprintf("INSERT INTO %s %s", d.auxTable, d.genQmvSelect(extraWhere))
}

// genQmvSelect is the bare SELECT form of the Qmv grouping: the
// violating (cid, p) group keys, optionally restricted by extraWhere.
func (d *Detector) genQmvSelect(extraWhere string) string {
	g := d.groupCols()
	return fmt.Sprintf("SELECT %s FROM (%s\n) m\nGROUP BY %s\nHAVING COUNT(*) > 1",
		strings.Join(g, ", "), d.macro(d.dataTable, extraWhere), strings.Join(g, ", "))
}

// --- parallel detection (ParallelDetect) ---
//
// The parallel mode decomposes the two fixed detection queries into
// read-only violation queries that many workers can run concurrently
// under the engine's shared read lock: the Qsv scan partitions over
// RID slices of the data, the Qmv grouping fans over CID ranges of Σ
// (groups never span CIDs — the CID is part of the group key), and the
// MV flagging partitions over RID slices again. The statement texts
// stay fixed; slice and range bounds bind as parameters, so every task
// hits the compiled-plan cache.

// genQsvRIDsSlice finds the RIDs of single-tuple violators within a
// RID slice (params: lo, hi).
func (d *Detector) genQsvRIDsSlice() string {
	return fmt.Sprintf("SELECT DISTINCT t.%s FROM %s t, %s c\nWHERE t.%s >= ? AND t.%s <= ?\n  AND %s\n  AND (%s)",
		ColRID, d.dataTable, d.encTable, ColRID, ColRID, d.lhsMatch(), d.rhsViolate())
}

// genQmvGroupsCIDRange computes the violating group keys of a
// contiguous CID range (params: lo, hi). Grouping partitions cleanly
// along CIDs because the CID is part of every group key; ranging
// rather than going one-CID-at-a-time keeps the total scan count at
// the worker count, so a one-worker run does exactly the serial
// amount of work.
func (d *Detector) genQmvGroupsCIDRange() string {
	return d.genQmvSelect("c.CID >= ? AND c.CID <= ?")
}

// genMVRIDsSlice finds the RIDs matching any Aux pattern within a RID
// slice (params: lo, hi) — the read-only form of the MV update, with
// the same per-CID guard.
func (d *Detector) genMVRIDsSlice() string {
	// Flat semi-join form: the data slice joins enc directly instead of
	// sitting under an outer EXISTS, so the scan of the slice is a plain
	// conjunctive filter the engine's batch kernels handle — the EXISTS
	// wrapper forced the last row-at-a-time data scan in the parallel
	// statement set. DISTINCT collapses tuples matching several
	// patterns; the parallel driver sorts and dedups the merged slices
	// anyway, so the result contract is unchanged.
	cidGuard := fmt.Sprintf("EXISTS (SELECT 1 FROM %s g WHERE g.CID = c.CID)", d.auxTable)
	return fmt.Sprintf("SELECT DISTINCT t.%s FROM %s t, %s c WHERE t.%s >= ? AND t.%s <= ? AND %s AND %s",
		ColRID, d.dataTable, d.encTable, ColRID, ColRID, cidGuard, d.auxProbe(d.auxTable))
}

// auxProbe renders "t matches some (cid, p) in table for c's CID": the
// equality of every blanked projection with the stored pattern. The
// whole conjunction is equality-over-outer-expressions, which the
// engine decorrelates into a single hash probe.
func (d *Detector) auxProbe(table string) string {
	conds := []string{"a.CID = c.CID"}
	for _, at := range d.schema.Attrs {
		conds = append(conds, fmt.Sprintf("a.%s_P = %s", at.Name, d.caseProj("L", at.Name)))
	}
	return fmt.Sprintf("EXISTS (SELECT 1 FROM %s a WHERE %s)", table, strings.Join(conds, " AND "))
}

// genMVUpdate flags every tuple matching an Aux pattern: MV := 1. The
// same per-CID guard as genMVSetOldRows leads the conjunction: it
// depends only on the pattern row, so the engine's planner evaluates
// it once per pattern and skips the projection probes for every data
// tuple when a CID has no violating groups at all.
func (d *Detector) genMVUpdate() string {
	cidGuard := fmt.Sprintf("EXISTS (SELECT 1 FROM %s g WHERE g.CID = c.CID)", d.auxTable)
	return fmt.Sprintf("UPDATE %s t SET %s = 1 WHERE EXISTS (SELECT 1 FROM %s c WHERE %s AND %s)",
		d.dataTable, ColMV, d.encTable, cidGuard, d.auxProbe(d.auxTable))
}

// --- advisory check (Check) ---
//
// The check statements run the two fixed detection queries over the
// staging table alone, against the *current* flags and Aux — no merge,
// no recompute, no writes outside the staging table. They back the
// server's high-rate check endpoint: "would this tuple violate Σ?"
// answered at read cost.

// genCheckSVRIDs is Qsv over the staged batch: the staged tuples that
// violate some pattern constraint all by themselves. Exact — SV is a
// per-tuple property, so staging answers it as well as merging would.
func (d *Detector) genCheckSVRIDs() string {
	return fmt.Sprintf("SELECT DISTINCT t.%s FROM %s t, %s c\nWHERE %s\n  AND (%s)",
		ColRID, d.insTable, d.encTable, d.lhsMatch(), d.rhsViolate())
}

// genCheckMVRIDs finds the staged tuples whose blanked projection
// matches a currently-violating group (an Aux(D) member) — the same
// probe the incremental step's mvSetNew runs after a merge, minus the
// merge. A tuple that would *newly* tip a clean group into violation
// is not reported; that transition needs the recompute in ApplyUpdates.
func (d *Detector) genCheckMVRIDs() string {
	cidGuard := fmt.Sprintf("EXISTS (SELECT 1 FROM %s g WHERE g.CID = c.CID)", d.auxTable)
	return fmt.Sprintf("SELECT DISTINCT t.%s FROM %s t, %s c WHERE %s AND %s",
		ColRID, d.insTable, d.encTable, cidGuard, d.auxProbe(d.auxTable))
}

// genKeys collects the group keys touched by an update batch: the
// (cid, p) projections of every (tuple, pattern) match in the batch.
func (d *Detector) genKeys(sourceTable, extraWhere string) string {
	cols := []string{"c.CID"}
	for _, a := range d.schema.Attrs {
		cols = append(cols, d.caseProj("L", a.Name))
	}
	where := d.lhsMatch()
	if extraWhere != "" {
		where = extraWhere + "\n    AND " + where
	}
	return fmt.Sprintf("INSERT INTO %s SELECT DISTINCT %s FROM %s t, %s c WHERE %s",
		d.keysTable, strings.Join(cols, ",\n    "), sourceTable, d.encTable, where)
}

// auxMatch renders the column-wise equality of two Aux-shaped rows
// (alias a matching the bare table named target).
func (d *Detector) auxMatch(alias, target string) string {
	conds := []string{fmt.Sprintf("%s.CID = %s.CID", alias, target)}
	for _, at := range d.schema.Attrs {
		conds = append(conds, fmt.Sprintf("%s.%s_P = %s.%s_P", alias, at.Name, target, at.Name))
	}
	return strings.Join(conds, " AND ")
}

// genAuxDeleteAffected drops the Aux rows whose group key was touched;
// genAuxRecompute rebuilds exactly those groups from the current data.
func (d *Detector) genAuxDeleteAffected() string {
	return fmt.Sprintf("DELETE FROM %s WHERE EXISTS (SELECT 1 FROM %s k WHERE %s)",
		d.auxTable, d.keysTable, d.auxMatch("k", d.auxTable))
}

// genAuxSaveOld snapshots the touched Aux rows before the recompute so
// the insert path can tell groups that *became* violating apart from
// groups that already were.
func (d *Detector) genAuxSaveOld() string {
	cols := d.groupCols() // m.CID, m.A_P... — reuse with alias m
	sel := make([]string, len(cols))
	for i, c := range cols {
		sel[i] = strings.Replace(c, "m.", "m0.", 1)
	}
	return fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s m0 WHERE EXISTS (SELECT 1 FROM %s k WHERE %s)",
		d.auxOldTable, strings.Join(sel, ", "), d.auxTable, d.keysTable, d.auxMatch("k", "m0"))
}

// genAuxNewCompute collects the recomputed groups that were not
// violating before: rows of Aux matching a touched key but absent from
// the snapshot. Only the members of these groups can need an MV flip
// among pre-existing tuples.
func (d *Detector) genAuxNewCompute() string {
	cols := d.groupCols()
	sel := make([]string, len(cols))
	for i, c := range cols {
		sel[i] = strings.Replace(c, "m.", "m0.", 1)
	}
	return fmt.Sprintf(
		"INSERT INTO %s SELECT %s FROM %s m0 WHERE EXISTS (SELECT 1 FROM %s k WHERE %s) AND NOT EXISTS (SELECT 1 FROM %s o WHERE %s)",
		d.auxNewTable, strings.Join(sel, ", "), d.auxTable,
		d.keysTable, d.auxMatch("k", "m0"),
		d.auxOldTable, d.auxMatch("o", "m0"))
}

func (d *Detector) genAuxRecompute() string {
	return d.genQmvInsertRestricted(d.keysProbe())
}

// keysProbe renders "the (c, t) pair projects onto a touched group
// key" — a decorrelated hash probe placed first in conjunctions so
// untouched pairs are dismissed in O(1).
func (d *Detector) keysProbe() string {
	conds := []string{"k.CID = c.CID"}
	for _, a := range d.schema.Attrs {
		conds = append(conds, fmt.Sprintf("k.%s_P = %s", a.Name, d.caseProj("L", a.Name)))
	}
	return fmt.Sprintf("EXISTS (SELECT 1 FROM %s k WHERE %s)", d.keysTable, strings.Join(conds, " AND "))
}

// genMVSetNewRows flags freshly merged tuples (RID ≥ the ?-bound batch
// start) that match any Aux pattern. The RID range guard keeps the
// projection probes off the pre-existing rows entirely.
func (d *Detector) genMVSetNewRows() string {
	return fmt.Sprintf(
		"UPDATE %s t SET %s = 1 WHERE t.%s >= ? AND t.%s = 0 AND EXISTS (SELECT 1 FROM %s c WHERE %s)",
		d.dataTable, ColMV, ColRID, ColMV, d.encTable, d.auxProbe(d.auxTable))
}

// genMVSetOldRows flags pre-existing clean tuples whose group *became*
// violating — members of an aux_new group. A per-CID guard dismisses
// (tuple, pattern) pairs in O(1) when aux_new has nothing for the CID,
// which is the common case; with aux_new empty the statement degrades
// to one cheap probe per pair.
func (d *Detector) genMVSetOldRows() string {
	cidGuard := fmt.Sprintf("EXISTS (SELECT 1 FROM %s g WHERE g.CID = c.CID)", d.auxNewTable)
	return fmt.Sprintf(
		"UPDATE %s t SET %s = 1 WHERE t.%s < ? AND t.%s = 0 AND EXISTS (SELECT 1 FROM %s c WHERE %s AND %s)",
		d.dataTable, ColMV, ColRID, ColMV, d.encTable, cidGuard, d.auxProbe(d.auxNewTable))
}

// genMVClear clears MV on tuples in touched groups that no longer
// match any Aux pattern at all (they may still be violating through an
// untouched group, which the NOT EXISTS over the full Aux preserves).
func (d *Detector) genMVClear() string {
	return fmt.Sprintf(
		"UPDATE %s t SET %s = 0 WHERE t.%s = 1 AND EXISTS (SELECT 1 FROM %s c WHERE %s) AND NOT EXISTS (SELECT 1 FROM %s c WHERE %s)",
		d.dataTable, ColMV, ColMV, d.encTable, d.keysProbe(), d.encTable, d.auxProbe(d.auxTable))
}
