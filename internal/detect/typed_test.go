package detect

import (
	"testing"

	"ecfd/internal/core"
	"ecfd/internal/relation"
)

// intSchema exercises the '@'-blanking machinery over non-text
// attributes: the Qmv macro and the Aux probes must agree on the
// TOTEXT rendering of INTEGER and REAL values.
func intSchema() *relation.Schema {
	return relation.MustSchema("meter",
		relation.Attribute{Name: "GRID", Kind: relation.KindInt},
		relation.Attribute{Name: "NODE", Kind: relation.KindInt},
		relation.Attribute{Name: "VOLT", Kind: relation.KindFloat},
		relation.Attribute{Name: "ZONE", Kind: relation.KindText},
	)
}

func intSigma(s *relation.Schema) []*core.ECFD {
	return []*core.ECFD{
		{
			// Node determines voltage within a grid (embedded FD over
			// integer LHS).
			Name: "fd", Schema: s, X: []string{"GRID", "NODE"}, Y: []string{"VOLT"},
			Tableau: []core.PatternTuple{{
				LHS: []core.Pattern{core.Any(), core.Any()},
				RHS: []core.Pattern{core.Any()},
			}},
		},
		{
			// Grid 1 runs at 110 or 220 volts.
			Name: "volts", Schema: s, X: []string{"GRID"}, YP: []string{"VOLT"},
			Tableau: []core.PatternTuple{{
				LHS: []core.Pattern{core.InSet(relation.Int(1))},
				RHS: []core.Pattern{core.InSet(relation.Float(110), relation.Float(220))},
			}},
		},
		{
			// Zones outside the core are on grids other than 9.
			Name: "zones", Schema: s, X: []string{"ZONE"}, YP: []string{"GRID"},
			Tableau: []core.PatternTuple{{
				LHS: []core.Pattern{core.NotInStrings("core")},
				RHS: []core.Pattern{core.NotInSet(relation.Int(9))},
			}},
		},
	}
}

func TestTypedAttributesBatch(t *testing.T) {
	s := intSchema()
	sigma := intSigma(s)
	inst := relation.New(s)
	row := func(grid, node int64, volt float64, zone string) relation.Tuple {
		return relation.Tuple{relation.Int(grid), relation.Int(node), relation.Float(volt), relation.Text(zone)}
	}
	inst.MustInsert(row(1, 10, 110, "core")) // clean
	inst.MustInsert(row(1, 10, 220, "core")) // FD conflict with row 0 (same grid+node)
	inst.MustInsert(row(1, 11, 400, "core")) // volts pattern violation (SV)
	inst.MustInsert(row(9, 12, 110, "edge")) // zones violation (SV): edge on grid 9
	inst.MustInsert(row(2, 13, 110, "edge")) // clean

	naive, err := core.NaiveDetect(inst, sigma)
	if err != nil {
		t.Fatal(err)
	}
	d := newDetector(t, sigma, inst)
	if _, err := d.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	flags, err := d.FlagsByRID()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inst.Len(); i++ {
		got := flags[int64(i+1)]
		if got[0] != naive.SV[i] || got[1] != naive.MV[i] {
			t.Errorf("row %d: SQL (SV=%v MV=%v) vs naive (SV=%v MV=%v)",
				i, got[0], got[1], naive.SV[i], naive.MV[i])
		}
	}
	if !flags[1][1] || !flags[2][1] {
		t.Error("integer-keyed FD group must be flagged MV")
	}
	if !flags[3][0] || !flags[4][0] {
		t.Error("pattern violations over numeric RHS must be flagged SV")
	}
}

func TestTypedAttributesIncremental(t *testing.T) {
	s := intSchema()
	sigma := intSigma(s)
	inst := relation.New(s)
	inst.MustInsert(relation.Tuple{relation.Int(1), relation.Int(10), relation.Float(110), relation.Text("core")})
	d := newDetector(t, sigma, inst)
	if st, err := d.BatchDetect(); err != nil || st.Total != 0 {
		t.Fatalf("clean base: %+v %v", st, err)
	}

	// Insert a conflicting reading: same (GRID, NODE), new voltage.
	batch := relation.New(s)
	batch.MustInsert(relation.Tuple{relation.Int(1), relation.Int(10), relation.Float(220), relation.Text("core")})
	rids, _, err := d.InsertTuples(batch)
	if err != nil {
		t.Fatal(err)
	}
	if sv, mv, total, _ := d.Counts(); sv != 0 || mv != 2 || total != 2 {
		t.Errorf("after conflicting insert: SV=%d MV=%d total=%d, want 0/2/2", sv, mv, total)
	}

	// Remove it again: the group heals.
	if _, err := d.DeleteTuples(rids); err != nil {
		t.Fatal(err)
	}
	if _, _, total, _ := d.Counts(); total != 0 {
		t.Errorf("after delete: %d violations, want 0", total)
	}
}

// TestNullXGroupsThroughSQL: rows with NULL in the FD LHS group
// together (the nullMark sentinel), matching the naive oracle.
func TestNullXGroupsThroughSQL(t *testing.T) {
	s := relation.MustSchema("n",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText},
	)
	fd := (&core.FD{Schema: s, X: []string{"A"}, Y: []string{"B"}}).AsECFD()
	fd.Name = "fd"
	inst := relation.New(s)
	inst.MustInsert(relation.Tuple{relation.Null(), relation.Text("x")})
	inst.MustInsert(relation.Tuple{relation.Null(), relation.Text("y")})
	inst.MustInsert(relation.Tuple{relation.Text("k"), relation.Text("x")})

	naive, err := core.NaiveDetect(inst, []*core.ECFD{fd})
	if err != nil {
		t.Fatal(err)
	}
	d := newDetector(t, []*core.ECFD{fd}, inst)
	if _, err := d.BatchDetect(); err != nil {
		t.Fatal(err)
	}
	flags, err := d.FlagsByRID()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inst.Len(); i++ {
		got := flags[int64(i+1)]
		if got[1] != naive.MV[i] {
			t.Errorf("row %d: SQL MV=%v vs naive MV=%v", i, got[1], naive.MV[i])
		}
	}
	if !flags[1][1] || !flags[2][1] || flags[3][1] {
		t.Errorf("NULL-keyed group must be MV, k-group clean: %v", flags)
	}
}
