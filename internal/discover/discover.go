// Package discover implements a first-order profiler for the paper's
// stated future work: "find effective methods for automatically
// discovering eCFDs from data samples" (§VIII). The full treatment was
// deferred to a later publication; this package mines the two
// single-attribute shapes the paper's own examples are built from:
//
//   - conditional FDs with exception sets — (R: [A] → [B], ∅,
//     {(∉E ‖ _)}) where E is the (small) set of A-values on which the
//     FD A → B fails. With E = {NYC, LI} over cust this is exactly
//     φ1's first pattern tuple.
//   - value bindings with disjunction — pattern rows (∈{a} ‖ ∈S) where
//     S is the (small) set of B-values co-occurring with a. With
//     singleton S these are classic CFD constants (Albany ‖ 518); with
//     |S| > 1 they are the eCFD disjunctions of φ2 (NYC ‖ {212, …}).
//
// Everything discovered holds on the sample by construction; like all
// dependency mining, the output is a *candidate* set for a human (or
// the sat/implication analyses) to vet before use in cleaning.
package discover

import (
	"fmt"
	"sort"

	"ecfd/internal/core"
	"ecfd/internal/relation"
)

// Options tunes the search.
type Options struct {
	// MinSupport is the least number of tuples a pattern row must
	// cover to be reported (default 10).
	MinSupport int
	// MaxRHSSet bounds the disjunction size of a binding's RHS set
	// (default 8).
	MaxRHSSet int
	// MaxExceptions bounds the ∉E exception set of a conditional FD
	// (default 5); an FD needing more exceptions is not reported.
	MaxExceptions int
	// MaxBindings bounds the number of binding rows per attribute pair
	// (default 20), keeping tableaux reviewable.
	MaxBindings int
}

func (o Options) withDefaults() Options {
	if o.MinSupport <= 0 {
		o.MinSupport = 10
	}
	if o.MaxRHSSet <= 0 {
		o.MaxRHSSet = 8
	}
	if o.MaxExceptions <= 0 {
		o.MaxExceptions = 5
	}
	if o.MaxBindings <= 0 {
		o.MaxBindings = 20
	}
	return o
}

// Discover mines single-attribute eCFDs from the instance. The result
// is sorted by (X attribute, Y attribute) and every returned
// constraint is satisfied by the sample.
func Discover(inst *relation.Relation, opts Options) ([]*core.ECFD, error) {
	if inst.Len() == 0 {
		return nil, fmt.Errorf("discover: empty instance")
	}
	opts = opts.withDefaults()
	schema := inst.Schema
	var out []*core.ECFD

	for xi := 0; xi < schema.Width(); xi++ {
		for yi := 0; yi < schema.Width(); yi++ {
			if xi == yi {
				continue
			}
			out = append(out, minePair(inst, xi, yi, opts)...)
		}
	}
	return out, nil
}

// group aggregates, for one A-value, the multiset of co-occurring
// B-values. NULL B-values are tracked separately: they count toward
// FD violations (SQL grouping treats NULLs as equal) but can never
// appear inside a pattern set.
type group struct {
	a        relation.Value
	size     int
	bVals    []relation.Value
	bCount   map[string]int
	hasNullB bool
}

// minePair mines A → B. It can yield up to two constraints, mirroring
// the paper's φ1/φ2 split over cust: an FD-bearing eCFD (exception-set
// row plus singleton bindings, whose groups each carry one B-value so
// the embedded FD holds) and a Yp-only eCFD holding the disjunction
// bindings (multi-valued groups, where an embedded FD would be violated
// by the sample itself).
func minePair(inst *relation.Relation, xi, yi int, opts Options) []*core.ECFD {
	groups := make(map[string]*group)
	var order []string
	for _, row := range inst.Rows {
		a, b := row[xi], row[yi]
		k := a.Key() // NULL A-values form their own group, as in SQL
		g := groups[k]
		if g == nil {
			g = &group{a: a, bCount: make(map[string]int)}
			groups[k] = g
			order = append(order, k)
		}
		g.size++
		if b.IsNull() {
			g.hasNullB = true
			continue
		}
		bk := b.Key()
		if g.bCount[bk] == 0 {
			g.bVals = append(g.bVals, b)
		}
		g.bCount[bk]++
	}
	sort.Strings(order)

	// distinctB counts the FD-relevant number of B classes in a group
	// (NULLs form one class of their own).
	distinctB := func(g *group) int {
		n := len(g.bVals)
		if g.hasNullB {
			n++
		}
		return n
	}

	schema := inst.Schema
	xName, yName := schema.Attrs[xi].Name, schema.Attrs[yi].Name

	// Exception set E: A-values whose groups carry more than one
	// B-class, on which the FD A → B fails. A violating NULL-A group
	// cannot be excluded by a pattern (∉E never matches NULL), which is
	// fine whenever E is non-empty; with E = ∅ the row would be a plain
	// wildcard that does match NULL, so the FD row must be dropped.
	var exceptions []relation.Value
	nullABad := false
	supported := 0
	for _, k := range order {
		g := groups[k]
		switch {
		case distinctB(g) <= 1:
			supported += g.size
		case g.a.IsNull():
			nullABad = true
		default:
			exceptions = append(exceptions, g.a)
		}
	}
	fdRow := len(exceptions) <= opts.MaxExceptions && supported >= opts.MinSupport &&
		!(nullABad && len(exceptions) == 0)

	// Binding rows: well-supported A-values with a small B-value set,
	// split by whether the group is single-valued (FD-compatible) or a
	// disjunction (Yp-only).
	type binding struct {
		a    relation.Value
		set  []relation.Value
		size int
	}
	var singles, multis []binding
	for _, k := range order {
		g := groups[k]
		// A binding pattern (∈{a} ‖ ∈S) cannot mention NULLs on either
		// side, and a group with NULL B-values would violate its own
		// binding; skip those groups entirely.
		if g.a.IsNull() || g.hasNullB || len(g.bVals) == 0 ||
			g.size < opts.MinSupport || len(g.bVals) > opts.MaxRHSSet {
			continue
		}
		b := binding{a: g.a, set: append([]relation.Value(nil), g.bVals...), size: g.size}
		if len(g.bVals) == 1 {
			singles = append(singles, b)
		} else {
			multis = append(multis, b)
		}
	}
	trim := func(bs []binding) []binding {
		sort.Slice(bs, func(i, j int) bool { return bs[i].size > bs[j].size })
		if len(bs) > opts.MaxBindings {
			bs = bs[:opts.MaxBindings]
		}
		sort.Slice(bs, func(i, j int) bool { return relation.Compare(bs[i].a, bs[j].a) < 0 })
		return bs
	}
	singles, multis = trim(singles), trim(multis)

	var out []*core.ECFD

	if fdRow || len(singles) > 0 {
		e := &core.ECFD{
			Name:   fmt.Sprintf("d_%s_%s", xName, yName),
			Schema: schema,
			X:      []string{xName},
			Y:      []string{yName},
		}
		if fdRow {
			var lhs core.Pattern
			if len(exceptions) == 0 {
				lhs = core.Any()
			} else {
				lhs = core.NotInSet(exceptions...)
			}
			e.Tableau = append(e.Tableau, core.PatternTuple{
				LHS: []core.Pattern{lhs},
				RHS: []core.Pattern{core.Any()},
			})
		}
		for _, b := range singles {
			e.Tableau = append(e.Tableau, core.PatternTuple{
				LHS: []core.Pattern{core.InSet(b.a)},
				RHS: []core.Pattern{core.InSet(b.set...)},
			})
		}
		if e.Validate() == nil {
			out = append(out, e)
		}
	}

	if len(multis) > 0 {
		e := &core.ECFD{
			Name:   fmt.Sprintf("d_%s_%s_any", xName, yName),
			Schema: schema,
			X:      []string{xName},
			YP:     []string{yName},
		}
		for _, b := range multis {
			e.Tableau = append(e.Tableau, core.PatternTuple{
				LHS: []core.Pattern{core.InSet(b.a)},
				RHS: []core.Pattern{core.InSet(b.set...)},
			})
		}
		if e.Validate() == nil {
			out = append(out, e)
		}
	}
	return out
}
