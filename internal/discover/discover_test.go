package discover

import (
	"math/rand"
	"strings"
	"testing"

	"ecfd/internal/core"
	"ecfd/internal/gen"
	"ecfd/internal/relation"
)

// TestDiscoveredConstraintsHoldOnSample: the fundamental soundness
// property — everything Discover returns is satisfied by the data it
// was mined from.
func TestDiscoveredConstraintsHoldOnSample(t *testing.T) {
	inst := gen.Dataset(gen.Config{Rows: 4000, Noise: 0, Seed: 3})
	found, err := Discover(inst, Options{MinSupport: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) == 0 {
		t.Fatal("clean structured data must yield constraints")
	}
	v, err := core.NaiveDetect(inst, found)
	if err != nil {
		t.Fatal(err)
	}
	if n := v.Count(); n != 0 {
		t.Fatalf("discovered constraints violated by their own sample: %d rows, %v", n, v.PerConstraint)
	}
}

// TestDiscoverFindsPaperStructure: on the §VI generator's clean data,
// discovery recovers the φ1/φ2 shapes — CT → AC holds outside
// {NYC, LI}, and NYC binds to its area-code disjunction.
func TestDiscoverFindsPaperStructure(t *testing.T) {
	inst := gen.Dataset(gen.Config{Rows: 6000, Noise: 0, Seed: 5})
	found, err := Discover(inst, Options{MinSupport: 15})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*core.ECFD{}
	for _, e := range found {
		byName[e.Name] = e
	}

	ctac := byName["d_CT_AC"]
	if ctac == nil {
		t.Fatal("expected a CT → AC constraint")
	}
	first := ctac.Tableau[0]
	if first.LHS[0].Op != core.NotIn {
		t.Fatalf("CT → AC must carry an exception-set row, got %v", first.LHS[0])
	}
	exc := map[string]bool{}
	for _, v := range first.LHS[0].Set {
		exc[v.S] = true
	}
	if !exc["NYC"] || !exc["LI"] {
		t.Errorf("exception set must contain NYC and LI: %v", first.LHS[0].Set)
	}

	disj := byName["d_CT_AC_any"]
	if disj == nil {
		t.Fatal("expected a CT ⇒ AC-disjunction constraint (φ2 shape)")
	}
	foundNYC := false
	for _, tp := range disj.Tableau {
		if v, ok := tp.LHS[0].IsConst(); ok && v.S == "NYC" {
			foundNYC = true
			if len(tp.RHS[0].Set) != 5 {
				t.Errorf("NYC should bind to its 5 area codes, got %v", tp.RHS[0].Set)
			}
		}
	}
	if !foundNYC {
		t.Error("missing the NYC disjunction row")
	}

	// The item → type FD must be found exception-free.
	itemType := byName["d_ITEM_TYPE"]
	if itemType == nil {
		t.Fatal("expected ITEM → TYPE")
	}
	if itemType.Tableau[0].LHS[0].Op != core.Wildcard {
		t.Errorf("ITEM → TYPE must be unconditional, got %v", itemType.Tableau[0].LHS[0])
	}
}

// TestDiscoverRespectsBounds: support and set-size limits prune.
func TestDiscoverRespectsBounds(t *testing.T) {
	s := relation.MustSchema("b",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	inst := relation.New(s)
	// One well-supported binding (a→x ×12) and one rare pair (c→y ×2).
	for i := 0; i < 12; i++ {
		inst.MustInsert(relation.Tuple{relation.Text("a"), relation.Text("x")})
	}
	inst.MustInsert(relation.Tuple{relation.Text("c"), relation.Text("y")})
	inst.MustInsert(relation.Tuple{relation.Text("c"), relation.Text("y")})

	found, err := Discover(inst, Options{MinSupport: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range found {
		if e.Name != "d_A_B" {
			continue
		}
		for _, tp := range e.Tableau[1:] { // skip the FD row
			if v, ok := tp.LHS[0].IsConst(); ok && v.S == "c" {
				t.Error("under-supported binding must be pruned")
			}
		}
	}

	if _, err := Discover(relation.New(s), Options{}); err == nil {
		t.Error("empty instance must error")
	}
}

// TestDiscoverSkipsNoisyPairs: when the exception set would exceed the
// bound, no FD row is emitted for the pair.
func TestDiscoverSkipsNoisyPairs(t *testing.T) {
	s := relation.MustSchema("n",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	inst := relation.New(s)
	// Every A value maps to two B values: the FD fails everywhere.
	for i := 0; i < 10; i++ {
		a := relation.Text(strings.Repeat("k", i+1))
		inst.MustInsert(relation.Tuple{a, relation.Text("p")})
		inst.MustInsert(relation.Tuple{a, relation.Text("q")})
	}
	found, err := Discover(inst, Options{MinSupport: 2, MaxExceptions: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range found {
		if e.Name == "d_A_B" && len(e.Y) > 0 {
			t.Errorf("no FD-bearing constraint should survive 10 exceptions: %s", e)
		}
	}
}

// TestDiscoverNullsIgnored: NULLs contribute to no group.
func TestDiscoverNullsIgnored(t *testing.T) {
	s := relation.MustSchema("z",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	inst := relation.New(s)
	for i := 0; i < 12; i++ {
		inst.MustInsert(relation.Tuple{relation.Text("a"), relation.Text("x")})
	}
	inst.MustInsert(relation.Tuple{relation.Null(), relation.Text("x")})
	inst.MustInsert(relation.Tuple{relation.Text("a"), relation.Null()})
	found, err := Discover(inst, Options{MinSupport: 5})
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.NaiveDetect(inst, found)
	if err != nil {
		t.Fatal(err)
	}
	// The NULL rows do not match any In-pattern, so nothing violates.
	if v.Count() != 0 {
		t.Errorf("NULL handling broke soundness: %d violations", v.Count())
	}
}

// TestDiscoverPropertyHoldsOnSample is the randomized soundness
// property: whatever the workload — row count, noise level, support
// and size bounds — every constraint Discover returns must (a) pass
// Validate and (b) hold on the exact relation it was mined from, even
// when that relation is noisy (the miner only reports patterns that
// are violation-free on the sample by construction).
func TestDiscoverPropertyHoldsOnSample(t *testing.T) {
	rng := rand.New(rand.NewSource(167))
	for trial := 0; trial < 8; trial++ {
		inst := gen.Dataset(gen.Config{
			Rows:  500 + rng.Intn(1500),
			Noise: float64(rng.Intn(10)),
			Seed:  int64(trial + 11),
		})
		opts := Options{
			MinSupport:    5 + rng.Intn(25),
			MaxRHSSet:     2 + rng.Intn(10),
			MaxExceptions: 1 + rng.Intn(6),
			MaxBindings:   5 + rng.Intn(20),
		}
		found, err := Discover(inst, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, e := range found {
			if err := e.Validate(); err != nil {
				t.Fatalf("trial %d: discovered constraint fails validation: %v\n%s", trial, err, e)
			}
		}
		if len(found) == 0 {
			continue // heavy noise with tight bounds can mine nothing
		}
		v, err := core.NaiveDetect(inst, found)
		if err != nil {
			t.Fatal(err)
		}
		if n := v.Count(); n != 0 {
			t.Fatalf("trial %d: discovered constraints violated by their own sample (%d violating rows, opts=%+v)",
				trial, n, opts)
		}
	}
}

// TestDiscoverRediscoversRepairedData closes the loop with the repair
// package's contract: a repaired (violation-free) instance must yield
// constraints that hold on it — and mining clean data at descending
// support must be monotone in the candidate count (a looser support
// bound can only add candidates).
func TestDiscoverSupportMonotonicity(t *testing.T) {
	inst := gen.Dataset(gen.Config{Rows: 3000, Noise: 0, Seed: 29})
	prev := -1
	for _, sup := range []int{80, 40, 20, 10} {
		found, err := Discover(inst, Options{MinSupport: sup})
		if err != nil {
			t.Fatal(err)
		}
		v, err := core.NaiveDetect(inst, found)
		if err != nil {
			t.Fatal(err)
		}
		if v.Count() != 0 {
			t.Fatalf("support %d: mined constraints violated by the sample", sup)
		}
		if prev >= 0 && len(found) < prev {
			t.Fatalf("support %d mined %d constraints, fewer than the tighter bound's %d", sup, len(found), prev)
		}
		prev = len(found)
	}
}
