package gen

import (
	"fmt"
	"math/rand"

	"ecfd/internal/core"
	"ecfd/internal/relation"
)

// Schema returns the extended cust relation of §VI:
// cust(AC, PN, NM, STR, CT, ZIP, ITEM, TYPE, PRICE).
func Schema() *relation.Schema {
	text := func(n string) relation.Attribute {
		return relation.Attribute{Name: n, Kind: relation.KindText}
	}
	return relation.MustSchema("cust",
		text("AC"), text("PN"), text("NM"), text("STR"), text("CT"),
		text("ZIP"), text("ITEM"), text("TYPE"), text("PRICE"),
	)
}

// Constraints returns the Σ of 10 eCFDs used throughout the
// experiments, "expressing real-life semantics of the real-life data,
// including the two eCFDs of Fig. 2".
func Constraints() []*core.ECFD {
	s := Schema()
	in := core.InStrings
	notIn := core.NotInStrings
	any := core.Any()

	var nycCodes, liCodes []string
	nycCodes = append(nycCodes, cities[0].AreaCodes...)
	liCodes = append(liCodes, cities[1].AreaCodes...)

	// φ1 (Fig. 2): outside NYC/LI the city determines the area code,
	// and three capital-district cities are pinned to 518.
	phi1 := &core.ECFD{
		Name: "phi1", Schema: s, X: []string{"CT"}, Y: []string{"AC"},
		Tableau: []core.PatternTuple{
			{LHS: []core.Pattern{notIn("NYC", "LI")}, RHS: []core.Pattern{any}},
			{LHS: []core.Pattern{in("Albany", "Troy", "Colonie")}, RHS: []core.Pattern{in("518")}},
		},
	}
	// φ2 (Fig. 2): NYC's area codes.
	phi2 := &core.ECFD{
		Name: "phi2", Schema: s, X: []string{"CT"}, YP: []string{"AC"},
		Tableau: []core.PatternTuple{
			{LHS: []core.Pattern{in("NYC")}, RHS: []core.Pattern{in(nycCodes...)}},
		},
	}
	// φ3: Long Island's area codes.
	phi3 := &core.ECFD{
		Name: "phi3", Schema: s, X: []string{"CT"}, YP: []string{"AC"},
		Tableau: []core.PatternTuple{
			{LHS: []core.Pattern{in("LI")}, RHS: []core.Pattern{in(liCodes...)}},
		},
	}
	// φ4: the ZIP code determines the city (plain FD as eCFD).
	phi4 := &core.ECFD{
		Name: "phi4", Schema: s, X: []string{"ZIP"}, Y: []string{"CT"},
		Tableau: []core.PatternTuple{
			{LHS: []core.Pattern{any}, RHS: []core.Pattern{any}},
		},
	}
	// φ5: capital-district ZIP pools — each city's ZIP codes come from
	// its own prefix (enumerated as full codes, the sets of §II).
	phi5 := &core.ECFD{
		Name: "phi5", Schema: s, X: []string{"CT"}, YP: []string{"ZIP"},
		Tableau: []core.PatternTuple{
			{LHS: []core.Pattern{in("Albany")}, RHS: []core.Pattern{in(zipPool("122")...)}},
			{LHS: []core.Pattern{in("Colonie")}, RHS: []core.Pattern{in(zipPool("118")...)}},
			{LHS: []core.Pattern{in("Troy")}, RHS: []core.Pattern{in(zipPool("121")...)}},
		},
	}
	// φ6: the item determines its type.
	phi6 := &core.ECFD{
		Name: "phi6", Schema: s, X: []string{"ITEM"}, Y: []string{"TYPE"},
		Tableau: []core.PatternTuple{
			{LHS: []core.Pattern{any}, RHS: []core.Pattern{any}},
		},
	}
	// φ7: CD price bands.
	phi7 := &core.ECFD{
		Name: "phi7", Schema: s, X: []string{"TYPE"}, YP: []string{"PRICE"},
		Tableau: []core.PatternTuple{
			{LHS: []core.Pattern{in("cd")}, RHS: []core.Pattern{in(cdPrices...)}},
		},
	}
	// φ8: DVD price bands.
	phi8 := &core.ECFD{
		Name: "phi8", Schema: s, X: []string{"TYPE"}, YP: []string{"PRICE"},
		Tableau: []core.PatternTuple{
			{LHS: []core.Pattern{in("dvd")}, RHS: []core.Pattern{in(dvdPrices...)}},
		},
	}
	// φ9: everything that is not a CD or DVD sells at book prices
	// (inequality on the LHS — the S̄ patterns of §II).
	phi9 := &core.ECFD{
		Name: "phi9", Schema: s, X: []string{"TYPE"}, YP: []string{"PRICE"},
		Tableau: []core.PatternTuple{
			{LHS: []core.Pattern{notIn("cd", "dvd")}, RHS: []core.Pattern{in(bookPrices...)}},
		},
	}
	// φ10: the phone number (AC, PN) determines the customer's city and
	// street — the near-key FD of the original CFD paper's cust schema.
	phi10 := &core.ECFD{
		Name: "phi10", Schema: s, X: []string{"AC", "PN"}, Y: []string{"CT", "STR"},
		Tableau: []core.PatternTuple{
			{LHS: []core.Pattern{any, any}, RHS: []core.Pattern{any, any}},
		},
	}
	return []*core.ECFD{phi1, phi2, phi3, phi4, phi5, phi6, phi7, phi8, phi9, phi10}
}

// zipPool enumerates every ZIP code possible for a prefix —
// <prefix>00 … <prefix>99 — covering both the clean and the reserved
// corrupt suffix ranges (a corrupted ZIP is wrong because it belongs to
// another city, not because the suffix is out of range).
func zipPool(prefix string) []string {
	out := make([]string, 0, zipSuffixes)
	for i := 0; i < zipSuffixes; i++ {
		out = append(out, fmt.Sprintf("%s%02d", prefix, i))
	}
	return out
}

// ConstraintsScaled returns Constraints() with one eCFD's pattern
// tableau grown to tableauSize rows (Experiment 1, Fig. 5(c)/6(c):
// "We selected an eCFD from Σ and varied its |Tp|"). The added rows mix
// wildcards, positive domain constraints (S) and negative domain
// constraints (S̄) uniformly, as in the paper, and are consistent with
// the reference data so they constrain without mass-flagging clean
// tuples.
func ConstraintsScaled(tableauSize int, seed int64) []*core.ECFD {
	sigma := Constraints()
	if tableauSize <= len(sigma[0].Tableau) {
		return sigma
	}
	rng := rand.New(rand.NewSource(seed))
	phi := sigma[0] // grow φ1: CT → AC
	ups := upstate()
	all := allAreaCodes()
	for len(phi.Tableau) < tableauSize {
		var lhs, rhs core.Pattern
		switch rng.Intn(3) {
		case 0: // wildcard RHS: pure FD enforcement on a city subset
			k := 1 + rng.Intn(3)
			var cts []string
			for _, i := range rng.Perm(len(ups))[:k] {
				cts = append(cts, ups[i].Name)
			}
			lhs = core.InStrings(cts...)
			rhs = core.Any()
		case 1: // S: a few cities bound to their codes
			k := 1 + rng.Intn(3)
			var cts, acs []string
			for _, i := range rng.Perm(len(ups))[:k] {
				cts = append(cts, ups[i].Name)
				acs = append(acs, ups[i].AreaCodes...)
			}
			lhs = core.InStrings(cts...)
			rhs = core.InStrings(acs...)
		default: // S̄: outside NYC/LI (plus a few), only valid codes
			cts := []string{"NYC", "LI"}
			k := 1 + rng.Intn(3)
			for _, i := range rng.Perm(len(ups))[:k] {
				cts = append(cts, ups[i].Name)
			}
			lhs = core.NotInStrings(cts...)
			rhs = core.InStrings(all...)
		}
		phi.Tableau = append(phi.Tableau, core.PatternTuple{
			LHS: []core.Pattern{lhs},
			RHS: []core.Pattern{rhs},
		})
	}
	return sigma
}
