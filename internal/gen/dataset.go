package gen

import (
	"fmt"
	"math/rand"

	"ecfd/internal/relation"
)

// Config parameterizes dataset generation: |D| rows, noise% (the
// percentage of tuples modified to violate some eCFD, 0–100), and the
// RNG seed for reproducibility. PNBase partitions the phone-number
// space so independently generated batches (ΔD⁺) cannot collide on
// (AC, PN) by accident.
type Config struct {
	Rows   int
	Noise  float64
	Seed   int64
	PNBase int64
}

// Dataset generates a cust instance per §VI. Clean tuples satisfy all
// ten constraints of Constraints(); noise% of the tuples are then
// corrupted on the RHS of a randomly chosen eCFD.
func Dataset(cfg Config) *relation.Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := relation.New(Schema())
	out.Rows = make([]relation.Tuple, 0, cfg.Rows)
	for i := 0; i < cfg.Rows; i++ {
		// ~3% repeat purchases: a previous customer buys another item.
		// These share (AC, PN, NM, STR, CT, ZIP) and give the embedded
		// FD of φ10 real groups to watch.
		if len(out.Rows) > 0 && rng.Intn(100) < 3 {
			prev := out.Rows[rng.Intn(len(out.Rows))]
			out.Rows = append(out.Rows, repeatPurchase(rng, prev))
			continue
		}
		out.Rows = append(out.Rows, cleanTuple(rng, cfg.PNBase+int64(i)))
	}
	corrupt := int(float64(cfg.Rows) * cfg.Noise / 100.0)
	for _, i := range rng.Perm(cfg.Rows)[:corrupt] {
		corruptTuple(rng, out.Rows[i])
	}
	return out
}

// Column positions in Schema() order.
const (
	colAC = iota
	colPN
	colNM
	colSTR
	colCT
	colZIP
	colITEM
	colTYPE
	colPRICE
)

func pickCity(rng *rand.Rand) city {
	w := rng.Intn(totalCityWeight)
	for _, c := range cities {
		if w < c.Weight {
			return c
		}
		w -= c.Weight
	}
	return cities[len(cities)-1]
}

// cleanTuple draws a customer+purchase consistent with every
// constraint: the city fixes the area code and the ZIP prefix, the
// item fixes the type, and the type fixes the price band. The phone
// number is unique by construction (sequence-based), so the embedded
// FDs hold with no accidental noise floor.
func cleanTuple(rng *rand.Rand, pn int64) relation.Tuple {
	c := pickCity(rng)
	ac := c.AreaCodes[rng.Intn(len(c.AreaCodes))]
	it := items[rng.Intn(len(items))]
	prices := pricesFor(it.Type)
	t := make(relation.Tuple, 9)
	t[colAC] = relation.Text(ac)
	t[colPN] = relation.Text(fmt.Sprintf("%09d", pn))
	t[colNM] = relation.Text(firstNames[rng.Intn(len(firstNames))])
	t[colSTR] = relation.Text(streets[rng.Intn(len(streets))])
	t[colCT] = relation.Text(c.Name)
	t[colZIP] = relation.Text(fmt.Sprintf("%s%02d", c.ZipPrefix, rng.Intn(zipCleanSuffixes)))
	t[colITEM] = relation.Text(it.Title)
	t[colTYPE] = relation.Text(it.Type)
	t[colPRICE] = relation.Text(prices[rng.Intn(len(prices))])
	return t
}

// repeatPurchase copies the customer identity and buys another item.
func repeatPurchase(rng *rand.Rand, prev relation.Tuple) relation.Tuple {
	t := prev.Clone()
	it := items[rng.Intn(len(items))]
	prices := pricesFor(it.Type)
	t[colITEM] = relation.Text(it.Title)
	t[colTYPE] = relation.Text(it.Type)
	t[colPRICE] = relation.Text(prices[rng.Intn(len(prices))])
	return t
}

// corruptTuple damages the RHS of a randomly chosen eCFD, keeping the
// blast radius of embedded-FD corruption bounded:
//
//   - invalid area code (NYC/LI tuples only — single-tuple violations
//     of φ2/φ3, without cascading through φ1's embedded FD);
//   - out-of-band price ("99.99" violates whichever of φ7/φ8/φ9
//     applies — single-tuple);
//   - foreign ZIP from the reserved corrupt range (violates φ4's
//     embedded FD against the handful of tuples sharing the ZIP, and
//     φ5's pattern for capital-district cities).
func corruptTuple(rng *rand.Rand, t relation.Tuple) {
	ct := t[colCT].S
	isMulti := ct == "NYC" || ct == "LI"
	r := rng.Float64()
	switch {
	case isMulti && r < 0.6:
		t[colAC] = relation.Text(fmt.Sprintf("0%02d", rng.Intn(100)))
	case r < 0.75:
		t[colPRICE] = relation.Text("99.99")
	default:
		other := cities[rng.Intn(len(cities))]
		for other.Name == ct {
			other = cities[rng.Intn(len(cities))]
		}
		suffix := zipCleanSuffixes + rng.Intn(zipCorruptSuffixes)
		t[colZIP] = relation.Text(fmt.Sprintf("%s%02d", other.ZipPrefix, suffix))
	}
}

// Updates generates ΔD⁺: n further tuples with the same noise rate,
// drawn from an independent seed and phone-number range so batches
// never collide with the base data by accident.
func Updates(cfg Config, n int, batch int64) *relation.Relation {
	sub := Config{
		Rows:   n,
		Noise:  cfg.Noise,
		Seed:   cfg.Seed + 7919*(batch+1),
		PNBase: cfg.PNBase + int64(cfg.Rows) + int64(n)*(batch+1),
	}
	return Dataset(sub)
}

// DeleteSample picks n distinct RIDs to delete, uniformly at random.
func DeleteSample(rng *rand.Rand, rids []int64, n int) []int64 {
	if n > len(rids) {
		n = len(rids)
	}
	out := make([]int64, 0, n)
	for _, i := range rng.Perm(len(rids))[:n] {
		out = append(out, rids[i])
	}
	return out
}
