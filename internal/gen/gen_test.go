package gen

import (
	"math/rand"
	"testing"

	"ecfd/internal/core"
)

func TestConstraintsValidate(t *testing.T) {
	sigma := Constraints()
	if len(sigma) != 10 {
		t.Fatalf("Σ has %d eCFDs, want 10 (§VI)", len(sigma))
	}
	for _, e := range sigma {
		if err := e.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
	// Σ includes the Fig. 2 constraints: φ1 with the NotIn row and the
	// capital-district row, φ2 with the NYC disjunction.
	phi1 := sigma[0]
	if phi1.Tableau[0].LHS[0].Op != core.NotIn {
		t.Error("φ1 first pattern must be the S̄ row of Fig. 2")
	}
	phi2 := sigma[1]
	if len(phi2.Tableau[0].RHS[0].Set) != 5 {
		t.Error("φ2 must carry the five NYC area codes")
	}
}

func TestConstraintsAreSatisfiableByCleanData(t *testing.T) {
	inst := Dataset(Config{Rows: 2000, Noise: 0, Seed: 42})
	v, err := core.NaiveDetect(inst, Constraints())
	if err != nil {
		t.Fatal(err)
	}
	if n := v.Count(); n != 0 {
		t.Fatalf("clean dataset has %d violations; per-constraint: %v", n, v.PerConstraint)
	}
}

func TestNoiseProducesBoundedViolations(t *testing.T) {
	const rows = 4000
	inst := Dataset(Config{Rows: rows, Noise: 5, Seed: 42})
	v, err := core.NaiveDetect(inst, Constraints())
	if err != nil {
		t.Fatal(err)
	}
	total := v.Count()
	if total == 0 {
		t.Fatal("5% noise must produce violations")
	}
	// Corruptions are 5% of rows; every corruption should flag at
	// least the corrupted tuple, and FD blast radii are bounded, so the
	// violation set stays in the same order of magnitude.
	if total < rows*3/100 {
		t.Errorf("violations = %d, suspiciously few for 5%% noise on %d rows", total, rows)
	}
	if total > rows*25/100 {
		t.Errorf("violations = %d, mass-flagging detected (blast radius too large)", total)
	}
	if v.CountSV() == 0 || v.CountMV() == 0 {
		t.Errorf("noise must produce both SV (%d) and MV (%d) violations", v.CountSV(), v.CountMV())
	}
}

func TestNoiseMonotonicity(t *testing.T) {
	counts := make([]int, 0, 3)
	for _, noise := range []float64{1, 4, 9} {
		inst := Dataset(Config{Rows: 3000, Noise: noise, Seed: 7})
		v, err := core.NaiveDetect(inst, Constraints())
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, v.Count())
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Errorf("violation counts must grow with noise: %v", counts)
	}
}

func TestDeterminism(t *testing.T) {
	a := Dataset(Config{Rows: 500, Noise: 5, Seed: 9})
	b := Dataset(Config{Rows: 500, Noise: 5, Seed: 9})
	for i := range a.Rows {
		if !a.Rows[i].Equal(b.Rows[i]) {
			t.Fatalf("row %d differs across equal seeds", i)
		}
	}
	c := Dataset(Config{Rows: 500, Noise: 5, Seed: 10})
	same := true
	for i := range a.Rows {
		if !a.Rows[i].Equal(c.Rows[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds must produce different data")
	}
}

func TestConstraintsScaled(t *testing.T) {
	for _, size := range []int{50, 200} {
		sigma := ConstraintsScaled(size, 3)
		if got := len(sigma[0].Tableau); got != size {
			t.Fatalf("scaled tableau has %d rows, want %d", got, size)
		}
		for _, e := range sigma {
			if err := e.Validate(); err != nil {
				t.Fatal(err)
			}
		}
		// Clean data stays clean under the scaled tableau.
		inst := Dataset(Config{Rows: 1500, Noise: 0, Seed: 5})
		v, err := core.NaiveDetect(inst, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if n := v.Count(); n != 0 {
			t.Errorf("|Tp|=%d: clean data has %d violations: %v", size, n, v.PerConstraint)
		}
	}
	// No-op when the requested size is below the current tableau.
	sigma := ConstraintsScaled(1, 3)
	if len(sigma[0].Tableau) != 2 {
		t.Error("scaling below the base size must keep the base tableau")
	}
}

func TestUpdatesIndependentOfBase(t *testing.T) {
	cfg := Config{Rows: 1000, Noise: 5, Seed: 11}
	base := Dataset(cfg)
	up1 := Updates(cfg, 300, 0)
	up2 := Updates(cfg, 300, 1)
	if up1.Len() != 300 || up2.Len() != 300 {
		t.Fatal("update sizes wrong")
	}
	// Batches use disjoint PN ranges: merging must not create new
	// (AC, PN) collisions with differing addresses (φ10 stays clean on
	// clean data).
	merged := base.Clone()
	clean := Dataset(Config{Rows: 1000, Noise: 0, Seed: 11})
	cleanUp := Updates(Config{Rows: 1000, Noise: 0, Seed: 11}, 300, 0)
	merged = clean.Clone()
	merged.Rows = append(merged.Rows, cleanUp.Rows...)
	v, err := core.NaiveDetect(merged, Constraints())
	if err != nil {
		t.Fatal(err)
	}
	if n := v.Count(); n != 0 {
		t.Errorf("clean base + clean batch must stay clean, got %d violations: %v", n, v.PerConstraint)
	}
	_ = base
	_ = up1
	_ = up2
}

func TestDeleteSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rids := []int64{1, 2, 3, 4, 5}
	got := DeleteSample(rng, rids, 3)
	if len(got) != 3 {
		t.Fatalf("sample size %d", len(got))
	}
	seen := map[int64]bool{}
	for _, r := range got {
		if seen[r] {
			t.Error("duplicate rid in sample")
		}
		seen[r] = true
	}
	if got := DeleteSample(rng, rids, 99); len(got) != 5 {
		t.Error("oversized sample must clamp")
	}
}

func TestSchemaShape(t *testing.T) {
	s := Schema()
	if s.Width() != 9 || s.Name != "cust" {
		t.Errorf("schema = %s", s)
	}
	for _, a := range []string{"AC", "PN", "NM", "STR", "CT", "ZIP", "ITEM", "TYPE", "PRICE"} {
		if !s.Has(a) {
			t.Errorf("missing attribute %s", a)
		}
	}
}
