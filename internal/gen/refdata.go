// Package gen generates the synthetic datasets of the paper's
// experimental study (§VI): an extension of the cust relation with
// purchased-item information, populated from an embedded reference
// dataset of US cities/area codes/ZIP prefixes and store items (the
// paper scraped these from online sources; the generator itself was
// synthetic there too). Noise injection corrupts the right-hand side
// of randomly chosen eCFDs, exactly as described: "changing tuples in
// D in attributes in the right-hand side of some eCFDs from a correct
// to an incorrect value".
//
// The corruption model keeps the groups of embedded-FD violations
// small (a handful of tuples), so multiple-tuple violation counts stay
// proportional to the noise instead of cascading through whole cities —
// matching the DSV/DMV magnitudes of Fig. 7(b).
package gen

// city pairs a city/town with its area code(s), ZIP prefix and a
// sampling weight. Cities in upstate New York have a unique area code;
// NYC and LI are the multi-code exceptions motivating eCFDs
// (Example 1.1) and get higher weights, as in real population data.
type city struct {
	Name      string
	AreaCodes []string
	ZipPrefix string
	Weight    int
}

var cities = []city{
	{"NYC", []string{"212", "718", "646", "347", "917"}, "100", 8},
	{"LI", []string{"516", "631"}, "117", 4},
	{"Albany", []string{"518"}, "122", 2},
	{"Troy", []string{"518"}, "121", 1},
	{"Colonie", []string{"518"}, "118", 1},
	{"Buffalo", []string{"716"}, "142", 2},
	{"Rochester", []string{"585"}, "146", 2},
	{"Syracuse", []string{"315"}, "132", 2},
	{"Utica", []string{"315"}, "135", 1},
	{"Yonkers", []string{"914"}, "107", 1},
	{"Binghamton", []string{"607"}, "139", 1},
	{"Ithaca", []string{"607"}, "148", 1},
	{"Schenectady", []string{"518"}, "123", 1},
	{"Niagara", []string{"716"}, "143", 1},
	{"Elmira", []string{"607"}, "149", 1},
	{"Poughkeepsie", []string{"845"}, "126", 1},
	{"Newburgh", []string{"845"}, "125", 1},
	{"Saratoga", []string{"518"}, "128", 1},
	{"Kingston", []string{"845"}, "124", 1},
	{"Watertown", []string{"315"}, "136", 1},
	{"Auburn", []string{"315"}, "130", 1},
	{"Oswego", []string{"315"}, "131", 1},
	{"Plattsburgh", []string{"518"}, "129", 1},
	{"Corning", []string{"607"}, "145", 1},
	{"Geneva", []string{"315"}, "144", 1},
	{"Oneonta", []string{"607"}, "138", 1},
	{"Rome", []string{"315"}, "134", 1},
	{"Amsterdam", []string{"518"}, "120", 1},
	{"Batavia", []string{"585"}, "140", 1},
	{"Olean", []string{"716"}, "147", 1},
}

var totalCityWeight = func() int {
	sum := 0
	for _, c := range cities {
		sum += c.Weight
	}
	return sum
}()

// upstate returns the cities with a unique area code (everything but
// NYC and LI).
func upstate() []city { return cities[2:] }

var firstNames = []string{
	"Mike", "Joe", "Jim", "Rick", "Ben", "Ian", "Ann", "Sue", "Tom", "Kim",
	"Amy", "Dan", "Eve", "Gus", "Hal", "Ida", "Jay", "Ken", "Lee", "Meg",
	"Ned", "Ora", "Pam", "Quin", "Ray", "Sal", "Ted", "Uma", "Val", "Wes",
}

var streets = []string{
	"Tree Ave.", "Elm Str.", "Oak Ave.", "8th Ave.", "5th Ave.", "High St.",
	"Main St.", "Maple Dr.", "Pine Rd.", "Cedar Ln.", "Lake View", "Hill Top",
	"River Rd.", "Park Pl.", "Broad Way", "Court St.", "Mill Ln.", "Bay Rd.",
}

// item is a store product; the paper's datasets add books, CDs and
// DVDs bought by customers.
type item struct {
	Title string
	Type  string
}

var items = []item{
	{"War and Peace", "book"}, {"Dubliners", "book"}, {"Moby Dick", "book"},
	{"Middlemarch", "book"}, {"Walden", "book"}, {"Iliad", "book"},
	{"Kind of Blue", "cd"}, {"Abbey Road", "cd"}, {"Blue Train", "cd"},
	{"Horses", "cd"}, {"Harvest", "cd"}, {"Aja", "cd"},
	{"Metropolis", "dvd"}, {"Sunrise", "dvd"}, {"City Lights", "dvd"},
	{"Modern Times", "dvd"}, {"The Kid", "dvd"}, {"Nosferatu", "dvd"},
}

// Price bands by item type. φ7/φ8 bind CD and DVD prices to their
// bands; φ9 binds everything else (books) to the book bands.
var (
	bookPrices = []string{"9.99", "19.99", "29.99", "49.99"}
	cdPrices   = []string{"9.99", "12.99", "14.99"}
	dvdPrices  = []string{"19.99", "24.99"}
)

func pricesFor(typ string) []string {
	switch typ {
	case "cd":
		return cdPrices
	case "dvd":
		return dvdPrices
	default:
		return bookPrices
	}
}

// ZIP suffixes: clean tuples draw 00–89; the corruptor draws 90–99, so
// corrupted ZIP codes form small, mostly-corrupt groups and the
// embedded FD ZIP → CT flags a bounded number of tuples per error.
const (
	zipCleanSuffixes   = 90
	zipCorruptSuffixes = 10
	zipSuffixes        = zipCleanSuffixes + zipCorruptSuffixes
)

// allAreaCodes returns the set of every valid area code.
func allAreaCodes() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range cities {
		for _, ac := range c.AreaCodes {
			if !seen[ac] {
				seen[ac] = true
				out = append(out, ac)
			}
		}
	}
	return out
}
