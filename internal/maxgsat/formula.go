// Package maxgsat implements Maximum Generalized Satisfiability
// (MAXGSAT, Papadimitriou): given Boolean expressions Φ = {φ1 … φm}
// over n variables, find an assignment satisfying as many expressions
// as possible. The paper (§IV) reduces the maximum-satisfiable-subset
// problem for eCFDs (MAXSS) to MAXGSAT with an approximation-factor-
// preserving reduction, so the solvers here power sat.MaxSS.
package maxgsat

import (
	"fmt"
	"strings"
)

// Formula is a Boolean expression over variables 0..n-1.
type Formula interface {
	// Eval evaluates under a total assignment.
	Eval(assign []bool) bool
	// vars adds the formula's variable indexes to the set.
	vars(set map[int]bool)
	String() string
}

// Var is a variable reference.
type Var int

// Not negates a formula.
type Not struct{ X Formula }

// And is an n-ary conjunction (true when empty).
type And []Formula

// Or is an n-ary disjunction (false when empty).
type Or []Formula

// Const is a Boolean constant.
type Const bool

// Eval implementations.

// Eval returns the value of the variable.
func (v Var) Eval(a []bool) bool { return a[int(v)] }

// Eval negates the operand.
func (n Not) Eval(a []bool) bool { return !n.X.Eval(a) }

// Eval is true when every conjunct is.
func (f And) Eval(a []bool) bool {
	for _, x := range f {
		if !x.Eval(a) {
			return false
		}
	}
	return true
}

// Eval is true when some disjunct is.
func (f Or) Eval(a []bool) bool {
	for _, x := range f {
		if x.Eval(a) {
			return true
		}
	}
	return false
}

// Eval returns the constant.
func (c Const) Eval([]bool) bool { return bool(c) }

func (v Var) vars(s map[int]bool) { s[int(v)] = true }
func (n Not) vars(s map[int]bool) { n.X.vars(s) }
func (f And) vars(s map[int]bool) {
	for _, x := range f {
		x.vars(s)
	}
}
func (f Or) vars(s map[int]bool) {
	for _, x := range f {
		x.vars(s)
	}
}
func (c Const) vars(map[int]bool) {}

func (v Var) String() string { return fmt.Sprintf("x%d", int(v)) }
func (n Not) String() string { return "¬" + n.X.String() }
func (f And) String() string { return nary("∧", []Formula(f), "⊤") }
func (f Or) String() string  { return nary("∨", []Formula(f), "⊥") }
func (c Const) String() string {
	if c {
		return "⊤"
	}
	return "⊥"
}

func nary(op string, fs []Formula, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, " "+op+" ") + ")"
}

// Instance is a MAXGSAT instance.
type Instance struct {
	NumVars  int
	Formulas []Formula
}

// Satisfied counts the formulas an assignment satisfies.
func (in *Instance) Satisfied(assign []bool) int {
	n := 0
	for _, f := range in.Formulas {
		if f.Eval(assign) {
			n++
		}
	}
	return n
}

// SatisfiedSet returns the indexes of satisfied formulas.
func (in *Instance) SatisfiedSet(assign []bool) []int {
	var out []int
	for i, f := range in.Formulas {
		if f.Eval(assign) {
			out = append(out, i)
		}
	}
	return out
}

// Vars returns the set of variables actually used.
func (in *Instance) Vars() map[int]bool {
	s := make(map[int]bool)
	for _, f := range in.Formulas {
		f.vars(s)
	}
	return s
}
