package maxgsat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func exampleInstance() *Instance {
	// x0 ∧ x1; ¬x0; x1 ∨ x2; ¬(x1 ∧ x2). Optimum = 3.
	return &Instance{
		NumVars: 3,
		Formulas: []Formula{
			And{Var(0), Var(1)},
			Not{X: Var(0)},
			Or{Var(1), Var(2)},
			Not{X: And{Var(1), Var(2)}},
		},
	}
}

func TestEval(t *testing.T) {
	in := exampleInstance()
	a := []bool{false, true, false}
	want := []bool{false, true, true, true}
	for i, f := range in.Formulas {
		if got := f.Eval(a); got != want[i] {
			t.Errorf("formula %d (%s) = %v, want %v", i, f, got, want[i])
		}
	}
	if in.Satisfied(a) != 3 {
		t.Errorf("Satisfied = %d", in.Satisfied(a))
	}
	set := in.SatisfiedSet(a)
	if len(set) != 3 || set[0] != 1 || set[1] != 2 || set[2] != 3 {
		t.Errorf("SatisfiedSet = %v", set)
	}
}

func TestEmptyConnectives(t *testing.T) {
	if !(And{}).Eval(nil) {
		t.Error("empty And must be true")
	}
	if (Or{}).Eval(nil) {
		t.Error("empty Or must be false")
	}
	if !Const(true).Eval(nil) || Const(false).Eval(nil) {
		t.Error("Const broken")
	}
}

func TestVars(t *testing.T) {
	in := exampleInstance()
	vs := in.Vars()
	if len(vs) != 3 || !vs[0] || !vs[1] || !vs[2] {
		t.Errorf("Vars = %v", vs)
	}
}

func TestString(t *testing.T) {
	f := Or{And{Var(0), Not{X: Var(1)}}, Const(false)}
	if f.String() != "((x0 ∧ ¬x1) ∨ ⊥)" {
		t.Errorf("String = %s", f.String())
	}
	if (And{}).String() != "⊤" || (Or{}).String() != "⊥" {
		t.Error("empty connective rendering")
	}
}

func TestSolveExact(t *testing.T) {
	sol, err := SolveExact(exampleInstance())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfied != 3 || !sol.Exact {
		t.Errorf("exact solution = %+v, want 3 satisfied", sol)
	}

	big := &Instance{NumVars: ExactMaxVars + 1}
	if _, err := SolveExact(big); err == nil {
		t.Error("oversized instance must be rejected")
	}
}

func TestSolveLocalSearchReachesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sol := SolveLocalSearch(exampleInstance(), 10, rng)
	if sol.Satisfied != 3 {
		t.Errorf("local search found %d, optimum is 3", sol.Satisfied)
	}
}

// TestLocalSearchNeverBeatenByExact: on random small instances the
// heuristic can never exceed the exact optimum, and with enough
// restarts it should usually match it.
func TestLocalSearchNeverBeatenByExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(rng, 6, 8)
		exact, err := SolveExact(in)
		if err != nil {
			t.Fatal(err)
		}
		ls := SolveLocalSearch(in, 20, rng)
		if ls.Satisfied > exact.Satisfied {
			t.Fatalf("trial %d: local search %d beats exact %d", trial, ls.Satisfied, exact.Satisfied)
		}
		if in.Satisfied(ls.Assign) != ls.Satisfied {
			t.Fatalf("trial %d: reported score mismatches assignment", trial)
		}
	}
}

func TestSolvePicksPath(t *testing.T) {
	sol := Solve(exampleInstance(), 1)
	if sol.Satisfied != 3 || !sol.Exact {
		t.Errorf("Solve on small instance should be exact: %+v", sol)
	}
}

func TestSolveOneHot(t *testing.T) {
	// Two groups of 2: choose exactly one per group. Formulas prefer
	// (g0 → v1, g1 → v0).
	wellFormed := And{
		Or{Var(0), Var(1)}, Or{Not{X: Var(0)}, Not{X: Var(1)}},
		Or{Var(2), Var(3)}, Or{Not{X: Var(2)}, Not{X: Var(3)}},
	}
	in := &Instance{
		NumVars: 4,
		Formulas: []Formula{
			And{Var(1), wellFormed},
			And{Var(2), wellFormed},
			And{Var(1), Var(2), wellFormed},
		},
	}
	rng := rand.New(rand.NewSource(2))
	sol := SolveOneHot(in, [][]int{{0, 1}, {2, 3}}, 5, rng)
	if sol.Satisfied != 3 {
		t.Errorf("one-hot search found %d, want 3", sol.Satisfied)
	}
	if !sol.Assign[1] || !sol.Assign[2] || sol.Assign[0] || sol.Assign[3] {
		t.Errorf("assignment %v, want x1 ∧ x2 only", sol.Assign)
	}
}

// TestRandomAssignmentBound: E[satisfied] under uniform assignments is
// a classic lower bound; local search from the best of R samples can
// not do worse than the empirical mean minus noise. We verify the
// deterministic claim: the returned score ≥ score of every sampled
// start (trivially true since local search only improves).
func TestLocalSearchMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 5, 6)
		start := make([]bool, in.NumVars)
		for i := range start {
			start[i] = rng.Intn(2) == 0
		}
		sol := SolveLocalSearch(in, 3, rng)
		return sol.Satisfied >= 0 && sol.Satisfied <= len(in.Formulas)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomInstance(rng *rand.Rand, vars, formulas int) *Instance {
	in := &Instance{NumVars: vars}
	var gen func(depth int) Formula
	gen = func(depth int) Formula {
		if depth == 0 || rng.Intn(3) == 0 {
			v := Var(rng.Intn(vars))
			if rng.Intn(2) == 0 {
				return Not{X: v}
			}
			return v
		}
		n := 1 + rng.Intn(3)
		kids := make([]Formula, n)
		for i := range kids {
			kids[i] = gen(depth - 1)
		}
		if rng.Intn(2) == 0 {
			return And(kids)
		}
		return Or(kids)
	}
	for i := 0; i < formulas; i++ {
		in.Formulas = append(in.Formulas, gen(2))
	}
	return in
}
