package maxgsat

import (
	"fmt"
	"math/rand"
)

// Solution is the outcome of a MAXGSAT solver.
type Solution struct {
	Assign    []bool
	Satisfied int
	Exact     bool // true when the solver proved optimality
}

// ExactMaxVars bounds the exhaustive solver: 2^22 assignments ≈ 4M
// evaluations, well under a second for small formula sets.
const ExactMaxVars = 22

// SolveExact enumerates all assignments; only feasible for instances
// with at most ExactMaxVars variables.
func SolveExact(in *Instance) (Solution, error) {
	if in.NumVars > ExactMaxVars {
		return Solution{}, fmt.Errorf("maxgsat: %d variables exceed the exact-solver bound %d", in.NumVars, ExactMaxVars)
	}
	best := Solution{Assign: make([]bool, in.NumVars), Satisfied: -1, Exact: true}
	assign := make([]bool, in.NumVars)
	for mask := 0; mask < 1<<in.NumVars; mask++ {
		for i := 0; i < in.NumVars; i++ {
			assign[i] = mask&(1<<i) != 0
		}
		if got := in.Satisfied(assign); got > best.Satisfied {
			best.Satisfied = got
			copy(best.Assign, assign)
			if best.Satisfied == len(in.Formulas) {
				break
			}
		}
	}
	return best, nil
}

// SolveLocalSearch runs randomized restarts followed by greedy
// bit-flip local search (GSAT-style): from a random assignment, flip
// the single variable improving the satisfied count most, until a
// local optimum. Sampling alone satisfies each formula with its
// satisfaction probability under uniform assignment, giving the
// classic randomized approximation for MAXGSAT; local search only
// improves on that.
func SolveLocalSearch(in *Instance, restarts int, rng *rand.Rand) Solution {
	if restarts < 1 {
		restarts = 1
	}
	best := Solution{Assign: make([]bool, in.NumVars), Satisfied: -1}
	cur := make([]bool, in.NumVars)
	for r := 0; r < restarts; r++ {
		for i := range cur {
			cur[i] = rng.Intn(2) == 0
		}
		score := in.Satisfied(cur)
		for {
			bestFlip, bestGain := -1, 0
			for i := 0; i < in.NumVars; i++ {
				cur[i] = !cur[i]
				if got := in.Satisfied(cur); got-score > bestGain {
					bestGain = got - score
					bestFlip = i
				}
				cur[i] = !cur[i]
			}
			if bestFlip < 0 {
				break
			}
			cur[bestFlip] = !cur[bestFlip]
			score += bestGain
		}
		if score > best.Satisfied {
			best.Satisfied = score
			copy(best.Assign, cur)
			if score == len(in.Formulas) {
				break
			}
		}
	}
	return best
}

// Solve picks the exact solver when feasible and local search
// otherwise. The seed makes the heuristic path deterministic.
func Solve(in *Instance, seed int64) Solution {
	if in.NumVars <= ExactMaxVars {
		sol, err := SolveExact(in)
		if err == nil {
			return sol
		}
	}
	restarts := 8 + in.NumVars/4
	return SolveLocalSearch(in, restarts, rand.New(rand.NewSource(seed)))
}

// SolveOneHot is a structured solver for instances whose variables are
// partitioned into groups with an exactly-one-true constraint conjoined
// onto every formula (the shape the eCFD reduction produces: one group
// per attribute, one variable per active-domain value). It searches in
// the product space of group choices by coordinate ascent with random
// restarts, which never leaves the feasible (one-hot) region — far more
// effective than bit flips that must cross infeasible assignments.
//
// groups[i] lists the variable indexes of group i.
func SolveOneHot(in *Instance, groups [][]int, restarts int, rng *rand.Rand) Solution {
	if restarts < 1 {
		restarts = 1
	}
	assign := make([]bool, in.NumVars)
	choice := make([]int, len(groups))
	apply := func() {
		for i := range assign {
			assign[i] = false
		}
		for g, c := range choice {
			assign[groups[g][c]] = true
		}
	}

	best := Solution{Assign: make([]bool, in.NumVars), Satisfied: -1}
	for r := 0; r < restarts; r++ {
		for g := range groups {
			choice[g] = rng.Intn(len(groups[g]))
		}
		apply()
		score := in.Satisfied(assign)
		improved := true
		for improved {
			improved = false
			for g := range groups {
				orig := choice[g]
				bestC, bestScore := orig, score
				for c := range groups[g] {
					if c == orig {
						continue
					}
					choice[g] = c
					apply()
					if got := in.Satisfied(assign); got > bestScore {
						bestC, bestScore = c, got
					}
				}
				choice[g] = bestC
				apply()
				if bestScore > score {
					score = bestScore
					improved = true
				}
			}
		}
		if score > best.Satisfied {
			best.Satisfied = score
			copy(best.Assign, assign)
			if score == len(in.Formulas) {
				break
			}
		}
	}
	return best
}
