package relation

import (
	"testing"
)

// BenchmarkValueBoxing is the DESIGN.md §5 ablation: the engine's
// tagged-struct Value versus the interface{} boxing a naive
// implementation would use. The boxed variant allocates on creation
// and pays dynamic dispatch on every comparison — on a 100k-row scan
// that difference dominates.

type boxedValue interface{ kind() Kind }

type boxedInt int64
type boxedText string

func (boxedInt) kind() Kind  { return KindInt }
func (boxedText) kind() Kind { return KindText }

func boxedEqual(a, b boxedValue) bool {
	switch x := a.(type) {
	case boxedInt:
		y, ok := b.(boxedInt)
		return ok && x == y
	case boxedText:
		y, ok := b.(boxedText)
		return ok && x == y
	default:
		return false
	}
}

const scanRows = 100_000

// The benchmark covers the full row lifecycle a query executes:
// materialize a column of fresh values (INSERT / projection output),
// then probe it. Boxing pays a heap allocation per constructed value;
// the tagged struct stores inline. (On pure comparison dispatch alone
// the boxed type-switch can win — construction is where the design
// choice earns its keep, which is why both phases are timed.)
func BenchmarkValueBoxing(b *testing.B) {
	b.Run("tagged-struct", func(b *testing.B) {
		b.ReportAllocs()
		probe := Int(scanRows / 2)
		for n := 0; n < b.N; n++ {
			rows := make([]Value, scanRows)
			for i := range rows {
				if i%2 == 0 {
					rows[i] = Int(int64(i))
				} else {
					rows[i] = Text("abcdefg")
				}
			}
			hits := 0
			for i := range rows {
				if Equal(rows[i], probe) {
					hits++
				}
			}
			if hits != 1 {
				b.Fatal(hits)
			}
		}
	})
	b.Run("interface-boxed", func(b *testing.B) {
		b.ReportAllocs()
		probe := boxedValue(boxedInt(scanRows / 2))
		for n := 0; n < b.N; n++ {
			rows := make([]boxedValue, scanRows)
			for i := range rows {
				if i%2 == 0 {
					rows[i] = boxedInt(int64(i))
				} else {
					rows[i] = boxedText("abcdefg")
				}
			}
			hits := 0
			for i := range rows {
				if boxedEqual(rows[i], probe) {
					hits++
				}
			}
			if hits != 1 {
				b.Fatal(hits)
			}
		}
	})
}

func BenchmarkAppendKey(b *testing.B) {
	vals := []Value{Int(42), Text("Albany"), Float(2.5), Null()}
	var buf []byte
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		buf = buf[:0]
		for _, v := range vals {
			buf = AppendKey(buf, v)
		}
	}
}
