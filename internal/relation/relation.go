package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// Tuple is one row of a relation: values in schema attribute order.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports field-wise identity: NULLs compare equal and NaN is
// equal to itself. This is tuple *identity*, not SQL expression
// equality — it must agree with Compare's total order (which already
// treats NaN as self-equal) so that dedup, index-maintenance
// cross-checks and other identity contexts never disagree with index
// order. SQL expression semantics (NULL ≠ NULL, NaN ≠ NaN) live in
// Equal over Values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !Identical(t[i], u[i]) {
			return false
		}
	}
	return true
}

// Key returns an injective grouping key for the whole tuple.
func (t Tuple) Key() string { return KeyOf(t) }

// Relation is an in-memory multiset of tuples over a schema.
type Relation struct {
	Schema *Schema
	Rows   []Tuple
}

// New returns an empty relation over the schema.
func New(s *Schema) *Relation { return &Relation{Schema: s} }

// Insert appends a tuple, validating its width.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != r.Schema.Width() {
		return fmt.Errorf("relation: %s: tuple width %d, want %d", r.Schema.Name, len(t), r.Schema.Width())
	}
	r.Rows = append(r.Rows, t)
	return nil
}

// MustInsert is Insert for statically known-good tuples.
func (r *Relation) MustInsert(t Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Rows) }

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{Schema: r.Schema, Rows: make([]Tuple, len(r.Rows))}
	for i, t := range r.Rows {
		out.Rows[i] = t.Clone()
	}
	return out
}

// Get returns the value of the named attribute in row i.
func (r *Relation) Get(i int, attr string) (Value, error) {
	j := r.Schema.Index(attr)
	if j < 0 {
		return Null(), fmt.Errorf("relation: %s has no attribute %q", r.Schema.Name, attr)
	}
	return r.Rows[i][j], nil
}

// Project returns a new relation with only the named attributes.
func (r *Relation) Project(name string, attrs ...string) (*Relation, error) {
	idx := make([]int, len(attrs))
	as := make([]Attribute, len(attrs))
	for i, a := range attrs {
		j := r.Schema.Index(a)
		if j < 0 {
			return nil, fmt.Errorf("relation: %s has no attribute %q", r.Schema.Name, a)
		}
		idx[i] = j
		as[i] = r.Schema.Attrs[j]
	}
	sch, err := NewSchema(name, as...)
	if err != nil {
		return nil, err
	}
	out := New(sch)
	for _, row := range r.Rows {
		t := make(Tuple, len(idx))
		for i, j := range idx {
			t[i] = row[j]
		}
		out.Rows = append(out.Rows, t)
	}
	return out, nil
}

// SortedKeys returns the multiset of row keys in sorted order; two
// relations are multiset-equal iff their SortedKeys are equal. Used by
// tests comparing detector outputs.
func (r *Relation) SortedKeys() []string {
	keys := make([]string, len(r.Rows))
	for i, t := range r.Rows {
		keys[i] = t.Key()
	}
	sort.Strings(keys)
	return keys
}

// WriteCSV writes the relation with a header row.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Names()); err != nil {
		return err
	}
	rec := make([]string, r.Schema.Width())
	for _, row := range r.Rows {
		for i, v := range row {
			rec[i] = v.String()
			if v.K == KindNull {
				rec[i] = ""
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads rows with a header into a relation over schema s. The
// header must contain every schema attribute; extra columns are
// ignored, and column order in the file may differ from schema order.
func ReadCSV(rd io.Reader, s *Schema) (*Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read CSV header: %w", err)
	}
	col := make([]int, s.Width())
	for i := range col {
		col[i] = -1
	}
	for j, h := range header {
		if i := s.Index(h); i >= 0 {
			col[i] = j
		}
	}
	for i, c := range col {
		if c < 0 {
			return nil, fmt.Errorf("relation: CSV missing column %q of %s", s.Attrs[i].Name, s.Name)
		}
	}
	out := New(s)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read CSV line %d: %w", line, err)
		}
		t := make(Tuple, s.Width())
		for i, c := range col {
			v, err := ParseLiteral(rec[c], s.Attrs[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d column %s: %w", line, s.Attrs[i].Name, err)
			}
			t[i] = v
		}
		out.Rows = append(out.Rows, t)
	}
	return out, nil
}
