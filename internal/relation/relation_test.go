package relation

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("person",
		Attribute{Name: "name", Kind: KindText},
		Attribute{Name: "age", Kind: KindInt},
		Attribute{Name: "score", Kind: KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Error("empty schema name must fail")
	}
	if _, err := NewSchema("t", Attribute{Name: "a"}, Attribute{Name: "a"}); err == nil {
		t.Error("duplicate attribute must fail")
	}
	if _, err := NewSchema("t", Attribute{Name: ""}); err == nil {
		t.Error("empty attribute name must fail")
	}
	if _, err := NewSchema("t", Attribute{Name: "a", Domain: []Value{Int(1)}}); err == nil {
		t.Error("singleton finite domain must fail (paper requires ≥ 2)")
	}
	if _, err := NewSchema("t", Attribute{Name: "a", Domain: []Value{Int(1), Int(2)}}); err != nil {
		t.Errorf("two-element domain should be fine: %v", err)
	}
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema(t)
	if s.Index("age") != 1 || s.Index("missing") != -1 {
		t.Error("Index lookup broken")
	}
	if !s.Has("name") || s.Has("nope") {
		t.Error("Has broken")
	}
	a, ok := s.Attr("score")
	if !ok || a.Kind != KindFloat {
		t.Error("Attr broken")
	}
	if got := strings.Join(s.Names(), ","); got != "name,age,score" {
		t.Errorf("Names = %s", got)
	}
	if s.Width() != 3 {
		t.Error("Width broken")
	}
	if s.String() != "person(name, age, score)" {
		t.Errorf("String = %s", s.String())
	}
}

func TestSchemaExtend(t *testing.T) {
	s := testSchema(t)
	ext, err := s.Extend("person_v", Attribute{Name: "SV", Kind: KindInt}, Attribute{Name: "MV", Kind: KindInt})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Width() != 5 || ext.Index("SV") != 3 || ext.Index("MV") != 4 {
		t.Error("Extend broken")
	}
	if s.Width() != 3 {
		t.Error("Extend must not mutate the receiver")
	}
	if _, err := s.Extend("bad", Attribute{Name: "name"}); err == nil {
		t.Error("Extend with duplicate must fail")
	}
}

func TestRelationInsertAndClone(t *testing.T) {
	s := testSchema(t)
	r := New(s)
	if err := r.Insert(Tuple{Text("ann"), Int(30), Float(1.5)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(Tuple{Text("bob")}); err == nil {
		t.Error("width mismatch must fail")
	}
	c := r.Clone()
	c.Rows[0][0] = Text("zed")
	if r.Rows[0][0].S != "ann" {
		t.Error("Clone must deep-copy")
	}
	v, err := r.Get(0, "age")
	if err != nil || v.I != 30 {
		t.Errorf("Get = %v, %v", v, err)
	}
	if _, err := r.Get(0, "zzz"); err == nil {
		t.Error("Get unknown attribute must fail")
	}
}

func TestTupleEqualAndKey(t *testing.T) {
	a := Tuple{Text("x"), Int(1), Null()}
	b := Tuple{Text("x"), Float(1.0), Null()}
	if !a.Equal(b) {
		t.Error("tuples with equal (widened) values and matching NULLs must be Equal")
	}
	if a.Key() != b.Key() {
		t.Error("equal tuples must share keys")
	}
	c := Tuple{Text("x"), Int(2), Null()}
	if a.Equal(c) || a.Key() == c.Key() {
		t.Error("unequal tuples must differ")
	}
	if a.Equal(Tuple{Text("x")}) {
		t.Error("width mismatch must not be Equal")
	}
}

func TestProject(t *testing.T) {
	s := testSchema(t)
	r := New(s)
	r.MustInsert(Tuple{Text("ann"), Int(30), Float(1.5)})
	r.MustInsert(Tuple{Text("bob"), Int(40), Float(2.5)})
	p, err := r.Project("ages", "age", "name")
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema.Width() != 2 || p.Rows[1][0].I != 40 || p.Rows[1][1].S != "bob" {
		t.Errorf("Project wrong: %+v", p.Rows)
	}
	if _, err := r.Project("bad", "nope"); err == nil {
		t.Error("Project unknown attribute must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := testSchema(t)
	r := New(s)
	r.MustInsert(Tuple{Text("ann, the 1st"), Int(30), Float(1.5)})
	r.MustInsert(Tuple{Text(`say "hi"`), Null(), Float(-0.25)})

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost rows: %d", back.Len())
	}
	for i := range r.Rows {
		if !r.Rows[i].Equal(back.Rows[i]) {
			t.Errorf("row %d: %v != %v", i, r.Rows[i], back.Rows[i])
		}
	}
}

func TestReadCSVColumnReorderAndErrors(t *testing.T) {
	s := testSchema(t)
	in := "age,score,name,extra\n30,1.5,ann,zzz\n"
	r, err := ReadCSV(strings.NewReader(in), s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].S != "ann" || r.Rows[0][1].I != 30 {
		t.Errorf("column remap failed: %v", r.Rows[0])
	}

	if _, err := ReadCSV(strings.NewReader("name,age\nx,1\n"), s); err == nil {
		t.Error("missing column must fail")
	}
	if _, err := ReadCSV(strings.NewReader("name,age,score\nx,notanint,1\n"), s); err == nil {
		t.Error("bad literal must fail")
	}
	if _, err := ReadCSV(strings.NewReader(""), s); err == nil {
		t.Error("empty input must fail on header")
	}
}

// TestTupleEqualNaNIdentity is the regression test for the NaN
// identity asymmetry: Compare totally orders NaN equal to itself, so
// tuple *identity* (dedup, index-maintenance cross-checks) must too —
// before Identical, Tuple.Equal said NaN ≠ NaN and identity contexts
// could disagree with index order. SQL expression equality (Equal)
// must keep rejecting NaN = NaN.
func TestTupleEqualNaNIdentity(t *testing.T) {
	nan := Float(math.NaN())
	a := Tuple{Int(1), nan}
	b := Tuple{Int(1), Float(math.NaN())}
	if !a.Equal(b) {
		t.Fatal("tuples differing only in NaN payload must be identical")
	}
	if !Identical(nan, Float(math.NaN())) {
		t.Fatal("Identical(NaN, NaN) must hold")
	}
	if Identical(nan, Float(1)) || Identical(nan, Null()) {
		t.Fatal("NaN is identical only to NaN")
	}
	if Equal(nan, nan) {
		t.Fatal("SQL expression equality must still reject NaN = NaN")
	}
	// Identity must agree with Compare's total order pairwise.
	vals := []Value{Null(), Bool(true), Int(1), Float(1), Float(math.NaN()), Text("x")}
	for _, x := range vals {
		for _, y := range vals {
			if Identical(x, y) != (Compare(x, y) == 0) {
				t.Fatalf("Identical(%s, %s) disagrees with Compare", x, y)
			}
		}
	}
}

func TestSortedKeysMultisetEquality(t *testing.T) {
	s := testSchema(t)
	a := New(s)
	a.MustInsert(Tuple{Text("x"), Int(1), Float(0)})
	a.MustInsert(Tuple{Text("y"), Int(2), Float(0)})
	b := New(s)
	b.MustInsert(Tuple{Text("y"), Int(2), Float(0)})
	b.MustInsert(Tuple{Text("x"), Int(1), Float(0)})
	ka, kb := a.SortedKeys(), b.SortedKeys()
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatal("order-insensitive key sets must match")
		}
	}
}
