package relation

import (
	"fmt"
	"strings"
)

// Attribute describes one column of a relation schema: its name, type,
// and (optionally) a finite domain. A nil Domain means the attribute
// draws values from an infinite domain — the distinction matters for
// the satisfiability analysis (paper §III, Proposition 3.3).
type Attribute struct {
	Name   string
	Kind   Kind
	Domain []Value // nil ⇒ infinite domain; otherwise the full finite domain
}

// Finite reports whether the attribute has a declared finite domain.
func (a Attribute) Finite() bool { return a.Domain != nil }

// Schema is an ordered list of attributes with a relation name.
type Schema struct {
	Name  string
	Attrs []Attribute

	byName map[string]int
}

// NewSchema builds a schema, validating that attribute names are
// distinct and that every finite domain has at least two elements (the
// paper assumes |dom(A)| ≥ 2).
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: schema needs a name")
	}
	s := &Schema{Name: name, Attrs: attrs, byName: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: schema %s: attribute %d has no name", name, i)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("relation: schema %s: duplicate attribute %q", name, a.Name)
		}
		if a.Domain != nil && len(a.Domain) < 2 {
			return nil, fmt.Errorf("relation: schema %s: finite domain of %q needs at least 2 values", name, a.Name)
		}
		s.byName[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema for statically known-good schemas.
func MustSchema(name string, attrs ...Attribute) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named attribute, or -1.
func (s *Schema) Index(attr string) int {
	if i, ok := s.byName[attr]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(attr string) bool { return s.Index(attr) >= 0 }

// Attr returns the attribute descriptor by name.
func (s *Schema) Attr(name string) (Attribute, bool) {
	i := s.Index(name)
	if i < 0 {
		return Attribute{}, false
	}
	return s.Attrs[i], true
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = a.Name
	}
	return out
}

// Width returns the number of attributes.
func (s *Schema) Width() int { return len(s.Attrs) }

func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
	}
	b.WriteByte(')')
	return b.String()
}

// Extend returns a copy of the schema with extra attributes appended,
// as BatchDetect does when adding the SV and MV flags (paper §V).
func (s *Schema) Extend(name string, attrs ...Attribute) (*Schema, error) {
	all := make([]Attribute, 0, len(s.Attrs)+len(attrs))
	all = append(all, s.Attrs...)
	all = append(all, attrs...)
	return NewSchema(name, all...)
}
