// Package relation provides the relational substrate shared by every
// layer of the eCFD system: typed values, schemas, tuples and in-memory
// relations with CSV import/export.
//
// Values are represented as a small tagged struct rather than an
// interface so that scans over hundreds of thousands of rows do not box
// every field (see DESIGN.md, "Engine values are unboxed").
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

// The value kinds supported by the engine. Null sorts before every
// other value; Bool sorts false < true.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindText
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "REAL"
	case KindText:
		return "TEXT"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single field of a tuple: a tagged union over the engine's
// scalar types. The zero Value is NULL.
type Value struct {
	K Kind
	I int64   // KindInt and KindBool (0/1)
	F float64 // KindFloat
	S string  // KindText
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an INTEGER value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a REAL value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Text returns a TEXT value.
func Text(s string) Value { return Value{K: KindText, S: s} }

// Bool returns a BOOLEAN value.
func Bool(b bool) Value {
	if b {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Truth reports whether v is a true boolean. NULL and false are both
// not true (SQL three-valued logic collapses to this at filter level).
func (v Value) Truth() bool { return v.K == KindBool && v.I != 0 }

// AsFloat widens numeric values to float64; text and null yield 0.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// String renders the value the way the REPL and tests print it.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindText:
		return v.S
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.K))
	}
}

// SQL renders the value as a SQL literal.
func (v Value) SQL() string {
	if v.K == KindText {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return v.String()
}

// numeric reports whether the value participates in arithmetic.
func (v Value) numeric() bool {
	return v.K == KindInt || v.K == KindFloat || v.K == KindBool
}

// cmpIntFloat compares an int64 with a float64 exactly: -1, 0 or +1
// as i is below, equal to or above f. Widening the int to float64
// would merge values beyond 2^53 and make mixed-kind comparison
// intransitive, which neither the total order (index sorting, binary
// searches) nor the hash keys can tolerate. NaN sorts above every
// number, matching Compare's rule.
func cmpIntFloat(i int64, f float64) int {
	if f != f {
		return -1 // i < NaN
	}
	if f >= 9223372036854775808.0 { // 2^63: f exceeds every int64
		return -1
	}
	if f < -9223372036854775808.0 { // below -2^63: f is under every int64
		return 1
	}
	t := math.Trunc(f)
	ti := int64(t) // exact: t is integral and within int64 range
	switch {
	case i < ti:
		return -1
	case i > ti:
		return 1
	case f > t: // equal integer parts, f has a positive fraction
		return -1
	case f < t: // negative fraction
		return 1
	}
	return 0
}

// Equal reports value equality with numeric comparison across kinds:
// 1 = 1.0, exactly — mixed int/float pairs compare via cmpIntFloat,
// never by float widening, so Equal is a true equivalence relation
// and agrees with Key()'s canonicalization and Compare's total order
// at every magnitude. Comparisons involving NULL are never equal
// (callers wanting SQL semantics should special-case NULL before
// calling), and NaN equals nothing.
func Equal(a, b Value) bool {
	if a.K == KindNull || b.K == KindNull {
		return false
	}
	if a.numeric() && b.numeric() {
		switch {
		case a.K == KindFloat && b.K == KindFloat:
			return a.F == b.F
		case a.K == KindFloat:
			return cmpIntFloat(b.I, a.F) == 0
		case b.K == KindFloat:
			return cmpIntFloat(a.I, b.F) == 0
		}
		return a.I == b.I
	}
	if a.K != b.K {
		return false
	}
	if a.K == KindText {
		return a.S == b.S
	}
	return a.I == b.I
}

// Identical reports value *identity*: like Equal, but NULL is
// identical to NULL and NaN to NaN (any NaN payload), mirroring
// Compare's total order exactly — Identical(a, b) ⇔ Compare(a, b) == 0.
// Identity contexts (tuple dedup, index-maintenance cross-checks)
// use this so they can never disagree with index order; SQL
// expression equality stays on Equal.
func Identical(a, b Value) bool {
	if a.K == KindNull || b.K == KindNull {
		return a.K == b.K
	}
	if a.numeric() && b.numeric() {
		af, bf := a.AsFloat(), b.AsFloat()
		if af != af || bf != bf { // NaN on either side
			return af != af && bf != bf
		}
	}
	return Equal(a, b)
}

// Compare orders two values: -1, 0 or +1. NULL sorts first, then
// numbers (booleans included), then text. Numeric comparison is
// *exact* in every kind combination — int64 pairs on int64, mixed
// int/float pairs via cmpIntFloat, never by widening the int to
// float64 (which merges values beyond 2^53 and is intransitive) —
// and NaN sorts after every other number, equal only to itself. So
// Compare is a transitive total order with Compare(a, b) == 0 ⇔
// Identical(a, b) — the ordered indexes, their binary-searched range
// scans and the equality-by-search prefix probes depend on both.
// Used by ORDER BY, GROUP BY key sorting, index order and index
// probes.
func Compare(a, b Value) int {
	ra, rb := rank(a), rank(b)
	if ra != rb {
		return sign(ra - rb)
	}
	switch {
	case a.K == KindNull:
		return 0
	case a.numeric() && b.numeric():
		// Numeric comparison is exact in every combination — integer
		// pairs on int64, mixed pairs via cmpIntFloat — so the order is
		// the mathematical order (transitive, total) and Compare == 0
		// coincides with Equal wherever NaN is not involved. The probes
		// that answer equality through Compare == 0 (eqPrefixRange) and
		// the index binary searches depend on both properties.
		switch {
		case a.K != KindFloat && b.K != KindFloat:
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		case a.K != KindFloat:
			return cmpIntFloat(a.I, b.F)
		case b.K != KindFloat:
			return -cmpIntFloat(b.I, a.F)
		}
		af, bf := a.F, b.F
		aNaN, bNaN := af != af, bf != bf
		switch {
		case aNaN && bNaN:
			return 0
		case aNaN:
			return 1
		case bNaN:
			return -1
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	default: // text
		return strings.Compare(a.S, b.S)
	}
}

// rank groups kinds into comparison classes: NULL < numeric < text.
func rank(v Value) int {
	switch v.K {
	case KindNull:
		return 0
	case KindBool, KindInt, KindFloat:
		return 1
	default:
		return 2
	}
}

func sign(i int) int {
	switch {
	case i < 0:
		return -1
	case i > 0:
		return 1
	}
	return 0
}

// Key returns a map-key representation of v so tuples of values can be
// grouped and hashed. The encoding is injective across kinds.
func (v Value) Key() string {
	switch v.K {
	case KindNull:
		return "\x00n"
	case KindBool, KindInt:
		return "\x00i" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		f := v.F
		if f == float64(int64(f)) {
			// Integral floats hash like ints so 1 and 1.0 group together,
			// matching Equal's numeric widening.
			return "\x00i" + strconv.FormatInt(int64(f), 10)
		}
		return "\x00f" + strconv.FormatFloat(f, 'b', -1, 64)
	default:
		return "\x00t" + v.S
	}
}

// AppendKey appends v's Key encoding to dst without allocating a
// string; hot paths (hash-probe joins, grouping) use it with a reused
// buffer and look maps up via string(dst), which Go compiles without a
// copy.
func AppendKey(dst []byte, v Value) []byte {
	switch v.K {
	case KindNull:
		return append(dst, 0x00, 'n')
	case KindBool, KindInt:
		dst = append(dst, 0x00, 'i')
		return strconv.AppendInt(dst, v.I, 10)
	case KindFloat:
		f := v.F
		if f == float64(int64(f)) {
			dst = append(dst, 0x00, 'i')
			return strconv.AppendInt(dst, int64(f), 10)
		}
		dst = append(dst, 0x00, 'f')
		return strconv.AppendFloat(dst, f, 'b', -1, 64)
	default:
		dst = append(dst, 0x00, 't')
		return append(dst, v.S...)
	}
}

// AppendKeyOf appends the joint key of vs to dst.
func AppendKeyOf(dst []byte, vs []Value) []byte {
	for i := range vs {
		dst = AppendKey(dst, vs[i])
		dst = append(dst, 0x1f)
	}
	return dst
}

// KeyOf concatenates the Key encodings of vs into one grouping key.
func KeyOf(vs []Value) string {
	return string(AppendKeyOf(nil, vs))
}

// ParseLiteral converts raw text (for example from CSV) to a Value of
// the given kind. Empty text becomes NULL for non-text kinds.
func ParseLiteral(s string, k Kind) (Value, error) {
	switch k {
	case KindText:
		return Text(s), nil
	case KindInt:
		if s == "" {
			return Null(), nil
		}
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse %q as INTEGER: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		if s == "" {
			return Null(), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse %q as REAL: %w", s, err)
		}
		return Float(f), nil
	case KindBool:
		switch strings.ToLower(s) {
		case "true", "t", "1":
			return Bool(true), nil
		case "false", "f", "0":
			return Bool(false), nil
		case "":
			return Null(), nil
		}
		return Null(), fmt.Errorf("relation: parse %q as BOOLEAN", s)
	case KindNull:
		return Null(), nil
	default:
		return Null(), fmt.Errorf("relation: unknown kind %v", k)
	}
}
