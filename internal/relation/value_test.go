package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{Text("abc"), "abc"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueSQLQuoting(t *testing.T) {
	if got := Text("O'Brien").SQL(); got != "'O''Brien'" {
		t.Errorf("SQL quoting = %q", got)
	}
	if got := Int(3).SQL(); got != "3" {
		t.Errorf("int SQL = %q", got)
	}
	if got := Null().SQL(); got != "NULL" {
		t.Errorf("null SQL = %q", got)
	}
}

func TestEqualNumericWidening(t *testing.T) {
	if !Equal(Int(1), Float(1.0)) {
		t.Error("1 should equal 1.0")
	}
	if Equal(Int(1), Float(1.5)) {
		t.Error("1 should not equal 1.5")
	}
	if Equal(Int(1), Text("1")) {
		t.Error("1 should not equal '1'")
	}
	if Equal(Null(), Null()) {
		t.Error("NULL = NULL must be false in expression equality")
	}
	if Equal(Null(), Int(0)) {
		t.Error("NULL should not equal 0")
	}
	if !Equal(Bool(true), Int(1)) {
		t.Error("TRUE widens to 1")
	}
}

func TestCompareOrdering(t *testing.T) {
	ordered := []Value{Null(), Bool(false), Int(1), Float(1.5), Int(2), Text("a"), Text("b")}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			// Bool(false) and Int(0)? not in list; Null==Null fine.
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return Compare(Text(a), Text(b)) == -Compare(Text(b), Text(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyInjectiveAcrossKinds(t *testing.T) {
	vs := []Value{Null(), Int(1), Text("1"), Float(1.5), Text("1.5"), Bool(true), Text(""), Int(0), Bool(false)}
	seen := map[string]Value{}
	for _, v := range vs {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			// Bool(true)/Int(1) and Bool(false)/Int(0) intentionally share
			// keys because Equal treats them as equal.
			if !Equal(prev, v) {
				t.Errorf("key collision between unequal %v and %v", prev, v)
			}
			continue
		}
		seen[k] = v
	}
}

func TestKeyGroupsEqualNumerics(t *testing.T) {
	if Int(3).Key() != Float(3.0).Key() {
		t.Error("3 and 3.0 must share a grouping key")
	}
	if Float(0.5).Key() == Float(0.25).Key() {
		t.Error("distinct floats must not share keys")
	}
}

func TestKeyOfProperty(t *testing.T) {
	f := func(a, b string, i int64) bool {
		k1 := KeyOf([]Value{Text(a), Int(i), Text(b)})
		k2 := KeyOf([]Value{Text(a), Int(i), Text(b)})
		return k1 == k2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseLiteral(t *testing.T) {
	v, err := ParseLiteral("42", KindInt)
	if err != nil || v.I != 42 || v.K != KindInt {
		t.Errorf("ParseLiteral int: %v %v", v, err)
	}
	v, err = ParseLiteral("2.5", KindFloat)
	if err != nil || v.F != 2.5 {
		t.Errorf("ParseLiteral float: %v %v", v, err)
	}
	v, err = ParseLiteral("", KindInt)
	if err != nil || !v.IsNull() {
		t.Errorf("empty int should parse to NULL: %v %v", v, err)
	}
	v, err = ParseLiteral("true", KindBool)
	if err != nil || !v.Truth() {
		t.Errorf("ParseLiteral bool: %v %v", v, err)
	}
	if _, err = ParseLiteral("xyz", KindInt); err == nil {
		t.Error("expected error for bad int")
	}
	if _, err = ParseLiteral("xyz", KindBool); err == nil {
		t.Error("expected error for bad bool")
	}
	v, err = ParseLiteral("hello", KindText)
	if err != nil || v.S != "hello" {
		t.Errorf("ParseLiteral text: %v %v", v, err)
	}
}

func TestAsFloat(t *testing.T) {
	if Int(3).AsFloat() != 3 || Float(2.5).AsFloat() != 2.5 || Bool(true).AsFloat() != 1 {
		t.Error("AsFloat widening broken")
	}
	if Text("x").AsFloat() != 0 || Null().AsFloat() != 0 {
		t.Error("non-numeric AsFloat should be 0")
	}
}

func TestFloatKeyNaNSafe(t *testing.T) {
	// NaN never equals itself but Key must still be deterministic.
	k1 := Float(math.NaN()).Key()
	k2 := Float(math.NaN()).Key()
	if k1 != k2 {
		t.Error("NaN keys must be deterministic")
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{KindNull: "NULL", KindBool: "BOOLEAN", KindInt: "INTEGER", KindFloat: "REAL", KindText: "TEXT"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
