// Package repair implements a heuristic data repair for eCFD
// violations — the paper's first future-work topic (§VIII: "develop
// algorithms for eliminating eCFD violations and repairing data",
// following the cost-based value-modification line of Bohannon et al.
// and Cong et al. for CFDs). Finding a minimal repair is NP-hard
// already for FDs, so this is a bounded-round greedy cleaner:
//
//   - single-tuple violations (SV) are repaired by rewriting one
//     failing RHS cell to the cheapest admissible value — for an ∈S
//     pattern the most frequent S-member in the column, for an ∉S
//     pattern the most frequent column value outside S (or a fresh
//     value when none exists);
//   - embedded-FD violations (MV) are repaired group-wise by majority:
//     every tuple in a violating group adopts the group's most common
//     RHS combination.
//
// Rounds repeat until the violation set is empty or MaxRounds is hit
// (pattern and FD repairs can interact); the result reports every cell
// change and the violations remaining, if any. Repairs restore
// consistency — they do not promise to recover ground truth, exactly as
// in the repair literature.
package repair

import (
	"fmt"
	"sort"

	"ecfd/internal/core"
	"ecfd/internal/relation"
)

// Options bounds the repair loop.
type Options struct {
	// MaxRounds caps detect→repair iterations (default 5).
	MaxRounds int
}

// Change records one repaired cell.
type Change struct {
	Row       int
	Attribute string
	Old, New  relation.Value
	// Constraint names the pattern constraint (name#index) that
	// triggered the change.
	Constraint string
}

// Result reports a repair run. Remaining is 0 when the repaired
// instance satisfies Σ.
type Result struct {
	Repaired  *relation.Relation
	Changes   []Change
	Rounds    int
	Remaining int
}

// Repair returns a repaired copy of the instance; the input is not
// modified.
func Repair(inst *relation.Relation, sigma []*core.ECFD, opts Options) (*Result, error) {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 5
	}
	for _, e := range sigma {
		if err := e.Validate(); err != nil {
			return nil, err
		}
	}
	work := inst.Clone()
	split := core.Split(sigma)
	res := &Result{Repaired: work}
	// cellChanges counts rewrites per cell across rounds; a cell hit
	// twice is flip-flopping between two constraints and triggers the
	// LHS-move conflict resolution in repairFDs.
	cellChanges := make(map[[2]int]int)

	for round := 1; round <= opts.MaxRounds; round++ {
		res.Rounds = round
		changed := 0
		changed += repairPatterns(work, split, res)
		changed += repairFDs(work, split, res, cellChanges)
		v, err := core.NaiveDetect(work, split)
		if err != nil {
			return nil, err
		}
		res.Remaining = v.Count()
		if res.Remaining == 0 || changed == 0 {
			break
		}
	}
	return res, nil
}

// columnFrequency counts value occurrences in a column, keyed by
// Value.Key.
func columnFrequency(inst *relation.Relation, col int) (map[string]int, map[string]relation.Value) {
	freq := make(map[string]int)
	vals := make(map[string]relation.Value)
	for _, row := range inst.Rows {
		v := row[col]
		if v.IsNull() {
			continue
		}
		k := v.Key()
		freq[k]++
		vals[k] = v
	}
	return freq, vals
}

// repairPatterns fixes single-tuple violations in place and returns the
// number of cells rewritten.
func repairPatterns(inst *relation.Relation, split []*core.ECFD, res *Result) int {
	schema := inst.Schema
	changed := 0
	freqCache := map[int]map[string]int{}
	valCache := map[int]map[string]relation.Value{}
	colFreq := func(col int) (map[string]int, map[string]relation.Value) {
		if f, ok := freqCache[col]; ok {
			return f, valCache[col]
		}
		f, v := columnFrequency(inst, col)
		freqCache[col], valCache[col] = f, v
		return f, v
	}

	for ci, e := range split {
		rhs := e.RHS()
		for ri, row := range inst.Rows {
			if !e.MatchesLHS(row, 0) || e.MatchesRHS(row, 0) {
				continue
			}
			// Find the first failing RHS cell and rewrite it.
			for j, attr := range rhs {
				col := schema.Index(attr)
				pat := e.Tableau[0].RHS[j]
				if pat.Matches(row[col]) {
					continue
				}
				newVal, ok := admissibleValue(pat, col, colFreq)
				if !ok {
					break // nothing admissible; leave for reporting
				}
				res.Changes = append(res.Changes, Change{
					Row: ri, Attribute: attr, Old: row[col], New: newVal,
					Constraint: e.Name,
				})
				row[col] = newVal
				changed++
				// Invalidate the column's frequency cache.
				delete(freqCache, col)
				delete(valCache, col)
				break
			}
		}
		_ = ci
	}
	return changed
}

// admissibleValue picks the cheapest value matching the pattern:
// the most frequent admissible value already in the column, falling
// back to the pattern set (In) or a fresh value (NotIn).
func admissibleValue(pat core.Pattern, col int,
	colFreq func(int) (map[string]int, map[string]relation.Value)) (relation.Value, bool) {
	freq, vals := colFreq(col)
	var keys []string
	for k := range freq {
		keys = append(keys, k)
	}
	// Highest frequency first; ties resolved deterministically by key.
	sort.Slice(keys, func(i, j int) bool {
		if freq[keys[i]] != freq[keys[j]] {
			return freq[keys[i]] > freq[keys[j]]
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		if pat.Matches(vals[k]) {
			return vals[k], true
		}
	}
	switch pat.Op {
	case core.In:
		return pat.Set[0], true
	case core.NotIn:
		// A fresh value distinct from the excluded set.
		for i := 0; ; i++ {
			cand := relation.Text(fmt.Sprintf("repaired%d", i))
			if pat.Matches(cand) {
				return cand, true
			}
		}
	default:
		return relation.Null(), false
	}
}

// repairFDs resolves embedded-FD violations by majority vote within
// each violating group. When a cell has already flip-flopped (two
// constraints pulling a tuple's RHS in opposite directions), the tuple
// is instead *moved* out of the group: its LHS attributes are rewritten
// to those of a clean group whose RHS agrees with the tuple — the
// attribute-choice step of cost-based repair.
func repairFDs(inst *relation.Relation, split []*core.ECFD, res *Result, cellChanges map[[2]int]int) int {
	schema := inst.Schema
	changed := 0
	for _, e := range split {
		if len(e.Y) == 0 {
			continue
		}
		xIdx := indexes(schema, e.X)
		yIdx := indexes(schema, e.Y)

		type members struct {
			rows []int
			// yCombo frequency, keyed by the joint Y key
			count map[string]int
		}
		groups := map[string]*members{}
		var groupKeys []string
		for ri, row := range inst.Rows {
			if !e.MatchesLHS(row, 0) {
				continue
			}
			gk := jointKey(row, xIdx)
			g := groups[gk]
			if g == nil {
				g = &members{count: map[string]int{}}
				groups[gk] = g
				groupKeys = append(groupKeys, gk)
			}
			g.rows = append(g.rows, ri)
			g.count[jointKey(row, yIdx)]++
		}
		sort.Strings(groupKeys)

		// cleanHome finds a single-combo group whose RHS equals yk; its
		// first row donates LHS values for a move.
		cleanHome := func(yk string) relation.Tuple {
			for _, gk := range groupKeys {
				g := groups[gk]
				if len(g.count) == 1 && g.count[yk] > 0 {
					return inst.Rows[g.rows[0]]
				}
			}
			return nil
		}

		for _, gk := range groupKeys {
			g := groups[gk]
			if len(g.count) <= 1 {
				continue
			}
			// Majority combination wins; ties broken deterministically.
			var combos []string
			for k := range g.count {
				combos = append(combos, k)
			}
			sort.Slice(combos, func(i, j int) bool {
				if g.count[combos[i]] != g.count[combos[j]] {
					return g.count[combos[i]] > g.count[combos[j]]
				}
				return combos[i] < combos[j]
			})
			best := combos[0]
			// Find a representative row carrying the majority combo.
			var donor relation.Tuple
			for _, ri := range g.rows {
				if jointKey(inst.Rows[ri], yIdx) == best {
					donor = inst.Rows[ri]
					break
				}
			}
			for _, ri := range g.rows {
				row := inst.Rows[ri]
				yk := jointKey(row, yIdx)
				if yk == best {
					continue
				}
				flipFlop := false
				for _, yi := range yIdx {
					if !valueEq(row[yi], donor[yi]) && cellChanges[[2]int{ri, yi}] >= 2 {
						flipFlop = true
						break
					}
				}
				if flipFlop {
					// Move the tuple to a clean group agreeing with its
					// RHS instead of rewriting the contested cells again.
					home := cleanHome(yk)
					if home == nil {
						continue // no compatible home; leave for reporting
					}
					for _, xi := range xIdx {
						if valueEq(row[xi], home[xi]) {
							continue
						}
						res.Changes = append(res.Changes, Change{
							Row: ri, Attribute: schema.Attrs[xi].Name,
							Old: row[xi], New: home[xi], Constraint: e.Name,
						})
						row[xi] = home[xi]
						cellChanges[[2]int{ri, xi}]++
						changed++
					}
					continue
				}
				for _, yi := range yIdx {
					if valueEq(row[yi], donor[yi]) {
						continue
					}
					res.Changes = append(res.Changes, Change{
						Row: ri, Attribute: schema.Attrs[yi].Name,
						Old: row[yi], New: donor[yi], Constraint: e.Name,
					})
					row[yi] = donor[yi]
					cellChanges[[2]int{ri, yi}]++
					changed++
				}
			}
		}
	}
	return changed
}

func indexes(s *relation.Schema, attrs []string) []int {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		out[i] = s.Index(a)
	}
	return out
}

func jointKey(t relation.Tuple, idx []int) string {
	var buf []byte
	for _, i := range idx {
		buf = relation.AppendKey(buf, t[i])
		buf = append(buf, 0x1f)
	}
	return string(buf)
}

func valueEq(a, b relation.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return relation.Equal(a, b)
}
