package repair

import (
	"math/rand"
	"testing"

	"ecfd/internal/core"
	"ecfd/internal/gen"
	"ecfd/internal/relation"
)

// TestRepairFig1 cleans the paper's example: t1 (Albany, 718) and t4
// (NYC, 100) are repaired and D0 then satisfies Fig. 2's Σ.
func TestRepairFig1(t *testing.T) {
	inst := core.Fig1Instance()
	sigma := core.Fig2Constraints()
	res, err := Repair(inst, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining != 0 {
		t.Fatalf("repair left %d violations", res.Remaining)
	}
	ok, err := core.Satisfies(res.Repaired, sigma)
	if err != nil || !ok {
		t.Fatalf("repaired instance must satisfy Σ (%v)", err)
	}
	// The input is untouched.
	if inst.Rows[0][0].S != "718" {
		t.Error("Repair must not modify its input")
	}
	// t1's area code was rewritten to 518 (the only admissible value).
	acIdx := inst.Schema.Index("AC")
	if res.Repaired.Rows[0][acIdx].S != "518" {
		t.Errorf("t1 AC repaired to %v, want 518", res.Repaired.Rows[0][acIdx])
	}
	// t4's area code becomes one of NYC's codes.
	nyc := core.Fig2Constraints()[1].Tableau[0].RHS[0]
	if !nyc.Matches(res.Repaired.Rows[3][acIdx]) {
		t.Errorf("t4 AC repaired to %v, outside the NYC set", res.Repaired.Rows[3][acIdx])
	}
	if len(res.Changes) != 2 {
		t.Errorf("expected 2 changes, got %d: %v", len(res.Changes), res.Changes)
	}
}

// TestRepairCleansGeneratedNoise: the §VI workload with 5% corruption
// is fully repaired, with a change count in the order of the number of
// corruptions (not the dataset size).
func TestRepairCleansGeneratedNoise(t *testing.T) {
	const rows = 3000
	inst := gen.Dataset(gen.Config{Rows: rows, Noise: 5, Seed: 12})
	sigma := gen.Constraints()
	res, err := Repair(inst, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining != 0 {
		t.Fatalf("repair left %d violations after %d rounds", res.Remaining, res.Rounds)
	}
	ok, err := core.Satisfies(res.Repaired, sigma)
	if err != nil || !ok {
		t.Fatal("repaired instance must satisfy Σ")
	}
	// ~150 corruptions; every corruption needs ≥1 change, FD majority
	// rewrites may add a few more. Far below rows.
	if len(res.Changes) < rows*3/100 || len(res.Changes) > rows*20/100 {
		t.Errorf("change count %d out of the plausible band for 5%% noise on %d rows",
			len(res.Changes), rows)
	}
}

// TestRepairMajorityFD: the minority tuple adopts the majority's RHS.
func TestRepairMajorityFD(t *testing.T) {
	s := relation.MustSchema("m",
		relation.Attribute{Name: "K", Kind: relation.KindText},
		relation.Attribute{Name: "V", Kind: relation.KindText})
	fd := (&core.FD{Schema: s, X: []string{"K"}, Y: []string{"V"}}).AsECFD()
	fd.Name = "fd"
	inst := relation.New(s)
	for i := 0; i < 3; i++ {
		inst.MustInsert(relation.Tuple{relation.Text("k"), relation.Text("good")})
	}
	inst.MustInsert(relation.Tuple{relation.Text("k"), relation.Text("bad")})
	res, err := Repair(inst, []*core.ECFD{fd}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining != 0 || len(res.Changes) != 1 {
		t.Fatalf("res = %+v", res)
	}
	ch := res.Changes[0]
	if ch.Row != 3 || ch.Old.S != "bad" || ch.New.S != "good" {
		t.Errorf("change = %+v, want row 3 bad→good", ch)
	}
}

// TestRepairNotInPattern: a ∉S violation moves to a frequent value
// outside S, or a fresh one when the column offers nothing.
func TestRepairNotInPattern(t *testing.T) {
	s := relation.MustSchema("n",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	e := &core.ECFD{Name: "noB", Schema: s, X: []string{"A"}, YP: []string{"B"},
		Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()},
			RHS: []core.Pattern{core.NotInStrings("banned")}}}}
	inst := relation.New(s)
	inst.MustInsert(relation.Tuple{relation.Text("x"), relation.Text("banned")})
	inst.MustInsert(relation.Tuple{relation.Text("y"), relation.Text("fine")})
	res, err := Repair(inst, []*core.ECFD{e}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining != 0 {
		t.Fatal("must repair")
	}
	if got := res.Repaired.Rows[0][1].S; got != "fine" {
		t.Errorf("repaired to %q, want the frequent admissible value 'fine'", got)
	}

	// With no admissible column value, a fresh one is invented.
	inst2 := relation.New(s)
	inst2.MustInsert(relation.Tuple{relation.Text("x"), relation.Text("banned")})
	res, err = Repair(inst2, []*core.ECFD{e}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining != 0 || res.Repaired.Rows[0][1].S == "banned" {
		t.Errorf("fresh-value repair failed: %+v", res)
	}
}

// TestRepairUnsatisfiableReportsRemaining: an unsatisfiable Σ cannot be
// repaired to zero; the result must say so instead of looping.
func TestRepairUnsatisfiableReportsRemaining(t *testing.T) {
	s := relation.MustSchema("u",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	mk := func(name string, p core.Pattern) *core.ECFD {
		return &core.ECFD{Name: name, Schema: s, X: []string{"A"}, YP: []string{"B"},
			Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()}, RHS: []core.Pattern{p}}}}
	}
	sigma := []*core.ECFD{mk("c1", core.InStrings("v")), mk("c2", core.NotInStrings("v"))}
	inst := relation.New(s)
	inst.MustInsert(relation.Tuple{relation.Text("x"), relation.Text("w")})
	res, err := Repair(inst, sigma, Options{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining == 0 {
		t.Fatal("an unsatisfiable Σ cannot be fully repaired")
	}
	if res.Rounds != 3 {
		t.Errorf("rounds = %d, want the cap 3", res.Rounds)
	}
}

func TestRepairInvalidConstraint(t *testing.T) {
	bad := &core.ECFD{Name: "bad", Schema: core.CustSchema(), X: []string{"CT"}, Y: []string{"AC"}}
	if _, err := Repair(core.Fig1Instance(), []*core.ECFD{bad}, Options{}); err == nil {
		t.Error("invalid constraint must error")
	}
}

// TestRepairPropertyRandom is the randomized soundness property: over
// random workloads (row counts, noise levels, constraint subsets,
// round budgets) a repair result must be internally consistent —
// Remaining equals the naive violation count of the repaired instance,
// Remaining == 0 implies the instance satisfies Σ, the input is never
// modified, and every cell that differs between input and output is
// accounted for by a logged Change.
func TestRepairPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	all := gen.Constraints()
	for trial := 0; trial < 10; trial++ {
		rows := 200 + rng.Intn(400)
		noise := float64(rng.Intn(12))
		inst := gen.Dataset(gen.Config{Rows: rows, Noise: noise, Seed: int64(trial + 1)})
		before := inst.Clone()

		k := 1 + rng.Intn(len(all))
		var sigma []*core.ECFD
		for _, i := range rng.Perm(len(all))[:k] {
			sigma = append(sigma, all[i])
		}
		opts := Options{MaxRounds: 1 + rng.Intn(6)}

		res, err := Repair(inst, sigma, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// The input is untouched.
		for ri := range inst.Rows {
			if !inst.Rows[ri].Equal(before.Rows[ri]) {
				t.Fatalf("trial %d: Repair modified its input at row %d", trial, ri)
			}
		}
		// Remaining agrees with the naive oracle on the repaired data.
		v, err := core.NaiveDetect(res.Repaired, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if got := v.Count(); got != res.Remaining {
			t.Fatalf("trial %d: Remaining=%d but naive counts %d violating rows", trial, res.Remaining, got)
		}
		if res.Remaining == 0 {
			ok, err := core.Satisfies(res.Repaired, sigma)
			if err != nil || !ok {
				t.Fatalf("trial %d: Remaining=0 but Satisfies=%v (%v)", trial, ok, err)
			}
		}
		// Every differing cell is covered by a logged change.
		changed := map[[2]int]bool{}
		for _, ch := range res.Changes {
			ci := inst.Schema.Index(ch.Attribute)
			if ci < 0 {
				t.Fatalf("trial %d: change names unknown attribute %q", trial, ch.Attribute)
			}
			changed[[2]int{ch.Row, ci}] = true
		}
		for ri := range inst.Rows {
			for ci := range inst.Rows[ri] {
				same := relation.Identical(inst.Rows[ri][ci], res.Repaired.Rows[ri][ci])
				if !same && !changed[[2]int{ri, ci}] {
					t.Fatalf("trial %d: cell (%d,%d) differs but no Change logs it", trial, ri, ci)
				}
			}
		}
		if res.Rounds < 1 || res.Rounds > opts.MaxRounds {
			t.Fatalf("trial %d: rounds %d outside [1,%d]", trial, res.Rounds, opts.MaxRounds)
		}
	}
}

// TestRepairFullSigmaConverges: with the full generated Σ and the
// default round budget, repairs of moderately noisy data always reach
// a satisfying instance (the deterministic test pins one workload;
// this sweeps seeds and noise levels).
func TestRepairFullSigmaConverges(t *testing.T) {
	sigma := gen.Constraints()
	for seed := int64(1); seed <= 4; seed++ {
		inst := gen.Dataset(gen.Config{Rows: 800, Noise: float64(seed * 2), Seed: seed})
		res, err := Repair(inst, sigma, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Remaining != 0 {
			t.Fatalf("seed %d: %d violations remain after %d rounds", seed, res.Remaining, res.Rounds)
		}
		ok, err := core.Satisfies(res.Repaired, sigma)
		if err != nil || !ok {
			t.Fatalf("seed %d: repaired instance does not satisfy Σ (%v)", seed, err)
		}
	}
}
