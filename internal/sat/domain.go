// Package sat implements the paper's static analyses (§III): exact
// satisfiability via the single-tuple small-model property
// (Proposition 3.1) and exact implication via the two-tuple small-model
// property (Proposition 3.2), both over finite- and infinite-domain
// attributes (Proposition 3.3). Both problems are NP-hard (resp.
// coNP-hard), so the solvers are backtracking searches over active
// domains — complete, and fast for realistic constraint sets.
package sat

import (
	"fmt"

	"ecfd/internal/core"
	"ecfd/internal/relation"
)

// ActiveDomains computes, per attribute, the candidate values a
// small-model witness ever needs to consider: every constant mentioned
// in a pattern cell over the attribute, plus `fresh` values mentioned
// nowhere (capped by the attribute's finite domain when it has one).
// Patterns cannot distinguish two unmentioned values, so this set is
// complete (the paper's adom construction, §IV).
func ActiveDomains(schema *relation.Schema, sigma []*core.ECFD, fresh int) ([][]relation.Value, error) {
	mentioned := make([]map[string]relation.Value, schema.Width())
	for i := range mentioned {
		mentioned[i] = make(map[string]relation.Value)
	}
	add := func(attr string, p core.Pattern) error {
		i := schema.Index(attr)
		if i < 0 {
			return fmt.Errorf("sat: unknown attribute %q", attr)
		}
		for _, v := range p.Set {
			mentioned[i][v.Key()] = v
		}
		return nil
	}
	for _, e := range sigma {
		for _, tp := range e.Tableau {
			for j, attr := range e.X {
				if err := add(attr, tp.LHS[j]); err != nil {
					return nil, err
				}
			}
			for j, attr := range e.RHS() {
				if err := add(attr, tp.RHS[j]); err != nil {
					return nil, err
				}
			}
		}
	}

	out := make([][]relation.Value, schema.Width())
	for i, a := range schema.Attrs {
		var cands []relation.Value
		if a.Finite() {
			// Mentioned in-domain constants plus up to `fresh`
			// unmentioned domain values.
			left := fresh
			for _, v := range a.Domain {
				if _, hit := mentioned[i][v.Key()]; hit {
					cands = append(cands, v)
				} else if left > 0 {
					cands = append(cands, v)
					left--
				}
			}
		} else {
			for _, v := range mentioned[i] {
				cands = append(cands, v)
			}
			sortValues(cands)
			for f := 0; f < fresh; f++ {
				cands = append(cands, freshValue(a.Kind, cands))
			}
		}
		if len(cands) == 0 {
			cands = append(cands, freshValue(a.Kind, nil))
		}
		out[i] = cands
	}
	return out, nil
}

func sortValues(vs []relation.Value) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && relation.Compare(vs[j], vs[j-1]) < 0; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// freshValue returns a value of the kind that differs from everything
// in taken.
func freshValue(k relation.Kind, taken []relation.Value) relation.Value {
	switch k {
	case relation.KindInt:
		var max int64
		for _, v := range taken {
			if v.I >= max {
				max = v.I + 1
			}
		}
		return relation.Int(max)
	case relation.KindFloat:
		var max float64
		for _, v := range taken {
			if v.F >= max {
				max = v.F + 1
			}
		}
		return relation.Float(max)
	case relation.KindBool:
		// Booleans are inherently finite; prefer an unused value.
		used := map[int64]bool{}
		for _, v := range taken {
			used[v.I] = true
		}
		if !used[0] {
			return relation.Bool(false)
		}
		return relation.Bool(true)
	default:
		cand := "⊥0"
		for i := 0; ; i++ {
			cand = fmt.Sprintf("⊥%d", i)
			hit := false
			for _, v := range taken {
				if v.K == relation.KindText && v.S == cand {
					hit = true
					break
				}
			}
			if !hit {
				break
			}
		}
		return relation.Text(cand)
	}
}
