package sat

import (
	"testing"

	"ecfd/internal/core"
	"ecfd/internal/relation"
)

func TestActiveDomainsCollectConstants(t *testing.T) {
	schema := core.CustSchema()
	sigma := core.Split(core.Fig2Constraints())
	doms, err := ActiveDomains(schema, sigma, 1)
	if err != nil {
		t.Fatal(err)
	}
	ct := doms[schema.Index("CT")]
	// {NYC, LI} ∪ {Albany, Troy, Colonie} + 1 fresh = 6.
	if len(ct) != 6 {
		t.Errorf("CT active domain = %v", ct)
	}
	ac := doms[schema.Index("AC")]
	// {518} ∪ {212,718,646,347,917} + 1 fresh = 7.
	if len(ac) != 7 {
		t.Errorf("AC active domain = %v", ac)
	}
	// Unmentioned attributes still get one fresh candidate.
	if len(doms[schema.Index("NM")]) != 1 {
		t.Errorf("NM active domain = %v", doms[schema.Index("NM")])
	}
	// The fresh value must differ from every constant.
	for _, v := range ct[:5] {
		if relation.Equal(v, ct[5]) {
			t.Error("fresh value collides with a constant")
		}
	}
}

func TestActiveDomainsFiniteDomainCap(t *testing.T) {
	schema := relation.MustSchema("s",
		relation.Attribute{Name: "A", Kind: relation.KindText,
			Domain: []relation.Value{relation.Text("p"), relation.Text("q"), relation.Text("r")}},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	e := &core.ECFD{Name: "e", Schema: schema, X: []string{"B"}, YP: []string{"A"},
		Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()},
			RHS: []core.Pattern{core.InStrings("p")}}}}
	doms, err := ActiveDomains(schema, []*core.ECFD{e}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// p (mentioned) + one unmentioned domain value — not more.
	if len(doms[0]) != 2 {
		t.Errorf("finite active domain = %v", doms[0])
	}
	// With fresh = 2 we still cannot exceed the domain.
	doms, _ = ActiveDomains(schema, []*core.ECFD{e}, 2)
	if len(doms[0]) != 3 {
		t.Errorf("finite domain with fresh=2: %v", doms[0])
	}
}

func TestActiveDomainsUnknownAttribute(t *testing.T) {
	schema := core.CustSchema()
	bad := &core.ECFD{Name: "bad", Schema: relation.MustSchema("cust",
		relation.Attribute{Name: "OTHER", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText}),
		X: []string{"OTHER"}, YP: []string{"B"},
		Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.InStrings("x")},
			RHS: []core.Pattern{core.Any()}}}}
	if _, err := ActiveDomains(schema, []*core.ECFD{bad}, 1); err == nil {
		t.Error("attribute outside the schema must fail")
	}
}

func TestFreshValueKinds(t *testing.T) {
	iv := freshValue(relation.KindInt, []relation.Value{relation.Int(5), relation.Int(9)})
	if iv.I != 10 {
		t.Errorf("fresh int = %v", iv)
	}
	fv := freshValue(relation.KindFloat, []relation.Value{relation.Float(1.5)})
	if fv.F != 2.5 {
		t.Errorf("fresh float = %v", fv)
	}
	bv := freshValue(relation.KindBool, []relation.Value{relation.Bool(false)})
	if !bv.Truth() {
		t.Errorf("fresh bool should be the unused value, got %v", bv)
	}
	tv := freshValue(relation.KindText, []relation.Value{relation.Text("⊥0"), relation.Text("⊥1")})
	if tv.S != "⊥2" {
		t.Errorf("fresh text = %v", tv)
	}
}

func TestSatisfiableBoolAttribute(t *testing.T) {
	schema := relation.MustSchema("b",
		relation.Attribute{Name: "F", Kind: relation.KindBool},
		relation.Attribute{Name: "G", Kind: relation.KindText})
	// F must not be true and must not be false → unsatisfiable.
	sigma := []*core.ECFD{
		{Name: "c1", Schema: schema, X: []string{"G"}, YP: []string{"F"},
			Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()},
				RHS: []core.Pattern{core.NotInSet(relation.Bool(true))}}}},
		{Name: "c2", Schema: schema, X: []string{"G"}, YP: []string{"F"},
			Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()},
				RHS: []core.Pattern{core.NotInSet(relation.Bool(false))}}}},
	}
	ok, _, err := Satisfiable(schema, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("excluding both booleans must be unsatisfiable")
	}
	// Dropping one constraint restores satisfiability.
	ok, w, err := Satisfiable(schema, sigma[:1])
	if err != nil || !ok {
		t.Fatalf("single bool exclusion must be satisfiable: %v", err)
	}
	if w[0].Truth() {
		t.Error("witness must have F = false")
	}
}

func TestSatisfiableInvalidConstraint(t *testing.T) {
	schema := core.CustSchema()
	bad := &core.ECFD{Name: "bad", Schema: schema, X: []string{"CT"}, Y: []string{"AC"}}
	if _, _, err := Satisfiable(schema, []*core.ECFD{bad}); err == nil {
		t.Error("invalid constraint must surface an error")
	}
	if _, _, err := Implies(schema, []*core.ECFD{bad}, core.Fig2Constraints()[0]); err == nil {
		t.Error("invalid Σ must surface an error in Implies")
	}
	if _, _, err := Implies(schema, core.Fig2Constraints(), bad); err == nil {
		t.Error("invalid φ must surface an error in Implies")
	}
}
