package sat

import (
	"ecfd/internal/core"
	"ecfd/internal/relation"
)

// Counterexample is an instance witnessing Σ ⊭ φ: one or two tuples
// satisfying Σ but violating φ.
type Counterexample struct {
	Tuples []relation.Tuple
}

// Implies decides Σ ⊨ φ (the implication problem, §III). By the
// two-tuple small-model property (proof of Proposition 3.2), Σ ⊭ φ iff
// a counterexample with at most two tuples exists; the search runs over
// the active domains of Σ ∪ {φ} with two fresh values per attribute
// (so the two tuples can differ on unconstrained attributes).
//
// φ with several pattern tuples is implied iff each of its splits is.
// The problem is coNP-complete; the search is exponential in the width
// of the schema in the worst case.
func Implies(schema *relation.Schema, sigma []*core.ECFD, phi *core.ECFD) (bool, *Counterexample, error) {
	if err := phi.Validate(); err != nil {
		return false, nil, err
	}
	for _, e := range sigma {
		if err := e.Validate(); err != nil {
			return false, nil, err
		}
	}
	splitSigma := core.Split(sigma)
	all := append(append([]*core.ECFD{}, splitSigma...), phi.Split()...)
	cands, err := ActiveDomains(schema, all, 2)
	if err != nil {
		return false, nil, err
	}
	sigmaC := compileConstraints(schema, splitSigma)

	for _, target := range phi.Split() {
		if cx := findCounterexample(schema, sigmaC, splitSigma, cands, target); cx != nil {
			return false, cx, nil
		}
	}
	return true, nil, nil
}

// findCounterexample looks for I ⊨ Σ with I ⊭ target (single-pattern).
func findCounterexample(schema *relation.Schema, sigmaC []constraintC, splitSigma []*core.ECFD,
	cands [][]relation.Value, target *core.ECFD) *Counterexample {
	tc := compileConstraints(schema, []*core.ECFD{target})[0]

	// Case 1: a single tuple satisfying Σ but violating target's
	// pattern constraint — prune branches where the target is already
	// decided-satisfiable... we cannot prune on "must violate" cheaply,
	// so we enumerate Σ-consistent tuples and test the target at the
	// leaf, with one extra prune: once every target attribute is
	// assigned, require the violation.
	t1 := make(relation.Tuple, schema.Width())
	foundSingle := dfsWitness(schema, sigmaC, cands, t1, 0, func(t relation.Tuple, assigned int) bool {
		if tc.maxAttr <= assigned-1 {
			return tc.violatedBy(t, assigned)
		}
		return true
	})
	if foundSingle {
		return &Counterexample{Tuples: []relation.Tuple{t1.Clone()}}
	}

	// Case 2: two tuples jointly satisfying Σ (patterns + embedded FDs)
	// but violating target's embedded FD: both match target's LHS
	// pattern, agree on X, differ on Y.
	if len(target.Y) == 0 {
		return nil
	}
	xIdx := indexesOf(schema, target.X)
	yIdx := indexesOf(schema, target.Y)

	ta := make(relation.Tuple, schema.Width())
	tb := make(relation.Tuple, schema.Width())

	matchesLHS := func(t relation.Tuple, assigned int) bool {
		// Prune: t must (still be able to) match target's LHS pattern.
		for _, r := range tc.lhs {
			if r.attr < assigned && !r.pat.Matches(t[r.attr]) {
				return false
			}
		}
		return true
	}

	var found *Counterexample
	// Enumerate ta: Σ-consistent, matches target LHS.
	dfsWitness(schema, sigmaC, cands, ta, 0, func(t relation.Tuple, assigned int) bool {
		if found != nil {
			return false // already done; prune the remaining search
		}
		if !matchesLHS(t, assigned) {
			return false
		}
		if assigned < schema.Width() {
			return true
		}
		// ta complete: enumerate tb with the pair conditions. Whatever
		// the outcome, report this leaf as pruned so the outer search
		// keeps enumerating further ta candidates instead of stopping
		// at the first Σ-consistent one.
		ok := dfsWitness(schema, sigmaC, cands, tb, 0, func(u relation.Tuple, uAssigned int) bool {
			if !matchesLHS(u, uAssigned) {
				return false
			}
			// Agree with ta on target.X (prunes hard).
			for _, xi := range xIdx {
				if xi < uAssigned && !valueEq(u[xi], ta[xi]) {
					return false
				}
			}
			if uAssigned < schema.Width() {
				return true
			}
			// Differ on some Y attribute.
			diff := false
			for _, yi := range yIdx {
				if !valueEq(u[yi], ta[yi]) {
					diff = true
					break
				}
			}
			if !diff {
				return false
			}
			// The pair must satisfy every embedded FD of Σ.
			return pairSatisfiesFDs(schema, splitSigma, ta, u)
		})
		if ok {
			found = &Counterexample{Tuples: []relation.Tuple{ta.Clone(), tb.Clone()}}
		}
		return false
	})
	return found
}

// valueEq is tuple-identity equality: NULLs are equal to each other.
func valueEq(a, b relation.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return relation.Equal(a, b)
}

// pairSatisfiesFDs checks every embedded FD of Σ on the two tuples.
func pairSatisfiesFDs(schema *relation.Schema, split []*core.ECFD, a, b relation.Tuple) bool {
	for _, e := range split {
		if len(e.Y) == 0 {
			continue
		}
		if !e.MatchesLHS(a, 0) || !e.MatchesLHS(b, 0) {
			continue
		}
		agree := true
		for _, xi := range indexesOf(schema, e.X) {
			if !valueEq(a[xi], b[xi]) {
				agree = false
				break
			}
		}
		if !agree {
			continue
		}
		for _, yi := range indexesOf(schema, e.Y) {
			if !valueEq(a[yi], b[yi]) {
				return false
			}
		}
	}
	return true
}

func indexesOf(schema *relation.Schema, attrs []string) []int {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		out[i] = schema.Index(a)
	}
	return out
}
