package sat

import (
	"math/rand"

	"ecfd/internal/core"
	"ecfd/internal/maxgsat"
	"ecfd/internal/relation"
)

// Reduction is the paper's §IV approximation-factor-preserving
// reduction f from MAXSS to MAXGSAT, kept around so g can map a truth
// assignment back to a satisfiable subset of Σ.
//
// Variables: x(i,a) = true iff the witness tuple t has t[Ai] = a, for
// every attribute Ai and every a in its active domain. φ_R (the
// well-formedness formula) forces exactly one x(i,·) per attribute; the
// instance has one formula ψ(φ,tp) ∧ φ_R per pattern constraint, where
// ψ(φ,tp) says "t misses tp[X], or t matches tp[Y,Yp]".
type Reduction struct {
	Schema     *relation.Schema
	Split      []*core.ECFD // single-pattern constraints; formula i ↔ Split[i]
	Candidates [][]relation.Value
	Groups     [][]int // variable ids per attribute (the one-hot groups)
	Instance   *maxgsat.Instance

	varOf map[[2]int]int // (attr, candidate) → variable id
}

// BuildReduction computes f(Σ). Both f and g run in PTIME in the size
// of Σ and the schema, as Proposition 4.1 requires.
func BuildReduction(schema *relation.Schema, sigma []*core.ECFD) (*Reduction, error) {
	split := core.Split(sigma)
	cands, err := ActiveDomains(schema, split, 1)
	if err != nil {
		return nil, err
	}
	r := &Reduction{
		Schema:     schema,
		Split:      split,
		Candidates: cands,
		varOf:      make(map[[2]int]int),
	}
	id := 0
	r.Groups = make([][]int, schema.Width())
	for i := range cands {
		for a := range cands[i] {
			r.varOf[[2]int{i, a}] = id
			r.Groups[i] = append(r.Groups[i], id)
			id++
		}
	}

	// φ_R: for each attribute, exactly one candidate chosen.
	var wellFormed maxgsat.And
	for i := range cands {
		var oneOf maxgsat.Or
		for a := range cands[i] {
			oneOf = append(oneOf, maxgsat.Var(r.varOf[[2]int{i, a}]))
		}
		wellFormed = append(wellFormed, oneOf)
		for a := 0; a < len(cands[i]); a++ {
			for b := a + 1; b < len(cands[i]); b++ {
				wellFormed = append(wellFormed, maxgsat.Or{
					maxgsat.Not{X: maxgsat.Var(r.varOf[[2]int{i, a}])},
					maxgsat.Not{X: maxgsat.Var(r.varOf[[2]int{i, b}])},
				})
			}
		}
	}

	inst := &maxgsat.Instance{NumVars: id}
	for _, e := range split {
		tp := e.Tableau[0]
		var miss maxgsat.Or
		for j, attr := range e.X {
			miss = append(miss, maxgsat.Not{X: r.matchFormula(attr, tp.LHS[j])})
		}
		var hit maxgsat.And
		for j, attr := range e.RHS() {
			hit = append(hit, r.matchFormula(attr, tp.RHS[j]))
		}
		psi := maxgsat.Or{miss, hit}
		inst.Formulas = append(inst.Formulas, maxgsat.And{psi, wellFormed})
	}
	r.Instance = inst
	return r, nil
}

// matchFormula encodes t[attr] ≍ pattern over the x(i,a) variables.
func (r *Reduction) matchFormula(attr string, p core.Pattern) maxgsat.Formula {
	i := r.Schema.Index(attr)
	switch p.Op {
	case core.Wildcard:
		return maxgsat.Const(true)
	case core.In:
		var f maxgsat.Or
		for a, v := range r.Candidates[i] {
			if p.Matches(v) {
				f = append(f, maxgsat.Var(r.varOf[[2]int{i, a}]))
			}
		}
		return f
	default: // NotIn: no chosen candidate may lie in the set
		var f maxgsat.And
		for a, v := range r.Candidates[i] {
			if !p.Matches(v) {
				f = append(f, maxgsat.Not{X: maxgsat.Var(r.varOf[[2]int{i, a}])})
			}
		}
		return f
	}
}

// Extract is g: map a truth assignment to the witness tuple it encodes
// and the subset of Σ that tuple satisfies. For assignments satisfying
// φ_R the satisfied-formula set and the satisfied-constraint set
// coincide (card(Φm) = card(g(Φm)), as in the proof of Prop. 4.1).
func (r *Reduction) Extract(assign []bool) (relation.Tuple, []int) {
	t := make(relation.Tuple, r.Schema.Width())
	for i := range r.Candidates {
		t[i] = r.Candidates[i][0]
		for a := range r.Candidates[i] {
			if assign[r.varOf[[2]int{i, a}]] {
				t[i] = r.Candidates[i][a]
				break
			}
		}
	}
	var subset []int
	for k, e := range r.Split {
		if core.SatisfiesTuple(r.Schema, t, []*core.ECFD{e}) {
			subset = append(subset, k)
		}
	}
	return t, subset
}

// MaxSSResult reports an approximate maximum satisfiable subset.
type MaxSSResult struct {
	// Subset indexes into core.Split(sigma); the subset is satisfiable
	// (Witness alone satisfies it).
	Subset  []int
	Witness relation.Tuple
	// Total is the number of (split) constraints in Σ.
	Total int
	// Exact reports whether the underlying MAXGSAT solve was exhaustive,
	// making the subset a true maximum.
	Exact bool
}

// MaxSS approximates the maximum satisfiable subset problem (§IV) by
// solving the reduced MAXGSAT instance and extracting g(Φm). Small
// instances are solved exactly; larger ones by one-hot coordinate
// ascent with random restarts (seeded, deterministic).
//
// If len(result.Subset) == len(split Σ), Σ is satisfiable. As the paper
// notes, an ε-approximate MAXGSAT solution maps to an ε-approximate
// MAXSS solution.
func MaxSS(schema *relation.Schema, sigma []*core.ECFD, seed int64) (MaxSSResult, error) {
	r, err := BuildReduction(schema, sigma)
	if err != nil {
		return MaxSSResult{}, err
	}
	var sol maxgsat.Solution
	if r.Instance.NumVars <= maxgsat.ExactMaxVars {
		sol, err = maxgsat.SolveExact(r.Instance)
		if err != nil {
			return MaxSSResult{}, err
		}
	} else {
		restarts := 8 + len(r.Split)/2
		sol = maxgsat.SolveOneHot(r.Instance, r.Groups, restarts, rand.New(rand.NewSource(seed)))
	}
	witness, subset := r.Extract(sol.Assign)
	return MaxSSResult{Subset: subset, Witness: witness, Total: len(r.Split), Exact: sol.Exact}, nil
}
