package sat

import (
	"math/rand"
	"testing"

	"ecfd/internal/core"
	"ecfd/internal/maxgsat"
	"ecfd/internal/relation"
)

func TestMaxSSAllSatisfiable(t *testing.T) {
	schema := core.CustSchema()
	sigma := core.Fig2Constraints()
	res, err := MaxSS(schema, sigma, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subset) != res.Total {
		t.Errorf("satisfiable Σ: subset %d of %d", len(res.Subset), res.Total)
	}
	if !core.SatisfiesTuple(schema, res.Witness, core.Split(sigma)) {
		t.Error("witness must satisfy the whole Σ")
	}
}

func TestMaxSSContradiction(t *testing.T) {
	schema := relation.MustSchema("s",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	in := func(p core.Pattern) *core.ECFD {
		e := &core.ECFD{Schema: schema, X: []string{"A"}, YP: []string{"B"},
			Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()}, RHS: []core.Pattern{p}}}}
		return e
	}
	sigma := []*core.ECFD{in(core.InStrings("v")), in(core.NotInStrings("v"))}
	res, err := MaxSS(schema, sigma, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subset) != 1 {
		t.Errorf("contradictory pair: max satisfiable subset = %d, want 1", len(res.Subset))
	}
	// The returned subset is genuinely satisfiable.
	var sub []*core.ECFD
	for _, i := range res.Subset {
		sub = append(sub, core.Split(sigma)[i])
	}
	ok, _, err := Satisfiable(schema, sub)
	if err != nil || !ok {
		t.Errorf("returned subset unsatisfiable: %v", err)
	}
}

// TestReductionAgainstBruteForce verifies Proposition 4.1 empirically:
// on random tiny Σ, the exact optimum of the reduced MAXGSAT instance
// equals the exact MAXSS optimum, and g maps optimal solutions to
// optimal subsets.
func TestReductionAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	schema := relation.MustSchema("r",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	for trial := 0; trial < 40; trial++ {
		sigma := randomTinySigma(rng, schema)
		red, err := BuildReduction(schema, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if red.Instance.NumVars > maxgsat.ExactMaxVars {
			continue
		}
		sol, err := maxgsat.SolveExact(red.Instance)
		if err != nil {
			t.Fatal(err)
		}
		bruteBest, _, err := MaxSatisfiableBruteForce(schema, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Satisfied != len(bruteBest) {
			t.Fatalf("trial %d: OPT_maxgsat(f(Σ)) = %d but OPT_maxss(Σ) = %d\n%s",
				trial, sol.Satisfied, len(bruteBest), sigmaStr(sigma))
		}
		_, subset := red.Extract(sol.Assign)
		if len(subset) != sol.Satisfied {
			t.Fatalf("trial %d: card(g(Φm)) = %d ≠ card(Φm) = %d", trial, len(subset), sol.Satisfied)
		}
	}
}

// TestExtractFeasibility: g always returns a feasible (satisfiable)
// subset even from garbage assignments (all-false, all-true).
func TestExtractFeasibility(t *testing.T) {
	schema := core.CustSchema()
	red, err := BuildReduction(schema, core.Fig2Constraints())
	if err != nil {
		t.Fatal(err)
	}
	for _, fill := range []bool{false, true} {
		assign := make([]bool, red.Instance.NumVars)
		for i := range assign {
			assign[i] = fill
		}
		witness, subset := red.Extract(assign)
		var sub []*core.ECFD
		for _, i := range subset {
			sub = append(sub, red.Split[i])
		}
		if len(sub) > 0 && !core.SatisfiesTuple(schema, witness, sub) {
			t.Errorf("fill=%v: extracted subset not satisfied by its witness", fill)
		}
	}
}

// TestMaxSSHeuristicPath forces the one-hot heuristic (many variables)
// and checks it still returns a feasible subset with a valid witness.
func TestMaxSSHeuristicPath(t *testing.T) {
	schema := core.CustSchema()
	// Many constraints with many constants → variable count above the
	// exact-solver bound.
	var sigma []*core.ECFD
	cities := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, ct := range cities {
		sigma = append(sigma, &core.ECFD{
			Name: cities[i], Schema: schema, X: []string{"CT"}, YP: []string{"AC"},
			Tableau: []core.PatternTuple{{
				LHS: []core.Pattern{core.InStrings(ct)},
				RHS: []core.Pattern{core.InStrings(ct+"1", ct+"2")},
			}},
		})
	}
	red, err := BuildReduction(schema, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if red.Instance.NumVars <= maxgsat.ExactMaxVars {
		t.Fatalf("test needs a large instance, got %d vars", red.Instance.NumVars)
	}
	res, err := MaxSS(schema, sigma, 7)
	if err != nil {
		t.Fatal(err)
	}
	// All constraints have disjoint LHS cities, so all are jointly
	// satisfiable; the heuristic should find everything satisfiable
	// with one witness... but one tuple can only have one CT! With a
	// single-tuple witness only constraints whose LHS misses the tuple
	// are vacuously satisfied, so all 8 are satisfiable (pick CT
	// outside all cities).
	if len(res.Subset) != res.Total {
		t.Errorf("heuristic found %d of %d (a fresh CT satisfies all vacuously)", len(res.Subset), res.Total)
	}
}
