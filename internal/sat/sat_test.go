package sat

import (
	"fmt"
	"math/rand"
	"testing"

	"ecfd/internal/core"
	"ecfd/internal/relation"
)

func TestFig2Satisfiable(t *testing.T) {
	schema := core.CustSchema()
	sigma := core.Fig2Constraints()
	ok, witness, err := Satisfiable(schema, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Fig. 2 constraints must be satisfiable")
	}
	if !core.SatisfiesTuple(schema, witness, core.Split(sigma)) {
		t.Errorf("returned witness %v does not satisfy Σ", witness)
	}
}

// TestExample31Unsatisfiable reproduces Example 3.1: ψ3 forces
// CT = NYC ⇒ CT = NYC ∧ CT = LI... but only for tuples with CT = NYC.
// A tuple with CT ≠ NYC satisfies it, so ψ3 alone IS satisfiable by the
// single-tuple semantics; adding a constraint forcing CT = NYC makes
// the set unsatisfiable.
func TestExample31Unsatisfiable(t *testing.T) {
	schema := core.CustSchema()
	psi3 := core.Example31Unsatisfiable()

	// ψ3 alone: satisfiable by any tuple with CT ∉ {NYC}.
	ok, w, err := Satisfiable(schema, []*core.ECFD{psi3})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ψ3 alone is satisfiable by a non-NYC tuple")
	}
	if w[schema.Index("CT")].S == "NYC" {
		t.Error("witness cannot have CT = NYC")
	}

	// Force CT = NYC: now every tuple violates the set — unsatisfiable
	// (the paper's point: a database where some tuple has CT = NYC
	// cannot satisfy ψ3; forcing the witness into that region shows the
	// interaction).
	force := &core.ECFD{
		Name: "forceNYC", Schema: schema, X: []string{"CT"}, YP: []string{"CT"},
		Tableau: []core.PatternTuple{{
			LHS: []core.Pattern{core.Any()},
			RHS: []core.Pattern{core.InStrings("NYC")},
		}},
	}
	ok, _, err = Satisfiable(schema, []*core.ECFD{psi3, force})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ψ3 + (CT must be NYC) must be unsatisfiable")
	}
}

// TestDirectContradiction: an eCFD requiring A ∈ {x} and A ∉ {x} at
// once is unsatisfiable whenever its LHS is unavoidable.
func TestDirectContradiction(t *testing.T) {
	schema := relation.MustSchema("s",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	sigma := []*core.ECFD{
		{Name: "c1", Schema: schema, X: []string{"A"}, YP: []string{"B"},
			Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()}, RHS: []core.Pattern{core.InStrings("x")}}}},
		{Name: "c2", Schema: schema, X: []string{"A"}, YP: []string{"B"},
			Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()}, RHS: []core.Pattern{core.NotInStrings("x")}}}},
	}
	ok, _, err := Satisfiable(schema, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("B ∈ {x} ∧ B ∉ {x} must be unsatisfiable")
	}
}

// TestFiniteDomainUnsatisfiable mirrors Proposition 3.3's mechanism: a
// finite domain can be exhausted by NotIn patterns.
func TestFiniteDomainUnsatisfiable(t *testing.T) {
	schema := relation.MustSchema("s",
		relation.Attribute{Name: "A", Kind: relation.KindText,
			Domain: []relation.Value{relation.Text("p"), relation.Text("q")}},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	block := &core.ECFD{Name: "block", Schema: schema, X: []string{"B"}, YP: []string{"A"},
		Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()},
			RHS: []core.Pattern{core.NotInStrings("p", "q")}}}}
	ok, _, err := Satisfiable(schema, []*core.ECFD{block})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("excluding the whole finite domain must be unsatisfiable")
	}

	// The same constraint over an infinite domain is satisfiable: an
	// eCFD can no longer force finiteness here because values outside
	// {p, q} exist (this is exactly why Prop. 3.3 needs the ψ_A trick).
	inf := relation.MustSchema("s",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	block2 := block.Clone()
	block2.Schema = inf
	ok, _, err = Satisfiable(inf, []*core.ECFD{block2})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("excluding finitely many values of an infinite domain is satisfiable")
	}
}

// TestProposition33Reduction builds the ψ_A constraint of the
// Proposition 3.3 proof: an eCFD restricting an infinite-domain
// attribute to a finite value set, making further analysis behave as if
// the domain were finite.
func TestProposition33Reduction(t *testing.T) {
	schema := relation.MustSchema("s",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	// ψ_A: A' must take values in {a1, a2} (simulating dom(A) finite).
	psiA := &core.ECFD{Name: "psiA", Schema: schema, X: []string{"A"}, YP: []string{"A"},
		Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()},
			RHS: []core.Pattern{core.InStrings("a1", "a2")}}}}
	// Excluding both permitted values is then unsatisfiable even though
	// dom(A) is infinite.
	noA := &core.ECFD{Name: "noA", Schema: schema, X: []string{"B"}, YP: []string{"A"},
		Tableau: []core.PatternTuple{{LHS: []core.Pattern{core.Any()},
			RHS: []core.Pattern{core.NotInStrings("a1", "a2")}}}}
	ok, _, err := Satisfiable(schema, []*core.ECFD{psiA, noA})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ψ_A + exclusion must be unsatisfiable on infinite domains")
	}
}

// TestSatisfiableAgainstBruteForce cross-checks the DFS solver against
// exhaustive enumeration on random small constraint sets.
func TestSatisfiableAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	schema := relation.MustSchema("r",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	for trial := 0; trial < 60; trial++ {
		sigma := randomTinySigma(rng, schema)
		ok, w, err := Satisfiable(schema, sigma)
		if err != nil {
			t.Fatal(err)
		}
		best, _, err := MaxSatisfiableBruteForce(schema, sigma)
		if err != nil {
			t.Fatal(err)
		}
		bruteOK := len(best) == len(core.Split(sigma))
		if ok != bruteOK {
			t.Fatalf("trial %d: solver=%v brute=%v\n%s", trial, ok, bruteOK, sigmaStr(sigma))
		}
		if ok && !core.SatisfiesTuple(schema, w, core.Split(sigma)) {
			t.Fatalf("trial %d: invalid witness", trial)
		}
	}
}

func TestImpliesReflexiveAndWeakening(t *testing.T) {
	schema := core.CustSchema()
	sigma := core.Fig2Constraints()

	// Σ ⊨ φ for each φ ∈ Σ.
	for _, phi := range sigma {
		ok, cx, err := Implies(schema, sigma, phi)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("Σ must imply its own member %s (counterexample %v)", phi.Name, cx)
		}
	}

	// Weakening: [CT ∈ {Albany}] → AC ∈ {518} follows from
	// [CT ∈ {Albany, Troy, Colonie}] → AC ∈ {518} (φ1's second pattern).
	weaker := &core.ECFD{
		Name: "weak", Schema: schema, X: []string{"CT"}, YP: []string{"AC"},
		Tableau: []core.PatternTuple{{
			LHS: []core.Pattern{core.InStrings("Albany")},
			RHS: []core.Pattern{core.InStrings("518")},
		}},
	}
	ok, _, err := Implies(schema, sigma, weaker)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("weakened pattern must be implied")
	}

	// Not implied: a constraint about a city Σ says nothing about.
	unrelated := &core.ECFD{
		Name: "unrel", Schema: schema, X: []string{"CT"}, YP: []string{"AC"},
		Tableau: []core.PatternTuple{{
			LHS: []core.Pattern{core.InStrings("Utica")},
			RHS: []core.Pattern{core.InStrings("315")},
		}},
	}
	ok, cx, err := Implies(schema, sigma, unrelated)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("unrelated constraint must not be implied")
	}
	if cx == nil || len(cx.Tuples) == 0 {
		t.Error("non-implication must come with a counterexample")
	} else {
		// The counterexample must satisfy Σ and violate the target.
		inst := relation.New(schema)
		for _, tup := range cx.Tuples {
			inst.Rows = append(inst.Rows, tup)
		}
		if sat, _ := core.Satisfies(inst, sigma); !sat {
			t.Error("counterexample must satisfy Σ")
		}
		if sat, _ := core.Satisfies(inst, []*core.ECFD{unrelated}); sat {
			t.Error("counterexample must violate the target")
		}
	}
}

// TestImpliesFDTransitivity exercises the two-tuple case: the embedded
// FDs A → B and B → C imply A → C.
func TestImpliesFDTransitivity(t *testing.T) {
	schema := relation.MustSchema("r",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText},
		relation.Attribute{Name: "C", Kind: relation.KindText})
	fd := func(x, y string) *core.ECFD {
		return (&core.FD{Schema: schema, X: []string{x}, Y: []string{y}}).AsECFD()
	}
	sigma := []*core.ECFD{fd("A", "B"), fd("B", "C")}

	ok, _, err := Implies(schema, sigma, fd("A", "C"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("A→B, B→C must imply A→C")
	}

	ok, cx, err := Implies(schema, sigma, fd("C", "A"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("C→A must not be implied")
	}
	if cx == nil || len(cx.Tuples) != 2 {
		t.Errorf("expected a two-tuple counterexample, got %v", cx)
	}
}

// TestImpliesConditionalFD: the FD only holds where the pattern
// applies, so widening the LHS pattern is NOT implied.
func TestImpliesConditionalFD(t *testing.T) {
	schema := core.CustSchema()
	narrow := &core.ECFD{
		Name: "narrow", Schema: schema, X: []string{"CT"}, Y: []string{"AC"},
		Tableau: []core.PatternTuple{{
			LHS: []core.Pattern{core.InStrings("Albany")},
			RHS: []core.Pattern{core.Any()},
		}},
	}
	wide := &core.ECFD{
		Name: "wide", Schema: schema, X: []string{"CT"}, Y: []string{"AC"},
		Tableau: []core.PatternTuple{{
			LHS: []core.Pattern{core.Any()},
			RHS: []core.Pattern{core.Any()},
		}},
	}
	ok, _, err := Implies(schema, []*core.ECFD{wide}, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("the unconditional FD must imply its conditional restriction")
	}
	ok, cx, err := Implies(schema, []*core.ECFD{narrow}, wide)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("the conditional FD must not imply the unconditional one")
	}
	if cx == nil {
		t.Error("missing counterexample")
	}
}

// TestImplicationCounterexamplesAlwaysValid fuzzes Implies on random
// constraint pairs: whenever it reports non-implication, the produced
// counterexample must check out; whenever it reports implication, no
// counterexample may exist among random small instances.
func TestImplicationCounterexamplesAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	schema := relation.MustSchema("r",
		relation.Attribute{Name: "A", Kind: relation.KindText},
		relation.Attribute{Name: "B", Kind: relation.KindText})
	for trial := 0; trial < 40; trial++ {
		sigma := randomTinySigma(rng, schema)
		phi := randomTinySigma(rng, schema)[0]
		ok, cx, err := Implies(schema, sigma, phi)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			inst := relation.New(schema)
			for _, tup := range cx.Tuples {
				inst.Rows = append(inst.Rows, tup)
			}
			if sat, _ := core.Satisfies(inst, sigma); !sat {
				t.Fatalf("trial %d: counterexample violates Σ", trial)
			}
			if sat, _ := core.Satisfies(inst, []*core.ECFD{phi}); sat {
				t.Fatalf("trial %d: counterexample satisfies φ", trial)
			}
			continue
		}
		// Spot-check implication with random instances.
		for probe := 0; probe < 30; probe++ {
			inst := randomTinyInstance(rng, schema, 1+rng.Intn(2))
			if sat, _ := core.Satisfies(inst, sigma); !sat {
				continue
			}
			if sat, _ := core.Satisfies(inst, []*core.ECFD{phi}); !sat {
				t.Fatalf("trial %d: Implies said yes but %v violates φ\nΣ: %sφ: %s",
					trial, inst.Rows, sigmaStr(sigma), phi)
			}
		}
	}
}

// --- helpers ---

var tinyPool = []string{"x", "y", "z"}

func randomTinySigma(rng *rand.Rand, schema *relation.Schema) []*core.ECFD {
	n := 1 + rng.Intn(3)
	var out []*core.ECFD
	attrs := schema.Names()
	for i := 0; i < n; i++ {
		x := attrs[rng.Intn(len(attrs))]
		rest := attrs[(rng.Intn(len(attrs)))%len(attrs)]
		e := &core.ECFD{Name: fmt.Sprintf("t%d", i), Schema: schema, X: []string{x}}
		if rng.Intn(2) == 0 {
			e.Y = []string{rest}
		} else {
			e.YP = []string{rest}
		}
		if e.Y != nil && e.Y[0] == x && rng.Intn(2) == 0 {
			e.Y[0] = attrs[(schema.Index(x)+1)%len(attrs)]
		}
		e.Tableau = []core.PatternTuple{{
			LHS: []core.Pattern{tinyPattern(rng)},
			RHS: []core.Pattern{tinyPattern(rng)},
		}}
		out = append(out, e)
	}
	return out
}

func tinyPattern(rng *rand.Rand) core.Pattern {
	switch rng.Intn(3) {
	case 0:
		return core.Any()
	case 1:
		k := 1 + rng.Intn(2)
		return core.InStrings(tinyPool[rng.Intn(3)], tinyPool[(rng.Intn(3)+k)%3])
	default:
		return core.NotInStrings(tinyPool[rng.Intn(3)])
	}
}

func randomTinyInstance(rng *rand.Rand, schema *relation.Schema, n int) *relation.Relation {
	inst := relation.New(schema)
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, schema.Width())
		for j := range t {
			// Include a fresh value outside the pattern pool sometimes.
			if rng.Intn(4) == 0 {
				t[j] = relation.Text(fmt.Sprintf("f%d", rng.Intn(2)))
			} else {
				t[j] = relation.Text(tinyPool[rng.Intn(len(tinyPool))])
			}
		}
		inst.Rows = append(inst.Rows, t)
	}
	return inst
}

func sigmaStr(sigma []*core.ECFD) string {
	s := ""
	for _, e := range sigma {
		s += e.String()
	}
	return s
}
