package sat

import (
	"fmt"

	"ecfd/internal/core"
	"ecfd/internal/relation"
)

// Satisfiable decides whether a non-empty instance satisfying Σ exists
// (the satisfiability problem, §III). By the single-tuple small-model
// property (proof of Proposition 3.1) it suffices to search for one
// witness tuple over the active domains; the search is a backtracking
// DFS that prunes a branch as soon as some pattern constraint is
// decided-violated. Returns the witness when satisfiable.
//
// The problem is NP-complete, so the worst case is exponential in the
// number of attributes; the pruning makes realistic Σ instantaneous.
func Satisfiable(schema *relation.Schema, sigma []*core.ECFD) (bool, relation.Tuple, error) {
	for _, e := range sigma {
		if err := e.Validate(); err != nil {
			return false, nil, err
		}
	}
	split := core.Split(sigma)
	cands, err := ActiveDomains(schema, split, 1)
	if err != nil {
		return false, nil, err
	}
	cs := compileConstraints(schema, split)
	t := make(relation.Tuple, schema.Width())
	if dfsWitness(schema, cs, cands, t, 0, nil) {
		return true, t, nil
	}
	return false, nil, nil
}

// cellRef is one pattern cell pinned to an attribute position.
type cellRef struct {
	attr int
	pat  core.Pattern
}

// constraintC is a compiled single-pattern constraint: match all of lhs
// ⇒ match all of rhs.
type constraintC struct {
	lhs, rhs []cellRef
	maxAttr  int // highest attribute index the constraint mentions
	e        *core.ECFD
}

func compileConstraints(schema *relation.Schema, split []*core.ECFD) []constraintC {
	out := make([]constraintC, 0, len(split))
	for _, e := range split {
		tp := e.Tableau[0]
		c := constraintC{e: e}
		for j, attr := range e.X {
			c.lhs = append(c.lhs, cellRef{attr: schema.Index(attr), pat: tp.LHS[j]})
		}
		for j, attr := range e.RHS() {
			c.rhs = append(c.rhs, cellRef{attr: schema.Index(attr), pat: tp.RHS[j]})
		}
		for _, r := range append(append([]cellRef{}, c.lhs...), c.rhs...) {
			if r.attr > c.maxAttr {
				c.maxAttr = r.attr
			}
		}
		out = append(out, c)
	}
	return out
}

// violatedBy reports whether the fully assigned prefix t[0..assigned)
// already decides the constraint as violated.
func (c *constraintC) violatedBy(t relation.Tuple, assigned int) bool {
	for _, r := range c.lhs {
		if r.attr >= assigned {
			return false // LHS not decided yet
		}
		if !r.pat.Matches(t[r.attr]) {
			return false // constraint does not apply
		}
	}
	for _, r := range c.rhs {
		if r.attr < assigned && !r.pat.Matches(t[r.attr]) {
			return true
		}
	}
	return false
}

// dfsWitness assigns attributes in order, pruning on decided
// violations. extra is an optional additional pruning predicate (used
// by the implication search); it sees the partial tuple and the number
// of assigned attributes and returns false to prune.
func dfsWitness(schema *relation.Schema, cs []constraintC, cands [][]relation.Value,
	t relation.Tuple, i int, extra func(relation.Tuple, int) bool) bool {
	if i == schema.Width() {
		return true
	}
	for _, v := range cands[i] {
		t[i] = v
		ok := true
		for k := range cs {
			// Only constraints whose attributes are all ≤ i can newly
			// become decided; checking the rest is wasted work but not
			// wrong — we check those with maxAttr ≤ i.
			if cs[k].maxAttr <= i && cs[k].violatedBy(t, i+1) {
				ok = false
				break
			}
		}
		if ok && extra != nil && !extra(t, i+1) {
			ok = false
		}
		if ok && dfsWitness(schema, cs, cands, t, i+1, extra) {
			return true
		}
	}
	t[i] = relation.Null()
	return false
}

// MaxSatisfiableBruteForce computes an exact maximum satisfiable
// subset of the split constraints by enumerating all witness tuples
// over the active domains — exponential, for tests and tiny Σ only.
// It returns the best subset (as indices into core.Split(sigma)) and
// its witness.
func MaxSatisfiableBruteForce(schema *relation.Schema, sigma []*core.ECFD) ([]int, relation.Tuple, error) {
	split := core.Split(sigma)
	cands, err := ActiveDomains(schema, split, 1)
	if err != nil {
		return nil, nil, err
	}
	var best []int
	var bestT relation.Tuple
	t := make(relation.Tuple, schema.Width())
	var walk func(i int)
	walk = func(i int) {
		if i == schema.Width() {
			var sat []int
			for k, e := range split {
				if core.SatisfiesTuple(schema, t, []*core.ECFD{e}) {
					sat = append(sat, k)
				}
			}
			if len(sat) > len(best) {
				best = append([]int(nil), sat...)
				bestT = t.Clone()
			}
			return
		}
		for _, v := range cands[i] {
			t[i] = v
			walk(i + 1)
		}
	}
	walk(0)
	if bestT == nil {
		return nil, nil, fmt.Errorf("sat: no candidate tuples")
	}
	return best, bestT, nil
}
