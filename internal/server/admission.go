package server

import (
	"context"
	"sync/atomic"
)

// admission is the server's load gate: Workers slots bound how many
// requests execute concurrently, QueueDepth bounds how many more may
// wait for a slot. Beyond that the request is rejected immediately with
// the typed queue_full error — the closed-loop alternative (unbounded
// queuing) turns overload into unbounded latency, which no deadline can
// fix after the fact.
type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64
	maxQueue int64
}

func newAdmission(workers, queueDepth int) *admission {
	return &admission{
		slots:    make(chan struct{}, workers),
		maxQueue: int64(queueDepth),
	}
}

// acquire takes an execution slot. The fast path takes a free slot
// without touching the queue counter; otherwise the request queues —
// bounded — and waits for a slot or its deadline, whichever first.
func (a *admission) acquire(ctx context.Context) *APIError {
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return apiErrorf(CodeQueueFull,
			"all %d workers busy and %d requests queued; retry later",
			cap(a.slots), a.maxQueue)
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	case <-ctx.Done():
		if ctx.Err() == context.DeadlineExceeded {
			return apiErrorf(CodeDeadline, "request deadline expired while queued")
		}
		return apiErrorf(CodeDeadline, "client went away while queued")
	}
}

func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.slots
}
