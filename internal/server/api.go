package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"ecfd/internal/relation"
)

// Error codes of the wire protocol. Every non-2xx response carries an
// {"error": {"code", "message"}} envelope; the code is the contract —
// clients branch on it, the message is for humans.
const (
	CodeBadRequest = "bad_request"       // malformed body, unknown field, type mismatch
	CodeNotFound   = "not_found"         // no such session or route
	CodeConflict   = "conflict"          // duplicate session name
	CodeQueueFull  = "queue_full"        // admission queue at capacity; retry later
	CodeDeadline   = "deadline_exceeded" // the request deadline expired while queued
	CodeInternal   = "internal"          // engine or detector failure
)

// APIError is the typed error the handlers produce and the envelope
// carries. It implements error so internal layers can return it
// directly.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *APIError) Error() string { return e.Code + ": " + e.Message }

func apiErrorf(code, format string, args ...any) *APIError {
	return &APIError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// httpStatus maps an error code to its transport status. queue_full is
// the 429 of the admission contract; deadline_exceeded maps to 504
// (the server, not the client, gave up on the queued request).
func httpStatus(code string) int {
	switch code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeConflict:
		return http.StatusConflict
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeDeadline:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

type errorEnvelope struct {
	Error *APIError `json:"error"`
}

// --- requests and responses ---

// GenSpec asks the server to build a session from the built-in
// generator workload (internal/gen): the paper's schema and constraint
// set, with Rows tuples loaded at Noise%% corruption. It exists so load
// generators and benchmarks need not ship a dataset over the wire.
type GenSpec struct {
	Rows  int     `json:"rows"`
	Noise float64 `json:"noise"`
	Seed  int64   `json:"seed"`
}

// CreateSessionRequest opens a detection session. Exactly one of Spec
// (the textual constraint language, all constraints over one table) or
// Gen must be set. Workers configures the detect fan-out for this
// session (0 = serial BatchDetect, -1 = GOMAXPROCS).
type CreateSessionRequest struct {
	Name    string   `json:"name,omitempty"`
	Spec    string   `json:"spec,omitempty"`
	Gen     *GenSpec `json:"gen,omitempty"`
	Workers int      `json:"workers,omitempty"`
}

// ColumnInfo describes one attribute of the session's table.
type ColumnInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// SessionInfo is the public view of a session.
type SessionInfo struct {
	ID          string       `json:"id"`
	Name        string       `json:"name,omitempty"`
	Table       string       `json:"table"`
	Columns     []ColumnInfo `json:"columns"`
	Constraints int          `json:"constraints"`
	Workers     int          `json:"workers"`
	Rows        int64        `json:"rows"`
	Created     string       `json:"created"`
}

// RowsPayload carries data tuples: one JSON array per tuple, values in
// schema attribute order (null for NULL).
type RowsPayload struct {
	Rows [][]any `json:"rows"`
}

// RIDRange reports a contiguous RID assignment.
type RIDRange struct {
	FirstRID int64 `json:"first_rid"`
	Count    int64 `json:"count"`
}

// DetectResponse reports one batch detection run.
type DetectResponse struct {
	SV        int64   `json:"sv"`
	MV        int64   `json:"mv"`
	Total     int64   `json:"total"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// CheckVerdict is the advisory verdict for one tuple of a check batch.
type CheckVerdict struct {
	SV bool `json:"sv"`
	MV bool `json:"mv"`
}

// CheckResponse reports a check call: one verdict per submitted tuple,
// in submission order.
type CheckResponse struct {
	Results   []CheckVerdict `json:"results"`
	ElapsedMS float64        `json:"elapsed_ms"`
}

// UpdatesRequest applies ΔD = (ΔD⁻, ΔD⁺) with incremental maintenance.
type UpdatesRequest struct {
	Insert [][]any `json:"insert,omitempty"`
	Delete []int64 `json:"delete,omitempty"`
}

// UpdatesResponse reports one incremental maintenance step.
type UpdatesResponse struct {
	Inserted  RIDRange `json:"inserted"`
	Applied   int64    `json:"applied"`
	ElapsedMS float64  `json:"elapsed_ms"`
}

// EngineHealth surfaces sqldb.DB.Stats() for one session's engine.
type EngineHealth struct {
	EpochSeq      uint64 `json:"epoch_seq"`
	LiveEpochs    int    `json:"live_epochs"`
	RetiredEpochs int    `json:"retired_epochs"`
	RetiredBytes  int64  `json:"retired_bytes"`
	// Recovery is the engine's crash-recovery report (WAL generation,
	// units replayed, torn tail) — zero-valued for volatile engines.
	Recovery RecoveryHealth `json:"recovery"`
}

// RecoveryHealth mirrors sqldb.RecoveryStats.
type RecoveryHealth struct {
	Gen           uint64 `json:"gen"`
	SnapshotGen   uint64 `json:"snapshot_gen"`
	UnitsReplayed int    `json:"units_replayed"`
	TornTail      bool   `json:"torn_tail"`
	FellBack      bool   `json:"fell_back"`
}

// SessionHealth is one session's entry in the health report.
type SessionHealth struct {
	ID     string       `json:"id"`
	Name   string       `json:"name,omitempty"`
	Table  string       `json:"table"`
	Rows   int64        `json:"rows"`
	Engine EngineHealth `json:"engine"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status     string          `json:"status"`
	UptimeSecs float64         `json:"uptime_secs"`
	Workers    int             `json:"workers"`
	QueueDepth int             `json:"queue_depth"`
	InFlight   int64           `json:"in_flight"`
	Queued     int64           `json:"queued"`
	Sessions   []SessionHealth `json:"sessions"`
}

// --- JSON <-> engine value conversion ---

// toValue converts one decoded JSON cell to an engine value of the
// attribute's kind. Numbers arrive as json.Number (the decoder runs
// with UseNumber so int64 precision survives).
func toValue(cell any, attr relation.Attribute) (relation.Value, error) {
	if cell == nil {
		return relation.Null(), nil
	}
	fail := func() (relation.Value, error) {
		return relation.Value{}, apiErrorf(CodeBadRequest,
			"column %s wants %s, got %T (%v)", attr.Name, attr.Kind, cell, cell)
	}
	switch attr.Kind {
	case relation.KindInt:
		n, ok := cell.(json.Number)
		if !ok {
			return fail()
		}
		i, err := strconv.ParseInt(n.String(), 10, 64)
		if err != nil {
			return fail()
		}
		return relation.Int(i), nil
	case relation.KindFloat:
		n, ok := cell.(json.Number)
		if !ok {
			return fail()
		}
		f, err := strconv.ParseFloat(n.String(), 64)
		if err != nil {
			return fail()
		}
		return relation.Float(f), nil
	case relation.KindBool:
		b, ok := cell.(bool)
		if !ok {
			return fail()
		}
		return relation.Bool(b), nil
	default: // text
		s, ok := cell.(string)
		if !ok {
			return fail()
		}
		return relation.Text(s), nil
	}
}

// toRelation converts a rows payload into an instance of the schema.
func toRelation(schema *relation.Schema, rows [][]any) (*relation.Relation, error) {
	out := relation.New(schema)
	for ri, row := range rows {
		if len(row) != len(schema.Attrs) {
			return nil, apiErrorf(CodeBadRequest,
				"row %d has %d values, schema %s has %d attributes",
				ri, len(row), schema.Name, len(schema.Attrs))
		}
		t := make(relation.Tuple, len(row))
		for ci, cell := range row {
			v, err := toValue(cell, schema.Attrs[ci])
			if err != nil {
				return nil, err
			}
			t[ci] = v
		}
		out.Rows = append(out.Rows, t)
	}
	return out, nil
}

// cellJSON renders one engine value as a JSON scalar.
func cellJSON(v relation.Value) any {
	switch v.K {
	case relation.KindNull:
		return nil
	case relation.KindInt:
		return v.I
	case relation.KindBool:
		return v.I != 0
	case relation.KindFloat:
		return v.F
	default:
		return v.S
	}
}
