package server

import (
	"context"
	"net/http"
	"time"

	"ecfd/internal/relation"
)

func (s *session) schema() *relation.Schema { return s.det.Sigma()[0].Schema }

// doLoad appends a batch of rows to the session's data table (raw —
// run detect afterwards to establish the flags and Aux).
func (s *Server) doLoad(ctx context.Context, sess *session, w http.ResponseWriter, r *http.Request) *APIError {
	var req RowsPayload
	if aerr := s.decodeBody(w, r, &req); aerr != nil {
		return aerr
	}
	inst, err := toRelation(sess.schema(), req.Rows)
	if err != nil {
		return asAPIError(err)
	}
	sess.mu.Lock()
	rids, err := sess.det.LoadData(inst)
	sess.mu.Unlock()
	if err != nil {
		return apiErrorf(CodeInternal, "load: %v", err)
	}
	sess.rows.Add(int64(len(rids)))
	out := RIDRange{Count: int64(len(rids))}
	if len(rids) > 0 {
		out.FirstRID = rids[0]
	}
	writeJSON(w, http.StatusOK, out)
	return nil
}

// doDetect recomputes the violation flags from scratch: the serial
// BatchDetect, or ParallelDetect when the session was created with
// workers set.
func (s *Server) doDetect(ctx context.Context, sess *session, w http.ResponseWriter, r *http.Request) *APIError {
	sess.mu.Lock()
	var sv, mv, total int64
	var elapsed time.Duration
	if sess.workers != 0 {
		bst, err := sess.det.ParallelDetect(sess.workers)
		sess.mu.Unlock()
		if err != nil {
			return apiErrorf(CodeInternal, "detect: %v", err)
		}
		sv, mv, total, elapsed = bst.SV, bst.MV, bst.Total, bst.Elapsed
	} else {
		bst, err := sess.det.BatchDetect()
		sess.mu.Unlock()
		if err != nil {
			return apiErrorf(CodeInternal, "detect: %v", err)
		}
		sv, mv, total, elapsed = bst.SV, bst.MV, bst.Total, bst.Elapsed
	}
	writeJSON(w, http.StatusOK, DetectResponse{
		SV: sv, MV: mv, Total: total,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	})
	return nil
}

// doCheck is the advisory hot path: stage the candidate tuples and run
// the two fixed check queries against the current flags and Aux. See
// detect.Check for the verdict contract (SV exact; MV = membership in
// a currently-violating group).
func (s *Server) doCheck(ctx context.Context, sess *session, w http.ResponseWriter, r *http.Request) *APIError {
	var req RowsPayload
	if aerr := s.decodeBody(w, r, &req); aerr != nil {
		return aerr
	}
	inst, err := toRelation(sess.schema(), req.Rows)
	if err != nil {
		return asAPIError(err)
	}
	start := time.Now()
	sess.mu.Lock()
	res, err := sess.det.Check(inst)
	sess.mu.Unlock()
	if err != nil {
		return apiErrorf(CodeInternal, "check: %v", err)
	}
	out := CheckResponse{
		Results:   make([]CheckVerdict, len(res)),
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	for i, v := range res {
		out.Results[i] = CheckVerdict{SV: v.SV, MV: v.MV}
	}
	writeJSON(w, http.StatusOK, out)
	return nil
}

// doUpdates applies ΔD = (delete, insert) with the paper's incremental
// maintenance (flags and Aux must be current — run detect once after
// loading).
func (s *Server) doUpdates(ctx context.Context, sess *session, w http.ResponseWriter, r *http.Request) *APIError {
	var req UpdatesRequest
	if aerr := s.decodeBody(w, r, &req); aerr != nil {
		return aerr
	}
	if len(req.Insert) == 0 && len(req.Delete) == 0 {
		return apiErrorf(CodeBadRequest, "empty update: one of insert or delete is required")
	}
	var ins *relation.Relation
	if len(req.Insert) > 0 {
		var err error
		if ins, err = toRelation(sess.schema(), req.Insert); err != nil {
			return asAPIError(err)
		}
	}
	sess.mu.Lock()
	rids, st, err := sess.det.ApplyUpdates(ins, req.Delete)
	sess.mu.Unlock()
	if err != nil {
		return apiErrorf(CodeInternal, "updates: %v", err)
	}
	sess.rows.Add(int64(len(rids)) - int64(len(req.Delete)))
	out := UpdatesResponse{
		Applied:   st.Applied,
		ElapsedMS: float64(st.Elapsed) / float64(time.Millisecond),
		Inserted:  RIDRange{Count: int64(len(rids))},
	}
	if len(rids) > 0 {
		out.Inserted.FirstRID = rids[0]
	}
	writeJSON(w, http.StatusOK, out)
	return nil
}

// asAPIError passes typed errors through and wraps anything else as
// internal.
func asAPIError(err error) *APIError {
	if ae, ok := err.(*APIError); ok {
		return ae
	}
	return apiErrorf(CodeInternal, "%v", err)
}
