package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"ecfd/internal/gen"
)

// LoadOptions configures a closed-loop load run against a live server.
type LoadOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of closed-loop workers (default 8).
	Clients int
	// Duration bounds the run (default 10s).
	Duration time.Duration
	// Mode selects the request each client loops on: "check" (default),
	// "detect", "updates" or "violations".
	Mode string
	// Batch is the tuples per check/updates request (default 8).
	Batch int
	// Rows sizes the gen-backed dataset the run creates (default 10000).
	Rows int
	// Noise is the dataset corruption rate in percent (default 5).
	Noise float64
	// Seed fixes the dataset (default 1).
	Seed int64
	// Timeout is the per-request client timeout (default 30s).
	Timeout time.Duration
	// Keep leaves the session alive after the run (default: delete it).
	Keep bool
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Duration <= 0 {
		o.Duration = 10 * time.Second
	}
	if o.Mode == "" {
		o.Mode = "check"
	}
	if o.Batch <= 0 {
		o.Batch = 8
	}
	if o.Rows <= 0 {
		o.Rows = 10000
	}
	if o.Noise == 0 {
		o.Noise = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

// LoadResult is one load run's aggregate outcome. Latencies cover
// successful requests only; Rejected counts typed queue_full answers
// (the admission contract working, not a failure), Errors everything
// else.
type LoadResult struct {
	Mode      string  `json:"mode"`
	Clients   int     `json:"clients"`
	Rows      int     `json:"rows"`
	Batch     int     `json:"batch"`
	Seconds   float64 `json:"seconds"`
	Requests  int64   `json:"requests"`
	Rejected  int64   `json:"rejected"`
	Errors    int64   `json:"errors"`
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
	SessionID string  `json:"session_id,omitempty"`
}

// RunLoad drives a closed-loop load against the server at
// opts.BaseURL: it creates a gen-backed session, runs one batch detect
// to establish the flags and Aux, then lets Clients workers fire
// back-to-back requests of the selected Mode until Duration elapses.
// Request bodies are pre-marshaled and rotated, so the measured path is
// the server, not the generator.
func RunLoad(opts LoadOptions) (*LoadResult, error) {
	opts = opts.withDefaults()
	client := &http.Client{Timeout: opts.Timeout}

	if err := waitHealthy(client, opts.BaseURL, 10*time.Second); err != nil {
		return nil, err
	}

	// Session: the built-in generator workload, loaded server-side.
	var sess SessionInfo
	create := CreateSessionRequest{
		Gen: &GenSpec{Rows: opts.Rows, Noise: opts.Noise, Seed: opts.Seed},
	}
	if err := call(client, "POST", opts.BaseURL+"/v1/sessions", create, &sess); err != nil {
		return nil, fmt.Errorf("create session: %w", err)
	}
	base := fmt.Sprintf("%s/v1/sessions/%s", opts.BaseURL, sess.ID)
	if !opts.Keep {
		defer call(client, "DELETE", base, nil, nil)
	}
	var det DetectResponse
	if err := call(client, "POST", base+"/detect", nil, &det); err != nil {
		return nil, fmt.Errorf("initial detect: %w", err)
	}

	bodies := prepareBodies(opts)
	var target string
	switch opts.Mode {
	case "check":
		target = base + "/check"
	case "updates":
		target = base + "/updates"
	case "detect":
		target = base + "/detect"
	case "violations":
		target = base + "/violations"
	default:
		return nil, fmt.Errorf("unknown mode %q", opts.Mode)
	}

	type shard struct {
		requests, rejected, errors int64
		lat                        []time.Duration
	}
	shards := make([]shard, opts.Clients)
	deadline := time.Now().Add(opts.Duration)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sh := &shards[c]
			for i := c; time.Now().Before(deadline); i++ {
				var req *http.Request
				var err error
				if opts.Mode == "violations" {
					req, err = http.NewRequest("GET", target, nil)
				} else if opts.Mode == "detect" {
					req, err = http.NewRequest("POST", target, nil)
				} else {
					body := bodies[i%len(bodies)]
					req, err = http.NewRequest("POST", target, bytes.NewReader(body))
					req.Header.Set("Content-Type", "application/json")
				}
				if err != nil {
					sh.errors++
					continue
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					sh.errors++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					sh.requests++
					sh.lat = append(sh.lat, time.Since(t0))
				case resp.StatusCode == http.StatusTooManyRequests:
					sh.rejected++
				default:
					sh.errors++
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadResult{
		Mode: opts.Mode, Clients: opts.Clients, Rows: opts.Rows,
		Batch: opts.Batch, Seconds: elapsed.Seconds(),
	}
	if opts.Keep {
		res.SessionID = sess.ID
	}
	var all []time.Duration
	for i := range shards {
		res.Requests += shards[i].requests
		res.Rejected += shards[i].rejected
		res.Errors += shards[i].errors
		all = append(all, shards[i].lat...)
	}
	res.QPS = float64(res.Requests) / elapsed.Seconds()
	if len(all) > 0 {
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		pct := func(p float64) float64 {
			i := int(p * float64(len(all)-1))
			return float64(all[i]) / float64(time.Millisecond)
		}
		res.P50Ms, res.P95Ms, res.P99Ms = pct(0.50), pct(0.95), pct(0.99)
		res.MaxMs = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	return res, nil
}

// prepareBodies pre-marshals a rotation of request bodies for the
// tuple-carrying modes, drawn from the generator with a seed disjoint
// from the dataset's so candidates are fresh rows, not replays.
func prepareBodies(opts LoadOptions) [][]byte {
	const rotation = 64
	pool := gen.Dataset(gen.Config{
		Rows:  rotation * opts.Batch,
		Noise: opts.Noise,
		Seed:  opts.Seed + 7919,
	})
	rows := make([][]any, pool.Len())
	for i, t := range pool.Rows {
		row := make([]any, len(t))
		for j, v := range t {
			row[j] = cellJSON(v)
		}
		rows[i] = row
	}
	rng := rand.New(rand.NewSource(opts.Seed + 104729))
	bodies := make([][]byte, rotation)
	for i := range bodies {
		batch := rows[i*opts.Batch : (i+1)*opts.Batch]
		var body []byte
		if opts.Mode == "updates" {
			// Insert-only updates keep the run self-contained; deletes
			// would need RID bookkeeping across concurrent clients.
			body, _ = json.Marshal(UpdatesRequest{Insert: batch})
		} else {
			body, _ = json.Marshal(RowsPayload{Rows: batch})
		}
		bodies[i] = body
	}
	rng.Shuffle(len(bodies), func(a, b int) { bodies[a], bodies[b] = bodies[b], bodies[a] })
	return bodies
}

// waitHealthy polls /healthz until the server answers, bounding server
// start-up races in scripts and CI.
func waitHealthy(client *http.Client, baseURL string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(baseURL + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s", baseURL, patience)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// call is the minimal JSON client the load generator needs.
func call(client *http.Client, method, url string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var env errorEnvelope
		if json.Unmarshal(raw, &env) == nil && env.Error != nil {
			return env.Error
		}
		return fmt.Errorf("%s %s: HTTP %d: %s", method, url, resp.StatusCode, raw)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}
