// Package server exposes eCFD violation detection as a long-running
// HTTP/JSON service — the request/response shape the paper's two-fixed-
// queries design was always pointing at.
//
// A *session* registers a schema and a constraint set Σ once (POST
// /v1/sessions); the detector compiles its fixed statement texts at
// creation and the engine's plan cache serves every later request, so
// the per-request cost is execution only. Requests then load data,
// run detection, apply incremental updates, probe candidate tuples
// (check — the advisory hot path), and stream the violation set.
//
// Concurrency model: a bounded worker pool gates every data-path
// request (admission control). When all slots are busy a bounded
// number of requests queue; beyond that the server answers 429 with
// the typed queue_full error instead of queuing unboundedly. Each
// request carries a deadline (server default, ?timeout= override,
// capped); a deadline that expires while queued yields the typed
// deadline_exceeded error, and a cancelled or disconnected client
// releases whatever MVCC snapshot its read had pinned. /healthz
// surfaces the engine's epoch accounting (sqldb.DB.Stats) per session,
// so pin leaks are observable in production, not just in tests.
//
// Routes:
//
//	GET    /healthz
//	POST   /v1/sessions                     {name?, spec | gen, workers?}
//	GET    /v1/sessions
//	GET    /v1/sessions/{id}
//	DELETE /v1/sessions/{id}
//	POST   /v1/sessions/{id}/load           {rows: [[...], ...]}
//	POST   /v1/sessions/{id}/detect         (batch / parallel per session workers)
//	POST   /v1/sessions/{id}/check          {rows: [[...], ...]}
//	POST   /v1/sessions/{id}/updates        {insert?: [[...]], delete?: [rids]}
//	GET    /v1/sessions/{id}/violations?lo=&hi=   (streamed JSON)
//
// Every error response is {"error": {"code", "message"}}; see the Code*
// constants for the contract.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"time"
)

// Options configures a Server. Zero values select sane defaults.
type Options struct {
	// Workers bounds concurrently executing data-path requests.
	// <= 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests waiting for a worker slot; beyond it
	// requests are rejected with queue_full. <= 0 selects 4×Workers.
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the client sends
	// no ?timeout= override. <= 0 selects 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps the ?timeout= override. <= 0 selects 5m.
	MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies. <= 0 selects 32 MiB.
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	return o
}

// Server is the detection service. It implements http.Handler; the
// caller owns the listener (http.Server, httptest, ...).
type Server struct {
	opts    Options
	adm     *admission
	reg     *registry
	mux     *http.ServeMux
	started time.Time
}

// New builds a server with its session registry and admission gate.
func New(opts Options) *Server {
	s := &Server{
		opts:    opts.withDefaults(),
		reg:     newRegistry(),
		started: time.Now(),
	}
	s.adm = newAdmission(s.opts.Workers, s.opts.QueueDepth)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	mux.HandleFunc("POST /v1/sessions/{id}/load", s.dataPath(s.doLoad))
	mux.HandleFunc("POST /v1/sessions/{id}/detect", s.dataPath(s.doDetect))
	mux.HandleFunc("POST /v1/sessions/{id}/check", s.dataPath(s.doCheck))
	mux.HandleFunc("POST /v1/sessions/{id}/updates", s.dataPath(s.doUpdates))
	mux.HandleFunc("GET /v1/sessions/{id}/violations", s.dataPath(s.doViolations))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, apiErrorf(CodeNotFound, "no route %s %s", r.Method, r.URL.Path))
	})
	s.mux = mux
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close tears down every session and releases the engines.
func (s *Server) Close() { s.reg.closeAll() }

// --- response plumbing ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *APIError) {
	writeJSON(w, httpStatus(e.Code), errorEnvelope{Error: e})
}

// decodeBody parses a JSON request body with int64-preserving numbers
// and strict fields, mapping every failure to a typed bad_request.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) *APIError {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.UseNumber()
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return apiErrorf(CodeBadRequest, "request body exceeds %d bytes", tooBig.Limit)
		}
		return apiErrorf(CodeBadRequest, "decode body: %v", err)
	}
	return nil
}

// requestCtx derives the per-request deadline: the server default, or
// the ?timeout= override capped at MaxTimeout. The deadline covers the
// queue wait and the streaming reads; a mutating engine call that has
// started runs to completion (the engine's write path is not
// interruptible — the deadline's job is to bound waiting, not to tear
// half-applied state).
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, *APIError) {
	d := s.opts.DefaultTimeout
	if t := r.URL.Query().Get("timeout"); t != "" {
		dur, err := time.ParseDuration(t)
		if err != nil || dur <= 0 {
			return nil, nil, apiErrorf(CodeBadRequest, "bad timeout %q", t)
		}
		if dur > s.opts.MaxTimeout {
			dur = s.opts.MaxTimeout
		}
		d = dur
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// dataPath wraps a session data-path handler with session lookup, the
// per-request deadline and admission control.
func (s *Server) dataPath(h func(ctx context.Context, sess *session, w http.ResponseWriter, r *http.Request) *APIError) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess, aerr := s.reg.get(r.PathValue("id"))
		if aerr != nil {
			writeError(w, aerr)
			return
		}
		ctx, cancel, aerr := s.requestCtx(r)
		if aerr != nil {
			writeError(w, aerr)
			return
		}
		defer cancel()
		if aerr := s.adm.acquire(ctx); aerr != nil {
			writeError(w, aerr)
			return
		}
		defer s.adm.release()
		if err := ctx.Err(); err != nil {
			writeError(w, apiErrorf(CodeDeadline, "deadline expired before execution"))
			return
		}
		if aerr := h(ctx, sess, w, r); aerr != nil {
			writeError(w, aerr)
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sessions := s.reg.list()
	resp := HealthResponse{
		Status:     "ok",
		UptimeSecs: time.Since(s.started).Seconds(),
		Workers:    s.opts.Workers,
		QueueDepth: s.opts.QueueDepth,
		InFlight:   s.adm.inflight.Load(),
		Queued:     s.adm.queued.Load(),
		Sessions:   make([]SessionHealth, 0, len(sessions)),
	}
	for _, sess := range sessions {
		resp.Sessions = append(resp.Sessions, sess.health())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if aerr := s.decodeBody(w, r, &req); aerr != nil {
		writeError(w, aerr)
		return
	}
	sess, aerr := s.reg.create(&req)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusCreated, sess.info())
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	sessions := s.reg.list()
	out := make([]SessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, sess.info())
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, aerr := s.reg.get(r.PathValue("id"))
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if aerr := s.reg.remove(r.PathValue("id")); aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": r.PathValue("id")})
}
