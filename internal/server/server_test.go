package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const testSpec = `
table cust (AC text, PN text, NM text, STR text, CT text, ZIP text)

ecfd phi1 on cust: [CT] -> [AC] {
  (!{NYC, LI} || _)
}
ecfd phi2 on cust: [ZIP] -> [STR] {
  (_ || _)
}
ecfd phi3 on cust: [CT] -> [AC] {
  ({NYC} || {212, 718})
}
`

// testClient wraps the raw HTTP plumbing the protocol tests share.
type testClient struct {
	t   *testing.T
	ts  *httptest.Server
	srv *Server
}

func newTestClient(t *testing.T, opts Options) *testClient {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &testClient{t: t, ts: ts, srv: srv}
}

// do fires one request and decodes the response body, returning the
// status code and the typed error code (empty on 2xx).
func (c *testClient) do(method, path string, in, out any) (int, string) {
	c.t.Helper()
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			c.t.Fatal(err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.ts.URL+path, body)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.ts.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		var env errorEnvelope
		if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil {
			c.t.Fatalf("%s %s: HTTP %d with non-envelope body %q", method, path, resp.StatusCode, raw)
		}
		return resp.StatusCode, env.Error.Code
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: decode %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode, ""
}

func (c *testClient) mustOK(method, path string, in, out any) {
	c.t.Helper()
	if status, code := c.do(method, path, in, out); code != "" {
		c.t.Fatalf("%s %s: HTTP %d %s", method, path, status, code)
	}
}

// TestServerProtocol walks the whole session lifecycle over the wire:
// create from a spec, load, detect, check, incremental updates, the
// streamed violation set, and teardown.
func TestServerProtocol(t *testing.T) {
	c := newTestClient(t, Options{})

	var sess SessionInfo
	c.mustOK("POST", "/v1/sessions", CreateSessionRequest{Name: "cust", Spec: testSpec}, &sess)
	if sess.ID == "" || len(sess.Columns) != 6 || sess.Constraints != 3 {
		t.Fatalf("session: %+v", sess)
	}
	base := "/v1/sessions/" + sess.ID

	// Rows 1-2: MV pair on phi1 (same CT outside NYC/LI, different AC).
	// Row 3: SV on phi3 (CT=NYC with AC outside {212, 718}).
	// Rows 4-5: MV pair on phi2 (same ZIP, different STR).
	rows := RowsPayload{Rows: [][]any{
		{"212", "5551234", "Ann", "1 Main St", "CHI", "60601"},
		{"312", "5555678", "Bob", "2 Oak Ave", "CHI", "60602"},
		{"999", "5559999", "Eve", "3 Elm Rd", "NYC", "10001"},
		{"415", "5550000", "Joe", "4 Pine St", "SF", "94101"},
		{"415", "5551111", "Sam", "5 Fir Ct", "SF", "94101"},
	}}
	var loaded RIDRange
	c.mustOK("POST", base+"/load", rows, &loaded)
	if loaded.Count != 5 || loaded.FirstRID != 1 {
		t.Fatalf("load: %+v", loaded)
	}

	var det DetectResponse
	c.mustOK("POST", base+"/detect", nil, &det)
	if det.SV == 0 || det.MV == 0 {
		t.Fatalf("detect found no violations: %+v", det)
	}

	// Check is advisory and must not mutate: a candidate in untouched
	// groups is clean, an SV candidate is exact, and one joining a
	// currently-violating group is MV-flagged.
	var chk CheckResponse
	c.mustOK("POST", base+"/check", RowsPayload{Rows: [][]any{
		{"999", "0000000", "New", "9 New St", "DAL", "75201"},
		{"555", "1111111", "Ivy", "8 Gum Dr", "NYC", "10003"},
		{"415", "2222222", "Tim", "6 Ash Ln", "SF", "94101"},
	}}, &chk)
	if len(chk.Results) != 3 {
		t.Fatalf("check: %+v", chk)
	}
	if chk.Results[0].SV || chk.Results[0].MV {
		t.Errorf("clean candidate flagged: %+v", chk.Results[0])
	}
	if !chk.Results[1].SV {
		t.Errorf("SV candidate not flagged: %+v", chk.Results[1])
	}
	if !chk.Results[2].MV {
		t.Errorf("group-joining candidate not MV-flagged: %+v", chk.Results[2])
	}
	var det2 DetectResponse
	c.mustOK("POST", base+"/detect", nil, &det2)
	if det2.SV != det.SV || det2.MV != det.MV {
		t.Fatalf("check mutated state: %+v vs %+v", det2, det)
	}

	var upd UpdatesResponse
	c.mustOK("POST", base+"/updates", UpdatesRequest{
		Insert: [][]any{{"212", "7777777", "Zoe", "7 Bay Rd", "NYC", "10002"}},
		Delete: []int64{3},
	}, &upd)
	if upd.Inserted.Count != 1 || upd.Applied != 2 {
		t.Fatalf("updates: %+v", upd)
	}

	resp, err := http.Get(c.ts.URL + base + "/violations")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stream struct {
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
		Count   int64    `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stream); err != nil {
		t.Fatalf("violations stream: %v", err)
	}
	if stream.Columns[0] != "RID" || int64(len(stream.Rows)) != stream.Count || stream.Count == 0 {
		t.Fatalf("violations: columns=%v count=%d rows=%d", stream.Columns, stream.Count, len(stream.Rows))
	}

	var listing struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	c.mustOK("GET", "/v1/sessions", nil, &listing)
	if len(listing.Sessions) != 1 {
		t.Fatalf("list: %+v", listing)
	}
	c.mustOK("DELETE", base, nil, nil)
	if status, code := c.do("POST", base+"/detect", nil, nil); status != http.StatusNotFound || code != CodeNotFound {
		t.Fatalf("deleted session answered %d %s", status, code)
	}
}

// TestServerCreateErrors covers the typed rejection surface of session
// creation and body decoding.
func TestServerCreateErrors(t *testing.T) {
	c := newTestClient(t, Options{})
	cases := []struct {
		name string
		body any
		code string
	}{
		{"neither", CreateSessionRequest{}, CodeBadRequest},
		{"both", CreateSessionRequest{Spec: testSpec, Gen: &GenSpec{Rows: 1}}, CodeBadRequest},
		{"bad spec", CreateSessionRequest{Spec: "table ???"}, CodeBadRequest},
		{"unknown field", map[string]any{"bogus": 1}, CodeBadRequest},
	}
	for _, tc := range cases {
		if _, code := c.do("POST", "/v1/sessions", tc.body, nil); code != tc.code {
			t.Errorf("%s: got code %q, want %q", tc.name, code, tc.code)
		}
	}
	c.mustOK("POST", "/v1/sessions", CreateSessionRequest{Name: "dup", Spec: testSpec}, nil)
	if _, code := c.do("POST", "/v1/sessions", CreateSessionRequest{Name: "dup", Spec: testSpec}, nil); code != CodeConflict {
		t.Errorf("duplicate name: got %q, want %q", code, CodeConflict)
	}
	if status, code := c.do("GET", "/no/such/route", nil, nil); status != http.StatusNotFound || code != CodeNotFound {
		t.Errorf("unknown route: %d %s", status, code)
	}
}

// blockSession parks the session's writer lock so the next data-path
// request occupies a worker slot indefinitely; the returned func
// releases it.
func blockSession(t *testing.T, c *testClient, id string) func() {
	t.Helper()
	sess, aerr := c.srv.reg.get(id)
	if aerr != nil {
		t.Fatal(aerr)
	}
	sess.mu.Lock()
	return sess.mu.Unlock
}

// TestQueueFullTypedRejection saturates a Workers=1, QueueDepth=1
// server with concurrent clients and requires the overflow to be the
// typed queue_full rejection at HTTP 429 — not queuing, not a hang.
func TestQueueFullTypedRejection(t *testing.T) {
	c := newTestClient(t, Options{Workers: 1, QueueDepth: 1})
	var sess SessionInfo
	c.mustOK("POST", "/v1/sessions", CreateSessionRequest{Gen: &GenSpec{Rows: 50, Noise: 5, Seed: 1}}, &sess)
	base := "/v1/sessions/" + sess.ID

	unblock := blockSession(t, c, sess.ID)
	released := false
	defer func() {
		if !released {
			unblock()
		}
	}()

	// Occupy the single worker slot: this request holds it while
	// blocked on the session lock.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		c.srvDo(t, "POST", base+"/detect")
	}()
	waitFor(t, time.Second, func() bool { return c.srv.adm.inflight.Load() == 1 })

	// Overflow: with the slot busy and queue depth 1, at most one of
	// these can queue — the rest must bounce with queue_full.
	const extra = 6
	var ok, queueFull, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, code := c.statusOf("POST", base+"/detect")
			switch {
			case status == http.StatusOK:
				ok.Add(1)
			case status == http.StatusTooManyRequests && code == CodeQueueFull:
				queueFull.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	// Let the extras reach the admission gate before opening it.
	waitFor(t, time.Second, func() bool { return queueFull.Load() >= extra-1 })
	released = true
	unblock()
	wg.Wait()
	<-firstDone

	if other.Load() != 0 {
		t.Fatalf("unexpected responses: ok=%d queue_full=%d other=%d", ok.Load(), queueFull.Load(), other.Load())
	}
	if queueFull.Load() < extra-1 || ok.Load() > 1 {
		t.Fatalf("admission leaked: ok=%d queue_full=%d (want <=1 ok with queue depth 1)", ok.Load(), queueFull.Load())
	}
}

// TestDeadlineWhileQueued parks a request in the admission queue past
// its deadline and requires the typed deadline_exceeded answer at 504.
func TestDeadlineWhileQueued(t *testing.T) {
	c := newTestClient(t, Options{Workers: 1, QueueDepth: 8})
	var sess SessionInfo
	c.mustOK("POST", "/v1/sessions", CreateSessionRequest{Gen: &GenSpec{Rows: 50, Noise: 5, Seed: 1}}, &sess)
	base := "/v1/sessions/" + sess.ID

	unblock := blockSession(t, c, sess.ID)
	released := false
	defer func() {
		if !released {
			unblock()
		}
	}()

	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		c.srvDo(t, "POST", base+"/detect")
	}()
	waitFor(t, time.Second, func() bool { return c.srv.adm.inflight.Load() == 1 })

	start := time.Now()
	status, code := c.statusOf("POST", base+"/detect?timeout=150ms")
	if status != http.StatusGatewayTimeout || code != CodeDeadline {
		t.Fatalf("queued past deadline: got %d %s, want 504 %s", status, code, CodeDeadline)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("deadline not enforced: waited %v", waited)
	}
	released = true
	unblock()
	<-firstDone
	if status, _ := c.statusOf("POST", base+"/detect"); status != http.StatusOK {
		t.Fatalf("server wedged after deadline rejection: %d", status)
	}
}

// srvDo fires a request and drains it, failing the test on transport
// errors only — the status is the caller's business.
func (c *testClient) srvDo(t *testing.T, method, path string) {
	t.Helper()
	req, err := http.NewRequest(method, c.ts.URL+path, nil)
	if err != nil {
		t.Error(err)
		return
	}
	resp, err := c.ts.Client().Do(req)
	if err != nil {
		t.Error(err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func (c *testClient) statusOf(method, path string) (int, string) {
	c.t.Helper()
	req, err := http.NewRequest(method, c.ts.URL+path, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.ts.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var env errorEnvelope
	json.Unmarshal(raw, &env)
	code := ""
	if env.Error != nil {
		code = env.Error.Code
	}
	return resp.StatusCode, code
}

func waitFor(t *testing.T, patience time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(patience)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertPinsReleased forces an epoch turnover (a write retires the
// epoch any leaked pin would hold) and requires the engine to settle
// back to exactly one live epoch.
func assertPinsReleased(t *testing.T, c *testClient, base string, sessID string) {
	t.Helper()
	sess, aerr := c.srv.reg.get(sessID)
	if aerr != nil {
		t.Fatal(aerr)
	}
	c.mustOK("POST", base+"/updates", UpdatesRequest{
		Insert: [][]any{genRow()},
	}, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := sess.eng.Stats()
		if st.LiveEpochs == 1 && st.RetiredEpochs == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot pin leaked: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// genRow is one syntactically valid tuple of the generator schema.
func genRow() []any {
	return []any{"999", "0000000", "X", "0 Null St", "ZZZ", "00000", "1", "0.0", "ok"}
}

// TestDisconnectMidStreamReleasesSnapshot cancels a violations stream
// partway through and requires the reader's MVCC snapshot pin to be
// released — the exact leak a crashing or impatient client would cause.
func TestDisconnectMidStreamReleasesSnapshot(t *testing.T) {
	c := newTestClient(t, Options{})
	var sess SessionInfo
	c.mustOK("POST", "/v1/sessions", CreateSessionRequest{Gen: &GenSpec{Rows: 6000, Noise: 30, Seed: 3}}, &sess)
	base := "/v1/sessions/" + sess.ID
	c.mustOK("POST", base+"/detect", nil, nil)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", c.ts.URL+base+"/violations", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a sliver of the stream, then vanish.
	buf := make([]byte, 512)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatalf("stream head: %v", err)
	}
	if !strings.HasPrefix(string(buf), `{"columns":["RID"`) {
		t.Fatalf("stream head: %q", buf[:64])
	}
	cancel()
	resp.Body.Close()

	assertPinsReleased(t, c, base, sess.ID)

	// The stream endpoint still works after the aborted read.
	resp2, err := http.Get(c.ts.URL + base + "/violations")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var stream struct {
		Count int64 `json:"count"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&stream); err != nil || stream.Count == 0 {
		t.Fatalf("stream after abort: count=%d err=%v", stream.Count, err)
	}
}

// TestConcurrentMixedClients races checks, updates, detects and
// violation streams from many clients — run it under -race — and then
// requires zero leaked pins and only contract status codes.
func TestConcurrentMixedClients(t *testing.T) {
	c := newTestClient(t, Options{Workers: 4, QueueDepth: 4})
	var sess SessionInfo
	c.mustOK("POST", "/v1/sessions", CreateSessionRequest{Gen: &GenSpec{Rows: 1500, Noise: 10, Seed: 2}}, &sess)
	base := "/v1/sessions/" + sess.ID
	c.mustOK("POST", base+"/detect", nil, nil)

	checkBody, _ := json.Marshal(RowsPayload{Rows: [][]any{genRow()}})
	updBody, _ := json.Marshal(UpdatesRequest{Insert: [][]any{genRow()}})

	const clients, perClient = 8, 25
	var bad atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				var resp *http.Response
				var err error
				switch (i + j) % 4 {
				case 0:
					resp, err = c.ts.Client().Post(c.ts.URL+base+"/check", "application/json", bytes.NewReader(checkBody))
				case 1:
					resp, err = c.ts.Client().Post(c.ts.URL+base+"/updates", "application/json", bytes.NewReader(updBody))
				case 2:
					resp, err = c.ts.Client().Get(c.ts.URL + base + "/violations")
				default:
					resp, err = c.ts.Client().Post(c.ts.URL+base+"/detect?timeout=10s", "application/json", nil)
				}
				if err != nil {
					bad.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests, http.StatusGatewayTimeout:
				default:
					bad.Add(1)
					t.Errorf("client %d: HTTP %d", i, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d requests outside the status contract", bad.Load())
	}
	assertPinsReleased(t, c, base, sess.ID)
}

// TestHealthzReportsEngineStats exercises the observability surface:
// per-session epoch accounting and recovery stats over the wire.
func TestHealthzReportsEngineStats(t *testing.T) {
	c := newTestClient(t, Options{Workers: 2})
	var sess SessionInfo
	c.mustOK("POST", "/v1/sessions", CreateSessionRequest{Gen: &GenSpec{Rows: 100, Noise: 5, Seed: 1}}, &sess)
	c.mustOK("POST", "/v1/sessions/"+sess.ID+"/detect", nil, nil)

	var health HealthResponse
	c.mustOK("GET", "/healthz", nil, &health)
	if health.Status != "ok" || health.Workers != 2 || len(health.Sessions) != 1 {
		t.Fatalf("healthz: %+v", health)
	}
	eng := health.Sessions[0].Engine
	if eng.EpochSeq == 0 || eng.LiveEpochs != 1 {
		t.Fatalf("engine stats missing from healthz: %+v", eng)
	}
}
