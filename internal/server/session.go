package server

import (
	"database/sql"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ecfd/internal/core"
	"ecfd/internal/detect"
	"ecfd/internal/gen"
	"ecfd/internal/relation"
	"ecfd/internal/sqldb"
	"ecfd/internal/sqldriver"
)

// session is one long-lived detection context: a private engine, the
// schema + Σ registered once at creation (Install compiles the fixed
// statement set; the engine's plan cache then serves every later
// request), and the detector state the requests share.
//
// mu serializes the state-mutating surface — load, detect, check,
// updates all share the detector's staging tables and RID counter.
// Violation reads do NOT take mu: they pin an MVCC snapshot through a
// read-only transaction and run lock-free against it, concurrent with
// whatever the writer side is doing.
type session struct {
	id      string
	name    string
	dsn     string
	db      *sql.DB
	eng     *sqldb.DB
	det     *detect.Detector
	workers int
	created time.Time

	mu   sync.Mutex
	rows atomic.Int64

	closed atomic.Bool
}

func (s *session) info() SessionInfo {
	schema := s.det.Sigma()[0].Schema
	cols := make([]ColumnInfo, len(schema.Attrs))
	for i, a := range schema.Attrs {
		cols[i] = ColumnInfo{Name: a.Name, Kind: a.Kind.String()}
	}
	return SessionInfo{
		ID:          s.id,
		Name:        s.name,
		Table:       s.det.DataTable(),
		Columns:     cols,
		Constraints: len(s.det.Sigma()),
		Workers:     s.workers,
		Rows:        s.rows.Load(),
		Created:     s.created.UTC().Format(time.RFC3339),
	}
}

func (s *session) health() SessionHealth {
	st := s.eng.Stats()
	return SessionHealth{
		ID:    s.id,
		Name:  s.name,
		Table: s.det.DataTable(),
		Rows:  s.rows.Load(),
		Engine: EngineHealth{
			EpochSeq:      st.EpochSeq,
			LiveEpochs:    st.LiveEpochs,
			RetiredEpochs: st.RetiredEpochs,
			RetiredBytes:  st.RetiredBytes,
			Recovery: RecoveryHealth{
				Gen:           st.Recovery.Gen,
				SnapshotGen:   st.Recovery.SnapshotGen,
				UnitsReplayed: st.Recovery.UnitsReplayed,
				TornTail:      st.Recovery.TornTail,
				FellBack:      st.Recovery.FellBack,
			},
		},
	}
}

// close releases the session's engine. It waits for the in-flight
// mutating request (if any) to finish; read streams fail over to
// database/sql's drain-on-close semantics.
func (s *session) close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.Close()
	sqldriver.Unregister(s.dsn)
}

// registry owns the session table.
type registry struct {
	mu   sync.RWMutex
	byID map[string]*session
	seq  atomic.Int64
}

func newRegistry() *registry {
	return &registry{byID: make(map[string]*session)}
}

var sessionSeq atomic.Int64 // process-wide: DSNs must not collide across servers

// create builds a session from a request: engine, detector, Σ encoding
// and (for gen-backed sessions) the generated dataset.
func (r *registry) create(req *CreateSessionRequest) (*session, *APIError) {
	var schema *relation.Schema
	var sigma []*core.ECFD
	var data *relation.Relation
	switch {
	case req.Spec != "" && req.Gen != nil:
		return nil, apiErrorf(CodeBadRequest, "spec and gen are mutually exclusive")
	case req.Spec != "":
		spec, err := core.ParseSpec(req.Spec, nil)
		if err != nil {
			return nil, apiErrorf(CodeBadRequest, "parse spec: %v", err)
		}
		if len(spec.Constraints) == 0 {
			return nil, apiErrorf(CodeBadRequest, "spec declares no constraints")
		}
		schema = spec.Constraints[0].Schema
		for _, e := range spec.Constraints {
			if e.Schema.Name != schema.Name {
				return nil, apiErrorf(CodeBadRequest,
					"all constraints must target one table; got %s and %s",
					schema.Name, e.Schema.Name)
			}
		}
		sigma = spec.Constraints
	case req.Gen != nil:
		if req.Gen.Rows < 0 {
			return nil, apiErrorf(CodeBadRequest, "gen.rows must be >= 0")
		}
		schema = gen.Schema()
		sigma = gen.Constraints()
		if req.Gen.Rows > 0 {
			data = gen.Dataset(gen.Config{
				Rows: req.Gen.Rows, Noise: req.Gen.Noise, Seed: req.Gen.Seed,
			})
		}
	default:
		return nil, apiErrorf(CodeBadRequest, "one of spec or gen is required")
	}

	if req.Name != "" {
		r.mu.RLock()
		for _, s := range r.byID {
			if s.name == req.Name {
				r.mu.RUnlock()
				return nil, apiErrorf(CodeConflict, "session name %q is taken", req.Name)
			}
		}
		r.mu.RUnlock()
	}

	dsn := fmt.Sprintf("ecfdserver_%d", sessionSeq.Add(1))
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		return nil, apiErrorf(CodeInternal, "open engine: %v", err)
	}
	fail := func(e error) (*session, *APIError) {
		db.Close()
		sqldriver.Unregister(dsn)
		return nil, apiErrorf(CodeInternal, "%v", e)
	}
	det, err := detect.New(db, schema, sigma)
	if err != nil {
		return fail(err)
	}
	if err := det.Install(); err != nil {
		return fail(err)
	}
	det.BindEngine(sqldriver.Engine(dsn))

	s := &session{
		id:      fmt.Sprintf("s%d", r.seq.Add(1)),
		name:    req.Name,
		dsn:     dsn,
		db:      db,
		eng:     sqldriver.Engine(dsn),
		det:     det,
		workers: req.Workers,
		created: time.Now(),
	}
	if data != nil {
		if _, err := det.LoadData(data); err != nil {
			return fail(err)
		}
		s.rows.Store(int64(data.Len()))
	}

	r.mu.Lock()
	r.byID[s.id] = s
	r.mu.Unlock()
	return s, nil
}

func (r *registry) get(id string) (*session, *APIError) {
	r.mu.RLock()
	s, ok := r.byID[id]
	r.mu.RUnlock()
	if !ok {
		return nil, apiErrorf(CodeNotFound, "no session %q", id)
	}
	return s, nil
}

// remove detaches a session from the registry and closes it.
func (r *registry) remove(id string) *APIError {
	r.mu.Lock()
	s, ok := r.byID[id]
	delete(r.byID, id)
	r.mu.Unlock()
	if !ok {
		return apiErrorf(CodeNotFound, "no session %q", id)
	}
	s.close()
	return nil
}

// list returns the sessions ordered by id.
func (r *registry) list() []*session {
	r.mu.RLock()
	out := make([]*session, 0, len(r.byID))
	for _, s := range r.byID {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// closeAll tears every session down (server shutdown).
func (r *registry) closeAll() {
	r.mu.Lock()
	all := make([]*session, 0, len(r.byID))
	for id, s := range r.byID {
		all = append(all, s)
		delete(r.byID, id)
	}
	r.mu.Unlock()
	for _, s := range all {
		s.close()
	}
}
