package server

import (
	"context"
	"database/sql"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"ecfd/internal/relation"
)

// streamPage is the keyset page size: large enough to amortize the
// per-page flush, small enough that a cancelled client stops the read
// within one page.
const streamPage = 2048

// doViolations streams the violation set as one JSON document:
//
//	{"columns": ["RID", ..., "SV", "MV"], "rows": [[...], ...], "count": N}
//
// The whole stream runs inside a single read-only transaction, so it
// observes one MVCC snapshot no matter how many updates land while the
// client drains it. Pagination is keyset (RID > last ORDER BY RID), two
// fixed statement shapes with a literal LIMIT so the plan cache serves
// every page. The deferred Rollback releases the snapshot pin on every
// exit path — normal completion, deadline, and client disconnect alike
// (database/sql closes the driver conn when the context dies, and the
// driver's conn.Close releases the pin).
func (s *Server) doViolations(ctx context.Context, sess *session, w http.ResponseWriter, r *http.Request) *APIError {
	lo, hi := int64(0), int64(0)
	bounded := false
	if q := r.URL.Query().Get("lo"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			return apiErrorf(CodeBadRequest, "bad lo %q", q)
		}
		lo = n
	}
	if q := r.URL.Query().Get("hi"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			return apiErrorf(CodeBadRequest, "bad hi %q", q)
		}
		hi, bounded = n, true
	}

	schema := sess.schema()
	cols := make([]string, 0, len(schema.Attrs)+3)
	kinds := make([]relation.Kind, 0, len(schema.Attrs)+3)
	cols = append(cols, "RID")
	kinds = append(kinds, relation.KindInt)
	for _, a := range schema.Attrs {
		cols = append(cols, a.Name)
		kinds = append(kinds, a.Kind)
	}
	cols = append(cols, "SV", "MV")
	kinds = append(kinds, relation.KindInt, relation.KindInt)

	// Two fixed shapes: open range and bounded range. The LIMIT is a
	// literal on purpose — parameterized LIMITs would defeat the plan
	// cache's one-entry-per-shape design.
	base := fmt.Sprintf("SELECT %s FROM %s WHERE (SV = 1 OR MV = 1) AND RID > ?",
		strings.Join(cols, ", "), sess.det.DataTable())
	tail := fmt.Sprintf(" ORDER BY RID LIMIT %d", streamPage)
	openQ := base + tail
	boundedQ := base + " AND RID <= ?" + tail

	tx, err := sess.db.BeginTx(ctx, &sql.TxOptions{ReadOnly: true})
	if err != nil {
		return apiErrorf(CodeInternal, "begin snapshot: %v", err)
	}
	defer tx.Rollback()

	w.Header().Set("Content-Type", "application/json")
	flusher, _ := w.(http.Flusher)
	emit := func(p string) bool {
		_, werr := io.WriteString(w, p)
		return werr == nil
	}

	header, _ := json.Marshal(cols)
	if !emit(`{"columns":` + string(header) + `,"rows":[`) {
		return nil
	}

	count, last, first := int64(0), lo, true
	for {
		if ctx.Err() != nil {
			// Deadline or disconnect mid-stream: the body is already
			// partially written, so just stop — the truncated JSON is
			// the client's signal. Rollback releases the snapshot.
			return nil
		}
		var rows *sql.Rows
		if bounded {
			rows, err = tx.QueryContext(ctx, boundedQ, last, hi)
		} else {
			rows, err = tx.QueryContext(ctx, openQ, last)
		}
		if err != nil {
			return nil // stream already started; terminate silently
		}
		n := 0
		for rows.Next() {
			cells := make([]sql.NullString, len(cols))
			ptrs := make([]any, len(cols))
			for i := range ptrs {
				ptrs[i] = &cells[i]
			}
			if err := rows.Scan(ptrs...); err != nil {
				rows.Close()
				return nil
			}
			out := make([]any, len(cols))
			for i, c := range cells {
				if !c.Valid {
					out[i] = nil
					continue
				}
				v, perr := relation.ParseLiteral(c.String, kinds[i])
				if perr != nil {
					rows.Close()
					return nil
				}
				out[i] = cellJSON(v)
				if i == 0 {
					last = v.I
				}
			}
			line, _ := json.Marshal(out)
			sep := ","
			if first {
				sep, first = "", false
			}
			if !emit(sep + string(line)) {
				rows.Close()
				return nil
			}
			n++
			count++
		}
		closeErr := rows.Close()
		if rows.Err() != nil || closeErr != nil {
			return nil
		}
		if flusher != nil {
			flusher.Flush()
		}
		if n < streamPage {
			break
		}
	}

	emit(fmt.Sprintf(`],"count":%d}`, count))
	if flusher != nil {
		flusher.Flush()
	}
	return nil
}
