package sqldb

import (
	"ecfd/internal/relation"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Kind relation.Kind
}

// CreateTable is CREATE TABLE [IF NOT EXISTS] name (cols...).
type CreateTable struct {
	Name        string
	Cols        []ColumnDef
	IfNotExists bool
}

// CreateIndex is CREATE INDEX name ON table (cols...).
type CreateIndex struct {
	Name  string
	Table string
	Cols  []string
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// TruncateTable is TRUNCATE TABLE name.
type TruncateTable struct{ Name string }

// Insert is INSERT INTO t [(cols)] VALUES (...),(...) | SELECT ... .
type Insert struct {
	Table string
	Cols  []string
	Rows  [][]Expr
	Query *Select
}

// Assignment is one SET col = expr clause.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is UPDATE t [alias] SET ... [WHERE ...].
type Update struct {
	Table string
	Alias string
	Set   []Assignment
	Where Expr
}

// Delete is DELETE FROM t [alias] [WHERE ...].
type Delete struct {
	Table string
	Alias string
	Where Expr
}

// Select is a (possibly nested) SELECT statement.
type Select struct {
	Distinct bool
	Exprs    []SelectExpr
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil when absent
	Offset   Expr
}

// SelectExpr is one item of the select list. Star selects all columns
// (of StarTable when set).
type SelectExpr struct {
	Expr      Expr
	Alias     string
	Star      bool
	StarTable string
}

// TableRef is one entry of the FROM list: a base table or a derived
// table (subquery) with an alias. Joins are expressed as comma lists
// or INNER JOIN ... ON (the ON predicate is folded into WHERE).
type TableRef struct {
	Table string
	Alias string
	Sub   *Select
}

// Name returns the binding name of the table reference.
func (tr TableRef) Name() string {
	if tr.Alias != "" {
		return tr.Alias
	}
	return tr.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (*CreateTable) stmt()   {}
func (*CreateIndex) stmt()   {}
func (*DropTable) stmt()     {}
func (*TruncateTable) stmt() {}
func (*Insert) stmt()        {}
func (*Update) stmt()        {}
func (*Delete) stmt()        {}
func (*Select) stmt()        {}

// Expr is any SQL expression node.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val relation.Value }

// Param is the i-th '?' placeholder (0-based).
type Param struct{ Index int }

// ColumnRef names a column, optionally qualified by table alias.
type ColumnRef struct{ Table, Column string }

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT", "-"
	X  Expr
}

// Binary is a binary operator application.
type Binary struct {
	Op   string // AND OR = <> < <= > >= + - * / % ||
	L, R Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Neg bool
}

// InList is x [NOT] IN (e1, e2, ...).
type InList struct {
	X    Expr
	List []Expr
	Neg  bool
}

// InSelect is x [NOT] IN (SELECT ...).
type InSelect struct {
	X   Expr
	Sub *Select
	Neg bool
}

// Exists is [NOT] EXISTS (SELECT ...).
type Exists struct {
	Sub *Select
	Neg bool
}

// When is one WHEN ... THEN ... arm of a CASE.
type When struct{ Cond, Result Expr }

// Case is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr
}

// FuncCall is a scalar or aggregate function application. Star is
// COUNT(*); Distinct is COUNT(DISTINCT x) etc.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool
	Distinct bool
}

// ScalarSub is a subquery used as a scalar value.
type ScalarSub struct{ Sub *Select }

// Like is x [NOT] LIKE pattern (with % and _ wildcards).
type Like struct {
	X, Pattern Expr
	Neg        bool
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Neg       bool
}

func (*Literal) expr()   {}
func (*Param) expr()     {}
func (*ColumnRef) expr() {}
func (*Unary) expr()     {}
func (*Binary) expr()    {}
func (*IsNull) expr()    {}
func (*InList) expr()    {}
func (*InSelect) expr()  {}
func (*Exists) expr()    {}
func (*Case) expr()      {}
func (*FuncCall) expr()  {}
func (*ScalarSub) expr() {}
func (*Like) expr()      {}
func (*Between) expr()   {}
