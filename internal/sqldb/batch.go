package sqldb

import (
	"ecfd/internal/relation"
)

// Batched (vector-at-a-time) execution.
//
// The planner's join levels normally evaluate every scheduled
// predicate as a compiled closure, once per candidate row. For the
// detection workload that per-row dispatch is pure overhead on the
// *simple* predicates — column-vs-constant/parameter compares
// (`t.RID >= ?`, `t.MV = 0`), IN-set probes, flag tests — whose
// right-hand sides never change while a level iterates. This file
// adds the second compilation target: such predicates lower to batch
// kernels that run over the table's cached column vectors
// (Table.column) and tighten a selection vector chunk-by-chunk, with
// no closure call per row. Anything else — OR groups, subquery
// probes, cross-column arithmetic — stays on the compiledExpr path,
// so semantics never change; the kernels are an exact, not a
// conservative, evaluation of the conjuncts they consume (verified by
// the three-way differential oracle).
//
// A kernel evaluates its invariant inputs once per level *entry*
// (bind), then filters fixed-size batches of candidate row positions
// (filter). NULL semantics collapse the same way the closure path
// does at filter level: a NULL comparison result keeps the row out.

// batchChunk is the selection-vector batch size: small enough that a
// chunk of positions stays cache-resident, large enough to amortize
// the per-chunk bookkeeping.
const batchChunk = 1024

// DisableBatchKernels forces every predicate back onto the per-row
// closure path. It exists for the differential property tests and the
// ablation benchmark; production code must leave it false. Consulted
// when schedules are built (per execution), not at compile time.
var DisableBatchKernels = false

// kernOp enumerates the kernel predicate shapes.
type kernOp uint8

const (
	kernEQ kernOp = iota
	kernNE
	kernLT
	kernLE
	kernGT
	kernGE
	kernIsNull  // neg: IS NOT NULL
	kernIn      // neg: NOT IN; items are literals/params only
	kernBetween // neg: NOT BETWEEN
)

// kernelPred is one compiled batch kernel: a simple predicate over one
// column of the level's source. rhs / lo / hi / items read anything
// *except* that source (outer levels, outer scopes, parameters,
// constants), so they are loop-invariant for the level and bind once
// per entry.
type kernelPred struct {
	col    int
	op     kernOp
	neg    bool
	rhs    compiledExpr   // compare ops
	lo, hi compiledExpr   // kernBetween
	items  []compiledExpr // kernIn
}

// kernelCand records that a plan part can run as a kernel when source
// src is the part's scheduled level.
type kernelCand struct {
	src int
	k   *kernelPred
}

// kernBind is the per-level-entry bound state of one kernel.
type kernBind struct {
	// empty short-circuits the whole level: a NULL bound means the
	// predicate holds for no row (col OP NULL is never true), exactly
	// like the closure returning NULL for every row.
	empty   bool
	w       relation.Value
	wInt    bool // w is integer-like: the compare loop takes the int path
	lo, hi  relation.Value
	set     map[string]bool  // kernIn, >= inListHashThreshold items
	vals    []relation.Value // kernIn, shorter lists: Equal-scan values
	keyBuf  []byte           // kernIn set lookups: reused key scratch
	hasNull bool
	// setBuilt: the IN item state is built once per execution, not per
	// level entry — the items are literals/params, fixed for the
	// statement (the bind state lives on the per-env planState).
	setBuilt bool
}

// bind evaluates the kernel's invariant inputs for one level entry.
func (k *kernelPred) bind(en *env, b *kernBind) error {
	b.empty = false
	switch k.op {
	case kernIsNull:
		return nil
	case kernBetween:
		lo, err := k.lo(en)
		if err != nil {
			return err
		}
		hi, err := k.hi(en)
		if err != nil {
			return err
		}
		if lo.IsNull() || hi.IsNull() {
			b.empty = true
			return nil
		}
		b.lo, b.hi = lo, hi
		return nil
	case kernIn:
		if b.setBuilt {
			return nil
		}
		// Mirror the closure path's per-size strategy exactly: short
		// lists are Equal-scanned, long lists use the Key()-hashed set.
		// The strategies agree (Equal and Key() are both exact across
		// numeric kinds), but mirroring keeps batch and row execution
		// equivalent by construction.
		if len(k.items) >= inListHashThreshold {
			b.set = make(map[string]bool, len(k.items))
			var err error
			if b.hasNull, err = buildInSet(en, k.items, b.set); err != nil {
				return err
			}
		} else {
			b.vals = b.vals[:0]
			for _, it := range k.items {
				w, err := it(en)
				if err != nil {
					return err
				}
				if w.IsNull() {
					b.hasNull = true
					continue
				}
				b.vals = append(b.vals, w)
			}
		}
		b.setBuilt = true
		return nil
	default:
		w, err := k.rhs(en)
		if err != nil {
			return err
		}
		if w.IsNull() {
			b.empty = true
			return nil
		}
		b.w = w
		b.wInt = w.K == relation.KindInt || w.K == relation.KindBool
		return nil
	}
}

// filter tightens the selection vector in place: sel holds candidate
// row positions, colv the level source's cached column vector, and the
// surviving positions are returned as a prefix of sel's storage. The
// relative order of positions is preserved, so kernel filtering
// composes with range-pruned and order-served scans.
func (k *kernelPred) filter(colv []relation.Value, b *kernBind, sel []int) []int {
	out := sel[:0]
	switch k.op {
	case kernIsNull:
		for _, ri := range sel {
			if (colv[ri].K == relation.KindNull) != k.neg {
				out = append(out, ri)
			}
		}
	case kernIn:
		for _, ri := range sel {
			v := colv[ri]
			if v.K == relation.KindNull {
				continue // NULL IN (...) is NULL: row out either way
			}
			match := false
			if b.set != nil {
				b.keyBuf = relation.AppendKey(b.keyBuf[:0], v)
				match = b.set[string(b.keyBuf)]
			} else {
				for _, w := range b.vals {
					if relation.Equal(v, w) {
						match = true
						break
					}
				}
			}
			switch {
			case match:
				if !k.neg {
					out = append(out, ri)
				}
			case b.hasNull:
				// no match but a NULL item: NULL, row out either way
			default:
				if k.neg {
					out = append(out, ri)
				}
			}
		}
	case kernBetween:
		for _, ri := range sel {
			v := colv[ri]
			if v.K == relation.KindNull {
				continue
			}
			in := relation.Compare(v, b.lo) >= 0 && relation.Compare(v, b.hi) <= 0
			if in != k.neg {
				out = append(out, ri)
			}
		}
	case kernEQ, kernNE:
		want := k.op == kernEQ
		for _, ri := range sel {
			v := colv[ri]
			if v.K == relation.KindNull {
				continue
			}
			var eq bool
			if b.wInt && (v.K == relation.KindInt || v.K == relation.KindBool) {
				eq = v.I == b.w.I
			} else {
				eq = relation.Equal(v, b.w)
			}
			if eq == want {
				out = append(out, ri)
			}
		}
	default: // kernLT, kernLE, kernGT, kernGE
		for _, ri := range sel {
			v := colv[ri]
			if v.K == relation.KindNull {
				continue
			}
			var res bool
			if b.wInt && (v.K == relation.KindInt || v.K == relation.KindBool) {
				switch k.op {
				case kernLT:
					res = v.I < b.w.I
				case kernLE:
					res = v.I <= b.w.I
				case kernGT:
					res = v.I > b.w.I
				case kernGE:
					res = v.I >= b.w.I
				}
			} else {
				c := relation.Compare(v, b.w)
				switch k.op {
				case kernLT:
					res = c < 0
				case kernLE:
					res = c <= 0
				case kernGT:
					res = c > 0
				case kernGE:
					res = c >= 0
				}
			}
			if res {
				out = append(out, ri)
			}
		}
	}
	return out
}

// extractKernels compiles the batch-kernel candidates of one plan-part
// expression, one per source orientation that works: the part must be
// a simple predicate whose tested column belongs to that source (at
// the current depth) and whose remaining inputs never read it. Returns
// nil when the shape does not qualify — the part then stays on the
// closure path, which is always available.
func (c *compiler) extractKernels(e Expr, depth int) []kernelCand {
	var out []kernelCand
	// colOf resolves a ColumnRef at the current depth; invariant checks
	// that an input expression never reads the given source.
	colOf := func(side Expr) (src, col int, ok bool) {
		ref, isRef := side.(*ColumnRef)
		if !isRef {
			return 0, 0, false
		}
		b, err := c.resolve(ref)
		if err != nil || b.depth != depth {
			return 0, 0, false
		}
		return b.src, b.col, true
	}
	invariant := func(src int, exprs ...Expr) bool {
		for _, x := range exprs {
			ok := true
			if err := c.walkBindings(x, func(b binding) {
				if b.depth == depth && b.src == src {
					ok = false
				}
			}); err != nil || !ok {
				return false
			}
		}
		return true
	}
	compileAll := func(exprs ...Expr) ([]compiledExpr, bool) {
		ces := make([]compiledExpr, len(exprs))
		for i, x := range exprs {
			var err error
			if ces[i], err = c.compileExpr(x); err != nil {
				return nil, false
			}
		}
		return ces, true
	}

	switch x := e.(type) {
	case *Binary:
		var op kernOp
		switch x.Op {
		case "=":
			op = kernEQ
		case "<>":
			op = kernNE
		case "<":
			op = kernLT
		case "<=":
			op = kernLE
		case ">":
			op = kernGT
		case ">=":
			op = kernGE
		default:
			return nil
		}
		flip := func(op kernOp) kernOp {
			switch op {
			case kernLT:
				return kernGT
			case kernLE:
				return kernGE
			case kernGT:
				return kernLT
			case kernGE:
				return kernLE
			}
			return op
		}
		try := func(colSide, keySide Expr, o kernOp) {
			src, col, ok := colOf(colSide)
			if !ok || !invariant(src, keySide) {
				return
			}
			ce, ok := compileAll(keySide)
			if !ok {
				return
			}
			out = append(out, kernelCand{src: src, k: &kernelPred{col: col, op: o, rhs: ce[0]}})
		}
		try(x.L, x.R, op)
		try(x.R, x.L, flip(op))
		return out

	case *IsNull:
		src, col, ok := colOf(x.X)
		if !ok {
			return nil
		}
		return []kernelCand{{src: src, k: &kernelPred{col: col, op: kernIsNull, neg: x.Neg}}}

	case *InList:
		src, col, ok := colOf(x.X)
		if !ok {
			return nil
		}
		for _, it := range x.List {
			switch it.(type) {
			case *Literal, *Param:
			default:
				return nil // mirror the closure's "simple list" shape only
			}
		}
		items, ok := compileAll(x.List...)
		if !ok {
			return nil
		}
		return []kernelCand{{src: src, k: &kernelPred{col: col, op: kernIn, neg: x.Neg, items: items}}}

	case *Between:
		src, col, ok := colOf(x.X)
		if !ok || !invariant(src, x.Lo, x.Hi) {
			return nil
		}
		ce, ok := compileAll(x.Lo, x.Hi)
		if !ok {
			return nil
		}
		return []kernelCand{{src: src, k: &kernelPred{col: col, op: kernBetween, neg: x.Neg, lo: ce[0], hi: ce[1]}}}
	}
	return nil
}

// ---- generalized kernel predicates: OR groups and probe kernels ----
//
// The simple kernels above cover plain conjuncts. The eCFD detection
// queries, however, are dominated by OR groups whose alternatives mix
// pattern-side guards with per-row set probes:
//
//	(c.A_L <> 1 OR EXISTS (SELECT 1 FROM tal s WHERE s.CID = c.CID AND s.VAL = t.A))
//
// kpred is the compiled, kernelizable form of one AND part of one OR
// alternative, relative to one source orientation. Four shapes:
//
//   - inv: the part never reads the level source — it is loop-invariant
//     for the level and evaluates once per entry (the guards above);
//   - simple: the PR-4 kernel shapes (compare, IN, IS NULL, BETWEEN);
//   - probe: a decorrelated EXISTS whose hash/index build and key
//     scratch resolve once per level entry instead of once per row;
//   - or: a nested disjunction of kernelizable atoms (the NotIn
//     alternative's `t.A IS NULL OR EXISTS (...)`).
//
// buildSchedule consumes a whole conjunct as an OR-group kernel when
// every part that reads the level's source lowers to a kpred; a group
// with any non-kernelizable part falls back whole to the per-row
// closure path, so semantics never change.
type kpred struct {
	inv    compiledExpr
	simple *kernelPred
	probe  *kprobe
	or     []*kpred
}

// kpredCand records that a part can run as a kernel when source src is
// the part's scheduled level.
type kpredCand struct {
	src int
	k   *kpred
}

// kpFor picks the generalized candidate matching a level's source.
func kpFor(cands []kpredCand, src int) *kpred {
	for i := range cands {
		if cands[i].src == src {
			return cands[i].k
		}
	}
	return nil
}

// kpSimpleFor returns the plain kernel of a part for a source, if the
// part lowers to one — the existing AND-conjunct consumption reads it.
func kpSimpleFor(cands []kpredCand, src int) *kernelPred {
	if k := kpFor(cands, src); k != nil {
		return k.simple
	}
	return nil
}

// kprobePartKind classifies one key part of a probe kernel relative to
// the level source.
type kprobePartKind uint8

const (
	pkInv     kprobePartKind = iota // never reads the level source: bind once per entry
	pkCol                           // plain column of the level source: vector read
	pkCase                          // one-armed CASE, condition invariant for the level
	pkGeneric                       // reads the level source arbitrarily: per-row closure
)

// kprobeResKind classifies the THEN arm of a pkCase part.
type kprobeResKind uint8

const (
	resGeneric      kprobeResKind = iota // per-row closure
	resCol                               // plain column of the level source
	resTextCoalesce                      // COALESCE(TOTEXT(col), lit) — the '@'-blanking shape
)

type kprobePart struct {
	kind    kprobePartKind
	full    compiledExpr   // pkInv, pkGeneric
	col     int            // pkCol; pkCase resCol / resTextCoalesce
	cond    compiledExpr   // pkCase
	resKind kprobeResKind  // pkCase
	resFull compiledExpr   // pkCase resGeneric
	alt     relation.Value // pkCase ELSE literal
	nullLit relation.Value // resTextCoalesce COALESCE fallback literal
}

// kprobe is the compiled batch form of a decorrelated EXISTS for one
// level source: the shared decorrProbe plus the per-part vectorization
// classes. Semantics mirror the closure path exactly — same build set
// or index, same key encoding, NULL key parts never match.
type kprobe struct {
	d        *decorrProbe
	neg      bool
	src      int
	parts    []kprobePart
	needsRow bool // some part evaluates a closure against the level row
}

// extractKPred compiles the generalized kernel candidates of one plan
// part, one per source orientation that works. Returns nil when the
// part's shape does not qualify for any source — the closure path is
// always available.
func (c *compiler) extractKPred(e Expr, depth int) []kpredCand {
	if cands := c.extractKernels(e, depth); len(cands) > 0 {
		out := make([]kpredCand, len(cands))
		for i, kc := range cands {
			out[i] = kpredCand{src: kc.src, k: &kpred{simple: kc.k}}
		}
		return out
	}
	switch x := e.(type) {
	case *Exists:
		return c.extractProbeKernels(x, depth)
	case *Binary:
		if x.Op != "OR" {
			return nil
		}
		var atoms []Expr
		flattenLogical("OR", x, &atoms)
		return c.extractNestedOr(atoms, depth)
	}
	return nil
}

// extractNestedOr lowers a disjunction nested inside an AND part: for
// a source candidate, every atom reading that source must itself
// kernelize; atoms not reading it become per-entry invariant closures
// (an invariant atom binding true makes the whole disjunction true for
// every row of the entry).
func (c *compiler) extractNestedOr(atoms []Expr, depth int) []kpredCand {
	var union srcMask
	masks := make([]srcMask, len(atoms))
	for i, a := range atoms {
		var m srcMask
		if err := c.walkBindings(a, func(b binding) {
			if b.depth == depth {
				m |= 1 << uint(b.src)
			}
		}); err != nil {
			return nil
		}
		masks[i] = m
		union |= m
	}
	var out []kpredCand
	for src := 0; src < 64; src++ {
		bit := srcMask(1) << uint(src)
		if union&bit == 0 {
			continue
		}
		sub := make([]*kpred, 0, len(atoms))
		ok := true
		for i, a := range atoms {
			if masks[i]&bit == 0 {
				ce, err := c.compileExpr(a)
				if err != nil {
					ok = false
					break
				}
				sub = append(sub, &kpred{inv: ce})
				continue
			}
			k := kpFor(c.extractKPred(a, depth), src)
			if k == nil {
				ok = false
				break
			}
			sub = append(sub, k)
		}
		if ok {
			out = append(out, kpredCand{src: src, k: &kpred{or: sub}})
		}
	}
	return out
}

// extractProbeKernels lowers a [NOT] EXISTS part to probe kernels, one
// per current-depth source its key expressions read.
func (c *compiler) extractProbeKernels(x *Exists, depth int) []kpredCand {
	d, err := c.analyzeDecorrelate(x)
	if err != nil || d == nil {
		return nil
	}
	var union srcMask
	masks := make([]srcMask, len(d.outer))
	for i, e := range d.outer {
		var m srcMask
		if err := c.walkBindings(e, func(b binding) {
			if b.depth == depth {
				m |= 1 << uint(b.src)
			}
		}); err != nil {
			return nil
		}
		masks[i] = m
		union |= m
	}
	var out []kpredCand
	for src := 0; src < 64; src++ {
		if union&(1<<uint(src)) == 0 {
			continue
		}
		if kp := c.buildProbeKernel(d, masks, depth, src); kp != nil {
			out = append(out, kpredCand{src: src, k: &kpred{probe: kp}})
		}
	}
	return out
}

// buildProbeKernel classifies every key part of a decorrelated probe
// relative to one source. Classification is total (pkGeneric catches
// everything), so this only fails on compile errors.
func (c *compiler) buildProbeKernel(d *decorrProbe, masks []srcMask, depth, src int) *kprobe {
	bit := srcMask(1) << uint(src)
	kp := &kprobe{d: d, neg: d.neg, src: src, parts: make([]kprobePart, len(d.outer))}
	for i, e := range d.outer {
		p := &kp.parts[i]
		if masks[i]&bit == 0 {
			ce, err := c.compileExpr(e)
			if err != nil {
				return nil
			}
			p.kind, p.full = pkInv, ce
			continue
		}
		if ref, ok := e.(*ColumnRef); ok {
			if b, err := c.resolve(ref); err == nil && b.depth == depth && b.src == src {
				p.kind, p.col = pkCol, b.col
				continue
			}
		}
		if c.classifyCasePart(p, e, depth, src, bit) {
			if p.resKind == resGeneric && p.resFull == nil {
				return nil // compile error in the THEN arm
			}
			kp.needsRow = kp.needsRow || (p.resKind == resGeneric)
			continue
		}
		ce, err := c.compileExpr(e)
		if err != nil {
			return nil
		}
		p.kind, p.full = pkGeneric, ce
		kp.needsRow = true
	}
	return kp
}

// classifyCasePart recognizes the '@'-blanking key shape — a one-armed
// searched CASE with a level-invariant condition and a literal ELSE —
// and fills p as a pkCase part. Returns false when e is not that shape
// (the caller falls back to pkGeneric).
func (c *compiler) classifyCasePart(p *kprobePart, e Expr, depth, src int, bit srcMask) bool {
	cse, ok := cacheableCase(e)
	if !ok {
		return false
	}
	var cm srcMask
	if err := c.walkBindings(cse.Whens[0].Cond, func(b binding) {
		if b.depth == depth {
			cm |= 1 << uint(b.src)
		}
	}); err != nil || cm&bit != 0 {
		return false
	}
	cond, err := c.compileExpr(cse.Whens[0].Cond)
	if err != nil {
		return false
	}
	p.kind, p.cond, p.alt = pkCase, cond, cse.Else.(*Literal).Val
	res := cse.Whens[0].Result
	if col, lit, ok := c.textCoalesceCol(res, depth, src); ok {
		p.resKind, p.col, p.nullLit = resTextCoalesce, col, lit
		return true
	}
	if ref, ok := res.(*ColumnRef); ok {
		if b, err := c.resolve(ref); err == nil && b.depth == depth && b.src == src {
			p.resKind, p.col = resCol, b.col
			return true
		}
	}
	rf, err := c.compileExpr(res)
	if err != nil {
		p.resKind, p.resFull = resGeneric, nil // caller rejects
		return true
	}
	p.resKind, p.resFull = resGeneric, rf
	return true
}

// textCoalesceCol matches COALESCE(TOTEXT(col), lit) / IFNULL(...) over
// a column of the given source — the Qmv macro's NULL-marking idiom —
// returning the column and the fallback literal.
func (c *compiler) textCoalesceCol(e Expr, depth, src int) (int, relation.Value, bool) {
	fc, ok := e.(*FuncCall)
	if !ok || (fc.Name != "COALESCE" && fc.Name != "IFNULL") || len(fc.Args) != 2 {
		return 0, relation.Value{}, false
	}
	tt, ok := fc.Args[0].(*FuncCall)
	if !ok || tt.Name != "TOTEXT" || len(tt.Args) != 1 {
		return 0, relation.Value{}, false
	}
	ref, ok := tt.Args[0].(*ColumnRef)
	if !ok {
		return 0, relation.Value{}, false
	}
	lit, ok := fc.Args[1].(*Literal)
	if !ok {
		return 0, relation.Value{}, false
	}
	b, err := c.resolve(ref)
	if err != nil || b.depth != depth || b.src != src {
		return 0, relation.Value{}, false
	}
	return b.col, lit.Val, true
}

// ---- per-schedule OR-group instances ----

// Tri-state of a pred for one level entry.
const (
	pNormal uint8 = iota
	pAlways       // holds for every candidate row: skip at filter time
	pNever        // holds for no row: the alternative is dead this entry
)

// orGroupK is the per-schedule (single-goroutine) instance of one
// group-kernel-consumed conjunct. All mutable bind state lives here;
// the compiled kpred tree is shared and immutable.
//
// Binding is lazy, term by term, at filter time: alternative i's
// invariant parts and kernel binds evaluate only when a candidate row
// actually reaches it (no earlier alternative matched it) — exactly
// when the row path would evaluate that alternative's closures. An
// erroring expression in a later alternative therefore errors the
// batch path precisely when it errors the row path, never earlier.
type orGroupK struct {
	conj   int
	nTerms int
	terms  []orTermK
	// entry state
	pass bool // some alternative holds for every row: group filters nothing
}

type orTermK struct {
	binds []compiledExpr // parts not reading the level source: all must bind true
	preds []predInst
	bound bool // binds evaluated and preds bound for this entry
	live  bool
	// always: binds held and every pred is pAlways — the alternative
	// holds for every candidate row of the entry, so the whole group
	// passes from the first row that reaches it.
	always bool
}

// predInst carries one kpred's per-entry bind state.
type predInst struct {
	k     *kpred
	state uint8
	b     kernBind
	colv  []relation.Value
	probe *probeInst
	or    []predInst
	// nested-or scratch: candidate copies and the row-match mask
	orRem, orCur []int
	orMask       []bool
}

// probeInst is the bound state of one probe kernel.
type probeInst struct {
	k *kprobe
	// Index-probe state: the epoch's index structure and the row fence
	// cutting shared buckets to this epoch's row count.
	d       *indexData
	fence   int
	set     map[string]bool
	vals    []relation.Value   // constant part values this entry
	con     []bool             // part i is constant this entry
	condT   []bool             // pkCase condition held this entry
	colvs   [][]relation.Value // column vectors for vectorized parts
	rowVals []relation.Value   // per-row key scratch
	keyBuf  []byte
	// Per-entry key plan: pfx holds the encoded constant key prefix
	// (the leading parts of the encode order — index column order for
	// index probes, natural order for hash probes — that are constant
	// for the entry, e.g. the pattern's CID), tail the part indices
	// still encoded per row.
	pfx  []byte
	tail []int
	// Small-set scan: when an index probe's only per-row part is a
	// plain column (the `s.CID = c.CID AND s.VAL = t.A` shape with CID
	// bound), the entry's matching inner values are materialized once
	// via the index's ordered prefix search, and each row Identical-
	// scans that tiny set instead of encoding a key and hashing.
	// Identical mirrors the key encoding exactly (exact numerics, NaN
	// self-equal), so hit/miss never diverges from the hash path.
	scanVals []relation.Value
	scanOn   bool
	scanCol  int // part index of the per-row column
	pfxVals  []relation.Value
}

// probeScanSetMax bounds the materialized per-entry value set: beyond
// this many matching inner rows the hash path stays cheaper.
const probeScanSetMax = 24

// newPredInst instantiates the bind-state tree for a compiled kpred.
func newPredInst(k *kpred) predInst {
	p := predInst{k: k}
	if k.probe != nil {
		n := len(k.probe.parts)
		p.probe = &probeInst{
			k:       k.probe,
			vals:    make([]relation.Value, n),
			con:     make([]bool, n),
			condT:   make([]bool, n),
			colvs:   make([][]relation.Value, n),
			rowVals: make([]relation.Value, n),
		}
	}
	for _, sub := range k.or {
		p.or = append(p.or, newPredInst(sub))
	}
	return p
}

// newOrGroupK builds the group instance for conjunct ci consumed at
// the level scanning source s.
func newOrGroupK(pc *planConjunct, ci, s int) *orGroupK {
	bit := srcMask(1) << uint(s)
	g := &orGroupK{conj: ci, nTerms: len(pc.terms)}
	for _, t := range pc.terms {
		tm := orTermK{}
		for _, p := range t.parts {
			if p.srcs&bit == 0 {
				tm.binds = append(tm.binds, p.ex)
				continue
			}
			tm.preds = append(tm.preds, newPredInst(kpFor(p.kp, s)))
		}
		g.terms = append(g.terms, tm)
	}
	return g
}

// enter resets the group's per-entry state. No expression evaluates
// here — terms bind lazily, at the first filter moment a candidate
// row reaches them, mirroring the row path's evaluation order.
func (g *orGroupK) enter() {
	g.pass = false
	for ti := range g.terms {
		g.terms[ti].bound = false
	}
}

// bindTerm evaluates one alternative's invariant parts and kernel
// binds for the current entry. Called only when candidate rows reach
// the alternative.
func (g *orGroupK) bindTerm(en *env, t *Table, tm *orTermK) error {
	tm.bound, tm.live, tm.always = true, true, true
	for _, ex := range tm.binds {
		v, err := ex(en)
		if err != nil {
			return err
		}
		if !v.Truth() {
			tm.live = false
			return nil
		}
	}
	for pi := range tm.preds {
		p := &tm.preds[pi]
		if err := p.bind(en, t); err != nil {
			return err
		}
		if p.state == pNever {
			tm.live = false
			return nil
		}
		if p.state != pAlways {
			tm.always = false
		}
	}
	return nil
}

func (p *predInst) bind(en *env, t *Table) error {
	k := p.k
	switch {
	case k.inv != nil:
		v, err := k.inv(en)
		if err != nil {
			return err
		}
		if v.Truth() {
			p.state = pAlways
		} else {
			p.state = pNever
		}
	case k.simple != nil:
		if err := k.simple.bind(en, &p.b); err != nil {
			return err
		}
		if p.b.empty {
			p.state = pNever
			return nil
		}
		p.state = pNormal
		p.colv = en.column(t, k.simple.col)
	case k.probe != nil:
		return p.probe.bind(en, t, &p.state)
	default: // nested OR
		p.state = pNever
		for i := range p.or {
			sub := &p.or[i]
			if err := sub.bind(en, t); err != nil {
				return err
			}
			if sub.state == pAlways {
				p.state = pAlways
				return nil
			}
			if sub.state == pNormal {
				p.state = pNormal
			}
		}
	}
	return nil
}

func (pb *probeInst) bind(en *env, t *Table, state *uint8) error {
	k := pb.k
	if k.d.idx != nil {
		pb.d, pb.fence = en.td(k.d.t).lookupEq(k.d.t, k.d.idx)
	} else {
		hb, err := k.d.ensureHash(en)
		if err != nil {
			return err
		}
		pb.set = hb.set
	}
	*state = pNormal
	constNull := false
	for i := range k.parts {
		part := &k.parts[i]
		pb.con[i] = false
		switch part.kind {
		case pkInv:
			v, err := part.full(en)
			if err != nil {
				return err
			}
			pb.vals[i], pb.con[i] = v, true
			if v.IsNull() {
				constNull = true
			}
		case pkCol:
			pb.colvs[i] = en.column(t, part.col)
		case pkCase:
			cv, err := part.cond(en)
			if err != nil {
				return err
			}
			pb.condT[i] = cv.Truth()
			if !pb.condT[i] {
				pb.vals[i], pb.con[i] = part.alt, true
				if part.alt.IsNull() {
					constNull = true
				}
			} else if part.resKind == resCol || part.resKind == resTextCoalesce {
				pb.colvs[i] = en.column(t, part.col)
			}
		}
	}
	if constNull {
		// A NULL key part never matches: EXISTS is false for every row,
		// exactly like the closure's NULL-key check.
		if k.neg {
			*state = pAlways
		} else {
			*state = pNever
		}
		return nil
	}
	// Key plan: pre-encode the constant prefix of the encode order and
	// remember which parts remain per-row. Constant parts are non-NULL
	// here (constNull returned above), so the prefix never hides a
	// NULL-key miss.
	pb.pfx = pb.pfx[:0]
	pb.tail = pb.tail[:0]
	pb.pfxVals = pb.pfxVals[:0]
	pb.scanOn = false
	n := len(k.parts)
	inPrefix := true
	for j := 0; j < n; j++ {
		i := j
		if k.d.idx != nil {
			i = k.d.perm[j]
		}
		if inPrefix && pb.con[i] {
			pb.pfx = relation.AppendKey(pb.pfx, pb.vals[i])
			pb.pfx = append(pb.pfx, 0x1f)
			pb.pfxVals = append(pb.pfxVals, pb.vals[i])
			continue
		}
		inPrefix = false
		pb.tail = append(pb.tail, i)
		if pb.con[i] {
			pb.rowVals[i] = pb.vals[i]
		}
	}
	// Small-set scan: an index probe whose single per-row part is the
	// index's last column materializes the entry's matching values once
	// and compares per row instead of hashing per row.
	if d := k.d; d.idx != nil && len(pb.tail) == 1 && len(pb.pfxVals) == n-1 && n >= 2 &&
		k.parts[pb.tail[0]].kind == pkCol {
		td := en.td(d.t)
		pos := td.eqPrefixRange(d.t, d.idx, pb.pfxVals, relation.Value{}, relation.Value{}, false, false)
		if len(pos) <= probeScanSetMax {
			valCol := d.idx.Cols[n-1]
			inner := td.rows
			pb.scanVals = pb.scanVals[:0]
			for _, p := range pos {
				pb.scanVals = append(pb.scanVals, inner[p][valCol])
			}
			pb.scanCol = pb.tail[0]
			pb.scanOn = true
		}
	}
	return nil
}

// filter keeps the rows of sel whose probe result (hit != neg) holds.
// Order is preserved; sel is tightened in place.
func (pb *probeInst) filter(en *env, cs *compiledSelect, src int, rows []relation.Tuple, sel []int) ([]int, error) {
	k := pb.k
	out := sel[:0]
	if pb.scanOn {
		colv := pb.colvs[pb.scanCol]
		neg := k.neg
		for _, ri := range sel {
			v := colv[ri]
			if v.K == relation.KindNull {
				if neg {
					out = append(out, ri) // NULL key never matches
				}
				continue
			}
			hit := false
			for _, w := range pb.scanVals {
				if relation.Identical(v, w) {
					hit = true
					break
				}
			}
			if hit != neg {
				out = append(out, ri)
			}
		}
		return out, nil
	}
	var fr *frame
	if k.needsRow {
		fr = &en.frames[cs.depth]
	}
rowLoop:
	for _, ri := range sel {
		if fr != nil {
			fr.rows[src] = rows[ri]
		}
		key := append(pb.keyBuf[:0], pb.pfx...)
		for _, i := range pb.tail {
			part := &k.parts[i]
			v := pb.rowVals[i] // constants were planted at bind
			if !pb.con[i] {
				switch part.kind {
				case pkCol:
					v = pb.colvs[i][ri]
				case pkCase:
					switch part.resKind {
					case resCol:
						v = pb.colvs[i][ri]
					case resTextCoalesce:
						cv := pb.colvs[i][ri]
						switch cv.K {
						case relation.KindNull:
							v = part.nullLit
						case relation.KindText:
							v = cv
						default:
							v = relation.Text(cv.String())
						}
					default:
						var err error
						if v, err = part.resFull(en); err != nil {
							return nil, err
						}
					}
				default: // pkGeneric
					var err error
					if v, err = part.full(en); err != nil {
						return nil, err
					}
				}
				if v.IsNull() {
					pb.keyBuf = key
					if k.neg {
						out = append(out, ri)
					}
					continue rowLoop
				}
			}
			key = relation.AppendKey(key, v)
			key = append(key, 0x1f)
		}
		pb.keyBuf = key
		var hit bool
		if pb.d != nil {
			// Per-probe locking inside probe(): no structure lock is held
			// across the surrounding closure evaluations.
			hit = len(pb.d.probe(string(key), pb.fence)) > 0
		} else {
			hit = pb.set[string(key)]
		}
		if hit != k.neg {
			out = append(out, ri)
		}
	}
	return out, nil
}

// filter applies one pred to a candidate list, tightening it in place.
func (p *predInst) filter(en *env, cs *compiledSelect, src int, rows []relation.Tuple, sel []int) ([]int, error) {
	k := p.k
	switch {
	case k.simple != nil:
		return k.simple.filter(p.colv, &p.b, sel), nil
	case k.probe != nil:
		return p.probe.filter(en, cs, src, rows, sel)
	}
	// Nested OR: a row survives when any live atom holds for it. Atoms
	// test only the rows no earlier atom matched; the row-index mask
	// restores the original candidate order at the end.
	if len(p.orMask) < len(rows) {
		p.orMask = make([]bool, len(rows))
	}
	rem := append(p.orRem[:0], sel...)
	for i := range p.or {
		sub := &p.or[i]
		if sub.state != pNormal || len(rem) == 0 {
			continue // pAlways was handled at bind; pNever holds nowhere
		}
		cur := append(p.orCur[:0], rem...)
		cur, err := sub.filter(en, cs, src, rows, cur)
		p.orCur = cur[:0]
		if err != nil {
			p.orRem = rem[:0]
			return nil, err
		}
		if len(cur) == 0 {
			continue
		}
		for _, ri := range cur {
			p.orMask[ri] = true
		}
		keep := rem[:0]
		for _, ri := range rem {
			if !p.orMask[ri] {
				keep = append(keep, ri)
			}
		}
		rem = keep
	}
	p.orRem = rem[:0]
	out := sel[:0]
	for _, ri := range sel {
		if p.orMask[ri] {
			out = append(out, ri)
			p.orMask[ri] = false
		}
	}
	return out, nil
}

// groupScratch is the per-level scratch of the group filters.
type groupScratch struct {
	rem, cur []int
	mask     []bool
}

// filter OR-merges the group's live alternatives into the selection
// vector: a row survives when some live alternative's preds all hold.
// Alternatives test only rows no earlier alternative matched, so the
// total per-row work is bounded by the first matching alternative —
// mirroring the row path's short-circuit. Order is preserved.
func (g *orGroupK) filter(en *env, cs *compiledSelect, src int, t *Table, gs *groupScratch, rows []relation.Tuple, sel []int) ([]int, error) {
	rem := append(gs.rem[:0], sel...)
	for ti := range g.terms {
		tm := &g.terms[ti]
		if len(rem) == 0 {
			break // every candidate matched: later alternatives never run
		}
		if !tm.bound {
			if err := g.bindTerm(en, t, tm); err != nil {
				gs.rem = rem[:0]
				return nil, err
			}
		}
		if !tm.live {
			continue
		}
		if tm.always {
			// Holds for every candidate that reaches it: combined with the
			// earlier alternatives' matches, every row of this chunk — and
			// of every later chunk of the entry — passes the group.
			g.pass = true
			if len(rem) == len(sel) {
				gs.rem = rem[:0]
				return sel, nil // mask untouched: nothing to clear
			}
			for _, ri := range rem {
				gs.mask[ri] = true
			}
			rem = rem[:0]
			break
		}
		cur := append(gs.cur[:0], rem...)
		var err error
		for pi := range tm.preds {
			p := &tm.preds[pi]
			if p.state == pAlways {
				continue
			}
			if cur, err = p.filter(en, cs, src, rows, cur); err != nil {
				gs.rem, gs.cur = rem[:0], cur[:0]
				return nil, err
			}
			if len(cur) == 0 {
				break
			}
		}
		gs.cur = cur[:0]
		if len(cur) == 0 {
			continue
		}
		for _, ri := range cur {
			gs.mask[ri] = true
		}
		keep := rem[:0]
		for _, ri := range rem {
			if !gs.mask[ri] {
				keep = append(keep, ri)
			}
		}
		rem = keep
	}
	gs.rem = rem[:0]
	out := sel[:0]
	for _, ri := range sel {
		if gs.mask[ri] {
			out = append(out, ri)
			gs.mask[ri] = false
		}
	}
	return out, nil
}

// --- batch-aware projection ---
//
// The pipeline's project stage. The Qmv macro emits, per surviving
// (tuple, pattern) pair, one '@'-blanking CASE per attribute per side:
//
//	CASE WHEN c.A_L > 0 THEN COALESCE(TOTEXT(t.A), '@NULL@') ELSE '@' END
//
// Every CASE condition (and c.CID itself) reads only the pattern site
// c, bound in an outer level over ten-odd pattern tuples, while the
// surviving data rows stream underneath. projSpec classifies each
// output expression once at compile time — pattern-invariant, split
// CASE, or general — and the emit path then re-evaluates per row only
// the THEN projections of the few attributes the current pattern
// actually constrains; everything else replays from a per-pattern
// cache keyed on the site row's identity. Semantics are unchanged
// (the same sub-closures run, just not per row); the differential
// oracle pins this, with the nested-loop leg evaluating the plain
// outs closures as the independent reference.

type projMode uint8

const (
	projGeneral projMode = iota
	projInv              // whole output reads only the site: cached per site row
	projCase             // one-armed CASE, site-only condition, literal ELSE
)

type projPart struct {
	mode projMode
	cond compiledExpr
	res  compiledExpr
	alt  relation.Value
	// resCols are the current-scope columns the THEN arm reads — the
	// raw inputs of this output when its condition holds. Feeds the
	// DISTINCT pre-dedup key (preKeyOK).
	resCols []binding
}

// projSpec is the compiled projection plan of one select.
type projSpec struct {
	site  binding
	parts []projPart
	// preKeyOK gates the raw-value DISTINCT pre-filter: every output is
	// site-invariant or a split CASE whose THEN arm reads a known set
	// of current-scope columns (resCols), so for a fixed site row the
	// output row is a pure function of the raw values in the *active*
	// parts' columns (condition-false parts collapse to their literal).
	// Two emits with the same site row and identical active raw values
	// therefore produce byte-identical output rows, and the second is
	// skipped before evaluating or hashing a single output.
	preKeyOK bool
}

// projScratch is the per-env, per-select projection cache.
type projScratch struct {
	patRow   relation.Tuple // site row the cache was computed for
	condBits uint64         // bit i: part i's CASE condition held
	invVals  []relation.Value
	// siteSeq distinguishes site rows in the raw pre-dedup key: it
	// bumps on every site-row refresh, so raw keys never collide across
	// pattern tuples (a revisited site row gets a fresh sequence, which
	// only costs pre-filter hits, never correctness — the exact
	// output-key dedup still runs behind the pre-filter). The seen-set
	// itself lives in exec, scoped to one execution: a correlated
	// subquery re-executing in the same env must not suppress rows its
	// previous execution emitted.
	siteSeq uint64
	rawBuf  []byte
}

// buildProjSpec classifies the output expressions. astOuts aligns with
// cs.outs (nil for star-expanded columns, which stay general). Returns
// nil when no output would benefit.
func (c *compiler) buildProjSpec(astOuts []Expr) *projSpec {
	if len(astOuts) == 0 || len(astOuts) > 64 {
		return nil
	}
	depth := len(c.scopes) - 1
	sp := &projSpec{parts: make([]projPart, len(astOuts))}
	sc := &siteClassifier{c: c, innerDepth: depth + 1}
	// Fix the site from the split-CASE conditions first — the detection
	// macros' '@'-blanking CASEs read the pattern table, which is the
	// site worth caching — choosing the site *most* conditions agree on
	// rather than the first one seen: without this, a leading output
	// that happens to read the fast-changing scan source would latch
	// the site, every pattern-side CASE would fail adoption, and the
	// cache would silently refresh per emitted row. Whether the
	// optimization fires must not depend on column order.
	type siteTally struct {
		site binding
		n    int
	}
	var tallies []siteTally
	for _, e := range astOuts {
		cse, ok := cacheableCase(e)
		if !ok {
			continue
		}
		site, ok := c.singleSite(cse.Whens[0].Cond, depth+1)
		if !ok {
			continue
		}
		found := false
		for i := range tallies {
			if tallies[i].site == site {
				tallies[i].n++
				found = true
				break
			}
		}
		if !found {
			tallies = append(tallies, siteTally{site: site, n: 1})
		}
	}
	best := -1
	for i := range tallies {
		if best < 0 || tallies[i].n > tallies[best].n {
			best = i
		}
	}
	if best >= 0 {
		sc.site, sc.hasSite = tallies[best].site, true
	}
	useful := false
	sp.preKeyOK = true
	resCols := func(e Expr) ([]binding, bool) {
		if exprHasSubquery(e) {
			return nil, false
		}
		var cols []binding
		ok := true
		if err := c.walkBindings(e, func(b binding) {
			if b.depth != depth {
				ok = false // outer reads vary across re-executions
				return
			}
			cols = append(cols, b)
		}); err != nil || !ok {
			return nil, false
		}
		return cols, true
	}
	for i, e := range astOuts {
		if e == nil {
			sp.preKeyOK = false // star expansion stays general
			continue
		}
		if sc.adopt(e) {
			sp.parts[i].mode = projInv
			useful = true
			continue
		}
		cond, res, alt, ok, err := sc.splitCase(e)
		if err != nil || !ok {
			sp.preKeyOK = false // general outputs defeat the raw pre-key
			continue            // an uncompilable half just stays general
		}
		cse, _ := cacheableCase(e)
		cols, colsOK := resCols(cse.Whens[0].Result)
		if !colsOK {
			sp.preKeyOK = false
		}
		sp.parts[i] = projPart{mode: projCase, cond: cond, res: res, alt: alt, resCols: cols}
		useful = true
	}
	if !useful || !sc.hasSite {
		return nil
	}
	sp.site = sc.site
	// A single-source select whose site is its own scanned source can
	// never hit the cache: the site row changes on every emit, so the
	// spec would only add refresh overhead per row. The cache is for
	// join shapes where an outer (pattern) source drives many emits.
	if sp.site.depth == depth && len(c.scopes[depth].sources) == 1 {
		return nil
	}
	return sp
}

// scratch returns the env's projection cache for cs.
func (sp *projSpec) scratch(en *env, cs *compiledSelect) *projScratch {
	ps := en.projs[cs]
	if ps == nil {
		if en.projs == nil {
			en.projs = make(map[*compiledSelect]*projScratch)
		}
		ps = &projScratch{invVals: make([]relation.Value, len(sp.parts))}
		en.projs[cs] = ps
	}
	return ps
}

// refreshSite recomputes the per-site-row cache when the site row has
// changed since the previous emit: invariant outputs re-evaluate, CASE
// conditions re-test, and the raw pre-dedup sequence advances so keys
// from different site rows can never collide.
func (sp *projSpec) refreshSite(en *env, cs *compiledSelect, ps *projScratch) error {
	row := en.frames[sp.site.depth].rows[sp.site.src]
	if ps.patRow != nil && len(row) > 0 && &ps.patRow[0] == &row[0] {
		return nil
	}
	ps.patRow = nil // a mid-refresh error must not leave stale state
	ps.condBits = 0
	ps.siteSeq++
	for i := range sp.parts {
		p := &sp.parts[i]
		switch p.mode {
		case projInv:
			v, err := cs.outs[i](en)
			if err != nil {
				return err
			}
			ps.invVals[i] = v
		case projCase:
			cv, err := p.cond(en)
			if err != nil {
				return err
			}
			if cv.Truth() {
				ps.condBits |= 1 << uint(i)
			}
		}
	}
	if len(row) > 0 {
		ps.patRow = row
	}
	return nil
}

// preDedup reports whether the current emit's output row is provably
// identical to one already emitted in this execution: same site row,
// same raw values in every column the outputs read. Sound because the
// outputs are pure functions of exactly those inputs (preKeyOK); the
// exact output-key dedup still runs behind this filter, so a false
// negative only costs one full evaluation, never a duplicate row. seen
// is owned by the caller and must be scoped to one execution.
func (sp *projSpec) preDedup(en *env, cs *compiledSelect, ps *projScratch, seen map[string]bool) (bool, error) {
	if err := sp.refreshSite(en, cs, ps); err != nil {
		return false, err
	}
	buf := ps.rawBuf[:0]
	seq := ps.siteSeq
	buf = append(buf, byte(seq), byte(seq>>8), byte(seq>>16), byte(seq>>24),
		byte(seq>>32), byte(seq>>40), byte(seq>>48), byte(seq>>56))
	fr := en.frames[cs.depth]
	for i := range sp.parts {
		p := &sp.parts[i]
		// Only *active* parts read their columns: a condition-false CASE
		// collapses to its literal and depends on no row value, so the
		// blanked attributes stay out of the key — this is what keeps
		// the raw key a few columns wide per pattern tuple.
		if p.mode != projCase || ps.condBits&(1<<uint(i)) == 0 {
			continue
		}
		for _, b := range p.resCols {
			buf = relation.AppendKey(buf, fr.rows[b.src][b.col])
			buf = append(buf, 0x1f)
		}
	}
	ps.rawBuf = buf
	if seen[string(buf)] {
		return true, nil
	}
	seen[string(buf)] = true
	return false, nil
}

// evalOuts evaluates the output row into dst, replaying the
// site-invariant parts from the cache when the site row is unchanged
// since the previous emit.
func (sp *projSpec) evalOuts(en *env, cs *compiledSelect, ps *projScratch, dst relation.Tuple) error {
	if err := sp.refreshSite(en, cs, ps); err != nil {
		return err
	}
	for i := range sp.parts {
		p := &sp.parts[i]
		switch p.mode {
		case projInv:
			dst[i] = ps.invVals[i]
		case projCase:
			if ps.condBits&(1<<uint(i)) != 0 {
				v, err := p.res(en)
				if err != nil {
					return err
				}
				dst[i] = v
			} else {
				dst[i] = p.alt
			}
		default:
			v, err := cs.outs[i](en)
			if err != nil {
				return err
			}
			dst[i] = v
		}
	}
	return nil
}
