package sqldb

import (
	"ecfd/internal/relation"
)

// Batched (vector-at-a-time) execution.
//
// The planner's join levels normally evaluate every scheduled
// predicate as a compiled closure, once per candidate row. For the
// detection workload that per-row dispatch is pure overhead on the
// *simple* predicates — column-vs-constant/parameter compares
// (`t.RID >= ?`, `t.MV = 0`), IN-set probes, flag tests — whose
// right-hand sides never change while a level iterates. This file
// adds the second compilation target: such predicates lower to batch
// kernels that run over the table's cached column vectors
// (Table.column) and tighten a selection vector chunk-by-chunk, with
// no closure call per row. Anything else — OR groups, subquery
// probes, cross-column arithmetic — stays on the compiledExpr path,
// so semantics never change; the kernels are an exact, not a
// conservative, evaluation of the conjuncts they consume (verified by
// the three-way differential oracle).
//
// A kernel evaluates its invariant inputs once per level *entry*
// (bind), then filters fixed-size batches of candidate row positions
// (filter). NULL semantics collapse the same way the closure path
// does at filter level: a NULL comparison result keeps the row out.

// batchChunk is the selection-vector batch size: small enough that a
// chunk of positions stays cache-resident, large enough to amortize
// the per-chunk bookkeeping.
const batchChunk = 1024

// DisableBatchKernels forces every predicate back onto the per-row
// closure path. It exists for the differential property tests and the
// ablation benchmark; production code must leave it false. Consulted
// when schedules are built (per execution), not at compile time.
var DisableBatchKernels = false

// kernOp enumerates the kernel predicate shapes.
type kernOp uint8

const (
	kernEQ kernOp = iota
	kernNE
	kernLT
	kernLE
	kernGT
	kernGE
	kernIsNull  // neg: IS NOT NULL
	kernIn      // neg: NOT IN; items are literals/params only
	kernBetween // neg: NOT BETWEEN
)

// kernelPred is one compiled batch kernel: a simple predicate over one
// column of the level's source. rhs / lo / hi / items read anything
// *except* that source (outer levels, outer scopes, parameters,
// constants), so they are loop-invariant for the level and bind once
// per entry.
type kernelPred struct {
	col    int
	op     kernOp
	neg    bool
	rhs    compiledExpr   // compare ops
	lo, hi compiledExpr   // kernBetween
	items  []compiledExpr // kernIn
}

// kernelCand records that a plan part can run as a kernel when source
// src is the part's scheduled level.
type kernelCand struct {
	src int
	k   *kernelPred
}

// kernBind is the per-level-entry bound state of one kernel.
type kernBind struct {
	// empty short-circuits the whole level: a NULL bound means the
	// predicate holds for no row (col OP NULL is never true), exactly
	// like the closure returning NULL for every row.
	empty   bool
	w       relation.Value
	wInt    bool // w is integer-like: the compare loop takes the int path
	lo, hi  relation.Value
	set     map[string]bool  // kernIn, >= inListHashThreshold items
	vals    []relation.Value // kernIn, shorter lists: Equal-scan values
	keyBuf  []byte           // kernIn set lookups: reused key scratch
	hasNull bool
	// setBuilt: the IN item state is built once per execution, not per
	// level entry — the items are literals/params, fixed for the
	// statement (the bind state lives on the per-env planState).
	setBuilt bool
}

// bind evaluates the kernel's invariant inputs for one level entry.
func (k *kernelPred) bind(en *env, b *kernBind) error {
	b.empty = false
	switch k.op {
	case kernIsNull:
		return nil
	case kernBetween:
		lo, err := k.lo(en)
		if err != nil {
			return err
		}
		hi, err := k.hi(en)
		if err != nil {
			return err
		}
		if lo.IsNull() || hi.IsNull() {
			b.empty = true
			return nil
		}
		b.lo, b.hi = lo, hi
		return nil
	case kernIn:
		if b.setBuilt {
			return nil
		}
		// Mirror the closure path's per-size strategy exactly: short
		// lists are Equal-scanned, long lists use the Key()-hashed set.
		// The strategies agree (Equal and Key() are both exact across
		// numeric kinds), but mirroring keeps batch and row execution
		// equivalent by construction.
		if len(k.items) >= inListHashThreshold {
			b.set = make(map[string]bool, len(k.items))
			var err error
			if b.hasNull, err = buildInSet(en, k.items, b.set); err != nil {
				return err
			}
		} else {
			b.vals = b.vals[:0]
			for _, it := range k.items {
				w, err := it(en)
				if err != nil {
					return err
				}
				if w.IsNull() {
					b.hasNull = true
					continue
				}
				b.vals = append(b.vals, w)
			}
		}
		b.setBuilt = true
		return nil
	default:
		w, err := k.rhs(en)
		if err != nil {
			return err
		}
		if w.IsNull() {
			b.empty = true
			return nil
		}
		b.w = w
		b.wInt = w.K == relation.KindInt || w.K == relation.KindBool
		return nil
	}
}

// filter tightens the selection vector in place: sel holds candidate
// row positions, colv the level source's cached column vector, and the
// surviving positions are returned as a prefix of sel's storage. The
// relative order of positions is preserved, so kernel filtering
// composes with range-pruned and order-served scans.
func (k *kernelPred) filter(colv []relation.Value, b *kernBind, sel []int) []int {
	out := sel[:0]
	switch k.op {
	case kernIsNull:
		for _, ri := range sel {
			if (colv[ri].K == relation.KindNull) != k.neg {
				out = append(out, ri)
			}
		}
	case kernIn:
		for _, ri := range sel {
			v := colv[ri]
			if v.K == relation.KindNull {
				continue // NULL IN (...) is NULL: row out either way
			}
			match := false
			if b.set != nil {
				b.keyBuf = relation.AppendKey(b.keyBuf[:0], v)
				match = b.set[string(b.keyBuf)]
			} else {
				for _, w := range b.vals {
					if relation.Equal(v, w) {
						match = true
						break
					}
				}
			}
			switch {
			case match:
				if !k.neg {
					out = append(out, ri)
				}
			case b.hasNull:
				// no match but a NULL item: NULL, row out either way
			default:
				if k.neg {
					out = append(out, ri)
				}
			}
		}
	case kernBetween:
		for _, ri := range sel {
			v := colv[ri]
			if v.K == relation.KindNull {
				continue
			}
			in := relation.Compare(v, b.lo) >= 0 && relation.Compare(v, b.hi) <= 0
			if in != k.neg {
				out = append(out, ri)
			}
		}
	case kernEQ, kernNE:
		want := k.op == kernEQ
		for _, ri := range sel {
			v := colv[ri]
			if v.K == relation.KindNull {
				continue
			}
			var eq bool
			if b.wInt && (v.K == relation.KindInt || v.K == relation.KindBool) {
				eq = v.I == b.w.I
			} else {
				eq = relation.Equal(v, b.w)
			}
			if eq == want {
				out = append(out, ri)
			}
		}
	default: // kernLT, kernLE, kernGT, kernGE
		for _, ri := range sel {
			v := colv[ri]
			if v.K == relation.KindNull {
				continue
			}
			var res bool
			if b.wInt && (v.K == relation.KindInt || v.K == relation.KindBool) {
				switch k.op {
				case kernLT:
					res = v.I < b.w.I
				case kernLE:
					res = v.I <= b.w.I
				case kernGT:
					res = v.I > b.w.I
				case kernGE:
					res = v.I >= b.w.I
				}
			} else {
				c := relation.Compare(v, b.w)
				switch k.op {
				case kernLT:
					res = c < 0
				case kernLE:
					res = c <= 0
				case kernGT:
					res = c > 0
				case kernGE:
					res = c >= 0
				}
			}
			if res {
				out = append(out, ri)
			}
		}
	}
	return out
}

// extractKernels compiles the batch-kernel candidates of one plan-part
// expression, one per source orientation that works: the part must be
// a simple predicate whose tested column belongs to that source (at
// the current depth) and whose remaining inputs never read it. Returns
// nil when the shape does not qualify — the part then stays on the
// closure path, which is always available.
func (c *compiler) extractKernels(e Expr, depth int) []kernelCand {
	var out []kernelCand
	// colOf resolves a ColumnRef at the current depth; invariant checks
	// that an input expression never reads the given source.
	colOf := func(side Expr) (src, col int, ok bool) {
		ref, isRef := side.(*ColumnRef)
		if !isRef {
			return 0, 0, false
		}
		b, err := c.resolve(ref)
		if err != nil || b.depth != depth {
			return 0, 0, false
		}
		return b.src, b.col, true
	}
	invariant := func(src int, exprs ...Expr) bool {
		for _, x := range exprs {
			ok := true
			if err := c.walkBindings(x, func(b binding) {
				if b.depth == depth && b.src == src {
					ok = false
				}
			}); err != nil || !ok {
				return false
			}
		}
		return true
	}
	compileAll := func(exprs ...Expr) ([]compiledExpr, bool) {
		ces := make([]compiledExpr, len(exprs))
		for i, x := range exprs {
			var err error
			if ces[i], err = c.compileExpr(x); err != nil {
				return nil, false
			}
		}
		return ces, true
	}

	switch x := e.(type) {
	case *Binary:
		var op kernOp
		switch x.Op {
		case "=":
			op = kernEQ
		case "<>":
			op = kernNE
		case "<":
			op = kernLT
		case "<=":
			op = kernLE
		case ">":
			op = kernGT
		case ">=":
			op = kernGE
		default:
			return nil
		}
		flip := func(op kernOp) kernOp {
			switch op {
			case kernLT:
				return kernGT
			case kernLE:
				return kernGE
			case kernGT:
				return kernLT
			case kernGE:
				return kernLE
			}
			return op
		}
		try := func(colSide, keySide Expr, o kernOp) {
			src, col, ok := colOf(colSide)
			if !ok || !invariant(src, keySide) {
				return
			}
			ce, ok := compileAll(keySide)
			if !ok {
				return
			}
			out = append(out, kernelCand{src: src, k: &kernelPred{col: col, op: o, rhs: ce[0]}})
		}
		try(x.L, x.R, op)
		try(x.R, x.L, flip(op))
		return out

	case *IsNull:
		src, col, ok := colOf(x.X)
		if !ok {
			return nil
		}
		return []kernelCand{{src: src, k: &kernelPred{col: col, op: kernIsNull, neg: x.Neg}}}

	case *InList:
		src, col, ok := colOf(x.X)
		if !ok {
			return nil
		}
		for _, it := range x.List {
			switch it.(type) {
			case *Literal, *Param:
			default:
				return nil // mirror the closure's "simple list" shape only
			}
		}
		items, ok := compileAll(x.List...)
		if !ok {
			return nil
		}
		return []kernelCand{{src: src, k: &kernelPred{col: col, op: kernIn, neg: x.Neg, items: items}}}

	case *Between:
		src, col, ok := colOf(x.X)
		if !ok || !invariant(src, x.Lo, x.Hi) {
			return nil
		}
		ce, ok := compileAll(x.Lo, x.Hi)
		if !ok {
			return nil
		}
		return []kernelCand{{src: src, k: &kernelPred{col: col, op: kernBetween, neg: x.Neg, lo: ce[0], hi: ce[1]}}}
	}
	return nil
}

// kernFor picks the candidate matching a level's source.
func kernFor(cands []kernelCand, src int) *kernelPred {
	for i := range cands {
		if cands[i].src == src {
			return cands[i].k
		}
	}
	return nil
}

// --- batch-aware projection ---
//
// The pipeline's project stage. The Qmv macro emits, per surviving
// (tuple, pattern) pair, one '@'-blanking CASE per attribute per side:
//
//	CASE WHEN c.A_L > 0 THEN COALESCE(TOTEXT(t.A), '@NULL@') ELSE '@' END
//
// Every CASE condition (and c.CID itself) reads only the pattern site
// c, bound in an outer level over ten-odd pattern tuples, while the
// surviving data rows stream underneath. projSpec classifies each
// output expression once at compile time — pattern-invariant, split
// CASE, or general — and the emit path then re-evaluates per row only
// the THEN projections of the few attributes the current pattern
// actually constrains; everything else replays from a per-pattern
// cache keyed on the site row's identity. Semantics are unchanged
// (the same sub-closures run, just not per row); the differential
// oracle pins this, with the nested-loop leg evaluating the plain
// outs closures as the independent reference.

type projMode uint8

const (
	projGeneral projMode = iota
	projInv              // whole output reads only the site: cached per site row
	projCase             // one-armed CASE, site-only condition, literal ELSE
)

type projPart struct {
	mode projMode
	cond compiledExpr
	res  compiledExpr
	alt  relation.Value
}

// projSpec is the compiled projection plan of one select.
type projSpec struct {
	site  binding
	parts []projPart
}

// projScratch is the per-env, per-select projection cache.
type projScratch struct {
	patRow   relation.Tuple // site row the cache was computed for
	condBits uint64         // bit i: part i's CASE condition held
	invVals  []relation.Value
}

// buildProjSpec classifies the output expressions. astOuts aligns with
// cs.outs (nil for star-expanded columns, which stay general). Returns
// nil when no output would benefit.
func (c *compiler) buildProjSpec(astOuts []Expr) *projSpec {
	if len(astOuts) == 0 || len(astOuts) > 64 {
		return nil
	}
	depth := len(c.scopes) - 1
	sp := &projSpec{parts: make([]projPart, len(astOuts))}
	sc := &siteClassifier{c: c, innerDepth: depth + 1}
	// Fix the site from the split-CASE conditions first — the detection
	// macros' '@'-blanking CASEs read the pattern table, which is the
	// site worth caching — choosing the site *most* conditions agree on
	// rather than the first one seen: without this, a leading output
	// that happens to read the fast-changing scan source would latch
	// the site, every pattern-side CASE would fail adoption, and the
	// cache would silently refresh per emitted row. Whether the
	// optimization fires must not depend on column order.
	type siteTally struct {
		site binding
		n    int
	}
	var tallies []siteTally
	for _, e := range astOuts {
		cse, ok := cacheableCase(e)
		if !ok {
			continue
		}
		site, ok := c.singleSite(cse.Whens[0].Cond, depth+1)
		if !ok {
			continue
		}
		found := false
		for i := range tallies {
			if tallies[i].site == site {
				tallies[i].n++
				found = true
				break
			}
		}
		if !found {
			tallies = append(tallies, siteTally{site: site, n: 1})
		}
	}
	best := -1
	for i := range tallies {
		if best < 0 || tallies[i].n > tallies[best].n {
			best = i
		}
	}
	if best >= 0 {
		sc.site, sc.hasSite = tallies[best].site, true
	}
	useful := false
	for i, e := range astOuts {
		if e == nil {
			continue
		}
		if sc.adopt(e) {
			sp.parts[i].mode = projInv
			useful = true
			continue
		}
		cond, res, alt, ok, err := sc.splitCase(e)
		if err != nil || !ok {
			continue // an uncompilable half just stays general
		}
		sp.parts[i] = projPart{mode: projCase, cond: cond, res: res, alt: alt}
		useful = true
	}
	if !useful || !sc.hasSite {
		return nil
	}
	sp.site = sc.site
	// A single-source select whose site is its own scanned source can
	// never hit the cache: the site row changes on every emit, so the
	// spec would only add refresh overhead per row. The cache is for
	// join shapes where an outer (pattern) source drives many emits.
	if sp.site.depth == depth && len(c.scopes[depth].sources) == 1 {
		return nil
	}
	return sp
}

// scratch returns the env's projection cache for cs.
func (sp *projSpec) scratch(en *env, cs *compiledSelect) *projScratch {
	ps := en.projs[cs]
	if ps == nil {
		if en.projs == nil {
			en.projs = make(map[*compiledSelect]*projScratch)
		}
		ps = &projScratch{invVals: make([]relation.Value, len(sp.parts))}
		en.projs[cs] = ps
	}
	return ps
}

// evalOuts evaluates the output row into dst, replaying the
// site-invariant parts from the cache when the site row is unchanged
// since the previous emit.
func (sp *projSpec) evalOuts(en *env, cs *compiledSelect, ps *projScratch, dst relation.Tuple) error {
	row := en.frames[sp.site.depth].rows[sp.site.src]
	if ps.patRow == nil || len(row) == 0 || &ps.patRow[0] != &row[0] {
		ps.patRow = nil // a mid-refresh error must not leave stale state
		ps.condBits = 0
		for i := range sp.parts {
			p := &sp.parts[i]
			switch p.mode {
			case projInv:
				v, err := cs.outs[i](en)
				if err != nil {
					return err
				}
				ps.invVals[i] = v
			case projCase:
				cv, err := p.cond(en)
				if err != nil {
					return err
				}
				if cv.Truth() {
					ps.condBits |= 1 << uint(i)
				}
			}
		}
		if len(row) > 0 {
			ps.patRow = row
		}
	}
	for i := range sp.parts {
		p := &sp.parts[i]
		switch p.mode {
		case projInv:
			dst[i] = ps.invVals[i]
		case projCase:
			if ps.condBits&(1<<uint(i)) != 0 {
				v, err := p.res(en)
				if err != nil {
					return err
				}
				dst[i] = v
			} else {
				dst[i] = p.alt
			}
		default:
			v, err := cs.outs[i](en)
			if err != nil {
				return err
			}
			dst[i] = v
		}
	}
	return nil
}
