package sqldb

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ecfd/internal/relation"
)

// Tests for the batched execution pipeline: kernel-vs-closure
// differentials over generated predicates, the columnar scan cache's
// incremental maintenance, the compound equality-prefix range probe,
// and the EXPLAIN batch/row surface.

// kernelTable builds a table mixing integer, float, text and NULL
// values — every kind a kernel compare can meet — plus indexes so
// kernels compose with range pruning and probes.
func kernelTable(t *testing.T, rng *rand.Rand, rows int) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE kt (a INTEGER, f REAL, s TEXT, flag INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_kt_a ON kt (a)`)
	for i := 0; i < rows; i++ {
		a := relation.Int(int64(rng.Intn(12)))
		if rng.Intn(9) == 0 {
			a = relation.Null()
		}
		f := relation.Float(float64(rng.Intn(10)) / 2)
		switch rng.Intn(12) {
		case 0:
			f = relation.Null()
		case 1:
			f = relation.Float(math.NaN())
		}
		s := relation.Text(string(rune('a' + rng.Intn(5))))
		if rng.Intn(10) == 0 {
			s = relation.Null()
		}
		mustExec(t, db, `INSERT INTO kt VALUES (?, ?, ?, ?)`,
			a, f, s, relation.Int(int64(rng.Intn(2))))
	}
	return db
}

// TestKernelClosureDifferential generates random simple-predicate
// WHERE clauses — exactly the shapes the kernel compiler targets,
// including NaN and NULL data — and checks the batch, row and
// nested-loop paths agree on every one.
func TestKernelClosureDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	db := kernelTable(t, rng, 120)
	cols := []string{"a", "f", "s", "flag"}
	leaf := func() string {
		col := cols[rng.Intn(len(cols))]
		switch rng.Intn(6) {
		case 0:
			ops := []string{"=", "<>", "<", "<=", ">", ">="}
			if col == "s" {
				return fmt.Sprintf("s %s '%c'", ops[rng.Intn(len(ops))], rune('a'+rng.Intn(5)))
			}
			return fmt.Sprintf("%s %s %d", col, ops[rng.Intn(len(ops))], rng.Intn(10))
		case 1:
			neg := ""
			if rng.Intn(2) == 0 {
				neg = "NOT "
			}
			return fmt.Sprintf("%s IS %sNULL", col, neg)
		case 2:
			neg := ""
			if rng.Intn(2) == 0 {
				neg = "NOT "
			}
			if col == "s" {
				return fmt.Sprintf("s %sIN ('a', 'c', 'e')", neg)
			}
			return fmt.Sprintf("%s %sIN (%d, %d, %d)", col, neg, rng.Intn(10), rng.Intn(10), rng.Intn(10))
		case 3:
			neg := ""
			if rng.Intn(3) == 0 {
				neg = "NOT "
			}
			lo := rng.Intn(8)
			return fmt.Sprintf("%s %sBETWEEN %d AND %d", col, neg, lo, lo+rng.Intn(5))
		case 4:
			// literal OP column: the flipped orientation
			return fmt.Sprintf("%d <= %s", rng.Intn(10), col)
		default:
			return fmt.Sprintf("%s = %d", col, rng.Intn(10))
		}
	}
	for trial := 0; trial < 120; trial++ {
		var conjs []string
		for k := 1 + rng.Intn(3); k > 0; k-- {
			conjs = append(conjs, leaf())
		}
		q := "SELECT a, f, s, flag FROM kt WHERE " + strings.Join(conjs, " AND ")
		batch, row, nested := runThreeWays(t, db, q, false)
		if batch != row || row != nested {
			t.Fatalf("trial %d: divergence on %q:\nbatch  %q\nrow    %q\nnested %q",
				trial, q, batch, row, nested)
		}
	}
}

// TestKernelParamDifferential covers parameterized kernel bounds — the
// parallel detector's RID-slice shape — including NULL parameters,
// which must empty the scan exactly like the closure path does.
func TestKernelParamDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	db := kernelTable(t, rng, 80)
	run := func(q string, params ...relation.Value) (string, string) {
		t.Helper()
		DisableBatchKernels = false
		b, err := db.Query(q, params...)
		if err != nil {
			t.Fatalf("batch %q: %v", q, err)
		}
		DisableBatchKernels = true
		r, err := db.Query(q, params...)
		DisableBatchKernels = false
		if err != nil {
			t.Fatalf("row %q: %v", q, err)
		}
		return canonical(b), canonical(r)
	}
	for trial := 0; trial < 30; trial++ {
		lo := relation.Value(relation.Int(int64(rng.Intn(8))))
		hi := relation.Value(relation.Int(int64(rng.Intn(8)) + 4))
		if trial%7 == 0 {
			lo = relation.Null()
		}
		b, r := run(`SELECT a, flag FROM kt WHERE a >= ? AND a <= ? AND flag = 0`, lo, hi)
		if b != r {
			t.Fatalf("trial %d: param slice diverges: %q vs %q", trial, b, r)
		}
	}
}

// TestExplainBatchMode pins the EXPLAIN surface: levels with consumed
// kernels report batch mode, everything else reports row mode, and
// flipping DisableBatchKernels flips the marker.
func TestExplainBatchMode(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE data (rid INTEGER, city TEXT, sv INTEGER, mv INTEGER)`)
	mustExec(t, db, `CREATE TABLE enc (cid INTEGER, city_l INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_data_rid ON data (rid)`)
	for i := 0; i < 80; i++ {
		mustExec(t, db, `INSERT INTO data VALUES (?, ?, 0, 0)`,
			relation.Int(int64(i)), relation.Text(string(rune('A'+i%4))))
	}
	mustExec(t, db, `INSERT INTO enc VALUES (1, 1), (2, 0)`)

	// RID-slice scan: the inclusive bounds are exactly implied by the
	// range prune and their filters elide; only the flag test remains as
	// a kernel. (`mv <> 1` rather than `mv = 0` — an equality would be
	// served by the const-eq kernel instead.)
	plan, err := db.Explain(`SELECT rid FROM data WHERE rid >= ? AND rid <= ? AND mv <> 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "range scan data via idx_data_rid on rid") ||
		!strings.Contains(plan, "[batch: 1 kernel filter(s)]") ||
		!strings.Contains(plan, "2 filter(s) elided: implied by range") {
		t.Fatalf("expected a batched range scan with elided bounds:\n%s", plan)
	}

	// A constant-equality conjunct is served by the const-eq kernel —
	// not by a whole-table hash build — when the level is entered once;
	// the slice bounds still elide into the range prune.
	plan, err = db.Explain(`SELECT rid FROM data WHERE rid >= ? AND rid <= ? AND mv = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "hash join") ||
		!strings.Contains(plan, "[batch: 1 kernel filter(s), 1 via const-eq kernel]") ||
		!strings.Contains(plan, "range scan data via idx_data_rid") {
		t.Fatalf("expected a const-eq kernel over the pruned range scan:\n%s", plan)
	}

	// A join whose data side carries kernelizable conjuncts: the OR
	// group spanning both sources is claimed whole by the data level
	// (its pattern-side guard binds per entry), so the pattern side
	// keeps no predicate work at all — it is a pure join driver with no
	// evaluation-mode marker.
	plan, err = db.Explain(`SELECT d.rid FROM enc c, data d WHERE d.rid >= ? AND d.mv <> 1 AND (c.city_l <> 1 OR d.city = 'A')`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "[batch: 1 kernel filter(s) + or-group(2 terms)]") {
		t.Fatalf("expected the data side in batch mode with the claimed OR group:\n%s", plan)
	}
	if !strings.Contains(plan, "scan c (2 rows)\n") || strings.Contains(plan, "scan c (2 rows) [row]") {
		t.Fatalf("expected the pattern side as a marker-free pure driver:\n%s", plan)
	}

	// Kernels off: everything with predicate work reports row mode.
	DisableBatchKernels = true
	plan, err = db.Explain(`SELECT rid FROM data WHERE rid >= ? AND rid <= ? AND mv <> 1`)
	DisableBatchKernels = false
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "batch:") || !strings.Contains(plan, "[row]") {
		t.Fatalf("expected row mode with kernels disabled:\n%s", plan)
	}
}

// TestColumnCacheMaintenance hammers a table with random DML and
// verifies after every step that built column vectors exactly mirror
// the row store without being fully rebuilt.
func TestColumnCacheMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	db := NewDB()
	mustExec(t, db, `CREATE TABLE cc (k INTEGER, s TEXT, w INTEGER)`)
	for i := 0; i < 30; i++ {
		mustExec(t, db, `INSERT INTO cc VALUES (?, ?, ?)`,
			relation.Int(int64(rng.Intn(9))), relation.Text(string(rune('a'+rng.Intn(4)))), relation.Int(int64(i)))
	}
	// Build two of the three vectors through batched scans.
	mustQuery(t, db, `SELECT w FROM cc WHERE k >= 2 AND k <= 6`)
	mustQuery(t, db, `SELECT k FROM cc WHERE s = 'a' AND w < 1000`)

	tbl, _ := db.cur.Load().tables["cc"]
	verify := func(step int) {
		t.Helper()
		td := db.cur.Load().tds[tbl]
		td.cols.mu.RLock()
		defer td.cols.mu.RUnlock()
		for ci, vec := range td.cols.vecs {
			if vec == nil {
				continue
			}
			// Vectors extend lazily to each reader's fence, so a built
			// vector may trail the row count — but never exceed it, and
			// the covered prefix must mirror storage exactly.
			if len(vec) > len(td.rows) {
				t.Fatalf("step %d: column %d has %d entries for %d rows", step, ci, len(vec), len(td.rows))
			}
			for ri := range vec {
				if !relation.Identical(vec[ri], td.rows[ri][ci]) {
					t.Fatalf("step %d: column %d row %d: cached %s, stored %s",
						step, ci, ri, vec[ri], td.rows[ri][ci])
				}
			}
		}
	}
	verify(-1)
	builds := tbl.colRebuilds.Load()
	if builds == 0 {
		t.Fatal("no column vector was built before the DML storm")
	}

	for step := 0; step < 80; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			mustExec(t, db, `INSERT INTO cc VALUES (?, ?, ?)`,
				relation.Int(int64(rng.Intn(9))), relation.Text(string(rune('a'+rng.Intn(4)))), relation.Int(int64(1000+step)))
		case 4, 5:
			mustExec(t, db, `UPDATE cc SET k = ? WHERE w % 5 = ?`,
				relation.Int(int64(rng.Intn(9))), relation.Int(int64(rng.Intn(5))))
		case 6, 7:
			mustExec(t, db, `DELETE FROM cc WHERE k = ? AND w % 3 = ?`,
				relation.Int(int64(rng.Intn(9))), relation.Int(int64(rng.Intn(3))))
		default:
			if rng.Intn(5) == 0 {
				mustExec(t, db, `TRUNCATE TABLE cc`)
			}
		}
		// Re-extend the vectors to the new fence through the batch path,
		// then check the epoch's cache mirrors its rows.
		mustQuery(t, db, `SELECT w FROM cc WHERE k >= 0 AND k <= 8`)
		verify(step)
	}
	if tbl.colRebuilds.Load() != builds {
		t.Fatalf("DML forced a full column rebuild (%d → %d)", builds, tbl.colRebuilds.Load())
	}
}

// TestEqPrefixRangeProbe pins the compound access path: a table with
// only a (p, q) index answers p-equality through the prefix probe and
// p-equality + q-range through the compound-bound search, both visible
// in EXPLAIN and both agreeing with the closure paths.
func TestEqPrefixRangeProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	db := NewDB()
	mustExec(t, db, `CREATE TABLE cp (p INTEGER, q INTEGER, w INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_cp_pq ON cp (p, q)`)
	for i := 0; i < 120; i++ {
		q := relation.Int(int64(rng.Intn(10)))
		if rng.Intn(10) == 0 {
			q = relation.Null()
		}
		mustExec(t, db, `INSERT INTO cp VALUES (?, ?, ?)`,
			relation.Int(int64(rng.Intn(7))), q, relation.Int(int64(i)))
	}

	plan, err := db.Explain(`SELECT w FROM cp WHERE p = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index prefix probe cp via idx_cp_pq (1 eq col(s))") {
		t.Fatalf("expected a prefix probe:\n%s", plan)
	}
	plan, err = db.Explain(`SELECT w FROM cp WHERE p = 3 AND q > 4`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index prefix range probe cp via idx_cp_pq (1 eq col(s) + range on q)") {
		t.Fatalf("expected a compound-bound probe:\n%s", plan)
	}

	for _, q := range []string{
		`SELECT w FROM cp WHERE p = 3`,
		`SELECT w FROM cp WHERE p = 3 AND q > 4`,
		`SELECT w FROM cp WHERE p = 2 AND q >= 1 AND q <= 6`,
		`SELECT w FROM cp WHERE p = 5 AND q BETWEEN 2 AND 7`,
		`SELECT w FROM cp WHERE p = 99 AND q < 3`,
		`SELECT w FROM cp WHERE p = 1 AND q > NULL`,
	} {
		batch, row, nested := runThreeWays(t, db, q, false)
		if batch != row || row != nested {
			t.Fatalf("compound probe diverges on %q:\nbatch  %q\nrow    %q\nnested %q", q, batch, row, nested)
		}
	}

	// Correlated form: the equality key and the range bound both come
	// from the driving side, re-evaluated per entry.
	mustExec(t, db, `CREATE TABLE drv (pp INTEGER, lo INTEGER)`)
	mustExec(t, db, `INSERT INTO drv VALUES (2, 3), (4, 0), (6, 8)`)
	q := `SELECT d.pp, c.w FROM drv d, cp c WHERE c.p = d.pp AND c.q >= d.lo`
	batch, row, nested := runThreeWays(t, db, q, false)
	if batch != row || row != nested {
		t.Fatalf("correlated compound probe diverges:\nbatch  %q\nrow    %q\nnested %q", batch, row, nested)
	}
}

// TestBigIntExactness is the review-found regression: int64 values
// beyond 2^53 collapse under float widening, so Compare must order
// integer pairs exactly — otherwise the equality-by-search prefix
// probe returns rows `=` rejects, and ordering kernels (exact int
// fast path) diverge from the generic Compare closures.
func TestBigIntExactness(t *testing.T) {
	const big = int64(1) << 53 // 9007199254740992; big+1 rounds to the same float64
	db := NewDB()
	mustExec(t, db, `CREATE TABLE z (p INTEGER, q INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_z_pq ON z (p, q)`)
	mustExec(t, db, `INSERT INTO z VALUES (?, 1)`, relation.Int(big))
	mustExec(t, db, `INSERT INTO z VALUES (?, 2)`, relation.Int(big+1))
	mustExec(t, db, `CREATE TABLE k (v INTEGER)`)
	mustExec(t, db, `INSERT INTO k VALUES (?)`, relation.Int(big))

	// Prefix probe: equality answered by binary search must match only
	// the exact key.
	q := `SELECT z.q FROM k, z WHERE z.p = k.v`
	batch, row, nested := runThreeWays(t, db, q, false)
	if batch != row || row != nested {
		t.Fatalf("prefix probe big-int diverges:\nbatch  %q\nrow    %q\nnested %q", batch, row, nested)
	}
	if batch != "1" {
		t.Fatalf("prefix probe big-int: got %q, want exactly row q=1", batch)
	}

	// Ordering kernel vs generic closure: column-vs-column compare with
	// adjacent big ints.
	q = `SELECT z.q FROM k, z WHERE z.p > k.v`
	batch, row, nested = runThreeWays(t, db, q, false)
	if batch != row || row != nested {
		t.Fatalf("ordering kernel big-int diverges:\nbatch  %q\nrow    %q\nnested %q", batch, row, nested)
	}
	if batch != "2" {
		t.Fatalf("big-int > compare: got %q, want exactly row q=2", batch)
	}

	// IN lists across the hash threshold with a mixed float/big-int
	// pair: comparison is exact across kinds, so Float(2^53) never
	// matches the Int(2^53+1) item — for both list sizes (Equal scan
	// and Key()-hashed set) and all three execution paths.
	mustExec(t, db, `CREATE TABLE f (x REAL)`)
	mustExec(t, db, `INSERT INTO f VALUES (?)`, relation.Float(float64(big)))
	short := `SELECT x FROM f WHERE x IN (9007199254740993, 1)`
	long := `SELECT x FROM f WHERE x IN (9007199254740993, 1, 2, 3, 4, 5, 6, 7)`
	for _, q := range []string{short, long} {
		b, r, n := runThreeWays(t, db, q, false)
		if b != r || r != n {
			t.Fatalf("mixed-kind IN diverges on %q:\nbatch  %q\nrow    %q\nnested %q", q, b, r, n)
		}
		if b != "" {
			t.Fatalf("mixed-kind IN on %q: got %q, want no match (exact comparison)", q, b)
		}
	}

	// Transitivity of the order itself: big ints and floats mixed in
	// one indexed column must sort exactly, not through float widening.
	mustExec(t, db, `CREATE TABLE mi (y INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_mi_y ON mi (y)`)
	mustExec(t, db, `INSERT INTO mi VALUES (?), (?)`, relation.Int(big), relation.Int(big+1))
	if got := flat(mustQuery(t, db, `SELECT y FROM mi ORDER BY y`)); got != "9007199254740992;9007199254740993" {
		t.Fatalf("big-int ORDER BY: %q", got)
	}
	if relation.Compare(relation.Int(big+1), relation.Float(float64(big))) <= 0 {
		t.Fatal("Compare(2^53+1, Float(2^53)) must be +1 (exact mixed comparison)")
	}
}

// TestUpdatePlannedRowSelection: an UPDATE whose WHERE is kernel-shaped
// but has no EXISTS (so the semi-join path does not apply) selects its
// rows through the planned, batched scan — and the result matches the
// closure filter.
func TestUpdatePlannedRowSelection(t *testing.T) {
	setup := func() *DB {
		db := NewDB()
		mustExec(t, db, `CREATE TABLE ud (rid INTEGER, v INTEGER, flag INTEGER)`)
		mustExec(t, db, `CREATE INDEX idx_ud_rid ON ud (rid)`)
		for i := 0; i < 60; i++ {
			mustExec(t, db, `INSERT INTO ud VALUES (?, ?, 0)`,
				relation.Int(int64(i)), relation.Int(int64(i%7)))
		}
		return db
	}
	q := `UPDATE ud SET flag = 1 WHERE rid >= 10 AND rid <= 40 AND v <> 3`

	dbA := setup()
	plan, err := dbA.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "planned row selection") || !strings.Contains(plan, "batch:") {
		t.Fatalf("expected a batched planned row selection:\n%s", plan)
	}
	mustExec(t, dbA, q)

	dbB := setup()
	DisablePlanner = true
	mustExec(t, dbB, q)
	DisablePlanner = false

	a := canonical(mustQuery(t, dbA, `SELECT rid, v, flag FROM ud`))
	b := canonical(mustQuery(t, dbB, `SELECT rid, v, flag FROM ud`))
	if a != b {
		t.Fatalf("planned UPDATE selection diverges:\n%s\nvs\n%s", a, b)
	}
}

// TestInListNaNConsistency is the review-found regression: the three
// IN implementations (short-list Equal scan, long-list Key()-set,
// batch kernel) must agree when NaN appears as an item, as the probed
// value, or both — under SQL equality NaN matches nothing.
func TestInListNaNConsistency(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE ni (x REAL, w INTEGER)`)
	mustExec(t, db, `INSERT INTO ni VALUES (?, 1)`, relation.Float(math.NaN()))
	mustExec(t, db, `INSERT INTO ni VALUES (1.5, 2), (3.0, 3)`)
	nan := relation.Float(math.NaN())

	run := func(q string, params ...relation.Value) [3]string {
		t.Helper()
		var out [3]string
		DisablePlanner, DisableBatchKernels = false, false
		r, err := db.Query(q, params...)
		if err != nil {
			t.Fatalf("batch %q: %v", q, err)
		}
		out[0] = canonical(r)
		DisableBatchKernels = true
		r, err = db.Query(q, params...)
		DisableBatchKernels = false
		if err != nil {
			t.Fatalf("row %q: %v", q, err)
		}
		out[1] = canonical(r)
		DisablePlanner = true
		r, err = db.Query(q, params...)
		DisablePlanner = false
		if err != nil {
			t.Fatalf("nested %q: %v", q, err)
		}
		out[2] = canonical(r)
		return out
	}
	cases := []struct {
		q      string
		params []relation.Value
	}{
		// short list (Equal scan) with a NaN parameter
		{`SELECT w FROM ni WHERE x IN (?, ?)`, []relation.Value{nan, relation.Float(1.5)}},
		{`SELECT w FROM ni WHERE x NOT IN (?, ?)`, []relation.Value{nan, relation.Float(1.5)}},
		// long list (>= 8 items: Key()-set) with a NaN parameter
		{`SELECT w FROM ni WHERE x IN (?, 10, 11, 12, 13, 14, 15, ?)`,
			[]relation.Value{nan, relation.Float(1.5)}},
		{`SELECT w FROM ni WHERE x NOT IN (?, 10, 11, 12, 13, 14, 15, ?)`,
			[]relation.Value{nan, relation.Float(1.5)}},
	}
	for _, tc := range cases {
		got := run(tc.q, tc.params...)
		if got[0] != got[1] || got[1] != got[2] {
			t.Fatalf("IN NaN diverges on %q: batch %q, row %q, nested %q", tc.q, got[0], got[1], got[2])
		}
		// And NaN must never have matched: the NaN data row appears only
		// in NOT IN results, the NaN item selects nothing.
		if strings.Contains(tc.q, "NOT IN") {
			if got[0] != "1;3" {
				t.Fatalf("NOT IN with NaN on %q: got %q, want rows 1 and 3", tc.q, got[0])
			}
		} else if got[0] != "2" {
			t.Fatalf("IN with NaN on %q: got %q, want row 2 only", tc.q, got[0])
		}
	}
}

// TestKernelNaNDifferential: NaN-bearing float data through the
// kernel compare paths must match the closure semantics exactly (the
// engine's ordered compares follow relation.Compare, not IEEE).
func TestKernelNaNDifferential(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE nf (x REAL, w INTEGER)`)
	mustExec(t, db, `INSERT INTO nf VALUES (?, 1)`, relation.Float(math.NaN()))
	mustExec(t, db, `INSERT INTO nf VALUES (1.5, 2), (3.0, 3)`)
	for _, q := range []string{
		`SELECT w FROM nf WHERE x > 2`,
		`SELECT w FROM nf WHERE x <= 2`,
		`SELECT w FROM nf WHERE x = 1.5 AND w <> 0`,
		`SELECT w FROM nf WHERE x BETWEEN 0 AND 9`,
	} {
		batch, row, nested := runThreeWays(t, db, q, false)
		if batch != row || row != nested {
			t.Fatalf("NaN kernel diverges on %q:\nbatch  %q\nrow    %q\nnested %q", q, batch, row, nested)
		}
	}
}

// TestOrKernelDifferential fuzzes OR groups — 2 to 5 alternatives
// mixing simple predicates, correlated [NOT] EXISTS probe terms,
// AND-pairs and nested disjunctions over NULL/NaN-bearing columns —
// and checks the group-kernel path against the per-row closure path
// and the forced nested loop, mirroring TestKernelClosureDifferential
// for the shapes the OR-group kernels claim.
func TestOrKernelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	db := kernelTable(t, rng, 120)
	// Probe target with an exact-cover (g, v) index, NULLs included, so
	// both the index-probe and the hash-build kernel paths exercise.
	mustExec(t, db, `CREATE TABLE ps (g INTEGER, v INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_ps_gv ON ps (g, v)`)
	for i := 0; i < 40; i++ {
		v := relation.Int(int64(rng.Intn(12)))
		if rng.Intn(10) == 0 {
			v = relation.Null()
		}
		mustExec(t, db, `INSERT INTO ps VALUES (?, ?)`, relation.Int(int64(rng.Intn(3))), v)
	}
	cols := []string{"a", "f", "s", "flag"}
	leaf := func() string {
		col := cols[rng.Intn(len(cols))]
		switch rng.Intn(5) {
		case 0:
			ops := []string{"=", "<>", "<", "<=", ">", ">="}
			if col == "s" {
				return fmt.Sprintf("s %s '%c'", ops[rng.Intn(len(ops))], rune('a'+rng.Intn(5)))
			}
			return fmt.Sprintf("%s %s %d", col, ops[rng.Intn(len(ops))], rng.Intn(10))
		case 1:
			neg := ""
			if rng.Intn(2) == 0 {
				neg = "NOT "
			}
			return fmt.Sprintf("%s IS %sNULL", col, neg)
		case 2:
			if col == "s" {
				return "s IN ('a', 'd')"
			}
			return fmt.Sprintf("%s IN (%d, %d)", col, rng.Intn(10), rng.Intn(10))
		default:
			lo := rng.Intn(8)
			return fmt.Sprintf("%s BETWEEN %d AND %d", col, lo, lo+rng.Intn(5))
		}
	}
	probe := func() string {
		neg := ""
		if rng.Intn(2) == 0 {
			neg = "NOT "
		}
		// Mix the index-covered two-key probe with a filtered (hash
		// build) single-key probe; both correlate on a kt column.
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("%sEXISTS (SELECT 1 FROM ps WHERE ps.g = %d AND ps.v = kt.a)", neg, rng.Intn(3))
		}
		return fmt.Sprintf("%sEXISTS (SELECT 1 FROM ps WHERE ps.v = kt.%s AND ps.g < 2)", neg, cols[rng.Intn(2)*3]) // a or flag
	}
	term := func() string {
		switch rng.Intn(5) {
		case 0:
			return probe()
		case 1:
			return fmt.Sprintf("(%s AND %s)", leaf(), probe())
		case 2:
			return fmt.Sprintf("(%s AND (%s OR %s))", leaf(), leaf(), probe())
		case 3:
			return fmt.Sprintf("(%s AND %s)", leaf(), leaf())
		default:
			return leaf()
		}
	}
	for trial := 0; trial < 120; trial++ {
		var terms []string
		for k := 2 + rng.Intn(4); k > 0; k-- {
			terms = append(terms, term())
		}
		var conjs []string
		conjs = append(conjs, "("+strings.Join(terms, " OR ")+")")
		if rng.Intn(2) == 0 {
			conjs = append(conjs, fmt.Sprintf("(%s OR %s)", leaf(), probe()))
		}
		if rng.Intn(3) == 0 {
			conjs = append(conjs, leaf())
		}
		q := "SELECT a, f, s, flag FROM kt WHERE " + strings.Join(conjs, " AND ")
		batch, row, nested := runThreeWays(t, db, q, false)
		if batch != row || row != nested {
			t.Fatalf("trial %d: OR-kernel divergence on %q:\nbatch  %q\nrow    %q\nnested %q",
				trial, q, batch, row, nested)
		}
	}
}

// TestOrKernelPlanClaims pins that the detection-shaped OR group is
// actually claimed by the group kernel (not silently row-pathed), and
// that a group with a non-kernelizable alternative falls back whole.
func TestOrKernelPlanClaims(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	db := kernelTable(t, rng, 80)
	mustExec(t, db, `CREATE TABLE pat (code INTEGER, val INTEGER)`)
	mustExec(t, db, `INSERT INTO pat VALUES (1, 3), (0, 5)`)

	plan, err := db.Explain(`SELECT kt.a FROM pat p, kt WHERE (p.code <> 1 OR EXISTS (SELECT 1 FROM pat q WHERE q.val = kt.a))`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "or-group(2 terms)") {
		t.Fatalf("detection-shaped OR group not claimed by the group kernel:\n%s", plan)
	}

	// A loop-invariant scalar subquery RHS kernelizes (it binds once per
	// level entry instead of evaluating per row)...
	plan, err = db.Explain(`SELECT kt.a FROM kt WHERE (kt.flag = 1 OR kt.a = (SELECT MAX(val) FROM pat))`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "or-group(2 terms)") {
		t.Fatalf("invariant-scalar-sub OR group should kernelize:\n%s", plan)
	}
	// ...but a cross-column arithmetic alternative cannot: the whole
	// group must fall back to the per-row path.
	plan, err = db.Explain(`SELECT kt.a FROM kt WHERE (kt.flag = 1 OR kt.a + kt.flag = 5)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "or-group(") || !strings.Contains(plan, "[row]") {
		t.Fatalf("non-kernelizable OR group did not fall back whole:\n%s", plan)
	}
}

// TestOrKernelLazyBindErrors is the review-found regression: the row
// path short-circuits OR alternatives, so an erroring expression in a
// later alternative must not surface when every row satisfies an
// earlier one — group kernels bind alternatives lazily, only when a
// candidate row actually reaches them.
func TestOrKernelLazyBindErrors(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE c (z INTEGER)`)
	mustExec(t, db, `CREATE TABLE tt (a INTEGER)`)
	mustExec(t, db, `INSERT INTO c VALUES (0)`)
	mustExec(t, db, `INSERT INTO tt VALUES (1), (1)`)

	// Every row satisfies the first alternative, so 10 / c.z (division
	// by zero) must never evaluate — on either path.
	q := `SELECT tt.a FROM c, tt WHERE (tt.a = 1 OR tt.a < 10 / c.z)`
	batch, row, nested := runThreeWays(t, db, q, false)
	if batch != row || row != nested {
		t.Fatalf("lazy-bind divergence:\nbatch  %q\nrow    %q\nnested %q", batch, row, nested)
	}
	if batch != "1;1" {
		t.Fatalf("got %q, want both rows", batch)
	}

	// When rows do reach the second alternative, both paths must report
	// the same error.
	q = `SELECT tt.a FROM c, tt WHERE (tt.a = 2 OR tt.a < 10 / c.z)`
	if _, err := db.Query(q); err == nil {
		t.Fatal("batch path must surface the division error when rows reach the alternative")
	}
	DisableBatchKernels = true
	_, err := db.Query(q)
	DisableBatchKernels = false
	if err == nil {
		t.Fatal("row path must surface the division error when rows reach the alternative")
	}
}

// TestDistinctPreDedupCorrelated is the review-found regression: the
// raw pre-dedup set must be scoped to one execution — a correlated
// subquery re-executing within one statement emits its rows afresh
// each time, even when the cached site row's pointer is unchanged.
func TestDistinctPreDedupCorrelated(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE o (id INTEGER, b INTEGER, v TEXT)`)
	mustExec(t, db, `CREATE TABLE tt (a TEXT, b INTEGER)`)
	mustExec(t, db, `CREATE TABLE p (x INTEGER)`)
	mustExec(t, db, `INSERT INTO o VALUES (1, 1, 'v'), (2, 1, 'v')`)
	mustExec(t, db, `INSERT INTO tt VALUES ('v', 1)`)
	mustExec(t, db, `INSERT INTO p VALUES (1)`)

	q := `SELECT o.id FROM o WHERE o.v IN (SELECT DISTINCT CASE WHEN p.x = 1 THEN tt.a ELSE '@' END FROM tt, p WHERE tt.b = o.b)`
	batch, row, nested := runThreeWays(t, db, q, false)
	if batch != row || row != nested {
		t.Fatalf("pre-dedup divergence:\nbatch  %q\nrow    %q\nnested %q", batch, row, nested)
	}
	if batch != "1;2" {
		t.Fatalf("got %q, want both outer rows", batch)
	}
}
