package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ecfd/internal/relation"
)

// DB is an in-memory SQL database organised as a chain of immutable
// epochs (multi-version concurrency control with copy-on-write tables).
//
// Readers never lock: a query pins the current epoch with an atomic
// load and runs its whole plan — scans, index probes, column-cache
// kernels — against that frozen epoch. Writers serialize on db.mu,
// build the next epoch off to the side (sharing every table, row
// array and index structure the statement did not touch) and publish
// it with a single pointer swap. A reader therefore observes exactly
// the catalog and row state of its pinned epoch for its whole
// execution, and a bulk writer streaming updates never stalls it.
//
// Statement-level isolation follows directly, as it did under the old
// reader/writer lock — but without the old failure mode where one
// multi-millisecond exclusive section blocked every concurrent SELECT.
type DB struct {
	// mu serializes writers (DML, DDL, transaction control, WAL
	// checkpointing). Readers never take it.
	mu sync.Mutex
	// cur is the published epoch: the snapshot new readers pin. Swapped
	// by publish() under db.mu; loaded by readers without any lock.
	cur atomic.Pointer[epoch]
	// curW is the writer's head epoch. It equals cur.Load() except in
	// the window where a group-committing statement has built its epoch
	// but the WAL fsync that makes it durable has not completed yet —
	// readers must not observe state the log might still lose.
	// Guarded by db.mu.
	curW     *epoch
	activeTx *Tx
	// stmtCache maps statement text → *Prepared. It has its own mutex
	// so concurrent readers can hit the cache without touching the
	// writer lock (an LRU get mutates recency order).
	stmtMu    sync.Mutex
	stmtCache *lruCache
	// wal, when non-nil, is the durability layer: every mutation
	// appends a commit unit before the epoch it describes can publish
	// (see wal.go). Databases from NewDB stay purely in-memory; Open
	// attaches a WAL.
	wal *walState
	// roErr, once set, freezes the database read-only: the WAL could
	// not record a mutation (write or fsync failure), so rather than
	// let memory and log diverge, every later DML/DDL returns
	// ErrReadOnly wrapping this cause while queries keep serving.
	// Written and read under mu.
	roErr error
	// recov records what recovery did at Open time.
	recov RecoveryStats

	// epochMu guards the retired-epoch registry: superseded epochs
	// still pinned by in-flight readers, with their approximate byte
	// footprint. An epoch leaves the registry (and becomes garbage in
	// the ordinary Go sense) when its last reader unpins it.
	epochMu      sync.Mutex
	retired      map[*epoch]int64
	retiredBytes int64
}

// epoch is one immutable version of the whole database: the table
// catalog plus, per table, the row store and cache structures current
// when the epoch was published. Nothing in an epoch is ever mutated
// after publication — writers fork a new epoch instead — except the
// lazily *extended* index/column structures, which grow monotonically
// under their own locks and are fenced by each reader's row count
// (see tableData).
type epoch struct {
	// seq increases by one per epoch; publish() uses it to never move
	// the published pointer backwards.
	seq uint64
	// ddlVersion counts catalog changes (CREATE/DROP TABLE, CREATE
	// INDEX, LoadRelation of a new table). Compiled plans record the
	// version they were built against and recompile on mismatch.
	// Starts at 1 so a zero version always means "never compiled".
	ddlVersion uint64
	// tables maps lower-cased name → handle. Shared wholesale between
	// epochs; DDL clones it.
	tables map[string]*Table
	// tds maps table handle → that table's data in this epoch.
	tds map[*Table]*tableData
	// pins counts readers currently executing against this epoch.
	pins atomic.Int64
}

// table looks a table up in this epoch's catalog.
func (ep *epoch) table(name string) (*Table, error) {
	t, ok := ep.tables[lowerName(name)]
	if !ok {
		return nil, fmt.Errorf("sql: no table %s", name)
	}
	return t, nil
}

// bytes approximates the epoch's heap footprint for the GC registry:
// one Tuple header plus Width values per row, 24 bytes per slot. Row
// arrays shared with other epochs are deliberately double-counted —
// the registry answers "how much could this pinned epoch be holding
// live", not an exact accounting.
func (ep *epoch) bytes() int64 {
	var b int64
	for t, td := range ep.tds {
		b += int64(len(td.rows)) * int64(t.Schema.Width()+1) * 24
	}
	return b
}

// Table is a stable handle for one base table: the name, the schema,
// and the maintenance counters the regression tests read. Everything
// versioned — rows, indexes' built structures, the columnar cache —
// lives in the per-epoch tableData, so the handle itself never
// changes and compiled plans can bind it across epochs.
type Table struct {
	Name   string
	Schema *relation.Schema
	// colRebuilds counts full (non-incremental) column-vector builds
	// across all epochs of this table.
	colRebuilds atomic.Int64
}

// Index is a stable handle for one secondary index: its column list
// in declared order, plus the rebuild counter. The built structures
// live in per-epoch indexData.
type Index struct {
	Name string
	Cols []int // column positions, in declared order
	// rebuilds counts full (non-incremental) builds of either index
	// structure across all epochs.
	rebuilds atomic.Int64
}

// tableData is one epoch's view of a table: the frozen row array plus
// the lazily built index and column structures valid for it. The row
// array is immutable (appends by a *newer* epoch may fill its spare
// capacity beyond len, which readers of this epoch never touch).
//
// Index/column structures are shared between epochs whenever the
// epoch transition preserves them (an append extends, a non-indexed
// UPDATE doesn't disturb an index, ...). Sharing is sound because the
// structures are *fenced*: every access passes the reader's row count
// f = len(td.rows), and the structure answers for rows [0, f) only,
// extending itself under its own lock if it has not covered f yet.
// All epochs sharing a structure agree on the cell values it indexes
// over their common prefix, so extensions commute.
type tableData struct {
	rows []relation.Tuple
	// version distinguishes row states for per-env hash-build caching.
	version uint64
	cols    *colData
	indexes []indexSlot
}

type indexSlot struct {
	idx  *Index
	data *indexData
}

// indexData holds one epoch-lineage's built structures for an index:
//
//   - m, a hash map from encoded key to ascending row positions,
//     covering rows [0, mCover) — answers equality probes in O(1);
//   - sorted, row positions ordered by the index-column values (ties
//     by position). sorted[:f] is a valid in-order view of rows
//     [0, f) for every fence f with sBase <= f <= len(sorted); a
//     non-monotone extension has to rebuild the array and raises
//     sBase to its own fence, sending older pinned readers to a
//     transient sort.
//
// Both grow monotonically under mu; they are never shrunk or
// reordered in place, so a header snapshotted under RLock stays
// readable after release (growth only appends, and bucket arrays are
// replaced wholesale when forked).
type indexData struct {
	mu     sync.RWMutex
	m      map[string][]int
	mCover int
	sorted []int
	sBase  int
}

// colData is one epoch-lineage's columnar scan cache:
// vecs[ci][ri] == rows[ri][ci] for every built column, covering rows
// [0, len(vec)). Batch kernels scan these flat vectors instead of
// chasing one Tuple pointer per row. nil vec ⇔ never built; a vector
// is extended lazily to each reader's fence under mu.
type colData struct {
	mu   sync.RWMutex
	vecs [][]relation.Value
}

func lowerName(s string) string { return strings.ToLower(s) }

// NewDB returns an empty database at epoch 1.
func NewDB() *DB {
	db := &DB{retired: make(map[*epoch]int64)}
	ep := &epoch{
		seq:        1,
		ddlVersion: 1,
		tables:     make(map[string]*Table),
		tds:        make(map[*Table]*tableData),
	}
	db.cur.Store(ep)
	db.curW = ep
	return db
}

// --- epoch pinning, publication and retirement ---

// pin returns the current published epoch with its pin count
// incremented. The increment-then-revalidate loop makes the count
// exact with respect to retire(): if the published pointer moved
// between the load and the increment, the pin is released and the
// loop retries on the new epoch.
func (db *DB) pin() *epoch {
	for {
		ep := db.cur.Load()
		ep.pins.Add(1)
		if db.cur.Load() == ep {
			return ep
		}
		db.unpin(ep)
	}
}

// unpin releases a pinned epoch; the last unpin of a superseded epoch
// removes it from the retired registry.
func (db *DB) unpin(ep *epoch) {
	if ep.pins.Add(-1) == 0 && db.cur.Load() != ep {
		db.epochMu.Lock()
		if b, ok := db.retired[ep]; ok {
			db.retiredBytes -= b
			delete(db.retired, ep)
		}
		db.epochMu.Unlock()
	}
}

// publish makes ne the epoch new readers pin. The CAS loop only moves
// the pointer forward (seq-monotone): group commit may resolve epochs
// out of order with respect to a racing checkpoint absorb, and an
// older epoch must never overwrite a newer one. Callers hold db.mu.
func (db *DB) publish(ne *epoch) {
	for {
		old := db.cur.Load()
		if old.seq >= ne.seq {
			return
		}
		if db.cur.CompareAndSwap(old, ne) {
			db.retire(old)
			return
		}
	}
}

// retire registers a superseded epoch still pinned by readers. The
// post-registration pins re-check closes the race with a reader whose
// final unpin ran before the epoch entered the registry.
func (db *DB) retire(old *epoch) {
	if old.pins.Load() == 0 {
		return
	}
	db.epochMu.Lock()
	b := old.bytes()
	db.retired[old] = b
	db.retiredBytes += b
	if old.pins.Load() == 0 {
		db.retiredBytes -= b
		delete(db.retired, old)
	}
	db.epochMu.Unlock()
}

// forkEpochW clones the writer head into a new epoch: next sequence
// number, shared catalog, shallow-copied table-data map. Callers hold
// db.mu and install the fork with installEpoch after editing it.
func (db *DB) forkEpochW() *epoch {
	old := db.curW
	ne := &epoch{
		seq:        old.seq + 1,
		ddlVersion: old.ddlVersion,
		tables:     old.tables,
		tds:        make(map[*Table]*tableData, len(old.tds)+1),
	}
	for t, td := range old.tds {
		ne.tds[t] = td
	}
	return ne
}

// installTD forks the writer head with one table's data replaced.
func (db *DB) installTD(t *Table, ntd *tableData) {
	ne := db.forkEpochW()
	ne.tds[t] = ntd
	db.installEpoch(ne)
}

// installEpoch advances the writer head and publishes it — unless the
// statement's WAL commit unit joined a group commit whose fsync is
// still pending, in which case publication is deferred to the group
// leader (readers must not observe state the log might lose).
// Callers hold db.mu.
func (db *DB) installEpoch(ne *epoch) {
	db.curW = ne
	if db.wal != nil && db.wal.curPending != nil {
		return
	}
	db.publish(ne)
}

// Snap is a pinned read snapshot: every query routed through it
// observes one epoch, regardless of concurrent commits. Close
// releases the pin (idempotent, single goroutine).
type Snap struct {
	db *DB
	ep *epoch
}

// PinSnapshot pins the current epoch until Close.
func (db *DB) PinSnapshot() *Snap {
	return &Snap{db: db, ep: db.pin()}
}

// Close releases the snapshot's epoch pin.
func (s *Snap) Close() {
	if s.ep != nil {
		s.db.unpin(s.ep)
		s.ep = nil
	}
}

// Stats is the operational counters surface: where the epoch chain
// is, how much superseded state pinned readers are holding live, and
// what recovery did at Open time.
type Stats struct {
	// EpochSeq is the published epoch's sequence number.
	EpochSeq uint64
	// LiveEpochs counts the published epoch plus retired epochs still
	// pinned by readers.
	LiveEpochs int
	// RetiredEpochs counts superseded epochs kept alive by pins.
	RetiredEpochs int
	// RetiredBytes approximates the heap those retired epochs hold.
	RetiredBytes int64
	// Recovery reports what WAL recovery did when the database opened.
	Recovery RecoveryStats
}

// Stats returns current epoch/GC counters and the recovery report.
func (db *DB) Stats() Stats {
	ep := db.cur.Load()
	db.epochMu.Lock()
	r := len(db.retired)
	b := db.retiredBytes
	db.epochMu.Unlock()
	return Stats{
		EpochSeq:      ep.seq,
		LiveEpochs:    1 + r,
		RetiredEpochs: r,
		RetiredBytes:  b,
		Recovery:      db.recov,
	}
}

// --- DDL ---

// CreateTable registers a new table.
func (db *DB) CreateTable(name string, cols []ColumnDef, ifNotExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writable(); err != nil {
		return err
	}
	key := lowerName(name)
	if _, ok := db.curW.tables[key]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("sql: table %s already exists", name)
	}
	attrs := make([]relation.Attribute, len(cols))
	for i, c := range cols {
		attrs[i] = relation.Attribute{Name: c.Name, Kind: c.Kind}
	}
	schema, err := relation.NewSchema(name, attrs...)
	if err != nil {
		return fmt.Errorf("sql: %w", err)
	}
	if err := db.logCreateTable(schema); err != nil {
		return err
	}
	t := &Table{Name: name, Schema: schema}
	ne := db.forkEpochW()
	ne.tables = cloneTables(ne.tables)
	ne.tables[key] = t
	ne.tds[t] = newTableData(nil)
	ne.ddlVersion++
	db.installEpoch(ne)
	return nil
}

// DropTable removes a table.
func (db *DB) DropTable(name string, ifExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writable(); err != nil {
		return err
	}
	key := lowerName(name)
	t, ok := db.curW.tables[key]
	if !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("sql: no table %s", name)
	}
	if err := db.logDropTable(name); err != nil {
		return err
	}
	ne := db.forkEpochW()
	ne.tables = cloneTables(ne.tables)
	delete(ne.tables, key)
	delete(ne.tds, t)
	ne.ddlVersion++
	db.installEpoch(ne)
	return nil
}

func cloneTables(m map[string]*Table) map[string]*Table {
	out := make(map[string]*Table, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

func newTableData(rows []relation.Tuple) *tableData {
	return &tableData{rows: rows, cols: &colData{}}
}

// table looks a table up in the writer head; callers hold db.mu.
// Reader paths resolve through their pinned epoch instead.
func (db *DB) table(name string) (*Table, error) {
	return db.curW.table(name)
}

// TableNames returns the catalog's table names, sorted. Lock-free:
// it reads the published epoch's immutable catalog.
func (db *DB) TableNames() []string {
	ep := db.cur.Load()
	out := make([]string, 0, len(ep.tables))
	for _, t := range ep.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// TableLen returns the row count of a table in the published epoch.
func (db *DB) TableLen(name string) (int, error) {
	ep := db.cur.Load()
	t, err := ep.table(name)
	if err != nil {
		return 0, err
	}
	return len(ep.tds[t].rows), nil
}

// LoadRelation bulk-creates (or replaces the contents of) a table from
// an in-memory relation. It is the fast path the benchmarks use to
// install generated datasets without going through INSERT parsing.
func (db *DB) LoadRelation(r *relation.Relation) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writable(); err != nil {
		return err
	}
	if db.activeTx != nil {
		// Wholesale replacement has no per-row undo delta, so it cannot
		// participate in rollback (or be logged consistently with one).
		return fmt.Errorf("sql: LoadRelation inside a transaction is not supported")
	}
	key := lowerName(r.Schema.Name)
	rows := make([]relation.Tuple, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = row.Clone()
	}
	t, ok := db.curW.tables[key]
	if !ok {
		if err := db.logLoadRelation(r); err != nil {
			return err
		}
		t = &Table{Name: r.Schema.Name, Schema: r.Schema}
		ne := db.forkEpochW()
		ne.tables = cloneTables(ne.tables)
		ne.tables[key] = t
		ne.tds[t] = newTableData(rows)
		ne.ddlVersion++
		db.installEpoch(ne)
		return nil
	}
	if t.Schema.Width() != r.Schema.Width() {
		return fmt.Errorf("sql: LoadRelation: width mismatch for %s", r.Schema.Name)
	}
	if err := db.logLoadRelation(r); err != nil {
		return err
	}
	db.applyWholesale(t, rows)
	return nil
}

// Snapshot copies a table back out as a relation, from the published
// epoch — lock-free, concurrent writers proceed.
func (db *DB) Snapshot(name string) (*relation.Relation, error) {
	ep := db.cur.Load()
	t, err := ep.table(name)
	if err != nil {
		return nil, err
	}
	rows := ep.tds[t].rows
	out := relation.New(t.Schema)
	out.Rows = make([]relation.Tuple, len(rows))
	for i, row := range rows {
		out.Rows[i] = row.Clone()
	}
	return out, nil
}

// CreateIndex registers a secondary index.
func (db *DB) CreateIndex(name, table string, cols []string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writable(); err != nil {
		return err
	}
	t, err := db.table(table)
	if err != nil {
		return err
	}
	idx := &Index{Name: name}
	for _, c := range cols {
		j := t.Schema.Index(c)
		if j < 0 {
			return fmt.Errorf("sql: no column %s in %s", c, table)
		}
		idx.Cols = append(idx.Cols, j)
	}
	td := db.curW.tds[t]
	for _, sl := range td.indexes {
		if sl.idx.Name == name {
			return fmt.Errorf("sql: index %s already exists on %s", name, table)
		}
	}
	if err := db.logCreateIndex(name, table, cols); err != nil {
		return err
	}
	nidx := make([]indexSlot, len(td.indexes)+1)
	copy(nidx, td.indexes)
	nidx[len(td.indexes)] = indexSlot{idx: idx, data: &indexData{}}
	ntd := &tableData{rows: td.rows, version: td.version, cols: td.cols, indexes: nidx}
	ne := db.forkEpochW()
	ne.tds[t] = ntd
	ne.ddlVersion++
	db.installEpoch(ne)
	return nil
}

// --- copy-on-write epoch transitions (DML) ---
//
// Each transition forks the writer head with one table's data
// replaced, sharing every structure the statement provably did not
// disturb. What the old in-place maintenance hooks (rowsAppended,
// updateBegin/End, rowsDeleted, truncated) did under the write lock
// is now the delta applied while building the fork; readers of older
// epochs keep their frozen view.

// applyAppend installs rows appended to t. The new row array may
// extend the old one's spare capacity in place: cells beyond the old
// length are invisible to older epochs, and every non-append
// transition produces a fresh or capacity-clipped array, so no other
// lineage can ever write those cells. Index and column structures are
// shared wholesale — appends are exactly what their lazy fenced
// extension absorbs.
func (db *DB) applyAppend(t *Table, newRows []relation.Tuple) {
	td := db.curW.tds[t]
	ntd := &tableData{
		rows:    append(td.rows, newRows...),
		version: td.version + 1,
		cols:    td.cols,
		indexes: td.indexes,
	}
	db.installTD(t, ntd)
}

// applyUpdate installs an UPDATE of setCols at row positions pos
// (ascending); vals[i] holds pos[i]'s new values aligned to setCols.
// Changed tuples are cloned and patched — the old epoch's tuples are
// never written. Indexes reading none of the assigned columns share
// their structures (this keeps the detector's SV/MV flag writes from
// ever disturbing the RID index); overlapping indexes fork with the
// changed positions re-keyed. The column cache forks: assigned built
// vectors are cloned and patched, unassigned built vectors are shared
// capacity-clipped so each lineage extends its own copy.
func (db *DB) applyUpdate(t *Table, pos []int, setCols []int, vals [][]relation.Value) {
	td := db.curW.tds[t]
	nrows := make([]relation.Tuple, len(td.rows))
	copy(nrows, td.rows)
	for i, ri := range pos {
		nr := td.rows[ri].Clone()
		for j, c := range setCols {
			nr[c] = vals[i][j]
		}
		nrows[ri] = nr
	}
	ntd := &tableData{
		rows:    nrows,
		version: td.version + 1,
		cols:    td.cols.forkUpdated(pos, setCols, vals),
	}
	if len(td.indexes) > 0 {
		ntd.indexes = make([]indexSlot, len(td.indexes))
		for i, sl := range td.indexes {
			if overlaps(sl.idx.Cols, setCols) {
				ntd.indexes[i] = indexSlot{idx: sl.idx, data: sl.data.forkUpdated(sl.idx, td.rows, nrows, pos)}
			} else {
				ntd.indexes[i] = sl
			}
		}
	}
	db.installTD(t, ntd)
}

// applyDelete installs a DELETE of the rows at positions dels
// (ascending, pre-delete positions). Surviving positions shift down
// by the number of deleted positions below them; neither keys nor
// relative order change, so every built structure forks by one
// filter-and-remap pass.
func (db *DB) applyDelete(t *Table, dels []int) {
	td := db.curW.tds[t]
	nrows := make([]relation.Tuple, 0, len(td.rows)-len(dels))
	di := 0
	for ri, row := range td.rows {
		if di < len(dels) && dels[di] == ri {
			di++
			continue
		}
		nrows = append(nrows, row)
	}
	ntd := &tableData{
		rows:    nrows,
		version: td.version + 1,
		cols:    td.cols.forkDeleted(dels),
	}
	if len(td.indexes) > 0 {
		ntd.indexes = make([]indexSlot, len(td.indexes))
		for i, sl := range td.indexes {
			ntd.indexes[i] = indexSlot{idx: sl.idx, data: sl.data.forkDeleted(dels)}
		}
	}
	db.installTD(t, ntd)
}

// applyTruncate installs an empty row store. Built structures fork to
// built-empty with fresh allocations (an in-place [:0] would alias
// backing arrays across lineages); never-built structures stay lazy
// so an unprobed index keeps costing nothing.
func (db *DB) applyTruncate(t *Table) {
	td := db.curW.tds[t]
	ntd := &tableData{
		version: td.version + 1,
		cols:    td.cols.forkTruncated(),
	}
	if len(td.indexes) > 0 {
		ntd.indexes = make([]indexSlot, len(td.indexes))
		for i, sl := range td.indexes {
			ntd.indexes[i] = indexSlot{idx: sl.idx, data: sl.data.forkTruncated()}
		}
	}
	db.installTD(t, ntd)
}

// applyWholesale installs a full row replacement (LoadRelation over
// an existing table, transaction rollback). No per-row delta exists,
// so every structure forks to never-built and the next probe pays a
// full rebuild — the epoch version of mark-dirty-and-rebuild.
func (db *DB) applyWholesale(t *Table, rows []relation.Tuple) {
	td := db.curW.tds[t]
	ntd := &tableData{rows: rows, version: td.version + 1, cols: &colData{}}
	if len(td.indexes) > 0 {
		ntd.indexes = make([]indexSlot, len(td.indexes))
		for i, sl := range td.indexes {
			ntd.indexes[i] = indexSlot{idx: sl.idx, data: &indexData{}}
		}
	}
	db.installTD(t, ntd)
}

// overlaps reports whether an index column list reads any of cols.
func overlaps(idxCols, cols []int) bool {
	for _, c := range cols {
		for _, ic := range idxCols {
			if c == ic {
				return true
			}
		}
	}
	return false
}

// --- column cache: fenced access and forks ---

// column returns the cached value vector for schema position ci,
// valid for this epoch's rows — built or extended to the fence on
// first use. The returned slice is immutable to the caller.
func (td *tableData) column(t *Table, ci int) []relation.Value {
	d := td.cols
	f := len(td.rows)
	d.mu.RLock()
	if ci < len(d.vecs) {
		if v := d.vecs[ci]; v != nil && len(v) >= f {
			d.mu.RUnlock()
			return v[:f]
		}
	}
	d.mu.RUnlock()
	return d.extend(t, td.rows, ci, f)
}

// extend builds (or grows) column ci's vector to cover fence f using
// this epoch's rows. Epochs sharing a colData agree on all cell
// values over their common prefix, so whichever lineage extends
// first, the result serves both.
func (d *colData) extend(t *Table, rows []relation.Tuple, ci, f int) []relation.Value {
	d.mu.Lock()
	if d.vecs == nil {
		d.vecs = make([][]relation.Value, t.Schema.Width())
	}
	v := d.vecs[ci]
	if v != nil && len(v) >= f {
		d.mu.Unlock()
		return v[:f]
	}
	built := v == nil
	if built {
		v = make([]relation.Value, 0, f)
	}
	for ri := len(v); ri < f; ri++ {
		v = append(v, rows[ri][ci])
	}
	d.vecs[ci] = v
	d.mu.Unlock()
	if built {
		t.colRebuilds.Add(1)
	}
	return v[:f]
}

// forkUpdated forks the cache for an UPDATE: built vectors of
// assigned columns are cloned and patched; built vectors of other
// columns are shared capacity-clipped (each lineage's later appends
// then reallocate instead of racing on spare cells); never-built
// vectors stay never-built.
func (d *colData) forkUpdated(pos []int, setCols []int, vals [][]relation.Value) *colData {
	d.mu.RLock()
	defer d.mu.RUnlock()
	nd := &colData{}
	if d.vecs == nil {
		return nd
	}
	nd.vecs = make([][]relation.Value, len(d.vecs))
	for ci, v := range d.vecs {
		if v == nil {
			continue
		}
		j := -1
		for k, c := range setCols {
			if c == ci {
				j = k
				break
			}
		}
		if j < 0 {
			nd.vecs[ci] = v[:len(v):len(v)]
			continue
		}
		nv := make([]relation.Value, len(v))
		copy(nv, v)
		for i, ri := range pos {
			if ri < len(nv) {
				nv[ri] = vals[i][j]
			}
		}
		nd.vecs[ci] = nv
	}
	return nd
}

// forkDeleted forks the cache for a DELETE: each built vector is
// filtered in one pass; its new length is exactly the compacted cover
// of the positions it described.
func (d *colData) forkDeleted(dels []int) *colData {
	d.mu.RLock()
	defer d.mu.RUnlock()
	nd := &colData{}
	if d.vecs == nil {
		return nd
	}
	nd.vecs = make([][]relation.Value, len(d.vecs))
	for ci, v := range d.vecs {
		if v == nil {
			continue
		}
		keep := make([]relation.Value, 0, len(v))
		di := 0
		for ri := range v {
			if di < len(dels) && dels[di] == ri {
				di++
				continue
			}
			keep = append(keep, v[ri])
		}
		nd.vecs[ci] = keep
	}
	return nd
}

// forkTruncated forks the cache for TRUNCATE: built vectors become
// built-empty with fresh backing, never-built stay never-built.
func (d *colData) forkTruncated() *colData {
	d.mu.RLock()
	defer d.mu.RUnlock()
	nd := &colData{}
	if d.vecs == nil {
		return nd
	}
	nd.vecs = make([][]relation.Value, len(d.vecs))
	for ci, v := range d.vecs {
		if v != nil {
			nd.vecs[ci] = make([]relation.Value, 0)
		}
	}
	return nd
}

// --- index structures: fenced access and forks ---

// indexData returns idx's structures in this epoch, or nil if the
// index does not exist here.
func (td *tableData) indexData(idx *Index) *indexData {
	for _, sl := range td.indexes {
		if sl.idx == idx {
			return sl.data
		}
	}
	return nil
}

// lookupEq ensures the equality map covers this epoch's rows and
// returns the structure plus the fence to probe at. Callers probe
// with d.probe(key, fence) — per probe, never holding the structure
// lock across expression evaluation.
func (td *tableData) lookupEq(t *Table, idx *Index) (*indexData, int) {
	d := td.indexData(idx)
	f := len(td.rows)
	d.mu.RLock()
	ok := d.m != nil && d.mCover >= f
	d.mu.RUnlock()
	if !ok {
		d.extendEq(idx, td.rows, f)
	}
	return d, f
}

// extendEq builds (or grows) the equality map to cover fence f.
func (d *indexData) extendEq(idx *Index, rows []relation.Tuple, f int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.m == nil {
		m := make(map[string][]int, f)
		key := make([]relation.Value, len(idx.Cols))
		for ri := 0; ri < f; ri++ {
			row := rows[ri]
			for i, c := range idx.Cols {
				key[i] = row[c]
			}
			k := relation.KeyOf(key)
			m[k] = append(m[k], ri)
		}
		d.m = m
		d.mCover = f
		idx.rebuilds.Add(1)
		return
	}
	if d.mCover >= f {
		return
	}
	key := make([]relation.Value, len(idx.Cols))
	for ri := d.mCover; ri < f; ri++ {
		row := rows[ri]
		for i, c := range idx.Cols {
			key[i] = row[c]
		}
		k := relation.KeyOf(key)
		d.m[k] = append(d.m[k], ri)
	}
	d.mCover = f
}

// probe returns the ascending row positions matching an encoded key,
// cut to the caller's fence. The bucket header is snapshotted under
// RLock and used after release: bucket growth only appends positions
// >= every older fence at the end, and forks replace bucket arrays
// wholesale, so the snapshotted cells are stable.
func (d *indexData) probe(key string, fence int) []int {
	d.mu.RLock()
	b := d.m[key]
	d.mu.RUnlock()
	if n := len(b); n == 0 || b[n-1] < fence {
		return b
	}
	return b[:sort.SearchInts(b, fence)]
}

// orderedOf returns this epoch's row positions in index order (column
// values ascending, ties by position). The returned slice is
// immutable to the caller.
func (td *tableData) orderedOf(t *Table, idx *Index) []int {
	d := td.indexData(idx)
	f := len(td.rows)
	d.mu.RLock()
	s, base := d.sorted, d.sBase
	d.mu.RUnlock()
	if s != nil && base <= f && len(s) >= f {
		return s[:f]
	}
	return d.extendOrdered(idx, td.rows, f)
}

// extendOrdered builds or grows the in-order positions to fence f.
//
// The append fast path keeps every intermediate fence valid: when the
// appended rows are already in key order position by position, the
// positions are appended verbatim, so sorted[:g] stays a permutation
// of [0, g) for every g up to the new length — this is the detector's
// monotone-RID append. A non-monotone batch forces a merge into a
// fresh array that is only coherent at its own fence, so sBase rises
// and an older pinned reader falls back to a transient sort.
func (d *indexData) extendOrdered(idx *Index, rows []relation.Tuple, f int) []int {
	d.mu.Lock()
	s := d.sorted
	if s != nil && d.sBase <= f && len(s) >= f {
		d.mu.Unlock()
		return s[:f]
	}
	if s == nil {
		ns := make([]int, f)
		for i := range ns {
			ns[i] = i
		}
		sort.Slice(ns, func(a, b int) bool { return lessPosIn(idx.Cols, rows, ns[a], ns[b]) })
		d.sorted, d.sBase = ns, f
		d.mu.Unlock()
		idx.rebuilds.Add(1)
		return ns
	}
	if f < d.sBase {
		d.mu.Unlock()
		// This reader pinned its epoch before a non-monotone merge
		// rebased the shared structure past its fence: sort a private
		// view, uncached (rare — a racing writer reordered keys).
		ns := make([]int, f)
		for i := range ns {
			ns[i] = i
		}
		sort.Slice(ns, func(a, b int) bool { return lessPosIn(idx.Cols, rows, ns[a], ns[b]) })
		return ns
	}
	L := len(s)
	mono := true
	for ri := L; ri < f; ri++ {
		var prev int
		switch {
		case ri > L:
			prev = ri - 1
		case L > 0:
			prev = s[L-1]
		default:
			continue
		}
		if lessPosIn(idx.Cols, rows, ri, prev) {
			mono = false
			break
		}
	}
	if mono {
		for ri := L; ri < f; ri++ {
			s = append(s, ri)
		}
		d.sorted = s
		d.mu.Unlock()
		return s[:f]
	}
	add := make([]int, f-L)
	for i := range add {
		add[i] = L + i
	}
	sort.Slice(add, func(a, b int) bool { return lessPosIn(idx.Cols, rows, add[a], add[b]) })
	out := mergeSortedIn(idx.Cols, rows, s[:L:L], add)
	d.sorted, d.sBase = out, f
	d.mu.Unlock()
	return out
}

// rangeOf returns the positions whose first index column lies between
// lo and hi (each optional), as a subslice of the in-order positions —
// zero-copy, and still sorted, so a range-pruned scan can also serve
// ORDER BY. Bounds are conservative: values comparing equal to a bound
// are included, and exclusivity is left to the retained filter
// predicates, which keeps the pruning semantics-free (NaN bounds,
// mixed numeric kinds and friends all fall out of relation.Compare the
// same way the filters do). skipNullLo additionally excludes the NULL
// rows sorting before every value — required when an upper-bound
// filter was elided with no lower bound present, since the elided
// filter would have rejected NULL (a non-NULL lo excludes them anyway,
// NULLs ranking below every bounded value).
func (td *tableData) rangeOf(t *Table, idx *Index, lo, hi relation.Value, hasLo, hasHi, skipNullLo bool) []int {
	s := td.orderedOf(t, idx)
	rows := td.rows
	c0 := idx.Cols[0]
	from, to := 0, len(s)
	switch {
	case hasLo:
		from = sort.Search(len(s), func(i int) bool {
			return relation.Compare(rows[s[i]][c0], lo) >= 0
		})
	case skipNullLo:
		from = sort.Search(len(s), func(i int) bool {
			return rows[s[i]][c0].K != relation.KindNull
		})
	}
	if hasHi {
		to = sort.Search(len(s), func(i int) bool {
			return relation.Compare(rows[s[i]][c0], hi) > 0
		})
	}
	if to < from {
		to = from
	}
	return s[from:to]
}

// eqPrefixRange returns the positions whose first k index columns
// compare equal to vals (one value per index column, in index order)
// and whose (k+1)-th column lies within lo/hi (each optional), as a
// subslice of the in-order positions — the compound-bound form of
// rangeOf. Equality via Compare == 0 is exact here because callers
// guard NULL and NaN keys (probeRows): for non-NULL, non-NaN operands
// Compare(a, b) == 0 ⇔ Equal(a, b), and NULL/NaN *rows* sort outside
// the equal region. The range bound stays conservative-inclusive like
// rangeOf — exclusivity is the retained filter's job.
func (td *tableData) eqPrefixRange(t *Table, idx *Index, vals []relation.Value, lo, hi relation.Value, hasLo, hasHi bool) []int {
	s := td.orderedOf(t, idx)
	rows := td.rows
	k := len(vals)
	// cmpPrefix ranks a row against the equality prefix.
	cmpPrefix := func(ri int) int {
		row := rows[ri]
		for j := 0; j < k; j++ {
			if c := relation.Compare(row[idx.Cols[j]], vals[j]); c != 0 {
				return c
			}
		}
		return 0
	}
	var next int
	if k < len(idx.Cols) {
		next = idx.Cols[k]
	}
	from := sort.Search(len(s), func(i int) bool {
		c := cmpPrefix(s[i])
		if c != 0 {
			return c > 0
		}
		return !hasLo || relation.Compare(rows[s[i]][next], lo) >= 0
	})
	to := sort.Search(len(s), func(i int) bool {
		c := cmpPrefix(s[i])
		if c != 0 {
			return c > 0
		}
		return hasHi && relation.Compare(rows[s[i]][next], hi) > 0
	})
	if to < from {
		to = from
	}
	return s[from:to]
}

// forkUpdated forks the structures for an UPDATE that assigned this
// index's columns at positions pos: buckets and order entries for the
// covered changed positions are re-keyed against the new rows. Bucket
// arrays touched by the re-keying are always freshly allocated — the
// old lineage keeps reading its snapshotted headers.
func (d *indexData) forkUpdated(idx *Index, oldRows, newRows []relation.Tuple, pos []int) *indexData {
	d.mu.RLock()
	defer d.mu.RUnlock()
	nd := &indexData{}
	if d.m != nil {
		nm := make(map[string][]int, len(d.m))
		for k, b := range d.m {
			nm[k] = b[:len(b):len(b)]
		}
		key := make([]relation.Value, len(idx.Cols))
		for _, ri := range pos {
			if ri >= d.mCover {
				continue
			}
			for i, c := range idx.Cols {
				key[i] = oldRows[ri][c]
			}
			bucketRemove(nm, relation.KeyOf(key), ri)
			for i, c := range idx.Cols {
				key[i] = newRows[ri][c]
			}
			bucketInsert(nm, relation.KeyOf(key), ri)
		}
		nd.m, nd.mCover = nm, d.mCover
	}
	if d.sorted != nil {
		cover := len(d.sorted)
		doomed := make(map[int]bool, len(pos))
		var add []int
		for _, ri := range pos {
			if ri < cover {
				doomed[ri] = true
				add = append(add, ri)
			}
		}
		keep := make([]int, 0, cover)
		for _, ri := range d.sorted {
			if !doomed[ri] {
				keep = append(keep, ri)
			}
		}
		sort.Slice(add, func(a, b int) bool { return lessPosIn(idx.Cols, newRows, add[a], add[b]) })
		nd.sorted = mergeSortedIn(idx.Cols, newRows, keep, add)
		nd.sBase = len(nd.sorted)
	}
	return nd
}

// forkDeleted forks the structures for a DELETE: surviving positions
// are filtered and remapped in one pass per structure — no key
// encoding, no re-sort, no rehash.
func (d *indexData) forkDeleted(dels []int) *indexData {
	d.mu.RLock()
	defer d.mu.RUnlock()
	nd := &indexData{}
	remap := func(ri int) int { return ri - sort.SearchInts(dels, ri) }
	deleted := func(ri int) bool {
		i := sort.SearchInts(dels, ri)
		return i < len(dels) && dels[i] == ri
	}
	if d.m != nil {
		nm := make(map[string][]int, len(d.m))
		for k, b := range d.m {
			var keep []int
			for _, ri := range b {
				if !deleted(ri) {
					keep = append(keep, remap(ri))
				}
			}
			if len(keep) > 0 {
				nm[k] = keep
			}
		}
		nd.m = nm
		nd.mCover = d.mCover - sort.SearchInts(dels, d.mCover)
	}
	if d.sorted != nil {
		keep := make([]int, 0, len(d.sorted))
		for _, ri := range d.sorted {
			if !deleted(ri) {
				keep = append(keep, remap(ri))
			}
		}
		nd.sorted, nd.sBase = keep, len(keep)
	}
	return nd
}

// forkTruncated forks the structures for TRUNCATE: built becomes
// built-empty with fresh allocations, never-built stays never-built.
func (d *indexData) forkTruncated() *indexData {
	d.mu.RLock()
	defer d.mu.RUnlock()
	nd := &indexData{}
	if d.m != nil {
		nd.m = make(map[string][]int)
	}
	if d.sorted != nil {
		nd.sorted = make([]int, 0)
	}
	return nd
}

// bucketRemove deletes one position from a bucket, replacing the
// bucket array (never editing it in place — the source lineage may
// still be reading it).
func bucketRemove(m map[string][]int, k string, ri int) {
	b := m[k]
	at := sort.SearchInts(b, ri)
	if at >= len(b) || b[at] != ri {
		return
	}
	if len(b) == 1 {
		delete(m, k)
		return
	}
	nb := make([]int, 0, len(b)-1)
	nb = append(nb, b[:at]...)
	nb = append(nb, b[at+1:]...)
	m[k] = nb
}

// bucketInsert adds one position to a bucket in ascending order,
// replacing the bucket array.
func bucketInsert(m map[string][]int, k string, ri int) {
	b := m[k]
	at := sort.SearchInts(b, ri)
	nb := make([]int, 0, len(b)+1)
	nb = append(nb, b[:at]...)
	nb = append(nb, ri)
	nb = append(nb, b[at:]...)
	m[k] = nb
}

// lessPosIn orders two row positions by the index-column values, ties
// by position — the sort order of indexData.sorted, evaluated against
// an explicit row array (each epoch passes its own).
func lessPosIn(cols []int, rows []relation.Tuple, a, b int) bool {
	ra, rb := rows[a], rows[b]
	for _, c := range cols {
		if cmp := relation.Compare(ra[c], rb[c]); cmp != 0 {
			return cmp < 0
		}
	}
	return a < b
}

// mergeSortedIn merges two position lists already in lessPosIn order
// into a fresh-or-have-backed result. have must be private to the
// caller (fork code passes freshly built arrays).
func mergeSortedIn(cols []int, rows []relation.Tuple, have, add []int) []int {
	if len(add) == 0 {
		return have
	}
	if len(have) == 0 || lessPosIn(cols, rows, have[len(have)-1], add[0]) {
		return append(have, add...)
	}
	out := make([]int, 0, len(have)+len(add))
	i, j := 0, 0
	for i < len(have) && j < len(add) {
		if lessPosIn(cols, rows, add[j], have[i]) {
			out = append(out, add[j])
			j++
		} else {
			out = append(out, have[i])
			i++
		}
	}
	out = append(out, have[i:]...)
	return append(out, add[j:]...)
}

// --- access-path finders (per-epoch: indexes are catalog state) ---

// findIndex returns an index whose column set is exactly cols (in any
// order), or nil. Callers probe through lookupEq.
func (td *tableData) findIndex(cols []int) *Index {
	want := append([]int(nil), cols...)
	sort.Ints(want)
	for _, sl := range td.indexes {
		have := append([]int(nil), sl.idx.Cols...)
		sort.Ints(have)
		if len(have) != len(want) {
			continue
		}
		same := true
		for i := range have {
			if have[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			return sl.idx
		}
	}
	return nil
}

// findEqPrefixIndex returns an index whose leading columns are exactly
// the (distinct) probe columns in any order, with at least one more
// column after them, plus the permutation mapping each prefix position
// to its probe-key position. The ordered structure then answers the
// equality by binary search — and a range bound on Cols[len(cols)] can
// tighten the same search, the "equality prefix + range on the next
// column" compound access path.
func (td *tableData) findEqPrefixIndex(cols []int) (*Index, []int) {
	k := len(cols)
	if k == 0 {
		return nil, nil
	}
outer:
	for _, sl := range td.indexes {
		idx := sl.idx
		if len(idx.Cols) <= k {
			continue // exact covers are findIndex territory
		}
		perm := make([]int, k)
		used := make([]bool, k)
		for j := 0; j < k; j++ {
			perm[j] = -1
			for i, c := range cols {
				if c == idx.Cols[j] && !used[i] {
					perm[j], used[i] = i, true
					break
				}
			}
			if perm[j] < 0 {
				continue outer
			}
		}
		return idx, perm
	}
	return nil, nil
}

// findPrefixIndex returns an index whose column list starts with
// exactly cols (in order), or nil. Unlike findIndex, order matters:
// in-order iteration only serves ORDER BY for a prefix match.
func (td *tableData) findPrefixIndex(cols []int) *Index {
	for _, sl := range td.indexes {
		idx := sl.idx
		if len(idx.Cols) < len(cols) {
			continue
		}
		ok := true
		for i, c := range cols {
			if idx.Cols[i] != c {
				ok = false
				break
			}
		}
		if ok {
			return idx
		}
	}
	return nil
}

// findRangeIndex returns an index whose first column is col, or nil —
// the shape a single-column range conjunct can prune through.
func (td *tableData) findRangeIndex(col int) *Index {
	return td.findPrefixIndex([]int{col})
}
