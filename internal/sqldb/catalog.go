package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ecfd/internal/relation"
)

// DB is an in-memory SQL database: a catalog of tables guarded by a
// reader/writer lock. SELECT statements hold the read lock for their
// whole execution, so any number of queries run concurrently; DDL, DML
// and transaction control take the write lock and therefore see (and
// leave) the catalog quiescent. Statement-level isolation follows
// directly: a query observes the table row slices that were current
// when it acquired the lock, and no mutation can interleave with it.
type DB struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	activeTx *Tx
	// ddlVersion counts catalog changes (CREATE/DROP TABLE, CREATE
	// INDEX, LoadRelation). Compiled plans record the version they were
	// built against and recompile on mismatch. Starts at 1 so a zero
	// version always means "never compiled". Written under mu (write);
	// read under mu (read or write).
	ddlVersion uint64
	// stmtCache maps statement text → *Prepared. It has its own mutex
	// so concurrent readers can hit the cache without contending on the
	// catalog lock (an LRU get mutates recency order, so a plain RLock
	// would not do).
	stmtMu    sync.Mutex
	stmtCache *lruCache
	// wal, when non-nil, is the durability layer: every mutation
	// appends a commit unit before it touches the catalog (see wal.go).
	// Databases from NewDB stay purely in-memory; Open attaches a WAL.
	wal *walState
	// roErr, once set, freezes the database read-only: the WAL could
	// not record a mutation (write or fsync failure), so rather than
	// let memory and log diverge, every later DML/DDL returns
	// ErrReadOnly wrapping this cause while queries keep serving.
	// Written and read under mu.
	roErr error
	// recov records what recovery did at Open time.
	recov RecoveryStats
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table), ddlVersion: 1} }

// bumpDDL invalidates compiled plans after a catalog change. Callers
// hold db.mu.
func (db *DB) bumpDDL() { db.ddlVersion++ }

// Table is one base table: schema, row store and secondary indexes.
// Mutations notify the indexes with exactly what changed (appended,
// deleted or updated row positions), so built indexes are maintained
// incrementally; only wholesale replacement (LoadRelation, transaction
// rollback) falls back to mark-dirty-and-rebuild.
type Table struct {
	Name    string
	Schema  *relation.Schema
	Rows    []relation.Tuple
	indexes []*Index
	version uint64 // bumped on every mutation; used by cached hash builds
	// cols is the columnar scan cache behind the batch kernels: one
	// lazily built value vector per column, maintained incrementally by
	// the same DML notifications that maintain the indexes.
	cols colStore
}

// colStore caches column vectors of a table: vecs[ci][ri] ==
// t.Rows[ri][ci] for every built column. Batch kernels scan these flat
// vectors instead of chasing one Tuple pointer per row. A vector is
// built on first use (double-checked under mu, since scans run under
// the catalog *read* lock) and from then on maintained by the DML
// hooks, which run under the catalog write lock: appends extend,
// deletes compact, updates rewrite exactly the changed positions.
// Wholesale row replacement (LoadRelation, rollback) drops the cache.
type colStore struct {
	mu   sync.RWMutex
	vecs [][]relation.Value
	// rebuilds counts full (non-incremental) vector builds; the
	// maintenance regression tests read it.
	rebuilds int
}

// column returns the cached value vector for schema position ci,
// building it on first use. The returned slice is shared — callers
// must not mutate it and must hold the catalog read lock while using
// it.
func (t *Table) column(ci int) []relation.Value {
	t.cols.mu.RLock()
	if ci < len(t.cols.vecs) {
		if v := t.cols.vecs[ci]; v != nil {
			t.cols.mu.RUnlock()
			return v
		}
	}
	t.cols.mu.RUnlock()

	t.cols.mu.Lock()
	defer t.cols.mu.Unlock()
	if t.cols.vecs == nil {
		t.cols.vecs = make([][]relation.Value, t.Schema.Width())
	}
	if v := t.cols.vecs[ci]; v != nil {
		return v
	}
	v := make([]relation.Value, len(t.Rows))
	for ri, row := range t.Rows {
		v[ri] = row[ci]
	}
	t.cols.vecs[ci] = v
	t.cols.rebuilds++
	return v
}

// colsDrop invalidates every built column vector (wholesale row
// replacement). Callers hold the catalog write lock.
func (t *Table) colsDrop() {
	t.cols.mu.Lock()
	for i := range t.cols.vecs {
		t.cols.vecs[i] = nil
	}
	t.cols.mu.Unlock()
}

// colsAppended extends built vectors with the k freshly appended rows.
func (t *Table) colsAppended(k int) {
	t.cols.mu.Lock()
	oldLen := len(t.Rows) - k
	for ci, v := range t.cols.vecs {
		if v == nil {
			continue
		}
		for ri := oldLen; ri < len(t.Rows); ri++ {
			v = append(v, t.Rows[ri][ci])
		}
		t.cols.vecs[ci] = v
	}
	t.cols.mu.Unlock()
}

// colsDeleted compacts built vectors after the rows at positions dels
// (ascending, pre-delete positions) were removed. Order is preserved,
// so this is one filtering pass per built column.
func (t *Table) colsDeleted(dels []int) {
	t.cols.mu.Lock()
	for ci, v := range t.cols.vecs {
		if v == nil {
			continue
		}
		keep := v[:0]
		di := 0
		for ri := range v {
			if di < len(dels) && dels[di] == ri {
				di++
				continue
			}
			keep = append(keep, v[ri])
		}
		t.cols.vecs[ci] = keep
	}
	t.cols.mu.Unlock()
}

// colsUpdated rewrites the changed cells of built vectors after an
// UPDATE assigned cols at row positions pos. Vectors of unassigned
// columns are untouched.
func (t *Table) colsUpdated(pos, cols []int) {
	t.cols.mu.Lock()
	for _, ci := range cols {
		if ci >= len(t.cols.vecs) {
			continue
		}
		v := t.cols.vecs[ci]
		if v == nil {
			continue
		}
		for _, ri := range pos {
			v[ri] = t.Rows[ri][ci]
		}
	}
	t.cols.mu.Unlock()
}

// colsTruncated empties built vectors in place.
func (t *Table) colsTruncated() {
	t.cols.mu.Lock()
	for ci, v := range t.cols.vecs {
		if v == nil {
			continue
		}
		t.cols.vecs[ci] = v[:0]
	}
	t.cols.mu.Unlock()
}

// Index is an ordered secondary index over a column list. It keeps two
// structures, each built lazily on first use and maintained
// incrementally afterwards:
//
//   - m, a hash map from encoded key to ascending row positions —
//     answers equality probes in O(1);
//   - sorted, the row positions ordered by the index-column values
//     (ties by position) — answers range scans (<, <=, >, >=, BETWEEN,
//     RID-slice conjuncts) with a binary search returning a contiguous
//     subslice, and serves ORDER BY via in-order iteration when the
//     sort key is a prefix of Cols.
//
// Mutations (under the catalog write lock) maintain whichever
// structures have been built: INSERT merges the appended positions,
// DELETE filters and remaps surviving positions, UPDATE removes and
// re-inserts only the changed rows of indexes whose columns were
// actually set, TRUNCATE empties in place. A structure that has never
// been probed stays nil/dirty and costs mutations nothing. The lazy
// rebuild (double-checked under the index's own mutex, since probes
// run under the catalog *read* lock) remains as the cold-start path
// and after wholesale row replacement.
type Index struct {
	Name string
	Cols []int // column positions, in declared order

	mu     sync.RWMutex
	m      map[string][]int
	sorted []int
	mDirty bool
	sDirty bool
	// rebuilds counts full (non-incremental) builds of either
	// structure; the DML maintenance regression tests read it.
	rebuilds int
}

func lowerName(s string) string { return strings.ToLower(s) }

// CreateTable registers a new table.
func (db *DB) CreateTable(name string, cols []ColumnDef, ifNotExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writable(); err != nil {
		return err
	}
	key := lowerName(name)
	if _, ok := db.tables[key]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("sql: table %s already exists", name)
	}
	attrs := make([]relation.Attribute, len(cols))
	for i, c := range cols {
		attrs[i] = relation.Attribute{Name: c.Name, Kind: c.Kind}
	}
	schema, err := relation.NewSchema(name, attrs...)
	if err != nil {
		return fmt.Errorf("sql: %w", err)
	}
	if err := db.logCreateTable(schema); err != nil {
		return err
	}
	db.tables[key] = &Table{Name: name, Schema: schema}
	db.bumpDDL()
	return nil
}

// DropTable removes a table.
func (db *DB) DropTable(name string, ifExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writable(); err != nil {
		return err
	}
	key := lowerName(name)
	if _, ok := db.tables[key]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("sql: no table %s", name)
	}
	if err := db.logDropTable(name); err != nil {
		return err
	}
	delete(db.tables, key)
	db.bumpDDL()
	return nil
}

// table looks a table up; callers hold db.mu (read or write).
func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[lowerName(name)]
	if !ok {
		return nil, fmt.Errorf("sql: no table %s", name)
	}
	return t, nil
}

// TableNames returns the catalog's table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// TableLen returns the row count of a table.
func (db *DB) TableLen(name string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return 0, err
	}
	return len(t.Rows), nil
}

// LoadRelation bulk-creates (or replaces the contents of) a table from
// an in-memory relation. It is the fast path the benchmarks use to
// install generated datasets without going through INSERT parsing.
func (db *DB) LoadRelation(r *relation.Relation) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writable(); err != nil {
		return err
	}
	if db.activeTx != nil {
		// Wholesale replacement has no per-row undo delta, so it cannot
		// participate in rollback (or be logged consistently with one).
		return fmt.Errorf("sql: LoadRelation inside a transaction is not supported")
	}
	key := lowerName(r.Schema.Name)
	t, ok := db.tables[key]
	if !ok {
		if err := db.logLoadRelation(r); err != nil {
			return err
		}
		t = &Table{Name: r.Schema.Name, Schema: r.Schema}
		db.tables[key] = t
		db.bumpDDL()
	} else if t.Schema.Width() != r.Schema.Width() {
		return fmt.Errorf("sql: LoadRelation: width mismatch for %s", r.Schema.Name)
	} else if err := db.logLoadRelation(r); err != nil {
		return err
	}
	t.Rows = make([]relation.Tuple, len(r.Rows))
	for i, row := range r.Rows {
		t.Rows[i] = row.Clone()
	}
	t.mutated()
	return nil
}

// Snapshot copies a table back out as a relation. It holds the read
// lock only: concurrent queries proceed, mutations wait.
func (db *DB) Snapshot(name string) (*relation.Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return nil, err
	}
	out := relation.New(t.Schema)
	out.Rows = make([]relation.Tuple, len(t.Rows))
	for i, row := range t.Rows {
		out.Rows[i] = row.Clone()
	}
	return out, nil
}

// CreateIndex registers a secondary index.
func (db *DB) CreateIndex(name, table string, cols []string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writable(); err != nil {
		return err
	}
	t, err := db.table(table)
	if err != nil {
		return err
	}
	idx := &Index{Name: name, mDirty: true, sDirty: true}
	for _, c := range cols {
		j := t.Schema.Index(c)
		if j < 0 {
			return fmt.Errorf("sql: no column %s in %s", c, table)
		}
		idx.Cols = append(idx.Cols, j)
	}
	for _, existing := range t.indexes {
		if existing.Name == name {
			return fmt.Errorf("sql: index %s already exists on %s", name, table)
		}
	}
	if err := db.logCreateIndex(name, table, cols); err != nil {
		return err
	}
	t.indexes = append(t.indexes, idx)
	db.bumpDDL()
	return nil
}

// mutated invalidates every index wholesale. It is the fallback for
// row replacement where no per-row delta exists (LoadRelation,
// transaction rollback); DML uses the incremental notifications below.
func (t *Table) mutated() {
	t.version++
	for _, idx := range t.indexes {
		idx.mu.Lock()
		idx.mDirty = true
		idx.sDirty = true
		idx.mu.Unlock()
	}
	t.colsDrop()
}

// rowsAppended maintains the indexes after k rows were appended to
// t.Rows. Appended positions are the largest, so built hash buckets
// stay ascending by plain append and the sorted order merges (usually
// degenerating to an append for monotone key columns like RID).
// Callers hold the catalog write lock.
func (t *Table) rowsAppended(k int) {
	t.version++
	t.colsAppended(k)
	oldLen := len(t.Rows) - k
	for _, idx := range t.indexes {
		idx.mu.Lock()
		if idx.m != nil && !idx.mDirty {
			key := make([]relation.Value, len(idx.Cols))
			for ri := oldLen; ri < len(t.Rows); ri++ {
				for i, c := range idx.Cols {
					key[i] = t.Rows[ri][c]
				}
				k := relation.KeyOf(key)
				idx.m[k] = append(idx.m[k], ri)
			}
		}
		if idx.sorted != nil && !idx.sDirty {
			add := make([]int, k)
			for i := range add {
				add[i] = oldLen + i
			}
			sort.Slice(add, func(a, b int) bool { return idx.lessPos(t, add[a], add[b]) })
			idx.sorted = idx.mergeSorted(t, idx.sorted, add)
		}
		idx.mu.Unlock()
	}
}

// rowsDeleted maintains the indexes after the rows at positions dels
// (ascending, referring to the pre-delete t.Rows) were removed and the
// remaining rows compacted in order. Surviving positions shift down by
// the number of deleted positions below them; neither keys nor
// relative order change, so both structures are filtered and remapped
// in one pass — no key encoding, no re-sort, no rehash. Callers hold
// the catalog write lock.
func (t *Table) rowsDeleted(dels []int) {
	t.version++
	if len(dels) == 0 {
		return
	}
	t.colsDeleted(dels)
	remap := func(ri int) int { return ri - sort.SearchInts(dels, ri) }
	deleted := func(ri int) bool {
		i := sort.SearchInts(dels, ri)
		return i < len(dels) && dels[i] == ri
	}
	for _, idx := range t.indexes {
		idx.mu.Lock()
		if idx.m != nil && !idx.mDirty {
			for k, bucket := range idx.m {
				keep := bucket[:0]
				for _, ri := range bucket {
					if !deleted(ri) {
						keep = append(keep, remap(ri))
					}
				}
				if len(keep) == 0 {
					delete(idx.m, k)
				} else {
					idx.m[k] = keep
				}
			}
		}
		if idx.sorted != nil && !idx.sDirty {
			keep := idx.sorted[:0]
			for _, ri := range idx.sorted {
				if !deleted(ri) {
					keep = append(keep, remap(ri))
				}
			}
			idx.sorted = keep
		}
		idx.mu.Unlock()
	}
}

// updateBegin removes the stale entries of rows about to change. pos
// is ascending; cols are the schema positions being assigned. Indexes
// reading none of the assigned columns are untouched — this is what
// keeps the detector's SV/MV flag writes from ever invalidating the
// RID index. Must run while t.Rows still holds the old values;
// updateEnd re-inserts after the assignment. Callers hold the catalog
// write lock.
func (t *Table) updateBegin(pos, cols []int) {
	for _, idx := range t.indexes {
		if !idx.overlaps(cols) {
			continue
		}
		idx.mu.Lock()
		if idx.m != nil && !idx.mDirty {
			key := make([]relation.Value, len(idx.Cols))
			for _, ri := range pos {
				for i, c := range idx.Cols {
					key[i] = t.Rows[ri][c]
				}
				k := relation.KeyOf(key)
				bucket := idx.m[k]
				at := sort.SearchInts(bucket, ri)
				if at < len(bucket) && bucket[at] == ri {
					bucket = append(bucket[:at], bucket[at+1:]...)
					if len(bucket) == 0 {
						delete(idx.m, k)
					} else {
						idx.m[k] = bucket
					}
				}
			}
		}
		if idx.sorted != nil && !idx.sDirty {
			doomed := make(map[int]bool, len(pos))
			for _, ri := range pos {
				doomed[ri] = true
			}
			keep := idx.sorted[:0]
			for _, ri := range idx.sorted {
				if !doomed[ri] {
					keep = append(keep, ri)
				}
			}
			idx.sorted = keep
		}
		idx.mu.Unlock()
	}
}

// updateEnd re-inserts the rows removed by updateBegin with their new
// values. Callers hold the catalog write lock.
func (t *Table) updateEnd(pos, cols []int) {
	t.version++
	t.colsUpdated(pos, cols)
	for _, idx := range t.indexes {
		if !idx.overlaps(cols) {
			continue
		}
		idx.mu.Lock()
		if idx.m != nil && !idx.mDirty {
			key := make([]relation.Value, len(idx.Cols))
			for _, ri := range pos {
				for i, c := range idx.Cols {
					key[i] = t.Rows[ri][c]
				}
				k := relation.KeyOf(key)
				bucket := idx.m[k]
				at := sort.SearchInts(bucket, ri)
				bucket = append(bucket, 0)
				copy(bucket[at+1:], bucket[at:])
				bucket[at] = ri
				idx.m[k] = bucket
			}
		}
		if idx.sorted != nil && !idx.sDirty {
			add := append([]int(nil), pos...)
			sort.Slice(add, func(a, b int) bool { return idx.lessPos(t, add[a], add[b]) })
			idx.sorted = idx.mergeSorted(t, idx.sorted, add)
		}
		idx.mu.Unlock()
	}
}

// truncated resets built structures to empty in place (the post-
// truncate index contents, whatever they held); never-built structures
// stay lazy so an unprobed index keeps costing nothing. Callers hold
// the catalog write lock.
func (t *Table) truncated() {
	t.version++
	t.colsTruncated()
	for _, idx := range t.indexes {
		idx.mu.Lock()
		if idx.m != nil && !idx.mDirty {
			idx.m = make(map[string][]int)
		}
		if idx.sorted != nil && !idx.sDirty {
			idx.sorted = idx.sorted[:0]
		}
		idx.mu.Unlock()
	}
}

// overlaps reports whether the index reads any of the given columns.
func (idx *Index) overlaps(cols []int) bool {
	for _, c := range cols {
		for _, ic := range idx.Cols {
			if c == ic {
				return true
			}
		}
	}
	return false
}

// lessPos orders two row positions by the index-column values, ties by
// position — the sort order of Index.sorted. Callers hold at least the
// catalog read lock so t.Rows is stable.
func (idx *Index) lessPos(t *Table, a, b int) bool {
	ra, rb := t.Rows[a], t.Rows[b]
	for _, c := range idx.Cols {
		if cmp := relation.Compare(ra[c], rb[c]); cmp != 0 {
			return cmp < 0
		}
	}
	return a < b
}

// mergeSorted merges two position lists already in lessPos order. The
// common case — appends with a monotone key column like RID — reduces
// to a plain append.
func (idx *Index) mergeSorted(t *Table, have, add []int) []int {
	if len(add) == 0 {
		return have
	}
	if len(have) == 0 || idx.lessPos(t, have[len(have)-1], add[0]) {
		return append(have, add...)
	}
	out := make([]int, 0, len(have)+len(add))
	i, j := 0, 0
	for i < len(have) && j < len(add) {
		if idx.lessPos(t, add[j], have[i]) {
			out = append(out, add[j])
			j++
		} else {
			out = append(out, have[i])
			i++
		}
	}
	out = append(out, have[i:]...)
	return append(out, add[j:]...)
}

// findIndex returns an index whose column set is exactly cols (in any
// order), or nil. Callers probe through Index.lookup, which rebuilds
// lazily under the index's own lock.
func (t *Table) findIndex(cols []int) *Index {
	want := append([]int(nil), cols...)
	sort.Ints(want)
	for _, idx := range t.indexes {
		have := append([]int(nil), idx.Cols...)
		sort.Ints(have)
		if len(have) != len(want) {
			continue
		}
		same := true
		for i := range have {
			if have[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			return idx
		}
	}
	return nil
}

// lookup returns the equality map behind the index, rebuilding it
// first on cold start (or after wholesale row replacement). Safe under
// concurrent readers: the fast path takes the index read lock only,
// the rebuild is double-checked under the write lock — many concurrent
// queries may race to the first probe, exactly one rebuilds, the rest
// wait and reuse its map. Callers hold at least the catalog read lock,
// so t.Rows cannot change underneath the build.
func (idx *Index) lookup(t *Table) map[string][]int {
	idx.mu.RLock()
	if !idx.mDirty && idx.m != nil {
		m := idx.m
		idx.mu.RUnlock()
		return m
	}
	idx.mu.RUnlock()

	idx.mu.Lock()
	defer idx.mu.Unlock()
	if !idx.mDirty && idx.m != nil {
		return idx.m
	}
	m := make(map[string][]int, len(t.Rows))
	key := make([]relation.Value, len(idx.Cols))
	for ri, row := range t.Rows {
		for i, c := range idx.Cols {
			key[i] = row[c]
		}
		k := relation.KeyOf(key)
		m[k] = append(m[k], ri)
	}
	idx.m = m
	idx.mDirty = false
	idx.rebuilds++
	return m
}

// ordered returns the row positions in index order (column values
// ascending, ties by position), rebuilding on cold start with the same
// double-checked discipline as lookup. The returned slice is shared —
// callers must not mutate it and must hold the catalog read lock while
// using it.
func (idx *Index) ordered(t *Table) []int {
	idx.mu.RLock()
	if !idx.sDirty && idx.sorted != nil {
		s := idx.sorted
		idx.mu.RUnlock()
		return s
	}
	idx.mu.RUnlock()

	idx.mu.Lock()
	defer idx.mu.Unlock()
	if !idx.sDirty && idx.sorted != nil {
		return idx.sorted
	}
	s := make([]int, len(t.Rows))
	for i := range s {
		s[i] = i
	}
	sort.Slice(s, func(a, b int) bool { return idx.lessPos(t, s[a], s[b]) })
	idx.sorted = s
	idx.sDirty = false
	idx.rebuilds++
	return s
}

// rangeOf returns the positions whose first index column lies between
// lo and hi (each optional), as a subslice of the in-order positions —
// zero-copy, and still sorted, so a range-pruned scan can also serve
// ORDER BY. Bounds are conservative: values comparing equal to a bound
// are included, and exclusivity is left to the retained filter
// predicates, which keeps the pruning semantics-free (NaN bounds,
// mixed numeric kinds and friends all fall out of relation.Compare the
// same way the filters do). skipNullLo additionally excludes the NULL
// rows sorting before every value — required when an upper-bound
// filter was elided with no lower bound present, since the elided
// filter would have rejected NULL (a non-NULL lo excludes them anyway,
// NULLs ranking below every bounded value).
func (idx *Index) rangeOf(t *Table, lo, hi relation.Value, hasLo, hasHi, skipNullLo bool) []int {
	s := idx.ordered(t)
	c0 := idx.Cols[0]
	from, to := 0, len(s)
	switch {
	case hasLo:
		from = sort.Search(len(s), func(i int) bool {
			return relation.Compare(t.Rows[s[i]][c0], lo) >= 0
		})
	case skipNullLo:
		from = sort.Search(len(s), func(i int) bool {
			return t.Rows[s[i]][c0].K != relation.KindNull
		})
	}
	if hasHi {
		to = sort.Search(len(s), func(i int) bool {
			return relation.Compare(t.Rows[s[i]][c0], hi) > 0
		})
	}
	if to < from {
		to = from
	}
	return s[from:to]
}

// eqPrefixRange returns the positions whose first k index columns
// compare equal to vals (one value per index column, in index order)
// and whose (k+1)-th column lies within lo/hi (each optional), as a
// subslice of the in-order positions — the compound-bound form of
// rangeOf. Equality via Compare == 0 is exact here because callers
// guard NULL and NaN keys (probeRows): for non-NULL, non-NaN operands
// Compare(a, b) == 0 ⇔ Equal(a, b), and NULL/NaN *rows* sort outside
// the equal region. The range bound stays conservative-inclusive like
// rangeOf — exclusivity is the retained filter's job.
func (idx *Index) eqPrefixRange(t *Table, vals []relation.Value, lo, hi relation.Value, hasLo, hasHi bool) []int {
	s := idx.ordered(t)
	k := len(vals)
	// cmpPrefix ranks a row against the equality prefix.
	cmpPrefix := func(ri int) int {
		row := t.Rows[ri]
		for j := 0; j < k; j++ {
			if c := relation.Compare(row[idx.Cols[j]], vals[j]); c != 0 {
				return c
			}
		}
		return 0
	}
	var next int
	if k < len(idx.Cols) {
		next = idx.Cols[k]
	}
	from := sort.Search(len(s), func(i int) bool {
		c := cmpPrefix(s[i])
		if c != 0 {
			return c > 0
		}
		return !hasLo || relation.Compare(t.Rows[s[i]][next], lo) >= 0
	})
	to := sort.Search(len(s), func(i int) bool {
		c := cmpPrefix(s[i])
		if c != 0 {
			return c > 0
		}
		return hasHi && relation.Compare(t.Rows[s[i]][next], hi) > 0
	})
	if to < from {
		to = from
	}
	return s[from:to]
}

// findEqPrefixIndex returns an index whose leading columns are exactly
// the (distinct) probe columns in any order, with at least one more
// column after them, plus the permutation mapping each prefix position
// to its probe-key position. The ordered structure then answers the
// equality by binary search — and a range bound on Cols[len(cols)] can
// tighten the same search, the "equality prefix + range on the next
// column" compound access path.
func (t *Table) findEqPrefixIndex(cols []int) (*Index, []int) {
	k := len(cols)
	if k == 0 {
		return nil, nil
	}
outer:
	for _, idx := range t.indexes {
		if len(idx.Cols) <= k {
			continue // exact covers are findIndex territory
		}
		perm := make([]int, k)
		used := make([]bool, k)
		for j := 0; j < k; j++ {
			perm[j] = -1
			for i, c := range cols {
				if c == idx.Cols[j] && !used[i] {
					perm[j], used[i] = i, true
					break
				}
			}
			if perm[j] < 0 {
				continue outer
			}
		}
		return idx, perm
	}
	return nil, nil
}

// findPrefixIndex returns an index whose column list starts with
// exactly cols (in order), or nil. Unlike findIndex, order matters:
// in-order iteration only serves ORDER BY for a prefix match.
func (t *Table) findPrefixIndex(cols []int) *Index {
	for _, idx := range t.indexes {
		if len(idx.Cols) < len(cols) {
			continue
		}
		ok := true
		for i, c := range cols {
			if idx.Cols[i] != c {
				ok = false
				break
			}
		}
		if ok {
			return idx
		}
	}
	return nil
}

// findRangeIndex returns an index whose first column is col, or nil —
// the shape a single-column range conjunct can prune through.
func (t *Table) findRangeIndex(col int) *Index {
	return t.findPrefixIndex([]int{col})
}
