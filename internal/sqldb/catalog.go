package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ecfd/internal/relation"
)

// DB is an in-memory SQL database: a catalog of tables guarded by a
// reader/writer lock. SELECT statements hold the read lock for their
// whole execution, so any number of queries run concurrently; DDL, DML
// and transaction control take the write lock and therefore see (and
// leave) the catalog quiescent. Statement-level isolation follows
// directly: a query observes the table row slices that were current
// when it acquired the lock, and no mutation can interleave with it.
type DB struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	activeTx *Tx
	// ddlVersion counts catalog changes (CREATE/DROP TABLE, CREATE
	// INDEX, LoadRelation). Compiled plans record the version they were
	// built against and recompile on mismatch. Starts at 1 so a zero
	// version always means "never compiled". Written under mu (write);
	// read under mu (read or write).
	ddlVersion uint64
	// stmtCache maps statement text → *Prepared. It has its own mutex
	// so concurrent readers can hit the cache without contending on the
	// catalog lock (an LRU get mutates recency order, so a plain RLock
	// would not do).
	stmtMu    sync.Mutex
	stmtCache *lruCache
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table), ddlVersion: 1} }

// bumpDDL invalidates compiled plans after a catalog change. Callers
// hold db.mu.
func (db *DB) bumpDDL() { db.ddlVersion++ }

// Table is one base table: schema, row store and secondary indexes.
// Indexes are maintained lazily — mutations mark them dirty and the
// next probe rebuilds.
type Table struct {
	Name    string
	Schema  *relation.Schema
	Rows    []relation.Tuple
	indexes []*Index
	version uint64 // bumped on every mutation; used by cached hash builds
}

// Index is a secondary hash index over a column list. The hash map is
// built lazily: mutations (under the catalog write lock) mark it dirty,
// and the next probe rebuilds it. Probes run under the catalog *read*
// lock, so the rebuild itself is guarded by the index's own mutex with
// double-checked locking — many concurrent queries may race to the
// first probe after a mutation, exactly one rebuilds, the rest wait and
// reuse its map.
type Index struct {
	Name string
	Cols []int // column positions

	mu    sync.RWMutex
	m     map[string][]int
	dirty bool
}

func lowerName(s string) string { return strings.ToLower(s) }

// CreateTable registers a new table.
func (db *DB) CreateTable(name string, cols []ColumnDef, ifNotExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := lowerName(name)
	if _, ok := db.tables[key]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("sql: table %s already exists", name)
	}
	attrs := make([]relation.Attribute, len(cols))
	for i, c := range cols {
		attrs[i] = relation.Attribute{Name: c.Name, Kind: c.Kind}
	}
	schema, err := relation.NewSchema(name, attrs...)
	if err != nil {
		return fmt.Errorf("sql: %w", err)
	}
	db.tables[key] = &Table{Name: name, Schema: schema}
	db.bumpDDL()
	return nil
}

// DropTable removes a table.
func (db *DB) DropTable(name string, ifExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := lowerName(name)
	if _, ok := db.tables[key]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("sql: no table %s", name)
	}
	delete(db.tables, key)
	db.bumpDDL()
	return nil
}

// table looks a table up; callers hold db.mu (read or write).
func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[lowerName(name)]
	if !ok {
		return nil, fmt.Errorf("sql: no table %s", name)
	}
	return t, nil
}

// TableNames returns the catalog's table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// TableLen returns the row count of a table.
func (db *DB) TableLen(name string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return 0, err
	}
	return len(t.Rows), nil
}

// LoadRelation bulk-creates (or replaces the contents of) a table from
// an in-memory relation. It is the fast path the benchmarks use to
// install generated datasets without going through INSERT parsing.
func (db *DB) LoadRelation(r *relation.Relation) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := lowerName(r.Schema.Name)
	t, ok := db.tables[key]
	if !ok {
		t = &Table{Name: r.Schema.Name, Schema: r.Schema}
		db.tables[key] = t
		db.bumpDDL()
	} else if t.Schema.Width() != r.Schema.Width() {
		return fmt.Errorf("sql: LoadRelation: width mismatch for %s", r.Schema.Name)
	}
	t.Rows = make([]relation.Tuple, len(r.Rows))
	for i, row := range r.Rows {
		t.Rows[i] = row.Clone()
	}
	t.mutated()
	return nil
}

// Snapshot copies a table back out as a relation. It holds the read
// lock only: concurrent queries proceed, mutations wait.
func (db *DB) Snapshot(name string) (*relation.Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return nil, err
	}
	out := relation.New(t.Schema)
	out.Rows = make([]relation.Tuple, len(t.Rows))
	for i, row := range t.Rows {
		out.Rows[i] = row.Clone()
	}
	return out, nil
}

// CreateIndex registers a secondary index.
func (db *DB) CreateIndex(name, table string, cols []string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(table)
	if err != nil {
		return err
	}
	idx := &Index{Name: name, dirty: true}
	for _, c := range cols {
		j := t.Schema.Index(c)
		if j < 0 {
			return fmt.Errorf("sql: no column %s in %s", c, table)
		}
		idx.Cols = append(idx.Cols, j)
	}
	for _, existing := range t.indexes {
		if existing.Name == name {
			return fmt.Errorf("sql: index %s already exists on %s", name, table)
		}
	}
	t.indexes = append(t.indexes, idx)
	db.bumpDDL()
	return nil
}

func (t *Table) mutated() {
	t.version++
	for _, idx := range t.indexes {
		idx.mu.Lock()
		idx.dirty = true
		idx.mu.Unlock()
	}
}

// findIndex returns an index whose column set is exactly cols (in any
// order), or nil. Callers probe through Index.lookup, which rebuilds
// lazily under the index's own lock.
func (t *Table) findIndex(cols []int) *Index {
	want := append([]int(nil), cols...)
	sort.Ints(want)
	for _, idx := range t.indexes {
		have := append([]int(nil), idx.Cols...)
		sort.Ints(have)
		if len(have) != len(want) {
			continue
		}
		same := true
		for i := range have {
			if have[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			return idx
		}
	}
	return nil
}

// lookup returns the map behind the index, rebuilding it first when a
// mutation marked it dirty. Safe under concurrent readers: the fast
// path takes the index read lock only, the rebuild is double-checked
// under the write lock. Callers hold at least the catalog read lock, so
// t.Rows cannot change underneath the build.
func (idx *Index) lookup(t *Table) map[string][]int {
	idx.mu.RLock()
	if !idx.dirty && idx.m != nil {
		m := idx.m
		idx.mu.RUnlock()
		return m
	}
	idx.mu.RUnlock()

	idx.mu.Lock()
	defer idx.mu.Unlock()
	if !idx.dirty && idx.m != nil {
		return idx.m
	}
	m := make(map[string][]int, len(t.Rows))
	key := make([]relation.Value, len(idx.Cols))
	for ri, row := range t.Rows {
		for i, c := range idx.Cols {
			key[i] = row[c]
		}
		k := relation.KeyOf(key)
		m[k] = append(m[k], ri)
	}
	idx.m = m
	idx.dirty = false
	return m
}
