package sqldb

import (
	"fmt"
	"math"
	"strings"

	"ecfd/internal/relation"
)

// env is the per-execution evaluation environment: a stack of frames
// (one per nesting level of SELECT scopes), the statement parameters,
// per-group aggregate values, and caches for decorrelated subqueries.
//
// Every piece of state a statement mutates while executing lives here
// (or in the per-env schedule), never on the compiled plan: plans are
// shared by all goroutines running the same prepared statement
// concurrently under the catalog read lock.
type env struct {
	db *DB
	// ep is the epoch this execution reads: the pinned snapshot for
	// lock-free queries, or the writer's in-progress epoch (db.curW)
	// for DML statements running under db.mu. All table data — rows,
	// column caches, index structures — is reached through it.
	ep     *epoch
	params []relation.Value
	frames []frame
	aggs   map[*compiledSelect][]relation.Value
	hash   map[*Exists]*hashBuild
	inSets map[*InSelect]*inBuild
	// inLists caches the value sets of long literal/parameter IN lists.
	inLists map[*InList]*inBuild
	probes  map[*Exists]*probeScratch
	// schedules caches one join plan per select for the statement's
	// lifetime, so hash builds survive across correlated re-executions.
	schedules map[*compiledSelect]*schedule
	// projs holds the per-select projection caches of the batch-aware
	// emit path (site-invariant output parts, see projSpec).
	projs map[*compiledSelect]*projScratch
	// scratch holds the reusable frame row slots for execExists and
	// semiScan, one per select (a select cannot contain itself, so reuse
	// across its sequential invocations within one statement is safe).
	scratch map[*compiledSelect][]relation.Tuple
	// spineWant/spine are the group-key spine handshake: a grouped
	// select whose GROUP BY is the first k output columns of its single
	// derived DISTINCT source sets spineWant[sub]=k before running it;
	// the sub's inline dedup then records, per emitted row, the k-column
	// prefix of the dedup key it hashed anyway into spine[sub], and
	// execGrouped reuses those bytes as group keys instead of
	// re-evaluating and re-encoding the columns.
	spineWant map[*compiledSelect]int
	spine     map[*compiledSelect][]string
}

// td returns the epoch's data for a table handle.
func (en *env) td(t *Table) *tableData { return en.ep.tds[t] }

// rows returns the epoch's row slice for a table handle.
func (en *env) rows(t *Table) []relation.Tuple { return en.ep.tds[t].rows }

// column returns the epoch's column vector for (t, ci), fenced to the
// epoch's row count (building or extending the shared cache if needed).
func (en *env) column(t *Table, ci int) []relation.Value {
	return en.ep.tds[t].column(t, ci)
}

// scratchFor returns the env's frame row slot for cs.
func (en *env) scratchFor(cs *compiledSelect) []relation.Tuple {
	if s, ok := en.scratch[cs]; ok {
		return s
	}
	if en.scratch == nil {
		en.scratch = make(map[*compiledSelect][]relation.Tuple)
	}
	s := make([]relation.Tuple, len(cs.sources))
	en.scratch[cs] = s
	return s
}

type frame struct {
	rows []relation.Tuple // current row per FROM source
}

type compiledExpr func(*env) (relation.Value, error)

// compiler carries the static scope stack during compilation. scope i
// corresponds to env.frames[i] at run time.
type compiler struct {
	db *DB
	// ep is the epoch compilation resolves names against. Plans are
	// cached per ddlVersion, and any epoch with the same ddlVersion has
	// the same tables/schemas/indexes, so a plan compiled against one
	// epoch is valid for every other epoch of that version.
	ep     *epoch
	scopes []*scopeInfo
	// agg routing: when non-nil, aggregate FuncCalls compile into reads
	// of env.aggs[aggSink.cs] and register their specs in aggSink.
	aggSink *aggCollector
	// decorr memoizes the EXISTS decorrelation analysis per node: the
	// closure compiler (compileExists) and the batch probe-kernel
	// extractor (extractProbeKernels) both need it, and the analysis
	// compiles filters and probe keys — running it once per node keeps
	// plan compilation linear in the statement size. Scoped to one
	// compiler, so a shared AST node is never reused across statements
	// or catalog versions.
	decorr map[*Exists]*decorrProbe
}

type scopeInfo struct {
	sources []sourceInfo
}

type sourceInfo struct {
	name string
	cols []string
}

func (si *sourceInfo) colIndex(name string) int {
	for i, c := range si.cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

type aggCollector struct {
	cs    *compiledSelect
	specs []*aggSpec
}

type aggSpec struct {
	name     string // COUNT, SUM, AVG, MIN, MAX
	star     bool
	distinct bool
	arg      compiledExpr // nil when star
}

// binding locates a column: frame depth, source index, column index.
type binding struct {
	depth, src, col int
}

// resolve finds ref in the scope stack, innermost scope first.
func (c *compiler) resolve(ref *ColumnRef) (binding, error) {
	for d := len(c.scopes) - 1; d >= 0; d-- {
		s := c.scopes[d]
		if ref.Table != "" {
			for si, src := range s.sources {
				if strings.EqualFold(src.name, ref.Table) {
					ci := src.colIndex(ref.Column)
					if ci < 0 {
						return binding{}, fmt.Errorf("sql: no column %s in %s", ref.Column, ref.Table)
					}
					return binding{depth: d, src: si, col: ci}, nil
				}
			}
			continue
		}
		found := binding{depth: -1}
		matches := 0
		for si, src := range s.sources {
			if ci := src.colIndex(ref.Column); ci >= 0 {
				found = binding{depth: d, src: si, col: ci}
				matches++
			}
		}
		if matches > 1 {
			return binding{}, fmt.Errorf("sql: ambiguous column %s", ref.Column)
		}
		if matches == 1 {
			return found, nil
		}
	}
	if ref.Table != "" {
		return binding{}, fmt.Errorf("sql: unknown table %s", ref.Table)
	}
	return binding{}, fmt.Errorf("sql: unknown column %s", ref.Column)
}

// depsOf walks an expression and reports which scope depths its column
// references touch. Subqueries are entered (their own scope pushed as a
// placeholder so inner-only refs do not count as current-level refs).
func (c *compiler) depsOf(e Expr, deps map[int]bool) error {
	return c.walkBindings(e, func(b binding) { deps[b.depth] = true })
}

func (c *compiler) depsOfSelect(sel *Select, deps map[int]bool) error {
	return c.walkSelectBindings(sel, func(b binding) { deps[b.depth] = true })
}

// walkBindings resolves every column reference in an expression and
// reports its binding. Subqueries are entered with their own scope
// pushed, and only references escaping back into c's scopes (depth <
// len(c.scopes)) are reported — the planner and the subquery
// decorrelator both depend on this walk being complete: a missed
// binding would let a predicate run before its source row is bound.
func (c *compiler) walkBindings(e Expr, report func(binding)) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *Literal, *Param:
		return nil
	case *ColumnRef:
		b, err := c.resolve(x)
		if err != nil {
			return err
		}
		report(b)
		return nil
	case *Unary:
		return c.walkBindings(x.X, report)
	case *Binary:
		if err := c.walkBindings(x.L, report); err != nil {
			return err
		}
		return c.walkBindings(x.R, report)
	case *IsNull:
		return c.walkBindings(x.X, report)
	case *InList:
		if err := c.walkBindings(x.X, report); err != nil {
			return err
		}
		for _, it := range x.List {
			if err := c.walkBindings(it, report); err != nil {
				return err
			}
		}
		return nil
	case *Like:
		if err := c.walkBindings(x.X, report); err != nil {
			return err
		}
		return c.walkBindings(x.Pattern, report)
	case *Between:
		if err := c.walkBindings(x.X, report); err != nil {
			return err
		}
		if err := c.walkBindings(x.Lo, report); err != nil {
			return err
		}
		return c.walkBindings(x.Hi, report)
	case *Case:
		if err := c.walkBindings(x.Operand, report); err != nil {
			return err
		}
		for _, w := range x.Whens {
			if err := c.walkBindings(w.Cond, report); err != nil {
				return err
			}
			if err := c.walkBindings(w.Result, report); err != nil {
				return err
			}
		}
		return c.walkBindings(x.Else, report)
	case *FuncCall:
		for _, a := range x.Args {
			if err := c.walkBindings(a, report); err != nil {
				return err
			}
		}
		return nil
	case *Exists:
		return c.walkSelectBindings(x.Sub, report)
	case *InSelect:
		if err := c.walkBindings(x.X, report); err != nil {
			return err
		}
		return c.walkSelectBindings(x.Sub, report)
	case *ScalarSub:
		return c.walkSelectBindings(x.Sub, report)
	default:
		return fmt.Errorf("sql: walkBindings: unhandled %T", e)
	}
}

// walkSelectBindings reports the bindings of a subquery's expressions
// that escape into c's scopes.
func (c *compiler) walkSelectBindings(sel *Select, report func(binding)) error {
	sub := &compiler{db: c.db, ep: c.ep, scopes: c.scopes}
	scope, err := sub.scopeFor(sel)
	if err != nil {
		return err
	}
	sub.scopes = append(append([]*scopeInfo{}, c.scopes...), scope)
	outerLen := len(c.scopes)
	escape := func(b binding) {
		if b.depth < outerLen {
			report(b)
		}
	}
	collect := func(e Expr) error { return sub.walkBindings(e, escape) }
	for _, se := range sel.Exprs {
		if !se.Star {
			if err := collect(se.Expr); err != nil {
				return err
			}
		}
	}
	for _, e := range []Expr{sel.Where, sel.Having, sel.Limit, sel.Offset} {
		if err := collect(e); err != nil {
			return err
		}
	}
	for _, g := range sel.GroupBy {
		if err := collect(g); err != nil {
			return err
		}
	}
	for _, o := range sel.OrderBy {
		if err := collect(o.Expr); err != nil {
			return err
		}
	}
	for _, tr := range sel.From {
		if tr.Sub != nil {
			// Derived tables see only outer scopes, not sel's own scope
			// (mirroring compileSubSelect), so they walk with c directly.
			if err := c.walkSelectBindings(tr.Sub, report); err != nil {
				return err
			}
		}
	}
	return nil
}

// scopeFor builds the scopeInfo a select's FROM list binds.
func (c *compiler) scopeFor(sel *Select) (*scopeInfo, error) {
	scope := &scopeInfo{}
	for _, tr := range sel.From {
		if tr.Sub != nil {
			cols, err := outputColumns(c, tr.Sub)
			if err != nil {
				return nil, err
			}
			scope.sources = append(scope.sources, sourceInfo{name: tr.Name(), cols: cols})
			continue
		}
		t, err := c.ep.table(tr.Table)
		if err != nil {
			return nil, err
		}
		scope.sources = append(scope.sources, sourceInfo{name: tr.Name(), cols: t.Schema.Names()})
	}
	return scope, nil
}

// outputColumns computes the column names a select produces.
func outputColumns(c *compiler, sel *Select) ([]string, error) {
	inner := &compiler{db: c.db, ep: c.ep, scopes: c.scopes}
	scope, err := inner.scopeFor(sel)
	if err != nil {
		return nil, err
	}
	var out []string
	n := 0
	for _, se := range sel.Exprs {
		switch {
		case se.Star && se.StarTable == "":
			for _, src := range scope.sources {
				out = append(out, src.cols...)
			}
		case se.Star:
			found := false
			for _, src := range scope.sources {
				if strings.EqualFold(src.name, se.StarTable) {
					out = append(out, src.cols...)
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("sql: unknown table %s in %s.*", se.StarTable, se.StarTable)
			}
		case se.Alias != "":
			out = append(out, se.Alias)
		default:
			if ref, ok := se.Expr.(*ColumnRef); ok {
				out = append(out, ref.Column)
			} else {
				out = append(out, fmt.Sprintf("col%d", n))
			}
		}
		n++
	}
	return out, nil
}

// compileExpr lowers an expression to a closure.
func (c *compiler) compileExpr(e Expr) (compiledExpr, error) {
	switch x := e.(type) {
	case *Literal:
		v := x.Val
		return func(*env) (relation.Value, error) { return v, nil }, nil

	case *Param:
		i := x.Index
		return func(en *env) (relation.Value, error) {
			if i >= len(en.params) {
				return relation.Null(), fmt.Errorf("sql: missing parameter %d", i+1)
			}
			return en.params[i], nil
		}, nil

	case *ColumnRef:
		b, err := c.resolve(x)
		if err != nil {
			return nil, err
		}
		return func(en *env) (relation.Value, error) {
			return en.frames[b.depth].rows[b.src][b.col], nil
		}, nil

	case *Unary:
		inner, err := c.compileExpr(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return func(en *env) (relation.Value, error) {
				v, err := inner(en)
				if err != nil || v.IsNull() {
					return relation.Null(), err
				}
				return relation.Bool(!v.Truth()), nil
			}, nil
		case "-":
			return func(en *env) (relation.Value, error) {
				v, err := inner(en)
				if err != nil || v.IsNull() {
					return relation.Null(), err
				}
				if v.K == relation.KindFloat {
					return relation.Float(-v.F), nil
				}
				return relation.Int(-v.I), nil
			}, nil
		default:
			return nil, fmt.Errorf("sql: unknown unary op %s", x.Op)
		}

	case *Binary:
		return c.compileBinary(x)

	case *IsNull:
		inner, err := c.compileExpr(x.X)
		if err != nil {
			return nil, err
		}
		neg := x.Neg
		return func(en *env) (relation.Value, error) {
			v, err := inner(en)
			if err != nil {
				return relation.Null(), err
			}
			return relation.Bool(v.IsNull() != neg), nil
		}, nil

	case *InList:
		lhs, err := c.compileExpr(x.X)
		if err != nil {
			return nil, err
		}
		items := make([]compiledExpr, len(x.List))
		simple := true
		for i, it := range x.List {
			if items[i], err = c.compileExpr(it); err != nil {
				return nil, err
			}
			switch it.(type) {
			case *Literal, *Param:
			default:
				simple = false
			}
		}
		neg := x.Neg
		// A long list of literals/parameters (`RID IN (?, ?, …)` — the
		// parallel detector's flag writes) builds a hash set once per
		// execution instead of scanning the list per row. Literal and
		// parameter values are fixed for the execution, so the set is
		// sound to cache on the env.
		if simple && len(items) >= inListHashThreshold {
			return func(en *env) (relation.Value, error) {
				b := en.inLists[x]
				if b == nil {
					if en.inLists == nil {
						en.inLists = make(map[*InList]*inBuild)
					}
					b = &inBuild{set: make(map[string]bool, len(items))}
					var err error
					if b.hasNull, err = buildInSet(en, items, b.set); err != nil {
						return relation.Null(), err
					}
					en.inLists[x] = b
				}
				v, err := lhs(en)
				if err != nil {
					return relation.Null(), err
				}
				if v.IsNull() {
					return relation.Null(), nil
				}
				if b.set[v.Key()] {
					return relation.Bool(!neg), nil
				}
				if b.hasNull {
					return relation.Null(), nil
				}
				return relation.Bool(neg), nil
			}, nil
		}
		return func(en *env) (relation.Value, error) {
			v, err := lhs(en)
			if err != nil {
				return relation.Null(), err
			}
			if v.IsNull() {
				return relation.Null(), nil
			}
			sawNull := false
			for _, it := range items {
				w, err := it(en)
				if err != nil {
					return relation.Null(), err
				}
				if w.IsNull() {
					sawNull = true
					continue
				}
				if relation.Equal(v, w) {
					return relation.Bool(!neg), nil
				}
			}
			if sawNull {
				return relation.Null(), nil
			}
			return relation.Bool(neg), nil
		}, nil

	case *Like:
		lhs, err := c.compileExpr(x.X)
		if err != nil {
			return nil, err
		}
		pat, err := c.compileExpr(x.Pattern)
		if err != nil {
			return nil, err
		}
		neg := x.Neg
		return func(en *env) (relation.Value, error) {
			v, err := lhs(en)
			if err != nil {
				return relation.Null(), err
			}
			p, err := pat(en)
			if err != nil {
				return relation.Null(), err
			}
			if v.IsNull() || p.IsNull() {
				return relation.Null(), nil
			}
			ok := likeMatch(p.String(), v.String())
			return relation.Bool(ok != neg), nil
		}, nil

	case *Between:
		lhs, err := c.compileExpr(x.X)
		if err != nil {
			return nil, err
		}
		lo, err := c.compileExpr(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.compileExpr(x.Hi)
		if err != nil {
			return nil, err
		}
		neg := x.Neg
		return func(en *env) (relation.Value, error) {
			v, err := lhs(en)
			if err != nil {
				return relation.Null(), err
			}
			l, err := lo(en)
			if err != nil {
				return relation.Null(), err
			}
			h, err := hi(en)
			if err != nil {
				return relation.Null(), err
			}
			if v.IsNull() || l.IsNull() || h.IsNull() {
				return relation.Null(), nil
			}
			in := relation.Compare(v, l) >= 0 && relation.Compare(v, h) <= 0
			return relation.Bool(in != neg), nil
		}, nil

	case *Case:
		return c.compileCase(x)

	case *FuncCall:
		return c.compileFunc(x)

	case *Exists:
		return c.compileExists(x)

	case *InSelect:
		return c.compileInSelect(x)

	case *ScalarSub:
		cs, err := c.compileSubSelect(x.Sub)
		if err != nil {
			return nil, err
		}
		return func(en *env) (relation.Value, error) {
			rows, err := cs.exec(en)
			if err != nil {
				return relation.Null(), err
			}
			if len(rows) == 0 {
				return relation.Null(), nil
			}
			if len(rows) > 1 {
				return relation.Null(), fmt.Errorf("sql: scalar subquery returned %d rows", len(rows))
			}
			if len(rows[0]) != 1 {
				return relation.Null(), fmt.Errorf("sql: scalar subquery returned %d columns", len(rows[0]))
			}
			return rows[0][0], nil
		}, nil

	default:
		return nil, fmt.Errorf("sql: cannot compile %T", e)
	}
}

// inListHashThreshold is the item count at which a literal/parameter
// IN list switches from the per-row Equal scan to a Key()-hashed set.
// Equal and Key() agree on every non-NULL, non-NaN value (both are
// exact across numeric kinds; buildInSet handles the NaN carve-out),
// so the two strategies return identical rows; the batch kernel still
// mirrors the same per-size choice so batch and row execution stay
// equivalent by construction even if the semantics ever drift.
const inListHashThreshold = 8

// buildInSet evaluates a literal/parameter IN list into a lookup set —
// the single source of truth for hash-set IN semantics, shared by the
// long-list closure above and the batch kernel (kernIn). NULL items
// only set hasNull; NaN items stay out of the set entirely, because
// Equal(v, NaN) never holds while Key() would encode NaN as
// self-equal — keeping them out makes the set lookup agree with the
// short-list Equal scan exactly.
func buildInSet(en *env, items []compiledExpr, set map[string]bool) (hasNull bool, err error) {
	for _, it := range items {
		w, err := it(en)
		if err != nil {
			return false, err
		}
		if w.IsNull() {
			hasNull = true
			continue
		}
		if isNaN(w) {
			continue
		}
		set[w.Key()] = true
	}
	return hasNull, nil
}

func (c *compiler) compileBinary(x *Binary) (compiledExpr, error) {
	// AND/OR chains flatten into one n-ary closure: detection queries
	// conjoin dozens of terms, and a balanced tree of two-input
	// closures would cost a call frame per node instead of one loop.
	if x.Op == "AND" || x.Op == "OR" {
		var terms []Expr
		flattenLogical(x.Op, x, &terms)
		compiled := make([]compiledExpr, len(terms))
		for i, t := range terms {
			var err error
			if compiled[i], err = c.compileExpr(t); err != nil {
				return nil, err
			}
		}
		if x.Op == "AND" {
			return func(en *env) (relation.Value, error) {
				sawNull := false
				for _, t := range compiled {
					v, err := t(en)
					if err != nil {
						return relation.Null(), err
					}
					if v.IsNull() {
						sawNull = true
					} else if !v.Truth() {
						return relation.Bool(false), nil
					}
				}
				if sawNull {
					return relation.Null(), nil
				}
				return relation.Bool(true), nil
			}, nil
		}
		return func(en *env) (relation.Value, error) {
			sawNull := false
			for _, t := range compiled {
				v, err := t(en)
				if err != nil {
					return relation.Null(), err
				}
				if v.Truth() {
					return relation.Bool(true), nil
				}
				if v.IsNull() {
					sawNull = true
				}
			}
			if sawNull {
				return relation.Null(), nil
			}
			return relation.Bool(false), nil
		}, nil
	}

	if fast, err := c.fastCompare(x); err != nil {
		return nil, err
	} else if fast != nil {
		return fast, nil
	}
	l, err := c.compileExpr(x.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compileExpr(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		op := x.Op
		return func(en *env) (relation.Value, error) {
			lv, err := l(en)
			if err != nil {
				return relation.Null(), err
			}
			rv, err := r(en)
			if err != nil {
				return relation.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null(), nil
			}
			var res bool
			switch op {
			case "=":
				res = relation.Equal(lv, rv)
			case "<>":
				res = !relation.Equal(lv, rv)
			default:
				cmp := relation.Compare(lv, rv)
				switch op {
				case "<":
					res = cmp < 0
				case "<=":
					res = cmp <= 0
				case ">":
					res = cmp > 0
				case ">=":
					res = cmp >= 0
				}
			}
			return relation.Bool(res), nil
		}, nil
	case "+", "-", "*", "/", "%":
		op := x.Op
		return func(en *env) (relation.Value, error) {
			lv, err := l(en)
			if err != nil {
				return relation.Null(), err
			}
			rv, err := r(en)
			if err != nil {
				return relation.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null(), nil
			}
			return arith(op, lv, rv)
		}, nil
	case "||":
		return func(en *env) (relation.Value, error) {
			lv, err := l(en)
			if err != nil {
				return relation.Null(), err
			}
			rv, err := r(en)
			if err != nil {
				return relation.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null(), nil
			}
			return relation.Text(lv.String() + rv.String()), nil
		}, nil
	default:
		return nil, fmt.Errorf("sql: unknown binary op %s", x.Op)
	}
}

// flattenLogical collects the maximal same-operator chain under e.
func flattenLogical(op string, e Expr, out *[]Expr) {
	if b, ok := e.(*Binary); ok && b.Op == op {
		flattenLogical(op, b.L, out)
		flattenLogical(op, b.R, out)
		return
	}
	*out = append(*out, e)
}

// fastCompare emits a specialized closure for the ubiquitous
// column-vs-integer-literal comparison (`c.A_L <> 1`, `c.CID = 3`,
// `c.A_R > 0`, …), skipping the generic literal closure, Equal kind
// dispatch and Compare ranking. These dominate the eCFD detection
// scans, where every (tuple, pattern) pair evaluates a few dozen of
// them. Column-vs-parameter comparisons (`t.RID >= ?` — the parallel
// detector's RID-slice scans) get the same treatment with the bound
// value fetched per execution.
func (c *compiler) fastCompare(x *Binary) (compiledExpr, error) {
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return nil, nil
	}
	flip := func(op string) string {
		switch op {
		case "<":
			return ">"
		case "<=":
			return ">="
		case ">":
			return "<"
		case ">=":
			return "<="
		}
		return op
	}
	if ref, ok := x.L.(*ColumnRef); ok {
		if pr, ok := x.R.(*Param); ok {
			return c.fastCompareParam(ref, pr, x.Op)
		}
	}
	if pr, ok := x.L.(*Param); ok {
		if ref, ok := x.R.(*ColumnRef); ok {
			return c.fastCompareParam(ref, pr, flip(x.Op))
		}
	}
	ref, okL := x.L.(*ColumnRef)
	lit, okR := x.R.(*Literal)
	op := x.Op
	if !okL || !okR {
		// literal OP column: flip the operands and the comparison.
		if lit2, ok := x.L.(*Literal); ok {
			if ref2, ok := x.R.(*ColumnRef); ok {
				ref, lit, okL, okR = ref2, lit2, true, true
				op = flip(op)
			}
		}
		if !okL || !okR {
			return nil, nil
		}
	}
	if lit.Val.K != relation.KindInt {
		return nil, nil
	}
	b, err := c.resolve(ref)
	if err != nil {
		return nil, err
	}
	want := lit.Val.I
	switch op {
	case "=":
		return func(en *env) (relation.Value, error) {
			v := en.frames[b.depth].rows[b.src][b.col]
			if v.K == relation.KindInt || v.K == relation.KindBool {
				return relation.Bool(v.I == want), nil
			}
			if v.K == relation.KindNull {
				return relation.Null(), nil
			}
			return relation.Bool(relation.Equal(v, relation.Int(want))), nil
		}, nil
	case "<>":
		return func(en *env) (relation.Value, error) {
			v := en.frames[b.depth].rows[b.src][b.col]
			if v.K == relation.KindInt || v.K == relation.KindBool {
				return relation.Bool(v.I != want), nil
			}
			if v.K == relation.KindNull {
				return relation.Null(), nil
			}
			return relation.Bool(!relation.Equal(v, relation.Int(want))), nil
		}, nil
	default:
		opc := op
		return func(en *env) (relation.Value, error) {
			v := en.frames[b.depth].rows[b.src][b.col]
			if v.K == relation.KindInt || v.K == relation.KindBool {
				var res bool
				switch opc {
				case "<":
					res = v.I < want
				case "<=":
					res = v.I <= want
				case ">":
					res = v.I > want
				case ">=":
					res = v.I >= want
				}
				return relation.Bool(res), nil
			}
			if v.K == relation.KindNull {
				return relation.Null(), nil
			}
			c := relation.Compare(v, relation.Int(want))
			var res bool
			switch opc {
			case "<":
				res = c < 0
			case "<=":
				res = c <= 0
			case ">":
				res = c > 0
			case ">=":
				res = c >= 0
			}
			return relation.Bool(res), nil
		}, nil
	}
}

// fastCompareParam compiles `column OP ?`: one closure fetching the
// row value and the bound parameter directly, with an integer fast
// path and the generic Equal/Compare semantics otherwise.
func (c *compiler) fastCompareParam(ref *ColumnRef, pr *Param, op string) (compiledExpr, error) {
	b, err := c.resolve(ref)
	if err != nil {
		return nil, err
	}
	pi := pr.Index
	return func(en *env) (relation.Value, error) {
		if pi >= len(en.params) {
			return relation.Null(), fmt.Errorf("sql: missing parameter %d", pi+1)
		}
		v := en.frames[b.depth].rows[b.src][b.col]
		w := en.params[pi]
		if v.K == relation.KindNull || w.K == relation.KindNull {
			return relation.Null(), nil
		}
		if (v.K == relation.KindInt || v.K == relation.KindBool) &&
			(w.K == relation.KindInt || w.K == relation.KindBool) {
			var res bool
			switch op {
			case "=":
				res = v.I == w.I
			case "<>":
				res = v.I != w.I
			case "<":
				res = v.I < w.I
			case "<=":
				res = v.I <= w.I
			case ">":
				res = v.I > w.I
			case ">=":
				res = v.I >= w.I
			}
			return relation.Bool(res), nil
		}
		var res bool
		switch op {
		case "=":
			res = relation.Equal(v, w)
		case "<>":
			res = !relation.Equal(v, w)
		default:
			cmp := relation.Compare(v, w)
			switch op {
			case "<":
				res = cmp < 0
			case "<=":
				res = cmp <= 0
			case ">":
				res = cmp > 0
			case ">=":
				res = cmp >= 0
			}
		}
		return relation.Bool(res), nil
	}, nil
}

func arith(op string, a, b relation.Value) (relation.Value, error) {
	useFloat := a.K == relation.KindFloat || b.K == relation.KindFloat
	if op == "/" && !useFloat && b.I == 0 {
		return relation.Null(), fmt.Errorf("sql: integer division by zero")
	}
	if op == "%" {
		if b.I == 0 {
			return relation.Null(), fmt.Errorf("sql: modulo by zero")
		}
		return relation.Int(a.I % b.I), nil
	}
	if useFloat {
		af, bf := a.AsFloat(), b.AsFloat()
		switch op {
		case "+":
			return relation.Float(af + bf), nil
		case "-":
			return relation.Float(af - bf), nil
		case "*":
			return relation.Float(af * bf), nil
		case "/":
			if bf == 0 {
				return relation.Null(), fmt.Errorf("sql: division by zero")
			}
			return relation.Float(af / bf), nil
		}
	}
	switch op {
	case "+":
		return relation.Int(a.I + b.I), nil
	case "-":
		return relation.Int(a.I - b.I), nil
	case "*":
		return relation.Int(a.I * b.I), nil
	case "/":
		return relation.Int(a.I / b.I), nil
	}
	return relation.Null(), fmt.Errorf("sql: unknown arithmetic op %s", op)
}

func (c *compiler) compileCase(x *Case) (compiledExpr, error) {
	var operand compiledExpr
	var err error
	if x.Operand != nil {
		if operand, err = c.compileExpr(x.Operand); err != nil {
			return nil, err
		}
	}
	conds := make([]compiledExpr, len(x.Whens))
	results := make([]compiledExpr, len(x.Whens))
	for i, w := range x.Whens {
		if conds[i], err = c.compileExpr(w.Cond); err != nil {
			return nil, err
		}
		if results[i], err = c.compileExpr(w.Result); err != nil {
			return nil, err
		}
	}
	var elseEx compiledExpr
	if x.Else != nil {
		if elseEx, err = c.compileExpr(x.Else); err != nil {
			return nil, err
		}
	}
	// The searched one-armed CASE ... WHEN c THEN a ELSE b END is the
	// shape of the paper's '@'-blanking projections, evaluated once per
	// (tuple, pattern) pair; a direct closure skips the arm loop.
	if x.Operand == nil && len(x.Whens) == 1 && elseEx != nil {
		cond, res, alt := conds[0], results[0], elseEx
		return func(en *env) (relation.Value, error) {
			cv, err := cond(en)
			if err != nil {
				return relation.Null(), err
			}
			if cv.Truth() {
				return res(en)
			}
			return alt(en)
		}, nil
	}
	return func(en *env) (relation.Value, error) {
		var opv relation.Value
		if operand != nil {
			var err error
			if opv, err = operand(en); err != nil {
				return relation.Null(), err
			}
		}
		for i := range conds {
			cv, err := conds[i](en)
			if err != nil {
				return relation.Null(), err
			}
			hit := false
			if operand != nil {
				hit = !opv.IsNull() && !cv.IsNull() && relation.Equal(opv, cv)
			} else {
				hit = cv.Truth()
			}
			if hit {
				return results[i](en)
			}
		}
		if elseEx != nil {
			return elseEx(en)
		}
		return relation.Null(), nil
	}, nil
}

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (c *compiler) compileFunc(x *FuncCall) (compiledExpr, error) {
	if aggNames[x.Name] {
		if c.aggSink == nil {
			return nil, fmt.Errorf("sql: aggregate %s not allowed here", x.Name)
		}
		spec := &aggSpec{name: x.Name, star: x.Star, distinct: x.Distinct}
		if !x.Star {
			if len(x.Args) != 1 {
				return nil, fmt.Errorf("sql: %s takes one argument", x.Name)
			}
			// The aggregate's argument is evaluated in row context — no
			// nested aggregates.
			sink := c.aggSink
			c.aggSink = nil
			arg, err := c.compileExpr(x.Args[0])
			c.aggSink = sink
			if err != nil {
				return nil, err
			}
			spec.arg = arg
		}
		sink := c.aggSink
		idx := len(sink.specs)
		sink.specs = append(sink.specs, spec)
		cs := sink.cs
		return func(en *env) (relation.Value, error) {
			vals := en.aggs[cs]
			if idx >= len(vals) {
				return relation.Null(), fmt.Errorf("sql: aggregate evaluated outside grouping")
			}
			return vals[idx], nil
		}, nil
	}

	args := make([]compiledExpr, len(x.Args))
	for i, a := range x.Args {
		var err error
		if args[i], err = c.compileExpr(a); err != nil {
			return nil, err
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sql: %s takes %d argument(s), got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "ABS":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(en *env) (relation.Value, error) {
			v, err := args[0](en)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			if v.K == relation.KindFloat {
				return relation.Float(math.Abs(v.F)), nil
			}
			if v.I < 0 {
				return relation.Int(-v.I), nil
			}
			return relation.Int(v.I), nil
		}, nil
	case "COALESCE", "IFNULL":
		if len(args) == 0 {
			return nil, fmt.Errorf("sql: %s needs arguments", x.Name)
		}
		// COALESCE(TOTEXT(e), 'lit') is the paper's NULL-marking idiom,
		// evaluated once per (tuple, pattern) pair in the Fig. 4 macro;
		// fuse it into a single closure.
		if len(x.Args) == 2 {
			if tt, ok := x.Args[0].(*FuncCall); ok && tt.Name == "TOTEXT" && len(tt.Args) == 1 {
				if lit, ok := x.Args[1].(*Literal); ok {
					inner, err := c.compileExpr(tt.Args[0])
					if err != nil {
						return nil, err
					}
					alt := lit.Val
					return func(en *env) (relation.Value, error) {
						v, err := inner(en)
						if err != nil {
							return relation.Null(), err
						}
						if v.K == relation.KindNull {
							return alt, nil
						}
						if v.K == relation.KindText {
							return v, nil
						}
						return relation.Text(v.String()), nil
					}, nil
				}
			}
		}
		if len(args) == 2 {
			a, b := args[0], args[1]
			return func(en *env) (relation.Value, error) {
				v, err := a(en)
				if err != nil || !v.IsNull() {
					return v, err
				}
				return b(en)
			}, nil
		}
		return func(en *env) (relation.Value, error) {
			for _, a := range args {
				v, err := a(en)
				if err != nil {
					return relation.Null(), err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return relation.Null(), nil
		}, nil
	case "LENGTH":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(en *env) (relation.Value, error) {
			v, err := args[0](en)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			return relation.Int(int64(len(v.String()))), nil
		}, nil
	case "UPPER", "LOWER":
		if err := need(1); err != nil {
			return nil, err
		}
		up := x.Name == "UPPER"
		return func(en *env) (relation.Value, error) {
			v, err := args[0](en)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			s := v.String()
			if up {
				return relation.Text(strings.ToUpper(s)), nil
			}
			return relation.Text(strings.ToLower(s)), nil
		}, nil
	case "TOTEXT":
		// TOTEXT renders any value as TEXT (NULL stays NULL). The eCFD
		// detection queries use it so the '@'-blanking CASE trick of the
		// paper works over non-text attributes.
		if err := need(1); err != nil {
			return nil, err
		}
		return func(en *env) (relation.Value, error) {
			v, err := args[0](en)
			if err != nil || v.IsNull() {
				return relation.Null(), err
			}
			return relation.Text(v.String()), nil
		}, nil
	case "NULLIF":
		if err := need(2); err != nil {
			return nil, err
		}
		return func(en *env) (relation.Value, error) {
			a, err := args[0](en)
			if err != nil {
				return relation.Null(), err
			}
			b, err := args[1](en)
			if err != nil {
				return relation.Null(), err
			}
			if !a.IsNull() && !b.IsNull() && relation.Equal(a, b) {
				return relation.Null(), nil
			}
			return a, nil
		}, nil
	default:
		return nil, fmt.Errorf("sql: unknown function %s", x.Name)
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one rune).
func likeMatch(pattern, s string) bool {
	p, t := []rune(pattern), []rune(s)
	var match func(pi, ti int) bool
	match = func(pi, ti int) bool {
		for pi < len(p) {
			switch p[pi] {
			case '%':
				for skip := ti; skip <= len(t); skip++ {
					if match(pi+1, skip) {
						return true
					}
				}
				return false
			case '_':
				if ti >= len(t) {
					return false
				}
				pi, ti = pi+1, ti+1
			default:
				if ti >= len(t) || t[ti] != p[pi] {
					return false
				}
				pi, ti = pi+1, ti+1
			}
		}
		return ti == len(t)
	}
	return match(0, 0)
}
