package sqldb

import (
	"fmt"
	"sync"
	"testing"

	"ecfd/internal/relation"
)

// The concurrency suite exercises the reader/writer locking model:
// many goroutines issue SELECTs (read lock) while others run DML and
// DDL (write lock). Run with -race; the schedule is randomized by the
// runtime, the assertions only check invariants every interleaving
// must preserve.

// concTestDB builds a table of n rows plus a pattern table and an
// index, mirroring the detection workload's shape.
func concTestDB(t testing.TB, n int) *DB {
	t.Helper()
	db := NewDB()
	mustExec := func(q string, params ...relation.Value) {
		t.Helper()
		if _, err := db.Exec(q, params...); err != nil {
			t.Fatalf("exec %s: %v", q, err)
		}
	}
	mustExec("CREATE TABLE d (id INTEGER, grp INTEGER, val TEXT)")
	mustExec("CREATE TABLE p (grp INTEGER, tag TEXT)")
	mustExec("CREATE INDEX idx_p ON p (grp, tag)")
	for i := 0; i < n; i += 100 {
		q := "INSERT INTO d VALUES "
		for j := i; j < i+100 && j < n; j++ {
			if j > i {
				q += ", "
			}
			q += fmt.Sprintf("(%d, %d, 'v%d')", j, j%10, j%7)
		}
		mustExec(q)
	}
	for g := 0; g < 10; g++ {
		mustExec(fmt.Sprintf("INSERT INTO p VALUES (%d, 'v%d')", g, g%7))
	}
	return db
}

// TestConcurrentQueries runs the same prepared SELECT (with a
// decorrelated EXISTS probe over the indexed pattern table) from many
// goroutines against a quiescent database: every run must return the
// same row count.
func TestConcurrentQueries(t *testing.T) {
	db := concTestDB(t, 2_000)
	const q = "SELECT id FROM d t WHERE EXISTS (SELECT 1 FROM p s WHERE s.grp = t.grp AND s.tag = t.val)"
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("test query selects nothing; workload is vacuous")
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				res, err := db.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != len(want.Rows) {
					errs <- fmt.Errorf("got %d rows, want %d", len(res.Rows), len(want.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentMixed stresses readers against writers and DDL: the
// reader invariant is that the aggregate query always sees a
// consistent statement-level snapshot (COUNT(*) equals the sum of the
// per-group counts it returns), whatever the interleaving.
func TestConcurrentMixed(t *testing.T) {
	db := concTestDB(t, 1_000)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	stop := make(chan struct{})

	// Readers: grouped aggregate + EXISTS probe queries.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				total, err := db.Query("SELECT COUNT(*) FROM d")
				if err != nil {
					errs <- err
					return
				}
				per, err := db.Query("SELECT grp, COUNT(*) FROM d GROUP BY grp")
				if err != nil {
					errs <- err
					return
				}
				var sum int64
				for _, row := range per.Rows {
					sum += row[1].I
				}
				// The two statements run under separate read locks, so
				// they may see different snapshots; each must be
				// internally consistent (non-negative, bounded by the
				// rows ever inserted).
				if total.Rows[0][0].I < 0 || sum < 0 {
					errs <- fmt.Errorf("negative count: total %d, sum %d", total.Rows[0][0].I, sum)
					return
				}
				if _, err := db.Query(
					"SELECT id FROM d t WHERE EXISTS (SELECT 1 FROM p s WHERE s.grp = t.grp AND s.tag = t.val)"); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}

	// Writer: inserts, updates, deletes — invalidating the index and
	// the per-statement hash builds underneath the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 40; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO d VALUES (%d, %d, 'v%d')", 10_000+i, i%10, i%7)); err != nil {
				errs <- err
				return
			}
			if _, err := db.Exec("UPDATE d SET val = 'w' WHERE id = ?", relation.Int(int64(10_000+i))); err != nil {
				errs <- err
				return
			}
			if i%4 == 0 {
				if _, err := db.Exec("DELETE FROM d WHERE id = ?", relation.Int(int64(10_000+i))); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	// DDL: create/drop a side table and re-create an index, bumping
	// ddlVersion so readers recompile plans mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if _, err := db.Exec(fmt.Sprintf("CREATE TABLE side%d (x INTEGER)", i)); err != nil {
				errs <- err
				return
			}
			if _, err := db.Exec(fmt.Sprintf("DROP TABLE side%d", i)); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentPreparedReuse checks that one shared Prepared (one
// compiled plan) is safe to execute from many goroutines at once —
// plans must keep all per-execution state on the env.
func TestConcurrentPreparedReuse(t *testing.T) {
	db := concTestDB(t, 1_000)
	p, err := db.Prepare("SELECT COUNT(*) FROM d t WHERE EXISTS (SELECT 1 FROM p s WHERE s.grp = t.grp AND s.tag = t.val) AND t.id >= ?")
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Query(relation.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := p.Query(relation.Int(0))
				if err != nil {
					errs <- err
					return
				}
				if res.Rows[0][0].I != want.Rows[0][0].I {
					errs <- fmt.Errorf("got %d, want %d", res.Rows[0][0].I, want.Rows[0][0].I)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentIndexRebuildRace forces many readers to race to the
// first index probe after a mutation marked it dirty: exactly the
// double-checked rebuild path in Index.lookup.
func TestConcurrentIndexRebuildRace(t *testing.T) {
	db := concTestDB(t, 500)
	const q = "SELECT COUNT(*) FROM d t WHERE EXISTS (SELECT 1 FROM p s WHERE s.grp = t.grp AND s.tag = t.val)"
	for round := 0; round < 10; round++ {
		// Dirty the index under the write lock…
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO p VALUES (%d, 'x%d')", 100+round, round)); err != nil {
			t.Fatal(err)
		}
		// …then stampede it with concurrent probes.
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := db.Query(q); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}
