package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"ecfd/internal/relation"
)

// DML statements compile into reusable plans (the prepared-statement
// and plan-cache layers hold them across executions) and run in a
// separate phase, mirroring the compile/exec split of SELECT. All DML
// executes under db.mu against the writer's in-progress epoch
// (db.curW): it evaluates against the epoch's frozen row slices, then
// applies through a copy-on-write transition (applyAppend /
// applyUpdate / applyDelete) that forks a new epoch off to the side.
// Concurrent readers keep scanning their pinned epochs untouched; the
// two-phase evaluate/apply split below is about the statement seeing
// its own target consistently.

// coerce converts v to the column kind, erring on lossy mismatches.
func coerce(v relation.Value, k relation.Kind, col string) (relation.Value, error) {
	if v.IsNull() || v.K == k {
		return v, nil
	}
	switch k {
	case relation.KindFloat:
		if v.K == relation.KindInt || v.K == relation.KindBool {
			return relation.Float(v.AsFloat()), nil
		}
	case relation.KindInt:
		if v.K == relation.KindBool {
			return relation.Int(v.I), nil
		}
		if v.K == relation.KindFloat && v.F == float64(int64(v.F)) {
			return relation.Int(int64(v.F)), nil
		}
	case relation.KindBool:
		if v.K == relation.KindInt && (v.I == 0 || v.I == 1) {
			return relation.Bool(v.I == 1), nil
		}
	case relation.KindText:
		// Text columns accept anything printable; this mirrors the lax
		// typing of the CSV-shaped experimental data.
		return relation.Text(v.String()), nil
	}
	return relation.Null(), fmt.Errorf("sql: cannot store %s value %s in %s column %s", v.K, v, k, col)
}

// --- INSERT ---

type insertPlan struct {
	t     *Table
	table string
	pos   []int // schema position per inserted column
	query *compiledSelect
	rows  [][]compiledExpr
}

func (db *DB) compileInsert(ins *Insert, ep *epoch) (*insertPlan, error) {
	t, err := ep.table(ins.Table)
	if err != nil {
		return nil, err
	}
	p := &insertPlan{t: t, table: ins.Table}

	// Map the column list (or the full schema) to schema positions.
	if len(ins.Cols) == 0 {
		for i := range t.Schema.Attrs {
			p.pos = append(p.pos, i)
		}
	} else {
		for _, cname := range ins.Cols {
			j := t.Schema.Index(cname)
			if j < 0 {
				return nil, fmt.Errorf("sql: no column %s in %s", cname, ins.Table)
			}
			p.pos = append(p.pos, j)
		}
	}

	if ins.Query != nil {
		c := &compiler{db: db, ep: ep}
		if p.query, err = c.compileSubSelect(ins.Query); err != nil {
			return nil, err
		}
		return p, nil
	}
	c := &compiler{db: db, ep: ep}
	p.rows = make([][]compiledExpr, len(ins.Rows))
	for ri, exprRow := range ins.Rows {
		p.rows[ri] = make([]compiledExpr, len(exprRow))
		for i, e := range exprRow {
			if p.rows[ri][i], err = c.compileExpr(e); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

func (db *DB) runInsert(p *insertPlan, params []relation.Value) (int64, error) {
	if err := db.writable(); err != nil {
		return 0, err
	}
	t := p.t
	build := func(vals []relation.Value) (relation.Tuple, error) {
		if len(vals) != len(p.pos) {
			return nil, fmt.Errorf("sql: INSERT into %s: %d values for %d columns", p.table, len(vals), len(p.pos))
		}
		row := make(relation.Tuple, t.Schema.Width())
		for i, j := range p.pos {
			v, err := coerce(vals[i], t.Schema.Attrs[j].Kind, t.Schema.Attrs[j].Name)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		return row, nil
	}

	var newRows []relation.Tuple
	en := newEnv(db, db.curW, params)
	if p.query != nil {
		rows, err := p.query.exec(en)
		if err != nil {
			return 0, err
		}
		for _, r := range rows {
			row, err := build(r)
			if err != nil {
				return 0, err
			}
			newRows = append(newRows, row)
		}
	} else {
		vals := make([]relation.Value, 0, len(p.pos))
		for _, exprRow := range p.rows {
			vals = vals[:0]
			for _, ce := range exprRow {
				v, err := ce(en)
				if err != nil {
					return 0, err
				}
				vals = append(vals, v)
			}
			row, err := build(vals)
			if err != nil {
				return 0, err
			}
			newRows = append(newRows, row)
		}
	}

	if err := db.logInsert(t.Name, newRows); err != nil {
		return 0, err
	}
	db.backupForTx(t)
	db.applyAppend(t, newRows)
	return int64(len(newRows)), nil
}

func (db *DB) execInsert(ins *Insert, params []relation.Value) (int64, error) {
	p, err := db.compileInsert(ins, db.curW)
	if err != nil {
		return 0, err
	}
	return db.runInsert(p, params)
}

// --- UPDATE ---

type setter struct {
	col int
	ex  compiledExpr
	// isConst marks a literal assignment (SET SV = 0); the coerced
	// value is computed at compile time and shared by every changed
	// row, so flag resets do not evaluate or allocate per row.
	isConst  bool
	constVal relation.Value
}

type updatePlan struct {
	t       *Table
	table   string
	where   compiledExpr
	setters []setter
	// semi, when non-nil, is the joint semi-join select over
	// [target] + EXISTS-subquery sources: running it and collecting the
	// distinct target row indices is equivalent to filtering rows with
	// the WHERE clause, but lets the planner drive the join from the
	// small side (the paper's pattern tables) instead of probing the
	// EXISTS once per data row.
	semi *compiledSelect
	// filterSel is the planned single-source select over the target with
	// the same WHERE: when the semi-join path is not taken, the row
	// selection runs through the batched executor (kernel filters over
	// the column vectors, e.g. the detector's RID-slice and MV = 0
	// guards) instead of the per-row closure loop. nil when the WHERE
	// does not plan; the closure loop remains the fallback.
	filterSel *compiledSelect
}

// disableSemiJoinUpdate / forceSemiJoinUpdate are test hooks for the
// differential suite; production code leaves both false.
var (
	disableSemiJoinUpdate = false
	forceSemiJoinUpdate   = false
)

func (db *DB) compileUpdate(up *Update, ep *epoch) (*updatePlan, error) {
	t, err := ep.table(up.Table)
	if err != nil {
		return nil, err
	}
	name := up.Alias
	if name == "" {
		name = up.Table
	}
	c := &compiler{db: db, ep: ep, scopes: []*scopeInfo{
		{sources: []sourceInfo{{name: name, cols: t.Schema.Names()}}},
	}}

	p := &updatePlan{t: t, table: up.Table}
	if up.Where != nil {
		if p.where, err = c.compileExpr(up.Where); err != nil {
			return nil, err
		}
	}
	p.setters = make([]setter, len(up.Set))
	for i, a := range up.Set {
		j := t.Schema.Index(a.Column)
		if j < 0 {
			return nil, fmt.Errorf("sql: no column %s in %s", a.Column, up.Table)
		}
		ex, err := c.compileExpr(a.Value)
		if err != nil {
			return nil, err
		}
		p.setters[i] = setter{col: j, ex: ex}
		if lit, ok := a.Value.(*Literal); ok {
			if cv, err := coerce(lit.Val, t.Schema.Attrs[j].Kind, t.Schema.Attrs[j].Name); err == nil {
				p.setters[i].isConst = true
				p.setters[i].constVal = cv
			}
		}
	}
	p.semi = db.trySemiJoinUpdate(up, name, ep)
	if up.Where != nil {
		synth := &Select{
			Exprs: []SelectExpr{{Expr: &Literal{Val: relation.Int(1)}}},
			From:  []TableRef{{Table: up.Table, Alias: up.Alias}},
			Where: up.Where,
		}
		fc := &compiler{db: db, ep: ep}
		if cs, err := fc.compileSubSelect(synth); err == nil && cs.planOK && !cs.grouped {
			p.filterSel = cs
		}
	}
	return p, nil
}

// trySemiJoinUpdate builds the joint semi-join select for an UPDATE
// whose WHERE contains a plain EXISTS over base tables. Returns nil
// when the shape does not qualify; the row-filter path then applies.
func (db *DB) trySemiJoinUpdate(up *Update, name string, ep *epoch) *compiledSelect {
	if up.Where == nil {
		return nil
	}
	var conjs []Expr
	splitConjuncts(up.Where, &conjs)
	exIdx := -1
	var sub *Select
	for i, cj := range conjs {
		ex, ok := cj.(*Exists)
		if !ok || ex.Neg || !semiJoinable(ex.Sub) {
			continue
		}
		collides := false
		for _, tr := range ex.Sub.From {
			if strings.EqualFold(tr.Name(), name) {
				collides = true
				break
			}
		}
		if collides {
			continue
		}
		exIdx, sub = i, ex.Sub
		break
	}
	if exIdx < 0 {
		return nil
	}
	where := sub.Where
	for i, cj := range conjs {
		if i == exIdx {
			continue
		}
		if where == nil {
			where = cj
		} else {
			where = &Binary{Op: "AND", L: where, R: cj}
		}
	}
	synth := &Select{
		Exprs: []SelectExpr{{Expr: &Literal{Val: relation.Int(1)}}},
		From:  append([]TableRef{{Table: up.Table, Alias: up.Alias}}, sub.From...),
		Where: where,
	}
	c := &compiler{db: db, ep: ep}
	cs, err := c.compileSubSelect(synth)
	if err != nil || !cs.planOK {
		// Merging scopes can introduce ambiguities the nested form did
		// not have (unqualified names resolving into both scopes); the
		// row-filter path stays available.
		return nil
	}
	return cs
}

// semiJoinable reports whether an EXISTS subquery can be folded into a
// joint join: base tables only, no grouping/aggregation/limit (those
// change emptiness semantics or row multiplicity guarantees).
func semiJoinable(sub *Select) bool {
	if len(sub.From) == 0 || len(sub.GroupBy) > 0 || sub.Having != nil ||
		sub.Limit != nil || sub.Offset != nil || selectHasAggregate(sub) {
		return false
	}
	for _, tr := range sub.From {
		if tr.Sub != nil {
			return false
		}
	}
	return true
}

// useSemiJoin reports whether the update would take the semi-join
// path given the epoch's table sizes: worth it when a subquery source
// is meaningfully smaller than the target, so the join is driven from
// that side instead of probing the EXISTS once per target row. Shared
// by runUpdate (against db.curW) and EXPLAIN (against a pinned
// snapshot) so the reported access path is the one that actually
// executes.
func (p *updatePlan) useSemiJoin(ep *epoch) bool {
	if p.semi == nil || DisablePlanner || disableSemiJoinUpdate {
		return false
	}
	target := len(ep.tds[p.t].rows)
	minSub := target + 1
	for _, src := range p.semi.sources[1:] {
		if n := len(ep.tds[src.table].rows); n < minSub {
			minSub = n
		}
	}
	return forceSemiJoinUpdate || minSub*4 <= target
}

func (db *DB) runUpdate(p *updatePlan, params []relation.Value) (int64, error) {
	if err := db.writable(); err != nil {
		return 0, err
	}
	t := p.t
	// Two phases: evaluate against the unmodified epoch, then apply a
	// copy-on-write transition, so the statement sees a consistent
	// snapshot of its own target.
	tRows := db.curW.tds[t].rows
	en := newEnv(db, db.curW, params)
	en.frames = append(en.frames, frame{rows: make([]relation.Tuple, 1)})
	fr := &en.frames[0]
	type change struct {
		ri   int
		vals []relation.Value
	}
	var changes []change
	allConst := true
	for _, s := range p.setters {
		if !s.isConst {
			allConst = false
			break
		}
	}
	var constVals []relation.Value
	if allConst {
		constVals = make([]relation.Value, len(p.setters))
		for i, s := range p.setters {
			constVals[i] = s.constVal
		}
	}
	evalRow := func(ri int) error {
		if allConst {
			changes = append(changes, change{ri: ri, vals: constVals})
			return nil
		}
		vals := make([]relation.Value, len(p.setters))
		for i, s := range p.setters {
			if s.isConst {
				vals[i] = s.constVal
				continue
			}
			v, err := s.ex(en)
			if err != nil {
				return err
			}
			if vals[i], err = coerce(v, t.Schema.Attrs[s.col].Kind, t.Schema.Attrs[s.col].Name); err != nil {
				return err
			}
		}
		changes = append(changes, change{ri: ri, vals: vals})
		return nil
	}

	useSemi := p.useSemiJoin(db.curW)

	// Planned row selection: semi-join (the target joins the EXISTS
	// sources, driven from the small side) or the single-source batched
	// scan (simple WHERE conjuncts run as kernel filters). Both collect
	// the distinct target row indices, deduped and sorted — evalRow and
	// the index-maintenance bracket below depend on ascending, unique
	// positions regardless of the scan's visit order.
	var sel *compiledSelect
	switch {
	case useSemi:
		sel = p.semi
	case p.filterSel != nil && !DisablePlanner:
		sel = p.filterSel
	}
	if sel != nil {
		sen := newEnv(db, db.curW, params)
		matched := make(map[int]bool)
		err := sel.semiScan(sen, func(idx []int) error {
			matched[idx[0]] = true
			return nil
		})
		if err != nil {
			return 0, err
		}
		ris := make([]int, 0, len(matched))
		for ri := range matched {
			ris = append(ris, ri)
		}
		sort.Ints(ris)
		for _, ri := range ris {
			fr.rows[0] = tRows[ri]
			if err := evalRow(ri); err != nil {
				return 0, err
			}
		}
	} else {
		for ri, row := range tRows {
			fr.rows[0] = row
			if p.where != nil {
				v, err := p.where(en)
				if err != nil {
					return 0, err
				}
				if !v.Truth() {
					continue
				}
			}
			if err := evalRow(ri); err != nil {
				return 0, err
			}
		}
	}

	if len(changes) == 0 {
		return 0, nil
	}
	// applyUpdate forks the next epoch copy-on-write: changed tuples are
	// cloned and patched, shared structures (column vectors, indexes)
	// fork only where the assigned columns overlap — so a flag update
	// never touches a RID index, mirroring the old incremental
	// maintenance. changes is ascending in ri on both the semi-join and
	// the filter path.
	pos := make([]int, len(changes))
	vals := make([][]relation.Value, len(changes))
	for i, ch := range changes {
		pos[i] = ch.ri
		vals[i] = ch.vals
	}
	setCols := make([]int, len(p.setters))
	for i, s := range p.setters {
		setCols[i] = s.col
	}
	if err := db.logUpdate(t.Name, pos, setCols, vals); err != nil {
		return 0, err
	}
	db.backupForTx(t)
	db.applyUpdate(t, pos, setCols, vals)
	return int64(len(changes)), nil
}

func (db *DB) execUpdate(up *Update, params []relation.Value) (int64, error) {
	p, err := db.compileUpdate(up, db.curW)
	if err != nil {
		return 0, err
	}
	return db.runUpdate(p, params)
}

// --- DELETE ---

type deletePlan struct {
	t     *Table
	where compiledExpr
}

func (db *DB) compileDelete(del *Delete, ep *epoch) (*deletePlan, error) {
	t, err := ep.table(del.Table)
	if err != nil {
		return nil, err
	}
	name := del.Alias
	if name == "" {
		name = del.Table
	}
	c := &compiler{db: db, ep: ep, scopes: []*scopeInfo{
		{sources: []sourceInfo{{name: name, cols: t.Schema.Names()}}},
	}}
	p := &deletePlan{t: t}
	if del.Where != nil {
		if p.where, err = c.compileExpr(del.Where); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (db *DB) runDelete(p *deletePlan, params []relation.Value) (int64, error) {
	if err := db.writable(); err != nil {
		return 0, err
	}
	t := p.t
	en := newEnv(db, db.curW, params)
	en.frames = append(en.frames, frame{rows: make([]relation.Tuple, 1)})
	fr := &en.frames[0]
	var dropped []int
	for ri, row := range db.curW.tds[t].rows {
		drop := true
		if p.where != nil {
			fr.rows[0] = row
			v, err := p.where(en)
			if err != nil {
				return 0, err
			}
			drop = v.Truth()
		}
		if drop {
			dropped = append(dropped, ri)
		}
	}
	if len(dropped) == 0 {
		return 0, nil
	}
	if err := db.logDelete(t.Name, dropped); err != nil {
		return 0, err
	}
	db.backupForTx(t)
	// dropped is ascending by construction; applyDelete compacts the
	// rows copy-on-write and filters/remaps built indexes instead of
	// rebuilding (a one-row DELETE costs one pass of integer rewrites,
	// no key encoding or re-sort).
	db.applyDelete(t, dropped)
	return int64(len(dropped)), nil
}

func (db *DB) execDelete(del *Delete, params []relation.Value) (int64, error) {
	p, err := db.compileDelete(del, db.curW)
	if err != nil {
		return 0, err
	}
	return db.runDelete(p, params)
}
