package sqldb

import (
	"fmt"

	"ecfd/internal/relation"
)

// coerce converts v to the column kind, erring on lossy mismatches.
func coerce(v relation.Value, k relation.Kind, col string) (relation.Value, error) {
	if v.IsNull() || v.K == k {
		return v, nil
	}
	switch k {
	case relation.KindFloat:
		if v.K == relation.KindInt || v.K == relation.KindBool {
			return relation.Float(v.AsFloat()), nil
		}
	case relation.KindInt:
		if v.K == relation.KindBool {
			return relation.Int(v.I), nil
		}
		if v.K == relation.KindFloat && v.F == float64(int64(v.F)) {
			return relation.Int(int64(v.F)), nil
		}
	case relation.KindBool:
		if v.K == relation.KindInt && (v.I == 0 || v.I == 1) {
			return relation.Bool(v.I == 1), nil
		}
	case relation.KindText:
		// Text columns accept anything printable; this mirrors the lax
		// typing of the CSV-shaped experimental data.
		return relation.Text(v.String()), nil
	}
	return relation.Null(), fmt.Errorf("sql: cannot store %s value %s in %s column %s", v.K, v, k, col)
}

func (db *DB) execInsert(ins *Insert, params []relation.Value) (int64, error) {
	t, err := db.table(ins.Table)
	if err != nil {
		return 0, err
	}

	// Map the column list (or the full schema) to schema positions.
	cols := ins.Cols
	pos := make([]int, 0, len(cols))
	if len(cols) == 0 {
		for i := range t.Schema.Attrs {
			pos = append(pos, i)
		}
	} else {
		for _, cname := range cols {
			j := t.Schema.Index(cname)
			if j < 0 {
				return 0, fmt.Errorf("sql: no column %s in %s", cname, ins.Table)
			}
			pos = append(pos, j)
		}
	}

	build := func(vals []relation.Value) (relation.Tuple, error) {
		if len(vals) != len(pos) {
			return nil, fmt.Errorf("sql: INSERT into %s: %d values for %d columns", ins.Table, len(vals), len(pos))
		}
		row := make(relation.Tuple, t.Schema.Width())
		for i, j := range pos {
			v, err := coerce(vals[i], t.Schema.Attrs[j].Kind, t.Schema.Attrs[j].Name)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		return row, nil
	}

	var newRows []relation.Tuple
	switch {
	case ins.Query != nil:
		res, err := db.execSelect(ins.Query, params)
		if err != nil {
			return 0, err
		}
		for _, r := range res.Rows {
			row, err := build(r)
			if err != nil {
				return 0, err
			}
			newRows = append(newRows, row)
		}
	default:
		c := &compiler{db: db}
		en := newEnv(db, params)
		for _, exprRow := range ins.Rows {
			vals := make([]relation.Value, len(exprRow))
			for i, e := range exprRow {
				ce, err := c.compileExpr(e)
				if err != nil {
					return 0, err
				}
				if vals[i], err = ce(en); err != nil {
					return 0, err
				}
			}
			row, err := build(vals)
			if err != nil {
				return 0, err
			}
			newRows = append(newRows, row)
		}
	}

	db.backupForTx(t)
	t.Rows = append(t.Rows, newRows...)
	t.mutated()
	return int64(len(newRows)), nil
}

func (db *DB) execUpdate(up *Update, params []relation.Value) (int64, error) {
	t, err := db.table(up.Table)
	if err != nil {
		return 0, err
	}
	name := up.Alias
	if name == "" {
		name = up.Table
	}
	c := &compiler{db: db, scopes: []*scopeInfo{
		{sources: []sourceInfo{{name: name, cols: t.Schema.Names()}}},
	}}

	var where compiledExpr
	if up.Where != nil {
		if where, err = c.compileExpr(up.Where); err != nil {
			return 0, err
		}
	}
	type setter struct {
		col int
		ex  compiledExpr
	}
	setters := make([]setter, len(up.Set))
	for i, a := range up.Set {
		j := t.Schema.Index(a.Column)
		if j < 0 {
			return 0, fmt.Errorf("sql: no column %s in %s", a.Column, up.Table)
		}
		ex, err := c.compileExpr(a.Value)
		if err != nil {
			return 0, err
		}
		setters[i] = setter{col: j, ex: ex}
	}

	// Two phases: evaluate against the unmodified table, then apply, so
	// the statement sees a consistent snapshot.
	en := newEnv(db, params)
	en.frames = append(en.frames, frame{rows: make([]relation.Tuple, 1)})
	fr := &en.frames[0]
	type change struct {
		ri   int
		vals []relation.Value
	}
	var changes []change
	for ri, row := range t.Rows {
		fr.rows[0] = row
		if where != nil {
			v, err := where(en)
			if err != nil {
				return 0, err
			}
			if !v.Truth() {
				continue
			}
		}
		vals := make([]relation.Value, len(setters))
		for i, s := range setters {
			v, err := s.ex(en)
			if err != nil {
				return 0, err
			}
			if vals[i], err = coerce(v, t.Schema.Attrs[s.col].Kind, t.Schema.Attrs[s.col].Name); err != nil {
				return 0, err
			}
		}
		changes = append(changes, change{ri: ri, vals: vals})
	}
	if len(changes) == 0 {
		return 0, nil
	}
	db.backupForTx(t)
	for _, ch := range changes {
		for i, s := range setters {
			t.Rows[ch.ri][s.col] = ch.vals[i]
		}
	}
	t.mutated()
	return int64(len(changes)), nil
}

func (db *DB) execDelete(del *Delete, params []relation.Value) (int64, error) {
	t, err := db.table(del.Table)
	if err != nil {
		return 0, err
	}
	name := del.Alias
	if name == "" {
		name = del.Table
	}
	c := &compiler{db: db, scopes: []*scopeInfo{
		{sources: []sourceInfo{{name: name, cols: t.Schema.Names()}}},
	}}
	var where compiledExpr
	if del.Where != nil {
		if where, err = c.compileExpr(del.Where); err != nil {
			return 0, err
		}
	}

	en := newEnv(db, params)
	en.frames = append(en.frames, frame{rows: make([]relation.Tuple, 1)})
	fr := &en.frames[0]
	keep := t.Rows[:0:0]
	var deleted int64
	for _, row := range t.Rows {
		drop := true
		if where != nil {
			fr.rows[0] = row
			v, err := where(en)
			if err != nil {
				return 0, err
			}
			drop = v.Truth()
		}
		if drop {
			deleted++
		} else {
			keep = append(keep, row)
		}
	}
	if deleted == 0 {
		return 0, nil
	}
	db.backupForTx(t)
	t.Rows = keep
	t.mutated()
	return deleted, nil
}
