package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"ecfd/internal/relation"
)

// Result is the output of a query: column names plus materialized rows.
type Result struct {
	Cols []string
	Rows []relation.Tuple
}

// Query runs a SELECT through the plan cache: the statement text is
// parsed and compiled at most once per catalog version.
func (db *DB) Query(sqlText string, params ...relation.Value) (*Result, error) {
	p, err := db.Prepare(sqlText)
	if err != nil {
		return nil, err
	}
	return p.Query(params...)
}

// Exec runs one or more statements separated by semicolons through the
// plan cache, returning the total number of affected rows.
func (db *DB) Exec(sqlText string, params ...relation.Value) (int64, error) {
	p, err := db.Prepare(sqlText)
	if err != nil {
		return 0, err
	}
	return p.Exec(params...)
}

// QueryStmt runs a parsed SELECT. Like Prepared.Query it pins the
// current epoch and takes no lock, so queries execute concurrently
// with each other and with writers.
func (db *DB) QueryStmt(sel *Select, params ...relation.Value) (*Result, error) {
	ep := db.pin()
	defer db.unpin(ep)
	return db.execSelect(sel, params, ep)
}

// ExecStmt runs one parsed statement. If the statement's WAL unit
// joined a group commit, the statement waits for the group fsync
// (outside db.mu) before acknowledging.
func (db *DB) ExecStmt(stmt Statement, params ...relation.Value) (int64, error) {
	db.mu.Lock()
	n, err := db.execStmtLocked(stmt, params)
	p := db.takePending()
	db.mu.Unlock()
	if p != nil {
		if werr := db.awaitDurable(p); werr != nil && err == nil {
			return 0, werr
		}
	}
	return n, err
}

func (db *DB) execStmtLocked(stmt Statement, params []relation.Value) (int64, error) {
	switch s := stmt.(type) {
	case *CreateTable:
		db.mu.Unlock()
		err := db.CreateTable(s.Name, s.Cols, s.IfNotExists)
		db.mu.Lock()
		return 0, err
	case *CreateIndex:
		db.mu.Unlock()
		err := db.CreateIndex(s.Name, s.Table, s.Cols)
		db.mu.Lock()
		return 0, err
	case *DropTable:
		db.mu.Unlock()
		err := db.DropTable(s.Name, s.IfExists)
		db.mu.Lock()
		return 0, err
	case *TruncateTable:
		if err := db.writable(); err != nil {
			return 0, err
		}
		t, err := db.table(s.Name)
		if err != nil {
			return 0, err
		}
		if err := db.logTruncate(t.Name); err != nil {
			return 0, err
		}
		db.backupForTx(t)
		n := int64(len(db.curW.tds[t].rows))
		db.applyTruncate(t)
		return n, nil
	case *Insert:
		return db.execInsert(s, params)
	case *Update:
		return db.execUpdate(s, params)
	case *Delete:
		return db.execDelete(s, params)
	case *Select:
		res, err := db.execSelect(s, params, db.curW)
		if err != nil {
			return 0, err
		}
		return int64(len(res.Rows)), nil
	default:
		return 0, fmt.Errorf("sql: unhandled statement %T", stmt)
	}
}

// --- SELECT ---

type compiledSelect struct {
	depth    int
	sources  []compiledSource
	srcNames []string
	where    compiledExpr
	// planner decomposition of WHERE; planOK false falls back to the
	// nested loop evaluating the monolithic where closure.
	conjs    []*planConjunct
	nTerms   int
	planOK   bool
	grouped  bool
	groupBy  []compiledExpr
	having   compiledExpr
	aggs     []*aggSpec
	cols     []string
	outs     []compiledExpr
	distinct bool
	orderBy  []compiledOrder
	limit    compiledExpr
	offset   compiledExpr
	// Index-served ORDER BY candidate: when ordSrc >= 0, the ORDER BY
	// keys are plain columns ordCols of that (single, base-table)
	// source in one uniform direction. buildSchedule checks for an
	// index with that column prefix and, if the level takes no equality
	// probe, iterates it in order so exec skips the sort.
	ordSrc  int
	ordCols []int
	ordDesc bool
	// proj, when non-nil, is the batch-aware projection plan: output
	// parts invariant in one source's row (the detection queries'
	// pattern site) replay from a per-site-row cache instead of
	// re-evaluating per emitted row. Built for ungrouped selects only.
	proj *projSpec
	// Group-key spine sharing: when spineSub is non-nil, this grouped
	// select's GROUP BY is exactly the first spineCols output columns
	// (in order) of its single derived DISTINCT source, it has no WHERE
	// of its own, and the source dedupes inline — so the group key of
	// every input row is a byte prefix of the dedup key the source
	// already encoded. exec asks the source to record those prefixes
	// (env.spineWant/spine) and execGrouped groups on them directly.
	// The Qmv grouping re-hashes a 10-column subset of the macro's
	// 19-column DISTINCT key; this elides that second encoding pass.
	spineSub  *compiledSelect
	spineCols int
}

// errFound is the sentinel execExists uses to abort the join loop at
// the first produced row.
var errFound = fmt.Errorf("sqldb: row found")

// execExists reports whether the select yields at least one row,
// without materializing output rows. Grouped or derived-table shapes
// fall back to full execution.
func (cs *compiledSelect) execExists(en *env) (bool, error) {
	if cs.grouped || cs.limit != nil || cs.offset != nil {
		rows, err := cs.exec(en)
		return len(rows) > 0, err
	}
	for _, src := range cs.sources {
		if src.sub != nil {
			rows, err := cs.exec(en)
			return len(rows) > 0, err
		}
	}
	if len(en.frames) != cs.depth {
		return false, fmt.Errorf("sql: internal: frame depth %d, want %d", len(en.frames), cs.depth)
	}
	srcRows := make([][]relation.Tuple, len(cs.sources))
	for i, src := range cs.sources {
		srcRows[i] = en.rows(src.table)
	}
	en.frames = append(en.frames, frame{rows: en.scratchFor(cs)})
	var err error
	if DisablePlanner || !cs.planOK {
		err = cs.joinLoop(en, srcRows, 0, func() error { return errFound })
	} else {
		sch := en.scheduleFor(cs, srcRows)
		err = cs.runPlan(en, sch, srcRows, yieldFound)
	}
	en.frames = en.frames[:cs.depth]
	if err == errFound {
		return true, nil
	}
	return false, err
}

type compiledOrder struct {
	ex      compiledExpr
	ordinal int // 1-based output column when > 0
	desc    bool
}

type compiledSource struct {
	table *Table
	sub   *compiledSelect
	width int
}

// execSelect compiles and runs a select at the top level against one
// epoch (a reader's pinned snapshot, or the writer head for selects
// inside mutating scripts).
func (db *DB) execSelect(sel *Select, params []relation.Value, ep *epoch) (*Result, error) {
	c := &compiler{db: db, ep: ep}
	cs, err := c.compileSubSelect(sel)
	if err != nil {
		return nil, err
	}
	en := newEnv(db, ep, params)
	rows, err := cs.exec(en)
	if err != nil {
		return nil, err
	}
	return &Result{Cols: cs.cols, Rows: rows}, nil
}

func newEnv(db *DB, ep *epoch, params []relation.Value) *env {
	return &env{
		db:     db,
		ep:     ep,
		params: params,
		aggs:   make(map[*compiledSelect][]relation.Value),
		hash:   make(map[*Exists]*hashBuild),
		inSets: make(map[*InSelect]*inBuild),
	}
}

// compileSubSelect compiles sel in a child scope of the compiler's
// current scope stack.
func (c *compiler) compileSubSelect(sel *Select) (*compiledSelect, error) {
	scope, err := c.scopeFor(sel)
	if err != nil {
		return nil, err
	}
	inner := &compiler{
		db:     c.db,
		ep:     c.ep,
		scopes: append(append([]*scopeInfo{}, c.scopes...), scope),
	}
	cs := &compiledSelect{depth: len(c.scopes)}

	for _, tr := range sel.From {
		var src compiledSource
		if tr.Sub != nil {
			// Derived tables see only outer scopes, not siblings.
			sub, err := c.compileSubSelect(tr.Sub)
			if err != nil {
				return nil, err
			}
			src = compiledSource{sub: sub, width: len(sub.cols)}
		} else {
			t, err := c.ep.table(tr.Table)
			if err != nil {
				return nil, err
			}
			src = compiledSource{table: t, width: t.Schema.Width()}
		}
		cs.sources = append(cs.sources, src)
	}

	for _, src := range scope.sources {
		cs.srcNames = append(cs.srcNames, src.name)
	}

	if sel.Where != nil {
		if cs.where, err = inner.compileExpr(sel.Where); err != nil {
			return nil, err
		}
	}
	// Plan the WHERE decomposition while the compiler still rejects
	// aggregates (WHERE is row-context; aggSink is not yet installed).
	inner.planWhere(sel.Where, cs)

	// Decide grouping: explicit GROUP BY, or aggregates anywhere in the
	// select list / HAVING.
	cs.grouped = len(sel.GroupBy) > 0 || sel.Having != nil || selectHasAggregate(sel)
	if cs.grouped {
		inner.aggSink = &aggCollector{cs: cs}
	}

	for _, g := range sel.GroupBy {
		// Group keys are row-context expressions: no aggregates.
		sink := inner.aggSink
		inner.aggSink = nil
		ge, err := inner.compileExpr(g)
		inner.aggSink = sink
		if err != nil {
			return nil, err
		}
		cs.groupBy = append(cs.groupBy, ge)
	}
	// Detect the spine-sharing shape (see the compiledSelect fields):
	// GROUP BY over a lone derived DISTINCT source, keyed by that
	// source's leading output columns in order, with no outer WHERE.
	// The source must emit its dedup set unsliced (no ORDER BY, LIMIT
	// or OFFSET) so recorded key prefixes stay row-aligned.
	if len(sel.GroupBy) > 0 && sel.Where == nil && len(cs.sources) == 1 {
		if sub := cs.sources[0].sub; sub != nil && sub.distinct && !sub.grouped &&
			len(sub.orderBy) == 0 && sub.limit == nil && sub.offset == nil &&
			len(sel.GroupBy) <= len(sub.cols) {
			eligible := true
			for i, g := range sel.GroupBy {
				ref, ok := g.(*ColumnRef)
				if !ok {
					eligible = false
					break
				}
				b, err := inner.resolve(ref)
				if err != nil || b != (binding{depth: cs.depth, src: 0, col: i}) {
					eligible = false
					break
				}
			}
			if eligible {
				cs.spineSub = sub
				cs.spineCols = len(sel.GroupBy)
			}
		}
	}

	// Output expressions. astOuts keeps the AST per output slot (nil
	// for star-expanded columns) so the batch-aware projection can
	// classify them after compilation.
	if cs.cols, err = outputColumns(c, sel); err != nil {
		return nil, err
	}
	var astOuts []Expr
	for _, se := range sel.Exprs {
		if se.Star {
			for si, src := range scope.sources {
				if se.StarTable != "" && !strings.EqualFold(src.name, se.StarTable) {
					continue
				}
				for ci := range src.cols {
					b := binding{depth: cs.depth, src: si, col: ci}
					cs.outs = append(cs.outs, func(en *env) (relation.Value, error) {
						return en.frames[b.depth].rows[b.src][b.col], nil
					})
					astOuts = append(astOuts, nil)
				}
			}
			continue
		}
		oe, err := inner.compileExpr(se.Expr)
		if err != nil {
			return nil, err
		}
		cs.outs = append(cs.outs, oe)
		astOuts = append(astOuts, se.Expr)
	}
	if len(cs.outs) != len(cs.cols) {
		return nil, fmt.Errorf("sql: internal: %d output exprs for %d columns", len(cs.outs), len(cs.cols))
	}
	if !cs.grouped {
		// Grouped emission stays row-at-a-time: aggregate outputs read
		// per-group state that the invariance analysis cannot see.
		cs.proj = inner.buildProjSpec(astOuts)
	}

	if sel.Having != nil {
		if cs.having, err = inner.compileExpr(sel.Having); err != nil {
			return nil, err
		}
	}
	cs.distinct = sel.Distinct
	for _, o := range sel.OrderBy {
		co := compiledOrder{desc: o.Desc}
		if lit, ok := o.Expr.(*Literal); ok && lit.Val.K == relation.KindInt {
			co.ordinal = int(lit.Val.I)
			if co.ordinal < 1 || co.ordinal > len(cs.cols) {
				return nil, fmt.Errorf("sql: ORDER BY ordinal %d out of range", co.ordinal)
			}
		} else if co.ex, err = inner.compileExpr(o.Expr); err != nil {
			return nil, err
		}
		cs.orderBy = append(cs.orderBy, co)
	}
	inner.planOrderBy(sel, cs)
	if sel.Limit != nil {
		if cs.limit, err = inner.compileExpr(sel.Limit); err != nil {
			return nil, err
		}
	}
	if sel.Offset != nil {
		if cs.offset, err = inner.compileExpr(sel.Offset); err != nil {
			return nil, err
		}
	}
	if len(cs.aggs) == 0 && inner.aggSink != nil {
		cs.aggs = inner.aggSink.specs
	}
	return cs, nil
}

func selectHasAggregate(sel *Select) bool {
	found := false
	var walk func(Expr)
	walk = func(e Expr) {
		if found || e == nil {
			return
		}
		switch x := e.(type) {
		case *FuncCall:
			if aggNames[x.Name] {
				found = true
				return
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *Unary:
			walk(x.X)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *IsNull:
			walk(x.X)
		case *InList:
			walk(x.X)
			for _, it := range x.List {
				walk(it)
			}
		case *Like:
			walk(x.X)
			walk(x.Pattern)
		case *Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *Case:
			walk(x.Operand)
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			walk(x.Else)
		}
		// Subqueries keep their own aggregate scope.
	}
	for _, se := range sel.Exprs {
		walk(se.Expr)
	}
	walk(sel.Having)
	return found
}

// exec runs the compiled select and materializes its output rows. The
// env's frame stack must hold exactly cs.depth frames.
func (cs *compiledSelect) exec(en *env) ([]relation.Tuple, error) {
	if len(en.frames) != cs.depth {
		return nil, fmt.Errorf("sql: internal: frame depth %d, want %d", len(en.frames), cs.depth)
	}

	// Materialize sources. When this select shares its group-key spine
	// with a derived DISTINCT source, ask the source (via env.spineWant)
	// to record the key prefixes while it dedupes, and collect them for
	// execGrouped. A length mismatch (defensive; the shape should
	// guarantee alignment) silently falls back to re-encoding.
	srcRows := make([][]relation.Tuple, len(cs.sources))
	var spine []string
	for i, src := range cs.sources {
		if src.table != nil {
			srcRows[i] = en.rows(src.table)
			continue
		}
		wantSpine := cs.spineSub != nil && src.sub == cs.spineSub && !DisablePlanner
		if wantSpine {
			if en.spineWant == nil {
				en.spineWant = make(map[*compiledSelect]int)
			}
			en.spineWant[src.sub] = cs.spineCols
		}
		rows, err := src.sub.exec(en)
		if wantSpine {
			delete(en.spineWant, src.sub)
			spine = en.spine[src.sub]
			delete(en.spine, src.sub)
			if len(spine) != len(rows) {
				spine = nil
			}
		}
		if err != nil {
			return nil, err
		}
		srcRows[i] = rows
	}

	fr := frame{rows: make([]relation.Tuple, len(cs.sources))}
	en.frames = append(en.frames, fr)
	defer func() { en.frames = en.frames[:cs.depth] }()

	var out []relation.Tuple
	var sortKeys [][]relation.Value
	// Output rows allocate from slabs: high-cardinality materializations
	// (the Qmv macro's distinct projections) otherwise pay one allocator
	// round trip per row, which the profile shows as pure GC overhead.
	var slab []relation.Value
	allocRow := func() relation.Tuple {
		n := len(cs.outs)
		if len(slab) < n {
			size := 512 * n
			if size < n {
				size = n
			}
			slab = make([]relation.Value, size)
		}
		row := relation.Tuple(slab[:n:n])
		slab = slab[n:]
		return row
	}

	// When the planner serves ORDER BY through in-order index iteration
	// (schedule.orderServed), rows are emitted already sorted: skip key
	// collection and the final sort entirely. Tie order among rows with
	// equal sort keys may differ from the stable sort's emission order —
	// SQL leaves it unspecified either way.
	orderServed := false
	if len(cs.orderBy) > 0 && !cs.grouped && cs.planOK && !DisablePlanner {
		orderServed = en.scheduleFor(cs, srcRows).orderServed
	}

	// The batch-aware projection replays site-invariant output parts
	// from a per-pattern cache. It stays off under DisablePlanner so
	// the forced nested-loop differential leg evaluates the plain outs
	// closures as an independent reference.
	var projPS *projScratch
	if cs.proj != nil && !DisablePlanner {
		projPS = cs.proj.scratch(en, cs)
	}
	evalOuts := func(dst relation.Tuple) error {
		if projPS != nil {
			return cs.proj.evalOuts(en, cs, projPS, dst)
		}
		for i, oe := range cs.outs {
			v, err := oe(en)
			if err != nil {
				return err
			}
			dst[i] = v
		}
		return nil
	}

	emit := func() error {
		row := allocRow()
		if err := evalOuts(row); err != nil {
			return err
		}
		if len(cs.orderBy) > 0 && !orderServed {
			keys := make([]relation.Value, len(cs.orderBy))
			for i, o := range cs.orderBy {
				if o.ordinal > 0 {
					keys[i] = row[o.ordinal-1]
					continue
				}
				v, err := o.ex(en)
				if err != nil {
					return err
				}
				keys[i] = v
			}
			sortKeys = append(sortKeys, keys)
		}
		out = append(out, row)
		return nil
	}

	// DISTINCT without ORDER BY dedupes inline: output values land in a
	// reused scratch row and only the first occurrence of each key is
	// materialized. The Fig. 4 macro emits one row per (tuple, pattern)
	// match but only |Aux|-many distinct ones, so this skips almost all
	// of the row allocation.
	dedupInline := cs.distinct && len(cs.orderBy) == 0 && !cs.grouped
	// spineCols > 0 when a grouped caller asked this select to record
	// the leading-column prefix of each emitted row's dedup key (one
	// recorded string per output row, in emission order).
	spineCols := 0
	var spineKeys []string
	if dedupInline && en.spineWant != nil {
		spineCols = en.spineWant[cs]
	}
	if dedupInline {
		seen := make(map[string]bool)
		scratchRow := make(relation.Tuple, len(cs.outs))
		var keyBuf []byte
		// Raw pre-dedup: when the projection plan proves the output row
		// is a pure function of (site row, a known set of scan columns),
		// a repeated raw combination skips output evaluation and the
		// 2|R|+1-value key hash entirely — the Qmv macro's matches are
		// overwhelmingly repeats of a few distinct pattern projections.
		var rawSeen map[string]bool // per-execution: see projSpec.preDedup
		if projPS != nil && cs.proj.preKeyOK {
			rawSeen = make(map[string]bool)
		}
		emit = func() error {
			if rawSeen != nil {
				skip, err := cs.proj.preDedup(en, cs, projPS, rawSeen)
				if err != nil {
					return err
				}
				if skip {
					return nil
				}
			}
			if err := evalOuts(scratchRow); err != nil {
				return err
			}
			if spineCols > 0 {
				// Same bytes AppendKeyOf would produce, built value by
				// value so the offset after the spineCols-th separator
				// is known: that prefix IS the caller's group key.
				keyBuf = keyBuf[:0]
				cut := 0
				for i, v := range scratchRow {
					keyBuf = relation.AppendKey(keyBuf, v)
					keyBuf = append(keyBuf, 0x1f)
					if i+1 == spineCols {
						cut = len(keyBuf)
					}
				}
				if seen[string(keyBuf)] {
					return nil
				}
				seen[string(keyBuf)] = true
				spineKeys = append(spineKeys, string(keyBuf[:cut]))
			} else {
				keyBuf = relation.AppendKeyOf(keyBuf[:0], scratchRow)
				if seen[string(keyBuf)] {
					return nil
				}
				seen[string(keyBuf)] = true
			}
			row := allocRow()
			copy(row, scratchRow)
			out = append(out, row)
			return nil
		}
	}

	if cs.grouped {
		if err := cs.execGrouped(en, srcRows, spine, emit); err != nil {
			return nil, err
		}
	} else {
		if err := cs.scan(en, srcRows, emit); err != nil {
			return nil, err
		}
	}
	if spineCols > 0 {
		if en.spine == nil {
			en.spine = make(map[*compiledSelect][]string)
		}
		en.spine[cs] = spineKeys
	}

	// DISTINCT before ORDER BY.
	if cs.distinct && !dedupInline {
		seen := make(map[string]bool, len(out))
		dedup := out[:0]
		var dedupKeys [][]relation.Value
		for i, row := range out {
			k := row.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			dedup = append(dedup, row)
			if len(sortKeys) > 0 {
				dedupKeys = append(dedupKeys, sortKeys[i])
			}
		}
		out = dedup
		sortKeys = dedupKeys
	}

	if len(cs.orderBy) > 0 && !orderServed {
		idx := make([]int, len(out))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := sortKeys[idx[a]], sortKeys[idx[b]]
			for i, o := range cs.orderBy {
				cmp := relation.Compare(ka[i], kb[i])
				if o.desc {
					cmp = -cmp
				}
				if cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
		sorted := make([]relation.Tuple, len(out))
		for i, j := range idx {
			sorted[i] = out[j]
		}
		out = sorted
	}

	// OFFSET / LIMIT.
	if cs.offset != nil {
		v, err := cs.offset(en)
		if err != nil {
			return nil, err
		}
		n := int(v.I)
		if n > len(out) {
			n = len(out)
		}
		if n > 0 {
			out = out[n:]
		}
	}
	if cs.limit != nil {
		v, err := cs.limit(en)
		if err != nil {
			return nil, err
		}
		if n := int(v.I); n >= 0 && n < len(out) {
			out = out[:n]
		}
	}
	return out, nil
}

// joinLoop nested-loops over the FROM sources, calling yield for every
// combination passing WHERE.
func (cs *compiledSelect) joinLoop(en *env, src [][]relation.Tuple, i int, yield func() error) error {
	if i == len(src) {
		if cs.where != nil {
			v, err := cs.where(en)
			if err != nil {
				return err
			}
			if !v.Truth() {
				return nil
			}
		}
		return yield()
	}
	fr := &en.frames[cs.depth]
	for _, row := range src[i] {
		fr.rows[i] = row
		if err := cs.joinLoop(en, src, i+1, yield); err != nil {
			return err
		}
	}
	return nil
}

// execGrouped evaluates GROUP BY / aggregate semantics: one output row
// per group passing HAVING, non-aggregate expressions evaluated on a
// representative row of the group. spine, when non-nil, holds one
// precomputed group key per row of the single source (the prefix of
// the derived DISTINCT source's dedup key — see spineSub): grouping
// then consumes those keys directly instead of re-evaluating and
// re-encoding the GROUP BY columns per row.
func (cs *compiledSelect) execGrouped(en *env, src [][]relation.Tuple, spine []string, emit func() error) error {
	type group struct {
		rep  []relation.Tuple
		accs []*aggAcc
	}
	groups := make(map[string]*group)
	var order []string

	fr := &en.frames[cs.depth]
	if spine != nil && len(cs.sources) == 1 && cs.where == nil {
		// The spine shape has one source and no WHERE, so the scan is
		// a plain in-order iteration; drive it directly with the
		// recorded keys (spine[ri] aligns with src[0][ri]).
		for ri, row := range src[0] {
			fr.rows[0] = row
			key := spine[ri]
			g := groups[key]
			if g == nil {
				g = &group{rep: append([]relation.Tuple(nil), fr.rows...), accs: newAccs(cs.aggs)}
				groups[key] = g
				order = append(order, key)
			}
			for i, spec := range cs.aggs {
				if err := g.accs[i].add(en, spec); err != nil {
					return err
				}
			}
		}
	} else {
		var keyBuf []byte
		err := cs.scan(en, src, func() error {
			keyBuf = keyBuf[:0]
			for _, ge := range cs.groupBy {
				v, err := ge(en)
				if err != nil {
					return err
				}
				keyBuf = relation.AppendKey(keyBuf, v)
				keyBuf = append(keyBuf, 0x1f)
			}
			g := groups[string(keyBuf)]
			if g == nil {
				key := string(keyBuf)
				g = &group{rep: append([]relation.Tuple(nil), fr.rows...), accs: newAccs(cs.aggs)}
				groups[key] = g
				order = append(order, key)
			}
			for i, spec := range cs.aggs {
				if err := g.accs[i].add(en, spec); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	// A global aggregate over an empty input still yields one row.
	if len(groups) == 0 && len(cs.groupBy) == 0 {
		rep := make([]relation.Tuple, len(cs.sources))
		for i, s := range cs.sources {
			rep[i] = make(relation.Tuple, s.width) // all NULLs
		}
		groups[""] = &group{rep: rep, accs: newAccs(cs.aggs)}
		order = append(order, "")
	}

	for _, key := range order {
		g := groups[key]
		copy(fr.rows, g.rep)
		vals := make([]relation.Value, len(cs.aggs))
		for i, spec := range cs.aggs {
			vals[i] = g.accs[i].final(spec)
		}
		en.aggs[cs] = vals
		if cs.having != nil {
			hv, err := cs.having(en)
			if err != nil {
				return err
			}
			if !hv.Truth() {
				continue
			}
		}
		if err := emit(); err != nil {
			return err
		}
	}
	delete(en.aggs, cs)
	return nil
}

// aggAcc accumulates one aggregate over one group.
type aggAcc struct {
	rows     int64
	nonNull  int64
	sumI     int64
	sumF     float64
	isFloat  bool
	min, max relation.Value
	distinct map[string]bool
}

func newAccs(specs []*aggSpec) []*aggAcc {
	out := make([]*aggAcc, len(specs))
	for i, s := range specs {
		out[i] = &aggAcc{}
		if s.distinct {
			out[i].distinct = make(map[string]bool)
		}
	}
	return out
}

func (a *aggAcc) add(en *env, spec *aggSpec) error {
	a.rows++
	if spec.star {
		return nil
	}
	v, err := spec.arg(en)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if spec.distinct {
		k := v.Key()
		if a.distinct[k] {
			return nil
		}
		a.distinct[k] = true
	}
	a.nonNull++
	switch v.K {
	case relation.KindFloat:
		a.isFloat = true
		a.sumF += v.F
	case relation.KindInt, relation.KindBool:
		a.sumI += v.I
		a.sumF += float64(v.I)
	}
	if a.min.IsNull() || relation.Compare(v, a.min) < 0 {
		a.min = v
	}
	if a.max.IsNull() || relation.Compare(v, a.max) > 0 {
		a.max = v
	}
	return nil
}

func (a *aggAcc) final(spec *aggSpec) relation.Value {
	switch spec.name {
	case "COUNT":
		if spec.star {
			return relation.Int(a.rows)
		}
		return relation.Int(a.nonNull)
	case "SUM":
		if a.nonNull == 0 {
			return relation.Null()
		}
		if a.isFloat {
			return relation.Float(a.sumF)
		}
		return relation.Int(a.sumI)
	case "AVG":
		if a.nonNull == 0 {
			return relation.Null()
		}
		return relation.Float(a.sumF / float64(a.nonNull))
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	default:
		return relation.Null()
	}
}
