package sqldb

import (
	"testing"

	"ecfd/internal/relation"
)

func TestExistsWithDerivedTableFallsBack(t *testing.T) {
	db := testDB(t)
	// EXISTS over a derived table cannot decorrelate or use execExists's
	// fast path — it must still be correct.
	res := mustQuery(t, db, `SELECT e.id FROM emp e WHERE EXISTS
		(SELECT 1 FROM (SELECT dept AS dn FROM emp WHERE salary > 95) m WHERE m.dn = e.dept)
		ORDER BY e.id`)
	if flat(res) != "1;2" {
		t.Errorf("got %q", flat(res))
	}
}

func TestExistsGroupedSubquery(t *testing.T) {
	db := testDB(t)
	// Grouped subqueries bail to full execution inside EXISTS.
	res := mustQuery(t, db, `SELECT e.id FROM emp e WHERE EXISTS
		(SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 2)`)
	if flat(res) != "" { // no department has 3 members
		t.Errorf("got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT COUNT(*) FROM emp e WHERE EXISTS
		(SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 1)`)
	if flat(res) != "5" {
		t.Errorf("got %q", flat(res))
	}
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT e.name,
		(SELECT COUNT(*) FROM emp e2 WHERE e2.dept = e.dept) FROM emp e ORDER BY e.id`)
	if flat(res) != "ann,2;bob,2;cat,2;dan,2;eve,1" {
		t.Errorf("got %q", flat(res))
	}
}

func TestCorrelatedInSubquery(t *testing.T) {
	db := testDB(t)
	// Correlated IN: for each employee, the heads of their department.
	res := mustQuery(t, db, `SELECT e.id FROM emp e WHERE e.name IN
		(SELECT d.head FROM dept d WHERE d.name = e.dept) ORDER BY e.id`)
	if flat(res) != "1;3" {
		t.Errorf("got %q", flat(res))
	}
}

func TestNestedSubqueryThreeDeep(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT e.id FROM emp e WHERE EXISTS
		(SELECT 1 FROM dept d WHERE d.name = e.dept AND EXISTS
			(SELECT 1 FROM emp e2 WHERE e2.name = d.head AND e2.salary > 90))
		ORDER BY e.id`)
	// Only eng's head (ann, 100) passes the innermost filter.
	if flat(res) != "1;2" {
		t.Errorf("got %q", flat(res))
	}
}

func TestGroupByExpression(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT COUNT(*) FROM emp GROUP BY salary IS NULL ORDER BY 1`)
	if flat(res) != "1;4" {
		t.Errorf("got %q", flat(res))
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT COUNT(*) FROM emp HAVING COUNT(*) > 3`)
	if flat(res) != "5" {
		t.Errorf("got %q", flat(res))
	}
	res = mustQuery(t, db, `SELECT COUNT(*) FROM emp HAVING COUNT(*) > 99`)
	if flat(res) != "" {
		t.Errorf("got %q", flat(res))
	}
}

func TestLimitOffsetParams(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT id FROM emp ORDER BY id LIMIT ? OFFSET ?`,
		relation.Int(2), relation.Int(1))
	if flat(res) != "2;3" {
		t.Errorf("got %q", flat(res))
	}
}

func TestUpdateMultipleColumnsSnapshot(t *testing.T) {
	db := testDB(t)
	// SET expressions see the pre-update values (snapshot semantics):
	// swapping via two assignments must not cascade.
	mustExec(t, db, `CREATE TABLE sw (a INTEGER, b INTEGER)`)
	mustExec(t, db, `INSERT INTO sw VALUES (1, 2)`)
	mustExec(t, db, `UPDATE sw SET a = b, b = a`)
	res := mustQuery(t, db, `SELECT a, b FROM sw`)
	if flat(res) != "2,1" {
		t.Errorf("swap got %q", flat(res))
	}
}

func TestInsertFromExpression(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE calc (v INTEGER)`)
	mustExec(t, db, `INSERT INTO calc VALUES (1 + 2 * 3), (ABS(-4))`)
	res := mustQuery(t, db, `SELECT v FROM calc ORDER BY v`)
	if flat(res) != "4;7" {
		t.Errorf("got %q", flat(res))
	}
}

func TestDecorrelationDisabledEquivalence(t *testing.T) {
	db := testDB(t)
	q := `SELECT e.id FROM emp e WHERE EXISTS (SELECT 1 FROM dept d WHERE d.name = e.dept) ORDER BY e.id`
	want := flat(mustQuery(t, db, q))

	DisableDecorrelation = true
	defer func() { DisableDecorrelation = false }()
	if got := flat(mustQuery(t, db, q)); got != want {
		t.Errorf("decorrelation changed semantics: %q vs %q", got, want)
	}
}

func TestIndexProbeEquivalence(t *testing.T) {
	// With an index on the probe columns the EXISTS path switches to
	// persistent-index probing; results must match the hash-build path,
	// including after mutations (lazy rebuild).
	build := func(withIndex bool) *DB {
		db := NewDB()
		mustExec(t, db, `CREATE TABLE big (k INTEGER, v TEXT)`)
		mustExec(t, db, `CREATE TABLE probe (k INTEGER)`)
		if withIndex {
			mustExec(t, db, `CREATE INDEX bigk ON big (k)`)
		}
		mustExec(t, db, `INSERT INTO big VALUES (1, 'a'), (2, 'b'), (3, 'c')`)
		mustExec(t, db, `INSERT INTO probe VALUES (2), (3), (4)`)
		return db
	}
	q := `SELECT p.k FROM probe p WHERE EXISTS (SELECT 1 FROM big b WHERE b.k = p.k) ORDER BY p.k`
	plain := build(false)
	indexed := build(true)
	if a, b := flat(mustQuery(t, plain, q)), flat(mustQuery(t, indexed, q)); a != b {
		t.Fatalf("index path diverges: %q vs %q", a, b)
	}
	// Mutate and re-query: the lazy rebuild must see the new row.
	mustExec(t, indexed, `INSERT INTO big VALUES (4, 'd')`)
	if got := flat(mustQuery(t, indexed, q)); got != "2;3;4" {
		t.Errorf("after mutation got %q", got)
	}
	mustExec(t, indexed, `DELETE FROM big WHERE k = 2`)
	if got := flat(mustQuery(t, indexed, q)); got != "3;4" {
		t.Errorf("after delete got %q", got)
	}
}

func TestCaseInOperandForm(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `SELECT CASE dept WHEN 'eng' THEN 'E' WHEN 'ops' THEN 'O' ELSE '?' END
		FROM emp ORDER BY id`)
	if flat(res) != "E;E;O;O;?" {
		t.Errorf("got %q", flat(res))
	}
	// NULL operand never matches any WHEN.
	res = mustQuery(t, db, `SELECT CASE salary WHEN 100 THEN 'century' ELSE 'other' END
		FROM emp WHERE id = 5`)
	if flat(res) != "other" {
		t.Errorf("NULL operand got %q", flat(res))
	}
}
