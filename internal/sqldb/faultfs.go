package sqldb

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory WALFS with fault injection, built for the
// crash-recovery test matrix. Every mutating filesystem call counts as
// one I/O operation; a fault can be armed to fire at the N-th
// operation from now:
//
//   - FaultCrash: the operation and every later one fail as if the
//     process died mid-call. Crash() then finalizes the "power loss":
//     each file keeps its synced prefix plus a random prefix of the
//     unsynced tail — which is exactly how a torn WAL record comes to
//     exist — and the filesystem is usable again, as after a restart.
//   - FaultShortWrite: one Write persists only a prefix and errors.
//   - FaultWriteErr: one Write fails without persisting anything.
//   - FaultSyncErr: one Sync (or SyncDir) fails.
//
// Data written but never synced survives non-crash faults — the
// process didn't die, the page cache is intact. Only Crash discards
// unsynced bytes.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	ops     int
	armAt   int // ops value at which the fault fires; 0 = disarmed
	kind    FaultKind
	crashed bool
	rng     *rand.Rand
}

// FaultKind selects which failure an armed MemFS injects.
type FaultKind int

const (
	FaultNone FaultKind = iota
	FaultCrash
	FaultShortWrite
	FaultWriteErr
	FaultSyncErr
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultShortWrite:
		return "short-write"
	case FaultWriteErr:
		return "write-error"
	case FaultSyncErr:
		return "sync-error"
	default:
		return "none"
	}
}

type memFile struct {
	data   []byte
	synced int // bytes guaranteed to survive a crash
}

// NewMemFS returns an empty in-memory filesystem. The seed drives the
// partial-survival decisions at Crash, so a fault matrix is
// reproducible.
func NewMemFS(seed int64) *MemFS {
	return &MemFS{files: make(map[string]*memFile), rng: rand.New(rand.NewSource(seed))}
}

// Arm schedules kind to fire at the n-th mutating operation from now
// (n >= 1). One-shot faults (short write, write error, sync error)
// disarm after firing; a crash keeps failing every operation until
// Crash() is called.
func (fs *MemFS) Arm(kind FaultKind, n int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.kind = kind
	fs.armAt = fs.ops + n
}

// Disarm cancels any pending fault.
func (fs *MemFS) Disarm() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.armAt, fs.kind = 0, FaultNone
}

// Ops returns the number of mutating operations performed so far.
func (fs *MemFS) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crash finalizes an injected (or implicit) process death: every file
// keeps its synced prefix plus a random prefix of its unsynced tail,
// and the filesystem becomes usable again, as after a restart.
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		if len(f.data) > f.synced {
			keep := f.synced + fs.rng.Intn(len(f.data)-f.synced+1)
			f.data = f.data[:keep]
		}
		f.synced = len(f.data)
	}
	fs.crashed = false
	fs.armAt, fs.kind = 0, FaultNone
}

// ErrCrashed is returned by every MemFS operation after an injected
// crash fired, until Crash() restarts the filesystem.
var ErrCrashed = fmt.Errorf("memfs: process crashed")

var (
	errShortWrite = fmt.Errorf("memfs: injected short write")
	errWriteFail  = fmt.Errorf("memfs: injected write error")
	errSyncFail   = fmt.Errorf("memfs: injected sync error")
)

// opClass tells step which kinds of fault this operation can exhibit:
// a write can be short or fail, a sync can fail, and anything can be
// interrupted by a crash.
type opClass int

const (
	opOther opClass = iota
	opWrite
	opSync
)

// step advances the operation counter and reports which fault, if any,
// fires on this operation. A crash fires on any operation once due; a
// one-shot fault waits, still armed, until the first operation of its
// class at or after the armed point. Callers hold fs.mu.
func (fs *MemFS) step(class opClass) FaultKind {
	if fs.crashed {
		return FaultCrash
	}
	fs.ops++
	if fs.armAt == 0 || fs.ops < fs.armAt {
		return FaultNone
	}
	k := fs.kind
	switch {
	case k == FaultCrash:
		fs.crashed = true
		return k
	case (k == FaultShortWrite || k == FaultWriteErr) && class == opWrite,
		k == FaultSyncErr && class == opSync:
		fs.armAt, fs.kind = 0, FaultNone // one-shot
		return k
	}
	return FaultNone
}

func (fs *MemFS) MkdirAll(string) error { return nil }

func (fs *MemFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for path := range fs.files {
		if strings.HasPrefix(path, prefix) && !strings.Contains(path[len(prefix):], "/") {
			names = append(names, path[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (fs *MemFS) ReadFile(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f, ok := fs.files[filepath.Clean(path)]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: no such file", path)
	}
	return append([]byte(nil), f.data...), nil
}

func (fs *MemFS) Create(path string) (WALFile, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if k := fs.step(opOther); k == FaultCrash {
		return nil, ErrCrashed
	}
	path = filepath.Clean(path)
	fs.files[path] = &memFile{}
	return &memHandle{fs: fs, path: path}, nil
}

func (fs *MemFS) OpenAppend(path string) (WALFile, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if k := fs.step(opOther); k == FaultCrash {
		return nil, ErrCrashed
	}
	path = filepath.Clean(path)
	if _, ok := fs.files[path]; !ok {
		fs.files[path] = &memFile{}
	}
	return &memHandle{fs: fs, path: path}, nil
}

func (fs *MemFS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if k := fs.step(opOther); k == FaultCrash {
		return ErrCrashed
	}
	oldPath, newPath = filepath.Clean(oldPath), filepath.Clean(newPath)
	f, ok := fs.files[oldPath]
	if !ok {
		return fmt.Errorf("memfs: %s: no such file", oldPath)
	}
	delete(fs.files, oldPath)
	fs.files[newPath] = f
	return nil
}

func (fs *MemFS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if k := fs.step(opOther); k == FaultCrash {
		return ErrCrashed
	}
	path = filepath.Clean(path)
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("memfs: %s: no such file", path)
	}
	delete(fs.files, path)
	return nil
}

func (fs *MemFS) Truncate(path string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if k := fs.step(opOther); k == FaultCrash {
		return ErrCrashed
	}
	f, ok := fs.files[filepath.Clean(path)]
	if !ok {
		return fmt.Errorf("memfs: %s: no such file", path)
	}
	if int(size) < len(f.data) {
		f.data = f.data[:size]
		if f.synced > len(f.data) {
			f.synced = len(f.data)
		}
	}
	return nil
}

func (fs *MemFS) SyncDir(string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	switch fs.step(opSync) {
	case FaultCrash:
		return ErrCrashed
	case FaultSyncErr:
		return errSyncFail
	}
	return nil
}

type memHandle struct {
	fs   *MemFS
	path string
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, ok := h.fs.files[h.path]
	if !ok {
		return 0, fmt.Errorf("memfs: %s: file removed under open handle", h.path)
	}
	switch h.fs.step(opWrite) {
	case FaultCrash:
		// Mid-call death: like a real kernel crash, an arbitrary prefix
		// of this write may have reached the page cache.
		f.data = append(f.data, p[:h.fs.rng.Intn(len(p)+1)]...)
		return 0, ErrCrashed
	case FaultShortWrite:
		n := len(p) / 2
		f.data = append(f.data, p[:n]...)
		return n, errShortWrite
	case FaultWriteErr:
		return 0, errWriteFail
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, ok := h.fs.files[h.path]
	if !ok {
		return fmt.Errorf("memfs: %s: file removed under open handle", h.path)
	}
	switch h.fs.step(opSync) {
	case FaultCrash:
		return ErrCrashed
	case FaultSyncErr:
		return errSyncFail
	}
	f.synced = len(f.data)
	return nil
}

func (h *memHandle) Close() error { return nil }
