package sqldb

import (
	"errors"
	"fmt"
	"testing"

	"ecfd/internal/relation"
)

// scriptOp is one step of the deterministic workload the fault matrix
// replays: a pure function of database state, so any run that reaches
// the same prefix reaches the same state.
type scriptOp struct {
	name string
	run  func(db *DB) error
}

func sqlOp(name, sqlText string) scriptOp {
	return scriptOp{name, func(db *DB) error {
		_, err := db.Exec(sqlText)
		return err
	}}
}

// faultScript mixes DDL, row DML, transactions (commit and rollback),
// TRUNCATE, DROP+recreate, and LoadRelation — every operation kind the
// WAL can carry.
func faultScript() []scriptOp {
	var ops []scriptOp
	add := func(name, sqlText string) { ops = append(ops, sqlOp(name, sqlText)) }

	add("create-t", "CREATE TABLE t (a INT, b TEXT, c FLOAT)")
	add("index-t", "CREATE INDEX it_a ON t (a)")
	add("create-u", "CREATE TABLE u (k INT, v INT)")
	for i := 0; i < 5; i++ {
		add(fmt.Sprintf("ins-t-%d", i), fmt.Sprintf(
			"INSERT INTO t VALUES (%d, 'alpha-%d', %d.25), (%d, 'beta-%d', %d.75)",
			2*i, i, i, 2*i+1, i, i))
		add(fmt.Sprintf("ins-u-%d", i), fmt.Sprintf("INSERT INTO u VALUES (%d, %d)", i, 10*i))
	}
	add("upd-t", "UPDATE t SET b = 'patched' WHERE a >= 2 AND a <= 5")
	add("del-t", "DELETE FROM t WHERE a = 7")
	add("upd-u", "UPDATE u SET v = -1 WHERE k >= 3")

	ops = append(ops, scriptOp{"tx-commit", func(db *DB) error {
		tx, err := db.Begin()
		if err != nil {
			return err
		}
		for _, s := range []string{
			"INSERT INTO t VALUES (100, 'tx-row', 0.5)",
			"UPDATE u SET v = 99 WHERE k = 0",
			"DELETE FROM t WHERE a = 0",
		} {
			if _, err := db.Exec(s); err != nil {
				tx.Rollback()
				return err
			}
		}
		return tx.Commit()
	}})
	ops = append(ops, scriptOp{"tx-rollback", func(db *DB) error {
		tx, err := db.Begin()
		if err != nil {
			return err
		}
		if _, err := db.Exec("INSERT INTO t VALUES (200, 'ghost', 0.0)"); err != nil {
			tx.Rollback()
			return err
		}
		return tx.Rollback()
	}})
	ops = append(ops, scriptOp{"tx-ddl-rollback", func(db *DB) error {
		tx, err := db.Begin()
		if err != nil {
			return err
		}
		for _, s := range []string{
			"CREATE TABLE scratch (x INT)",
			"INSERT INTO scratch VALUES (1), (2)",
		} {
			if _, err := db.Exec(s); err != nil {
				tx.Rollback()
				return err
			}
		}
		return tx.Rollback() // the table survives, empty; the rows do not
	}})

	add("trunc-u", "TRUNCATE TABLE u")
	add("refill-u", "INSERT INTO u VALUES (50, 500), (51, 510)")
	add("drop-t", "DROP TABLE t")
	add("recreate-t", "CREATE TABLE t (a INT, b TEXT)")
	add("reindex-t", "CREATE INDEX it_a ON t (a)")
	add("refill-t", "INSERT INTO t VALUES (1, 'reborn'), (2, 'again')")

	ops = append(ops, scriptOp{"load-relation", func(db *DB) error {
		schema, err := relation.NewSchema("r",
			relation.Attribute{Name: "X", Kind: relation.KindInt},
			relation.Attribute{Name: "Y", Kind: relation.KindText},
		)
		if err != nil {
			return err
		}
		r := relation.New(schema)
		for i := 0; i < 4; i++ {
			r.Rows = append(r.Rows, relation.Tuple{relation.Int(int64(i)), relation.Text(fmt.Sprint("load-", i))})
		}
		return db.LoadRelation(r)
	}})
	add("final-ins", "INSERT INTO t VALUES (3, 'closing')")
	return ops
}

const faultMatrixCkpt = 700 // small enough to force several rotations

// referenceRun executes the script with no faults and returns the
// fingerprint after Open (index 0) and after each op (index i+1), plus
// the total number of filesystem operations the run performed.
func referenceRun(t *testing.T) ([]string, int) {
	t.Helper()
	fs := NewMemFS(42)
	db := memOpen(t, fs, WALOptions{Fsync: FsyncAlways, CheckpointBytes: faultMatrixCkpt})
	script := faultScript()
	fps := make([]string, 0, len(script)+1)
	fps = append(fps, fingerprint(db))
	for _, op := range script {
		if err := op.run(db); err != nil {
			t.Fatalf("reference run: op %s: %v", op.name, err)
		}
		fps = append(fps, fingerprint(db))
	}
	return fps, fs.Ops()
}

// TestFaultMatrixCrashEverywhere is the property test at the heart of
// the durability subsystem: crash at EVERY filesystem operation the
// workload performs, recover, and require the recovered state to be a
// commit-unit-consistent point — under fsync=always, the state after
// the last acknowledged op, or that plus the single in-flight unit.
// Re-applying the remaining script must then land on the exact
// never-crashed final state.
func TestFaultMatrixCrashEverywhere(t *testing.T) {
	fps, totalOps := referenceRun(t)
	script := faultScript()
	final := fps[len(fps)-1]
	if totalOps < 20 {
		t.Fatalf("suspiciously small reference run: %d fs ops", totalOps)
	}

	for point := 1; point <= totalOps; point++ {
		fs := NewMemFS(int64(1000 + point))
		fs.Arm(FaultCrash, point)

		// Run until the crash bites (or to completion, for late points
		// the run never reaches).
		succeeded := 0
		db, err := Open(WALOptions{Dir: "/wal", FS: fs, Fsync: FsyncAlways, CheckpointBytes: faultMatrixCkpt})
		if err == nil {
			for _, op := range script {
				if err := op.run(db); err != nil {
					break
				}
				succeeded++
			}
		} else {
			succeeded = -1 // crashed inside the initial Open
		}

		fs.Crash()
		db2, err := Open(WALOptions{Dir: "/wal", FS: fs, Fsync: FsyncAlways, CheckpointBytes: faultMatrixCkpt})
		if err != nil {
			t.Fatalf("point %d: recovery failed after crash (j=%d): %v", point, succeeded, err)
		}
		got := fingerprint(db2)

		// Acceptable recovery points: everything acknowledged (fp[j]),
		// or that plus the in-flight unit the crash may have persisted.
		j := succeeded
		if j < 0 {
			j = 0
		}
		resume := -1
		if j+1 < len(fps) && got == fps[j+1] {
			resume = j + 1
		} else if got == fps[j] {
			resume = j
		}
		if resume < 0 {
			t.Fatalf("point %d: recovered state matches neither fp[%d] nor fp[%d]:\ngot:\n%s", point, j, j+1, got)
		}

		// The recovered database must be writable and finish the job.
		for i := resume; i < len(script); i++ {
			if err := script[i].run(db2); err != nil {
				t.Fatalf("point %d: re-applying op %s after recovery: %v", point, script[i].name, err)
			}
		}
		if got := fingerprint(db2); got != final {
			t.Fatalf("point %d: final state after recovery+replay differs from never-crashed run", point)
		}
	}
}

// TestFaultMatrixErrorKinds drives the same workload into each
// non-crash fault at every injection point: the hit operation must
// fail with the typed read-only error, reads must keep serving, and a
// clean-process reopen must land on a consistent point from which the
// remaining script completes.
func TestFaultMatrixErrorKinds(t *testing.T) {
	fps, totalOps := referenceRun(t)
	script := faultScript()
	final := fps[len(fps)-1]

	for _, kind := range []FaultKind{FaultShortWrite, FaultWriteErr, FaultSyncErr} {
		for point := 1; point <= totalOps; point++ {
			fs := NewMemFS(int64(5000 + point))
			db, err := Open(WALOptions{Dir: "/wal", FS: fs, Fsync: FsyncAlways, CheckpointBytes: faultMatrixCkpt})
			if err != nil {
				t.Fatalf("%s point %d: open: %v", kind, point, err)
			}
			fs.Arm(kind, point)

			succeeded, hit := 0, false
			for _, op := range script {
				if err := op.run(db); err != nil {
					if !errors.Is(err, ErrReadOnly) {
						t.Fatalf("%s point %d: op %s: want ErrReadOnly, got %v", kind, point, op.name, err)
					}
					hit = true
					break
				}
				succeeded++
			}
			if !hit {
				// The fault fired mid-run without failing any op (e.g. a
				// checkpoint after a durable commit), or never fired at
				// all. Either way the full script ran.
				if got := fingerprint(db); got != final {
					t.Fatalf("%s point %d: fault-free run diverged", kind, point)
				}
				if ro, _ := db.ReadOnly(); !ro {
					continue // fault never fired: nothing left to check
				}
			} else if succeeded >= 3 {
				// Reads still serve on the degraded database (u exists
				// once the first three DDL ops have run).
				if _, err := db.Query("SELECT k FROM u WHERE k >= 0"); err != nil {
					t.Fatalf("%s point %d: query on degraded db: %v", kind, point, err)
				}
			}

			// The process did not die: a reopen sees the page cache.
			fs.Disarm()
			db2, err := Open(WALOptions{Dir: "/wal", FS: fs, Fsync: FsyncAlways, CheckpointBytes: faultMatrixCkpt})
			if err != nil {
				t.Fatalf("%s point %d: reopen: %v", kind, point, err)
			}
			got := fingerprint(db2)
			resume := -1
			if succeeded+1 < len(fps) && got == fps[succeeded+1] {
				resume = succeeded + 1
			} else if got == fps[succeeded] {
				resume = succeeded
			}
			if resume < 0 {
				t.Fatalf("%s point %d: reopened state matches neither fp[%d] nor fp[%d]", kind, point, succeeded, succeeded+1)
			}
			for i := resume; i < len(script); i++ {
				if err := script[i].run(db2); err != nil {
					t.Fatalf("%s point %d: re-applying op %s: %v", kind, point, script[i].name, err)
				}
			}
			if got := fingerprint(db2); got != final {
				t.Fatalf("%s point %d: final state differs from fault-free run", kind, point)
			}
		}
	}
}
