// Package sqldb is an embedded, in-memory SQL database engine. It
// stands in for the commercial RDBMS used in the paper's experiments
// (§VI): the eCFD detection algorithms only *generate* SQL, so any
// engine that executes the generated dialect — multi-table FROM lists,
// correlated EXISTS / NOT EXISTS, GROUP BY / HAVING, CASE, DISTINCT,
// UPDATE ... WHERE — reproduces them faithfully.
//
// The pipeline is conventional: lexer → recursive-descent parser → AST
// → compiler (expressions become closures with resolved column
// indexes) → executor. Correlated EXISTS subqueries whose predicates
// are equality conjunctions against outer expressions are decorrelated
// into one hash build plus O(1) probes per outer row, which is what
// makes detection two passes over D as the paper requires.
package sqldb

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokPunct
	tokParam // '?'
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents as written; strings unquoted
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "AS": true, "DISTINCT": true, "ALL": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "EXISTS": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "BETWEEN": true, "LIKE": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "INDEX": true, "DROP": true,
	"IF": true, "ON": true, "JOIN": true, "INNER": true, "LEFT": true,
	"OUTER": true, "CROSS": true, "UNION": true, "PRIMARY": true, "KEY": true,
	"INTEGER": true, "INT": true, "TEXT": true, "VARCHAR": true, "REAL": true,
	"FLOAT": true, "BOOLEAN": true, "BOOL": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "TRUNCATE": true,
}

type lexer struct {
	src string
	pos int
}

// lexError is a positioned scan/parse error.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string { return fmt.Sprintf("sql: at offset %d: %s", e.pos, e.msg) }

func errAt(pos int, format string, args ...any) error {
	return &lexError{pos: pos, msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, errAt(l.pos, "unterminated block comment")
			}
			l.pos += 2 + end + 2
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'') // '' escapes a quote
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{}, errAt(start, "unterminated string literal")

	case c == '"': // quoted identifier
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], '"')
		if end < 0 {
			return token{}, errAt(start, "unterminated quoted identifier")
		}
		text := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{kind: tokIdent, text: text, pos: start}, nil

	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
			l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			((l.src[l.pos] == '+' || l.src[l.pos] == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil

	case c == '?':
		l.pos++
		return token{kind: tokParam, text: "?", pos: start}, nil

	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil

	default:
		for _, op := range [...]string{"<>", "<=", ">=", "!=", "||"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += 2
				return token{kind: tokPunct, text: op, pos: start}, nil
			}
		}
		if strings.ContainsRune("(),.*=<>+-/%;", rune(c)) {
			l.pos++
			return token{kind: tokPunct, text: string(c), pos: start}, nil
		}
		return token{}, errAt(start, "unexpected character %q", c)
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c|0x20 >= 'a' && c|0x20 <= 'z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) || c == '$' || c == '@' }
