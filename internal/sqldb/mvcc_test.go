package sqldb

import (
	"fmt"
	"sync"
	"testing"

	"ecfd/internal/relation"
)

// The MVCC suite pins the epoch-snapshot guarantees: a pinned snapshot
// observes exactly one epoch across many statements while writers
// publish freely underneath it, and epochs retired while pinned are
// released (bytes and all) as soon as the last pin drops. Run with
// -race (see the mvccstress make target).

// snapFingerprint runs a multi-statement read against one snapshot and
// folds the results into a comparable summary. Any drift between calls
// against the same Snap means the reader escaped its epoch.
type snapFingerprint struct {
	count    int64
	groupSum int64
	probed   int
}

func takeFingerprint(t *testing.T, total, per, probe *Prepared, s *Snap) snapFingerprint {
	t.Helper()
	var fp snapFingerprint
	res, err := total.QueryAt(s)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	fp.count = res.Rows[0][0].I
	res, err = per.QueryAt(s)
	if err != nil {
		t.Fatalf("group: %v", err)
	}
	for _, row := range res.Rows {
		fp.groupSum += row[1].I
	}
	res, err = probe.QueryAt(s)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	fp.probed = len(res.Rows)
	return fp
}

// TestSnapshotStabilityUnderDML races a streaming writer against
// readers that each pin one snapshot and repeatedly re-run a
// multi-statement scan: every re-run must reproduce the first run
// byte-for-byte in summary, because the snapshot's epoch is immutable.
// Unpinned queries issued in the same loop are free to see newer
// epochs — only monotonicity of the row count is asserted there.
func TestSnapshotStabilityUnderDML(t *testing.T) {
	db := concTestDB(t, 1_000)
	total, err := db.Prepare("SELECT COUNT(*) FROM d")
	if err != nil {
		t.Fatal(err)
	}
	per, err := db.Prepare("SELECT grp, COUNT(*) FROM d GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	probe, err := db.Prepare("SELECT id FROM d t WHERE EXISTS (SELECT 1 FROM p s WHERE s.grp = t.grp AND s.tag = t.val)")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Streaming writer: inserts, updates, deletes — each commit
	// publishes a fresh epoch under the pinned readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 120; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO d VALUES (%d, %d, 'v%d')", 50_000+i, i%10, i%7)); err != nil {
				errs <- err
				return
			}
			if _, err := db.Exec("UPDATE d SET val = 'w' WHERE id = ?", relation.Int(int64(50_000+i))); err != nil {
				errs <- err
				return
			}
			if i%3 == 0 {
				if _, err := db.Exec("DELETE FROM d WHERE id = ?", relation.Int(int64(50_000+i))); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	// Pinned readers: each pins its own snapshot at a random point in
	// the write stream and re-reads it while the stream continues.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.PinSnapshot()
			defer s.Close()
			first := takeFingerprint(t, total, per, probe, s)
			if first.count != first.groupSum {
				errs <- fmt.Errorf("snapshot internally inconsistent: COUNT(*) %d != sum of group counts %d", first.count, first.groupSum)
				return
			}
			for i := 0; i < 40; i++ {
				if fp := takeFingerprint(t, total, per, probe, s); fp != first {
					errs <- fmt.Errorf("snapshot drifted on re-read %d: %+v != %+v", i, fp, first)
					return
				}
				// Unpinned reads ride the live epoch chain; they may
				// differ from the snapshot but never from themselves
				// within a statement.
				live, err := total.Query()
				if err != nil {
					errs <- err
					return
				}
				if live.Rows[0][0].I < first.count-120 {
					errs <- fmt.Errorf("live count %d fell below any reachable epoch", live.Rows[0][0].I)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSnapshotStableAcrossDDL pins a snapshot, then drops an index and
// creates tables after the pin: the snapshot's queries must recompile
// against its own (older) catalog version and keep answering.
func TestSnapshotStableAcrossDDL(t *testing.T) {
	db := concTestDB(t, 500)
	probe, err := db.Prepare("SELECT COUNT(*) FROM d t WHERE EXISTS (SELECT 1 FROM p s WHERE s.grp = t.grp AND s.tag = t.val)")
	if err != nil {
		t.Fatal(err)
	}
	s := db.PinSnapshot()
	defer s.Close()
	before, err := probe.QueryAt(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE after_pin (x INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO p VALUES (99, 'zz')"); err != nil {
		t.Fatal(err)
	}
	after, err := probe.QueryAt(s)
	if err != nil {
		t.Fatal(err)
	}
	if after.Rows[0][0].I != before.Rows[0][0].I {
		t.Fatalf("snapshot saw post-pin DML/DDL: %d != %d", after.Rows[0][0].I, before.Rows[0][0].I)
	}
	// The snapshot predates after_pin, so it must not resolve there.
	at, err := db.Prepare("SELECT COUNT(*) FROM after_pin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := at.QueryAt(s); err == nil {
		t.Fatal("snapshot resolved a table created after the pin")
	}
	if res, err := at.Query(); err != nil || res.Rows[0][0].I != 0 {
		t.Fatalf("live query should see after_pin: %v", err)
	}
}

// TestEpochGC checks the retirement accounting end to end: a pinned
// snapshot keeps its superseded epoch (and its bytes) in the retired
// registry; dropping the last pin frees it; epochs that were never
// pinned when superseded never enter the registry at all.
func TestEpochGC(t *testing.T) {
	db := concTestDB(t, 500)

	// Quiescent baseline: one live epoch, nothing retired.
	st := db.Stats()
	if st.LiveEpochs != 1 || st.RetiredEpochs != 0 || st.RetiredBytes != 0 {
		t.Fatalf("quiescent stats: %+v", st)
	}
	baseSeq := st.EpochSeq

	s := db.PinSnapshot()
	// Publish a run of epochs on top of the pin. Only the pinned epoch
	// survives retirement — the intermediates have no pins and are
	// dropped the moment they are superseded.
	for i := 0; i < 8; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO d VALUES (%d, 0, 'g')", 90_000+i)); err != nil {
			t.Fatal(err)
		}
	}
	st = db.Stats()
	if st.EpochSeq < baseSeq+8 {
		t.Fatalf("epoch seq did not advance: %+v (base %d)", st, baseSeq)
	}
	if st.RetiredEpochs != 1 {
		t.Fatalf("want exactly the pinned epoch retired, got %+v", st)
	}
	if st.RetiredBytes <= 0 {
		t.Fatalf("retired epoch reports no bytes: %+v", st)
	}
	if st.LiveEpochs != 2 {
		t.Fatalf("want published + pinned live, got %+v", st)
	}

	// The pinned epoch still answers from its own data.
	p, err := db.Prepare("SELECT COUNT(*) FROM d")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.QueryAt(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 500 {
		t.Fatalf("pinned epoch count %d, want 500", res.Rows[0][0].I)
	}

	// Last unpin frees the retired epoch and its byte accounting.
	s.Close()
	s.Close() // idempotent
	st = db.Stats()
	if st.RetiredEpochs != 0 || st.RetiredBytes != 0 || st.LiveEpochs != 1 {
		t.Fatalf("retired epoch survived unpin: %+v", st)
	}

	// A churn of pin/unpin racing a writer must end with an empty
	// registry once every reader is done.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				sn := db.PinSnapshot()
				if _, err := p.QueryAt(sn); err != nil {
					t.Error(err)
				}
				sn.Close()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO d VALUES (%d, 1, 'h')", 95_000+i)); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	st = db.Stats()
	if st.RetiredEpochs != 0 || st.RetiredBytes != 0 || st.LiveEpochs != 1 {
		t.Fatalf("epoch GC leaked after churn: %+v", st)
	}
}
