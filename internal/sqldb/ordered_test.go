package sqldb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ecfd/internal/relation"
)

// Tests for the ordered-index subsystem: range-pruned scans,
// index-served ORDER BY, incremental index maintenance under DML, and
// the EXPLAIN access-path surface.

// testEpochIndex digs the named index and its published-epoch state
// out for white-box checks.
func testEpochIndex(t *testing.T, db *DB, table, name string) (*Index, *indexData, []relation.Tuple) {
	t.Helper()
	ep := db.cur.Load()
	tbl, ok := ep.tables[lowerName(table)]
	if !ok {
		t.Fatalf("no table %s", table)
	}
	td := ep.tds[tbl]
	for _, sl := range td.indexes {
		if sl.idx.Name == name {
			return sl.idx, sl.data, td.rows
		}
	}
	t.Fatalf("no index %s on %s", name, table)
	return nil, nil, nil
}

// testIndex digs the named index handle out for white-box checks.
func testIndex(t *testing.T, db *DB, table, name string) *Index {
	t.Helper()
	idx, _, _ := testEpochIndex(t, db, table, name)
	return idx
}

// verifyIndexConsistent rebuilds both index structures from scratch
// and compares them with the incrementally maintained ones in the
// published epoch. Built structures must match exactly up to their
// cover; unbuilt ones are skipped (they have nothing to be consistent
// with yet).
func verifyIndexConsistent(t *testing.T, db *DB, table, name string) {
	t.Helper()
	idx, d, rows := testEpochIndex(t, db, table, name)
	d.mu.RLock()
	m, mCover := d.m, d.mCover
	sorted, sBase := d.sorted, d.sBase
	d.mu.RUnlock()

	if m != nil {
		if mCover > len(rows) {
			t.Fatalf("index %s map covers %d rows of %d", name, mCover, len(rows))
		}
		want := make(map[string][]int, mCover)
		key := make([]relation.Value, len(idx.Cols))
		for ri := 0; ri < mCover; ri++ {
			for i, c := range idx.Cols {
				key[i] = rows[ri][c]
			}
			k := relation.KeyOf(key)
			want[k] = append(want[k], ri)
		}
		if len(want) != len(m) {
			t.Fatalf("index %s map: %d keys, want %d", name, len(m), len(want))
		}
		for k, bucket := range want {
			got := m[k]
			if len(got) != len(bucket) {
				t.Fatalf("index %s key %q: bucket %v, want %v", name, k, got, bucket)
			}
			for i := range bucket {
				if got[i] != bucket[i] {
					t.Fatalf("index %s key %q: bucket %v, want %v", name, k, got, bucket)
				}
			}
		}
	}
	if sorted != nil {
		if sBase > len(rows) || len(sorted) > len(rows) {
			t.Fatalf("index %s sorted: %d positions (base %d) for %d rows", name, len(sorted), sBase, len(rows))
		}
		// sorted[:g] must be an in-order permutation of [0, g) for every
		// fence g >= sBase; checking the longest one covers them all.
		n := len(sorted)
		seen := make([]bool, n)
		for i, ri := range sorted {
			if ri < 0 || ri >= n || seen[ri] {
				t.Fatalf("index %s sorted: bad or duplicate position %d", name, ri)
			}
			seen[ri] = true
			if i > 0 && !lessPosIn(idx.Cols, rows, sorted[i-1], ri) {
				t.Fatalf("index %s sorted: out of order at %d (%d, %d)", name, i, sorted[i-1], ri)
			}
		}
	}
}

// TestDeleteNoFullRebuild is the DML cost-asymmetry regression test: a
// single-row DELETE ... WHERE rid = ? must maintain every built index
// incrementally — no full rebuild — and leave them correct.
func TestDeleteNoFullRebuild(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE d (rid INTEGER, v TEXT, flag INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_d_rid ON d (rid)`)
	mustExec(t, db, `CREATE INDEX idx_d_v ON d (v)`)
	for i := 0; i < 200; i++ {
		mustExec(t, db, `INSERT INTO d VALUES (?, ?, 0)`,
			relation.Int(int64(i)), relation.Text(string(rune('a'+i%7))))
	}
	// Force both structures of both indexes to build.
	mustQuery(t, db, `SELECT v FROM d WHERE rid = 17`)                 // eq map on rid
	mustQuery(t, db, `SELECT rid FROM d WHERE rid > 100 ORDER BY rid`) // sorted on rid
	mustQuery(t, db, `SELECT rid FROM d WHERE v = 'c'`)                // eq map on v
	mustQuery(t, db, `SELECT v FROM d ORDER BY v`)                     // sorted on v

	ridIdx := testIndex(t, db, "d", "idx_d_rid")
	vIdx := testIndex(t, db, "d", "idx_d_v")
	ridBuilds, vBuilds := ridIdx.rebuilds.Load(), vIdx.rebuilds.Load()
	if ridBuilds == 0 || vBuilds == 0 {
		t.Fatalf("indexes not built before the delete (rid %d, v %d)", ridBuilds, vBuilds)
	}

	if n := mustExec(t, db, `DELETE FROM d WHERE rid = ?`, relation.Int(42)); n != 1 {
		t.Fatalf("deleted %d rows, want 1", n)
	}
	// UPDATE of a non-indexed column must not touch any index either.
	mustExec(t, db, `UPDATE d SET flag = 1 WHERE rid < 10`)

	if got := mustQuery(t, db, `SELECT v FROM d WHERE rid = 41`); flat(got) != "g" {
		t.Fatalf("post-delete eq probe: %q", flat(got))
	}
	res := mustQuery(t, db, `SELECT rid FROM d WHERE rid >= 40 AND rid <= 44 ORDER BY rid`)
	if flat(res) != "40;41;43;44" {
		t.Fatalf("post-delete range: %q", flat(res))
	}
	verifyIndexConsistent(t, db, "d", "idx_d_rid")
	verifyIndexConsistent(t, db, "d", "idx_d_v")

	if ridIdx.rebuilds.Load() != ridBuilds || vIdx.rebuilds.Load() != vBuilds {
		t.Fatalf("DELETE/UPDATE forced a full index rebuild (rid %d→%d, v %d→%d)",
			ridBuilds, ridIdx.rebuilds.Load(), vBuilds, vIdx.rebuilds.Load())
	}
}

// TestIncrementalMaintenanceRandomOps hammers one table with random
// INSERT/UPDATE/DELETE/TRUNCATE and verifies after every step that the
// incrementally maintained structures equal a from-scratch build and
// that indexed query results match the unindexed engine.
func TestIncrementalMaintenanceRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db := NewDB()
	mustExec(t, db, `CREATE TABLE h (k INTEGER, s TEXT, w INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_h_k ON h (k)`)
	mustExec(t, db, `CREATE INDEX idx_h_ks ON h (k, s)`)
	ref := NewDB() // identical table, no indexes: the oracle
	mustExec(t, ref, `CREATE TABLE h (k INTEGER, s TEXT, w INTEGER)`)

	both := func(q string, params ...relation.Value) {
		mustExec(t, db, q, params...)
		mustExec(t, ref, q, params...)
	}
	for i := 0; i < 40; i++ {
		both(`INSERT INTO h VALUES (?, ?, ?)`,
			relation.Int(int64(rng.Intn(12))), relation.Text(string(rune('a'+rng.Intn(4)))), relation.Int(int64(i)))
	}
	// Build everything.
	mustQuery(t, db, `SELECT w FROM h WHERE k = 3`)
	mustQuery(t, db, `SELECT k FROM h ORDER BY k`)
	mustQuery(t, db, `SELECT w FROM h WHERE k = 3 AND s = 'a'`)
	mustQuery(t, db, `SELECT k FROM h ORDER BY k, s`)

	for step := 0; step < 120; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			both(`INSERT INTO h VALUES (?, ?, ?)`,
				relation.Int(int64(rng.Intn(12))), relation.Text(string(rune('a'+rng.Intn(4)))), relation.Int(int64(1000+step)))
		case 4, 5:
			both(`UPDATE h SET k = ? WHERE w % 7 = ?`,
				relation.Int(int64(rng.Intn(12))), relation.Int(int64(rng.Intn(7))))
		case 6:
			both(`UPDATE h SET s = ?, w = w + 1 WHERE k = ?`,
				relation.Text(string(rune('a'+rng.Intn(4)))), relation.Int(int64(rng.Intn(12))))
		case 7, 8:
			both(`DELETE FROM h WHERE k = ? AND w % 3 = ?`,
				relation.Int(int64(rng.Intn(12))), relation.Int(int64(rng.Intn(3))))
		default:
			if rng.Intn(4) == 0 {
				both(`TRUNCATE TABLE h`)
			}
		}
		verifyIndexConsistent(t, db, "h", "idx_h_k")
		verifyIndexConsistent(t, db, "h", "idx_h_ks")

		kq := fmt.Sprintf(`SELECT w FROM h WHERE k = %d`, rng.Intn(12))
		if a, b := canonical(mustQuery(t, db, kq)), canonical(mustQuery(t, ref, kq)); a != b {
			t.Fatalf("step %d: eq probe diverges on %q: %q vs %q", step, kq, a, b)
		}
		rq := fmt.Sprintf(`SELECT k, s, w FROM h WHERE k >= %d AND k < %d ORDER BY k, s, w`, rng.Intn(6), 6+rng.Intn(6))
		if a, b := flat(mustQuery(t, db, rq)), flat(mustQuery(t, ref, rq)); a != b {
			t.Fatalf("step %d: range scan diverges on %q: %q vs %q", step, rq, a, b)
		}
	}
}

// TestOrderedScanMatchesSort pins index-served ORDER BY (ASC and DESC,
// with and without a range restriction) to the forced nested-loop
// path's sorted output.
func TestOrderedScanMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	db := NewDB()
	mustExec(t, db, `CREATE TABLE o (a INTEGER, b INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_o_ab ON o (a, b)`)
	for i := 0; i < 80; i++ {
		a := relation.Int(int64(rng.Intn(10)))
		if rng.Intn(9) == 0 {
			a = relation.Null()
		}
		mustExec(t, db, `INSERT INTO o VALUES (?, ?)`, a, relation.Int(int64(rng.Intn(5))))
	}
	for _, q := range []string{
		`SELECT a, b FROM o ORDER BY a, b`,
		`SELECT a, b FROM o ORDER BY a DESC, b DESC`,
		`SELECT a, b FROM o WHERE a >= 3 AND a <= 7 ORDER BY a, b`,
		`SELECT a, b FROM o WHERE a BETWEEN 2 AND 8 AND b <> 1 ORDER BY a, b`,
		`SELECT DISTINCT a, b FROM o ORDER BY a, b`,
		`SELECT a, b FROM o ORDER BY a, b LIMIT 7 OFFSET 3`,
	} {
		plan, err := db.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan, "no sort") {
			t.Fatalf("expected index-served ORDER BY for %q:\n%s", q, plan)
		}
		planned, nested := runBothPaths(t, db, q)
		if planned != nested {
			t.Fatalf("ordered scan diverges on %q:\nplanned %q\nnested  %q", q, planned, nested)
		}
		// ORDER BY covers every output column, so the sequences must be
		// identical, not just the multisets.
		DisablePlanner = true
		n, err := db.Query(q)
		DisablePlanner = false
		if err != nil {
			t.Fatal(err)
		}
		if p := mustQuery(t, db, q); flat(p) != flat(n) {
			t.Fatalf("ordered scan sequence diverges on %q:\nplanned %q\nnested  %q", q, flat(p), flat(n))
		}
	}
	// Shapes that must NOT claim index order: mixed direction, non-prefix
	// key, expression key.
	for _, q := range []string{
		`SELECT a, b FROM o ORDER BY a, b DESC`,
		`SELECT a, b FROM o ORDER BY b`,
		`SELECT a, b FROM o ORDER BY a + 1`,
	} {
		plan, err := db.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan, "sort") || strings.Contains(plan, "no sort") {
			t.Fatalf("expected a real sort for %q:\n%s", q, plan)
		}
	}
}

// TestRangeScanCorrectness checks range-pruned scans against the
// nested loop across operators, strictness, NULL bounds and correlated
// bounds.
func TestRangeScanCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	db := NewDB()
	mustExec(t, db, `CREATE TABLE rt (k INTEGER, v INTEGER)`)
	mustExec(t, db, `CREATE TABLE drv (lo INTEGER, hi INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_rt_k ON rt (k)`)
	for i := 0; i < 90; i++ {
		k := relation.Int(int64(rng.Intn(20)))
		if rng.Intn(10) == 0 {
			k = relation.Null()
		}
		mustExec(t, db, `INSERT INTO rt VALUES (?, ?)`, k, relation.Int(int64(i)))
	}
	mustExec(t, db, `INSERT INTO drv VALUES (3, 11), (8, 15)`)

	for _, q := range []string{
		`SELECT v FROM rt WHERE k > 5`,
		`SELECT v FROM rt WHERE k >= 5 AND k < 12`,
		`SELECT v FROM rt WHERE k <= 4`,
		`SELECT v FROM rt WHERE k BETWEEN 7 AND 13`,
		`SELECT v FROM rt WHERE 6 < k AND 14 >= k`,
		`SELECT v FROM rt WHERE k > NULL`,
		`SELECT d.lo, r.v FROM drv d, rt r WHERE r.k >= d.lo AND r.k <= d.hi`,
	} {
		planned, nested := runBothPaths(t, db, q)
		if planned != nested {
			t.Fatalf("range scan diverges on %q:\nplanned %q\nnested  %q", q, planned, nested)
		}
	}
	// Parameterized slice restriction — the parallel detector's shape.
	q := `SELECT v FROM rt WHERE k >= ? AND k <= ?`
	planned := canonical(mustQuery(t, db, q, relation.Int(4), relation.Int(9)))
	DisablePlanner = true
	nres, err := db.Query(q, relation.Int(4), relation.Int(9))
	DisablePlanner = false
	if err != nil {
		t.Fatal(err)
	}
	if planned != canonical(nres) {
		t.Fatalf("parameterized range diverges: %q vs %q", planned, canonical(nres))
	}
}

// TestRangeScanNaNConsistency: NaN must not break the index's total
// order. relation.Compare sorts NaN after every other number (equal
// only to itself), so the binary-searched range scan and the retained
// filter — both Compare-based — select the same rows; before that
// rule NaN compared equal to everything, idx.sorted was not totally
// ordered and sort.Search could land on a wrong boundary, silently
// dropping rows the nested loop kept.
func TestRangeScanNaNConsistency(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE f (x REAL)`)
	mustExec(t, db, `CREATE INDEX idx_f_x ON f (x)`)
	mustExec(t, db, `INSERT INTO f VALUES (?)`, relation.Float(math.NaN()))
	mustExec(t, db, `INSERT INTO f VALUES (1.0), (5.0)`)
	for _, q := range []string{
		`SELECT x FROM f WHERE x >= 3`,
		`SELECT x FROM f WHERE x < 3`,
		`SELECT x FROM f WHERE x BETWEEN 0 AND 6`,
		`SELECT x FROM f ORDER BY x`,
	} {
		planned, nested := runBothPaths(t, db, q)
		if planned != nested {
			t.Fatalf("NaN diverges on %q: planned %q vs nested %q", q, planned, nested)
		}
	}
	verifyIndexConsistent(t, db, "f", "idx_f_x")
}

// TestExplainAccessPaths walks the four access paths across
// detection-representative queries: equality probe, range scan,
// ordered scan and the full-scan fallback.
func TestExplainAccessPaths(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE data (rid INTEGER, city TEXT, ac INTEGER, sv INTEGER, mv INTEGER)`)
	mustExec(t, db, `CREATE TABLE enc (cid INTEGER, city_l INTEGER, ac_r INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_data_rid ON data (rid)`)
	mustExec(t, db, `CREATE INDEX idx_data_city ON data (city)`)
	for i := 0; i < 100; i++ {
		mustExec(t, db, `INSERT INTO data VALUES (?, ?, ?, 0, 0)`,
			relation.Int(int64(i)), relation.Text(string(rune('A'+i%5))), relation.Int(int64(200+i%3)))
	}
	mustExec(t, db, `INSERT INTO enc VALUES (1, 1, 2), (2, 2, 1)`)

	cases := []struct {
		name, q, want string
	}{
		{"eq-probe", `SELECT rid FROM data WHERE city = 'B'`, "index probe data via idx_data_city"},
		{"range-scan", `SELECT rid FROM data WHERE rid >= ? AND rid <= ?`, "range scan data via idx_data_rid on rid"},
		{"range-scan-join", `SELECT d.rid FROM enc c, data d WHERE d.rid >= ? AND d.rid <= ? AND d.ac <> c.ac_r`,
			"range scan d via idx_data_rid on rid"},
		{"ordered-scan", `SELECT rid, city FROM data WHERE sv = 1 OR mv = 1 ORDER BY rid`, "ordered scan data via idx_data_rid"},
		{"ordered-range-scan", `SELECT rid FROM data WHERE rid > 10 ORDER BY rid`, "ordered range scan data via idx_data_rid on rid"},
		{"fallback-full-scan", `SELECT rid FROM data WHERE ac >= 201`, "scan data"},
	}
	for _, tc := range cases {
		plan, err := db.Explain(tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !strings.Contains(plan, tc.want) {
			t.Fatalf("%s: plan for %q lacks %q:\n%s", tc.name, tc.q, tc.want, plan)
		}
	}
	// The fallback line must really be a bare scan, not a range/ordered one.
	plan, err := db.Explain(`SELECT rid FROM data WHERE ac >= 201`)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"range scan", "ordered"} {
		if strings.Contains(plan, banned) {
			t.Fatalf("fallback plan unexpectedly uses %q:\n%s", banned, plan)
		}
	}
}

// TestTruncateKeepsBuiltIndexes: TRUNCATE empties built structures in
// place (no rebuild on next probe) and later inserts maintain them.
func TestTruncateKeepsBuiltIndexes(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE tr (k INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_tr_k ON tr (k)`)
	mustExec(t, db, `INSERT INTO tr VALUES (3), (1), (2)`)
	mustQuery(t, db, `SELECT k FROM tr WHERE k = 2`)
	mustQuery(t, db, `SELECT k FROM tr ORDER BY k`)
	idx := testIndex(t, db, "tr", "idx_tr_k")
	builds := idx.rebuilds.Load()

	mustExec(t, db, `TRUNCATE TABLE tr`)
	mustExec(t, db, `INSERT INTO tr VALUES (9), (7), (8)`)
	if got := flat(mustQuery(t, db, `SELECT k FROM tr ORDER BY k`)); got != "7;8;9" {
		t.Fatalf("post-truncate ordered scan: %q", got)
	}
	if got := flat(mustQuery(t, db, `SELECT k FROM tr WHERE k = 8`)); got != "8" {
		t.Fatalf("post-truncate eq probe: %q", got)
	}
	verifyIndexConsistent(t, db, "tr", "idx_tr_k")
	if idx.rebuilds.Load() != builds {
		t.Fatalf("TRUNCATE forced a rebuild (%d → %d)", builds, idx.rebuilds.Load())
	}
}

// TestOrderedScanSortedOutput double-checks actual sortedness of an
// index-served ORDER BY (belt and braces beyond the differential
// comparison), including a DESC iteration.
func TestOrderedScanSortedOutput(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE s (n INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_s_n ON s (n)`)
	vals := []int64{5, 3, 9, 1, 7, 3, 5, 0}
	for _, v := range vals {
		mustExec(t, db, `INSERT INTO s VALUES (?)`, relation.Int(v))
	}
	asc := mustQuery(t, db, `SELECT n FROM s ORDER BY n`)
	want := append([]int64(nil), vals...)
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	for i, row := range asc.Rows {
		if row[0].I != want[i] {
			t.Fatalf("ASC position %d: %d, want %d", i, row[0].I, want[i])
		}
	}
	desc := mustQuery(t, db, `SELECT n FROM s ORDER BY n DESC`)
	for i, row := range desc.Rows {
		if row[0].I != want[len(want)-1-i] {
			t.Fatalf("DESC position %d: %d, want %d", i, row[0].I, want[len(want)-1-i])
		}
	}
}

// TestJoinDriverOrderBy pins the multi-table index-served ORDER BY:
// when the ordered source is also the join order's first pick, the
// driving level iterates its index in order and the final sort
// disappears — visible as `order by: served by index (join driver)` —
// and the emitted sequence matches the forced nested loop exactly
// (outputs are restricted to the sort keys, so tie groups hold
// identical rows).
func TestJoinDriverOrderBy(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	db := NewDB()
	mustExec(t, db, `CREATE TABLE big (k INTEGER, v INTEGER)`)
	mustExec(t, db, `CREATE TABLE drv (a INTEGER, b INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_drv_ab ON drv (a, b)`)
	for i := 0; i < 90; i++ {
		mustExec(t, db, `INSERT INTO big VALUES (?, ?)`,
			relation.Int(int64(rng.Intn(8))), relation.Int(int64(i)))
	}
	for i := 0; i < 30; i++ {
		a := relation.Int(int64(rng.Intn(8)))
		if rng.Intn(9) == 0 {
			a = relation.Null()
		}
		mustExec(t, db, `INSERT INTO drv VALUES (?, ?)`, a, relation.Int(int64(rng.Intn(4))))
	}

	for _, q := range []string{
		`SELECT d.a, d.b FROM drv d, big t WHERE d.a = t.k ORDER BY d.a, d.b`,
		`SELECT d.a, d.b FROM drv d, big t WHERE d.a = t.k AND t.v <> 3 ORDER BY d.a DESC, d.b DESC`,
		`SELECT d.a, d.b FROM big t, drv d WHERE d.a = t.k ORDER BY d.a, d.b`,
	} {
		plan, err := db.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan, "order by: served by index (join driver)") {
			t.Fatalf("expected join-driver order service for %q:\n%s", q, plan)
		}
		DisablePlanner = true
		n, err := db.Query(q)
		DisablePlanner = false
		if err != nil {
			t.Fatal(err)
		}
		if p := mustQuery(t, db, q); flat(p) != flat(n) {
			t.Fatalf("join-driver ordered sequence diverges on %q:\nplanned %q\nnested  %q", q, flat(p), flat(n))
		}
	}

	// The ordered source is NOT the first pick here (big drives nothing:
	// drv is smaller, so ordering by big's columns cannot be served) —
	// the plan must fall back to a real sort, still correct.
	q := `SELECT t.k, t.v FROM drv d, big t WHERE d.a = t.k ORDER BY t.k, t.v`
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "join driver") || !strings.Contains(plan, "sort") {
		t.Fatalf("non-driving ordered source must sort:\n%s", plan)
	}
	planned, nested := runBothPaths(t, db, q)
	if planned != nested {
		t.Fatalf("sorted fallback diverges on %q", q)
	}
}

// TestRangeElisionDifferential targets the elided-filter paths: the
// inclusive bounds dropped from the filter set must select exactly the
// rows the closure predicates would, across NULL-bearing columns,
// upper-bound-only scans (where the scan itself must exclude the NULL
// rows sorting first), strict/inclusive mixes, BETWEEN, NULL and NaN
// bounds, and correlated bounds re-evaluated per entry.
func TestRangeElisionDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	db := NewDB()
	mustExec(t, db, `CREATE TABLE re (k REAL, w INTEGER)`)
	mustExec(t, db, `CREATE TABLE bnd (lo INTEGER, hi INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_re_k ON re (k)`)
	for i := 0; i < 110; i++ {
		k := relation.Value(relation.Float(float64(rng.Intn(24)) / 2))
		switch rng.Intn(12) {
		case 0:
			k = relation.Null()
		case 1:
			k = relation.Float(math.NaN())
		}
		mustExec(t, db, `INSERT INTO re VALUES (?, ?)`, k, relation.Int(int64(i)))
	}
	mustExec(t, db, `INSERT INTO bnd VALUES (2, 9), (5, 5), (11, 3)`)

	// The upper-bound-only shape must show the elision and no kernels.
	plan, err := db.Explain(`SELECT w FROM re WHERE k <= 6`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "1 filter(s) elided: implied by range") {
		t.Fatalf("expected the inclusive upper bound to elide:\n%s", plan)
	}

	for _, q := range []string{
		`SELECT w FROM re WHERE k <= 6`,
		`SELECT w FROM re WHERE k >= 4`,
		`SELECT w FROM re WHERE k >= 4 AND k <= 9`,
		`SELECT w FROM re WHERE k > 4 AND k <= 9`,
		`SELECT w FROM re WHERE k >= 4 AND k < 9`,
		`SELECT w FROM re WHERE k BETWEEN 3 AND 8`,
		`SELECT w FROM re WHERE k BETWEEN 8 AND 3`,
		`SELECT w FROM re WHERE k <= NULL`,
		`SELECT w FROM re WHERE k >= 100`,
		`SELECT b.lo, r.w FROM bnd b, re r WHERE r.k >= b.lo AND r.k <= b.hi`,
		`SELECT b.lo, r.w FROM bnd b, re r WHERE r.k <= b.hi`,
	} {
		batch, row, nested := runThreeWays(t, db, q, false)
		if batch != row || row != nested {
			t.Fatalf("elision divergence on %q:\nbatch  %q\nrow    %q\nnested %q", q, batch, row, nested)
		}
	}

	// NaN bound through a parameter: Compare places NaN above every
	// number, and the pruned scan must agree with the closure exactly.
	q := `SELECT w FROM re WHERE k <= ?`
	p := canonical(mustQuery(t, db, q, relation.Float(math.NaN())))
	DisablePlanner = true
	nres, err := db.Query(q, relation.Float(math.NaN()))
	DisablePlanner = false
	if err != nil {
		t.Fatal(err)
	}
	if p != canonical(nres) {
		t.Fatalf("NaN-bound elision diverges: %q vs %q", p, canonical(nres))
	}
}
