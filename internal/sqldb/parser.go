package sqldb

import (
	"strconv"
	"strings"

	"ecfd/internal/relation"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, errAt(0, "expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	p := &parser{lex: &lexer{src: src}}
	p.bump()
	var out []Statement
	for {
		for p.isPunct(";") {
			p.bump()
		}
		if p.tok.kind == tokEOF {
			break
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if p.err != nil {
			return nil, p.err
		}
		if p.tok.kind != tokEOF && !p.isPunct(";") {
			return nil, errAt(p.tok.pos, "unexpected %s after statement", p.tok)
		}
	}
	if p.err != nil {
		return nil, p.err
	}
	if len(out) == 0 {
		return nil, errAt(0, "empty statement")
	}
	return out, nil
}

type parser struct {
	lex    *lexer
	tok    token
	err    error
	params int
}

func (p *parser) bump() {
	if p.err != nil {
		p.tok = token{kind: tokEOF}
		return
	}
	t, err := p.lex.next()
	if err != nil {
		p.err = err
		t = token{kind: tokEOF}
	}
	p.tok = t
}

func (p *parser) isKeyword(kw string) bool { return p.tok.kind == tokKeyword && p.tok.text == kw }
func (p *parser) isPunct(s string) bool    { return p.tok.kind == tokPunct && p.tok.text == s }

// accept consumes the keyword if present.
func (p *parser) accept(kw string) bool {
	if p.isKeyword(kw) {
		p.bump()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return errAt(p.tok.pos, "expected %s, got %s", kw, p.tok)
	}
	p.bump()
	return nil
}

func (p *parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return errAt(p.tok.pos, "expected %q, got %s", s, p.tok)
	}
	p.bump()
	return nil
}

func (p *parser) ident() (string, error) {
	// Non-reserved keywords (type names, function names) may be used as
	// identifiers in practice; we allow a safe subset.
	if p.tok.kind == tokIdent ||
		(p.tok.kind == tokKeyword && relaxedIdent[p.tok.text]) {
		s := p.tok.text
		p.bump()
		return s, nil
	}
	return "", errAt(p.tok.pos, "expected identifier, got %s", p.tok)
}

var relaxedIdent = map[string]bool{
	"KEY": true, "INDEX": true, "COUNT": true, "SUM": true, "MIN": true,
	"MAX": true, "AVG": true, "TEXT": true, "INT": true, "REAL": true,
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.isKeyword("SELECT"):
		return p.selectStmt()
	case p.isKeyword("CREATE"):
		return p.createStmt()
	case p.isKeyword("DROP"):
		return p.dropStmt()
	case p.isKeyword("TRUNCATE"):
		p.bump()
		p.accept("TABLE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &TruncateTable{Name: name}, nil
	case p.isKeyword("INSERT"):
		return p.insertStmt()
	case p.isKeyword("UPDATE"):
		return p.updateStmt()
	case p.isKeyword("DELETE"):
		return p.deleteStmt()
	default:
		return nil, errAt(p.tok.pos, "expected statement, got %s", p.tok)
	}
}

func (p *parser) createStmt() (Statement, error) {
	p.bump() // CREATE
	switch {
	case p.isKeyword("TABLE"):
		p.bump()
		ct := &CreateTable{}
		if p.isKeyword("IF") {
			p.bump()
			if err := p.expectKeyword("NOT"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			ct.IfNotExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ct.Name = name
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			kind, err := p.columnType()
			if err != nil {
				return nil, err
			}
			ct.Cols = append(ct.Cols, ColumnDef{Name: col, Kind: kind})
			// Swallow simple column constraints.
			for p.isKeyword("PRIMARY") || p.isKeyword("KEY") || p.isKeyword("NOT") || p.isKeyword("NULL") {
				p.bump()
			}
			if p.isPunct(",") {
				p.bump()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return ct, nil
	case p.isKeyword("INDEX"):
		p.bump()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		ci := &CreateIndex{Name: name, Table: table}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ci.Cols = append(ci.Cols, col)
			if p.isPunct(",") {
				p.bump()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return ci, nil
	default:
		return nil, errAt(p.tok.pos, "expected TABLE or INDEX after CREATE, got %s", p.tok)
	}
}

func (p *parser) columnType() (relation.Kind, error) {
	if p.tok.kind != tokKeyword {
		return 0, errAt(p.tok.pos, "expected column type, got %s", p.tok)
	}
	var k relation.Kind
	switch p.tok.text {
	case "INTEGER", "INT":
		k = relation.KindInt
	case "TEXT", "VARCHAR":
		k = relation.KindText
	case "REAL", "FLOAT":
		k = relation.KindFloat
	case "BOOLEAN", "BOOL":
		k = relation.KindBool
	default:
		return 0, errAt(p.tok.pos, "unknown column type %s", p.tok)
	}
	p.bump()
	if p.isPunct("(") { // VARCHAR(255) — size is ignored
		p.bump()
		if p.tok.kind != tokNumber {
			return 0, errAt(p.tok.pos, "expected size, got %s", p.tok)
		}
		p.bump()
		if err := p.expectPunct(")"); err != nil {
			return 0, err
		}
	}
	return k, nil
}

func (p *parser) dropStmt() (Statement, error) {
	p.bump() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	dt := &DropTable{}
	if p.isKeyword("IF") {
		p.bump()
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		dt.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	dt.Name = name
	return dt, nil
}

func (p *parser) insertStmt() (Statement, error) {
	p.bump() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.isPunct("(") {
		p.bump()
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, col)
			if p.isPunct(",") {
				p.bump()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.isKeyword("VALUES"):
		p.bump()
		for {
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.isPunct(",") {
					p.bump()
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if p.isPunct(",") {
				p.bump()
				continue
			}
			break
		}
		return ins, nil
	case p.isKeyword("SELECT"):
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		ins.Query = sel
		return ins, nil
	default:
		return nil, errAt(p.tok.pos, "expected VALUES or SELECT, got %s", p.tok)
	}
}

func (p *parser) updateStmt() (Statement, error) {
	p.bump() // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	up := &Update{Table: name}
	if p.tok.kind == tokIdent { // optional alias
		up.Alias = p.tok.text
		p.bump()
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: val})
		if p.isPunct(",") {
			p.bump()
			continue
		}
		break
	}
	if p.accept("WHERE") {
		if up.Where, err = p.expression(); err != nil {
			return nil, err
		}
	}
	return up, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.bump() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: name}
	if p.tok.kind == tokIdent {
		del.Alias = p.tok.text
		p.bump()
	}
	if p.accept("WHERE") {
		if del.Where, err = p.expression(); err != nil {
			return nil, err
		}
	}
	return del, nil
}

func (p *parser) selectStmt() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if p.accept("DISTINCT") {
		sel.Distinct = true
	} else {
		p.accept("ALL")
	}
	for {
		se, err := p.selectExpr()
		if err != nil {
			return nil, err
		}
		sel.Exprs = append(sel.Exprs, se)
		if p.isPunct(",") {
			p.bump()
			continue
		}
		break
	}
	if p.accept("FROM") {
		tr, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, tr)
	fromList:
		for {
			switch {
			case p.isPunct(","):
				p.bump()
				tr, err := p.tableRef()
				if err != nil {
					return nil, err
				}
				sel.From = append(sel.From, tr)
			case p.isKeyword("CROSS"), p.isKeyword("INNER"), p.isKeyword("JOIN"):
				p.accept("CROSS")
				p.accept("INNER")
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				tr, err := p.tableRef()
				if err != nil {
					return nil, err
				}
				sel.From = append(sel.From, tr)
				if p.accept("ON") {
					cond, err := p.expression()
					if err != nil {
						return nil, err
					}
					sel.Where = conjoin(sel.Where, cond)
				}
			default:
				break fromList
			}
		}
	}
	if p.accept("WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		sel.Where = conjoin(sel.Where, w)
	}
	if p.accept("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.isPunct(",") {
				p.bump()
				continue
			}
			break
		}
	}
	if p.accept("HAVING") {
		h, err := p.expression()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.accept("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept("DESC") {
				item.Desc = true
			} else {
				p.accept("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.isPunct(",") {
				p.bump()
				continue
			}
			break
		}
	}
	if p.accept("LIMIT") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	if p.accept("OFFSET") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		sel.Offset = e
	}
	return sel, nil
}

func conjoin(a, b Expr) Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &Binary{Op: "AND", L: a, R: b}
}

func (p *parser) selectExpr() (SelectExpr, error) {
	if p.isPunct("*") {
		p.bump()
		return SelectExpr{Star: true}, nil
	}
	// t.* form: identifier '.' '*'
	if p.tok.kind == tokIdent {
		save := *p.lex
		saveTok := p.tok
		name := p.tok.text
		p.bump()
		if p.isPunct(".") {
			p.bump()
			if p.isPunct("*") {
				p.bump()
				return SelectExpr{Star: true, StarTable: name}, nil
			}
		}
		*p.lex = save
		p.tok = saveTok
	}
	e, err := p.expression()
	if err != nil {
		return SelectExpr{}, err
	}
	se := SelectExpr{Expr: e}
	if p.accept("AS") {
		alias, err := p.ident()
		if err != nil {
			return SelectExpr{}, err
		}
		se.Alias = alias
	} else if p.tok.kind == tokIdent {
		se.Alias = p.tok.text
		p.bump()
	}
	return se, nil
}

func (p *parser) tableRef() (TableRef, error) {
	var tr TableRef
	if p.isPunct("(") {
		p.bump()
		sub, err := p.selectStmt()
		if err != nil {
			return tr, err
		}
		if err := p.expectPunct(")"); err != nil {
			return tr, err
		}
		tr.Sub = sub
	} else {
		name, err := p.ident()
		if err != nil {
			return tr, err
		}
		tr.Table = name
	}
	if p.accept("AS") {
		alias, err := p.ident()
		if err != nil {
			return tr, err
		}
		tr.Alias = alias
	} else if p.tok.kind == tokIdent {
		tr.Alias = p.tok.text
		p.bump()
	}
	if tr.Sub != nil && tr.Alias == "" {
		return tr, errAt(p.tok.pos, "derived table requires an alias")
	}
	return tr, nil
}

// --- expressions (precedence climbing) ---

func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		p.bump()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		p.bump()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.isKeyword("NOT") && !p.peekIsExists() {
		p.bump()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.comparison()
}

// peekIsExists reports whether the current NOT begins NOT EXISTS (...),
// which comparison() handles so Exists carries its own negation flag.
func (p *parser) peekIsExists() bool {
	if !p.isKeyword("NOT") {
		return false
	}
	save := *p.lex
	saveTok := p.tok
	p.bump()
	isExists := p.isKeyword("EXISTS")
	*p.lex = save
	p.tok = saveTok
	return isExists
}

func (p *parser) comparison() (Expr, error) {
	if p.isKeyword("EXISTS") || (p.isKeyword("NOT") && p.peekIsExists()) {
		neg := p.accept("NOT")
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &Exists{Sub: sub, Neg: neg}, nil
	}

	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("=") || p.isPunct("<>") || p.isPunct("!=") ||
			p.isPunct("<") || p.isPunct("<=") || p.isPunct(">") || p.isPunct(">="):
			op := p.tok.text
			if op == "!=" {
				op = "<>"
			}
			p.bump()
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: op, L: l, R: r}

		case p.isKeyword("IS"):
			p.bump()
			neg := p.accept("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			l = &IsNull{X: l, Neg: neg}

		case p.isKeyword("IN"), p.isKeyword("NOT"), p.isKeyword("LIKE"), p.isKeyword("BETWEEN"):
			neg := false
			if p.isKeyword("NOT") {
				save := *p.lex
				saveTok := p.tok
				p.bump()
				if !p.isKeyword("IN") && !p.isKeyword("LIKE") && !p.isKeyword("BETWEEN") {
					*p.lex = save
					p.tok = saveTok
					return l, nil
				}
				neg = true
			}
			switch {
			case p.accept("IN"):
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				if p.isKeyword("SELECT") {
					sub, err := p.selectStmt()
					if err != nil {
						return nil, err
					}
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
					l = &InSelect{X: l, Sub: sub, Neg: neg}
				} else {
					var list []Expr
					for {
						e, err := p.expression()
						if err != nil {
							return nil, err
						}
						list = append(list, e)
						if p.isPunct(",") {
							p.bump()
							continue
						}
						break
					}
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
					l = &InList{X: l, List: list, Neg: neg}
				}
			case p.accept("LIKE"):
				pat, err := p.additive()
				if err != nil {
					return nil, err
				}
				l = &Like{X: l, Pattern: pat, Neg: neg}
			case p.accept("BETWEEN"):
				lo, err := p.additive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.additive()
				if err != nil {
					return nil, err
				}
				l = &Between{X: l, Lo: lo, Hi: hi, Neg: neg}
			default:
				return nil, errAt(p.tok.pos, "expected IN, LIKE or BETWEEN, got %s", p.tok)
			}

		default:
			return l, nil
		}
	}
}

func (p *parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") || p.isPunct("||") {
		op := p.tok.text
		p.bump()
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) multiplicative() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") || p.isPunct("%") {
		op := p.tok.text
		p.bump()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.isPunct("-") {
		p.bump()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	if p.isPunct("+") {
		p.bump()
		return p.unary()
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	tok := p.tok
	switch {
	case tok.kind == tokNumber:
		p.bump()
		if strings.ContainsAny(tok.text, ".eE") {
			f, err := strconv.ParseFloat(tok.text, 64)
			if err != nil {
				return nil, errAt(tok.pos, "bad number %q", tok.text)
			}
			return &Literal{Val: relation.Float(f)}, nil
		}
		i, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil {
			return nil, errAt(tok.pos, "bad integer %q", tok.text)
		}
		return &Literal{Val: relation.Int(i)}, nil

	case tok.kind == tokString:
		p.bump()
		return &Literal{Val: relation.Text(tok.text)}, nil

	case tok.kind == tokParam:
		p.bump()
		e := &Param{Index: p.params}
		p.params++
		return e, nil

	case p.isKeyword("NULL"):
		p.bump()
		return &Literal{Val: relation.Null()}, nil
	case p.isKeyword("TRUE"):
		p.bump()
		return &Literal{Val: relation.Bool(true)}, nil
	case p.isKeyword("FALSE"):
		p.bump()
		return &Literal{Val: relation.Bool(false)}, nil

	case p.isKeyword("CASE"):
		return p.caseExpr()

	case p.isKeyword("COUNT") || p.isKeyword("SUM") || p.isKeyword("AVG") ||
		p.isKeyword("MIN") || p.isKeyword("MAX"):
		name := tok.text
		p.bump()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		fc := &FuncCall{Name: name}
		if p.isPunct("*") {
			p.bump()
			fc.Star = true
		} else {
			if p.accept("DISTINCT") {
				fc.Distinct = true
			}
			arg, err := p.expression()
			if err != nil {
				return nil, err
			}
			fc.Args = []Expr{arg}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return fc, nil

	case p.isPunct("("):
		p.bump()
		if p.isKeyword("SELECT") {
			sub, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &ScalarSub{Sub: sub}, nil
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil

	case tok.kind == tokIdent:
		name := tok.text
		p.bump()
		if p.isPunct("(") { // scalar function
			p.bump()
			fc := &FuncCall{Name: strings.ToUpper(name)}
			if !p.isPunct(")") {
				for {
					arg, err := p.expression()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, arg)
					if p.isPunct(",") {
						p.bump()
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		if p.isPunct(".") {
			p.bump()
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Column: col}, nil
		}
		return &ColumnRef{Column: name}, nil

	default:
		return nil, errAt(tok.pos, "unexpected %s in expression", tok)
	}
}

func (p *parser) caseExpr() (Expr, error) {
	p.bump() // CASE
	c := &Case{}
	if !p.isKeyword("WHEN") {
		op, err := p.expression()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.accept("WHEN") {
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.expression()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, errAt(p.tok.pos, "CASE requires at least one WHEN")
	}
	if p.accept("ELSE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
