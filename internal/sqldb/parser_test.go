package sqldb

import (
	"strings"
	"testing"
)

func TestParseErrorsSurface(t *testing.T) {
	bad := []string{
		``,
		`;`,
		`SELEC x`,
		`SELECT FROM`,
		`SELECT * FROM`,
		`SELECT * FROM t WHERE`,
		`CREATE TABLE`,
		`CREATE TABLE t (a BLOB)`,
		`CREATE VIEW v AS SELECT 1`,
		`INSERT t VALUES (1)`,
		`INSERT INTO t (a VALUES (1)`,
		`INSERT INTO t SET a = 1`,
		`UPDATE t WHERE x = 1`,
		`DELETE t`,
		`SELECT CASE END`,
		`SELECT COUNT(*`,
		`SELECT (SELECT 1`,
		`SELECT 'unterminated`,
		`SELECT "unterminated`,
		`SELECT /* unterminated`,
		`SELECT x FROM (SELECT 1) -- derived without alias`,
		`SELECT 1 $ 2`,
		`SELECT x BETWEEN 1, 2`,
		`SELECT a.b.c FROM t`,
		`SELECT 99999999999999999999999`,
	}
	for _, src := range bad {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParseAccepts(t *testing.T) {
	good := []string{
		`SELECT 1; SELECT 2;`,
		`SELECT -1.5e3`,
		`SELECT .5`,
		`SELECT x FROM t WHERE x IS NOT NULL AND NOT x = 2`,
		`SELECT "quoted ident" FROM t`,
		`SELECT x /* block comment */ FROM t -- trailing`,
		`CREATE TABLE v (a VARCHAR(255) NOT NULL, b INT PRIMARY KEY)`,
		`SELECT x FROM a CROSS JOIN b`,
		`SELECT ALL x FROM t`,
		`SELECT x AS "the x" FROM t ORDER BY x ASC LIMIT 1 OFFSET 2`,
		`SELECT CASE WHEN a THEN 1 WHEN b THEN 2 ELSE 3 END FROM t`,
		`TRUNCATE TABLE x`,
		`TRUNCATE x`,
		`SELECT MIN(x), MAX(y) FROM t`,
	}
	for _, src := range good {
		if _, err := ParseScript(src); err != nil {
			t.Errorf("unexpected error for %q: %v", src, err)
		}
	}
}

func TestOrderByOrdinalRange(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE o (x INTEGER)`)
	if _, err := db.Query(`SELECT x FROM o ORDER BY 2`); err == nil {
		t.Error("out-of-range ordinal must fail at compile time")
	}
	if _, err := db.Query(`SELECT x FROM o ORDER BY 0`); err == nil {
		t.Error("zero ordinal must fail")
	}
}

func TestTokenAndErrorStrings(t *testing.T) {
	if (token{kind: tokEOF}).String() != "end of input" {
		t.Error("EOF token string")
	}
	if got := (token{kind: tokIdent, text: "x"}).String(); got != `"x"` {
		t.Errorf("token string = %s", got)
	}
	err := errAt(7, "boom %d", 42)
	if !strings.Contains(err.Error(), "offset 7") || !strings.Contains(err.Error(), "boom 42") {
		t.Errorf("errAt rendering: %v", err)
	}
}

func TestParamCounting(t *testing.T) {
	stmt, err := Parse(`SELECT * FROM t WHERE a = ? AND b = ? AND c IN (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	// Parameters get ascending indexes.
	var conj []Expr
	splitConjuncts(sel.Where, &conj)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	inList := conj[2].(*InList)
	if inList.List[0].(*Param).Index != 2 || inList.List[1].(*Param).Index != 3 {
		t.Error("param indexes must ascend in source order")
	}
}

func TestUpdateDeleteAliasParsing(t *testing.T) {
	stmt, err := Parse(`UPDATE t alias SET x = 1 WHERE alias.x = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*Update).Alias != "alias" {
		t.Error("update alias lost")
	}
	stmt, err = Parse(`DELETE FROM t d WHERE d.x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*Delete).Alias != "d" {
		t.Error("delete alias lost")
	}
}

func TestInsertMultiRowAndColumns(t *testing.T) {
	stmt, err := Parse(`INSERT INTO t (a, b) VALUES (1, 2), (3, 4), (5, 6)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if len(ins.Cols) != 2 || len(ins.Rows) != 3 {
		t.Errorf("cols=%d rows=%d", len(ins.Cols), len(ins.Rows))
	}
}
