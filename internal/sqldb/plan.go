package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"ecfd/internal/relation"
)

// This file is the query planner. Compilation (planWhere) decomposes a
// SELECT's WHERE clause into conjuncts, each conjunct into its OR
// alternatives, and annotates every piece with the set of FROM sources
// it reads. Execution (buildSchedule / runPlan) then replaces the
// all-pairs nested loop with a planned join:
//
//   - sources are visited smallest-first, so a 10-row pattern table
//     drives the loop over a 100k-row data table and not the reverse;
//   - equality conjuncts between a source and already-bound values
//     become hash probes — built once per statement over the build
//     side, or answered by a persistent secondary index when one
//     covers the key columns exactly;
//   - every conjunct is evaluated at the outermost level where all of
//     its sources are bound (predicate pushdown), pruning the join
//     subtree as early as possible;
//   - OR conjuncts are partially evaluated: each alternative runs at
//     the level where its own sources are bound, and once one
//     alternative is true the whole conjunct is satisfied for the
//     entire subtree. This is what makes the paper's Fig. 4 queries
//     cheap: terms like "c.A_L <> 1" resolve once per pattern tuple,
//     so the expensive set probes only run for the few attributes a
//     pattern actually constrains.
//
// The planner never changes semantics: a row combination is emitted
// iff every conjunct has at least one true alternative, which is
// exactly Truth(WHERE) under SQL three-valued logic. Evaluation order
// of (side-effect-free) predicates is the only thing that shifts.

// DisablePlanner forces every statement through the legacy all-pairs
// nested-loop path. It exists for the differential property tests and
// the ablation benchmark; production code must leave it false.
var DisablePlanner = false

// reorderMinRows is the largest-source threshold below which the
// planner keeps the syntactic FROM order: for tiny joins reordering
// buys nothing and would perturb the (unspecified but convenient)
// result order small tests rely on.
const reorderMinRows = 64

// srcMask is a bitset over the FROM sources of one SELECT scope.
type srcMask uint64

// planTerm is one OR alternative of a conjunct. Its AND factors are
// kept separate so each can run at the level where its own sources are
// bound: an alternative like "c.A_R = 1 AND <probe over t>" has its
// guard evaluated once per c row, and the probe only runs for the few
// alternatives the guard leaves alive.
type planTerm struct {
	id    int // global index into planState term arrays
	parts []planPart
	srcs  srcMask // union of part sources
}

// planPart is one AND factor of an OR alternative. kp holds the
// generalized batch-kernel compilations of the part (one per source
// orientation that qualifies — simple kernels, probe kernels, nested
// disjunctions); buildSchedule consumes them for plain conjuncts and
// whole OR groups so the level filters a selection vector instead of
// dispatching ex per row.
type planPart struct {
	ex   compiledExpr
	srcs srcMask
	kp   []kpredCand
}

// planConjunct is one AND conjunct of the WHERE clause.
type planConjunct struct {
	terms []planTerm
	srcs  srcMask
	eqs   []equiSide  // equality shapes usable as join/probe keys
	rngs  []rangeSide // inequality shapes usable as range-scan bounds
	// rngNeed is the elision contract of a single-predicate range
	// conjunct: how many adopted inclusive bounds make the retained
	// filter redundant — 1 for <= / >=, 2 for BETWEEN (both bounds),
	// 0 when the predicate can never be elided (strict operators).
	rngNeed int
}

// equiSide describes sources[src].col = key, with key reading only the
// sources in otherSrcs (plus outer scopes, parameters and constants).
type equiSide struct {
	src, col  int
	otherSrcs srcMask
	key       compiledExpr
}

// rangeSide describes a single-term inequality bound on a column:
// sources[src].col >= key (lower true) or <= key (lower false), with
// key reading only otherSrcs. Bounds are recorded inclusively — range
// pruning is conservative — but strict carries the operator's
// strictness: a strict bound (<, >) prunes inclusively and keeps its
// filter, while an inclusive bound adopted by the scan is *exactly*
// implied by the prune, so buildSchedule elides the redundant filter
// (the strictness flag exists precisely to tell the two apart).
type rangeSide struct {
	src, col  int
	lower     bool
	strict    bool
	otherSrcs srcMask
	key       compiledExpr
}

// planWhere decomposes the WHERE clause for cs. On any analysis
// failure it leaves cs.planOK false and the executor falls back to the
// legacy nested loop over cs.where.
func (c *compiler) planWhere(where Expr, cs *compiledSelect) {
	cs.planOK = false
	if len(cs.sources) == 0 || len(cs.sources) > 64 {
		return
	}
	depth := cs.depth
	var conjExprs []Expr
	splitConjuncts(where, &conjExprs)
	conjs := make([]*planConjunct, 0, len(conjExprs))
	nTerms := 0
	for _, cj := range conjExprs {
		var termExprs []Expr
		flattenLogical("OR", cj, &termExprs)
		pc := &planConjunct{}
		for _, te := range termExprs {
			var partExprs []Expr
			splitConjuncts(te, &partExprs)
			pt := planTerm{id: nTerms}
			nTerms++
			for _, pe := range partExprs {
				var mask srcMask
				err := c.walkBindings(pe, func(b binding) {
					if b.depth == depth {
						mask |= 1 << uint(b.src)
					}
				})
				if err != nil {
					return
				}
				ex, err := c.compileExpr(pe)
				if err != nil {
					return
				}
				part := planPart{ex: ex, srcs: mask}
				if mask != 0 {
					// Every part that reads a current-scope source gets its
					// kernel candidates: plain conjuncts consume simple
					// kernels, and whole OR groups are consumed when every
					// source-reading part of every alternative kernelizes.
					part.kp = c.extractKPred(pe, depth)
				}
				pt.parts = append(pt.parts, part)
				pt.srcs |= mask
			}
			pc.terms = append(pc.terms, pt)
			pc.srcs |= pt.srcs
		}
		if len(pc.terms) == 1 {
			c.extractEqui(termExprs[0], depth, pc)
			c.extractRange(termExprs[0], depth, pc)
		}
		conjs = append(conjs, pc)
	}
	cs.conjs = conjs
	cs.nTerms = nTerms
	cs.planOK = true
}

// extractEqui records the join-key shapes of a single-term equality
// conjunct, trying both orientations.
func (c *compiler) extractEqui(e Expr, depth int, pc *planConjunct) {
	b, ok := e.(*Binary)
	if !ok || b.Op != "=" {
		return
	}
	try := func(colSide, keySide Expr) {
		ref, ok := colSide.(*ColumnRef)
		if !ok {
			return
		}
		bd, err := c.resolve(ref)
		if err != nil || bd.depth != depth {
			return
		}
		var keyMask srcMask
		if err := c.walkBindings(keySide, func(kb binding) {
			if kb.depth == depth {
				keyMask |= 1 << uint(kb.src)
			}
		}); err != nil {
			return
		}
		if keyMask&(1<<uint(bd.src)) != 0 {
			return // key side reads the build source itself
		}
		kex, err := c.compileExpr(keySide)
		if err != nil {
			return
		}
		pc.eqs = append(pc.eqs, equiSide{src: bd.src, col: bd.col, otherSrcs: keyMask, key: kex})
	}
	try(b.L, b.R)
	try(b.R, b.L)
}

// extractRange records the range-bound shapes of a single-term
// inequality conjunct (<, <=, >, >= and BETWEEN). The bound key must
// not read the bounded source itself; outer scopes, parameters and
// constants are fine. Strict bounds are never consumed — range pruning
// restricts the scan, the retained filter enforces exact semantics.
// Inclusive bounds set pc.rngNeed, and buildSchedule elides the filter
// when the index prune adopts enough of them to imply the predicate.
func (c *compiler) extractRange(e Expr, depth int, pc *planConjunct) {
	record := func(colSide, keySide Expr, lower, strict bool) {
		ref, ok := colSide.(*ColumnRef)
		if !ok {
			return
		}
		bd, err := c.resolve(ref)
		if err != nil || bd.depth != depth {
			return
		}
		var keyMask srcMask
		if err := c.walkBindings(keySide, func(kb binding) {
			if kb.depth == depth {
				keyMask |= 1 << uint(kb.src)
			}
		}); err != nil {
			return
		}
		if keyMask&(1<<uint(bd.src)) != 0 {
			return
		}
		kex, err := c.compileExpr(keySide)
		if err != nil {
			return
		}
		pc.rngs = append(pc.rngs, rangeSide{src: bd.src, col: bd.col, lower: lower, strict: strict, otherSrcs: keyMask, key: kex})
	}
	switch x := e.(type) {
	case *Binary:
		strict := x.Op == "<" || x.Op == ">"
		switch x.Op {
		case "<", "<=":
			record(x.L, x.R, false, strict) // col <= key: upper bound
			record(x.R, x.L, true, strict)  // key <= col: lower bound
		case ">", ">=":
			record(x.L, x.R, true, strict)
			record(x.R, x.L, false, strict)
		default:
			return
		}
		if !strict && len(pc.rngs) > 0 {
			pc.rngNeed = 1 // one adopted inclusive bound implies the predicate
		}
	case *Between:
		if x.Neg {
			return // NOT BETWEEN is a disjunction of ranges, not a bound
		}
		record(x.X, x.Lo, true, false)
		record(x.X, x.Hi, false, false)
		if len(pc.rngs) == 2 {
			pc.rngNeed = 2 // both bounds must be adopted to imply BETWEEN
		}
	}
}

// planOrderBy records the index-served ORDER BY candidate on cs: all
// sort keys are plain columns of one base-table source, in one uniform
// direction. Whether an index actually covers the column prefix is
// decided per schedule (indexes can appear via CREATE INDEX, which
// recompiles plans) in buildSchedule. For multi-table joins the
// candidate is served only when that source is already the join
// order's first pick — the driving level then emits rows grouped by
// its sort keys, every deeper level fans out inside one key group, and
// the final sort disappears. The planner never *forces* the ordered
// source to drive: inverting the smallest-first join order would cost
// far more than the sort saves.
func (c *compiler) planOrderBy(sel *Select, cs *compiledSelect) {
	cs.ordSrc = -1
	if !cs.planOK || cs.grouped || len(sel.OrderBy) == 0 {
		return
	}
	desc := sel.OrderBy[0].Desc
	src := -1
	var cols []int
	for _, o := range sel.OrderBy {
		if o.Desc != desc {
			return // mixed directions: one index order cannot serve both
		}
		ref, ok := o.Expr.(*ColumnRef)
		if !ok {
			return
		}
		bd, err := c.resolve(ref)
		if err != nil || bd.depth != cs.depth {
			return
		}
		if src < 0 {
			src = bd.src
		} else if bd.src != src {
			return // keys spanning sources: no single index order serves
		}
		cols = append(cols, bd.col)
	}
	if src < 0 || cs.sources[src].table == nil {
		return
	}
	cs.ordSrc = src
	cs.ordCols = cols
	cs.ordDesc = desc
}

// --- schedule ---

// schedule is the executable join plan for one compiledSelect given
// concrete source sizes. It is cached per env (one statement), so
// repeated executions — correlated EXISTS probed per outer row — reuse
// the hash builds.
type schedule struct {
	order  []int
	pre    []preEval
	levels []schedLevel
	state  *planState
	// orderServed marks that the driving level iterates an ordered
	// index covering the ORDER BY prefix, so the executor can skip the
	// final sort entirely.
	orderServed bool
}

// preEval processes the parts of a conjunct's alternatives that read
// no current-scope source, once before the loop starts. final marks
// conjuncts whose every alternative is source-free: if none closes
// true the WHERE is constant-false.
type preEval struct {
	conj  int
	terms []schedTerm
	final bool
}

type schedLevel struct {
	src   int
	probe *probePlan
	// rng, when set (and probe is nil), prunes the level's scan to the
	// index-order subslice whose first column lies within the bound
	// keys. ord, when set, makes the level iterate in full index order.
	// Both yield in-order candidate lists; desc reverses the iteration
	// for descending ORDER BY.
	rng  *rangePlan
	ord  *Index
	desc bool
	// kerns are the batch kernels consumed at this level: plain (single-
	// alternative) conjuncts fully decided here whose predicate lowers
	// to a vector filter. The level then runs in batch mode — candidates
	// are chunked into selection vectors, kernels tighten them over the
	// cached column vectors, and only survivors reach the per-row evals
	// and the deeper levels. Kernel-consumed conjuncts never appear in
	// evals; the kernels evaluate them exactly.
	kerns []*kernelPred
	// groups are the OR-group kernels consumed here: whole conjuncts
	// (all alternatives) owned by the batch path. Alternatives' parts
	// that never read this source bind once per entry; the rest run as
	// per-term selection-vector filters OR-merged into the level's
	// selection vector. Group-consumed conjuncts appear in no eval at
	// any level.
	groups []*orGroupK
	// constEq counts kernels serving constant-equality conjuncts that a
	// hash probe would otherwise answer with a whole-table build (the
	// `MV = 0` shape) — EXPLAIN reports them as `const-eq kernel`.
	constEq int
	// elided counts range conjuncts whose retained filter was dropped
	// because the inclusive index prune implies them exactly.
	elided int
	evals  []schedEval
}

// rangePlan restricts a scan level to an ordered-index range. Either
// bound may be nil (half-open). Bounds are evaluated per entry into
// the level — they may read outer levels or correlated frames — and a
// NULL bound empties the candidate set, since `col OP NULL` never
// holds.
type rangePlan struct {
	idx    *Index
	col    int // schema position of idx.Cols[0], for EXPLAIN
	lo, hi compiledExpr
	// Adoption bookkeeping for filter elision: which conjunct supplied
	// each bound (-1 none) and whether that bound's operator was strict
	// (strict bounds prune inclusively and never justify elision).
	loConj, hiConj     int
	loStrict, hiStrict bool
	// skipNullLo: an upper-bound filter was elided with no lower bound
	// present, so the scan itself must exclude the NULL rows that sort
	// before every bounded value (the filter would have rejected them).
	skipNullLo bool
}

// schedEval processes one conjunct at one level: the alternatives with
// parts that become ready here. final means the conjunct has nothing
// deeper: if it is still unsatisfied afterwards, the subtree is
// pruned.
type schedEval struct {
	conj  int
	terms []schedTerm
	final bool
}

// schedTerm is one OR alternative's contribution to a level: the AND
// parts ready here. closes means the alternative has no deeper parts —
// if every part so far held, the alternative is true and satisfies its
// conjunct. A part that fails kills the alternative for the subtree.
type schedTerm struct {
	term   int
	parts  []compiledExpr
	closes bool
}

// probePlan answers "which rows of this source match the bound key"
// via a persistent index (exact column cover) or an ephemeral hash
// built once per statement (base tables) or per execution (derived
// tables, whose rows rematerialize each run).
type probePlan struct {
	keys      []compiledExpr
	buildCols []int
	conjs     []int // conjunct ids the probe satisfies
	idx       *Index
	perm      []int // probe position per index column (idx != nil)
	hash      map[string][]int
	derived   bool
	vals      []relation.Value // scratch
	keyBuf    []byte           // scratch
	// Compound-prefix fallback (idx == nil): an ordered index whose
	// leading columns are exactly the probe columns answers the
	// equality by binary search — no hash build — and an optional range
	// bound on the next index column tightens the same search
	// (multi-column pruning: equality prefix + range). The range
	// conjunct is never consumed; its retained filter keeps exactness.
	pfx       *Index
	pfxPerm   []int // prefix position → probe key position
	pfxLo     compiledExpr
	pfxHi     compiledExpr
	pfxRngCol int              // schema position of the ranged column (EXPLAIN)
	pfxVals   []relation.Value // scratch, in index-column order
}

type planState struct {
	// satLevel[c]: -1 pending, -2 satisfied before the loop, otherwise
	// the level position that satisfied conjunct c.
	satLevel []int
	// termDead[t]: some AND part of alternative t failed in the current
	// subtree, so the alternative can no longer satisfy its conjunct.
	termDead  []bool
	idx       []int // current row index per source
	marks     [][]int
	deadMarks [][]int
	// Batch-mode scratch, per level: the selection-vector chunk, the
	// per-entry kernel bindings, the column vectors fetched once per
	// level entry, and the OR-group filter scratch.
	sel   [][]int
	binds [][]kernBind
	kcols [][][]relation.Value
	gsc   []*groupScratch
}

func isNaN(v relation.Value) bool {
	return v.K == relation.KindFloat && v.F != v.F
}

// constEqKernelMaxEntries bounds the const-equality diversion: a
// constant-equality conjunct (the `MV = 0` shape) is served by an
// equality kernel over the column cache instead of a whole-table hash
// build when the level is estimated to be entered at most this many
// times. Few entries amortize a per-entry column sweep easily, while
// the hash build pays one full-table key-encoding pass up front.
const constEqKernelMaxEntries = 64

// buildSchedule assigns every conjunct, OR alternative and equi key to
// a join level for the chosen source order. ep supplies the index
// inventory (index handles are shared by every epoch of the plan's
// ddlVersion, so the schedule stays valid for the whole statement).
func buildSchedule(cs *compiledSelect, srcRows [][]relation.Tuple, ep *epoch) *schedule {
	n := len(cs.sources)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if n > 1 {
		max := 0
		for _, rows := range srcRows {
			if len(rows) > max {
				max = len(rows)
			}
		}
		if max >= reorderMinRows {
			sort.SliceStable(order, func(a, b int) bool {
				return len(srcRows[order[a]]) < len(srcRows[order[b]])
			})
		}
	}
	sch := &schedule{order: order}
	consumed := make([]bool, len(cs.conjs))
	// OR-group claiming: a conjunct is owned wholly by a group kernel at
	// the last level of its source set when every alternative part that
	// reads that source kernelizes (simple / probe / nested-or). Claimed
	// conjuncts contribute nothing to pre or any level's evals — their
	// invariant parts bind per level entry instead. Single-part plain
	// conjuncts stay on the simple kernel/probe/range paths, which
	// already vectorize them.
	claim := make([]int, len(cs.conjs))
	for i := range claim {
		claim[i] = -1
	}
	if !DisableBatchKernels {
		for ci, pc := range cs.conjs {
			if pc.srcs == 0 {
				continue
			}
			last := -1
			for pos, s := range order {
				if pc.srcs&(srcMask(1)<<uint(s)) != 0 {
					last = pos
				}
			}
			s := order[last]
			if cs.sources[s].table == nil {
				continue // no column vectors to kernel over
			}
			bit := srcMask(1) << uint(s)
			interesting := len(pc.terms) > 1
			ok := true
			for _, t := range pc.terms {
				for _, p := range t.parts {
					if p.srcs&bit == 0 {
						continue
					}
					k := kpFor(p.kp, s)
					if k == nil {
						ok = false
						break
					}
					if k.simple == nil {
						interesting = true
					}
				}
				if !ok {
					break
				}
			}
			if ok && interesting {
				claim[ci] = last
			}
		}
	}
	for ci, pc := range cs.conjs {
		if claim[ci] >= 0 {
			continue
		}
		var terms []schedTerm
		for _, t := range pc.terms {
			var parts []compiledExpr
			for _, p := range t.parts {
				if p.srcs == 0 {
					parts = append(parts, p.ex)
				}
			}
			if len(parts) > 0 {
				terms = append(terms, schedTerm{term: t.id, parts: parts, closes: t.srcs == 0})
			}
		}
		if len(terms) > 0 {
			sch.pre = append(sch.pre, preEval{conj: ci, terms: terms, final: pc.srcs == 0})
		}
	}
	var bound srcMask
	for pos, s := range order {
		lv := schedLevel{src: s}
		bit := srcMask(1) << uint(s)
		var probe *probePlan
		var probeConsts int // probe keys reading no current-scope source
		for ci, pc := range cs.conjs {
			if consumed[ci] || claim[ci] >= 0 || len(pc.eqs) == 0 {
				continue
			}
			for _, eq := range pc.eqs {
				if eq.src == s && eq.otherSrcs&^bound == 0 {
					if probe == nil {
						probe = &probePlan{derived: cs.sources[s].sub != nil}
					}
					probe.keys = append(probe.keys, eq.key)
					probe.buildCols = append(probe.buildCols, eq.col)
					probe.conjs = append(probe.conjs, ci)
					if eq.otherSrcs == 0 {
						probeConsts++
					}
					consumed[ci] = true
					break
				}
			}
		}
		if probe != nil {
			probe.vals = make([]relation.Value, len(probe.keys))
			if t := cs.sources[s].table; t != nil {
				probe.idx, probe.perm = probeIndex(ep.tds[t], probe.buildCols)
				if probe.idx == nil {
					// No exact-cover index: a compound index whose leading
					// columns are the probe columns still beats the hash
					// build — binary-searched equality, optionally tightened
					// by a range bound on the next index column.
					if pfx, perm := ep.tds[t].findEqPrefixIndex(probe.buildCols); pfx != nil {
						probe.pfx, probe.pfxPerm = pfx, perm
						probe.pfxVals = make([]relation.Value, len(perm))
						k := len(probe.buildCols)
						probe.pfxRngCol = pfx.Cols[k]
						for _, pc := range cs.conjs {
							for _, rs := range pc.rngs {
								if rs.src != s || rs.col != pfx.Cols[k] || rs.otherSrcs&^bound != 0 {
									continue
								}
								if rs.lower {
									if probe.pfxLo == nil {
										probe.pfxLo = rs.key
									}
								} else if probe.pfxHi == nil {
									probe.pfxHi = rs.key
								}
							}
						}
					}
				}
				// Const-equality diversion: when no index answers the probe,
				// every key is constant for the statement (`MV = 0`), the
				// conjuncts kernelize, and the level is entered few enough
				// times, a column-cache equality kernel beats building a
				// whole-table hash just to bucket on a constant. Top-level
				// selects only: a subquery (depth > 0) can re-execute once
				// per outer row on this cached schedule, and the hash the
				// diversion skips is built once per env while the kernel
				// would sweep the column on every re-execution.
				if probe.idx == nil && probe.pfx == nil && !DisableBatchKernels && cs.depth == 0 &&
					probeConsts == len(probe.keys) && estEntries(srcRows, order[:pos]) <= constEqKernelMaxEntries {
					divert := true
					for _, ci := range probe.conjs {
						if kpSimpleFor(cs.conjs[ci].terms[0].parts[0].kp, s) == nil {
							divert = false
							break
						}
					}
					if divert {
						for _, ci := range probe.conjs {
							consumed[ci] = false
						}
						lv.constEq = len(probe.conjs)
						probe = nil
					}
				}
			}
		}
		lv.probe = probe
		// Probe-free levels over base tables can still narrow their scan
		// through an ordered index: a range conjunct whose bounds are
		// already bound prunes to an index-order subslice, and when the
		// ORDER BY prefix matches an index — on the driving level — the
		// level iterates in index order so the executor skips the final
		// sort. When both apply they must agree on the index; order
		// service wins the tie.
		if probe == nil {
			if t := cs.sources[s].table; t != nil {
				var ordIdx *Index
				if cs.ordSrc == s && pos == 0 {
					ordIdx = ep.tds[t].findPrefixIndex(cs.ordCols)
				}
				lv.rng = buildRangePlan(cs, ep.tds[t], s, bound, ordIdx)
				if ordIdx != nil {
					lv.ord = ordIdx
					lv.desc = cs.ordDesc
					sch.orderServed = true
				}
				// Filter elision: a conjunct whose inclusive bounds the
				// range prune adopted in full is exactly implied by the
				// binary-searched slice — its kernel/filter would re-check
				// every already-pruned row. Strict bounds never elide.
				if rp := lv.rng; rp != nil {
					elide := func(ci int) {
						if ci < 0 || consumed[ci] {
							return
						}
						pc := cs.conjs[ci]
						adopted := 0
						if rp.loConj == ci && !rp.loStrict {
							adopted++
						}
						if rp.hiConj == ci && !rp.hiStrict {
							adopted++
						}
						if pc.rngNeed == 0 || adopted < pc.rngNeed {
							return
						}
						consumed[ci] = true
						lv.elided++
						if rp.lo == nil {
							// The slice's low end is open: NULL rows sort
							// before every bounded value and the elided
							// filter would have rejected them.
							rp.skipNullLo = true
						}
					}
					elide(rp.loConj)
					elide(rp.hiConj)
				}
			}
		}
		boundAfter := bound | bit
		// Batch-kernel consumption: a plain conjunct (one OR alternative)
		// whose every part is ready exactly here and lowers to a kernel
		// for this source runs as a vector filter over the cached column
		// vectors instead of per-row closures. Derived sources have no
		// column vectors.
		if !DisableBatchKernels && cs.sources[s].table != nil {
			for ci, pc := range cs.conjs {
				if consumed[ci] || claim[ci] >= 0 || len(pc.terms) != 1 {
					continue
				}
				ready := len(pc.terms[0].parts) > 0
				for _, p := range pc.terms[0].parts {
					if p.srcs == 0 || p.srcs&bit == 0 || p.srcs&^boundAfter != 0 || kpSimpleFor(p.kp, s) == nil {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				for _, p := range pc.terms[0].parts {
					lv.kerns = append(lv.kerns, kpSimpleFor(p.kp, s))
				}
				consumed[ci] = true
			}
			// OR-group consumption: conjuncts claimed for this level.
			for ci, pc := range cs.conjs {
				if claim[ci] != pos || consumed[ci] {
					continue
				}
				lv.groups = append(lv.groups, newOrGroupK(pc, ci, s))
				consumed[ci] = true
			}
		}
		for ci, pc := range cs.conjs {
			if consumed[ci] || claim[ci] >= 0 || pc.srcs == 0 {
				continue
			}
			var terms []schedTerm
			for _, t := range pc.terms {
				var parts []compiledExpr
				for _, p := range t.parts {
					if p.srcs != 0 && p.srcs&^boundAfter == 0 && p.srcs&bit != 0 {
						parts = append(parts, p.ex)
					}
				}
				if len(parts) > 0 {
					terms = append(terms, schedTerm{term: t.id, parts: parts, closes: t.srcs&^boundAfter == 0})
				}
			}
			final := pc.srcs&^boundAfter == 0 && pc.srcs&bit != 0
			if len(terms) > 0 || final {
				lv.evals = append(lv.evals, schedEval{conj: ci, terms: terms, final: final})
			}
		}
		bound = boundAfter
		sch.levels = append(sch.levels, lv)
	}
	sch.state = &planState{
		satLevel:  make([]int, len(cs.conjs)),
		termDead:  make([]bool, cs.nTerms),
		idx:       make([]int, n),
		marks:     make([][]int, n),
		deadMarks: make([][]int, n),
		sel:       make([][]int, n),
		binds:     make([][]kernBind, n),
		kcols:     make([][][]relation.Value, n),
		gsc:       make([]*groupScratch, n),
	}
	for i := range sch.levels {
		lv := &sch.levels[i]
		if k := len(lv.kerns); k > 0 {
			sch.state.binds[i] = make([]kernBind, k)
			sch.state.kcols[i] = make([][]relation.Value, k)
		}
		if len(lv.kerns) > 0 || len(lv.groups) > 0 {
			sch.state.sel[i] = make([]int, 0, batchChunk)
		}
		if len(lv.groups) > 0 {
			sch.state.gsc[i] = &groupScratch{}
		}
	}
	return sch
}

// estEntries bounds how many times a level will be entered: the product
// of the candidate row counts of the levels driving it (ignoring their
// selectivity, so it over-estimates — the diversion heuristic stays
// conservative).
func estEntries(srcRows [][]relation.Tuple, outer []int) int {
	entries := 1
	for _, s := range outer {
		entries *= len(srcRows[s])
		if entries > constEqKernelMaxEntries {
			return entries
		}
	}
	return entries
}

// buildRangePlan collects the usable range bounds for source s given
// the already-bound source set. Only one column can prune (the first
// with a covering index, or the ORDER BY index's leading column when
// the level must also serve ordering); further bounds on it tighten
// nothing here but remain as filters. Pruning itself is a pure
// access-path restriction; the adoption bookkeeping (loConj/hiConj)
// lets buildSchedule elide exactly the filters the inclusive prune
// implies.
func buildRangePlan(cs *compiledSelect, td *tableData, s int, bound srcMask, only *Index) *rangePlan {
	var rp *rangePlan
	for ci, pc := range cs.conjs {
		for _, rs := range pc.rngs {
			if rs.src != s || rs.otherSrcs&^bound != 0 {
				continue
			}
			if rp == nil {
				var idx *Index
				if only != nil {
					if only.Cols[0] == rs.col {
						idx = only
					}
				} else {
					idx = td.findRangeIndex(rs.col)
				}
				if idx == nil {
					continue
				}
				rp = &rangePlan{idx: idx, col: rs.col, loConj: -1, hiConj: -1}
			} else if rs.col != rp.col {
				continue
			}
			if rs.lower {
				if rp.lo == nil {
					rp.lo, rp.loConj, rp.loStrict = rs.key, ci, rs.strict
				}
			} else if rp.hi == nil {
				rp.hi, rp.hiConj, rp.hiStrict = rs.key, ci, rs.strict
			}
		}
	}
	if rp != nil && rp.lo == nil && rp.hi == nil {
		return nil
	}
	return rp
}

// scheduleFor returns the (per-statement) cached schedule for cs.
func (en *env) scheduleFor(cs *compiledSelect, srcRows [][]relation.Tuple) *schedule {
	if en.schedules == nil {
		en.schedules = make(map[*compiledSelect]*schedule)
	}
	sch := en.schedules[cs]
	if sch == nil {
		sch = buildSchedule(cs, srcRows, en.ep)
		en.schedules[cs] = sch
	} else {
		for i := range sch.levels {
			if p := sch.levels[i].probe; p != nil && p.derived {
				p.hash = nil // derived rows rematerialize per execution
			}
		}
	}
	return sch
}

// scan enumerates the row combinations passing WHERE, planned when
// possible, by nested loop otherwise.
func (cs *compiledSelect) scan(en *env, srcRows [][]relation.Tuple, yield func() error) error {
	if DisablePlanner || !cs.planOK {
		return cs.joinLoop(en, srcRows, 0, yield)
	}
	sch := en.scheduleFor(cs, srcRows)
	return cs.runPlan(en, sch, srcRows, func([]int) error { return yield() })
}

var yieldFound = func([]int) error { return errFound }

// runPlan executes the planned join. yield receives the current row
// index per source (indexed by source position, not loop order).
func (cs *compiledSelect) runPlan(en *env, sch *schedule, srcRows [][]relation.Tuple, yield func(idx []int) error) error {
	st := sch.state
	for i := range st.satLevel {
		st.satLevel[i] = -1
	}
	for i := range st.termDead {
		st.termDead[i] = false
	}
	for _, pe := range sch.pre {
		satisfied := false
		for ti := range pe.terms {
			tr := &pe.terms[ti]
			allTrue := true
			for _, pex := range tr.parts {
				v, err := pex(en)
				if err != nil {
					return err
				}
				if !v.Truth() {
					allTrue = false
					break
				}
			}
			if !allTrue {
				st.termDead[tr.term] = true
				continue
			}
			if tr.closes {
				satisfied = true
				break
			}
		}
		if satisfied {
			st.satLevel[pe.conj] = -2
		} else if pe.final {
			return nil // constant-false WHERE
		}
	}
	return cs.planLevel(en, sch, srcRows, 0, yield)
}

func (cs *compiledSelect) planLevel(en *env, sch *schedule, srcRows [][]relation.Tuple, pos int, yield func([]int) error) error {
	st := sch.state
	if pos == len(sch.levels) {
		return yield(st.idx)
	}
	lv := &sch.levels[pos]
	rows := srcRows[lv.src]
	bucket, scanAll, err := cs.probeRows(en, lv, rows)
	if err != nil {
		return err
	}
	if len(lv.kerns) > 0 || len(lv.groups) > 0 {
		return cs.planLevelBatch(en, sch, srcRows, pos, lv, rows, bucket, scanAll, yield)
	}
	marks := st.marks[pos][:0]
	deadMarks := st.deadMarks[pos][:0]
	n := len(rows)
	if !scanAll {
		n = len(bucket)
	}
	for i := 0; i < n; i++ {
		j := i
		if lv.desc {
			j = n - 1 - i
		}
		ri := j
		if !scanAll {
			ri = bucket[j]
		}
		if err := cs.stepRow(en, sch, srcRows, pos, lv, rows, ri, &marks, &deadMarks, yield); err != nil {
			st.marks[pos] = marks
			st.deadMarks[pos] = deadMarks
			return err
		}
	}
	st.marks[pos] = marks[:0]
	st.deadMarks[pos] = deadMarks[:0]
	return nil
}

// stepRow is the shared per-row body of both level drivers: bind the
// candidate row, run the per-row conjunct machinery, recurse into the
// deeper levels, and unwind the satisfied/dead bookkeeping. On error
// the caller saves the scratch slices back into the plan state.
func (cs *compiledSelect) stepRow(en *env, sch *schedule, srcRows [][]relation.Tuple, pos int, lv *schedLevel, rows []relation.Tuple, ri int, marks, deadMarks *[]int, yield func([]int) error) error {
	st := sch.state
	fr := &en.frames[cs.depth]
	fr.rows[lv.src] = rows[ri]
	st.idx[lv.src] = ri
	*marks = (*marks)[:0]
	*deadMarks = (*deadMarks)[:0]
	ok, err := cs.evalLevelRow(en, st, lv, pos, marks, deadMarks)
	if err != nil {
		return err
	}
	if ok {
		if err := cs.planLevel(en, sch, srcRows, pos+1, yield); err != nil {
			return err
		}
	}
	for _, cj := range *marks {
		st.satLevel[cj] = -1
	}
	for _, tm := range *deadMarks {
		st.termDead[tm] = false
	}
	return nil
}

// evalLevelRow runs one level's per-row conjunct machinery for the
// currently bound row: evaluates the scheduled OR alternatives,
// updates the satisfied/dead bookkeeping (collecting the changes in
// marks/deadMarks for the caller to unwind after the subtree), and
// reports whether the subtree below this row survives.
func (cs *compiledSelect) evalLevelRow(en *env, st *planState, lv *schedLevel, pos int, marks, deadMarks *[]int) (bool, error) {
	for ei := range lv.evals {
		ev := &lv.evals[ei]
		if st.satLevel[ev.conj] != -1 {
			continue
		}
		satisfied := false
		for ti := range ev.terms {
			tr := &ev.terms[ti]
			if st.termDead[tr.term] {
				continue
			}
			allTrue := true
			for _, pex := range tr.parts {
				v, err := pex(en)
				if err != nil {
					return false, err
				}
				if !v.Truth() {
					allTrue = false
					break
				}
			}
			if !allTrue {
				st.termDead[tr.term] = true
				*deadMarks = append(*deadMarks, tr.term)
				continue
			}
			if tr.closes {
				satisfied = true
				break
			}
		}
		if satisfied {
			st.satLevel[ev.conj] = pos
			*marks = append(*marks, ev.conj)
		} else if ev.final {
			return false, nil
		}
	}
	return true, nil
}

// planLevelBatch is the vectorized level driver: candidate positions
// are chunked into fixed-size selection vectors, the level's kernels
// tighten each chunk over the table's cached column vectors, OR-group
// kernels OR-merge their per-alternative filters into the chunk, and
// only the surviving rows run the per-row machinery and the deeper
// levels. Kernel and group bindings (the loop-invariant inputs)
// evaluate once per level entry. Candidate order is preserved end to
// end — descending order-served scans fill chunks from the tail — so
// batch mode composes with range-pruned and order-served scans.
func (cs *compiledSelect) planLevelBatch(en *env, sch *schedule, srcRows [][]relation.Tuple, pos int, lv *schedLevel, rows []relation.Tuple, bucket []int, scanAll bool, yield func([]int) error) error {
	st := sch.state
	n := len(rows)
	if !scanAll {
		n = len(bucket)
	}
	if n == 0 {
		return nil // empty candidate set: skip the kernel binds entirely
	}
	t := cs.sources[lv.src].table
	binds := st.binds[pos]
	kcols := st.kcols[pos]
	for i, k := range lv.kerns {
		if err := k.bind(en, &binds[i]); err != nil {
			return err
		}
		if binds[i].empty {
			return nil // NULL bound: the predicate holds for no row
		}
		kcols[i] = en.column(t, k.col)
	}
	var gs *groupScratch
	if len(lv.groups) > 0 {
		for _, g := range lv.groups {
			g.enter() // state reset only; terms bind lazily at filter time
		}
		gs = st.gsc[pos]
		if len(gs.mask) < len(rows) {
			gs.mask = make([]bool, len(rows))
		}
	}
	marks := st.marks[pos][:0]
	deadMarks := st.deadMarks[pos][:0]
	sel := st.sel[pos]
	for start := 0; start < n; start += batchChunk {
		end := start + batchChunk
		if end > n {
			end = n
		}
		sel = sel[:0]
		switch {
		case lv.desc && scanAll:
			for i := start; i < end; i++ {
				sel = append(sel, n-1-i)
			}
		case lv.desc:
			for i := start; i < end; i++ {
				sel = append(sel, bucket[n-1-i])
			}
		case scanAll:
			for ri := start; ri < end; ri++ {
				sel = append(sel, ri)
			}
		default:
			sel = append(sel, bucket[start:end]...)
		}
		for i, k := range lv.kerns {
			sel = k.filter(kcols[i], &binds[i], sel)
			if len(sel) == 0 {
				break
			}
		}
		for _, g := range lv.groups {
			if g.pass || len(sel) == 0 {
				continue
			}
			var err error
			if sel, err = g.filter(en, cs, lv.src, t, gs, rows, sel); err != nil {
				st.sel[pos] = sel
				st.marks[pos] = marks
				st.deadMarks[pos] = deadMarks
				return err
			}
		}
		for _, ri := range sel {
			if err := cs.stepRow(en, sch, srcRows, pos, lv, rows, ri, &marks, &deadMarks, yield); err != nil {
				st.sel[pos] = sel
				st.marks[pos] = marks
				st.deadMarks[pos] = deadMarks
				return err
			}
		}
	}
	st.sel[pos] = sel
	st.marks[pos] = marks[:0]
	st.deadMarks[pos] = deadMarks[:0]
	return nil
}

// probeRows returns the candidate row indices at a level. scanAll is
// true when the level has no probe and no index-backed restriction
// (full scan). A NULL or NaN key can never satisfy an equality, so it
// yields an empty candidate set; likewise a NULL range bound.
func (cs *compiledSelect) probeRows(en *env, lv *schedLevel, rows []relation.Tuple) (bucket []int, scanAll bool, err error) {
	p := lv.probe
	if p == nil {
		if lv.rng != nil {
			return cs.rangeRows(en, lv)
		}
		if lv.ord != nil {
			t := cs.sources[lv.src].table
			return en.td(t).orderedOf(t, lv.ord), false, nil
		}
		return nil, true, nil
	}
	for i, kex := range p.keys {
		v, err := kex(en)
		if err != nil {
			return nil, false, err
		}
		if v.IsNull() || isNaN(v) {
			return nil, false, nil
		}
		p.vals[i] = v
	}
	if p.idx != nil {
		t := cs.sources[lv.src].table
		id, fence := en.td(t).lookupEq(t, p.idx)
		key := p.keyBuf[:0]
		for _, pi := range p.perm {
			key = relation.AppendKey(key, p.vals[pi])
			key = append(key, 0x1f)
		}
		p.keyBuf = key
		return id.probe(string(key), fence), false, nil
	}
	if p.pfx != nil {
		// Compound-prefix probe: binary-searched equality on the index's
		// leading columns, tightened by the optional range bound on the
		// next column. A NULL range bound empties the level — `col OP
		// NULL` never holds, and the retained filter agrees.
		for j, pi := range p.pfxPerm {
			p.pfxVals[j] = p.vals[pi]
		}
		var lo, hi relation.Value
		hasLo, hasHi := false, false
		if p.pfxLo != nil {
			v, err := p.pfxLo(en)
			if err != nil {
				return nil, false, err
			}
			if v.IsNull() {
				return nil, false, nil
			}
			lo, hasLo = v, true
		}
		if p.pfxHi != nil {
			v, err := p.pfxHi(en)
			if err != nil {
				return nil, false, err
			}
			if v.IsNull() {
				return nil, false, nil
			}
			hi, hasHi = v, true
		}
		t := cs.sources[lv.src].table
		return en.td(t).eqPrefixRange(t, p.pfx, p.pfxVals, lo, hi, hasLo, hasHi), false, nil
	}
	if p.hash == nil {
		p.hash = buildJoinHash(rows, p.buildCols)
	}
	key := p.keyBuf[:0]
	for _, v := range p.vals {
		key = relation.AppendKey(key, v)
		key = append(key, 0x1f)
	}
	p.keyBuf = key
	return p.hash[string(key)], false, nil
}

// rangeRows evaluates a level's range bounds and returns the ordered-
// index subslice they select. The bounds may read outer frames, so
// they re-evaluate every time the level is entered (two binary
// searches; the slice itself is shared with the index, zero-copy). A
// NULL bound empties the result — `col OP NULL` never holds, and the
// retained filter agrees.
func (cs *compiledSelect) rangeRows(en *env, lv *schedLevel) ([]int, bool, error) {
	rp := lv.rng
	var lo, hi relation.Value
	hasLo, hasHi := false, false
	if rp.lo != nil {
		v, err := rp.lo(en)
		if err != nil {
			return nil, false, err
		}
		if v.IsNull() {
			return nil, false, nil
		}
		lo, hasLo = v, true
	}
	if rp.hi != nil {
		v, err := rp.hi(en)
		if err != nil {
			return nil, false, err
		}
		if v.IsNull() {
			return nil, false, nil
		}
		hi, hasHi = v, true
	}
	t := cs.sources[lv.src].table
	return en.td(t).rangeOf(t, rp.idx, lo, hi, hasLo, hasHi, rp.skipNullLo), false, nil
}

// buildJoinHash indexes rows by the join-key columns. Rows with a NULL
// (or NaN) key column are left out: an equality can never select them.
func buildJoinHash(rows []relation.Tuple, cols []int) map[string][]int {
	m := make(map[string][]int, len(rows))
	var buf []byte
outer:
	for ri, row := range rows {
		buf = buf[:0]
		for _, c := range cols {
			v := row[c]
			if v.IsNull() || isNaN(v) {
				continue outer
			}
			buf = relation.AppendKey(buf, v)
			buf = append(buf, 0x1f)
		}
		m[string(buf)] = append(m[string(buf)], ri)
	}
	return m
}

// semiScan runs the planned join over base-table sources and yields
// per-source row indices for every combination passing WHERE, without
// materializing output rows. The semi-join UPDATE path uses it to
// collect the target row set.
func (cs *compiledSelect) semiScan(en *env, yield func(idx []int) error) error {
	if !cs.planOK || cs.grouped || cs.limit != nil || cs.offset != nil {
		return fmt.Errorf("sql: internal: semiScan on unplannable select")
	}
	if len(en.frames) != cs.depth {
		return fmt.Errorf("sql: internal: frame depth %d, want %d", len(en.frames), cs.depth)
	}
	srcRows := make([][]relation.Tuple, len(cs.sources))
	for i, src := range cs.sources {
		if src.table == nil {
			return fmt.Errorf("sql: internal: semiScan with derived source")
		}
		srcRows[i] = en.rows(src.table)
	}
	en.frames = append(en.frames, frame{rows: en.scratchFor(cs)})
	sch := en.scheduleFor(cs, srcRows)
	err := cs.runPlan(en, sch, srcRows, yield)
	en.frames = en.frames[:cs.depth]
	return err
}

// --- EXPLAIN ---

// describePlan renders the join strategy of a compiled select, one
// line per level, for EXPLAIN output and the plan tests. ep supplies
// the row counts and index inventory the schedule is sized against.
func (cs *compiledSelect) describePlan(ep *epoch) []string {
	var out []string
	if !cs.planOK {
		return []string{"nested loop (WHERE not analyzable; legacy path)"}
	}
	srcRows := make([][]relation.Tuple, len(cs.sources))
	for i, src := range cs.sources {
		if src.table != nil {
			srcRows[i] = ep.tds[src.table].rows
		}
	}
	sch := buildSchedule(cs, srcRows, ep)
	if len(sch.pre) > 0 {
		out = append(out, fmt.Sprintf("pre-loop: %d constant conjunct group(s)", len(sch.pre)))
	}
	for _, lv := range sch.levels {
		name := lv.src
		label := fmt.Sprintf("s%d", lv.src)
		if name < len(cs.srcNames) {
			label = cs.srcNames[lv.src]
		}
		size := ""
		if t := cs.sources[lv.src].table; t != nil {
			size = fmt.Sprintf(" (%d rows)", len(ep.tds[t].rows))
		} else {
			size = " (derived)"
		}
		var line string
		switch {
		case lv.probe != nil && lv.probe.idx != nil:
			line = fmt.Sprintf("index probe %s via %s%s", label, lv.probe.idx.Name, size)
		case lv.probe != nil && lv.probe.pfx != nil && (lv.probe.pfxLo != nil || lv.probe.pfxHi != nil):
			line = fmt.Sprintf("index prefix range probe %s via %s (%d eq col(s) + range on %s)%s",
				label, lv.probe.pfx.Name, len(lv.probe.buildCols),
				cs.sources[lv.src].table.Schema.Attrs[lv.probe.pfxRngCol].Name, size)
		case lv.probe != nil && lv.probe.pfx != nil:
			line = fmt.Sprintf("index prefix probe %s via %s (%d eq col(s))%s",
				label, lv.probe.pfx.Name, len(lv.probe.buildCols), size)
		case lv.probe != nil:
			line = fmt.Sprintf("hash join %s on %d key col(s)%s", label, len(lv.probe.keys), size)
		case lv.rng != nil && lv.ord != nil:
			line = fmt.Sprintf("ordered range scan %s via %s on %s%s",
				label, lv.rng.idx.Name, cs.sources[lv.src].table.Schema.Attrs[lv.rng.col].Name, size)
		case lv.rng != nil:
			line = fmt.Sprintf("range scan %s via %s on %s%s",
				label, lv.rng.idx.Name, cs.sources[lv.src].table.Schema.Attrs[lv.rng.col].Name, size)
		case lv.ord != nil:
			line = fmt.Sprintf("ordered scan %s via %s%s", label, lv.ord.Name, size)
		default:
			line = fmt.Sprintf("scan %s%s", label, size)
		}
		// Predicate-evaluation mode. The marker describes how this level
		// evaluates its scheduled predicates: kernels and OR groups render
		// inside one [batch: ...] bracket, per-row closure evaluation
		// renders [row], and a level with no predicates at all — a pure
		// join driver — carries no marker.
		var batchBits []string
		if k := len(lv.kerns); k > 0 {
			bit := fmt.Sprintf("%d kernel filter(s)", k)
			if lv.constEq > 0 {
				bit += fmt.Sprintf(", %d via const-eq kernel", lv.constEq)
			}
			batchBits = append(batchBits, bit)
		}
		if len(lv.groups) > 0 {
			// Aggregate equal-arity groups: `3 × or-group(2 terms)`.
			var arities []int
			counts := map[int]int{}
			for _, g := range lv.groups {
				if counts[g.nTerms] == 0 {
					arities = append(arities, g.nTerms)
				}
				counts[g.nTerms]++
			}
			sort.Ints(arities)
			for _, a := range arities {
				if c := counts[a]; c == 1 {
					batchBits = append(batchBits, fmt.Sprintf("or-group(%d terms)", a))
				} else {
					batchBits = append(batchBits, fmt.Sprintf("%d × or-group(%d terms)", c, a))
				}
			}
		}
		switch {
		case len(batchBits) > 0:
			line += " [batch: " + strings.Join(batchBits, " + ") + "]"
		case len(lv.evals) > 0:
			line += " [row]"
		}
		if lv.elided > 0 {
			line += fmt.Sprintf(" — %d filter(s) elided: implied by range", lv.elided)
		}
		full, partial := 0, 0
		for _, ev := range lv.evals {
			if ev.final {
				full++
			} else {
				partial++
			}
		}
		if full+partial > 0 {
			line += fmt.Sprintf(" — %d conjunct(s) decided here, %d partial OR group(s)", full, partial)
		}
		out = append(out, line)
		// Descend into derived sources so EXPLAIN shows the access paths
		// of the select that materializes them (the detector's Qmv macro
		// lives behind one).
		if sub := cs.sources[lv.src].sub; sub != nil {
			for _, l := range sub.describePlan(ep) {
				out = append(out, "  "+l)
			}
		}
	}
	if cs.grouped {
		if cs.spineSub != nil {
			out = append(out, fmt.Sprintf("group/aggregate [spine: %d-col keys shared with distinct source]", cs.spineCols))
		} else {
			out = append(out, "group/aggregate")
		}
	}
	if cs.distinct {
		out = append(out, "distinct")
	}
	if len(cs.orderBy) > 0 {
		switch {
		case sch.orderServed && len(cs.sources) > 1:
			out = append(out, "order by: served by index (join driver)")
		case sch.orderServed:
			out = append(out, "order by: served by index (no sort)")
		default:
			out = append(out, "sort")
		}
	}
	return out
}

// Explain parses and compiles a single statement and reports the plan
// the engine would run: join order, per-level access paths (scan, hash
// join, index probe), predicate placement, and for UPDATE whether the
// semi-join strategy is available.
func (db *DB) Explain(sqlText string) (string, error) {
	stmts, err := ParseScript(sqlText)
	if err != nil {
		return "", err
	}
	if len(stmts) != 1 {
		return "", fmt.Errorf("sql: EXPLAIN wants exactly one statement, got %d", len(stmts))
	}
	// Explain is a reader: it pins the current epoch (no lock) and
	// compiles/describes against that frozen state.
	ep := db.pin()
	defer db.unpin(ep)
	var b strings.Builder
	switch s := stmts[0].(type) {
	case *Select:
		c := &compiler{db: db, ep: ep}
		cs, err := c.compileSubSelect(s)
		if err != nil {
			return "", err
		}
		b.WriteString("SELECT\n")
		for _, line := range cs.describePlan(ep) {
			b.WriteString("  " + line + "\n")
		}
	case *Update:
		p, err := db.compileUpdate(s, ep)
		if err != nil {
			return "", err
		}
		b.WriteString("UPDATE " + p.t.Name + "\n")
		// Mirror runUpdate's runtime choice exactly (useSemiJoin reads
		// the same table sizes), so the reported access path is the one
		// that would execute right now.
		switch {
		case p.useSemiJoin(ep):
			b.WriteString("  semi-join row selection:\n")
			for _, line := range p.semi.describePlan(ep) {
				b.WriteString("    " + line + "\n")
			}
		case p.filterSel != nil && !DisablePlanner:
			b.WriteString("  planned row selection:\n")
			for _, line := range p.filterSel.describePlan(ep) {
				b.WriteString("    " + line + "\n")
			}
		case p.where == nil:
			b.WriteString("  full table update (no filter)\n")
		default:
			b.WriteString("  full scan with row filter\n")
		}
	case *Delete:
		b.WriteString("DELETE: full scan with row filter\n")
	case *Insert:
		if s.Query != nil {
			c := &compiler{db: db, ep: ep}
			cs, err := c.compileSubSelect(s.Query)
			if err != nil {
				return "", err
			}
			b.WriteString("INSERT from SELECT\n")
			for _, line := range cs.describePlan(ep) {
				b.WriteString("  " + line + "\n")
			}
		} else {
			b.WriteString(fmt.Sprintf("INSERT %d literal row(s)\n", len(s.Rows)))
		}
	default:
		b.WriteString(fmt.Sprintf("%T: no plan\n", s))
	}
	return b.String(), nil
}
