package sqldb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ecfd/internal/relation"
)

// canonical renders a result as an order-independent multiset key.
func canonical(res *Result) string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
		}
		rows[i] = strings.Join(cells, ",")
	}
	sort.Strings(rows)
	return strings.Join(rows, ";")
}

// runBothPaths executes q once through the planner and once through
// the forced nested loop, returning both canonical results.
func runBothPaths(t *testing.T, db *DB, q string) (planned, nested string) {
	t.Helper()
	DisablePlanner = false
	p, err := db.Query(q)
	if err != nil {
		t.Fatalf("planned %q: %v", q, err)
	}
	DisablePlanner = true
	n, err := db.Query(q)
	DisablePlanner = false
	if err != nil {
		t.Fatalf("nested %q: %v", q, err)
	}
	return canonical(p), canonical(n)
}

// TestExplainShowsHashJoin: an equality join between two base tables
// must run as a hash join, visible in the EXPLAIN output.
func TestExplainShowsHashJoin(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE big (k INTEGER, v INTEGER)`)
	mustExec(t, db, `CREATE TABLE small (k INTEGER, w INTEGER)`)
	for i := 0; i < 200; i++ {
		mustExec(t, db, `INSERT INTO big VALUES (?, ?)`, relation.Int(int64(i%20)), relation.Int(int64(i)))
	}
	mustExec(t, db, `INSERT INTO small VALUES (1, 10), (2, 20), (3, 30)`)

	plan, err := db.Explain(`SELECT b.v FROM big b, small s WHERE b.k = s.k`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "hash join") {
		t.Fatalf("expected a hash join in plan:\n%s", plan)
	}
	// The small side must drive the loop: it appears first.
	if strings.Index(plan, "scan s") > strings.Index(plan, "hash join b") {
		t.Fatalf("expected small side first:\n%s", plan)
	}

	// And the join result matches the nested loop.
	q := `SELECT b.v, s.w FROM big b, small s WHERE b.k = s.k`
	planned, nested := runBothPaths(t, db, q)
	if planned != nested {
		t.Fatalf("hash join diverges from nested loop:\n%s\nvs\n%s", planned, nested)
	}
}

// TestExplainShowsIndexProbe: a single-table equality over an indexed
// column set resolves through the persistent index.
func TestExplainShowsIndexProbe(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE it (k INTEGER, v TEXT)`)
	mustExec(t, db, `INSERT INTO it VALUES (1, 'a'), (2, 'b'), (2, 'c')`)
	mustExec(t, db, `CREATE INDEX idx_it_k ON it (k)`)

	plan, err := db.Explain(`SELECT v FROM it WHERE k = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index probe it via idx_it_k") {
		t.Fatalf("expected an index probe in plan:\n%s", plan)
	}
	res := mustQuery(t, db, `SELECT v FROM it WHERE k = 2 ORDER BY v`)
	if flat(res) != "b;c" {
		t.Fatalf("index probe result: %q", flat(res))
	}
}

// TestExplainSemiJoinUpdate: UPDATE ... WHERE EXISTS over base tables
// reports the semi-join row selection when the size heuristic would
// actually take it, and the planned (batched) row selection otherwise —
// EXPLAIN mirrors runUpdate's runtime choice.
func TestExplainSemiJoinUpdate(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE d (id INTEGER, flag INTEGER)`)
	mustExec(t, db, `CREATE TABLE pat (id INTEGER)`)
	for i := 0; i < 12; i++ {
		mustExec(t, db, `INSERT INTO d VALUES (?, 0)`, relation.Int(int64(i)))
	}
	mustExec(t, db, `INSERT INTO pat VALUES (2)`)
	q := `UPDATE d t SET flag = 1 WHERE EXISTS (SELECT 1 FROM pat p WHERE p.id = t.id)`
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "semi-join row selection") {
		t.Fatalf("expected semi-join in plan:\n%s", plan)
	}
	// Grow the subquery side past the heuristic: the same statement now
	// executes (and reports) the planned row selection instead.
	for i := 0; i < 40; i++ {
		mustExec(t, db, `INSERT INTO pat VALUES (?)`, relation.Int(int64(100+i)))
	}
	plan, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "semi-join row selection") || !strings.Contains(plan, "planned row selection") {
		t.Fatalf("expected the planned row selection once the subquery side dominates:\n%s", plan)
	}
}

// TestPlanCacheInvalidationOnDDL: a cached prepared statement must see
// the new catalog after DROP TABLE / CREATE TABLE, per the planner's
// invalidation contract.
func TestPlanCacheInvalidationOnDDL(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE ct (a INTEGER)`)
	mustExec(t, db, `INSERT INTO ct VALUES (1)`)

	p, err := db.Prepare(`SELECT * FROM ct`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 1 || len(res.Rows) != 1 {
		t.Fatalf("before DDL: %d cols, %d rows", len(res.Cols), len(res.Rows))
	}

	mustExec(t, db, `DROP TABLE ct`)
	if _, err := p.Query(); err == nil {
		t.Fatal("query against dropped table must fail")
	}

	mustExec(t, db, `CREATE TABLE ct (a INTEGER, b TEXT)`)
	mustExec(t, db, `INSERT INTO ct VALUES (7, 'x')`)
	res, err = p.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 {
		t.Fatalf("after re-create: SELECT * sees %d cols, want 2 (stale plan)", len(res.Cols))
	}
	if flat(res) != "7,x" {
		t.Fatalf("after re-create: %q", flat(res))
	}

	// Prepare must hand back the same cached object for the same text.
	p2, err := db.Prepare(`SELECT * FROM ct`)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Fatal("plan cache did not reuse the prepared statement")
	}
}

// TestPlanCacheInvalidationOnCreateIndex: creating an index recompiles
// cached plans so they pick up the new access path.
func TestPlanCacheInvalidationOnCreateIndex(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE ci (k INTEGER, v INTEGER)`)
	mustExec(t, db, `INSERT INTO ci VALUES (1, 10), (2, 20)`)
	q := `SELECT v FROM ci WHERE k = ?`
	res := mustQuery(t, db, q, relation.Int(2))
	if flat(res) != "20" {
		t.Fatalf("pre-index: %q", flat(res))
	}
	mustExec(t, db, `CREATE INDEX idx_ci_k ON ci (k)`)
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index probe") {
		t.Fatalf("expected index probe after CREATE INDEX:\n%s", plan)
	}
	res = mustQuery(t, db, q, relation.Int(2))
	if flat(res) != "20" {
		t.Fatalf("post-index: %q", flat(res))
	}
}

// TestSemiJoinUpdateEquivalence: the semi-join UPDATE strategy and the
// per-row filter produce identical table states.
func TestSemiJoinUpdateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		setup := func() *DB {
			db := NewDB()
			mustExec(t, db, `CREATE TABLE d (id INTEGER, a INTEGER, flag INTEGER)`)
			mustExec(t, db, `CREATE TABLE pat (p INTEGER, q INTEGER)`)
			rng2 := rand.New(rand.NewSource(int64(trial)))
			for i := 0; i < 30+rng2.Intn(40); i++ {
				mustExec(t, db, `INSERT INTO d VALUES (?, ?, 0)`,
					relation.Int(int64(i)), relation.Int(int64(rng2.Intn(8))))
			}
			for i := 0; i < rng2.Intn(6); i++ {
				mustExec(t, db, `INSERT INTO pat VALUES (?, ?)`,
					relation.Int(int64(rng2.Intn(8))), relation.Int(int64(rng2.Intn(3))))
			}
			return db
		}
		lim := rng.Intn(30)
		q := fmt.Sprintf(
			`UPDATE d t SET flag = 1 WHERE t.id < %d AND EXISTS (SELECT 1 FROM pat c WHERE c.p = t.a AND c.q < 2)`, lim)

		dbA := setup()
		forceSemiJoinUpdate = true
		mustExec(t, dbA, q)
		forceSemiJoinUpdate = false

		dbB := setup()
		disableSemiJoinUpdate = true
		mustExec(t, dbB, q)
		disableSemiJoinUpdate = false

		a := canonical(mustQuery(t, dbA, `SELECT id, a, flag FROM d`))
		b := canonical(mustQuery(t, dbB, `SELECT id, a, flag FROM d`))
		if a != b {
			t.Fatalf("trial %d: semi-join update diverges:\n%s\nvs\n%s", trial, a, b)
		}
	}
}

// TestHashJoinNaNConsistency: NaN = NaN is false under SQL equality,
// so a planned hash join must not pair NaN keys the nested loop
// rejects.
func TestHashJoinNaNConsistency(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE fa (x REAL)`)
	mustExec(t, db, `CREATE TABLE fb (y REAL)`)
	mustExec(t, db, `INSERT INTO fa VALUES (?)`, relation.Float(math.NaN()))
	mustExec(t, db, `INSERT INTO fa VALUES (1.5)`)
	mustExec(t, db, `INSERT INTO fb VALUES (?)`, relation.Float(math.NaN()))
	mustExec(t, db, `INSERT INTO fb VALUES (1.5)`)
	planned, nested := runBothPaths(t, db, `SELECT fa.x FROM fa, fb WHERE fa.x = fb.y`)
	if planned != nested {
		t.Fatalf("NaN keys diverge: planned %q vs nested %q", planned, nested)
	}
	if planned != "1.5" {
		t.Fatalf("NaN must never join: got %q", planned)
	}
}

// TestPreparedNumParams: parameter counts come from the AST, so '?'
// inside string literals never counts.
func TestPreparedNumParams(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE np (a INTEGER, s TEXT)`)
	p, err := db.Prepare(`SELECT a FROM np WHERE s = '?' AND a = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NumParams(); got != 1 {
		t.Fatalf("NumParams = %d, want 1", got)
	}
}
