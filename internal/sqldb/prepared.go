package sqldb

import (
	"container/list"
	"fmt"
	"sync"

	"ecfd/internal/relation"
)

// Prepared statements and the compiled-plan cache.
//
// Two cache layers keep the detector's fixed statement set from being
// re-lexed, re-parsed and re-compiled on every call:
//
//   - a process-wide parse cache maps statement text to parsed ASTs.
//     ASTs are immutable after parsing (compilation only reads them),
//     so they are shared across engine instances — the bench harness
//     opens a fresh engine per figure point but reuses one AST set;
//   - a per-DB plan cache maps statement text to a *Prepared holding
//     compiled plans. Plans bind catalog objects (tables, indexes), so
//     they are invalidated by bumping DB.ddlVersion on CREATE TABLE,
//     CREATE INDEX, DROP TABLE and LoadRelation; the next execution
//     recompiles against the current catalog.
//
// Both layers are safe under the concurrent read path: the statement
// cache has its own mutex (db.stmtMu), and each Prepared guards its
// plan slots with p.mu so two queries racing to compile after DDL
// serialize on the compile but not on execution. Compiled plans
// themselves are immutable once built — all per-execution state lives
// in the env — so any number of goroutines can run the same plan.

const (
	parseCacheSize = 512
	planCacheSize  = 256
)

// lruCache is a plain LRU over string keys. Callers synchronize.
type lruCache struct {
	cap int
	m   map[string]*list.Element
	l   *list.List
}

type lruEntry struct {
	key string
	val any
}

func newLRU(cap int) *lruCache {
	return &lruCache{cap: cap, m: make(map[string]*list.Element), l: list.New()}
}

func (c *lruCache) get(k string) (any, bool) {
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(k string, v any) {
	if el, ok := c.m[k]; ok {
		el.Value.(*lruEntry).val = v
		c.l.MoveToFront(el)
		return
	}
	c.m[k] = c.l.PushFront(&lruEntry{key: k, val: v})
	if c.l.Len() > c.cap {
		last := c.l.Back()
		c.l.Remove(last)
		delete(c.m, last.Value.(*lruEntry).key)
	}
}

var (
	parseMu    sync.Mutex
	parseCache = newLRU(parseCacheSize)
)

// parseScriptCached parses through the process-wide AST cache.
func parseScriptCached(sqlText string) ([]Statement, error) {
	parseMu.Lock()
	if v, ok := parseCache.get(sqlText); ok {
		parseMu.Unlock()
		return v.([]Statement), nil
	}
	parseMu.Unlock()
	stmts, err := ParseScript(sqlText)
	if err != nil {
		return nil, err
	}
	parseMu.Lock()
	parseCache.put(sqlText, stmts)
	parseMu.Unlock()
	return stmts, nil
}

// execPlan is a compiled, reusable statement plan: *compiledSelect,
// *insertPlan, *updatePlan or *deletePlan. DDL statements have no plan.
type execPlan any

// Prepared is a statement (or semicolon-separated script) bound to a
// DB, holding compiled plans that are reused across executions and
// recompiled transparently after DDL.
type Prepared struct {
	db      *DB
	text    string
	stmts   []Statement
	nParams int
	// mu guards the plan slots. Callers hold db.mu (read or write) as
	// well, which orders the ddlVersion reads below against DDL.
	mu    sync.Mutex
	plans []execPlan
	vers  []uint64
	errs  []error
}

// Prepare parses sqlText (through the AST cache) and returns the
// cached Prepared for it, creating one on first use.
func (db *DB) Prepare(sqlText string) (*Prepared, error) {
	db.stmtMu.Lock()
	if db.stmtCache != nil {
		if v, ok := db.stmtCache.get(sqlText); ok {
			db.stmtMu.Unlock()
			return v.(*Prepared), nil
		}
	}
	db.stmtMu.Unlock()
	stmts, err := parseScriptCached(sqlText)
	if err != nil {
		return nil, err
	}
	p := &Prepared{
		db:      db,
		text:    sqlText,
		stmts:   stmts,
		nParams: numParamsStmts(stmts),
		plans:   make([]execPlan, len(stmts)),
		vers:    make([]uint64, len(stmts)),
		errs:    make([]error, len(stmts)),
	}
	db.stmtMu.Lock()
	if db.stmtCache == nil {
		db.stmtCache = newLRU(planCacheSize)
	}
	// Two goroutines may have prepared the same text concurrently; keep
	// the one already cached so every caller shares one Prepared.
	if v, ok := db.stmtCache.get(sqlText); ok {
		db.stmtMu.Unlock()
		return v.(*Prepared), nil
	}
	db.stmtCache.put(sqlText, p)
	db.stmtMu.Unlock()
	return p, nil
}

// NumParams reports how many '?' placeholders the statement(s) expect.
func (p *Prepared) NumParams() int { return p.nParams }

// Exec runs every statement of the prepared script and returns the
// total number of affected rows.
func (p *Prepared) Exec(params ...relation.Value) (int64, error) {
	var total int64
	for i := range p.stmts {
		n, err := p.db.execPreparedStmt(p, i, params)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// Query runs a single prepared SELECT. It pins the current epoch with
// an atomic load and holds NO lock for the whole execution, so any
// number of queries run concurrently with each other and with writers
// (which publish new epochs this query never observes).
func (p *Prepared) Query(params ...relation.Value) (*Result, error) {
	ep := p.db.pin()
	defer p.db.unpin(ep)
	return p.queryEpoch(ep, params)
}

// QueryAt runs a single prepared SELECT against an explicitly pinned
// snapshot, so a sequence of statements can observe one frozen epoch.
func (p *Prepared) QueryAt(s *Snap, params ...relation.Value) (*Result, error) {
	if s == nil || s.ep == nil {
		return nil, fmt.Errorf("sql: QueryAt on a closed snapshot")
	}
	return p.queryEpoch(s.ep, params)
}

func (p *Prepared) queryEpoch(ep *epoch, params []relation.Value) (*Result, error) {
	if len(p.stmts) != 1 {
		return nil, fmt.Errorf("sql: Query requires exactly one statement, got %d", len(p.stmts))
	}
	plan, err := p.db.planFor(p, 0, ep)
	if err != nil {
		return nil, err
	}
	cs, ok := plan.(*compiledSelect)
	if !ok {
		return nil, fmt.Errorf("sql: Query requires a SELECT statement")
	}
	en := newEnv(p.db, ep, params)
	rows, err := cs.exec(en)
	if err != nil {
		return nil, err
	}
	return &Result{Cols: cs.cols, Rows: rows}, nil
}

func (db *DB) execPreparedStmt(p *Prepared, i int, params []relation.Value) (int64, error) {
	db.mu.Lock()
	n, err := db.execPreparedLocked(p, i, params)
	// If this statement's WAL unit joined a group commit, wait for the
	// group fsync (and the epoch publish) outside db.mu, so concurrent
	// writers share one Sync.
	wp := db.takePending()
	db.mu.Unlock()
	if wp != nil {
		if werr := db.awaitDurable(wp); werr != nil && err == nil {
			return 0, werr
		}
	}
	return n, err
}

func (db *DB) execPreparedLocked(p *Prepared, i int, params []relation.Value) (int64, error) {
	switch p.stmts[i].(type) {
	case *CreateTable, *CreateIndex, *DropTable, *TruncateTable:
		// DDL executes directly; it also bumps ddlVersion, so any plan
		// compiled before it (including later statements of this very
		// script) recompiles against the new catalog.
		return db.execStmtLocked(p.stmts[i], params)
	}
	plan, err := db.planFor(p, i, db.curW)
	if err != nil {
		return 0, err
	}
	switch pl := plan.(type) {
	case *compiledSelect:
		en := newEnv(db, db.curW, params)
		rows, err := pl.exec(en)
		if err != nil {
			return 0, err
		}
		return int64(len(rows)), nil
	case *insertPlan:
		return db.runInsert(pl, params)
	case *updatePlan:
		return db.runUpdate(pl, params)
	case *deletePlan:
		return db.runDelete(pl, params)
	default:
		return 0, fmt.Errorf("sql: unhandled prepared statement %T", p.stmts[i])
	}
}

// planFor returns statement i's plan, compiling (or recompiling after
// DDL) as needed against ep. Plans are cached per ddlVersion: every
// epoch of the same version has identical tables/schemas/indexes, so a
// cached plan is valid for any of them. Compile errors are cached the
// same way. Callers need no catalog lock — ep is immutable; p.mu
// serializes concurrent compilations of the same slot.
func (db *DB) planFor(p *Prepared, i int, ep *epoch) (execPlan, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.vers[i] == ep.ddlVersion {
		return p.plans[i], p.errs[i]
	}
	var plan execPlan
	var err error
	switch s := p.stmts[i].(type) {
	case *Select:
		c := &compiler{db: db, ep: ep}
		var cs *compiledSelect
		if cs, err = c.compileSubSelect(s); err == nil {
			plan = cs
		}
	case *Insert:
		var ip *insertPlan
		if ip, err = db.compileInsert(s, ep); err == nil {
			plan = ip
		}
	case *Update:
		var up *updatePlan
		if up, err = db.compileUpdate(s, ep); err == nil {
			plan = up
		}
	case *Delete:
		var dp *deletePlan
		if dp, err = db.compileDelete(s, ep); err == nil {
			plan = dp
		}
	default:
		err = fmt.Errorf("sql: cannot prepare %T", s)
	}
	p.plans[i], p.errs[i], p.vers[i] = plan, err, ep.ddlVersion
	return plan, err
}

// --- parameter counting ---

// numParamsStmts counts the '?' placeholders a statement list binds:
// one more than the highest parameter index referenced.
func numParamsStmts(stmts []Statement) int {
	max := 0
	note := func(e Expr) {
		if pr, ok := e.(*Param); ok && pr.Index+1 > max {
			max = pr.Index + 1
		}
	}
	for _, s := range stmts {
		walkStmtExprs(s, note)
	}
	return max
}

// walkStmtExprs visits every expression node of a statement,
// descending into subqueries.
func walkStmtExprs(stmt Statement, fn func(Expr)) {
	switch s := stmt.(type) {
	case *Insert:
		for _, row := range s.Rows {
			for _, e := range row {
				walkExprTree(e, fn)
			}
		}
		if s.Query != nil {
			walkSelectTree(s.Query, fn)
		}
	case *Update:
		for _, a := range s.Set {
			walkExprTree(a.Value, fn)
		}
		walkExprTree(s.Where, fn)
	case *Delete:
		walkExprTree(s.Where, fn)
	case *Select:
		walkSelectTree(s, fn)
	}
}

func walkSelectTree(sel *Select, fn func(Expr)) {
	for _, se := range sel.Exprs {
		walkExprTree(se.Expr, fn)
	}
	for _, tr := range sel.From {
		if tr.Sub != nil {
			walkSelectTree(tr.Sub, fn)
		}
	}
	walkExprTree(sel.Where, fn)
	for _, g := range sel.GroupBy {
		walkExprTree(g, fn)
	}
	walkExprTree(sel.Having, fn)
	for _, o := range sel.OrderBy {
		walkExprTree(o.Expr, fn)
	}
	walkExprTree(sel.Limit, fn)
	walkExprTree(sel.Offset, fn)
}

func walkExprTree(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Unary:
		walkExprTree(x.X, fn)
	case *Binary:
		walkExprTree(x.L, fn)
		walkExprTree(x.R, fn)
	case *IsNull:
		walkExprTree(x.X, fn)
	case *InList:
		walkExprTree(x.X, fn)
		for _, it := range x.List {
			walkExprTree(it, fn)
		}
	case *Like:
		walkExprTree(x.X, fn)
		walkExprTree(x.Pattern, fn)
	case *Between:
		walkExprTree(x.X, fn)
		walkExprTree(x.Lo, fn)
		walkExprTree(x.Hi, fn)
	case *Case:
		walkExprTree(x.Operand, fn)
		for _, w := range x.Whens {
			walkExprTree(w.Cond, fn)
			walkExprTree(w.Result, fn)
		}
		walkExprTree(x.Else, fn)
	case *FuncCall:
		for _, a := range x.Args {
			walkExprTree(a, fn)
		}
	case *Exists:
		walkSelectTree(x.Sub, fn)
	case *InSelect:
		walkExprTree(x.X, fn)
		walkSelectTree(x.Sub, fn)
	case *ScalarSub:
		walkSelectTree(x.Sub, fn)
	}
}
