package sqldb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"ecfd/internal/relation"
)

// Property tests cross-checking the engine against straightforward Go
// implementations of the same queries.

func randomTable(t *testing.T, rng *rand.Rand, rows int) (*DB, []int64, []string) {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE p (n INTEGER, s TEXT)`)
	ns := make([]int64, rows)
	ss := make([]string, rows)
	for i := range ns {
		ns[i] = int64(rng.Intn(20))
		ss[i] = string(rune('a' + rng.Intn(5)))
		mustExec(t, db, `INSERT INTO p VALUES (?, ?)`, relation.Int(ns[i]), relation.Text(ss[i]))
	}
	return db, ns, ss
}

func TestPropertyCountMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		rows := 1 + rng.Intn(60)
		db, ns, _ := randomTable(t, rng, rows)
		threshold := int64(rng.Intn(20))

		want := 0
		for _, n := range ns {
			if n > threshold {
				want++
			}
		}
		res := mustQuery(t, db, `SELECT COUNT(*) FROM p WHERE n > ?`, relation.Int(threshold))
		if got := res.Rows[0][0].I; got != int64(want) {
			t.Fatalf("trial %d: COUNT = %d, want %d", trial, got, want)
		}
	}
}

func TestPropertyOrderBySorted(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		db, _, _ := randomTable(t, rng, 1+rng.Intn(50))
		res := mustQuery(t, db, `SELECT n FROM p ORDER BY n`)
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i-1][0].I > res.Rows[i][0].I {
				t.Fatalf("trial %d: not sorted at %d", trial, i)
			}
		}
		res = mustQuery(t, db, `SELECT n FROM p ORDER BY n DESC`)
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i-1][0].I < res.Rows[i][0].I {
				t.Fatalf("trial %d: not desc-sorted at %d", trial, i)
			}
		}
	}
}

func TestPropertyGroupBySums(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		db, ns, ss := randomTable(t, rng, 1+rng.Intn(50))
		want := map[string]int64{}
		for i := range ns {
			want[ss[i]] += ns[i]
		}
		res := mustQuery(t, db, `SELECT s, SUM(n) FROM p GROUP BY s ORDER BY s`)
		var keys []string
		for k := range want {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if len(res.Rows) != len(keys) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(res.Rows), len(keys))
		}
		for i, k := range keys {
			if res.Rows[i][0].S != k || res.Rows[i][1].I != want[k] {
				t.Fatalf("trial %d group %s: got (%s, %d), want sum %d",
					trial, k, res.Rows[i][0].S, res.Rows[i][1].I, want[k])
			}
		}
	}
}

func TestPropertyDistinctCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		db, _, ss := randomTable(t, rng, 1+rng.Intn(50))
		uniq := map[string]bool{}
		for _, s := range ss {
			uniq[s] = true
		}
		res := mustQuery(t, db, `SELECT DISTINCT s FROM p`)
		if len(res.Rows) != len(uniq) {
			t.Fatalf("trial %d: DISTINCT returned %d, want %d", trial, len(res.Rows), len(uniq))
		}
	}
}

func TestPropertyDeleteComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 10; trial++ {
		rows := 1 + rng.Intn(50)
		db, ns, _ := randomTable(t, rng, rows)
		pivot := int64(rng.Intn(20))
		kept := 0
		for _, n := range ns {
			if n >= pivot {
				kept++
			}
		}
		mustExec(t, db, `DELETE FROM p WHERE n < ?`, relation.Int(pivot))
		res := mustQuery(t, db, `SELECT COUNT(*) FROM p`)
		if res.Rows[0][0].I != int64(kept) {
			t.Fatalf("trial %d: kept %d, want %d", trial, res.Rows[0][0].I, kept)
		}
	}
}

// TestPropertyExistsEquivalence: the decorrelated EXISTS path and the
// IN-subquery path must agree on semi-join semantics.
func TestPropertyExistsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 8; trial++ {
		db := NewDB()
		mustExec(t, db, `CREATE TABLE a (x INTEGER)`)
		mustExec(t, db, `CREATE TABLE b (y INTEGER)`)
		for i := 0; i < 1+rng.Intn(25); i++ {
			mustExec(t, db, fmt.Sprintf(`INSERT INTO a VALUES (%d)`, rng.Intn(10)))
		}
		for i := 0; i < rng.Intn(25); i++ {
			mustExec(t, db, fmt.Sprintf(`INSERT INTO b VALUES (%d)`, rng.Intn(10)))
		}
		viaExists := flat(mustQuery(t, db, `SELECT x FROM a WHERE EXISTS (SELECT 1 FROM b WHERE b.y = a.x) ORDER BY x`))
		viaIn := flat(mustQuery(t, db, `SELECT x FROM a WHERE x IN (SELECT y FROM b) ORDER BY x`))
		if viaExists != viaIn {
			t.Fatalf("trial %d: EXISTS %q vs IN %q", trial, viaExists, viaIn)
		}
		// And the complements agree too.
		notExists := flat(mustQuery(t, db, `SELECT x FROM a WHERE NOT EXISTS (SELECT 1 FROM b WHERE b.y = a.x) ORDER BY x`))
		all := flat(mustQuery(t, db, `SELECT x FROM a ORDER BY x`))
		if len(viaExists)+len(notExists) > 0 {
			merged := mergeFlat(viaExists, notExists)
			if merged != all {
				t.Fatalf("trial %d: EXISTS ∪ NOT EXISTS ≠ all: %q + %q vs %q", trial, viaExists, notExists, all)
			}
		}
	}
}

func mergeFlat(a, b string) string {
	var parts []string
	if a != "" {
		parts = append(parts, splitFlat(a)...)
	}
	if b != "" {
		parts = append(parts, splitFlat(b)...)
	}
	sort.Strings(parts)
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ";"
		}
		out += p
	}
	return out
}

func splitFlat(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ';' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}

// TestQuickLexerNeverPanics fuzzes the lexer+parser with random byte
// strings: errors are fine, panics are not.
func TestQuickLexerNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		_, _ = ParseScript(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickRoundTripInsertSelect: values inserted through parameters
// come back unchanged.
func TestQuickRoundTripInsertSelect(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE rt (i INTEGER, f REAL, s TEXT, b BOOLEAN)`)
	f := func(i int64, fl float64, s string, b bool) bool {
		if fl != fl { // NaN never round-trips through equality
			return true
		}
		mustExec(t, db, `TRUNCATE TABLE rt`)
		mustExec(t, db, `INSERT INTO rt VALUES (?, ?, ?, ?)`,
			relation.Int(i), relation.Float(fl), relation.Text(s), relation.Bool(b))
		res := mustQuery(t, db, `SELECT i, f, s, b FROM rt`)
		r := res.Rows[0]
		return r[0].I == i && r[1].F == fl && r[2].S == s && (r[3].I != 0) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPlannerNestedLoopEquivalence is the plan-equivalence
// oracle: every generated SELECT runs three ways — the planner with
// batch kernels, the planner with kernels forced off (per-row
// closures), and the forced all-pairs nested loop — and all three must
// produce identical multisets, identical sequences when an ORDER BY
// pins the order. 250 queries cover joins (equi and cross), OR
// conjuncts spanning sources, AND-within-OR alternatives, OR-group
// kernels (2–5 alternatives, mixed simple predicates / correlated
// EXISTS probe terms / nested disjunctions — the shapes the group
// kernels claim, plus non-kernelizable mixes that must fall back),
// const-equality conjuncts (the `MV = 0` diversion shape), correlated
// EXISTS / NOT EXISTS, IN-subqueries, IN lists, NULL columns,
// DISTINCT, grouped aggregates, range predicates (<, <=, >, >=,
// BETWEEN — range-pruned with inclusive-bound filter elision through
// the index on w.k, compound equality-prefix + range through the
// (p, q) index on z) and ORDER BY clauses (index-served on
// single-table w queries, join-driver-served when a multi-table
// ORDER BY's source drives the join).
func TestPropertyPlannerNestedLoopEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	db := NewDB()
	mustExec(t, db, `CREATE TABLE r (a INTEGER, b INTEGER, s TEXT)`)
	mustExec(t, db, `CREATE TABLE u (x INTEGER, y TEXT)`)
	mustExec(t, db, `CREATE TABLE w (k INTEGER, v INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_w_k ON w (k)`)
	// z has only a compound index: equality on p alone must fall back to
	// the prefix probe (binary search), and p-equality + q-range hits the
	// compound-bound path.
	mustExec(t, db, `CREATE TABLE z (p INTEGER, q INTEGER, c INTEGER)`)
	mustExec(t, db, `CREATE INDEX idx_z_pq ON z (p, q)`)
	for i := 0; i < 70; i++ {
		b := relation.Int(int64(rng.Intn(6)))
		if rng.Intn(8) == 0 {
			b = relation.Null()
		}
		mustExec(t, db, `INSERT INTO r VALUES (?, ?, ?)`,
			relation.Int(int64(rng.Intn(10))), b, relation.Text(string(rune('a'+rng.Intn(4)))))
	}
	for i := 0; i < 25; i++ {
		y := relation.Text(string(rune('a' + rng.Intn(4))))
		if rng.Intn(6) == 0 {
			y = relation.Null()
		}
		mustExec(t, db, `INSERT INTO u VALUES (?, ?)`, relation.Int(int64(rng.Intn(10))), y)
	}
	for i := 0; i < 40; i++ {
		v := relation.Int(int64(rng.Intn(6)))
		if rng.Intn(8) == 0 {
			v = relation.Null()
		}
		mustExec(t, db, `INSERT INTO w VALUES (?, ?)`, relation.Int(int64(rng.Intn(10))), v)
	}
	for i := 0; i < 50; i++ {
		q := relation.Int(int64(rng.Intn(8)))
		if rng.Intn(9) == 0 {
			q = relation.Null()
		}
		mustExec(t, db, `INSERT INTO z VALUES (?, ?, ?)`,
			relation.Int(int64(rng.Intn(6))), q, relation.Int(int64(rng.Intn(5))))
	}

	type src struct {
		table   string
		intCols []string
	}
	pool := []src{
		{table: "r", intCols: []string{"a", "b"}},
		{table: "u", intCols: []string{"x"}},
		{table: "w", intCols: []string{"k", "v"}},
		{table: "z", intCols: []string{"p", "q", "c"}},
	}

	checked := 0
	for trial := 0; trial < 250; trial++ {
		n := 1 + rng.Intn(3)
		idx := rng.Perm(len(pool))[:n]
		aliases := make([]string, n)
		var from []string
		for i, pi := range idx {
			aliases[i] = fmt.Sprintf("t%d", i)
			from = append(from, pool[pi].table+" "+aliases[i])
		}
		intCol := func(i int) string {
			cols := pool[idx[i]].intCols
			return aliases[i] + "." + cols[rng.Intn(len(cols))]
		}
		leaf := func() string {
			i := rng.Intn(n)
			switch rng.Intn(7) {
			case 0:
				return fmt.Sprintf("%s = %d", intCol(i), rng.Intn(8))
			case 1:
				// Range predicates: on w.k these go through the ordered
				// index as range-pruned scans, with inclusive bounds
				// elided from the filter set.
				ops := []string{"<", "<=", ">", ">=", "<>"}
				return fmt.Sprintf("%s %s %d", intCol(i), ops[rng.Intn(len(ops))], rng.Intn(8))
			case 2:
				lo := rng.Intn(8)
				return fmt.Sprintf("%s BETWEEN %d AND %d", intCol(i), lo, lo+rng.Intn(5))
			case 3:
				return fmt.Sprintf("%s IS NOT NULL", intCol(i))
			case 4:
				neg := ""
				if rng.Intn(3) == 0 {
					neg = "NOT "
				}
				return fmt.Sprintf("%s %sIN (%d, %d, %d)", intCol(i), neg, rng.Intn(8), rng.Intn(8), rng.Intn(8))
			default:
				if n > 1 {
					j := rng.Intn(n)
					for j == i {
						j = rng.Intn(n)
					}
					return fmt.Sprintf("%s = %s", intCol(i), intCol(j))
				}
				return fmt.Sprintf("%s = %d", intCol(i), rng.Intn(8))
			}
		}
		// probeTerm is the detection-SQL alternative shape: a correlated
		// [NOT] EXISTS whose key mixes an outer column with the probed
		// table — the OR-group kernels lower it to a probe kernel.
		probeTerm := func() string {
			neg := ""
			if rng.Intn(2) == 0 {
				neg = "NOT "
			}
			return fmt.Sprintf("%sEXISTS (SELECT 1 FROM u e WHERE e.x = %s)", neg, intCol(rng.Intn(n)))
		}
		var conjs []string
		for k := rng.Intn(4); k > 0; k-- {
			switch rng.Intn(9) {
			case 0:
				conjs = append(conjs, fmt.Sprintf("(%s OR %s)", leaf(), leaf()))
			case 1:
				conjs = append(conjs, fmt.Sprintf("(%s OR (%s AND %s))", leaf(), leaf(), leaf()))
			case 2:
				conjs = append(conjs, probeTerm())
			case 3:
				conjs = append(conjs, fmt.Sprintf("%s IN (SELECT k FROM w)", intCol(rng.Intn(n))))
			case 4:
				// Detection-shaped OR group: guard OR probe — claimed whole
				// by the probed source's level when the guard binds there.
				conjs = append(conjs, fmt.Sprintf("(%s OR %s)", leaf(), probeTerm()))
			case 5:
				// Wide OR group, 3–5 alternatives mixing simple leaves,
				// probes, AND-pairs and nested disjunctions.
				terms := []string{leaf()}
				for w := 2 + rng.Intn(3); w > 0; w-- {
					switch rng.Intn(4) {
					case 0:
						terms = append(terms, probeTerm())
					case 1:
						terms = append(terms, fmt.Sprintf("(%s AND %s)", leaf(), leaf()))
					case 2:
						terms = append(terms, fmt.Sprintf("(%s AND (%s OR %s))", leaf(), leaf(), probeTerm()))
					default:
						terms = append(terms, leaf())
					}
				}
				conjs = append(conjs, "("+strings.Join(terms, " OR ")+")")
			case 6:
				// Constant-equality conjunct: the `MV = 0` shape the
				// const-eq kernel serves instead of a hash-probe build.
				conjs = append(conjs, fmt.Sprintf("%s = %d", intCol(rng.Intn(n)), rng.Intn(4)))
			default:
				conjs = append(conjs, leaf())
			}
		}
		where := ""
		if len(conjs) > 0 {
			where = " WHERE " + strings.Join(conjs, " AND ")
		}
		var q string
		ordered := false
		switch rng.Intn(6) {
		case 0:
			q = fmt.Sprintf("SELECT COUNT(*) FROM %s%s", strings.Join(from, ", "), where)
		case 1:
			g := intCol(rng.Intn(n))
			q = fmt.Sprintf("SELECT %s, COUNT(*) FROM %s%s GROUP BY %s",
				g, strings.Join(from, ", "), where, g)
		case 2:
			q = fmt.Sprintf("SELECT DISTINCT %s FROM %s%s",
				intCol(rng.Intn(n)), strings.Join(from, ", "), where)
		case 3:
			// ORDER BY over every output column in one uniform direction:
			// the result sequence is then fully determined (rows agreeing
			// on all sort keys are identical), so the planned path — which
			// may serve the order from an index with a different tie order
			// — must be byte-identical to the forced nested loop, not just
			// multiset-equal. Single-table w queries with ORDER BY w.k hit
			// the index-served (sort-free) path.
			ordered = true
			var outs []string
			for i := 0; i < n; i++ {
				for _, c := range pool[idx[i]].intCols {
					outs = append(outs, aliases[i]+"."+c)
				}
			}
			dir := ""
			if rng.Intn(2) == 0 {
				dir = " DESC"
			}
			orderKeys := make([]string, len(outs))
			for i, o := range outs {
				orderKeys[i] = o + dir
			}
			q = fmt.Sprintf("SELECT %s FROM %s%s ORDER BY %s",
				strings.Join(outs, ", "), strings.Join(from, ", "), where, strings.Join(orderKeys, ", "))
		case 4:
			// Multi-table ORDER BY over one source's columns, outputs
			// restricted to exactly the order keys: every row of a tie
			// group is identical, so sequence comparison stays exact even
			// though the join fans each driving row out — this is the
			// join-driver index-served ORDER BY shape (served when the
			// ordered source happens to drive the join, sorted when not;
			// both must match the nested loop byte-for-byte).
			ordered = true
			oi := rng.Intn(n)
			var outs []string
			for _, c := range pool[idx[oi]].intCols {
				outs = append(outs, aliases[oi]+"."+c)
			}
			dir := ""
			if rng.Intn(2) == 0 {
				dir = " DESC"
			}
			orderKeys := make([]string, len(outs))
			for i, o := range outs {
				orderKeys[i] = o + dir
			}
			q = fmt.Sprintf("SELECT %s FROM %s%s ORDER BY %s",
				strings.Join(outs, ", "), strings.Join(from, ", "), where, strings.Join(orderKeys, ", "))
		default:
			var outs []string
			for i := 0; i < n; i++ {
				outs = append(outs, intCol(i))
			}
			q = fmt.Sprintf("SELECT %s FROM %s%s", strings.Join(outs, ", "), strings.Join(from, ", "), where)
		}

		batch, row, nested := runThreeWays(t, db, q, ordered)
		if batch != row || row != nested {
			t.Fatalf("trial %d: three-way divergence on %q (ordered=%v):\nbatch  %q\nrow    %q\nnested %q",
				trial, q, ordered, batch, row, nested)
		}
		checked++
	}
	if checked < 240 {
		t.Fatalf("only %d queries checked, want >= 240", checked)
	}
}

// runThreeWays executes q through (1) the planner with batch kernels,
// (2) the planner with kernels forced onto the per-row closure path,
// and (3) the forced all-pairs nested loop. exact compares the emitted
// sequences byte-for-byte (valid when an ORDER BY pins the order);
// otherwise results canonicalize to multisets.
func runThreeWays(t *testing.T, db *DB, q string, exact bool) (batch, row, nested string) {
	t.Helper()
	canon := canonical
	if exact {
		canon = flat
	}
	DisablePlanner, DisableBatchKernels = false, false
	b, err := db.Query(q)
	if err != nil {
		t.Fatalf("batch %q: %v", q, err)
	}
	DisableBatchKernels = true
	r, err := db.Query(q)
	DisableBatchKernels = false
	if err != nil {
		t.Fatalf("row %q: %v", q, err)
	}
	DisablePlanner = true
	n, err := db.Query(q)
	DisablePlanner = false
	if err != nil {
		t.Fatalf("nested %q: %v", q, err)
	}
	return canon(b), canon(r), canon(n)
}

// ORDER BY with mixed directions and an expression key.
func TestOrderByExpressionAndMixed(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE m (a INTEGER, b INTEGER)`)
	mustExec(t, db, `INSERT INTO m VALUES (1, 9), (1, 3), (2, 5), (2, 1)`)
	res := mustQuery(t, db, `SELECT a, b FROM m ORDER BY a DESC, a + b ASC`)
	if flat(res) != "2,1;2,5;1,3;1,9" {
		t.Errorf("got %q", flat(res))
	}
}
